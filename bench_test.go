// Package repro's root benchmark suite regenerates every table and figure
// of the paper under testing.B. One benchmark per artifact:
//
//	BenchmarkTable1Mapping         Table 1 (object mapping round-trip)
//	BenchmarkFigure1JCFModel       Figure 1 (JCF information architecture)
//	BenchmarkFigure2FMCADModel     Figure 2 (FMCAD information architecture)
//	BenchmarkE31LockContention*    section 3.1 (concurrency control;
//	                               *Parallel = goroutine-per-designer)
//	BenchmarkE32ConsistencyCheck   section 3.2 (design management)
//	BenchmarkE33HierarchySubmit    section 3.3 (hierarchy handling)
//	BenchmarkE35FlowEnforcement    section 3.5 (flow management)
//	BenchmarkE36MetadataOps*       section 3.6 (metadata performance;
//	                               *Parallel = concurrent designers)
//	BenchmarkE36DesignData*        section 3.6 (design-data performance)
//	BenchmarkE37SnapshotWriterStall  writer p99 latency during a concurrent
//	                               snapshot save (BENCH_2.json; not a paper
//	                               artifact — the PR 2 persistence ablation)
//	BenchmarkE38BatchCheckin       grouped vs op-by-op checkin under
//	                               concurrent designers (BENCH_3.json; the
//	                               PR 3 batched-operations ablation)
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/jcf"
	"repro/internal/obs"
	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/otod"
)

// BenchmarkTable1Mapping regenerates Table 1 and verifies the live
// mapping round-trips (experiment T1).
func BenchmarkTable1Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunT1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1JCFModel rebuilds and renders the Figure 1 model.
func BenchmarkFigure1JCFModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := otod.JCFModel()
		if _, err := m.Schema(); err != nil {
			b.Fatal(err)
		}
		if len(m.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkFigure2FMCADModel rebuilds and renders the Figure 2 model.
func BenchmarkFigure2FMCADModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := otod.FMCADModel()
		if _, err := m.Schema(); err != nil {
			b.Fatal(err)
		}
		if len(m.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

// benchDesigners is the team-size sweep the contention benchmarks share.
var benchDesigners = []int{4, 16, 64}

// BenchmarkE31LockContentionFMCAD runs the section 3.1 contention
// workload against one shared FMCAD library.
func BenchmarkE31LockContentionFMCAD(b *testing.B) {
	for _, n := range benchDesigners {
		b.Run(fmt.Sprintf("designers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.FMCADContention(n, 4, 25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE31LockContentionHybrid runs the same workload through the
// hybrid framework's workspaces and parallel versions.
func BenchmarkE31LockContentionHybrid(b *testing.B) {
	for _, n := range benchDesigners {
		b.Run(fmt.Sprintf("designers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := experiments.HybridContention(n, 4, 25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE31LockContentionParallel runs the hybrid workload with every
// designer as a real goroutine against the one shared OMS database — the
// contention probe for the lock-striped kernel. The world is built once
// per team size so the timed region is database traffic, not library and
// file-system setup.
func BenchmarkE31LockContentionParallel(b *testing.B) {
	for _, n := range benchDesigners {
		b.Run(fmt.Sprintf("designers=%d", n), func(b *testing.B) {
			world, err := experiments.NewContentionWorld(n, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer world.Cleanup()
			// Warm up so the version pool reaches steady state and the
			// timed loop measures contention, not version derivation.
			if _, _, _, err := world.RunSteps(25); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blocked, _, _, err := world.RunSteps(25)
				if err != nil {
					b.Fatal(err)
				}
				if blocked != 0 {
					b.Fatalf("hybrid blocked %d steps", blocked)
				}
			}
		})
	}
}

// BenchmarkE31LockContentionOMS hits the OMS kernel directly with the
// section 3.1 shape: designers share one database but work on disjoint
// cells (that is the whole point of per-cell-version workspaces), so each
// designer goroutine runs reservation-style traffic — attribute reads and
// writes, relationship link/unlink, occasional name lookups — against its
// own objects. This is the purest before/after probe for the lock-striped
// kernel: with one global mutex every operation serializes; with striping
// disjoint designers never contend.
func BenchmarkE31LockContentionOMS(b *testing.B) {
	for _, n := range benchDesigners {
		b.Run(fmt.Sprintf("designers=%d", n), func(b *testing.B) {
			schema := oms.NewSchema()
			if err := schema.AddClass("User",
				oms.AttrDef{Name: "name", Kind: oms.KindString, Required: true}); err != nil {
				b.Fatal(err)
			}
			if err := schema.AddClass("CellVersion",
				oms.AttrDef{Name: "num", Kind: oms.KindInt, Required: true},
				oms.AttrDef{Name: "published", Kind: oms.KindBool}); err != nil {
				b.Fatal(err)
			}
			if err := schema.AddRel(oms.RelDef{Name: "reserves", From: "User", To: "CellVersion",
				FromCard: oms.Many, ToCard: oms.Many}); err != nil {
				b.Fatal(err)
			}
			st := oms.NewStore(schema)
			users := make([]oms.OID, n)
			cvs := make([]oms.OID, n*4)
			for d := 0; d < n; d++ {
				u, err := st.Create("User", map[string]oms.Value{"name": oms.S(fmt.Sprintf("u%d", d))})
				if err != nil {
					b.Fatal(err)
				}
				users[d] = u
			}
			// One chip design's worth of accumulated metadata: thousands
			// of versions beyond the handful each designer touches. The
			// by-name Reserve lookup must not pay for them.
			for i := 0; i < 5000; i++ {
				if _, err := st.Create("CellVersion", map[string]oms.Value{"num": oms.I(int64(1000 + i))}); err != nil {
					b.Fatal(err)
				}
			}
			for i := range cvs {
				cv, err := st.Create("CellVersion", map[string]oms.Value{"num": oms.I(int64(i))})
				if err != nil {
					b.Fatal(err)
				}
				cvs[i] = cv
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for d := 0; d < n; d++ {
					wg.Add(1)
					go func(d int) {
						defer wg.Done()
						name := oms.S(fmt.Sprintf("u%d", d))
						user := users[d]
						for s := 0; s < 20; s++ {
							// Each designer works their own four cell
							// versions — the disjoint-cells regime of
							// section 3.1.
							cv := cvs[d*4+s%4]
							if s%10 == 0 {
								// Occasional desktop lookup by name (a
								// session resolving its identity).
								hits := st.FindByAttr("User", "name", name)
								if len(hits) != 1 {
									b.Errorf("user lookup: %v", hits)
									return
								}
							}
							_ = st.GetBool(cv, "published")
							if err := st.Link("reserves", user, cv); err != nil {
								b.Errorf("link: %v", err)
								return
							}
							_ = st.Targets("reserves", user)
							if err := st.Set(cv, "published", oms.B(s%2 == 0)); err != nil {
								b.Errorf("set: %v", err)
								return
							}
							_ = st.GetInt(cv, "num")
							if err := st.Unlink("reserves", user, cv); err != nil {
								b.Errorf("unlink: %v", err)
								return
							}
						}
					}(d)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkObsOverhead measures what the observability layer costs on
// the hot path: the BENCH_1 lock-contention workload (16 designers,
// disjoint cells, one shared store) with instrumentation enabled and
// registered versus stripped at runtime (obs.SetEnabled(false) turns
// every timer into a zero-value no-op). The enabled/stripped delta is
// the registry's overhead budget, recorded in BENCH_7.json; the
// acceptance bar is <= 5%.
func BenchmarkObsOverhead(b *testing.B) {
	defer obs.SetEnabled(true)
	const designers = 16
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"enabled", true}, {"stripped", false}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.SetEnabled(mode.enabled)
			schema := oms.NewSchema()
			if err := schema.AddClass("User",
				oms.AttrDef{Name: "name", Kind: oms.KindString, Required: true}); err != nil {
				b.Fatal(err)
			}
			if err := schema.AddClass("CellVersion",
				oms.AttrDef{Name: "num", Kind: oms.KindInt, Required: true},
				oms.AttrDef{Name: "published", Kind: oms.KindBool}); err != nil {
				b.Fatal(err)
			}
			if err := schema.AddRel(oms.RelDef{Name: "reserves", From: "User", To: "CellVersion",
				FromCard: oms.Many, ToCard: oms.Many}); err != nil {
				b.Fatal(err)
			}
			st := oms.NewStore(schema)
			if mode.enabled {
				st.RegisterMetrics(obs.NewRegistry())
			}
			users := make([]oms.OID, designers)
			cvs := make([]oms.OID, designers*4)
			for d := range users {
				u, err := st.Create("User", map[string]oms.Value{"name": oms.S(fmt.Sprintf("u%d", d))})
				if err != nil {
					b.Fatal(err)
				}
				users[d] = u
			}
			for i := range cvs {
				cv, err := st.Create("CellVersion", map[string]oms.Value{"num": oms.I(int64(i))})
				if err != nil {
					b.Fatal(err)
				}
				cvs[i] = cv
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for d := 0; d < designers; d++ {
					wg.Add(1)
					go func(d int) {
						defer wg.Done()
						user := users[d]
						for s := 0; s < 20; s++ {
							cv := cvs[d*4+s%4]
							_ = st.GetBool(cv, "published")
							if err := st.Link("reserves", user, cv); err != nil {
								b.Errorf("link: %v", err)
								return
							}
							if err := st.Set(cv, "published", oms.B(s%2 == 0)); err != nil {
								b.Errorf("set: %v", err)
								return
							}
							_ = st.GetInt(cv, "num")
							if err := st.Unlink("reserves", user, cv); err != nil {
								b.Errorf("unlink: %v", err)
								return
							}
						}
					}(d)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkE32ConsistencyCheck measures the master's consistency sweep on
// a populated project (section 3.2).
func BenchmarkE32ConsistencyCheck(b *testing.B) {
	fw, err := jcf.New(jcf.Release30)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fw.CreateUser("u"); err != nil {
		b.Fatal(err)
	}
	team, err := fw.CreateTeam("t")
	if err != nil {
		b.Fatal(err)
	}
	uid, _ := fw.User("u")
	if err := fw.AddMember(team, uid); err != nil {
		b.Fatal(err)
	}
	f := flow.New("f")
	if err := f.AddActivity(flow.Activity{Name: "a"}); err != nil {
		b.Fatal(err)
	}
	if _, err := fw.RegisterFlow(f); err != nil {
		b.Fatal(err)
	}
	project, err := fw.CreateProject("p", team)
	if err != nil {
		b.Fatal(err)
	}
	// 50 cells x 2 versions, hierarchies with injected staleness.
	var parents []int64
	for c := 0; c < 50; c++ {
		cell, err := fw.CreateCell(project, fmt.Sprintf("c%d", c))
		if err != nil {
			b.Fatal(err)
		}
		v1, err := fw.CreateCellVersion(cell, "f", team)
		if err != nil {
			b.Fatal(err)
		}
		v2, err := fw.CreateCellVersion(cell, "f", team)
		if err != nil {
			b.Fatal(err)
		}
		if c > 0 {
			if err := fw.SubmitHierarchy(v1, v2); err != nil {
				b.Fatal(err)
			}
		}
		parents = append(parents, int64(v1))
	}
	_ = parents
	// Two modes since the feed-driven cache landed: "full" is the
	// unconditional sweep (the pre-cache behaviour), "cached" answers an
	// unchanged store from the last verdict in O(changes) — the path
	// replicas poll after catch-up.
	b.Run("mode=full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fw.CheckConsistencyFull()
		}
	})
	b.Run("mode=cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fw.CheckConsistency()
		}
	})
}

// BenchmarkE33HierarchySubmit measures the manual-desktop hierarchy
// workload of section 3.3 under both releases.
func BenchmarkE33HierarchySubmit(b *testing.B) {
	for _, rel := range []jcf.Release{jcf.Release30, jcf.Release40} {
		b.Run(fmt.Sprintf("release=%s", rel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := experiments.HierarchyManualSteps(rel, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE35FlowEnforcement measures the flow engine's enforcement
// decision (section 3.5): a Start that must be rejected plus a legal
// Start/Finish pair.
func BenchmarkE35FlowEnforcement(b *testing.B) {
	f := core.DefaultFlow()
	if err := f.Freeze(); err != nil {
		b.Fatal(err)
	}
	e, err := flow.NewEnactment(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Out-of-order attempt: must be rejected.
		if err := e.Start(core.ActLayoutEntry); err == nil {
			b.Fatal("out-of-order start accepted")
		}
		// Legal iteration on the entry activity.
		if err := e.Start(core.ActSchematicEntry); err != nil {
			b.Fatal(err)
		}
		if err := e.Finish(core.ActSchematicEntry, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE36MetadataOps measures desktop metadata operations (section
// 3.6: "sufficiently high").
func BenchmarkE36MetadataOps(b *testing.B) {
	world, err := experiments.NewE36World(8)
	if err != nil {
		b.Fatal(err)
	}
	defer world.Cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world.MetadataOpOnce()
	}
}

// BenchmarkE36MetadataOpsParallel measures the same desktop metadata
// batch issued by 4/16/64 concurrent designers per iteration. Before the
// kernel was lock-striped, every read serialized on one store mutex.
func BenchmarkE36MetadataOpsParallel(b *testing.B) {
	world, err := experiments.NewE36World(8)
	if err != nil {
		b.Fatal(err)
	}
	defer world.Cleanup()
	for _, n := range benchDesigners {
		b.Run(fmt.Sprintf("designers=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				world.MetadataOpsParallel(n, 50)
			}
		})
	}
}

// BenchmarkE36DesignDataNative measures direct FMCAD file access at two
// design sizes.
func BenchmarkE36DesignDataNative(b *testing.B) {
	for _, bits := range []int{8, 128} {
		b.Run(fmt.Sprintf("adder=%d", bits), func(b *testing.B) {
			world, err := experiments.NewE36World(bits)
			if err != nil {
				b.Fatal(err)
			}
			defer world.Cleanup()
			b.SetBytes(world.FileBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := world.NativeReadOnce(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE36DesignDataHybrid measures the same bytes through the master
// database — the copy-even-for-read-only path of section 3.6.
func BenchmarkE36DesignDataHybrid(b *testing.B) {
	for _, bits := range []int{8, 128} {
		b.Run(fmt.Sprintf("adder=%d", bits), func(b *testing.B) {
			world, err := experiments.NewE36World(bits)
			if err != nil {
				b.Fatal(err)
			}
			defer world.Cleanup()
			b.SetBytes(world.FileBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := world.HybridReadOnce(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE36DesignDataWriteNative measures one native FMCAD edit cycle
// (checkout, write, checkin) — no master involvement.
func BenchmarkE36DesignDataWriteNative(b *testing.B) {
	world, err := experiments.NewE36World(32)
	if err != nil {
		b.Fatal(err)
	}
	defer world.Cleanup()
	b.SetBytes(world.FileBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := world.NativeWriteOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE36DesignDataWriteHybrid measures one full encapsulated edit
// cycle: flow check, staging, slave checkout/checkin, database copy-in,
// derivation recording.
func BenchmarkE36DesignDataWriteHybrid(b *testing.B) {
	world, err := experiments.NewE36World(32)
	if err != nil {
		b.Fatal(err)
	}
	defer world.Cleanup()
	b.SetBytes(world.FileBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := world.HybridWriteOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE37SnapshotWriterStall measures what a designer feels while
// the framework persists itself: the latency distribution of Set calls
// issued against a blob-heavy store (the realistic shape — design data
// dwarfs metadata) while a save loop runs concurrently. Two modes:
//
//   - stop-the-world: SnapshotStopTheWorld, the pre-PR-2 capture that
//     holds every stripe read lock while copying all blob bytes out.
//   - consistent-cut: Snapshot — stripes are held only for the
//     O(headers) cut; blob bytes are shared (immutable, CoW).
//
// Everything around the capture — JSON encode, atomic file write, the
// pause between saves — is byte-identical in both modes, so the modes
// differ exactly in how long the stripe locks are held. The headline
// metric is the p99 of Sets that overlap a capture (p99-during-snap-ns):
// capture is the only phase either mode holds locks, and gating to it
// keeps single-core scheduler noise from the lock-free encode phase from
// burying the stall being measured.
//
// The writer is open-loop: Sets are scheduled at a fixed arrival rate
// and latency is measured from the scheduled instant, not from when the
// blocked loop got around to issuing the op. A closed loop would issue
// exactly one op per stall and bury it in the percentile (coordinated
// omission); open-loop scheduling charges a 30ms lock hold with every
// op that should have completed during it.
//
// Reported metrics are per-Set percentiles in nanoseconds plus the
// number of saves that completed while the writer was being measured.
// BENCH_2.json records the ablation; regenerate with `make bench-persist`.
func BenchmarkE37SnapshotWriterStall(b *testing.B) {
	const (
		objects  = 128
		blobSize = 256 << 10 // 32 MiB of design data total
	)
	for _, mode := range []string{"stop-the-world", "consistent-cut"} {
		b.Run("mode="+mode, func(b *testing.B) {
			schema := oms.NewSchema()
			if err := schema.AddClass("DesignObjectVersion",
				oms.AttrDef{Name: "data", Kind: oms.KindBlob},
				oms.AttrDef{Name: "rev", Kind: oms.KindInt}); err != nil {
				b.Fatal(err)
			}
			st := oms.NewStore(schema)
			blob := make([]byte, blobSize)
			for i := range blob {
				blob[i] = byte(i)
			}
			oids := make([]oms.OID, objects)
			for i := range oids {
				oid, err := st.Create("DesignObjectVersion", map[string]oms.Value{
					"data": oms.Bytes(blob),
					"rev":  oms.I(0),
				})
				if err != nil {
					b.Fatal(err)
				}
				oids[i] = oid
			}
			// Snapshots land on tmpfs when the host has one: the file
			// write is outside all locks in BOTH modes, so slow-disk
			// writeback would only inject minutes-long system stalls that
			// drown the lock behaviour this benchmark isolates.
			dir := b.TempDir()
			if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
				if d, err := os.MkdirTemp("/dev/shm", "omsbench"); err == nil {
					dir = d
					b.Cleanup(func() { os.RemoveAll(d) })
				}
			}
			path := filepath.Join(dir, "oms.json")
			capture := st.Snapshot
			if mode == "stop-the-world" {
				capture = st.SnapshotStopTheWorld
			}
			var stop, inCapture atomic.Bool
			var saves atomic.Int64
			var captureNS []time.Duration // saver-owned; read after wg.Wait
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					c0 := time.Now()
					inCapture.Store(true)
					snap := capture()
					inCapture.Store(false)
					captureNS = append(captureNS, time.Since(c0))
					data, err := snap.EncodeJSON()
					if err != nil {
						b.Error(err)
						return
					}
					tmp := path + ".tmp"
					if err := os.WriteFile(tmp, data, 0o644); err != nil {
						b.Error(err)
						return
					}
					if err := os.Rename(tmp, path); err != nil {
						b.Error(err)
						return
					}
					saves.Add(1)
					// Pause between saves so the writer's queue drains:
					// the measured tail is then the per-save stall, not
					// sustained CPU saturation from back-to-back encodes.
					time.Sleep(400 * time.Millisecond)
				}
			}()
			const interval = 50 * time.Microsecond // 20k Sets/s arrival rate
			lat := make([]time.Duration, 0, b.N)   // every op (open-loop, from sched)
			var latDuring []time.Duration          // block time of Sets overlapping a capture
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				sched := start.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				overlapped := inCapture.Load()
				t0 := time.Now()
				if err := st.Set(oids[i%objects], "rev", oms.I(int64(i))); err != nil {
					b.Fatal(err)
				}
				now := time.Now()
				lat = append(lat, now.Sub(sched))
				if overlapped || inCapture.Load() {
					// This Set ran while the capture held the stripe
					// locks; its call duration is the stall it ate.
					latDuring = append(latDuring, now.Sub(t0))
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			var captureTotal time.Duration
			maxCapture := time.Duration(0)
			for _, d := range captureNS {
				captureTotal += d
				if d > maxCapture {
					maxCapture = d
				}
			}
			pct := func(ds []time.Duration, p float64) float64 {
				if len(ds) == 0 {
					return 0
				}
				sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
				return float64(ds[int(p*float64(len(ds)-1))].Nanoseconds())
			}
			b.ReportMetric(pct(lat, 0.50), "p50-set-ns")
			b.ReportMetric(pct(latDuring, 0.99), "p99-set-during-snap-ns")
			b.ReportMetric(float64(len(latDuring)), "snap-overlap-ops")
			b.ReportMetric(float64(captureTotal.Nanoseconds())/float64(len(captureNS)), "mean-capture-ns")
			b.ReportMetric(float64(maxCapture.Nanoseconds()), "max-capture-ns")
			b.ReportMetric(float64(saves.Load()), "saves")
		})
	}
}

// BenchmarkE38BatchCheckin measures the copy-in checkin sequence of
// section 3.6 — version create + ownership link + data blob + derivation
// link — through both checkin paths at 4/16/64 concurrent designers:
//
//   - op-by-op: CheckInDataOpByOp, the pre-batch path retained as the
//     ablation baseline; every op pays its own stripe-lock round-trip and
//     the sequence can be observed (or left) half-done.
//   - batched: CheckInData over oms.Batch/Store.Apply; the touched
//     stripe set is locked once for all four ops and the group is
//     all-or-nothing.
//
// Designers work on disjoint cells (their own reserved cell versions),
// the section 3.1 regime, and each checks a fresh design object in
// checkinsPerOp times per benchmark iteration so per-design-object
// version lists stay short and the measured cost is the checkin itself,
// not version-history scans.
//
// Store and process heap grow monotonically across a benchmark process's
// lifetime and measurably slow every later sub-benchmark, so a fair
// ablation runs the two modes in SEPARATE processes with a fixed
// iteration count (equal work on equal store sizes) — that is what
// `make bench-batch` does; compare per-designer-count medians between
// the two invocations. BENCH_3.json records the result.
func BenchmarkE38BatchCheckin(b *testing.B) {
	const checkinsPerOp = 10
	for _, n := range benchDesigners {
		for _, mode := range []string{"op-by-op", "batched"} {
			b.Run(fmt.Sprintf("mode=%s/designers=%d", mode, n), func(b *testing.B) {
				fw, err := jcf.New(jcf.Release30)
				if err != nil {
					b.Fatal(err)
				}
				team, err := fw.CreateTeam("bench")
				if err != nil {
					b.Fatal(err)
				}
				f := flow.New("bench-flow")
				if err := f.AddActivity(flow.Activity{Name: "edit"}); err != nil {
					b.Fatal(err)
				}
				if _, err := fw.RegisterFlow(f); err != nil {
					b.Fatal(err)
				}
				project, err := fw.CreateProject("p", team)
				if err != nil {
					b.Fatal(err)
				}
				vt, err := fw.CreateViewType("schematic")
				if err != nil {
					b.Fatal(err)
				}
				users := make([]string, n)
				variants := make([]oms.OID, n)
				for d := 0; d < n; d++ {
					users[d] = fmt.Sprintf("u%d", d)
					uid, err := fw.CreateUser(users[d])
					if err != nil {
						b.Fatal(err)
					}
					if err := fw.AddMember(team, uid); err != nil {
						b.Fatal(err)
					}
					cell, err := fw.CreateCell(project, fmt.Sprintf("c%d", d))
					if err != nil {
						b.Fatal(err)
					}
					cv, err := fw.CreateCellVersion(cell, "bench-flow", team)
					if err != nil {
						b.Fatal(err)
					}
					if err := fw.Reserve(users[d], cv); err != nil {
						b.Fatal(err)
					}
					variants[d] = fw.Variants(cv)[0]
				}
				src := filepath.Join(b.TempDir(), "design.dat")
				payload := make([]byte, 256)
				for i := range payload {
					payload[i] = byte(i)
				}
				if err := os.WriteFile(src, payload, 0o644); err != nil {
					b.Fatal(err)
				}
				checkin := fw.CheckInData
				if mode == "op-by-op" {
					checkin = fw.CheckInDataOpByOp
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for d := 0; d < n; d++ {
						wg.Add(1)
						go func(d int) {
							defer wg.Done()
							do, err := fw.CreateDesignObject(variants[d], fmt.Sprintf("do-%d-%d", d, i), vt)
							if err != nil {
								b.Errorf("create design object: %v", err)
								return
							}
							for s := 0; s < checkinsPerOp; s++ {
								if _, err := checkin(users[d], do, src); err != nil {
									b.Errorf("checkin: %v", err)
									return
								}
							}
						}(d)
					}
					wg.Wait()
				}
			})
		}
	}
}

// BenchmarkE39DifferentialSave measures Framework.SaveTo on the segment
// backend at growing store sizes, full-snapshot vs differential
// (BENCH_4.json; the PR 4 change-feed ablation):
//
//   - full: SetDifferentialSave(false) — every save re-encodes and
//     re-appends the entire store, so cost grows with store size.
//   - differential: each save writes only the change-feed suffix since
//     the previous commit (here: `churn` checkins), so cost tracks the
//     churn, not the store. Every 64th save compacts back to a full
//     base (the chain bound) and is included in the timing — the
//     amortized honest number.
//
// The two modes do identical designer work per iteration. The crossover
// is immediate and widens with store size: at equal churn, differential
// cost is flat while full cost is linear in accumulated design data.
// Regenerate with `make bench-feed`.
func BenchmarkE39DifferentialSave(b *testing.B) {
	const churn = 8 // checkins between saves
	for _, objects := range []int{500, 2000, 8000} {
		for _, mode := range []string{"full", "differential"} {
			b.Run(fmt.Sprintf("objects=%d/mode=%s", objects, mode), func(b *testing.B) {
				fw, err := jcf.New(jcf.Release30)
				if err != nil {
					b.Fatal(err)
				}
				team, err := fw.CreateTeam("bench")
				if err != nil {
					b.Fatal(err)
				}
				uid, err := fw.CreateUser("u")
				if err != nil {
					b.Fatal(err)
				}
				if err := fw.AddMember(team, uid); err != nil {
					b.Fatal(err)
				}
				f := flow.New("bench-flow")
				if err := f.AddActivity(flow.Activity{Name: "edit"}); err != nil {
					b.Fatal(err)
				}
				if _, err := fw.RegisterFlow(f); err != nil {
					b.Fatal(err)
				}
				project, err := fw.CreateProject("p", team)
				if err != nil {
					b.Fatal(err)
				}
				vt, err := fw.CreateViewType("schematic")
				if err != nil {
					b.Fatal(err)
				}
				cell, err := fw.CreateCell(project, "c")
				if err != nil {
					b.Fatal(err)
				}
				cv, err := fw.CreateCellVersion(cell, "bench-flow", team)
				if err != nil {
					b.Fatal(err)
				}
				if err := fw.Reserve("u", cv); err != nil {
					b.Fatal(err)
				}
				variant := fw.Variants(cv)[0]
				src := filepath.Join(b.TempDir(), "design.dat")
				payload := make([]byte, 512)
				for i := range payload {
					payload[i] = byte(i)
				}
				if err := os.WriteFile(src, payload, 0o644); err != nil {
					b.Fatal(err)
				}
				checkin := func(tag string) {
					do, err := fw.CreateDesignObject(variant, tag, vt)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := fw.CheckInData("u", do, src); err != nil {
						b.Fatal(err)
					}
				}
				for i := 0; i < objects; i++ {
					checkin(fmt.Sprintf("seed-%d", i))
				}
				fw.SetDifferentialSave(mode == "differential")
				dir := b.TempDir()
				if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
					if d, err := os.MkdirTemp("/dev/shm", "omsfeed"); err == nil {
						dir = d
						b.Cleanup(func() { os.RemoveAll(d) })
					}
				}
				seg, err := backend.OpenSegment(dir)
				if err != nil {
					b.Fatal(err)
				}
				if err := fw.SaveTo(seg); err != nil { // the base epoch
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					for c := 0; c < churn; c++ {
						checkin(fmt.Sprintf("churn-%d-%d", i, c))
					}
					b.StartTimer()
					if err := fw.SaveTo(seg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFeedWatchLatency measures end-to-end change-feed delivery:
// the time from issuing a Set to a Watch subscriber holding the
// committed record (publisher and subscriber on the same machine —
// the in-process bound a second-machine replica would add its network
// to). Regenerate with `make bench-feed`.
func BenchmarkFeedWatchLatency(b *testing.B) {
	schema := oms.NewSchema()
	if err := schema.AddClass("Cell",
		oms.AttrDef{Name: "rev", Kind: oms.KindInt}); err != nil {
		b.Fatal(err)
	}
	st := oms.NewStore(schema)
	oid, err := st.Create("Cell", nil)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := st.Watch(st.FeedLSN(), 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := st.Set(oid, "rev", oms.I(int64(i))); err != nil {
			b.Fatal(err)
		}
		target := st.FeedLSN()
		for {
			g, ok := <-sub.C()
			if !ok {
				b.Fatal("subscription closed")
			}
			if g[len(g)-1].LSN >= target {
				break
			}
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-delivery-ns")
		b.ReportMetric(float64(lat[int(0.99*float64(len(lat)-1))].Nanoseconds()), "p99-delivery-ns")
	}
}

// BenchmarkE40ReplicaReadScaling measures aggregate read throughput
// against 1/2/4 read-only replica views while the primary keeps
// mutating (BENCH_5.json, `make bench-repl`). Readers are distributed
// round-robin across the replica views; the primary runs a continuous
// constant-size write load in the background, so the replicas earn
// their keep by taking the read traffic off the contended writer.
func BenchmarkE40ReplicaReadScaling(b *testing.B) {
	// replicas=0 is the baseline: reads served by the mutating primary
	// itself (one replica is still wired up so the replication pipeline
	// cost stays in the picture, but readers bypass it).
	for _, n := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			world, err := experiments.NewReplicationWorld(max(n, 1), 24)
			if err != nil {
				b.Fatal(err)
			}
			defer world.Close()
			views := world.Views
			if n == 0 {
				views = []*jcf.Framework{world.FW}
			}
			// Paced writer: a fixed ~5k writes/s background load, so every
			// replica count faces the same write pressure (an unthrottled
			// writer would starve readers unpredictably on a small box).
			stop := make(chan struct{})
			var writerDone sync.WaitGroup
			writerDone.Add(1)
			go func() {
				defer writerDone.Done()
				tick := time.NewTicker(200 * time.Microsecond)
				defer tick.Stop()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					if _, err := world.MutatePrimary(i); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			var next atomic.Int64
			b.SetParallelism(8) // spread readers across the views even on 1 CPU
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				view := views[int(next.Add(1))%len(views)]
				i := 0
				for pb.Next() {
					if err := world.ReadProbe(view, i); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			close(stop)
			writerDone.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// BenchmarkE41ReplicationLag measures commit-to-replica-visibility
// latency: each iteration commits one write on the primary and waits for
// the replica's read-your-writes barrier to cover it, while a paced
// background writer keeps a sustained load on the feed and a paced
// reader keeps the view busy (BENCH_5.json).
func BenchmarkE41ReplicationLag(b *testing.B) {
	world, err := experiments.NewReplicationWorld(1, 24)
	if err != nil {
		b.Fatal(err)
	}
	defer world.Close()
	rep := world.Replicas[0]
	// Sustained background load: one paced writer (~5k writes/s on a
	// second reservation target, so it never collides with the measured
	// writer) plus one paced reader on the view — the barrier latency is
	// measured under real replication traffic rather than on an idle
	// feed, without starving the apply loop on a small box.
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if err := world.ChurnPrimary(i); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	bg.Add(1)
	go func() {
		defer bg.Done()
		tick := time.NewTicker(100 * time.Microsecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if err := world.ReadProbe(world.Views[0], i); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn, err := world.MutatePrimary(i)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if err := rep.WaitFor(lsn, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	bg.Wait()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-lag-ns")
		b.ReportMetric(float64(lat[int(0.99*float64(len(lat)-1))].Nanoseconds()), "p99-lag-ns")
	}
}

// BenchmarkE34UIContexts and BenchmarkM1FeatureMatrix regenerate the
// remaining qualitative artifacts so every section has a bench target.
func BenchmarkE34UIContexts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, env := range []string{"fmcad", "jcf", "hybrid"} {
			if _, err := core.UIContexts(env); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkM1FeatureMatrix renders the capability matrix.
func BenchmarkM1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.RenderFeatureMatrix()) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkA1MenuLockAblation runs the rogue workload of the section 2.4
// menu-locking ablation (locks on + locks off).
func BenchmarkA1MenuLockAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunA1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// pctNS returns the p-quantile of a latency sample in nanoseconds
// (sorts ds in place).
func pctNS(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return float64(ds[int(p*float64(len(ds)-1))].Nanoseconds())
}

// BenchmarkE42BlobCheckin measures the two-stage content-addressed
// checkin pipeline against the inline baseline (BENCH_6.json) at
// 4KiB/256KiB/4MiB design sizes. Two latencies per iteration:
//
//   - checkin: CheckInData wall time. Inline pays hashing nothing but
//     carries the bytes through the batch; cas hashes up front, hands
//     the bytes to the async upload pool and commits only the ref.
//   - commit: the differential SaveTo that follows — the metadata
//     commit. Inline deltas drag the full design bytes (base64 in the
//     feed payload), so commit latency grows with design size; cas
//     deltas carry the ~40-byte ref and stay flat.
//
// Every iteration stamps fresh content (NextDesign, outside the timer)
// so cas uploads are real, never dedup hits. The acceptance bar: cas
// p99 commit at 4MiB within 2x of 4KiB.
func BenchmarkE42BlobCheckin(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{{"4KiB", 4 << 10}, {"256KiB", 256 << 10}, {"4MiB", 4 << 20}}
	for _, mode := range []string{"inline", "cas"} {
		for _, sz := range sizes {
			b.Run(fmt.Sprintf("mode=%s/size=%s", mode, sz.name), func(b *testing.B) {
				w, err := experiments.NewBlobWorld(mode == "cas", sz.n)
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				// One unmeasured warmup: first-touch costs (pool fills,
				// backend directory creation, base-delta setup) otherwise
				// land in a single iteration's p99.
				if _, err := w.CheckIn(); err != nil {
					b.Fatal(err)
				}
				if err := w.Drain(); err != nil {
					b.Fatal(err)
				}
				if err := w.Save(); err != nil {
					b.Fatal(err)
				}
				if err := w.NextDesign(); err != nil {
					b.Fatal(err)
				}
				checkin := make([]time.Duration, 0, b.N)
				commit := make([]time.Duration, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					if _, err := w.CheckIn(); err != nil {
						b.Fatal(err)
					}
					checkin = append(checkin, time.Since(t0))
					// Quiesce the async upload before timing the commit:
					// the pipeline's contract is that METADATA latency is
					// size-independent; overlapping the CAS upload's disk
					// traffic would measure device contention instead.
					b.StopTimer()
					if err := w.Drain(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					t1 := time.Now()
					if err := w.Save(); err != nil {
						b.Fatal(err)
					}
					commit = append(commit, time.Since(t1))
					b.StopTimer()
					if err := w.NextDesign(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				b.StopTimer()
				b.SetBytes(int64(sz.n))
				b.ReportMetric(pctNS(checkin, 0.50), "p50-checkin-ns")
				b.ReportMetric(pctNS(checkin, 0.99), "p99-checkin-ns")
				b.ReportMetric(pctNS(commit, 0.50), "p50-commit-ns")
				b.ReportMetric(pctNS(commit, 0.99), "p99-commit-ns")
			})
		}
	}
}

// BenchmarkE42BlobDedup runs the re-checkin workload: every iteration
// checks in the SAME 256KiB content (new version, same bytes — the
// re-release pattern), so the CAS stores one physical copy however many
// versions reference it. dedup-ratio = logical/physical ingest.
func BenchmarkE42BlobDedup(b *testing.B) {
	w, err := experiments.NewBlobWorld(true, 256<<10)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.CheckIn(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Publish drains the async uploads — every version durable.
	if err := w.Publish(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256 << 10)
	b.ReportMetric(w.DedupRatio(), "dedup-ratio")
}

// BenchmarkE42BlobReplFrames measures the replication bytes one 4MiB
// checkin ships to a converged follower: inline frames carry the design
// bytes (base64-inflated), cas frames carry the ~40-byte ref — the
// follower pulls bytes lazily only when a reader asks.
func BenchmarkE42BlobReplFrames(b *testing.B) {
	const size = 4 << 20
	for _, mode := range []string{"inline", "cas"} {
		b.Run("mode="+mode, func(b *testing.B) {
			w, err := experiments.NewBlobWorld(mode == "cas", size)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			if err := w.StartReplication(); err != nil {
				b.Fatal(err)
			}
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := w.NextDesign(); err != nil {
					b.Fatal(err)
				}
				if err := w.WaitReplica(30 * time.Second); err != nil {
					b.Fatal(err)
				}
				before := w.FrameBytes()
				b.StartTimer()
				if _, err := w.CheckIn(); err != nil {
					b.Fatal(err)
				}
				if err := w.WaitReplica(30 * time.Second); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				total += w.FrameBytes() - before
				b.StartTimer()
			}
			b.StopTimer()
			b.SetBytes(size)
			b.ReportMetric(float64(total)/float64(b.N), "frame-bytes-per-checkin")
		})
	}
}
