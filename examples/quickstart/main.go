// Quickstart: the smallest end-to-end tour of the hybrid JCF-FMCAD
// framework. It creates a team and a project, binds a design cell, runs
// the full encapsulated tool flow (schematic entry -> simulation ->
// layout entry) on a half adder, and shows the design-management facts
// the master recorded along the way.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/tools/schematic"
)

func main() {
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Assemble the coupled framework: JCF 3.0 master, FMCAD slave.
	h, err := core.NewHybrid(jcf.Release30, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid framework ready; FMCAD data-management menus locked:",
		h.Hooks.LockedMenus())

	// 2. Administrator work: a user, a team, a project.
	if _, err := h.JCF.CreateUser("anna"); err != nil {
		log.Fatal(err)
	}
	team, err := h.JCF.CreateTeam("demo")
	if err != nil {
		log.Fatal(err)
	}
	anna, err := h.JCF.User("anna")
	if err != nil {
		log.Fatal(err)
	}
	if err := h.JCF.AddMember(team, anna); err != nil {
		log.Fatal(err)
	}
	project, err := h.JCF.CreateProject("intro", team)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A design cell: one JCF cell version, bound to an FMCAD cell.
	cv, err := h.NewDesignCell(project, "halfadder", h.DefaultFlowName(), team)
	if err != nil {
		log.Fatal(err)
	}
	b, err := h.BindingFor(cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JCF cell version #%d <-> FMCAD cell %q (Table 1 mapping)\n", cv, b.FMCADCell)

	// 4. Reserve the workspace — nobody else can touch this version now.
	if err := h.JCF.Reserve("anna", cv); err != nil {
		log.Fatal(err)
	}

	// 5. Schematic entry through the encapsulation.
	sres, err := h.RunSchematicEntry("anna", cv, func(s *schematic.Schematic) error {
		for _, p := range []struct {
			name string
			dir  schematic.PortDir
		}{{"a", schematic.In}, {"b", schematic.In}, {"sum", schematic.Out}, {"carry", schematic.Out}} {
			if err := s.AddPort(p.name, p.dir); err != nil {
				return err
			}
		}
		if err := s.AddGate("x1", schematic.Xor2, "sum", "a", "b"); err != nil {
			return err
		}
		return s.AddGate("a1", schematic.And2, "carry", "a", "b")
	}, core.RunOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schematic entry done: JCF version %d, FMCAD cellview v%d\n",
		sres.OutputDOV, sres.SlaveVersion)

	// 6. Simulate a=1, b=1: expect sum=0, carry=1.
	stim := []byte("at 0 set a 1\nat 0 set b 1\nrun 100\n")
	_, waves, err := h.RunSimulation("anna", cv, stim, core.RunOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation waves:\n%s", waves)

	// 7. Layout entry (seeded from the schematic).
	lres, err := h.RunLayoutEntry("anna", cv, nil, core.RunOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout entry done: derived from schematic version %d\n", lres.InputDOV)

	// 8. What the master knows: flow state and derivations.
	done, err := h.JCF.FlowComplete(cv)
	if err != nil {
		log.Fatal(err)
	}
	closure := h.JCF.DerivationClosure(sres.OutputDOV)
	fmt.Printf("flow complete: %t; versions derived from the schematic: %d\n", done, len(closure))

	// 9. Cross-probe "sum" from schematic to layout through the wrapper.
	probe := h.EnableCrossProbe("anna")
	res, err := probe(cv, "sum")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-probe %q: %d layout shapes\n", res.Net, len(res.Shapes))

	// 10. Publish so teammates can read.
	if err := h.JCF.Publish("anna", cv); err != nil {
		log.Fatal(err)
	}
	fmt.Println("published — other team members can now read and reserve")
}
