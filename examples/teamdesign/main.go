// Teamdesign reproduces the section 3.1 story as a runnable scenario: a
// four-designer team working on one chip, first through standalone FMCAD
// (one library, one .meta file, checkout locks), then through the hybrid
// framework (JCF workspaces, parallel cell versions).
//
// Run with:
//
//	go run ./examples/teamdesign
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fmcad"
	"repro/internal/jcf"
	"repro/internal/tools/schematic"
)

var designers = []string{"anna", "bert", "carl", "dora"}

func main() {
	fmt.Println("== standalone FMCAD: one library, one .meta, checkout locks ==")
	if err := fmcadScenario(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("== hybrid JCF-FMCAD: workspaces and parallel cell versions ==")
	if err := hybridScenario(); err != nil {
		log.Fatal(err)
	}
}

// fmcadScenario: everyone wants the shared toplevel. Only one designer
// can hold the checkout; the rest stall. And nobody can work on an older
// version while the newest is being edited.
func fmcadScenario() error {
	dir, err := os.MkdirTemp("", "teamdesign-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	lib, err := fmcad.Create(filepath.Join(dir, "lib"), "chip")
	if err != nil {
		return err
	}
	if err := lib.DefineView("schematic", "schematic"); err != nil {
		return err
	}
	if err := lib.CreateCell("toplevel"); err != nil {
		return err
	}
	if err := lib.CreateCellview("toplevel", "schematic"); err != nil {
		return err
	}

	sessions := map[string]*fmcad.Session{}
	for _, d := range designers {
		sessions[d] = lib.NewSession(d)
	}
	// anna wins the race for the toplevel.
	wf, err := sessions["anna"].Checkout("toplevel", "schematic")
	if err != nil {
		return err
	}
	fmt.Println("anna checked out toplevel/schematic")
	for _, d := range designers[1:] {
		if _, err := sessions[d].Checkout("toplevel", "schematic"); errors.Is(err, fmcad.ErrLocked) {
			fmt.Printf("%s blocked: %v\n", d, err)
		}
	}
	// Stale metadata: bert refreshed before anna's checkout and cannot
	// even see who holds the lock.
	fresh := lib.NewSession("eve")
	fresh.Refresh()
	if _, err := sessions["bert"].LockedSeen("toplevel", "schematic"); err == nil {
		holder, _ := sessions["bert"].LockedSeen("toplevel", "schematic")
		fmt.Printf("bert's stale view of the lock holder: %q (actual: anna)\n", holder)
	}
	if _, err := sessions["anna"].Checkin(wf); err != nil {
		return err
	}
	fmt.Printf("total blocked checkouts: %d of %d designers\n", lib.Conflicts(), len(designers)-1)
	return nil
}

// hybridScenario: each designer reserves their own block; the toplevel is
// worked on in two parallel cell versions at once.
func hybridScenario() error {
	dir, err := os.MkdirTemp("", "teamdesign-h-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	h, err := core.NewHybrid(jcf.Release30, dir)
	if err != nil {
		return err
	}
	team, err := h.JCF.CreateTeam("vlsi")
	if err != nil {
		return err
	}
	for _, d := range designers {
		uid, err := h.JCF.CreateUser(d)
		if err != nil {
			return err
		}
		if err := h.JCF.AddMember(team, uid); err != nil {
			return err
		}
	}
	project, err := h.JCF.CreateProject("chip", team)
	if err != nil {
		return err
	}

	// One block per designer: zero contention by construction.
	blocks := map[string]interface{ String() string }{}
	_ = blocks
	for i, d := range designers {
		cv, err := h.NewDesignCell(project, fmt.Sprintf("block%d", i), h.DefaultFlowName(), team)
		if err != nil {
			return err
		}
		if err := h.JCF.Reserve(d, cv); err != nil {
			return err
		}
		fmt.Printf("%s reserved block%d v1 in a private workspace\n", d, i)
		draw := func(s *schematic.Schematic) error {
			if err := s.AddPort("in", schematic.In); err != nil {
				return err
			}
			if err := s.AddPort("out", schematic.Out); err != nil {
				return err
			}
			return s.AddGate("g", schematic.Inv, "out", "in")
		}
		if _, err := h.RunSchematicEntry(d, cv, draw, core.RunOpts{}); err != nil {
			return err
		}
	}
	fmt.Printf("four designers drew four blocks; slave lock conflicts: %d\n", h.Lib.Conflicts())

	// The toplevel in two parallel versions: anna iterates v1 while bert
	// explores an alternative in v2 — the feature FMCAD cannot offer.
	topV1, err := h.NewDesignCell(project, "toplevel", h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	topCell, err := h.JCF.CellOf(topV1)
	if err != nil {
		return err
	}
	topV2, err := h.NewCellVersion(topCell, h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	if err := h.JCF.Reserve("anna", topV1); err != nil {
		return err
	}
	if err := h.JCF.Reserve("bert", topV2); err != nil {
		return err
	}
	draw := func(s *schematic.Schematic) error {
		if err := s.AddPort("clk", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("q", schematic.Out); err != nil {
			return err
		}
		if err := s.AddNet("d"); err != nil {
			return err
		}
		return s.AddGate("ff", schematic.Dff, "q", "d", "clk")
	}
	if _, err := h.RunSchematicEntry("anna", topV1, draw, core.RunOpts{}); err != nil {
		return err
	}
	if _, err := h.RunSchematicEntry("bert", topV2, draw, core.RunOpts{}); err != nil {
		return err
	}
	fmt.Println("anna (toplevel v1) and bert (toplevel v2) edited the same cellview in parallel")
	fmt.Printf("JCF reservation conflicts: %d; slave conflicts: %d\n",
		h.JCF.ReserveConflicts(), h.Lib.Conflicts())
	return nil
}
