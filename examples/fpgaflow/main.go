// Fpgaflow models an FPGA design flow in JCF, after the authors' own
// companion work ("Modelling a FPGA Design Flow in the
// JESSI-COMMON-FRAMEWORK", Seepold et al. 1994, cited as [Seep94b]): a
// five-step forced flow (entry -> synthesis -> map -> place&route ->
// bitgen) whose order the framework prescribes, with derivation relations
// recorded at every step so "what belongs to what" stays answerable.
//
// Run with:
//
//	go run ./examples/fpgaflow
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/flow"
	"repro/internal/jcf"
	"repro/internal/oms"
)

// The FPGA flow steps, in prescribed order.
var steps = []flow.Activity{
	{Name: "entry", Tool: "hdl-editor", Creates: []string{"hdl"}},
	{Name: "synthesis", Tool: "synthesizer", Needs: []string{"hdl"}, Creates: []string{"netlist"}},
	{Name: "map", Tool: "mapper", Needs: []string{"netlist"}, Creates: []string{"mapped"}},
	{Name: "place-route", Tool: "par", Needs: []string{"mapped"}, Creates: []string{"routed"}},
	{Name: "bitgen", Tool: "bitgen", Needs: []string{"routed"}, Creates: []string{"bitstream"}},
}

func main() {
	fw, err := jcf.New(jcf.Release30)
	if err != nil {
		log.Fatal(err)
	}

	// Resources: tools, view types, the flow itself.
	for _, a := range steps {
		if _, err := fw.CreateTool(a.Tool); err != nil {
			log.Fatal(err)
		}
	}
	viewTypes := map[string]oms.OID{}
	for _, vt := range []string{"hdl", "netlist", "mapped", "routed", "bitstream"} {
		oid, err := fw.CreateViewType(vt)
		if err != nil {
			log.Fatal(err)
		}
		viewTypes[vt] = oid
	}
	f := flow.New("fpga")
	for _, a := range steps {
		if err := f.AddActivity(a); err != nil {
			log.Fatal(err)
		}
	}
	for i := 1; i < len(steps); i++ {
		if err := f.AddPrecedes(steps[i-1].Name, steps[i].Name); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := fw.RegisterFlow(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered forced FPGA flow:", f.Activities())

	// Project: one FPGA design run by a two-person team.
	if _, err := fw.CreateUser("ulla"); err != nil {
		log.Fatal(err)
	}
	team, err := fw.CreateTeam("fpga-team")
	if err != nil {
		log.Fatal(err)
	}
	uid, err := fw.User("ulla")
	if err != nil {
		log.Fatal(err)
	}
	if err := fw.AddMember(team, uid); err != nil {
		log.Fatal(err)
	}
	project, err := fw.CreateProject("fpga-board", team)
	if err != nil {
		log.Fatal(err)
	}
	cell, err := fw.CreateCell(project, "controller")
	if err != nil {
		log.Fatal(err)
	}
	cv, err := fw.CreateCellVersion(cell, "fpga", team)
	if err != nil {
		log.Fatal(err)
	}
	if err := fw.Reserve("ulla", cv); err != nil {
		log.Fatal(err)
	}

	// The framework refuses to jump ahead.
	if err := fw.StartActivity("ulla", cv, "bitgen"); err != nil {
		fmt.Println("bitgen before synthesis refused:", err)
	}

	// Run the flow in order; each step checks its output into the
	// database and records the derivation from the previous artifact.
	dir, err := os.MkdirTemp("", "fpga-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	variant := fw.Variants(cv)[0]
	var prev oms.OID
	for _, a := range steps {
		if err := fw.StartActivity("ulla", cv, a.Name); err != nil {
			log.Fatal(err)
		}
		// The "tool" produces its artifact file.
		artifact := filepath.Join(dir, a.Creates[0])
		content := fmt.Sprintf("%s output for controller\n", a.Tool)
		if err := os.WriteFile(artifact, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		do, err := fw.CreateDesignObject(variant, "controller-"+a.Creates[0], viewTypes[a.Creates[0]])
		if err != nil {
			log.Fatal(err)
		}
		dov, err := fw.CheckInData("ulla", do, artifact)
		if err != nil {
			log.Fatal(err)
		}
		if prev != oms.InvalidOID {
			if err := fw.RecordDerivation(prev, dov); err != nil {
				log.Fatal(err)
			}
		}
		if err := fw.FinishActivity("ulla", cv, a.Name, true); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s done -> %s version %d\n", a.Name, a.Creates[0], dov)
		prev = dov
	}

	done, err := fw.FlowComplete(cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flow complete:", done)

	// What-belongs-to-what: walk the derivation chain from the HDL.
	hdlDO, err := fw.DesignObjectByName(variant, "controller-hdl")
	if err != nil {
		log.Fatal(err)
	}
	hdlV := fw.LatestVersion(hdlDO)
	closure := fw.DerivationClosure(hdlV)
	fmt.Printf("derivation closure of the HDL: %d artifacts "+
		"(netlist, mapped, routed, bitstream)\n", len(closure))
	rejections, err := fw.FlowRejections(cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-order attempts refused by the forced flow: %d\n", rejections)
}
