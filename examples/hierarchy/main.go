// Hierarchy walks through section 3.3: how the hybrid framework handles
// design hierarchies under the JCF 3.0 master (manual desktop submission
// before design, non-isomorphic hierarchies rejected) and how the future
// JCF 4.0 release lifts both restrictions (procedural interface, typed
// per-view hierarchies).
//
// Run with:
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/layout"
	"repro/internal/tools/schematic"
)

func main() {
	fmt.Println("== JCF 3.0 master: desktop-first, isomorphic-only ==")
	if err := scenario(jcf.Release30); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("== JCF 4.0 master: procedural interface, non-isomorphic OK ==")
	if err := scenario(jcf.Release40); err != nil {
		log.Fatal(err)
	}
}

func scenario(release jcf.Release) error {
	dir, err := os.MkdirTemp("", "hierarchy-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	h, err := core.NewHybrid(release, dir)
	if err != nil {
		return err
	}
	if _, err := h.JCF.CreateUser("anna"); err != nil {
		return err
	}
	team, err := h.JCF.CreateTeam("t")
	if err != nil {
		return err
	}
	anna, err := h.JCF.User("anna")
	if err != nil {
		return err
	}
	if err := h.JCF.AddMember(team, anna); err != nil {
		return err
	}
	project, err := h.JCF.CreateProject("p", team)
	if err != nil {
		return err
	}

	top, err := h.NewDesignCell(project, "top", h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	alu, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	pad, err := h.NewDesignCell(project, "pad", h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	_ = pad
	// Draw and publish the child first so the parent's simulation can
	// resolve it through the master database.
	if err := h.JCF.Reserve("anna", alu); err != nil {
		return err
	}
	if _, err := h.RunSchematicEntry("anna", alu, func(s *schematic.Schematic) error {
		if err := s.AddPort("in", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("out", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("g", schematic.Inv, "out", "in")
	}, core.RunOpts{}); err != nil {
		return err
	}
	if err := h.JCF.Publish("anna", alu); err != nil {
		return err
	}
	if err := h.JCF.Reserve("anna", top); err != nil {
		return err
	}

	// 1. Instantiating alu without telling the desktop first.
	_, err = h.AddSchematicInstance("anna", top, alu, "u1", nil, core.RunOpts{})
	switch {
	case err != nil && release == jcf.Release30:
		fmt.Println("instance before desktop submission refused (3.0 rule):")
		fmt.Println("   ", err)
		// Do it the 3.0 way: desktop first.
		if err := h.SubmitHierarchyManual(top, alu); err != nil {
			return err
		}
		if _, err := h.AddSchematicInstance("anna", top, alu, "u1", nil, core.RunOpts{}); err != nil {
			return err
		}
		fmt.Println("after manual desktop submission the instance is accepted")
	case err == nil && release == jcf.Release40:
		fmt.Println("instance accepted directly — the tool passed the hierarchy")
		fmt.Println("to JCF through the procedural interface (no desktop step)")
	case err != nil:
		return err
	}

	// 2. The hierarchy is now queryable metadata in the master.
	kids := h.JCF.Children(top)
	fmt.Printf("JCF hierarchy metadata: top has %d child version(s)\n", len(kids))
	problems, err := h.HierarchyMatchesDesign(top)
	if err != nil {
		return err
	}
	fmt.Printf("hierarchy vs design files consistency: %d problems\n", len(problems))

	// 3. Non-isomorphic attempt: pads exist only in the layout.
	if _, _, err := h.RunSimulation("anna", top, []byte("run 20\n"), core.RunOpts{}); err != nil {
		return err
	}
	_, err = h.RunLayoutEntry("anna", top, func(l *layout.Layout) error {
		return l.AddInstance("p1", "pad_v1", core.ViewLayout, 0, 0)
	}, core.RunOpts{})
	if err != nil {
		fmt.Println("layout with pad-only instance rejected (non-isomorphic, 3.0):")
		fmt.Println("   ", err)
	} else {
		fmt.Println("layout with pad-only instance accepted (4.0 typed hierarchies)")
		if n, err := h.SyncHierarchyFromDesign(top); err == nil {
			fmt.Printf("hierarchy sync from design files: %d typed edges recorded\n", n)
			sch, _ := h.JCF.TypedChildren(top, core.ViewSchematic)
			lay, _ := h.JCF.TypedChildren(top, core.ViewLayout)
			fmt.Printf("schematic hierarchy: %d children; layout hierarchy: %d children\n",
				len(sch), len(lay))
		}
	}
	_ = oms.InvalidOID
	return nil
}
