// Policy shows the extension-language side of the coupling (section 2.4):
// the hybrid framework exposes its desktop operations to FML, and a
// site-specific customization script installs triggers that gate tool
// execution — here a "sign-off" policy that blocks layout entry until the
// design has been simulated in the current session, plus a design-freeze
// switch an administrator can flip at run time.
//
// Run with:
//
//	go run ./examples/policy
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/tools/schematic"
)

// sitePolicy is written in FML, the slave framework's own customization
// language, exactly like the original prototype's procedures.
const sitePolicy = `
; --- site policy for the hybrid framework -------------------------------
(setq simulated nil)    ; has the current session simulated the design?
(setq designFreeze nil) ; administrator switch

(hiRegTrigger "preActivity"
  (lambda (activity)
    (when designFreeze
      (error "design freeze: no tool runs allowed"))
    (when (and (equal activity "layout-entry") (not simulated))
      (error "sign-off policy: simulate before layout entry"))))

(hiRegTrigger "postActivity"
  (lambda (activity)
    (when (equal activity "simulate") (setq simulated t))))
`

func main() {
	dir, err := os.MkdirTemp("", "policy-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	h, err := core.NewHybrid(jcf.Release30, dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.InstallPolicy(sitePolicy); err != nil {
		log.Fatal(err)
	}
	fmt.Println("site policy installed (FML):")
	fmt.Println("  - layout entry requires a simulation in this session")
	fmt.Println("  - administrators can freeze all tool runs")

	// Standard setup.
	if _, err := h.JCF.CreateUser("anna"); err != nil {
		log.Fatal(err)
	}
	team, err := h.JCF.CreateTeam("t")
	if err != nil {
		log.Fatal(err)
	}
	anna, _ := h.JCF.User("anna")
	if err := h.JCF.AddMember(team, anna); err != nil {
		log.Fatal(err)
	}
	project, err := h.JCF.CreateProject("p", team)
	if err != nil {
		log.Fatal(err)
	}
	cv, err := h.NewDesignCell(project, "blk", h.DefaultFlowName(), team)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", cv); err != nil {
		log.Fatal(err)
	}

	// Draw the schematic.
	if _, err := h.RunSchematicEntry("anna", cv, func(s *schematic.Schematic) error {
		if err := s.AddPort("a", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("y", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("g", schematic.Inv, "y", "a")
	}, core.RunOpts{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschematic drawn")

	// The flow itself would allow layout after simulate; the POLICY is
	// stricter — it wants a simulation in *this session*. Skipping
	// simulation and forcing the flow shows the policy veto.
	_, err = h.RunLayoutEntry("anna", cv, nil, core.RunOpts{Force: true})
	if err != nil {
		fmt.Println("layout without simulation vetoed by policy:")
		fmt.Println("   ", err)
	}

	// Simulate; the post-trigger records it; layout now passes the gate.
	if _, _, err := h.RunSimulation("anna", cv, []byte("at 0 set a 0\nrun 20\n"), core.RunOpts{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulation done (policy noted it)")
	if _, err := h.RunLayoutEntry("anna", cv, nil, core.RunOpts{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout entry allowed after simulation")

	// The administrator freezes the design; everything stops.
	if _, err := h.Interp.Run("(setq designFreeze t)"); err != nil {
		log.Fatal(err)
	}
	_, err = h.RunSchematicEntry("anna", cv, func(s *schematic.Schematic) error {
		return s.AddNet("late-change")
	}, core.RunOpts{})
	if err != nil {
		fmt.Println("\nafter (setq designFreeze t) every tool run is vetoed:")
		fmt.Println("   ", err)
	}

	// Execution history straight from the master database.
	fmt.Println("\nactivity execution history (from OMS):")
	for _, entry := range h.JCF.ExecutionHistory(cv) {
		fmt.Println("  ", entry)
	}
}
