package fmcad

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Session is one designer's connection to a library. It holds a private
// snapshot of the library metadata taken at open (or the last Refresh).
// The paper: "The refreshment of the metadata objects is not performed
// automatically, and therefore, it is the responsibility of the designer to
// keep his design up to date. Of course, this aspect may cause severe
// locking problems during the design process." (section 2.2)
//
// Reads answer from the stale snapshot; writes go to the authoritative
// library and can fail with ErrLocked when another designer holds the
// checkout — conflicts the designer could not see coming because their
// snapshot was stale.
type Session struct {
	lib  *Library
	user string
	snap *meta // private, possibly stale
}

// NewSession opens a session for user, snapshotting the current metadata.
func (l *Library) NewSession(user string) *Session {
	return &Session{lib: l, user: user, snap: l.snapshot()}
}

// User returns the session owner.
func (s *Session) User() string { return s.user }

// Library returns the underlying library.
func (s *Session) Library() *Library { return s.lib }

// Refresh re-reads the library metadata — the manual step FMCAD requires.
func (s *Session) Refresh() { s.snap = s.lib.snapshot() }

// Stale reports whether the library has changed since the last Refresh.
func (s *Session) Stale() bool { return s.snap.Seq != s.lib.Seq() }

// --- stale reads -----------------------------------------------------------

// VersionsSeen returns the versions of a cellview as of the last Refresh.
// This may omit versions created by other users since then.
func (s *Session) VersionsSeen(cell, view string) ([]int, error) {
	cv, err := s.snap.cellview(cell, view)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), cv.Versions...), nil
}

// DefaultVersionSeen returns the default version as of the last Refresh.
func (s *Session) DefaultVersionSeen(cell, view string) (int, error) {
	cv, err := s.snap.cellview(cell, view)
	if err != nil {
		return 0, err
	}
	return cv.Default, nil
}

// LockedSeen reports the checkout holder as of the last Refresh — possibly
// wrong, which is how designers run into surprise conflicts.
func (s *Session) LockedSeen(cell, view string) (string, error) {
	cv, err := s.snap.cellview(cell, view)
	if err != nil {
		return "", err
	}
	return cv.LockedBy, nil
}

// CellsSeen lists cells as of the last Refresh.
func (s *Session) CellsSeen() []string {
	out := make([]string, 0, len(s.snap.Cells))
	for c := range s.snap.Cells {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// --- checkout / checkin ----------------------------------------------------

// Workfile is a checked-out cellview: a private working copy of the design
// file that Checkin will turn into the next version.
type Workfile struct {
	Cell, View string
	// BaseVersion is the version the checkout copied from.
	BaseVersion int
	// Path is the user's editable working copy.
	Path string

	session *Session
	done    bool
}

// workPath returns the per-user working-copy location.
func (s *Session) workPath(cell, view string) string {
	return filepath.Join(s.lib.dir, ".workspace", s.user, cell+"__"+view+".cv")
}

// Checkout acquires the cellview for this user and stages a working copy of
// the default version. It fails with ErrLocked if any other user holds the
// checkout. Checking out a cellview you already hold is an error too (one
// working copy at a time).
func (s *Session) Checkout(cell, view string) (*Workfile, error) {
	var base int
	err := s.lib.mutate(func(m *meta) error {
		cv, err := m.cellview(cell, view)
		if err != nil {
			return err
		}
		if cv.LockedBy != "" {
			s.lib.statConflicts++
			return fmt.Errorf("%w (%s/%s held by %s, wanted by %s)", ErrLocked, cell, view, cv.LockedBy, s.user)
		}
		cv.LockedBy = s.user
		base = cv.Default
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Stage the working copy from the base version file.
	src := s.lib.versionPath(cell, view, base)
	data, err := os.ReadFile(src)
	if err != nil {
		return nil, fmt.Errorf("fmcad: checkout stage: %w", err)
	}
	wp := s.workPath(cell, view)
	if err := os.MkdirAll(filepath.Dir(wp), 0o755); err != nil {
		return nil, fmt.Errorf("fmcad: checkout stage: %w", err)
	}
	if err := os.WriteFile(wp, data, 0o644); err != nil {
		return nil, fmt.Errorf("fmcad: checkout stage: %w", err)
	}
	return &Workfile{Cell: cell, View: view, BaseVersion: base, Path: wp, session: s}, nil
}

// Resume rebuilds the Workfile handle for a checkout this user already
// holds — the case of a designer returning in a fresh shell session. The
// working copy in .workspace is left as the user last wrote it.
func (s *Session) Resume(cell, view string) (*Workfile, error) {
	holder, err := s.lib.LockedBy(cell, view)
	if err != nil {
		return nil, err
	}
	if holder != s.user {
		return nil, fmt.Errorf("%w (%s/%s, lock holder %q)", ErrNotLocked, cell, view, holder)
	}
	wp := s.workPath(cell, view)
	if _, err := os.Stat(wp); err != nil {
		return nil, fmt.Errorf("fmcad: resume: working copy missing: %w", err)
	}
	def, err := s.lib.DefaultVersion(cell, view)
	if err != nil {
		return nil, err
	}
	return &Workfile{Cell: cell, View: view, BaseVersion: def, Path: wp, session: s}, nil
}

// Checkin turns the working copy into the next cellview version, makes it
// the default, and releases the lock. Returns the new version number.
func (s *Session) Checkin(wf *Workfile) (int, error) {
	if wf == nil || wf.session != s {
		return 0, fmt.Errorf("fmcad: checkin of foreign workfile")
	}
	if wf.done {
		return 0, fmt.Errorf("fmcad: workfile already checked in or cancelled")
	}
	data, err := os.ReadFile(wf.Path)
	if err != nil {
		return 0, fmt.Errorf("fmcad: checkin: %w", err)
	}
	var newVersion int
	err = s.lib.mutate(func(m *meta) error {
		cv, err := m.cellview(wf.Cell, wf.View)
		if err != nil {
			return err
		}
		if cv.LockedBy != s.user {
			return fmt.Errorf("%w (%s/%s, lock holder %q)", ErrNotLocked, wf.Cell, wf.View, cv.LockedBy)
		}
		newVersion = cv.Versions[len(cv.Versions)-1] + 1
		cv.Versions = append(cv.Versions, newVersion)
		cv.Default = newVersion
		cv.LockedBy = ""
		return nil
	})
	if err != nil {
		return 0, err
	}
	dst := s.lib.versionPath(wf.Cell, wf.View, newVersion)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return 0, fmt.Errorf("fmcad: checkin: %w", err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		return 0, fmt.Errorf("fmcad: checkin: %w", err)
	}
	wf.done = true
	_ = os.Remove(wf.Path) //lint:allow noerrdrop the version is committed; a leftover workfile is harmless scratch
	return newVersion, nil
}

// Cancel abandons a checkout, releasing the lock without creating a
// version.
func (s *Session) Cancel(wf *Workfile) error {
	if wf == nil || wf.session != s {
		return fmt.Errorf("fmcad: cancel of foreign workfile")
	}
	if wf.done {
		return fmt.Errorf("fmcad: workfile already checked in or cancelled")
	}
	err := s.lib.mutate(func(m *meta) error {
		cv, err := m.cellview(wf.Cell, wf.View)
		if err != nil {
			return err
		}
		if cv.LockedBy != s.user {
			return fmt.Errorf("%w (%s/%s, lock holder %q)", ErrNotLocked, wf.Cell, wf.View, cv.LockedBy)
		}
		cv.LockedBy = ""
		return nil
	})
	if err != nil {
		return err
	}
	wf.done = true
	_ = os.Remove(wf.Path) //lint:allow noerrdrop the lock is released; a leftover workfile is harmless scratch
	return nil
}
