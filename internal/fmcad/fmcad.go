// Package fmcad implements the FMCAD ECAD framework of the paper — a
// faithful stand-in for the widespread commercial framework (Cadence Design
// Framework II) whose proprietary endpoints no longer exist.
//
// FMCAD stores design data in *libraries*: a library is a real UNIX
// directory whose contents are described by a single .meta file (the
// metadata). The logical objects are cells, views, cellviews, cellview
// versions and configs (section 2.2):
//
//   - a Cell is the basic, logical design object;
//   - a View is one type of representation (schematic, layout, symbol) and
//     is of one viewtype, which associates it with a tool;
//   - a Cellview is the virtual data file for a (cell, view) pair;
//   - a CellviewVersion is the data file of a cellview at a particular
//     time, created by checkout/checkin, and maps to a design file;
//   - a Config is a collection of related cellview versions with at most
//     one version per cellview.
//
// Concurrency follows the paper exactly: a cellview can be checked out by
// only one user at a time, so two users can never work on two versions of
// the same cellview in parallel; metadata refresh is *manual* (Session
// snapshots go stale until Refresh is called), which is the source of the
// "severe locking problems" the paper reports in sections 2.2 and 3.1.
// Hierarchy is stored inside the design files (inst lines), not in the
// metadata, and is bound dynamically against default versions — flexible,
// but with no what-belongs-to-what history (section 3.5).
package fmcad

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MetaFileName is the single metadata file per library — the paper's
// "only one .meta file per project" bottleneck.
const MetaFileName = ".meta"

// Errors reported by the framework. ErrLocked is the checkout conflict the
// concurrency experiments count.
var (
	ErrLocked    = errors.New("fmcad: cellview is checked out by another user")
	ErrStale     = errors.New("fmcad: session metadata is stale; refresh required")
	ErrNotFound  = errors.New("fmcad: object not found")
	ErrExists    = errors.New("fmcad: object already exists")
	ErrNotLocked = errors.New("fmcad: cellview is not checked out by this user")
)

// cellviewMeta is the per-cellview record in the .meta file.
type cellviewMeta struct {
	Versions []int                        `json:"versions"` // ascending
	Default  int                          `json:"default"`  // highest checked-in version
	LockedBy string                       `json:"locked_by,omitempty"`
	Props    map[string]map[string]string `json:"props,omitempty"` // "v<N>" -> name -> value
}

// cellMeta is the per-cell record.
type cellMeta struct {
	Cellviews map[string]*cellviewMeta `json:"cellviews"` // view name -> record
}

// meta is the full content of the .meta file.
type meta struct {
	Name    string                    `json:"name"`
	Seq     int64                     `json:"seq"`   // bumped on every change; staleness marker
	Views   map[string]string         `json:"views"` // view name -> viewtype
	Cells   map[string]*cellMeta      `json:"cells"`
	Configs map[string]map[string]int `json:"configs"` // config -> "cell/view" -> version
}

func newMeta(name string) *meta {
	return &meta{
		Name:    name,
		Views:   map[string]string{},
		Cells:   map[string]*cellMeta{},
		Configs: map[string]map[string]int{},
	}
}

// clone deep-copies the metadata so session snapshots cannot alias the
// authoritative copy.
func (m *meta) clone() *meta {
	data, err := json.Marshal(m)
	if err != nil {
		panic("fmcad: meta clone: " + err.Error()) // plain data; cannot fail
	}
	var cp meta
	if err := json.Unmarshal(data, &cp); err != nil {
		panic("fmcad: meta clone: " + err.Error())
	}
	if cp.Views == nil {
		cp.Views = map[string]string{}
	}
	if cp.Cells == nil {
		cp.Cells = map[string]*cellMeta{}
	}
	if cp.Configs == nil {
		cp.Configs = map[string]map[string]int{}
	}
	return &cp
}

func (m *meta) cellview(cell, view string) (*cellviewMeta, error) {
	c, ok := m.Cells[cell]
	if !ok {
		return nil, fmt.Errorf("%w: cell %q", ErrNotFound, cell)
	}
	cv, ok := c.Cellviews[view]
	if !ok {
		return nil, fmt.Errorf("%w: cellview %s/%s", ErrNotFound, cell, view)
	}
	return cv, nil
}

// Library is an FMCAD design library: a directory plus its .meta file.
// The Library value is the authoritative, serialized access point; user
// Sessions each hold a possibly-stale snapshot of the metadata.
type Library struct {
	dir string

	mu   sync.Mutex
	meta *meta

	// statConflicts counts rejected checkouts; the section 3.1 experiment
	// reads it.
	statConflicts int64
}

// Create makes a new library directory at dir (which must not already
// contain a library) and writes an empty .meta.
func Create(dir, name string) (*Library, error) {
	if name == "" {
		return nil, fmt.Errorf("fmcad: empty library name")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fmcad: create library: %w", err)
	}
	metaPath := filepath.Join(dir, MetaFileName)
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("%w: library at %s", ErrExists, dir)
	}
	l := &Library{dir: dir, meta: newMeta(name)}
	if err := l.flushLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Open loads an existing library from dir.
func Open(dir string) (*Library, error) {
	data, err := os.ReadFile(filepath.Join(dir, MetaFileName))
	if err != nil {
		return nil, fmt.Errorf("fmcad: open library: %w", err)
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("fmcad: open library %s: %w", dir, err)
	}
	cp := (&m).clone() // normalizes nil maps
	return &Library{dir: dir, meta: cp}, nil
}

// Name returns the library name.
func (l *Library) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meta.Name
}

// Dir returns the library directory (the ".Project" of Figure 2).
func (l *Library) Dir() string { return l.dir }

// Seq returns the current metadata sequence number.
func (l *Library) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meta.Seq
}

// Conflicts returns the cumulative count of rejected checkouts.
func (l *Library) Conflicts() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.statConflicts
}

// flushLocked writes .meta; caller holds l.mu.
func (l *Library) flushLocked() error {
	data, err := json.MarshalIndent(l.meta, "", " ")
	if err != nil {
		return fmt.Errorf("fmcad: flush meta: %w", err)
	}
	tmp := filepath.Join(l.dir, MetaFileName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fmcad: flush meta: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, MetaFileName)); err != nil {
		return fmt.Errorf("fmcad: flush meta: %w", err)
	}
	return nil
}

// mutate applies fn to the authoritative metadata under the lock, bumps the
// sequence number and persists on success.
func (l *Library) mutate(fn func(m *meta) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := fn(l.meta); err != nil {
		return err
	}
	l.meta.Seq++
	return l.flushLocked()
}

// snapshot returns a deep copy of the current metadata.
func (l *Library) snapshot() *meta {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meta.clone()
}

// --- schema-level operations (views, cells, cellviews) -------------------

// DefineView declares a view name of the given viewtype (e.g. view
// "schematic" of viewtype "schematic", or "layout.fast" of viewtype
// "layout" — the paper notes viewtypes can be switched with the same tool).
func (l *Library) DefineView(view, viewtype string) error {
	if view == "" || viewtype == "" {
		return fmt.Errorf("fmcad: empty view or viewtype")
	}
	if strings.ContainsAny(view, "/\\:") {
		return fmt.Errorf("fmcad: bad view name %q", view)
	}
	return l.mutate(func(m *meta) error {
		if _, dup := m.Views[view]; dup {
			return fmt.Errorf("%w: view %q", ErrExists, view)
		}
		m.Views[view] = viewtype
		return nil
	})
}

// Viewtype returns the viewtype of a view.
func (l *Library) Viewtype(view string) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	vt, ok := l.meta.Views[view]
	if !ok {
		return "", fmt.Errorf("%w: view %q", ErrNotFound, view)
	}
	return vt, nil
}

// CreateCell registers a new cell.
func (l *Library) CreateCell(cell string) error {
	if cell == "" || strings.ContainsAny(cell, "/\\:") {
		return fmt.Errorf("fmcad: bad cell name %q", cell)
	}
	return l.mutate(func(m *meta) error {
		if _, dup := m.Cells[cell]; dup {
			return fmt.Errorf("%w: cell %q", ErrExists, cell)
		}
		m.Cells[cell] = &cellMeta{Cellviews: map[string]*cellviewMeta{}}
		return nil
	})
}

// CreateCellview creates the (cell, view) cellview with an empty initial
// version 1 file.
func (l *Library) CreateCellview(cell, view string) error {
	err := l.mutate(func(m *meta) error {
		c, ok := m.Cells[cell]
		if !ok {
			return fmt.Errorf("%w: cell %q", ErrNotFound, cell)
		}
		if _, ok := m.Views[view]; !ok {
			return fmt.Errorf("%w: view %q", ErrNotFound, view)
		}
		if _, dup := c.Cellviews[view]; dup {
			return fmt.Errorf("%w: cellview %s/%s", ErrExists, cell, view)
		}
		c.Cellviews[view] = &cellviewMeta{Versions: []int{1}, Default: 1, Props: map[string]map[string]string{}}
		return nil
	})
	if err != nil {
		return err
	}
	path := l.versionPath(cell, view, 1)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("fmcad: create cellview: %w", err)
	}
	return os.WriteFile(path, nil, 0o644)
}

// versionPath returns the design file path for a cellview version (the
// ".File" of Figure 2).
func (l *Library) versionPath(cell, view string, num int) string {
	return filepath.Join(l.dir, cell, view, fmt.Sprintf("v%d.cv", num))
}

// VersionPath exposes the design-file location; native FMCAD tools read it
// directly (the fast path the hybrid framework loses, section 3.6).
func (l *Library) VersionPath(cell, view string, num int) string {
	return l.versionPath(cell, view, num)
}

// Cells returns all cell names, sorted.
func (l *Library) Cells() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.meta.Cells))
	for c := range l.meta.Cells {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Views returns all view names, sorted.
func (l *Library) Views() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.meta.Views))
	for v := range l.meta.Views {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Cellviews returns the view names that exist for a cell, sorted.
func (l *Library) Cellviews(cell string) ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.meta.Cells[cell]
	if !ok {
		return nil, fmt.Errorf("%w: cell %q", ErrNotFound, cell)
	}
	out := make([]string, 0, len(c.Cellviews))
	for v := range c.Cellviews {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// Versions returns the version numbers of a cellview, ascending.
func (l *Library) Versions(cell, view string) ([]int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cv, err := l.meta.cellview(cell, view)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), cv.Versions...), nil
}

// DefaultVersion returns the default (latest checked-in) version number.
// Dynamic hierarchy binding always uses this — which is exactly why FMCAD
// cannot reconstruct historic configurations (section 2.2).
func (l *Library) DefaultVersion(cell, view string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cv, err := l.meta.cellview(cell, view)
	if err != nil {
		return 0, err
	}
	return cv.Default, nil
}

// ReadVersion returns the design file content of a specific version,
// reading the file directly (native FMCAD access).
func (l *Library) ReadVersion(cell, view string, num int) ([]byte, error) {
	l.mu.Lock()
	cv, err := l.meta.cellview(cell, view)
	if err == nil {
		found := false
		for _, v := range cv.Versions {
			if v == num {
				found = true
				break
			}
		}
		if !found {
			err = fmt.Errorf("%w: version %d of %s/%s", ErrNotFound, num, cell, view)
		}
	}
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(l.versionPath(cell, view, num))
	if err != nil {
		return nil, fmt.Errorf("fmcad: read version: %w", err)
	}
	return data, nil
}

// LockedBy reports which user holds the checkout on a cellview ("" if
// free).
func (l *Library) LockedBy(cell, view string) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cv, err := l.meta.cellview(cell, view)
	if err != nil {
		return "", err
	}
	return cv.LockedBy, nil
}

// --- properties -----------------------------------------------------------

func versionKey(num int) string { return fmt.Sprintf("v%d", num) }

// SetProperty attaches a name=value property to a cellview version.
func (l *Library) SetProperty(cell, view string, num int, name, value string) error {
	return l.mutate(func(m *meta) error {
		cv, err := m.cellview(cell, view)
		if err != nil {
			return err
		}
		if !containsInt(cv.Versions, num) {
			return fmt.Errorf("%w: version %d of %s/%s", ErrNotFound, num, cell, view)
		}
		if cv.Props == nil {
			cv.Props = map[string]map[string]string{}
		}
		k := versionKey(num)
		if cv.Props[k] == nil {
			cv.Props[k] = map[string]string{}
		}
		cv.Props[k][name] = value
		return nil
	})
}

// GetProperty reads a property; ok is false when absent.
func (l *Library) GetProperty(cell, view string, num int, name string) (value string, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cv, err := l.meta.cellview(cell, view)
	if err != nil {
		return "", false, err
	}
	props, exists := cv.Props[versionKey(num)]
	if !exists {
		return "", false, nil
	}
	v, ok := props[name]
	return v, ok, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// --- configs ----------------------------------------------------------------

func cvKey(cell, view string) string { return cell + "/" + view }

// CreateConfig creates an empty named config.
func (l *Library) CreateConfig(name string) error {
	if name == "" {
		return fmt.Errorf("fmcad: empty config name")
	}
	return l.mutate(func(m *meta) error {
		if _, dup := m.Configs[name]; dup {
			return fmt.Errorf("%w: config %q", ErrExists, name)
		}
		m.Configs[name] = map[string]int{}
		return nil
	})
}

// AddToConfig binds a cellview version into a config. At most one version
// of each cellview may be in a config; a second Add for the same cellview
// replaces the binding (it does not duplicate it).
func (l *Library) AddToConfig(config, cell, view string, num int) error {
	return l.mutate(func(m *meta) error {
		cfg, ok := m.Configs[config]
		if !ok {
			return fmt.Errorf("%w: config %q", ErrNotFound, config)
		}
		cv, err := m.cellview(cell, view)
		if err != nil {
			return err
		}
		if !containsInt(cv.Versions, num) {
			return fmt.Errorf("%w: version %d of %s/%s", ErrNotFound, num, cell, view)
		}
		cfg[cvKey(cell, view)] = num
		return nil
	})
}

// ConfigEntries returns the direct cellview->version bindings of a
// config (not following nested configs), as a sorted slice of
// "cell/view=vN" strings for stable output.
func (l *Library) ConfigEntries(config string) ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cfg, ok := l.meta.Configs[config]
	if !ok {
		return nil, fmt.Errorf("%w: config %q", ErrNotFound, config)
	}
	out := make([]string, 0, len(cfg))
	for k, v := range cfg {
		if strings.HasPrefix(k, configRefPrefix) {
			continue
		}
		out = append(out, fmt.Sprintf("%s=v%d", k, v))
	}
	sort.Strings(out)
	return out, nil
}

// ConfigVersion returns the version a config binds for a cellview.
func (l *Library) ConfigVersion(config, cell, view string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cfg, ok := l.meta.Configs[config]
	if !ok {
		return 0, fmt.Errorf("%w: config %q", ErrNotFound, config)
	}
	num, ok := cfg[cvKey(cell, view)]
	if !ok {
		return 0, fmt.Errorf("%w: %s/%s in config %q", ErrNotFound, cell, view, config)
	}
	return num, nil
}

// Nested configs ("Config in Config" in Figure 2) are stored as entries
// whose key carries a marker prefix instead of a cell/view pair.
const configRefPrefix = "config:"

// AddConfigToConfig nests child inside parent. Cycles are rejected: a
// config may not transitively contain itself.
func (l *Library) AddConfigToConfig(parent, child string) error {
	if parent == child {
		return fmt.Errorf("fmcad: config %q cannot contain itself", parent)
	}
	return l.mutate(func(m *meta) error {
		if _, ok := m.Configs[parent]; !ok {
			return fmt.Errorf("%w: config %q", ErrNotFound, parent)
		}
		if _, ok := m.Configs[child]; !ok {
			return fmt.Errorf("%w: config %q", ErrNotFound, child)
		}
		if configReaches(m, child, parent) {
			return fmt.Errorf("fmcad: config cycle: %q already contains %q", child, parent)
		}
		m.Configs[parent][configRefPrefix+child] = 0
		return nil
	})
}

// configReaches reports whether `from` transitively contains `to`;
// caller holds l.mu (via mutate).
func configReaches(m *meta, from, to string) bool {
	if from == to {
		return true
	}
	for key := range m.Configs[from] {
		if child, ok := strings.CutPrefix(key, configRefPrefix); ok {
			if configReaches(m, child, to) {
				return true
			}
		}
	}
	return false
}

// SubConfigs returns the configs nested directly inside a config, sorted.
func (l *Library) SubConfigs(config string) ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cfg, ok := l.meta.Configs[config]
	if !ok {
		return nil, fmt.Errorf("%w: config %q", ErrNotFound, config)
	}
	var out []string
	for key := range cfg {
		if child, ok := strings.CutPrefix(key, configRefPrefix); ok {
			out = append(out, child)
		}
	}
	sort.Strings(out)
	return out, nil
}

// ConfigClosure resolves a config including every nested config,
// returning all cellview-version bindings as sorted "cell/view=vN"
// strings. Inner (deeper) bindings are overridden by outer ones when the
// same cellview appears twice — the usual expansion rule.
func (l *Library) ConfigClosure(config string) ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.meta.Configs[config]; !ok {
		return nil, fmt.Errorf("%w: config %q", ErrNotFound, config)
	}
	bindings := map[string]int{}
	var walk func(name string)
	walk = func(name string) {
		// Children first so the parent's own bindings win.
		for key := range l.meta.Configs[name] {
			if child, ok := strings.CutPrefix(key, configRefPrefix); ok {
				walk(child)
			}
		}
		for key, num := range l.meta.Configs[name] {
			if !strings.HasPrefix(key, configRefPrefix) {
				bindings[key] = num
			}
		}
	}
	walk(config)
	out := make([]string, 0, len(bindings))
	for k, v := range bindings {
		out = append(out, fmt.Sprintf("%s=v%d", k, v))
	}
	sort.Strings(out)
	return out, nil
}
