package fmcad

import (
	"errors"
	"os"
	"testing"
)

func TestResumeCheckout(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	s1 := l.NewSession("anna")
	wf, err := s1.Checkout("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wf.Path, []byte("draft from session 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Anna returns in a new shell session and resumes the held checkout.
	s2 := l.NewSession("anna")
	resumed, err := s2.Resume("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if resumed.BaseVersion != 1 || resumed.Cell != "alu" {
		t.Fatalf("resumed = %+v", resumed)
	}
	// The draft written in the first session is still there.
	data, err := os.ReadFile(resumed.Path)
	if err != nil || string(data) != "draft from session 1\n" {
		t.Fatalf("working copy lost: %q, %v", data, err)
	}
	num, err := s2.Checkin(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if num != 2 {
		t.Fatalf("version = %d", num)
	}
	got, _ := l.ReadVersion("alu", "schematic", 2)
	if string(got) != "draft from session 1\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestResumeErrors(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	// Nothing checked out.
	s := l.NewSession("anna")
	if _, err := s.Resume("alu", "schematic"); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("resume of free cellview: %v", err)
	}
	// Held by someone else.
	sb := l.NewSession("bert")
	wf, err := sb.Checkout("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resume("alu", "schematic"); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("resume of foreign checkout: %v", err)
	}
	// Missing working copy: holder but file deleted.
	if err := os.Remove(wf.Path); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Resume("alu", "schematic"); err == nil {
		t.Fatal("resume without working copy accepted")
	}
	// Unknown cellview.
	if _, err := s.Resume("ghost", "schematic"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resume of missing cellview: %v", err)
	}
}
