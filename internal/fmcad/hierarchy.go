package fmcad

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
)

// Design hierarchy in FMCAD lives *inside* the design files: a cellview
// that instantiates other cells records them as "inst" lines in its data
// file. The framework binds the hierarchy dynamically, always against the
// default version of the instantiated cellview, and stores no
// what-belongs-to-what relationships (section 2.2). Because the hierarchy
// is per-view, a cell's schematic hierarchy may legally differ from its
// layout hierarchy — the non-isomorphic hierarchies JCF 3.0 cannot accept.

// InstanceRef is one child reference found in a design file.
type InstanceRef struct {
	Name string // instance name, e.g. "u1"
	Cell string // instantiated cell
	View string // instantiated view
}

// InstLine renders an instance reference in the design-file syntax the
// tools emit and ParseInstances reads back.
func InstLine(name, cell, view string) string {
	return fmt.Sprintf("inst %s %s %s", name, cell, view)
}

// ParseInstances scans a design file for instance lines. The format is
// line-oriented: any line of the form "inst <name> <cell> <view>" is a
// child reference; all other lines are tool-specific payload.
func ParseInstances(data []byte) []InstanceRef {
	var out []InstanceRef
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 4 && fields[0] == "inst" {
			out = append(out, InstanceRef{Name: fields[1], Cell: fields[2], View: fields[3]})
		}
	}
	return out
}

// HierarchyNode is one node of an expanded design hierarchy.
type HierarchyNode struct {
	Cell     string
	View     string
	Version  int // the dynamically bound (default) version
	Children []*HierarchyNode
	InstName string // instance name within the parent ("" at the root)
}

// Count returns the number of nodes in the subtree including the root.
func (n *HierarchyNode) Count() int {
	total := 1
	for _, c := range n.Children {
		total += c.Count()
	}
	return total
}

// Leaves returns the number of leaf nodes.
func (n *HierarchyNode) Leaves() int {
	if len(n.Children) == 0 {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += c.Leaves()
	}
	return total
}

// Depth returns the maximum depth (a lone root has depth 1).
func (n *HierarchyNode) Depth() int {
	best := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > best {
			best = d
		}
	}
	return best + 1
}

// CellSet returns the distinct cell names in the subtree.
func (n *HierarchyNode) CellSet() map[string]bool {
	set := map[string]bool{}
	var walk func(*HierarchyNode)
	walk = func(h *HierarchyNode) {
		set[h.Cell] = true
		for _, c := range h.Children {
			walk(c)
		}
	}
	walk(n)
	return set
}

// Expand performs dynamic hierarchy binding starting at (cell, view): it
// reads the *default* version of each cellview encountered, parses its
// instance lines and recurses. Cycles are an error (a cell may not contain
// itself). Missing children are an error — dangling references are exactly
// the consistency hazard the paper attributes to FMCAD.
func (l *Library) Expand(cell, view string) (*HierarchyNode, error) {
	return l.expand(cell, view, "", map[string]bool{})
}

func (l *Library) expand(cell, view, instName string, path map[string]bool) (*HierarchyNode, error) {
	key := cvKey(cell, view)
	if path[key] {
		return nil, fmt.Errorf("fmcad: hierarchy cycle through %s", key)
	}
	path[key] = true
	defer delete(path, key)

	def, err := l.DefaultVersion(cell, view)
	if err != nil {
		return nil, err
	}
	data, err := l.ReadVersion(cell, view, def)
	if err != nil {
		return nil, err
	}
	node := &HierarchyNode{Cell: cell, View: view, Version: def, InstName: instName}
	for _, ref := range ParseInstances(data) {
		child, err := l.expand(ref.Cell, ref.View, ref.Name, path)
		if err != nil {
			return nil, fmt.Errorf("fmcad: expanding %s instance %s: %w", key, ref.Name, err)
		}
		node.Children = append(node.Children, child)
	}
	return node, nil
}

// Isomorphic reports whether the hierarchies of (cell, viewA) and
// (cell, viewB) have the same shape: the same cells instantiated under the
// same instance names, recursively. JCF 3.0 requires this; FMCAD does not
// (section 2.3: "the hierarchy of the viewtype schematic can differ from
// the hierarchy of the viewtype layout").
func (l *Library) Isomorphic(cell, viewA, viewB string) (bool, error) {
	a, err := l.Expand(cell, viewA)
	if err != nil {
		return false, err
	}
	b, err := l.Expand(cell, viewB)
	if err != nil {
		return false, err
	}
	return sameShape(a, b), nil
}

func sameShape(a, b *HierarchyNode) bool {
	if a.Cell != b.Cell || len(a.Children) != len(b.Children) {
		return false
	}
	// Compare children by instance name, order-independent.
	byName := map[string]*HierarchyNode{}
	for _, c := range a.Children {
		byName[c.InstName] = c
	}
	for _, c := range b.Children {
		mate, ok := byName[c.InstName]
		if !ok || !sameShape(mate, c) {
			return false
		}
	}
	return true
}
