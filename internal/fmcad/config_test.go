package fmcad

import (
	"errors"
	"testing"
)

func TestNestedConfigs(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic", "layout")
	mustCell(t, l, "reg", "schematic")
	s := l.NewSession("anna")
	writeVersion(t, s, "alu", "schematic", "v2\n") // alu/schematic has v1, v2

	for _, cfg := range []string{"blocks", "chip"} {
		if err := l.CreateConfig(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddToConfig("blocks", "alu", "schematic", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AddToConfig("blocks", "reg", "schematic", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AddToConfig("chip", "alu", "layout", 1); err != nil {
		t.Fatal(err)
	}
	// chip includes blocks, overriding alu/schematic to v2.
	if err := l.AddConfigToConfig("chip", "blocks"); err != nil {
		t.Fatal(err)
	}
	if err := l.AddToConfig("chip", "alu", "schematic", 2); err != nil {
		t.Fatal(err)
	}

	subs, err := l.SubConfigs("chip")
	if err != nil || len(subs) != 1 || subs[0] != "blocks" {
		t.Fatalf("SubConfigs = %v, %v", subs, err)
	}
	if subs, _ := l.SubConfigs("blocks"); len(subs) != 0 {
		t.Fatalf("blocks has subs: %v", subs)
	}
	// Direct entries exclude the nested config marker.
	entries, err := l.ConfigEntries("chip")
	if err != nil || len(entries) != 2 {
		t.Fatalf("ConfigEntries = %v, %v", entries, err)
	}
	// The closure resolves nesting with outer-wins override.
	closure, err := l.ConfigClosure("chip")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alu/layout=v1", "alu/schematic=v2", "reg/schematic=v1"}
	if len(closure) != len(want) {
		t.Fatalf("closure = %v", closure)
	}
	for i := range want {
		if closure[i] != want[i] {
			t.Fatalf("closure = %v, want %v", closure, want)
		}
	}
}

func TestNestedConfigCycles(t *testing.T) {
	l := newLib(t)
	for _, cfg := range []string{"a", "b", "c"} {
		if err := l.CreateConfig(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddConfigToConfig("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := l.AddConfigToConfig("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := l.AddConfigToConfig("c", "a"); err == nil {
		t.Fatal("config cycle accepted")
	}
	if err := l.AddConfigToConfig("a", "a"); err == nil {
		t.Fatal("self-nesting accepted")
	}
	if err := l.AddConfigToConfig("a", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("nesting missing child")
	}
	if err := l.AddConfigToConfig("ghost", "a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("nesting into missing parent")
	}
	if _, err := l.SubConfigs("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("subs of missing config")
	}
	if _, err := l.ConfigClosure("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("closure of missing config")
	}
}

func TestNameValidation(t *testing.T) {
	l := newLib(t)
	if err := l.CreateCell("bad:name"); err == nil {
		t.Fatal("colon in cell name accepted")
	}
	if err := l.DefineView("bad/view", "x"); err == nil {
		t.Fatal("slash in view name accepted")
	}
	if err := l.DefineView("bad:view", "x"); err == nil {
		t.Fatal("colon in view name accepted")
	}
}

func TestNestedConfigsSurviveReopen(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	if err := l.CreateConfig("inner"); err != nil {
		t.Fatal(err)
	}
	if err := l.CreateConfig("outer"); err != nil {
		t.Fatal(err)
	}
	if err := l.AddToConfig("inner", "alu", "schematic", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AddConfigToConfig("outer", "inner"); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(l.Dir())
	if err != nil {
		t.Fatal(err)
	}
	closure, err := l2.ConfigClosure("outer")
	if err != nil || len(closure) != 1 || closure[0] != "alu/schematic=v1" {
		t.Fatalf("closure after reopen = %v, %v", closure, err)
	}
}
