package fmcad

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// newLib creates a fresh library in a temp dir with the standard views.
func newLib(t *testing.T) *Library {
	t.Helper()
	l, err := Create(filepath.Join(t.TempDir(), "lib"), "testlib")
	if err != nil {
		t.Fatal(err)
	}
	for view, vt := range map[string]string{
		"schematic": "schematic",
		"layout":    "layout",
		"symbol":    "symbol",
	} {
		if err := l.DefineView(view, vt); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func mustCell(t *testing.T, l *Library, cell string, views ...string) {
	t.Helper()
	if err := l.CreateCell(cell); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if err := l.CreateCellview(cell, v); err != nil {
			t.Fatal(err)
		}
	}
}

// writeVersion checks out, writes content, checks in, returning the new
// version number.
func writeVersion(t *testing.T, s *Session, cell, view, content string) int {
	t.Helper()
	wf, err := s.Checkout(cell, view)
	if err != nil {
		t.Fatalf("Checkout(%s/%s): %v", cell, view, err)
	}
	if err := os.WriteFile(wf.Path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	num, err := s.Checkin(wf)
	if err != nil {
		t.Fatalf("Checkin(%s/%s): %v", cell, view, err)
	}
	return num
}

func TestCreateOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lib")
	l, err := Create(dir, "mylib")
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "mylib" || l.Dir() != dir {
		t.Fatalf("Name=%q Dir=%q", l.Name(), l.Dir())
	}
	// .meta exists — the library's single metadata file.
	if _, err := os.Stat(filepath.Join(dir, MetaFileName)); err != nil {
		t.Fatalf(".meta missing: %v", err)
	}
	// Creating again collides.
	if _, err := Create(dir, "other"); !errors.Is(err, ErrExists) {
		t.Fatalf("double create: %v", err)
	}
	// Reopen reads back the same state.
	if err := l.CreateCell("top"); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Name() != "mylib" || len(l2.Cells()) != 1 {
		t.Fatalf("reopen lost state: %v", l2.Cells())
	}
	if _, err := Open(filepath.Join(t.TempDir(), "nolib")); err == nil {
		t.Fatal("open of missing library succeeded")
	}
	if _, err := Create(dir, ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestViewsAndCells(t *testing.T) {
	l := newLib(t)
	if err := l.DefineView("schematic", "x"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate view: %v", err)
	}
	if err := l.DefineView("", "x"); err == nil {
		t.Fatal("empty view accepted")
	}
	vt, err := l.Viewtype("layout")
	if err != nil || vt != "layout" {
		t.Fatalf("Viewtype = %q, %v", vt, err)
	}
	if _, err := l.Viewtype("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown view: %v", err)
	}
	mustCell(t, l, "alu", "schematic")
	if err := l.CreateCell("alu"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate cell: %v", err)
	}
	if err := l.CreateCell("bad/name"); err == nil {
		t.Fatal("slash in cell name accepted")
	}
	if err := l.CreateCellview("alu", "schematic"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate cellview: %v", err)
	}
	if err := l.CreateCellview("nocell", "schematic"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cellview on missing cell: %v", err)
	}
	if err := l.CreateCellview("alu", "noview"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cellview on missing view: %v", err)
	}
	views, err := l.Cellviews("alu")
	if err != nil || len(views) != 1 || views[0] != "schematic" {
		t.Fatalf("Cellviews = %v, %v", views, err)
	}
	if _, err := l.Cellviews("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("Cellviews of missing cell")
	}
	if got := l.Views(); len(got) != 3 {
		t.Fatalf("Views = %v", got)
	}
}

func TestInitialVersion(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	vs, err := l.Versions("alu", "schematic")
	if err != nil || len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("Versions = %v, %v", vs, err)
	}
	def, err := l.DefaultVersion("alu", "schematic")
	if err != nil || def != 1 {
		t.Fatalf("DefaultVersion = %d, %v", def, err)
	}
	data, err := l.ReadVersion("alu", "schematic", 1)
	if err != nil || len(data) != 0 {
		t.Fatalf("ReadVersion = %q, %v", data, err)
	}
	if _, err := l.ReadVersion("alu", "schematic", 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version read: %v", err)
	}
	if _, err := l.Versions("alu", "layout"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing cellview versions")
	}
}

func TestCheckoutCheckin(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	s := l.NewSession("ulla")

	wf, err := s.Checkout("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if wf.BaseVersion != 1 {
		t.Fatalf("BaseVersion = %d", wf.BaseVersion)
	}
	if who, _ := l.LockedBy("alu", "schematic"); who != "ulla" {
		t.Fatalf("LockedBy = %q", who)
	}
	if err := os.WriteFile(wf.Path, []byte("cell alu v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	num, err := s.Checkin(wf)
	if err != nil || num != 2 {
		t.Fatalf("Checkin = %d, %v", num, err)
	}
	if who, _ := l.LockedBy("alu", "schematic"); who != "" {
		t.Fatalf("lock not released: %q", who)
	}
	def, _ := l.DefaultVersion("alu", "schematic")
	if def != 2 {
		t.Fatalf("default = %d, want 2", def)
	}
	data, err := l.ReadVersion("alu", "schematic", 2)
	if err != nil || string(data) != "cell alu v2\n" {
		t.Fatalf("v2 content = %q, %v", data, err)
	}
	// Version 1 content untouched.
	data, _ = l.ReadVersion("alu", "schematic", 1)
	if len(data) != 0 {
		t.Fatal("v1 modified")
	}
	// Double checkin.
	if _, err := s.Checkin(wf); err == nil {
		t.Fatal("double checkin accepted")
	}
}

func TestCheckoutConflict(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	sa := l.NewSession("anna")
	sb := l.NewSession("bert")

	wf, err := sa.Checkout("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	// The paper: only one user can change a cellview at a time.
	if _, err := sb.Checkout("alu", "schematic"); !errors.Is(err, ErrLocked) {
		t.Fatalf("second checkout: %v", err)
	}
	if l.Conflicts() != 1 {
		t.Fatalf("Conflicts = %d", l.Conflicts())
	}
	// Even the same user cannot double-checkout.
	if _, err := sa.Checkout("alu", "schematic"); !errors.Is(err, ErrLocked) {
		t.Fatalf("self re-checkout: %v", err)
	}
	if _, err := sa.Checkin(wf); err != nil {
		t.Fatal(err)
	}
	// Now bert can proceed.
	wf2, err := sb.Checkout("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if wf2.BaseVersion != 2 {
		t.Fatalf("bert bases on %d, want 2", wf2.BaseVersion)
	}
	if err := sb.Cancel(wf2); err != nil {
		t.Fatal(err)
	}
	if who, _ := l.LockedBy("alu", "schematic"); who != "" {
		t.Fatal("cancel did not release lock")
	}
	if err := sb.Cancel(wf2); err == nil {
		t.Fatal("double cancel accepted")
	}
}

func TestCheckinWrongSession(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	sa := l.NewSession("anna")
	sb := l.NewSession("bert")
	wf, err := sa.Checkout("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Checkin(wf); err == nil {
		t.Fatal("foreign checkin accepted")
	}
	if err := sb.Cancel(wf); err == nil {
		t.Fatal("foreign cancel accepted")
	}
	if err := sa.Cancel(wf); err != nil {
		t.Fatal(err)
	}
}

func TestStaleMetadata(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	sa := l.NewSession("anna")
	sb := l.NewSession("bert")

	if sb.Stale() {
		t.Fatal("fresh session already stale")
	}
	writeVersion(t, sa, "alu", "schematic", "v2 by anna\n")

	// bert's snapshot predates anna's checkin: he sees only v1 and no
	// lock, although the authoritative default is 2.
	if !sb.Stale() {
		t.Fatal("session not stale after foreign change")
	}
	vs, err := sb.VersionsSeen("alu", "schematic")
	if err != nil || len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("VersionsSeen = %v, %v", vs, err)
	}
	def, _ := sb.DefaultVersionSeen("alu", "schematic")
	if def != 1 {
		t.Fatalf("DefaultVersionSeen = %d", def)
	}
	// After the manual refresh he catches up.
	sb.Refresh()
	if sb.Stale() {
		t.Fatal("stale after refresh")
	}
	vs, _ = sb.VersionsSeen("alu", "schematic")
	if len(vs) != 2 {
		t.Fatalf("VersionsSeen after refresh = %v", vs)
	}
	// LockedSeen shows the stale lock state.
	wf, err := sa.Checkout("alu", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if who, _ := sb.LockedSeen("alu", "schematic"); who != "" {
		t.Fatalf("LockedSeen = %q, want stale empty", who)
	}
	sb.Refresh()
	if who, _ := sb.LockedSeen("alu", "schematic"); who != "anna" {
		t.Fatalf("LockedSeen after refresh = %q", who)
	}
	if err := sa.Cancel(wf); err != nil {
		t.Fatal(err)
	}
	if got := sb.CellsSeen(); len(got) != 1 || got[0] != "alu" {
		t.Fatalf("CellsSeen = %v", got)
	}
}

func TestProperties(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic")
	if err := l.SetProperty("alu", "schematic", 1, "owner", "anna"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := l.GetProperty("alu", "schematic", 1, "owner")
	if err != nil || !ok || v != "anna" {
		t.Fatalf("GetProperty = %q,%t,%v", v, ok, err)
	}
	_, ok, err = l.GetProperty("alu", "schematic", 1, "missing")
	if err != nil || ok {
		t.Fatal("missing property found")
	}
	if err := l.SetProperty("alu", "schematic", 7, "x", "y"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("property on missing version: %v", err)
	}
	if _, _, err := l.GetProperty("alu", "layout", 1, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatal("property on missing cellview")
	}
	// Properties survive reopen.
	l2, err := Open(l.Dir())
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ = l2.GetProperty("alu", "schematic", 1, "owner")
	if !ok || v != "anna" {
		t.Fatal("property lost on reopen")
	}
}

func TestConfigs(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "alu", "schematic", "layout")
	s := l.NewSession("anna")
	writeVersion(t, s, "alu", "schematic", "v2\n")

	if err := l.CreateConfig("golden"); err != nil {
		t.Fatal(err)
	}
	if err := l.CreateConfig("golden"); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate config accepted")
	}
	if err := l.CreateConfig(""); err == nil {
		t.Fatal("empty config name accepted")
	}
	if err := l.AddToConfig("golden", "alu", "schematic", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AddToConfig("golden", "alu", "layout", 1); err != nil {
		t.Fatal(err)
	}
	// At most one version per cellview: rebinding replaces.
	if err := l.AddToConfig("golden", "alu", "schematic", 2); err != nil {
		t.Fatal(err)
	}
	num, err := l.ConfigVersion("golden", "alu", "schematic")
	if err != nil || num != 2 {
		t.Fatalf("ConfigVersion = %d, %v", num, err)
	}
	entries, err := l.ConfigEntries("golden")
	if err != nil || len(entries) != 2 {
		t.Fatalf("ConfigEntries = %v, %v", entries, err)
	}
	if entries[0] != "alu/layout=v1" || entries[1] != "alu/schematic=v2" {
		t.Fatalf("ConfigEntries = %v", entries)
	}
	// Errors.
	if err := l.AddToConfig("nope", "alu", "schematic", 1); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown config accepted")
	}
	if err := l.AddToConfig("golden", "alu", "schematic", 99); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown version accepted")
	}
	if _, err := l.ConfigVersion("golden", "alu", "symbol"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unbound cellview in config")
	}
	if _, err := l.ConfigEntries("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown config entries")
	}
}

func TestHierarchyExpand(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "top", "schematic")
	mustCell(t, l, "alu", "schematic")
	mustCell(t, l, "reg", "schematic")
	s := l.NewSession("anna")
	writeVersion(t, s, "top", "schematic",
		InstLine("u1", "alu", "schematic")+"\n"+
			InstLine("u2", "reg", "schematic")+"\n"+
			InstLine("u3", "reg", "schematic")+"\n")
	writeVersion(t, s, "alu", "schematic", InstLine("r0", "reg", "schematic")+"\nwire w1\n")

	h, err := l.Expand("top", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	// Leaves: reg under alu, plus u2 and u3 (alu itself is internal).
	if h.Leaves() != 3 {
		t.Fatalf("Leaves = %d, want 3", h.Leaves())
	}
	if h.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", h.Depth())
	}
	if len(h.CellSet()) != 3 {
		t.Fatalf("CellSet = %v", h.CellSet())
	}
	// Dynamic binding: children bound at their default versions.
	if h.Children[0].Cell != "alu" || h.Children[0].Version != 2 {
		t.Fatalf("child binding = %+v", h.Children[0])
	}
	// Re-checkin of reg moves the binding silently — no history.
	writeVersion(t, s, "reg", "schematic", "wire q\n")
	h2, err := l.Expand("top", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Children[1].Version != 2 {
		t.Fatalf("rebind version = %d, want 2", h2.Children[1].Version)
	}
}

func TestHierarchyCycleAndDangling(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "a", "schematic")
	mustCell(t, l, "b", "schematic")
	s := l.NewSession("x")
	writeVersion(t, s, "a", "schematic", InstLine("i1", "b", "schematic")+"\n")
	writeVersion(t, s, "b", "schematic", InstLine("i2", "a", "schematic")+"\n")
	if _, err := l.Expand("a", "schematic"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
	// Dangling reference.
	writeVersion(t, s, "b", "schematic", InstLine("i2", "ghost", "schematic")+"\n")
	if _, err := l.Expand("a", "schematic"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dangling ref: %v", err)
	}
}

func TestNonIsomorphicHierarchies(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "top", "schematic", "layout")
	mustCell(t, l, "alu", "schematic", "layout")
	mustCell(t, l, "pad", "layout")
	s := l.NewSession("x")
	// Schematic: top -> alu. Layout: top -> alu + pad ring (non-isomorphic,
	// legal in FMCAD).
	writeVersion(t, s, "top", "schematic", InstLine("u1", "alu", "schematic")+"\n")
	writeVersion(t, s, "top", "layout",
		InstLine("u1", "alu", "layout")+"\n"+InstLine("p1", "pad", "layout")+"\n")

	iso, err := l.Isomorphic("top", "schematic", "layout")
	if err != nil {
		t.Fatal(err)
	}
	if iso {
		t.Fatal("non-isomorphic hierarchy reported isomorphic")
	}
	// Make them isomorphic.
	wf, err := s.Checkout("top", "layout")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wf.Path, []byte(InstLine("u1", "alu", "layout")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkin(wf); err != nil {
		t.Fatal(err)
	}
	iso, err = l.Isomorphic("top", "schematic", "layout")
	if err != nil {
		t.Fatal(err)
	}
	if !iso {
		t.Fatal("isomorphic hierarchy reported non-isomorphic")
	}
}

func TestParseInstances(t *testing.T) {
	data := []byte("header x\ninst u1 alu schematic\nnoise\ninst u2 reg layout\ninst malformed two\n")
	refs := ParseInstances(data)
	if len(refs) != 2 {
		t.Fatalf("ParseInstances = %v", refs)
	}
	if refs[0] != (InstanceRef{Name: "u1", Cell: "alu", View: "schematic"}) {
		t.Fatalf("refs[0] = %+v", refs[0])
	}
	if refs[1] != (InstanceRef{Name: "u2", Cell: "reg", View: "layout"}) {
		t.Fatalf("refs[1] = %+v", refs[1])
	}
	if got := ParseInstances(nil); len(got) != 0 {
		t.Fatal("empty parse")
	}
}

func TestConcurrentCheckoutRace(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "hot", "schematic")
	const users = 16
	var wg sync.WaitGroup
	wins := make(chan string, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := l.NewSession(string(rune('a' + i)))
			wf, err := s.Checkout("hot", "schematic")
			if err != nil {
				return // lost the race
			}
			wins <- s.User()
			if _, err := s.Checkin(wf); err != nil {
				t.Errorf("winner checkin: %v", err)
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) == 0 {
		t.Fatal("no winner")
	}
	// Winners serialized: versions = 1 + len(winners).
	vs, _ := l.Versions("hot", "schematic")
	if len(vs) != 1+len(winners) {
		t.Fatalf("versions = %v, winners = %d", vs, len(winners))
	}
	if int(l.Conflicts()) != users-len(winners) {
		t.Fatalf("Conflicts = %d, want %d", l.Conflicts(), users-len(winners))
	}
}

// Property: any sequence of checkin cycles yields strictly increasing,
// contiguous version numbers starting at 1.
func TestPropertyVersionMonotonic(t *testing.T) {
	l := newLib(t)
	mustCell(t, l, "c", "schematic")
	s := l.NewSession("u")
	f := func(n uint8) bool {
		count := int(n % 8)
		startVs, _ := l.Versions("c", "schematic")
		for i := 0; i < count; i++ {
			writeVersion(t, s, "c", "schematic", "x\n")
		}
		vs, _ := l.Versions("c", "schematic")
		if len(vs) != len(startVs)+count {
			return false
		}
		for i := 1; i < len(vs); i++ {
			if vs[i] != vs[i-1]+1 {
				return false
			}
		}
		return vs[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: InstLine always round-trips through ParseInstances for names
// without whitespace.
func TestPropertyInstLineRoundTrip(t *testing.T) {
	clean := func(s string) string {
		if s == "" {
			return "x"
		}
		out := make([]rune, 0, len(s))
		for _, r := range s {
			if r > 32 && r < 127 {
				out = append(out, r)
			}
		}
		if len(out) == 0 {
			return "x"
		}
		return string(out)
	}
	f := func(name, cell, view string) bool {
		n, c, v := clean(name), clean(cell), clean(view)
		refs := ParseInstances([]byte(InstLine(n, c, v) + "\n"))
		return len(refs) == 1 && refs[0] == InstanceRef{Name: n, Cell: c, View: v}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
