package core

import (
	"fmt"

	"repro/internal/fml"
	"repro/internal/oms"
)

// FML bindings: the paper's customization was "extended by several
// extension language procedures" (section 2.4). InstallFMLBindings gives
// FML scripts real desktop access so site-specific policy can be written
// in the slave's own language — the same trick the prototype used.
//
// Exposed functions (OIDs travel as FML ints):
//
//	(jcfReserve "user" cv)        reserve a cell version
//	(jcfRelease "user" cv)        drop a reservation
//	(jcfPublish "user" cv)        publish a cell version
//	(jcfReservedBy cv)            holder name or nil
//	(jcfPublished cv)             t / nil
//	(jcfStartable cv)             list of startable activity names
//	(jcfChildren cv)              list of child cell version OIDs
//	(jcfConsistencyProblems)      number of problems in the master
//	(fmCells)                     list of slave cell names
//	(fmLockedBy "cell" "view")    checkout holder or nil
//	(hybridOverrides)             forced-run count
func (h *Hybrid) InstallFMLBindings() {
	reg := h.Interp.RegisterFunc

	oid := func(v fml.Value) (oms.OID, error) {
		i, ok := v.(fml.Int)
		if !ok {
			return oms.InvalidOID, fmt.Errorf("want an OID (int), got %s", fml.Sprint(v))
		}
		return oms.OID(i), nil
	}
	str := func(v fml.Value) (string, error) {
		s, ok := v.(fml.Str)
		if !ok {
			return "", fmt.Errorf("want a string, got %s", fml.Sprint(v))
		}
		return string(s), nil
	}

	reg("jcfReserve", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("jcfReserve wants user and cv")
		}
		user, err := str(args[0])
		if err != nil {
			return nil, err
		}
		cv, err := oid(args[1])
		if err != nil {
			return nil, err
		}
		if err := h.JCF.Reserve(user, cv); err != nil {
			return fml.Nil{}, nil // policy scripts branch on nil, not errors
		}
		return fml.Bool{}, nil
	})
	reg("jcfRelease", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("jcfRelease wants user and cv")
		}
		user, err := str(args[0])
		if err != nil {
			return nil, err
		}
		cv, err := oid(args[1])
		if err != nil {
			return nil, err
		}
		if err := h.JCF.ReleaseReservation(user, cv); err != nil {
			return fml.Nil{}, nil
		}
		return fml.Bool{}, nil
	})
	reg("jcfPublish", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("jcfPublish wants user and cv")
		}
		user, err := str(args[0])
		if err != nil {
			return nil, err
		}
		cv, err := oid(args[1])
		if err != nil {
			return nil, err
		}
		if err := h.JCF.Publish(user, cv); err != nil {
			return fml.Nil{}, nil
		}
		return fml.Bool{}, nil
	})
	reg("jcfReservedBy", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("jcfReservedBy wants cv")
		}
		cv, err := oid(args[0])
		if err != nil {
			return nil, err
		}
		holder, held := h.JCF.ReservedBy(cv)
		if !held {
			return fml.Nil{}, nil
		}
		return fml.Str(holder), nil
	})
	reg("jcfPublished", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("jcfPublished wants cv")
		}
		cv, err := oid(args[0])
		if err != nil {
			return nil, err
		}
		if h.JCF.Published(cv) {
			return fml.Bool{}, nil
		}
		return fml.Nil{}, nil
	})
	reg("jcfStartable", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("jcfStartable wants cv")
		}
		cv, err := oid(args[0])
		if err != nil {
			return nil, err
		}
		names, err := h.JCF.StartableActivities(cv)
		if err != nil {
			return fml.Nil{}, nil
		}
		out := make(fml.List, len(names))
		for i, n := range names {
			out[i] = fml.Str(n)
		}
		return out, nil
	})
	reg("jcfChildren", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("jcfChildren wants cv")
		}
		cv, err := oid(args[0])
		if err != nil {
			return nil, err
		}
		kids := h.JCF.Children(cv)
		out := make(fml.List, len(kids))
		for i, k := range kids {
			out[i] = fml.Int(k)
		}
		return out, nil
	})
	reg("jcfConsistencyProblems", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("jcfConsistencyProblems wants no args")
		}
		return fml.Int(len(h.JCF.CheckConsistency())), nil
	})
	reg("fmCells", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("fmCells wants no args")
		}
		cells := h.Lib.Cells()
		out := make(fml.List, len(cells))
		for i, c := range cells {
			out[i] = fml.Str(c)
		}
		return out, nil
	})
	reg("fmLockedBy", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("fmLockedBy wants cell and view")
		}
		cell, err := str(args[0])
		if err != nil {
			return nil, err
		}
		view, err := str(args[1])
		if err != nil {
			return nil, err
		}
		holder, err := h.Lib.LockedBy(cell, view)
		if err != nil {
			return fml.Nil{}, nil
		}
		if holder == "" {
			return fml.Nil{}, nil
		}
		return fml.Str(holder), nil
	})
	reg("hybridOverrides", func(_ *fml.Interp, args []fml.Value) (fml.Value, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("hybridOverrides wants no args")
		}
		return fml.Int(h.Overrides()), nil
	})
}

// InstallPolicy runs a customization script after installing the desktop
// bindings — the entry point for site-specific FML policy (e.g. a trigger
// that vetoes activities while consistency problems exist).
func (h *Hybrid) InstallPolicy(script string) error {
	h.InstallFMLBindings()
	if _, err := h.Interp.Run(script); err != nil {
		return fmt.Errorf("core: policy script: %w", err)
	}
	return nil
}
