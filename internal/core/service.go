package core

import (
	"fmt"
	"os"

	"repro/internal/oms"
	"repro/internal/tools/layout"
)

// Higher-level design-management services built on the coupling: golden
// configurations (JCF's configuration management applied to the slave's
// tool outputs) and design-rule checking staged through the master.

// SnapshotConfiguration captures the current state of a cell version as a
// named JCF configuration: one entry per design object that has a
// checked-in version, bound to its latest version. Returns the
// configuration and configuration-version OIDs.
//
// This is the configuration-management strength the paper attributes to
// JCF (section 3.2) made available for encapsulated tool outputs: later
// check-ins do not disturb the snapshot, unlike FMCAD's dynamic binding.
func (h *Hybrid) SnapshotConfiguration(user string, cv oms.OID, name string) (cfg, cfgVersion oms.OID, err error) {
	if !h.JCF.CanRead(user, cv) {
		return oms.InvalidOID, oms.InvalidOID, fmt.Errorf("core: user %s may not read this cell version", user)
	}
	binding, err := h.BindingFor(cv)
	if err != nil {
		return oms.InvalidOID, oms.InvalidOID, err
	}
	cfg, cfgVersion, err = h.JCF.CreateConfiguration(cv, name)
	if err != nil {
		return oms.InvalidOID, oms.InvalidOID, err
	}
	entries := 0
	for _, view := range []string{ViewSchematic, ViewWaveform, ViewLayout} {
		do, ok := binding.DesignObjects[view]
		if !ok {
			continue
		}
		dov := h.JCF.LatestVersion(do)
		if dov == oms.InvalidOID {
			continue // nothing checked in for this view yet
		}
		if err := h.JCF.AddConfigEntry(cfgVersion, dov); err != nil {
			return oms.InvalidOID, oms.InvalidOID, err
		}
		entries++
	}
	if entries == 0 {
		return oms.InvalidOID, oms.InvalidOID, fmt.Errorf("core: cell version has no checked-in design data to snapshot")
	}
	return cfg, cfgVersion, nil
}

// CheckLayoutDRC stages the latest layout of a cell version out of the
// master database (the usual read-only copy) and runs the layout editor's
// design-rule checks on it.
func (h *Hybrid) CheckLayoutDRC(user string, cv oms.OID, minWidth, minSpace int) ([]layout.Violation, error) {
	binding, err := h.BindingFor(cv)
	if err != nil {
		return nil, err
	}
	do, ok := binding.DesignObjects[ViewLayout]
	if !ok {
		return nil, fmt.Errorf("core: no layout design object")
	}
	_, staged, err := h.stageInput(user, do, binding.FMCADCell+".drc.lay")
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(staged)
	if err != nil {
		return nil, err
	}
	lay, err := layout.Parse(data)
	if err != nil {
		return nil, err
	}
	return lay.DRC(minWidth, minSpace), nil
}
