// Package core implements the paper's primary contribution: the hybrid
// JCF–FMCAD framework. JCF is the master — it owns design management,
// versioning, teams, workspaces and flows — and FMCAD is the slave,
// contributing its integrated tools (schematic entry, layout editor,
// digital simulator), extension language and inter-tool communication.
//
// The coupling has four pieces, mirroring sections 2.3 and 2.4:
//
//   - the data-model mapping of Table 1 (this file),
//   - the encapsulation wrappers that run each FMCAD tool as one JCF
//     activity, staging design data between the OMS database and the
//     FMCAD library through the UNIX file system (encapsulation.go),
//   - FML extension-language customization that locks the FMCAD-native
//     data-management menus and installs consistency-window triggers
//     (hybrid.go), and
//   - hierarchy submission from FMCAD's in-design hierarchies into JCF's
//     separated metadata (hierarchy.go).
package core

import (
	"fmt"

	"repro/internal/oms"
)

// MappingRow is one row of Table 1 ("JCF - FMCAD mapping").
type MappingRow struct {
	JCF   string
	FMCAD string
}

// MappingTable returns Table 1 of the paper: how the JCF information model
// maps onto the FMCAD information model.
func MappingTable() []MappingRow {
	return []MappingRow{
		{JCF: "Project", FMCAD: "Library"},
		{JCF: "CellVersion", FMCAD: "Cell"},
		{JCF: "ViewType", FMCAD: "View"},
		{JCF: "DesignObject", FMCAD: "Cellview"},
		{JCF: "DesignObjectVersion", FMCAD: "Cellview Version"},
	}
}

// RenderMappingTable prints Table 1 in the paper's two-column layout.
func RenderMappingTable() string {
	out := fmt.Sprintf("%-22s %s\n", "JCF object", "FMCAD object")
	out += fmt.Sprintf("%-22s %s\n", "----------", "------------")
	for _, row := range MappingTable() {
		out += fmt.Sprintf("%-22s %s\n", row.JCF, row.FMCAD)
	}
	return out
}

// The live mapping state: because Table 1 maps a JCF *CellVersion* onto an
// FMCAD *Cell*, every version of a JCF cell owns a distinct FMCAD cell
// (named <cell>_v<num>). This is precisely what makes "parallel work on
// different versions of the same cellview" possible in the hybrid
// framework while plain FMCAD cannot do it (section 3.1): two designers
// reserve two JCF cell versions and each works in a different FMCAD cell.

// FMCADCellName derives the slave-side cell name for a JCF cell version.
func FMCADCellName(cellName string, versionNum int64) string {
	return fmt.Sprintf("%s_v%d", cellName, versionNum)
}

// cellBinding tracks one JCF cell version's slave-side identity.
type cellBinding struct {
	cellVersion oms.OID
	fmcadCell   string
	// designObjects maps a view type name to the JCF design object that
	// Table 1 pairs with the FMCAD cellview of the same view.
	designObjects map[string]oms.OID
}

// Binding describes the mapping state of one design cell as reported to
// callers.
type Binding struct {
	CellVersion oms.OID
	FMCADCell   string
	// DesignObjects maps view type -> JCF design object OID.
	DesignObjects map[string]oms.OID
}

// PropJCFVersion is the FMCAD property the encapsulation writes on every
// cellview version it checks in, binding it to the JCF design object
// version (Table 1's last row) so the slave side stays traceable.
const PropJCFVersion = "jcf.dov"
