package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/flow"
	"repro/internal/fmcad"
	"repro/internal/fml"
	"repro/internal/itc"
	"repro/internal/jcf"
	"repro/internal/oms"
)

// Standard resource names the hybrid framework installs.
const (
	ToolSchematic = "fmcad-schematic"
	ToolSimulator = "fmcad-dsim"
	ToolLayout    = "fmcad-layout"

	ViewSchematic = "schematic"
	ViewLayout    = "layout"
	ViewSymbol    = "symbol"
	ViewWaveform  = "waveform"

	ActSchematicEntry = "schematic-entry"
	ActSimulate       = "simulate"
	ActLayoutEntry    = "layout-entry"
)

// The FMCAD-native data-management menu points the encapsulation locks:
// with JCF as master, designers must not bypass it through the slave's own
// checkin/checkout (section 2.4: extension-language procedures "lock menu
// points in order to prevent data inconsistency").
var lockedMenus = []string{
	"File>CheckIn",
	"File>CheckOut",
	"File>DeleteVersion",
	"Library>EditMeta",
}

// Hybrid is the coupled JCF–FMCAD framework. JCF (master) owns all design
// management; the FMCAD library (slave) holds the tools' working data.
type Hybrid struct {
	JCF    *jcf.Framework
	Lib    *fmcad.Library
	Bus    *itc.Bus
	Interp *fml.Interp
	Hooks  *fml.Hooks

	stage string // staging directory for OMS <-> file-system copies

	// mu guards the binding maps and the feed-sync state. The cross-probe
	// and experiment hot paths only read them, so readers share the lock.
	mu       sync.RWMutex
	bindings map[oms.OID]*cellBinding // cell version -> slave binding
	byCell   map[string]oms.OID       // fmcad cell name -> cell version
	// sync is the coupling's cursor into the master's change feed
	// (dirty bindings, pending library imports; see feedsync.go).
	sync feedSyncState
	// syncLibMu serializes SyncLibrary runs so two concurrent syncs
	// cannot both import the same pending version; the library I/O
	// itself runs outside h.mu (see SyncLibrary).
	syncLibMu sync.Mutex
	// overrides counts forced out-of-order activity executions that went
	// through a consistency window.
	overrides int64
}

// DefaultFlow returns the three-activity encapsulation flow of section
// 2.4: schematic entry, then digital simulation, then layout entry.
func DefaultFlow() *flow.Flow {
	f := flow.New("fmcad-encapsulation")
	// Errors are impossible for this fixed construction (unique names,
	// known references); assert that instead of discarding them.
	must := func(err error) {
		if err != nil {
			panic("core: DefaultFlow construction: " + err.Error())
		}
	}
	must(f.AddActivity(flow.Activity{Name: ActSchematicEntry, Tool: ToolSchematic, Creates: []string{ViewSchematic}}))
	must(f.AddActivity(flow.Activity{Name: ActSimulate, Tool: ToolSimulator, Needs: []string{ViewSchematic}, Creates: []string{ViewWaveform}}))
	must(f.AddActivity(flow.Activity{Name: ActLayoutEntry, Tool: ToolLayout, Needs: []string{ViewSchematic}, Creates: []string{ViewLayout}}))
	must(f.AddPrecedes(ActSchematicEntry, ActSimulate))
	must(f.AddPrecedes(ActSimulate, ActLayoutEntry))
	return f
}

// NewHybrid assembles the coupled framework in dir: a JCF instance of the
// given release (master), an FMCAD library under dir/library (slave), the
// ITC bus, and the FML interpreter with the encapsulation customization
// installed.
func NewHybrid(release jcf.Release, dir string) (*Hybrid, error) {
	fw, err := jcf.New(release)
	if err != nil {
		return nil, err
	}
	lib, err := fmcad.Create(filepath.Join(dir, "library"), "hybrid")
	if err != nil {
		return nil, err
	}
	interp := fml.NewInterp()
	hooks := fml.NewHooks(interp)
	h := &Hybrid{
		JCF:      fw,
		Lib:      lib,
		Bus:      itc.NewBus(),
		Interp:   interp,
		Hooks:    hooks,
		stage:    filepath.Join(dir, "stage"),
		bindings: map[oms.OID]*cellBinding{},
		byCell:   map[string]oms.OID{},
	}
	h.initFeedSync()

	// Slave-side views for the encapsulated tools.
	for view, vt := range map[string]string{
		ViewSchematic: "schematic",
		ViewLayout:    "layout",
		ViewSymbol:    "symbol",
		ViewWaveform:  "waveform",
	} {
		if err := lib.DefineView(view, vt); err != nil {
			return nil, err
		}
	}
	// Master-side resources: view types, the three tools, the default flow.
	for _, vt := range []string{ViewSchematic, ViewLayout, ViewSymbol, ViewWaveform} {
		if _, err := fw.CreateViewType(vt); err != nil {
			return nil, err
		}
	}
	for _, tool := range []string{ToolSchematic, ToolSimulator, ToolLayout} {
		if _, err := fw.CreateTool(tool); err != nil {
			return nil, err
		}
	}
	if _, err := fw.RegisterFlow(DefaultFlow()); err != nil {
		return nil, err
	}

	// Extension-language customization (section 2.4): lock the
	// FMCAD-native data-management menus and register the consistency
	// window trigger. The script runs in the slave's own language, as the
	// original prototype did.
	script := ""
	for _, menu := range lockedMenus {
		script += fmt.Sprintf("(hiLockMenu %q %q)\n", menu, "data management is owned by JCF")
	}
	script += `
(setq jcfConsistencyWindows 0)
(hiRegTrigger "consistency-window"
  (lambda (activity) (setq jcfConsistencyWindows (+ jcfConsistencyWindows 1))))
`
	if _, err := interp.Run(script); err != nil {
		return nil, fmt.Errorf("core: installing FML customization: %w", err)
	}
	return h, nil
}

// DefaultFlowName returns the name of the registered encapsulation flow.
func (h *Hybrid) DefaultFlowName() string { return "fmcad-encapsulation" }

// StageDir returns the staging directory used for database/file exchange.
func (h *Hybrid) StageDir() string { return h.stage }

// Overrides returns how many activities ran out of flow order through the
// consistency-window escape hatch.
func (h *Hybrid) Overrides() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.overrides
}

// MenuLocked reports whether the encapsulation locked an FMCAD menu point.
func (h *Hybrid) MenuLocked(menu string) bool {
	_, locked := h.Hooks.Locked(menu)
	return locked
}

// InvokeNativeMenu simulates a designer picking an FMCAD-native menu
// point. The locked data-management entries fail — the guard the paper's
// customization installs.
func (h *Hybrid) InvokeNativeMenu(menu string) error {
	return h.Hooks.Invoke(menu)
}

// --- provisioning -----------------------------------------------------------

// NewDesignCell creates a JCF cell with an initial cell version running
// the given flow, and binds the version to a fresh FMCAD cell with
// cellviews for the flow's view types. It returns the cell version OID.
func (h *Hybrid) NewDesignCell(project oms.OID, cellName, flowName string, team oms.OID) (oms.OID, error) {
	cell, err := h.JCF.CreateCell(project, cellName)
	if err != nil {
		return oms.InvalidOID, err
	}
	return h.NewCellVersion(cell, flowName, team)
}

// NewCellVersion instantiates another version of an existing JCF cell,
// binding it to its own FMCAD cell (Table 1: CellVersion -> Cell).
func (h *Hybrid) NewCellVersion(cell oms.OID, flowName string, team oms.OID) (oms.OID, error) {
	cv, err := h.JCF.CreateCellVersion(cell, flowName, team)
	if err != nil {
		return oms.InvalidOID, err
	}
	fmcadCell := FMCADCellName(h.JCF.CellName(cell), h.JCF.CellVersionNum(cv))
	if err := h.Lib.CreateCell(fmcadCell); err != nil {
		return oms.InvalidOID, err
	}
	binding := &cellBinding{
		cellVersion:   cv,
		fmcadCell:     fmcadCell,
		designObjects: map[string]oms.OID{},
	}
	variant := h.JCF.Variants(cv)[0]
	for _, view := range []string{ViewSchematic, ViewLayout, ViewWaveform} {
		if err := h.Lib.CreateCellview(fmcadCell, view); err != nil {
			return oms.InvalidOID, err
		}
		vt, err := h.JCF.ViewType(view)
		if err != nil {
			return oms.InvalidOID, err
		}
		do, err := h.JCF.CreateDesignObject(variant, cellName(h, cell)+"-"+view, vt)
		if err != nil {
			return oms.InvalidOID, err
		}
		binding.designObjects[view] = do
	}
	h.mu.Lock()
	h.bindings[cv] = binding
	h.byCell[fmcadCell] = cv
	h.registerBindingLocked(binding)
	h.mu.Unlock()
	return cv, nil
}

func cellName(h *Hybrid, cell oms.OID) string { return h.JCF.CellName(cell) }

// BindingFor returns the mapping state of a cell version.
func (h *Hybrid) BindingFor(cv oms.OID) (Binding, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	b, ok := h.bindings[cv]
	if !ok {
		return Binding{}, fmt.Errorf("core: cell version %d has no FMCAD binding", cv)
	}
	dos := make(map[string]oms.OID, len(b.designObjects))
	for k, v := range b.designObjects {
		dos[k] = v
	}
	return Binding{CellVersion: cv, FMCADCell: b.fmcadCell, DesignObjects: dos}, nil
}

// CellVersionFor resolves an FMCAD cell name back to its JCF cell version
// — the inverse mapping, used by the cross-probe wrappers.
func (h *Hybrid) CellVersionFor(fmcadCell string) (oms.OID, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	cv, ok := h.byCell[fmcadCell]
	if !ok {
		return oms.InvalidOID, fmt.Errorf("core: FMCAD cell %q has no JCF binding", fmcadCell)
	}
	return cv, nil
}

// Bindings lists all bound FMCAD cell names, sorted.
func (h *Hybrid) Bindings() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.byCell))
	for name := range h.byCell {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// VerifyMapping lives in feedsync.go: the feed-driven fast path
// re-verifies only bindings the master's change feed dirtied since the
// last call; VerifyMappingFull keeps the unconditional rescan.
