package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/schematic"
)

// TestFullChipScenario is the system-level integration test: a four-cell
// chip (two leaf blocks, an ALU built from them, a toplevel) designed by
// a two-person team through the hybrid framework, with hierarchy
// submission, hierarchical simulation, layouts, a golden configuration,
// DRC, cross-probing and consistency checks — the whole section 2.4
// encapsulation exercised in one realistic pass.
func TestFullChipScenario(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h

	// -- leaf cells: and-block and xor-block, drawn and published by bert.
	leafs := map[string]schematic.GateType{"andblk": schematic.And2, "xorblk": schematic.Xor2}
	leafCVs := map[string]oms.OID{}
	for name, gt := range leafs {
		cv, err := h.NewDesignCell(w.project, name, h.DefaultFlowName(), w.team)
		if err != nil {
			t.Fatal(err)
		}
		leafCVs[name] = cv
		if err := h.JCF.Reserve("bert", cv); err != nil {
			t.Fatal(err)
		}
		gt := gt
		if _, err := h.RunSchematicEntry("bert", cv, func(s *schematic.Schematic) error {
			for _, p := range []struct {
				n string
				d schematic.PortDir
			}{{"a", schematic.In}, {"b", schematic.In}, {"y", schematic.Out}} {
				if err := s.AddPort(p.n, p.d); err != nil {
					return err
				}
			}
			return s.AddGate("g", gt, "y", "a", "b")
		}, RunOpts{}); err != nil {
			t.Fatal(err)
		}
		// Simulate each leaf before publishing (the forced flow requires
		// it before layout anyway).
		if _, _, err := h.RunSimulation("bert", cv, []byte("at 0 set a 1\nat 0 set b 1\nrun 50\n"), RunOpts{}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.RunLayoutEntry("bert", cv, nil, RunOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := h.JCF.Publish("bert", cv); err != nil {
			t.Fatal(err)
		}
	}

	// -- the half-adder cell composed of the two leaves (anna).
	ha, err := h.NewDesignCell(w.project, "ha", h.DefaultFlowName(), w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", ha); err != nil {
		t.Fatal(err)
	}
	// 3.0 rule: hierarchy to the desktop first.
	for _, leaf := range leafCVs {
		if err := h.SubmitHierarchyManual(ha, leaf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.RunSchematicEntry("anna", ha, func(s *schematic.Schematic) error {
		for _, p := range []struct {
			n string
			d schematic.PortDir
		}{{"a", schematic.In}, {"b", schematic.In}, {"sum", schematic.Out}, {"carry", schematic.Out}} {
			if err := s.AddPort(p.n, p.d); err != nil {
				return err
			}
		}
		if err := s.AddInstance("u_xor", "xorblk_v1", ViewSchematic); err != nil {
			return err
		}
		if err := s.AddInstance("u_and", "andblk_v1", ViewSchematic); err != nil {
			return err
		}
		for inst, conns := range map[string]map[string]string{
			"u_xor": {"a": "a", "b": "b", "y": "sum"},
			"u_and": {"a": "a", "b": "b", "y": "carry"},
		} {
			for port, net := range conns {
				if err := s.Connect(inst, port, net); err != nil {
					return err
				}
			}
		}
		return nil
	}, RunOpts{}); err != nil {
		t.Fatal(err)
	}

	// Hierarchical simulation: 1+1 = 10.
	_, waves, err := h.RunSimulation("anna", ha, []byte("at 0 set a 1\nat 0 set b 1\nrun 200\n"), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantWave(t, waves, "sum 0")
	wantWave(t, waves, "carry 1")

	// Layout, keeping the hierarchy isomorphic (instances carried over
	// from the schematic by the generator).
	if _, err := h.RunLayoutEntry("anna", ha, nil, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	done, err := h.JCF.FlowComplete(ha)
	if err != nil || !done {
		t.Fatalf("flow complete = %t, %v", done, err)
	}

	// Golden configuration: snapshot, then iterate the schematic, and
	// verify the snapshot still points at the old versions.
	cfg, cfgV, err := h.SnapshotConfiguration("anna", ha, "golden")
	if err != nil {
		t.Fatal(err)
	}
	entriesBefore := h.JCF.ConfigEntries(cfgV)
	if len(entriesBefore) != 3 {
		t.Fatalf("config entries = %d, want 3 (schematic, waveform, layout)", len(entriesBefore))
	}
	if _, err := h.RunSchematicEntry("anna", ha, func(s *schematic.Schematic) error {
		return s.AddNet("scratch")
	}, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	entriesAfter := h.JCF.ConfigEntries(cfgV)
	if len(entriesAfter) != 3 || entriesAfter[0] != entriesBefore[0] {
		t.Fatalf("golden config drifted: %v -> %v", entriesBefore, entriesAfter)
	}
	if got := h.JCF.ConfigVersions(cfg); len(got) != 1 {
		t.Fatalf("config versions = %d", len(got))
	}

	// DRC through the coupling: the generated layout should be clean at
	// tiny rules and report violations at absurd ones.
	clean, err := h.CheckLayoutDRC("anna", ha, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatalf("DRC at 1/0 = %d violations", len(clean))
	}
	dirty, err := h.CheckLayoutDRC("anna", ha, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) == 0 {
		t.Fatal("DRC at 50/50 found nothing")
	}

	// Cross-probe after publishing.
	if err := h.JCF.Publish("anna", ha); err != nil {
		t.Fatal(err)
	}
	probe := h.EnableCrossProbe("bert")
	res, err := probe(ha, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shapes) == 0 {
		t.Fatal("no shapes for sum")
	}

	// Whole-world audits: mapping, master consistency, slave sync.
	if problems := h.VerifyMapping(); len(problems) != 0 {
		t.Fatalf("mapping problems: %v", problems)
	}
	if problems := h.JCF.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("consistency problems: %v", problems)
	}
	sync, err := h.SlaveSyncCheck()
	if err != nil {
		t.Fatal(err)
	}
	if len(sync) != 0 {
		t.Fatalf("sync problems: %v", sync)
	}

	// The desktop summary reflects the whole project.
	summary, err := h.JCF.DesktopSummary(w.project)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"alu", "andblk", "xorblk", "ha"} {
		if !strings.Contains(summary, "cell "+cell) {
			t.Errorf("summary missing %s:\n%s", cell, summary)
		}
	}
}

func wantWave(t *testing.T, waves []byte, want string) {
	t.Helper()
	if !strings.Contains(string(waves), want) {
		t.Fatalf("waves missing %q:\n%s", want, waves)
	}
}

// TestSnapshotConfigurationErrors covers the service error paths.
func TestSnapshotConfigurationErrors(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	// No read permission.
	if _, _, err := h.SnapshotConfiguration("carl", w.cv, "x"); err == nil {
		t.Fatal("outsider snapshot accepted")
	}
	// No data yet.
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.SnapshotConfiguration("anna", w.cv, "x"); err == nil ||
		!strings.Contains(err.Error(), "no checked-in design data") {
		t.Fatalf("empty snapshot: %v", err)
	}
	// Unbound cell version.
	if _, _, err := h.SnapshotConfiguration("anna", oms.OID(99999), "x"); err == nil {
		t.Fatal("unbound snapshot accepted")
	}
	// DRC without layout.
	if _, err := h.CheckLayoutDRC("anna", w.cv, 1, 1); err == nil {
		t.Fatal("DRC without layout accepted")
	}
	if _, err := h.CheckLayoutDRC("anna", oms.OID(99999), 1, 1); err == nil {
		t.Fatal("DRC on unbound version accepted")
	}
}

// TestMultiVersionIterations drives several schematic iterations and
// checks the version chains on both sides stay aligned.
func TestMultiVersionIterations(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		i := i
		if _, err := h.RunSchematicEntry("anna", w.cv, func(s *schematic.Schematic) error {
			return s.AddNet(fmt.Sprintf("iter%d", i))
		}, RunOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := h.BindingFor(w.cv)
	do := b.DesignObjects[ViewSchematic]
	jcfVersions := h.JCF.DesignObjectVersions(do)
	if len(jcfVersions) != 5 {
		t.Fatalf("JCF versions = %d", len(jcfVersions))
	}
	slaveVersions, err := h.Lib.Versions("alu_v1", ViewSchematic)
	if err != nil {
		t.Fatal(err)
	}
	// Slave has the empty seed v1 plus five tool check-ins.
	if len(slaveVersions) != 6 {
		t.Fatalf("slave versions = %d", len(slaveVersions))
	}
	// The intra-object derivation chain is linear: v1 -> v2 -> ... -> v5.
	for i := 0; i+1 < len(jcfVersions); i++ {
		derived := h.JCF.Derivatives(jcfVersions[i])
		if len(derived) != 1 || derived[0] != jcfVersions[i+1] {
			t.Fatalf("derivation chain broken at %d: %v", i, derived)
		}
	}
	// Every slave version beyond the seed is tagged.
	problems, err := h.SlaveSyncCheck()
	if err != nil || len(problems) != 0 {
		t.Fatalf("sync problems: %v, %v", problems, err)
	}
}
