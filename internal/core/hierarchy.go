package core

import (
	"fmt"

	"repro/internal/fmcad"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/schematic"
)

// Hierarchy handling (section 3.3): "The existing JCF-FMCAD prototype
// requires that all hierarchical manipulations must be done manually via
// the JCF desktop before the design is started. In the future, this
// drawback could be overcome by a JCF procedural interface which might be
// used by the design tools to pass the hierarchy information to JCF."
//
// SubmitHierarchyManual is the 3.0 desktop path. SyncHierarchyFromDesign
// is the future-work path: it reads the hierarchy out of the FMCAD design
// files (inst lines) and pushes it through the procedural interface —
// available only when the master is Release 4.0.

// SubmitHierarchyManual records parent-contains-child on the JCF desktop.
// Both OIDs are cell versions. This must happen before design work needs
// the hierarchy — the prototype's documented restriction.
func (h *Hybrid) SubmitHierarchyManual(parent, child oms.OID) error {
	return h.JCF.SubmitHierarchy(parent, child)
}

// AddSchematicInstance wires a child design cell into a parent's
// schematic: it adds the instance to the parent's schematic design file
// (through a regular schematic-entry run) after verifying the hierarchy
// was submitted to JCF first. Returns the run result.
func (h *Hybrid) AddSchematicInstance(user string, parent, child oms.OID, instName string, conns map[string]string, opts RunOpts) (RunResult, error) {
	// The hierarchy must already be known to the master (3.0 rule).
	declared := false
	for _, c := range h.JCF.Children(parent) {
		if c == child {
			declared = true
			break
		}
	}
	if !declared && h.JCF.Release() < jcf.Release40 {
		return RunResult{}, fmt.Errorf("core: hierarchy parent->child not submitted via desktop; JCF 3.0 requires manual submission before design")
	}
	childBinding, err := h.BindingFor(child)
	if err != nil {
		return RunResult{}, err
	}
	res, err := h.RunSchematicEntry(user, parent, func(s *schematic.Schematic) error {
		if err := s.AddInstance(instName, childBinding.FMCADCell, ViewSchematic); err != nil {
			return err
		}
		for port, net := range conns {
			if !s.HasNet(net) {
				if err := s.AddNet(net); err != nil {
					return err
				}
			}
			if err := s.Connect(instName, port, net); err != nil {
				return err
			}
		}
		return nil
	}, opts)
	if err != nil {
		return res, err
	}
	// Release 4.0: the tool pushes the hierarchy procedurally as a side
	// effect, sparing the designer the desktop round-trip.
	if !declared && h.JCF.Release() >= jcf.Release40 {
		if err := h.JCF.SubmitHierarchyProcedural(parent, child); err != nil {
			return res, err
		}
	}
	return res, nil
}

// SyncHierarchyFromDesign reads the design hierarchy out of the slave's
// design files for one cell version and submits every edge to JCF through
// the procedural interface. On a 3.0 master it fails with ErrUnsupported —
// the desktop is the only way in.
func (h *Hybrid) SyncHierarchyFromDesign(cv oms.OID) (edges int, err error) {
	if !h.JCF.ProceduralHierarchyInterface() {
		return 0, fmt.Errorf("%w: hierarchy sync needs the JCF procedural interface (release 4.0)", jcf.ErrUnsupported)
	}
	binding, err := h.BindingFor(cv)
	if err != nil {
		return 0, err
	}
	views, err := h.Lib.Cellviews(binding.FMCADCell)
	if err != nil {
		return 0, err
	}
	for _, view := range views {
		def, err := h.Lib.DefaultVersion(binding.FMCADCell, view)
		if err != nil {
			return edges, err
		}
		data, err := h.Lib.ReadVersion(binding.FMCADCell, view, def)
		if err != nil {
			return edges, err
		}
		for _, ref := range fmcad.ParseInstances(data) {
			childCV, err := h.CellVersionFor(ref.Cell)
			if err != nil {
				return edges, fmt.Errorf("core: design references unbound cell %q: %w", ref.Cell, err)
			}
			// Per-view-type hierarchy: the 4.0 master records which view
			// the edge came from, so non-isomorphic designs round-trip.
			if err := h.JCF.SubmitHierarchyTyped(cv, childCV, view); err != nil {
				return edges, err
			}
			edges++
		}
	}
	return edges, nil
}

// HierarchyMatchesDesign compares the JCF (desktop-submitted) hierarchy of
// a cell version against what the slave design files actually instantiate,
// returning the discrepancies — the consistency check JCF's separated
// metadata enables (section 3.2).
func (h *Hybrid) HierarchyMatchesDesign(cv oms.OID) ([]string, error) {
	binding, err := h.BindingFor(cv)
	if err != nil {
		return nil, err
	}
	declared := map[oms.OID]bool{}
	for _, c := range h.JCF.Children(cv) {
		declared[c] = true
	}
	var problems []string
	seen := map[oms.OID]bool{}
	views, err := h.Lib.Cellviews(binding.FMCADCell)
	if err != nil {
		return nil, err
	}
	for _, view := range views {
		def, err := h.Lib.DefaultVersion(binding.FMCADCell, view)
		if err != nil {
			return nil, err
		}
		data, err := h.Lib.ReadVersion(binding.FMCADCell, view, def)
		if err != nil {
			return nil, err
		}
		for _, ref := range fmcad.ParseInstances(data) {
			childCV, err := h.CellVersionFor(ref.Cell)
			if err != nil {
				problems = append(problems, fmt.Sprintf("view %s instantiates unbound cell %q", view, ref.Cell))
				continue
			}
			seen[childCV] = true
			if !declared[childCV] {
				problems = append(problems, fmt.Sprintf("view %s instantiates %q but the hierarchy was never submitted to JCF", view, ref.Cell))
			}
		}
	}
	for child := range declared {
		if !seen[child] {
			problems = append(problems, fmt.Sprintf("JCF hierarchy declares child version %d the design never instantiates", child))
		}
	}
	return problems, nil
}
