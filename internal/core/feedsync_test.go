package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jcf"
)

// Tests for the feed-driven coupling sync: VerifyMapping's fast path
// and SyncLibrary's import of master-side checkins. See ISSUE 4.

// TestVerifyMappingFastPathMatchesFull: under normal operation the fast
// path and the full rescan agree, before and after master traffic.
func TestVerifyMappingFastPathMatchesFull(t *testing.T) {
	w := newHW(t, jcf.Release30)
	if got, want := w.h.VerifyMapping(), w.h.VerifyMappingFull(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fast path %v != full %v", got, want)
	}
	if err := w.h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := w.h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// Another bound cell after the first verification round.
	if _, err := w.h.NewDesignCell(w.project, "mul", w.h.DefaultFlowName(), w.team); err != nil {
		t.Fatal(err)
	}
	fast := w.h.VerifyMapping()
	full := w.h.VerifyMappingFull()
	if len(fast) != 0 || fmt.Sprint(fast) != fmt.Sprint(full) {
		t.Fatalf("fast path %v != full %v", fast, full)
	}
}

// TestVerifyMappingFastPathCachesUntilDirty: a clean verification is
// cached — breakage invisible to the feed is not rediscovered until
// master-side traffic dirties the binding, at which point the fast path
// re-verifies and reports it. (VerifyMappingFull always sees it.)
func TestVerifyMappingFastPathCachesUntilDirty(t *testing.T) {
	w := newHW(t, jcf.Release30)
	if problems := w.h.VerifyMapping(); len(problems) != 0 {
		t.Fatalf("fresh world inconsistent: %v", problems)
	}
	// Break the inverse map behind the feed's back (no master change).
	w.h.mu.Lock()
	w.h.byCell["alu_v1"] = w.cv + 9999
	w.h.mu.Unlock()
	if problems := w.h.VerifyMapping(); len(problems) != 0 {
		t.Fatalf("fast path rescanned without dirt: %v", problems)
	}
	if problems := w.h.VerifyMappingFull(); len(problems) != 1 {
		t.Fatalf("full rescan missed the breakage: %v", problems)
	}
	// The full pass refreshed the cache; repair and dirty via master
	// traffic to show the feed-driven path converges on its own.
	w.h.mu.Lock()
	w.h.byCell["alu_v1"] = w.cv
	w.h.mu.Unlock()
	if err := w.h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := w.h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if problems := w.h.VerifyMapping(); len(problems) != 0 {
		t.Fatalf("fast path did not re-verify the dirtied binding: %v", problems)
	}
}

// TestSyncLibraryImportsDirectCheckin: design data checked into the
// master directly (JCF desktop, not an encapsulated tool run) reaches
// the slave library via the feed, tagged with its JCF version — and the
// import is idempotent.
func TestSyncLibraryImportsDirectCheckin(t *testing.T) {
	w := newHW(t, jcf.Release30)
	if err := w.h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	binding, err := w.h.BindingFor(w.cv)
	if err != nil {
		t.Fatal(err)
	}
	do := binding.DesignObjects[ViewSchematic]
	src := filepath.Join(t.TempDir(), "alu.sch")
	if err := os.WriteFile(src, []byte("schematic alu_v1\n.end\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dov, err := w.h.JCF.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	// The library knows nothing about this version yet.
	versionsBefore, err := w.h.Lib.Versions(binding.FMCADCell, ViewSchematic)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := w.h.SyncLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if imported != 1 {
		t.Fatalf("imported %d versions, want 1", imported)
	}
	versionsAfter, err := w.h.Lib.Versions(binding.FMCADCell, ViewSchematic)
	if err != nil {
		t.Fatal(err)
	}
	if len(versionsAfter) != len(versionsBefore)+1 {
		t.Fatalf("library versions %v -> %v, want one new", versionsBefore, versionsAfter)
	}
	newest := versionsAfter[len(versionsAfter)-1]
	tag, ok, err := w.h.Lib.GetProperty(binding.FMCADCell, ViewSchematic, newest, PropJCFVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || tag != fmt.Sprint(dov) {
		t.Fatalf("imported version tag = %q,%t want %d", tag, ok, dov)
	}
	// The imported version is master-tracked: the slave-sync audit stays
	// clean.
	problems, err := w.h.SlaveSyncCheck()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("imported version reads as rogue: %v", problems)
	}
	// Idempotent: nothing left to import.
	if again, err := w.h.SyncLibrary(); err != nil || again != 0 {
		t.Fatalf("second sync imported %d (err %v), want 0", again, err)
	}
}

// TestSyncLibraryIgnoresEncapsulatedRuns: versions captured by the
// wrappers are already tagged; the feed-driven sync must not duplicate
// them.
func TestSyncLibraryIgnoresEncapsulatedRuns(t *testing.T) {
	w := newHW(t, jcf.Release30)
	if err := w.h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := w.h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	binding, err := w.h.BindingFor(w.cv)
	if err != nil {
		t.Fatal(err)
	}
	before, err := w.h.Lib.Versions(binding.FMCADCell, ViewSchematic)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := w.h.SyncLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if imported != 0 {
		t.Fatalf("sync duplicated %d encapsulated captures", imported)
	}
	after, err := w.h.Lib.Versions(binding.FMCADCell, ViewSchematic)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("library versions changed %v -> %v", before, after)
	}
}
