package core

import (
	"fmt"
	"os"

	"repro/internal/itc"
	"repro/internal/oms"
	"repro/internal/tools/layout"
)

// Cross-probing under the coupling. Natively, FMCAD's schematic and layout
// editors exchange selections over ITC. "Due to the closed interfaces of
// JCF, FMCAD's ITC could not be used normally. Special wrappers and
// additional software helped to reduce potential drawbacks" (section 2.4):
// the hybrid installs a wrapper that answers cross-probes only after
// checking JCF read permission and by staging the layout data out of the
// master database.

// CrossProbeResult is the layout editor's answer to a cross-probe.
type CrossProbeResult struct {
	Net    string
	Shapes []layout.Rect
}

// EnableCrossProbe installs the guarded cross-probe wrapper for a user.
// It returns a function that performs a probe (schematic -> layout) on a
// bound cell version, and subscribes the wrapper on the ITC bus so native
// publications are also answered.
func (h *Hybrid) EnableCrossProbe(user string) func(cv oms.OID, net string) (CrossProbeResult, error) {
	probe := func(cv oms.OID, net string) (CrossProbeResult, error) {
		binding, err := h.BindingFor(cv)
		if err != nil {
			return CrossProbeResult{}, err
		}
		// The wrapper's JCF permission gate.
		if !h.JCF.CanRead(user, cv) {
			return CrossProbeResult{}, fmt.Errorf("core: cross-probe denied: user %s may not read this cell version", user)
		}
		do, ok := binding.DesignObjects[ViewLayout]
		if !ok {
			return CrossProbeResult{}, fmt.Errorf("core: no layout design object")
		}
		dov := h.JCF.LatestVersion(do)
		if dov == oms.InvalidOID {
			return CrossProbeResult{}, fmt.Errorf("core: no layout version checked in yet")
		}
		staged := h.stagePath(user, binding.FMCADCell+".probe.lay")
		if err := h.JCF.CheckOutData(user, dov, staged); err != nil {
			return CrossProbeResult{}, err
		}
		data, err := os.ReadFile(staged)
		if err != nil {
			return CrossProbeResult{}, err
		}
		lay, err := layout.Parse(data)
		if err != nil {
			return CrossProbeResult{}, err
		}
		// Publish on the bus so other subscribed tools see the selection.
		if err := h.Bus.Publish(itc.CrossProbe("schematic-editor", binding.FMCADCell, ViewSchematic, net)); err != nil {
			return CrossProbeResult{}, err
		}
		return CrossProbeResult{Net: net, Shapes: lay.NetShapes(net)}, nil
	}

	// The wrapper also answers probes other tools publish natively.
	h.Bus.Subscribe(itc.TopicCrossProbe, "jcf-wrapper", func(m itc.Message) error {
		cell := m.Fields["cell"]
		if cell == "" {
			return fmt.Errorf("core: cross-probe without cell")
		}
		cv, err := h.CellVersionFor(cell)
		if err != nil {
			return err
		}
		if !h.JCF.CanRead(user, cv) {
			return fmt.Errorf("core: cross-probe denied for %s", user)
		}
		return nil
	})
	return probe
}
