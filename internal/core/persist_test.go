package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jcf"
	"repro/internal/tools/schematic"
)

func TestHybridSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h, err := NewHybrid(jcf.Release30, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.JCF.CreateUser("anna"); err != nil {
		t.Fatal(err)
	}
	team, err := h.JCF.CreateTeam("t")
	if err != nil {
		t.Fatal(err)
	}
	anna, _ := h.JCF.User("anna")
	if err := h.JCF.AddMember(team, anna); err != nil {
		t.Fatal(err)
	}
	project, err := h.JCF.CreateProject("p", team)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", cv); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunSchematicEntry("anna", cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}

	if err := h.Save(dir); err != nil {
		t.Fatal(err)
	}
	// A whole new process: reload everything from disk.
	ld, err := LoadHybrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Bindings restored both ways.
	b, err := ld.BindingFor(cv)
	if err != nil || b.FMCADCell != "alu_v1" || len(b.DesignObjects) != 3 {
		t.Fatalf("binding = %+v, %v", b, err)
	}
	got, err := ld.CellVersionFor("alu_v1")
	if err != nil || got != cv {
		t.Fatal("inverse binding lost")
	}
	if problems := ld.VerifyMapping(); len(problems) != 0 {
		t.Fatalf("mapping problems after load: %v", problems)
	}
	// The reservation survived through the master's state.
	if holder, held := ld.JCF.ReservedBy(cv); !held || holder != "anna" {
		t.Fatalf("reservation lost: %q,%t", holder, held)
	}
	// Menu locks reinstalled.
	if !ld.MenuLocked("File>CheckIn") {
		t.Fatal("menu locks not reinstalled")
	}
	// The restored hybrid is fully operational: the flow continues where
	// the session left off (schematic done -> simulate next).
	startable, err := ld.JCF.StartableActivities(cv)
	if err != nil {
		t.Fatal(err)
	}
	// Note: enactment state is session-scoped (like the original); after
	// a restart the flow starts fresh, so schematic-entry is startable
	// again — but the design DATA survived, which is what matters.
	if len(startable) == 0 {
		t.Fatalf("nothing startable after reload: %v", startable)
	}
	stim := []byte("at 0 set a 1\nat 0 set b 1\nrun 50\n")
	// The working copy after reload contains the saved schematic; a
	// no-op edit re-checks it in.
	if _, err := ld.RunSchematicEntry("anna", cv, func(*schematic.Schematic) error { return nil }, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ld.RunSimulation("anna", cv, stim, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// Slave data continuity: versions from before and after the reload
	// coexist.
	versions, err := ld.Lib.Versions("alu_v1", ViewSchematic)
	if err != nil || len(versions) != 3 { // seed + pre-save + post-load
		t.Fatalf("slave versions = %v, %v", versions, err)
	}
	// Sync audit stays clean across the restart.
	sync, err := ld.SlaveSyncCheck()
	if err != nil || len(sync) != 0 {
		t.Fatalf("sync problems after reload: %v, %v", sync, err)
	}
}

func TestLoadHybridErrors(t *testing.T) {
	if _, err := LoadHybrid(t.TempDir()); err == nil {
		t.Fatal("load of empty dir")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "hybrid.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHybrid(dir); err == nil {
		t.Fatal("corrupt hybrid.json accepted")
	}
	// Valid bindings but no master directory.
	if err := os.WriteFile(filepath.Join(dir, "hybrid.json"), []byte(`{"bindings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHybrid(dir); err == nil {
		t.Fatal("missing master accepted")
	}
}

func TestHybridSaveIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	h, err := NewHybrid(jcf.Release30, dir)
	if err != nil {
		t.Fatal(err)
	}
	team, err := h.JCF.CreateTeam("t")
	if err != nil {
		t.Fatal(err)
	}
	project, err := h.JCF.CreateProject("p", team)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c"} {
		if _, err := h.NewDesignCell(project, n, h.DefaultFlowName(), team); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Save(dir); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, "hybrid.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Save(dir); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(filepath.Join(dir, "hybrid.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("hybrid.json not deterministic")
	}
	if !strings.Contains(string(first), "a_v1") {
		t.Fatalf("bindings missing: %s", first)
	}
}
