package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fmcad"
	"repro/internal/fml"
	"repro/internal/itc"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/oms/backend"
)

// Hybrid persistence: the slave library is inherently persistent (a
// directory with .meta), the master saves itself via jcf.Framework.Save,
// and the coupling's own state — the Table 1 bindings — is a small JSON
// file. Save/LoadHybrid make the whole coupled environment restartable.
//
// Layout under the hybrid directory (the same dir given to NewHybrid):
//
//	library/      the FMCAD slave (already on disk)
//	stage/        staging area (transient, not preserved)
//	master/       the JCF framework state
//	hybrid.json   the bindings
//
// FML customization (menu locks, triggers) is code, not data: LoadHybrid
// reinstalls the standard script, and callers re-run their own policy
// scripts, exactly as the original tools re-sourced their customization at
// startup.

// persistedBinding serializes one cell binding.
type persistedBinding struct {
	CellVersion oms.OID            `json:"cell_version"`
	FMCADCell   string             `json:"fmcad_cell"`
	DesignObjs  map[string]oms.OID `json:"design_objects"`
}

type persistedHybrid struct {
	Bindings  []persistedBinding `json:"bindings"`
	Overrides int64              `json:"overrides"`
}

// Save persists the master and the binding state into the hybrid's
// directory, alongside the already-persistent slave library.
func (h *Hybrid) Save(dir string) error {
	if err := h.JCF.Save(filepath.Join(dir, "master")); err != nil {
		return err
	}
	h.mu.RLock()
	state := persistedHybrid{Overrides: h.overrides}
	for cv, b := range h.bindings {
		dos := make(map[string]oms.OID, len(b.designObjects))
		for k, v := range b.designObjects {
			dos[k] = v
		}
		state.Bindings = append(state.Bindings, persistedBinding{
			CellVersion: cv,
			FMCADCell:   b.fmcadCell,
			DesignObjs:  dos,
		})
	}
	h.mu.RUnlock()
	sort.Slice(state.Bindings, func(i, j int) bool {
		return state.Bindings[i].CellVersion < state.Bindings[j].CellVersion
	})
	data, err := json.MarshalIndent(&state, "", " ")
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	// The bindings commit through the same atomic-rename backend the
	// master's snapshot pairs use — one Put, never a torn hybrid.json.
	b, err := backend.OpenFile(dir)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := b.Put("hybrid.json", data); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// LoadHybrid restores a hybrid saved by Save from its directory: reopens
// the slave library, reloads the master, rebuilds the bindings and
// reinstalls the FML customization.
func LoadHybrid(dir string) (*Hybrid, error) {
	data, err := os.ReadFile(filepath.Join(dir, "hybrid.json"))
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	var state persistedHybrid
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	fw, err := jcf.Load(filepath.Join(dir, "master"))
	if err != nil {
		return nil, err
	}
	lib, err := fmcad.Open(filepath.Join(dir, "library"))
	if err != nil {
		return nil, err
	}
	interp := fml.NewInterp()
	hooks := fml.NewHooks(interp)
	h := &Hybrid{
		JCF:      fw,
		Lib:      lib,
		Bus:      itc.NewBus(),
		Interp:   interp,
		Hooks:    hooks,
		stage:    filepath.Join(dir, "stage"),
		bindings: map[oms.OID]*cellBinding{},
		byCell:   map[string]oms.OID{},
	}
	h.initFeedSync()
	h.overrides = state.Overrides
	for _, pb := range state.Bindings {
		dos := make(map[string]oms.OID, len(pb.DesignObjs))
		for k, v := range pb.DesignObjs {
			dos[k] = v
		}
		b := &cellBinding{
			cellVersion:   pb.CellVersion,
			fmcadCell:     pb.FMCADCell,
			designObjects: dos,
		}
		h.bindings[pb.CellVersion] = b
		h.byCell[pb.FMCADCell] = pb.CellVersion
		h.registerBindingLocked(b)
	}
	// Reinstall the standard customization (menu locks + consistency
	// window trigger).
	script := ""
	for _, menu := range lockedMenus {
		script += fmt.Sprintf("(hiLockMenu %q %q)\n", menu, "data management is owned by JCF")
	}
	script += `
(setq jcfConsistencyWindows 0)
(hiRegTrigger "consistency-window"
  (lambda (activity) (setq jcfConsistencyWindows (+ jcfConsistencyWindows 1))))
`
	if _, err := interp.Run(script); err != nil {
		return nil, fmt.Errorf("core: reinstalling FML customization: %w", err)
	}
	return h, nil
}
