package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/fml"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/dsim"
	"repro/internal/tools/layout"
	"repro/internal/tools/schematic"
)

// hw is a hybrid world ready for tool runs.
type hw struct {
	h       *Hybrid
	team    oms.OID
	project oms.OID
	cv      oms.OID // "alu" v1, bound
}

func newHW(t *testing.T, release jcf.Release) *hw {
	t.Helper()
	h, err := NewHybrid(release, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"anna", "bert", "carl"} {
		if _, err := h.JCF.CreateUser(u); err != nil {
			t.Fatal(err)
		}
	}
	team, err := h.JCF.CreateTeam("vlsi")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"anna", "bert"} {
		uid, err := h.JCF.User(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.JCF.AddMember(team, uid); err != nil {
			t.Fatal(err)
		}
	}
	project, err := h.JCF.CreateProject("chip", team)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		t.Fatal(err)
	}
	return &hw{h: h, team: team, project: project, cv: cv}
}

// drawHalfAdder is the canonical edit used in tests.
func drawHalfAdder(s *schematic.Schematic) error {
	for _, p := range []struct {
		name string
		dir  schematic.PortDir
	}{{"a", schematic.In}, {"b", schematic.In}, {"sum", schematic.Out}, {"carry", schematic.Out}} {
		if err := s.AddPort(p.name, p.dir); err != nil {
			return err
		}
	}
	if err := s.AddGate("x1", schematic.Xor2, "sum", "a", "b"); err != nil {
		return err
	}
	return s.AddGate("a1", schematic.And2, "carry", "a", "b")
}

func TestMappingTable(t *testing.T) {
	rows := MappingTable()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	want := []MappingRow{
		{"Project", "Library"},
		{"CellVersion", "Cell"},
		{"ViewType", "View"},
		{"DesignObject", "Cellview"},
		{"DesignObjectVersion", "Cellview Version"},
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
	txt := RenderMappingTable()
	for _, s := range []string{"JCF object", "FMCAD object", "Project", "Library", "Cellview Version"} {
		if !strings.Contains(txt, s) {
			t.Errorf("rendered table missing %q", s)
		}
	}
}

func TestHybridSetup(t *testing.T) {
	w := newHW(t, jcf.Release30)
	// The slave library carries the views and the bound cell.
	if got := w.h.Lib.Views(); len(got) != 4 {
		t.Fatalf("views = %v", got)
	}
	if got := w.h.Bindings(); len(got) != 1 || got[0] != "alu_v1" {
		t.Fatalf("bindings = %v", got)
	}
	b, err := w.h.BindingFor(w.cv)
	if err != nil {
		t.Fatal(err)
	}
	if b.FMCADCell != "alu_v1" || len(b.DesignObjects) != 3 {
		t.Fatalf("binding = %+v", b)
	}
	cv, err := w.h.CellVersionFor("alu_v1")
	if err != nil || cv != w.cv {
		t.Fatal("inverse mapping")
	}
	if _, err := w.h.CellVersionFor("ghost"); err == nil {
		t.Fatal("unbound cell resolved")
	}
	if _, err := w.h.BindingFor(oms.OID(9999)); err == nil {
		t.Fatal("unbound version resolved")
	}
	if problems := w.h.VerifyMapping(); len(problems) != 0 {
		t.Fatalf("VerifyMapping = %v", problems)
	}
	// The FML customization locked the native menus.
	for _, menu := range lockedMenus {
		if !w.h.MenuLocked(menu) {
			t.Errorf("menu %q not locked", menu)
		}
		if err := w.h.InvokeNativeMenu(menu); err == nil {
			t.Errorf("locked menu %q invokable", menu)
		}
	}
	if w.h.MenuLocked("View>ZoomIn") {
		t.Error("unrelated menu locked")
	}
}

func TestSchematicEntryRun(t *testing.T) {
	w := newHW(t, jcf.Release30)
	// Without a reservation the activity is refused by the master.
	_, err := w.h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{})
	if !errors.Is(err, jcf.ErrNotReserved) {
		t.Fatalf("unreserved run: %v", err)
	}
	if err := w.h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	res, err := w.h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputDOV == oms.InvalidOID || res.SlaveVersion != 2 || res.Forced {
		t.Fatalf("result = %+v", res)
	}
	// Both sides hold the data: slave cellview version 2 and master DOV 1.
	data, err := w.h.Lib.ReadVersion("alu_v1", ViewSchematic, 2)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := schematic.Parse(data)
	if err != nil || len(sch.Gates()) != 2 {
		t.Fatalf("slave data: %v", err)
	}
	b, _ := w.h.BindingFor(w.cv)
	if w.h.JCF.LatestVersion(b.DesignObjects[ViewSchematic]) != res.OutputDOV {
		t.Fatal("master missing DOV")
	}
	// The slave version is tagged with the JCF version (Table 1 row 5).
	val, ok, err := w.h.Lib.GetProperty("alu_v1", ViewSchematic, 2, PropJCFVersion)
	if err != nil || !ok || val == "" {
		t.Fatalf("property = %q,%t,%v", val, ok, err)
	}
	// Activity is done in the flow.
	st, err := w.h.JCF.ActivityState(w.cv, ActSchematicEntry)
	if err != nil || st != flow.Done {
		t.Fatalf("activity state = %s, %v", st, err)
	}
	// A failing edit cancels cleanly: no new version, lock released.
	_, err = w.h.RunSchematicEntry("anna", w.cv, func(*schematic.Schematic) error {
		return errors.New("user abort")
	}, RunOpts{})
	if err == nil {
		t.Fatal("failing edit succeeded")
	}
	if who, _ := w.h.Lib.LockedBy("alu_v1", ViewSchematic); who != "" {
		t.Fatalf("slave lock leaked to %q", who)
	}
	// An invalid schematic (two drivers) is rejected by the wrapper.
	_, err = w.h.RunSchematicEntry("anna", w.cv, func(s *schematic.Schematic) error {
		return s.AddGate("dup", schematic.Buf, "sum", "a")
	}, RunOpts{})
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("invalid schematic: %v", err)
	}
}

func TestFlowEnforcementAndForce(t *testing.T) {
	w := newHW(t, jcf.Release30)
	if err := w.h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	// Simulation before schematic entry: refused by the flow.
	_, _, err := w.h.RunSimulation("anna", w.cv, []byte("run 10\n"), RunOpts{})
	if !errors.Is(err, flow.ErrOrder) {
		t.Fatalf("out-of-order simulate: %v", err)
	}
	// Layout before schematic with Force: the wrapper path — consistency
	// window, then failure only because there is no schematic data yet.
	_, err = w.h.RunLayoutEntry("anna", w.cv, nil, RunOpts{Force: true})
	if err == nil || !strings.Contains(err.Error(), "no checked-in version") {
		t.Fatalf("forced layout without data: %v", err)
	}
	if w.h.Overrides() != 1 {
		t.Fatalf("Overrides = %d", w.h.Overrides())
	}
	// The FML consistency-window trigger fired and bumped its counter.
	if v, ok := w.h.Interp.Global.Lookup("jcfConsistencyWindows"); !ok || fmlInt(v) != 1 {
		t.Fatalf("jcfConsistencyWindows = %v, %t", v, ok)
	}
	if w.h.Hooks.Fired("consistency-window") != 1 {
		t.Fatalf("window fired %d times", w.h.Hooks.Fired("consistency-window"))
	}

	// Do it properly now.
	if _, err := w.h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	stim := []byte("at 0 set a 1\nat 0 set b 1\nrun 100\n")
	res, waves, err := w.h.RunSimulation("anna", w.cv, stim, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) == 0 {
		t.Fatal("no waveform output")
	}
	if !strings.Contains(string(waves), "carry 1") {
		t.Fatalf("waves missing carry:\n%s", waves)
	}
	// Derivation recorded: schematic version -> waveform version.
	if res.InputDOV == oms.InvalidOID {
		t.Fatal("no input DOV")
	}
	derived := w.h.JCF.Derivatives(res.InputDOV)
	if len(derived) != 1 || derived[0] != res.OutputDOV {
		t.Fatalf("derivation = %v", derived)
	}
	// Layout follows, deriving from the schematic too.
	lres, err := w.h.RunLayoutEntry("anna", w.cv, nil, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	closure := w.h.JCF.DerivationClosure(res.InputDOV)
	if len(closure) != 2 {
		t.Fatalf("closure = %v (want waveform %d and layout %d)", closure, res.OutputDOV, lres.OutputDOV)
	}
	done, err := w.h.JCF.FlowComplete(w.cv)
	if err != nil || !done {
		t.Fatalf("flow complete = %t, %v", done, err)
	}
}

func TestSimulationOfHierarchicalDesign(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	// A child cell with an inverter.
	childCV, err := h.NewDesignCell(w.project, "invcell", h.DefaultFlowName(), w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", childCV); err != nil {
		t.Fatal(err)
	}
	_, err = h.RunSchematicEntry("anna", childCV, func(s *schematic.Schematic) error {
		if err := s.AddPort("in", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("out", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("i1", schematic.Inv, "out", "in")
	}, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Publish("anna", childCV); err != nil {
		t.Fatal(err)
	}
	// Parent: submit hierarchy first (3.0 rule), then instantiate.
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := h.SubmitHierarchyManual(w.cv, childCV); err != nil {
		t.Fatal(err)
	}
	_, err = h.RunSchematicEntry("anna", w.cv, func(s *schematic.Schematic) error {
		if err := s.AddPort("a", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("y", schematic.Out); err != nil {
			return err
		}
		if err := s.AddInstance("u1", "invcell_v1", ViewSchematic); err != nil {
			return err
		}
		if err := s.Connect("u1", "in", "a"); err != nil {
			return err
		}
		return s.Connect("u1", "out", "y")
	}, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate across the hierarchy: the resolver loads the child through
	// the master database.
	stim := []byte("at 0 set a 0\nrun 50\n")
	_, waves, err := h.RunSimulation("anna", w.cv, stim, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(waves), "y 1") {
		t.Fatalf("hierarchical inversion missing:\n%s", waves)
	}
}

func TestNonIsomorphicRejectedOn30(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	// Child cell (pad) with only a layout presence.
	padCV, err := h.NewDesignCell(w.project, "pad", h.DefaultFlowName(), w.team)
	if err != nil {
		t.Fatal(err)
	}
	_ = padCV
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	stim := []byte("at 0 set a 1\nat 0 set b 0\nrun 50\n")
	if _, _, err := h.RunSimulation("anna", w.cv, stim, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// Layout edit adds a pad instance that the schematic does not have:
	// non-isomorphic, rejected under the 3.0 master.
	_, err = h.RunLayoutEntry("anna", w.cv, func(l *layout.Layout) error {
		return l.AddInstance("p1", "pad_v1", ViewLayout, 0, 0)
	}, RunOpts{})
	if !errors.Is(err, jcf.ErrUnsupported) {
		t.Fatalf("non-isomorphic layout on 3.0: %v", err)
	}
	// The same edit under a 4.0 master succeeds.
	w4 := newHW(t, jcf.Release40)
	if _, err := w4.h.NewDesignCell(w4.project, "pad", w4.h.DefaultFlowName(), w4.team); err != nil {
		t.Fatal(err)
	}
	if err := w4.h.JCF.Reserve("anna", w4.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := w4.h.RunSchematicEntry("anna", w4.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w4.h.RunSimulation("anna", w4.cv, stim, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w4.h.RunLayoutEntry("anna", w4.cv, func(l *layout.Layout) error {
		return l.AddInstance("p1", "pad_v1", ViewLayout, 0, 0)
	}, RunOpts{}); err != nil {
		t.Fatalf("non-isomorphic layout on 4.0: %v", err)
	}
}

func TestParallelVersionsOfOneCellview(t *testing.T) {
	// Section 3.1: impossible in FMCAD, possible in the hybrid because
	// cell versions map to distinct slave cells.
	w := newHW(t, jcf.Release30)
	h := w.h
	cell, err := h.JCF.Cell(w.project, "alu")
	if err != nil {
		t.Fatal(err)
	}
	cv2, err := h.NewCellVersion(cell, h.DefaultFlowName(), w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("bert", cv2); err != nil {
		t.Fatal(err)
	}
	// Both users run schematic entry on "the same cellview" (alu /
	// schematic) in parallel — distinct slave cells make it legal.
	if _, err := h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunSchematicEntry("bert", cv2, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if h.Lib.Conflicts() != 0 {
		t.Fatalf("slave conflicts = %d", h.Lib.Conflicts())
	}
}

func TestAddSchematicInstanceHierarchyRules(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	childCV, err := h.NewDesignCell(w.project, "sub", h.DefaultFlowName(), w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	// Without desktop submission, 3.0 refuses.
	_, err = h.AddSchematicInstance("anna", w.cv, childCV, "u1", nil, RunOpts{})
	if err == nil || !strings.Contains(err.Error(), "manual submission") {
		t.Fatalf("instance without hierarchy: %v", err)
	}
	// After submission it works.
	if err := h.SubmitHierarchyManual(w.cv, childCV); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddSchematicInstance("anna", w.cv, childCV, "u1", map[string]string{"clk": "clk"}, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// The design now matches the declared hierarchy.
	problems, err := h.HierarchyMatchesDesign(w.cv)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("HierarchyMatchesDesign = %v", problems)
	}
}

func TestSyncHierarchyFromDesign(t *testing.T) {
	// 3.0: unsupported. 4.0: reads inst lines and submits typed edges.
	w := newHW(t, jcf.Release30)
	if _, err := w.h.SyncHierarchyFromDesign(w.cv); !errors.Is(err, jcf.ErrUnsupported) {
		t.Fatalf("sync on 3.0: %v", err)
	}

	w4 := newHW(t, jcf.Release40)
	h := w4.h
	childCV, err := h.NewDesignCell(w4.project, "sub", h.DefaultFlowName(), w4.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", w4.cv); err != nil {
		t.Fatal(err)
	}
	// On 4.0 AddSchematicInstance auto-submits procedurally.
	if _, err := h.AddSchematicInstance("anna", w4.cv, childCV, "u1", nil, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	edges, err := h.SyncHierarchyFromDesign(w4.cv)
	if err != nil {
		t.Fatal(err)
	}
	if edges != 1 {
		t.Fatalf("edges = %d", edges)
	}
	kids, err := h.JCF.TypedChildren(w4.cv, ViewSchematic)
	if err != nil || len(kids) != 1 || kids[0] != childCV {
		t.Fatalf("typed children = %v, %v", kids, err)
	}
}

func TestCrossProbe(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	stim := []byte("at 0 set a 1\nat 0 set b 1\nrun 50\n")
	if _, _, err := h.RunSimulation("anna", w.cv, stim, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunLayoutEntry("anna", w.cv, nil, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	probe := h.EnableCrossProbe("anna")
	res, err := probe(w.cv, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if res.Net != "sum" || len(res.Shapes) == 0 {
		t.Fatalf("probe = %+v", res)
	}
	// An outsider's probe is denied by the wrapper (closed-interface
	// guard): carl is no team member and the version is unpublished.
	probeCarl := h.EnableCrossProbe("carl")
	if _, err := probeCarl(w.cv, "sum"); err == nil {
		t.Fatal("outsider probe allowed")
	}
	// After publish, reading is fine.
	if err := h.JCF.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := probeCarl(w.cv, "sum"); err != nil {
		t.Fatalf("published probe: %v", err)
	}
	if h.Bus.Delivered("crossprobe") == 0 {
		t.Fatal("no ITC traffic")
	}
}

func TestFeatureMatrix(t *testing.T) {
	feats := FeatureMatrix()
	if len(feats) < 12 {
		t.Fatalf("matrix rows = %d", len(feats))
	}
	byName := map[string]Feature{}
	for _, f := range feats {
		byName[f.Capability] = f
	}
	// Spot-check the paper's headline claims.
	f := byName["parallel work on versions of one cellview"]
	if f.FMCAD != No || f.Hybrid != Yes {
		t.Fatalf("3.1 row = %+v", f)
	}
	f = byName["flow management (forced flows)"]
	if f.FMCAD != No || f.JCF != Yes || f.Hybrid != Yes {
		t.Fatalf("3.5 row = %+v", f)
	}
	f = byName["non-isomorphic hierarchies"]
	if f.FMCAD != Yes || f.Hybrid != No {
		t.Fatalf("3.3 row = %+v", f)
	}
	f = byName["direct (copy-free) tool access to design files"]
	if f.FMCAD != Yes || f.Hybrid != No {
		t.Fatalf("3.6 row = %+v", f)
	}
	txt := RenderFeatureMatrix()
	if !strings.Contains(txt, "FMCAD") || !strings.Contains(txt, "hybrid") {
		t.Fatal("render broken")
	}
	if No.String() != "no" || Partial.String() != "partial" || Yes.String() != "yes" {
		t.Fatal("support strings")
	}
	if Support(9).String() != "?" {
		t.Fatal("unknown support")
	}
}

func TestUIContexts(t *testing.T) {
	for env, want := range map[string]int{"fmcad": 1, "jcf": 1, "hybrid": 2} {
		got, err := UIContexts(env)
		if err != nil || got != want {
			t.Errorf("UIContexts(%s) = %d, %v", env, got, err)
		}
	}
	if _, err := UIContexts("bogus"); err == nil {
		t.Fatal("unknown environment accepted")
	}
}

func TestSimulatorBehindFlattenResolver(t *testing.T) {
	// The resolver denies access to unpublished children for other users.
	w := newHW(t, jcf.Release30)
	h := w.h
	childCV, err := h.NewDesignCell(w.project, "secret", h.DefaultFlowName(), w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("bert", childCV); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunSchematicEntry("bert", childCV, func(s *schematic.Schematic) error {
		if err := s.AddPort("in", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("out", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("g", schematic.Inv, "out", "in")
	}, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// bert's child is NOT published; anna's resolver cannot read it.
	resolver := h.SchematicResolver("anna")
	if _, err := resolver("secret_v1", ViewSchematic); !errors.Is(err, jcf.ErrNotPublished) {
		t.Fatalf("resolver read unpublished: %v", err)
	}
	_ = dsim.MapResolver // keep import
}

// fmlInt extracts an int64 from an FML value, or -1.
func fmlInt(v any) int64 {
	if i, ok := v.(fml.Int); ok {
		return int64(i)
	}
	return -1
}

func TestCellBase(t *testing.T) {
	for in, want := range map[string]string{
		"alu_v1":  "alu",
		"alu_v12": "alu",
		"alu":     "alu",
		"alu_vx":  "alu_vx",
		"a_v":     "a_v",
		"pad_v2":  "pad",
		"x_v1_v2": "x_v1",
	} {
		if got := cellBase(in); got != want {
			t.Errorf("cellBase(%q) = %q, want %q", in, got, want)
		}
	}
}
