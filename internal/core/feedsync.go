package core

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/otod"
)

// Feed-driven coupling synchronization.
//
// JCF's interfaces are closed (section 2.4) — the coupling layer cannot
// hook the master's internals, and before the change feed it could only
// observe the master by full scan: VerifyMapping re-verified every
// binding on every call, and a checkin that reached the master without
// going through the encapsulation wrappers (a designer driving the JCF
// desktop directly) simply never reached the FMCAD library.
//
// The change feed replaces both scans with an incremental pump: the
// Hybrid keeps a cursor into the master's feed and folds new records
// into two pieces of state —
//
//   - dirty: the set of cell versions whose Table 1 binding must be
//     re-verified (anything touching a bound cell version or design
//     object dirties it), giving VerifyMapping a fast path that
//     re-checks only what changed and answers from cache otherwise;
//   - pending: master-side checkins (DesignObjectVersion + ownership
//     link groups) not yet reflected in the slave library, which
//     SyncLibrary imports as tagged cellview versions, keeping the
//     library browsable by native FMCAD tools even for data that never
//     went through an encapsulated tool run.
//
// If the cursor falls behind the feed ring's retention window the pump
// reports it and both consumers degrade to their full-scan behaviour
// once, then resume incrementally — never silently stale.

// pendingCheckin is one master checkin awaiting library import.
type pendingCheckin struct {
	do, dov oms.OID
}

// feedSyncState is the Hybrid's coupling cursor, guarded by h.mu.
type feedSyncState struct {
	lsn      uint64               // records <= lsn are folded in
	syncLost bool                 // ring evicted past the cursor; full reconcile due
	relDoVer string               // doHasVersion schema relationship name
	relUses  string               // uses schema relationship name
	relOfVT  string               // ofViewType schema relationship name
	doToCV   map[oms.OID]oms.OID  // bound design object -> owning cell version
	dirty    map[oms.OID]bool     // cell versions whose binding needs re-verify
	cache    map[oms.OID][]string // last verification problems per cell version
	pending  []pendingCheckin     // checkins not yet imported into the library
	inFlight map[oms.OID]int      // design objects with an encapsulated run capturing
	// captured holds versions the encapsulation wrappers wrote to the
	// library themselves; the pump drops their pending entries instead
	// of letting already-imported checkins pile up for SyncLibrary to
	// tag-scan one by one.
	captured map[oms.OID]bool
}

// initFeedSync wires the cursor to the master's current feed position;
// bindings registered afterwards mark their own dirt.
func (h *Hybrid) initFeedSync() {
	r := func(name, from, to string) string {
		return h.JCF.Model().SchemaRelName(otod.Relationship{Name: name, From: from, To: to})
	}
	h.sync = feedSyncState{
		lsn:      h.JCF.FeedLSN(),
		relDoVer: r("hasVersion", "DesignObject", "DesignObjectVersion"),
		relUses:  r("uses", "Variant", "DesignObject"),
		relOfVT:  r("ofViewType", "DesignObject", "ViewType"),
		doToCV:   map[oms.OID]oms.OID{},
		dirty:    map[oms.OID]bool{},
		cache:    map[oms.OID][]string{},
		inFlight: map[oms.OID]int{},
		captured: map[oms.OID]bool{},
	}
}

// registerBindingLocked indexes a fresh binding for feed classification;
// caller holds h.mu.
func (h *Hybrid) registerBindingLocked(b *cellBinding) {
	for _, do := range b.designObjects {
		h.sync.doToCV[do] = b.cellVersion
	}
	h.sync.dirty[b.cellVersion] = true
}

// pumpFeedLocked folds every new master change into the dirty set and
// the pending-import list; caller holds h.mu.
func (h *Hybrid) pumpFeedLocked() {
	h.pruneCapturedLocked()
	recs, ok := h.JCF.Changes(h.sync.lsn)
	if !ok {
		// Fell behind the ring: everything is suspect until the full
		// passes run. The cursor resumes from the current watermark —
		// records between it and the Changes call are covered by the
		// full passes too, which run after this point.
		for cv := range h.bindings {
			h.sync.dirty[cv] = true
		}
		h.sync.syncLost = true
		h.sync.lsn = h.JCF.FeedLSN()
		return
	}
	if len(recs) == 0 {
		return
	}
	for _, c := range recs {
		switch c.Kind {
		case oms.ChangeLink, oms.ChangeUnlink:
			switch c.Rel {
			case h.sync.relDoVer:
				if cv, bound := h.sync.doToCV[c.From]; bound {
					h.sync.dirty[cv] = true
					if c.Kind == oms.ChangeLink {
						h.sync.pending = append(h.sync.pending, pendingCheckin{do: c.From, dov: c.To})
					}
				}
			case h.sync.relUses:
				if cv, bound := h.sync.doToCV[c.To]; bound {
					h.sync.dirty[cv] = true
				}
			case h.sync.relOfVT:
				if cv, bound := h.sync.doToCV[c.From]; bound {
					h.sync.dirty[cv] = true
				}
			}
		case oms.ChangeSet, oms.ChangeCreate, oms.ChangeDelete:
			if _, bound := h.bindings[c.OID]; bound {
				h.sync.dirty[c.OID] = true
			}
			if cv, bound := h.sync.doToCV[c.OID]; bound {
				h.sync.dirty[cv] = true
			}
		}
	}
	h.sync.lsn = recs[len(recs)-1].LSN
	h.pruneCapturedLocked()
}

// pruneCapturedLocked drops pending entries for checkins the
// encapsulation wrappers captured (and tagged) themselves — they are
// already in the library, and letting them pile up would grow pending
// by one entry per ordinary tool run on a Hybrid that never calls
// SyncLibrary, then cost a tag scan each to skip. Caller holds h.mu.
func (h *Hybrid) pruneCapturedLocked() {
	if len(h.sync.captured) == 0 || len(h.sync.pending) == 0 {
		return
	}
	kept := h.sync.pending[:0]
	for _, p := range h.sync.pending {
		if h.sync.captured[p.dov] {
			delete(h.sync.captured, p.dov)
			continue
		}
		kept = append(kept, p)
	}
	h.sync.pending = kept
}

// captureBegin/captureEnd bracket an encapsulated tool run's capture of
// a design object (slave checkin → master checkin → version tag), so
// SyncLibrary never races the tag write and double-imports the version.
func (h *Hybrid) captureBegin(do oms.OID) {
	h.mu.Lock()
	h.sync.inFlight[do]++
	h.mu.Unlock()
}

func (h *Hybrid) captureEnd(do oms.OID) {
	h.mu.Lock()
	if h.sync.inFlight[do]--; h.sync.inFlight[do] <= 0 {
		delete(h.sync.inFlight, do)
	}
	h.mu.Unlock()
}

// markCaptured records that the encapsulation wrote this version to the
// library itself (tag included); the next pump drops its pending entry.
func (h *Hybrid) markCaptured(dov oms.OID) {
	h.mu.Lock()
	h.sync.captured[dov] = true
	h.mu.Unlock()
}

// importJob is one pending checkin resolved to its slave-side address.
type importJob struct {
	p    pendingCheckin
	cell string
	view string
}

// SyncLibrary imports master-side checkins the slave library has not
// seen — design data that entered the OMS database directly through the
// JCF desktop rather than through an encapsulated tool run — as fresh,
// PropJCFVersion-tagged cellview versions, keeping the library
// browsable by native FMCAD tools. It returns how many versions were
// imported. The pump is incremental (feed-driven); after a retention
// overrun it reconciles every bound design object once, then resumes
// incrementally.
//
// Locking mirrors verify(): the work list is collected under h.mu, the
// library file I/O runs outside it (cross-probe lookups and tool-run
// brackets never stall behind an import), and syncLibMu serializes
// whole runs so two concurrent syncs cannot double-import a version.
func (h *Hybrid) SyncLibrary() (int, error) {
	h.syncLibMu.Lock()
	defer h.syncLibMu.Unlock()

	h.mu.Lock()
	h.pumpFeedLocked()
	if h.sync.syncLost {
		h.sync.pending = h.sync.pending[:0]
		for _, b := range h.bindings {
			for _, do := range b.designObjects {
				for _, dov := range h.JCF.DesignObjectVersions(do) {
					h.sync.pending = append(h.sync.pending, pendingCheckin{do: do, dov: dov})
				}
			}
		}
		h.sync.syncLost = false
	}
	var jobs []importJob
	var retained []pendingCheckin
	for _, p := range h.sync.pending {
		if h.sync.inFlight[p.do] > 0 {
			// An encapsulated run is mid-capture on this design object;
			// its tag is on the way. Revisit on the next sync.
			retained = append(retained, p)
			continue
		}
		cv, bound := h.sync.doToCV[p.do]
		if !bound {
			continue
		}
		b := h.bindings[cv]
		view := ""
		for v, do := range b.designObjects {
			if do == p.do {
				view = v
				break
			}
		}
		if view == "" {
			continue
		}
		jobs = append(jobs, importJob{p: p, cell: b.fmcadCell, view: view})
	}
	h.sync.pending = retained
	h.mu.Unlock()

	// A capture starting now cannot collide with these jobs: its version
	// does not exist yet, so it cannot be in the collected list.
	imported := 0
	var failed []pendingCheckin
	var firstErr error
	for _, j := range jobs {
		if firstErr != nil {
			failed = append(failed, j.p) // untried; retry next run
			continue
		}
		if !h.JCF.VersionExists(j.p.dov) {
			// The version vanished after its checkin hit the feed
			// (deleted, or retracted by a rollback's compensation):
			// nothing to import, and retrying forever would wedge the
			// queue behind it.
			continue
		}
		done, retryable, err := h.importVersion(j.cell, j.view, j.p.dov)
		if done {
			imported++
		}
		if err != nil {
			if retryable && h.JCF.VersionExists(j.p.dov) {
				failed = append(failed, j.p)
			}
			firstErr = err
		}
	}
	if len(failed) > 0 {
		h.mu.Lock()
		h.sync.pending = append(h.sync.pending, failed...)
		h.mu.Unlock()
	}
	return imported, firstErr
}

// importVersion writes one master version into the slave library unless
// a tagged slave version already exists (the encapsulated runs tag
// everything they capture, making the import idempotent). Runs without
// h.mu held. `retryable` reports whether a retry can succeed AND is
// safe: a SetProperty failure after a committed checkin is surfaced but
// NOT retryable — retrying would import a duplicate version; the
// untagged one is visible to the SlaveSyncCheck audit instead.
func (h *Hybrid) importVersion(cell, view string, dov oms.OID) (done, retryable bool, err error) {
	versions, err := h.Lib.Versions(cell, view)
	if err != nil {
		return false, true, fmt.Errorf("core: sync library: %w", err)
	}
	want := fmt.Sprintf("%d", dov)
	for _, v := range versions {
		tag, ok, err := h.Lib.GetProperty(cell, view, v, PropJCFVersion)
		if err != nil {
			return false, true, fmt.Errorf("core: sync library: %w", err)
		}
		if ok && tag == want {
			return false, false, nil // already reflected
		}
	}
	// Stage the master bytes and check them into the slave, tagged.
	staged := h.stagePath("feed-sync", cell+"."+view)
	if err := h.JCF.ExportVersionData(dov, staged); err != nil {
		return false, true, fmt.Errorf("core: sync library: %w", err)
	}
	data, err := os.ReadFile(staged)
	if err != nil {
		return false, true, fmt.Errorf("core: sync library: %w", err)
	}
	session := h.Lib.NewSession("feed-sync")
	wf, err := session.Checkout(cell, view)
	if err != nil {
		return false, true, fmt.Errorf("core: sync library: %w", err)
	}
	if err := os.WriteFile(wf.Path, data, 0o644); err != nil {
		return false, true, abortSlave(session, wf, fmt.Errorf("core: sync library: %w", err))
	}
	slaveV, err := session.Checkin(wf)
	if err != nil {
		// Release the cellview lock the checkout took, or every later
		// retry (and every encapsulated run on this cellview) would
		// fail its checkout against a lock nobody holds anymore.
		return false, true, abortSlave(session, wf, fmt.Errorf("core: sync library: %w", err))
	}
	if err := h.Lib.SetProperty(cell, view, slaveV, PropJCFVersion, want); err != nil {
		return true, false, fmt.Errorf("core: sync library: version %d imported but untagged: %w", slaveV, err)
	}
	return true, false, nil
}

// VerifyMapping checks the live mapping against Table 1 — the feed-
// driven fast path: only bindings dirtied by master changes since the
// last call (plus bindings never verified) are re-checked; everything
// else answers from the per-binding cache. Slave-side drift without any
// master-side traffic is invisible to the feed by construction; use
// VerifyMappingFull (or SlaveSyncCheck, which audits the slave) when
// the library is suspect.
func (h *Hybrid) VerifyMapping() []string {
	return h.verify(false)
}

// VerifyMappingFull re-verifies every binding unconditionally,
// refreshing the cache — the pre-feed behaviour, kept for audits.
func (h *Hybrid) VerifyMappingFull() []string {
	return h.verify(true)
}

// verify collects the re-check set under the lock, runs the actual
// verification (slave library and master queries — real I/O) OUTSIDE
// it so the cross-probe hot paths sharing h.mu never stall behind a
// rescan, then folds results back into the cache. Dirt is cleared at
// collection time: a binding re-dirtied while we verify stays marked
// and is re-checked on the next call.
func (h *Hybrid) verify(all bool) []string {
	type job struct {
		b         *cellBinding
		inverseOK bool
	}
	h.mu.Lock()
	h.pumpFeedLocked()
	var jobs []job
	for cv, b := range h.bindings {
		_, cached := h.sync.cache[cv]
		if all || !cached || h.sync.dirty[cv] {
			got, ok := h.byCell[b.fmcadCell]
			jobs = append(jobs, job{b: b, inverseOK: ok && got == cv})
			delete(h.sync.dirty, cv)
		}
	}
	h.mu.Unlock()

	results := make(map[oms.OID][]string, len(jobs))
	for _, j := range jobs {
		// cellBinding contents are immutable after registration, so
		// reading them without the lock is safe.
		results[j.b.cellVersion] = h.verifyBinding(j.b, j.inverseOK)
	}

	h.mu.Lock()
	for cv, ps := range results {
		h.sync.cache[cv] = ps
	}
	var problems []string
	for _, ps := range h.sync.cache {
		problems = append(problems, ps...)
	}
	h.mu.Unlock()
	sort.Strings(problems)
	return problems
}

// verifyBinding checks one binding against Table 1: the inverse map
// must round-trip (checked by the caller under the lock and passed in)
// and the slave cell's cellviews must match the design objects' view
// types. Runs without h.mu held.
func (h *Hybrid) verifyBinding(b *cellBinding, inverseOK bool) []string {
	var problems []string
	if !inverseOK {
		problems = append(problems, fmt.Sprintf("inverse mapping broken for %s", b.fmcadCell))
	}
	views, err := h.Lib.Cellviews(b.fmcadCell)
	if err != nil {
		return append(problems, fmt.Sprintf("slave cell %s missing: %v", b.fmcadCell, err))
	}
	viewSet := map[string]bool{}
	for _, v := range views {
		viewSet[v] = true
	}
	for view, do := range b.designObjects {
		if !viewSet[view] {
			problems = append(problems, fmt.Sprintf("slave cell %s lacks cellview %s", b.fmcadCell, view))
		}
		if got, err := h.JCF.ViewTypeOf(do); err != nil {
			problems = append(problems, fmt.Sprintf("design object %d has no view type: %v", do, err))
		} else if got != view {
			problems = append(problems, fmt.Sprintf("design object %d has view type %q, want %q", do, got, view))
		}
	}
	return problems
}

// StartToolNotifications bridges the master's change feed onto the
// hybrid's ITC bus (jcf.Topic* messages), so the integrated tools hear
// about checkins, publications, reservations and variant derivations in
// commit order — the notification path the closed JCF interfaces never
// offered. The caller stops the returned notifier when done.
func (h *Hybrid) StartToolNotifications() (*jcf.Notifier, error) {
	return h.JCF.StartNotifier(h.Bus)
}
