package core

import (
	"os"
	"strings"
	"testing"

	"repro/internal/fml"
	"repro/internal/jcf"
)

func TestFMLBindings(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	h.InstallFMLBindings()

	eval := func(src string) fml.Value {
		t.Helper()
		v, err := h.Interp.Run(src)
		if err != nil {
			t.Fatalf("Run(%q): %v", src, err)
		}
		return v
	}
	cvLit := fml.Sprint(fml.Int(w.cv))

	// Reserve through FML, verify through Go and back through FML.
	if v := eval(`(jcfReserve "anna" ` + cvLit + `)`); !fml.Truthy(v) {
		t.Fatal("jcfReserve failed")
	}
	if holder, held := h.JCF.ReservedBy(w.cv); !held || holder != "anna" {
		t.Fatalf("reservation = %q,%t", holder, held)
	}
	if v := eval(`(jcfReservedBy ` + cvLit + `)`); fml.Display(v) != "anna" {
		t.Fatalf("jcfReservedBy = %s", fml.Sprint(v))
	}
	// A second reserve returns nil, not an error (policy-friendly).
	if v := eval(`(jcfReserve "bert" ` + cvLit + `)`); fml.Truthy(v) {
		t.Fatal("double reserve succeeded")
	}
	// Startable activities.
	v := eval(`(jcfStartable ` + cvLit + `)`)
	lst, ok := v.(fml.List)
	if !ok || len(lst) != 1 || fml.Display(lst[0]) != ActSchematicEntry {
		t.Fatalf("jcfStartable = %s", fml.Sprint(v))
	}
	// Publish and read publication state.
	if v := eval(`(jcfPublished ` + cvLit + `)`); fml.Truthy(v) {
		t.Fatal("published before publish")
	}
	if v := eval(`(jcfPublish "anna" ` + cvLit + `)`); !fml.Truthy(v) {
		t.Fatal("jcfPublish failed")
	}
	if v := eval(`(jcfPublished ` + cvLit + `)`); !fml.Truthy(v) {
		t.Fatal("not published after publish")
	}
	// Slave-side views.
	v = eval(`(fmCells)`)
	if lst, ok := v.(fml.List); !ok || len(lst) != 1 || fml.Display(lst[0]) != "alu_v1" {
		t.Fatalf("fmCells = %s", fml.Sprint(v))
	}
	if v := eval(`(fmLockedBy "alu_v1" "schematic")`); fml.Truthy(v) {
		t.Fatal("phantom lock")
	}
	if v := eval(`(jcfConsistencyProblems)`); fml.Sprint(v) != "0" {
		t.Fatalf("consistency = %s", fml.Sprint(v))
	}
	if v := eval(`(jcfChildren ` + cvLit + `)`); fml.Truthy(v) {
		t.Fatal("phantom children")
	}
	if v := eval(`(hybridOverrides)`); fml.Sprint(v) != "0" {
		t.Fatalf("overrides = %s", fml.Sprint(v))
	}
	// Argument errors do error out.
	for _, src := range []string{
		`(jcfReserve "anna")`,
		`(jcfReserve 1 2)`,
		`(jcfReservedBy "x")`,
		`(fmLockedBy "a")`,
		`(jcfConsistencyProblems 1)`,
	} {
		if _, err := h.Interp.Run(src); err == nil {
			t.Errorf("%s succeeded", src)
		}
	}
}

func TestInstallPolicyVeto(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	// Site policy: veto every activity while the master has consistency
	// problems; also veto layout entry on Fridays — here simplified to a
	// global switch the test flips.
	policy := `
(setq designFreeze nil)
(hiRegTrigger "preActivity"
  (lambda (activity)
    (when designFreeze (error "design freeze in effect:" activity))))
`
	if err := h.InstallPolicy(policy); err != nil {
		t.Fatal(err)
	}
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	// Freeze off: runs fine.
	if _, err := h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// Freeze on: the FML trigger vetoes the run before anything happens.
	if _, err := h.Interp.Run("(setq designFreeze t)"); err != nil {
		t.Fatal(err)
	}
	_, err := h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{})
	if err == nil || !strings.Contains(err.Error(), "design freeze") {
		t.Fatalf("policy veto missing: %v", err)
	}
	// Bad policy scripts report errors.
	if err := h.InstallPolicy("(unbound-fn)"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSlaveSyncCheckAndAblation(t *testing.T) {
	w := newHW(t, jcf.Release30)
	h := w.h
	if err := h.JCF.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunSchematicEntry("anna", w.cv, drawHalfAdder, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// Through the encapsulation everything is tagged: no problems.
	problems, err := h.SlaveSyncCheck()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean world has sync problems: %v", problems)
	}
	// With menu locks in place the native path is blocked.
	if err := h.InvokeNativeMenu("File>CheckIn"); err == nil {
		t.Fatal("locked menu invokable")
	}
	// Ablation: unlock the menus and bypass the master via the slave's
	// own checkout/checkin.
	h.UnlockNativeMenus()
	if err := h.InvokeNativeMenu("File>CheckIn"); err != nil {
		t.Fatalf("unlocked menu refused: %v", err)
	}
	session := h.Lib.NewSession("rogue")
	wf, err := session.Checkout("alu_v1", ViewSchematic)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wf.Path, []byte("schematic alu_v1\nnet rogue\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := session.Checkin(wf); err != nil {
		t.Fatal(err)
	}
	problems, err = h.SlaveSyncCheck()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("bypass not detected: %v", problems)
	}
	if problems[0].Cell != "alu_v1" || problems[0].View != ViewSchematic {
		t.Fatalf("problem = %+v", problems[0])
	}
	if !strings.Contains(problems[0].String(), "no JCF version tag") {
		t.Fatalf("problem text = %s", problems[0])
	}
}
