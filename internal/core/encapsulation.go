package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/flow"
	"repro/internal/fmcad"
	"repro/internal/fml"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/dsim"
	"repro/internal/tools/layout"
	"repro/internal/tools/schematic"
)

// Encapsulation wrappers (section 2.4): "Since each tool is modelled by
// one JCF activity, JCF records all derivation relationships between
// schematic and layout versions." Each Run* method executes one FMCAD tool
// under JCF control:
//
//  1. fire the pre-activity trigger (FML scripts may veto),
//  2. start the JCF activity (workspace + flow enforcement),
//  3. copy the needed design data OUT of the OMS database to a staging
//     file (a full copy even for read-only input — the section 3.6 cost),
//  4. check out the slave cellview, run the tool on the working copy,
//     check the result back in (the slave library stays in sync so native
//     FMCAD tools could still browse it),
//  5. copy the result INTO the OMS database as a new design object
//     version, record the derivation, tag the slave version with the JCF
//     version (PropJCFVersion),
//  6. finish the activity and fire the post-activity trigger.
//
// RunOpts.Force reproduces the paper's wrapper feature that "enabled
// activity execution when its predecessor was not yet finished and
// guaranteed consistency by additional windows": a forced run bypasses the
// flow-order check but pops a consistency window (an FML trigger) and is
// counted in Overrides.

// RunOpts modifies how an encapsulated tool run executes.
type RunOpts struct {
	// Force permits execution although flow predecessors are unfinished;
	// the consistency window fires instead of the order check.
	Force bool
}

// RunResult reports what one encapsulated tool run produced.
type RunResult struct {
	Activity string
	// InputDOV is the design object version consumed (InvalidOID for
	// entry tools).
	InputDOV oms.OID
	// OutputDOV is the design object version created in the JCF database.
	OutputDOV oms.OID
	// SlaveVersion is the FMCAD cellview version created in the library.
	SlaveVersion int
	// Forced reports that the run went through the consistency window.
	Forced bool
}

// stagePath builds a per-user staging file path.
func (h *Hybrid) stagePath(user, name string) string {
	return filepath.Join(h.stage, user, name)
}

// beginActivity runs steps 1-2; it reports whether the run is forced.
func (h *Hybrid) beginActivity(user string, cv oms.OID, activity string, opts RunOpts) (forced bool, err error) {
	if err := h.Hooks.Fire("preActivity", fml.Str(activity)); err != nil {
		return false, fmt.Errorf("core: pre-activity veto: %w", err)
	}
	err = h.JCF.StartActivity(user, cv, activity)
	if err == nil {
		return false, nil
	}
	if opts.Force && errors.Is(err, flow.ErrOrder) {
		// The wrapper path: consistency window instead of refusal.
		if werr := h.Hooks.Fire("consistency-window", fml.Str(activity)); werr != nil {
			return false, fmt.Errorf("core: consistency window veto: %w", werr)
		}
		h.mu.Lock()
		h.overrides++
		h.mu.Unlock()
		return true, nil
	}
	return false, err
}

// endActivity runs step 6 for non-forced runs.
func (h *Hybrid) endActivity(user string, cv oms.OID, activity string, forced, ok bool) {
	if !forced {
		// A failed Finish here means the activity never started; nothing
		// to clean up.
		_ = h.JCF.FinishActivity(user, cv, activity, ok) //lint:allow noerrdrop a failed Finish means the activity never started; nothing to clean up
	}
	// A post-activity veto cannot un-run the tool; firing is best-effort.
	_ = h.Hooks.Fire("postActivity", fml.Str(activity)) //lint:allow noerrdrop post-activity hooks cannot veto a run that already happened
}

// abortSlave abandons the slave working copy after a failed run step and
// returns the step's error. A cancel failure matters — it leaves the
// cellview lock held, blocking every later checkout — so it is joined
// after the primary error instead of being discarded.
func abortSlave(session *fmcad.Session, wf *fmcad.Workfile, err error) error {
	if cerr := session.Cancel(wf); cerr != nil {
		return errors.Join(err, fmt.Errorf("core: canceling slave checkout: %w", cerr))
	}
	return err
}

// checkoutSlave acquires the slave cellview for the tool run.
func (h *Hybrid) checkoutSlave(user, fmcadCell, view string) (*fmcad.Session, *fmcad.Workfile, error) {
	session := h.Lib.NewSession(user)
	wf, err := session.Checkout(fmcadCell, view)
	if err != nil {
		return nil, nil, fmt.Errorf("core: slave checkout: %w", err)
	}
	return session, wf, nil
}

// captureResult runs step 5: slave checkin, copy into OMS, derivation,
// property tagging. The capture is bracketed so the feed-driven
// SyncLibrary never observes the master checkin before the slave
// version carries its tag (and double-imports it).
func (h *Hybrid) captureResult(user string, session *fmcad.Session, wf *fmcad.Workfile,
	outputDO, inputDOV oms.OID) (oms.OID, int, error) {
	h.captureBegin(outputDO)
	defer h.captureEnd(outputDO)
	slaveVersion, err := session.Checkin(wf)
	if err != nil {
		return oms.InvalidOID, 0, fmt.Errorf("core: slave checkin: %w", err)
	}
	// The slave's new version file is the source for the master copy-in.
	src := h.Lib.VersionPath(wf.Cell, wf.View, slaveVersion)
	dov, err := h.JCF.CheckInData(user, outputDO, src)
	if err != nil {
		return oms.InvalidOID, 0, err
	}
	if inputDOV != oms.InvalidOID {
		if err := h.JCF.RecordDerivation(inputDOV, dov); err != nil {
			return oms.InvalidOID, 0, err
		}
	}
	if err := h.Lib.SetProperty(wf.Cell, wf.View, slaveVersion, PropJCFVersion, fmt.Sprintf("%d", dov)); err != nil {
		return oms.InvalidOID, 0, err
	}
	h.markCaptured(dov)
	return dov, slaveVersion, nil
}

// stageInput runs step 3: copy the latest version of the input design
// object out of the database. Returns the DOV and the staged path.
func (h *Hybrid) stageInput(user string, inputDO oms.OID, stageName string) (oms.OID, string, error) {
	dov := h.JCF.LatestVersion(inputDO)
	if dov == oms.InvalidOID {
		return oms.InvalidOID, "", fmt.Errorf("core: input design object %d has no checked-in version", inputDO)
	}
	path := h.stagePath(user, stageName)
	if err := h.JCF.CheckOutData(user, dov, path); err != nil {
		return oms.InvalidOID, "", err
	}
	return dov, path, nil
}

// RunSchematicEntry executes the schematic entry tool: edit receives the
// current schematic of the cell version (empty on first entry) and
// mutates it; the result becomes a new schematic version in both
// frameworks.
func (h *Hybrid) RunSchematicEntry(user string, cv oms.OID, edit func(*schematic.Schematic) error, opts RunOpts) (RunResult, error) {
	binding, err := h.BindingFor(cv)
	if err != nil {
		return RunResult{}, err
	}
	forced, err := h.beginActivity(user, cv, ActSchematicEntry, opts)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Activity: ActSchematicEntry, Forced: forced}
	ok := false
	defer func() { h.endActivity(user, cv, ActSchematicEntry, forced, ok) }()

	session, wf, err := h.checkoutSlave(user, binding.FMCADCell, ViewSchematic)
	if err != nil {
		return res, err
	}
	// Load the working copy (may be empty on the first entry).
	data, err := os.ReadFile(wf.Path)
	if err != nil {
		return res, abortSlave(session, wf, fmt.Errorf("core: reading working copy: %w", err))
	}
	var sch *schematic.Schematic
	if len(data) == 0 {
		sch = schematic.New(binding.FMCADCell)
	} else {
		sch, err = schematic.Parse(data)
		if err != nil {
			return res, abortSlave(session, wf, fmt.Errorf("core: working copy corrupt: %w", err))
		}
	}
	if err := edit(sch); err != nil {
		return res, abortSlave(session, wf, fmt.Errorf("core: schematic edit: %w", err))
	}
	if problems := sch.Validate(); len(problems) > 0 {
		return res, abortSlave(session, wf, fmt.Errorf("core: schematic invalid: %s", problems[0]))
	}
	if err := os.WriteFile(wf.Path, sch.Format(), 0o644); err != nil {
		return res, abortSlave(session, wf, fmt.Errorf("core: writing working copy: %w", err))
	}
	dov, slaveV, err := h.captureResult(user, session, wf, binding.DesignObjects[ViewSchematic], oms.InvalidOID)
	if err != nil {
		return res, err
	}
	res.OutputDOV, res.SlaveVersion = dov, slaveV
	ok = true
	return res, nil
}

// RunSimulation executes the digital simulator on the cell version's
// current schematic with the given stimulus, storing the waveform output
// as a new waveform design object version derived from the schematic.
func (h *Hybrid) RunSimulation(user string, cv oms.OID, stimulus []byte, opts RunOpts) (RunResult, []byte, error) {
	binding, err := h.BindingFor(cv)
	if err != nil {
		return RunResult{}, nil, err
	}
	forced, err := h.beginActivity(user, cv, ActSimulate, opts)
	if err != nil {
		return RunResult{}, nil, err
	}
	res := RunResult{Activity: ActSimulate, Forced: forced}
	ok := false
	defer func() { h.endActivity(user, cv, ActSimulate, forced, ok) }()

	// Read-only input still costs a full copy-out (section 3.6).
	inputDOV, stagedIn, err := h.stageInput(user, binding.DesignObjects[ViewSchematic], binding.FMCADCell+".sch")
	if err != nil {
		return res, nil, err
	}
	res.InputDOV = inputDOV
	data, err := os.ReadFile(stagedIn)
	if err != nil {
		return res, nil, fmt.Errorf("core: reading staged input: %w", err)
	}
	sch, err := schematic.Parse(data)
	if err != nil {
		return res, nil, fmt.Errorf("core: staged schematic corrupt: %w", err)
	}
	circuit, err := dsim.Flatten(sch, h.SchematicResolver(user))
	if err != nil {
		return res, nil, err
	}
	stim, err := dsim.ParseStimulus(stimulus)
	if err != nil {
		return res, nil, err
	}
	sim := dsim.NewSimulator(circuit)
	if _, err := stim.Apply(sim); err != nil {
		return res, nil, err
	}
	waves := sim.DumpWaves()

	session, wf, err := h.checkoutSlave(user, binding.FMCADCell, ViewWaveform)
	if err != nil {
		return res, nil, err
	}
	if err := os.WriteFile(wf.Path, waves, 0o644); err != nil {
		return res, nil, abortSlave(session, wf, fmt.Errorf("core: writing waveform: %w", err))
	}
	dov, slaveV, err := h.captureResult(user, session, wf, binding.DesignObjects[ViewWaveform], inputDOV)
	if err != nil {
		return res, nil, err
	}
	res.OutputDOV, res.SlaveVersion = dov, slaveV
	ok = true
	return res, waves, nil
}

// RunLayoutEntry executes the layout editor: edit receives the current
// layout (a generated seed from the schematic when empty) and mutates it.
// In JCF 3.0 the result is rejected when its hierarchy is non-isomorphic
// to the schematic hierarchy, because the master cannot represent
// per-view-type hierarchies (section 2.3).
func (h *Hybrid) RunLayoutEntry(user string, cv oms.OID, edit func(*layout.Layout) error, opts RunOpts) (RunResult, error) {
	binding, err := h.BindingFor(cv)
	if err != nil {
		return RunResult{}, err
	}
	forced, err := h.beginActivity(user, cv, ActLayoutEntry, opts)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Activity: ActLayoutEntry, Forced: forced}
	ok := false
	defer func() { h.endActivity(user, cv, ActLayoutEntry, forced, ok) }()

	inputDOV, stagedIn, err := h.stageInput(user, binding.DesignObjects[ViewSchematic], binding.FMCADCell+".sch")
	if err != nil {
		return res, err
	}
	res.InputDOV = inputDOV
	data, err := os.ReadFile(stagedIn)
	if err != nil {
		return res, fmt.Errorf("core: reading staged input: %w", err)
	}
	sch, err := schematic.Parse(data)
	if err != nil {
		return res, fmt.Errorf("core: staged schematic corrupt: %w", err)
	}

	session, wf, err := h.checkoutSlave(user, binding.FMCADCell, ViewLayout)
	if err != nil {
		return res, err
	}
	current, err := os.ReadFile(wf.Path)
	if err != nil {
		return res, abortSlave(session, wf, fmt.Errorf("core: reading working copy: %w", err))
	}
	var lay *layout.Layout
	if len(current) == 0 {
		lay, err = layout.FromSchematic(sch, 16)
		if err != nil {
			return res, abortSlave(session, wf, err)
		}
	} else {
		lay, err = layout.Parse(current)
		if err != nil {
			return res, abortSlave(session, wf, fmt.Errorf("core: working copy corrupt: %w", err))
		}
	}
	if edit != nil {
		if err := edit(lay); err != nil {
			return res, abortSlave(session, wf, fmt.Errorf("core: layout edit: %w", err))
		}
	}

	// Non-isomorphic hierarchy guard (JCF 3.0 master cannot hold per-view
	// hierarchies): the layout's instance structure must match the
	// schematic's.
	if h.JCF.Release() < jcf.Release40 {
		if !isomorphicInstances(sch, lay) {
			return res, abortSlave(session, wf, fmt.Errorf("%w: layout hierarchy differs from schematic (non-isomorphic); JCF 3.0 cannot represent it", jcf.ErrUnsupported))
		}
	}

	if err := os.WriteFile(wf.Path, lay.Format(), 0o644); err != nil {
		return res, abortSlave(session, wf, fmt.Errorf("core: writing working copy: %w", err))
	}
	dov, slaveV, err := h.captureResult(user, session, wf, binding.DesignObjects[ViewLayout], inputDOV)
	if err != nil {
		return res, err
	}
	res.OutputDOV, res.SlaveVersion = dov, slaveV
	ok = true
	return res, nil
}

// isomorphicInstances compares the instance sets of a schematic and a
// layout by instance name and instantiated cell (views differ by
// construction: schematic instances reference schematic views, layout
// instances layout views).
func isomorphicInstances(sch *schematic.Schematic, lay *layout.Layout) bool {
	schInsts := sch.Instances()
	layInsts := lay.Instances()
	if len(schInsts) != len(layInsts) {
		return false
	}
	byName := map[string]string{}
	for _, in := range schInsts {
		byName[in.Name] = in.Cell
	}
	for _, in := range layInsts {
		cell, ok := byName[in.Name]
		if !ok || cellBase(cell) != cellBase(in.Cell) {
			return false
		}
	}
	return true
}

// cellBase strips a _v<N> version suffix so schematic and layout instances
// of different bound versions still compare as the same design cell.
func cellBase(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		if name[i] == 'v' && i >= 2 && name[i-1] == '_' {
			allDigits := i+1 < len(name)
			for j := i + 1; j < len(name); j++ {
				if name[j] < '0' || name[j] > '9' {
					allDigits = false
					break
				}
			}
			if allDigits {
				return name[:i-1]
			}
		}
	}
	return name
}

// SchematicResolver returns a dsim.Resolver that loads instantiated
// schematics through the master framework: the child cellview's latest
// JCF version is copied out of the database (another read-only full copy).
func (h *Hybrid) SchematicResolver(user string) dsim.Resolver {
	return func(cell, view string) (*schematic.Schematic, error) {
		cv, err := h.CellVersionFor(cell)
		if err != nil {
			return nil, err
		}
		binding, err := h.BindingFor(cv)
		if err != nil {
			return nil, err
		}
		do, ok := binding.DesignObjects[ViewSchematic]
		if !ok {
			return nil, fmt.Errorf("core: cell %q has no schematic design object", cell)
		}
		_, staged, err := h.stageInput(user, do, cell+".child.sch")
		if err != nil {
			return nil, err
		}
		data, err := os.ReadFile(staged)
		if err != nil {
			return nil, err
		}
		return schematic.Parse(data)
	}
}
