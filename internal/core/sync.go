package core

import (
	"fmt"
	"sort"
)

// Master/slave synchronization audit. The encapsulation tags every slave
// cellview version it creates with the JCF design object version
// (PropJCFVersion). A version without the tag was created behind the
// master's back — exactly what the locked data-management menus prevent
// (section 2.4: "lock menu points in order to prevent data
// inconsistency"). SlaveSyncCheck is the audit that quantifies the damage
// when the locks are disabled; the A1 ablation uses it.

// SyncProblem describes one slave-side version the master does not know.
type SyncProblem struct {
	Cell    string
	View    string
	Version int
}

func (p SyncProblem) String() string {
	return fmt.Sprintf("%s/%s v%d has no JCF version tag (created behind the master)", p.Cell, p.View, p.Version)
}

// SlaveSyncCheck scans every bound slave cell for cellview versions that
// carry no PropJCFVersion tag. Version 1 of each cellview is the empty
// seed the binding itself creates and is exempt.
func (h *Hybrid) SlaveSyncCheck() ([]SyncProblem, error) {
	var problems []SyncProblem
	for _, cell := range h.Bindings() {
		views, err := h.Lib.Cellviews(cell)
		if err != nil {
			return nil, err
		}
		for _, view := range views {
			versions, err := h.Lib.Versions(cell, view)
			if err != nil {
				return nil, err
			}
			for _, v := range versions {
				if v == 1 {
					continue // the empty seed version
				}
				_, tagged, err := h.Lib.GetProperty(cell, view, v, PropJCFVersion)
				if err != nil {
					return nil, err
				}
				if !tagged {
					problems = append(problems, SyncProblem{Cell: cell, View: view, Version: v})
				}
			}
		}
	}
	sort.Slice(problems, func(i, j int) bool {
		a, b := problems[i], problems[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.View != b.View {
			return a.View < b.View
		}
		return a.Version < b.Version
	})
	return problems, nil
}

// UnlockNativeMenus removes the encapsulation's menu locks — the ablation
// switch. With the locks gone, designers can drive the slave's own
// checkin/checkout and desynchronize the frameworks; SlaveSyncCheck then
// finds the untracked versions.
func (h *Hybrid) UnlockNativeMenus() {
	for _, menu := range lockedMenus {
		h.Hooks.Unlock(menu)
	}
}
