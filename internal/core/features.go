package core

import (
	"fmt"
	"strings"
)

// The section 3 evaluation distilled into a capability matrix. Each row is
// one criterion the paper discusses, with the support level in standalone
// FMCAD, standalone JCF 3.0, and the hybrid JCF-FMCAD framework.

// Support is a capability level.
type Support int

// Capability levels.
const (
	No Support = iota
	Partial
	Yes
)

// String returns "no", "partial" or "yes".
func (s Support) String() string {
	switch s {
	case No:
		return "no"
	case Partial:
		return "partial"
	case Yes:
		return "yes"
	}
	return "?"
}

// Feature is one capability row.
type Feature struct {
	Capability string
	Section    string // paper section making the claim
	FMCAD      Support
	JCF        Support
	Hybrid     Support
	Note       string
}

// FeatureMatrix returns the section 3 evaluation as data. The hybrid
// column is the paper's headline: it inherits JCF's design-management
// strengths and FMCAD's tool strengths, with the documented restrictions
// (non-isomorphic hierarchies, extra UI, forced flows).
func FeatureMatrix() []Feature {
	return []Feature{
		{
			Capability: "integrated design tools",
			Section:    "2.2",
			FMCAD:      Yes, JCF: No, Hybrid: Yes,
			Note: "schematic entry, layout editor, digital simulator",
		},
		{
			Capability: "extension-language customization",
			Section:    "2.2",
			FMCAD:      Yes, JCF: No, Hybrid: Yes,
			Note: "FML procedures; used to lock menus and install triggers",
		},
		{
			Capability: "inter-tool communication (cross-probing)",
			Section:    "2.4",
			FMCAD:      Yes, JCF: No, Hybrid: Partial,
			Note: "ITC works through permission-checking wrappers only",
		},
		{
			Capability: "per-cell multi-user isolation",
			Section:    "3.1",
			FMCAD:      No, JCF: Yes, Hybrid: Yes,
			Note: "FMCAD has one .meta per library; JCF reserves per cell version",
		},
		{
			Capability: "parallel work on versions of one cellview",
			Section:    "3.1",
			FMCAD:      No, JCF: Yes, Hybrid: Yes,
			Note: "hybrid maps each JCF cell version to its own FMCAD cell",
		},
		{
			Capability: "data sharing between projects",
			Section:    "3.1",
			FMCAD:      No, JCF: No, Hybrid: No,
			Note: "future work; implemented here behind jcf.Release40",
		},
		{
			Capability: "two-level versioning (cell versions + variants)",
			Section:    "3.2",
			FMCAD:      No, JCF: Yes, Hybrid: Yes,
			Note: "FMCAD has only flat cellview versions",
		},
		{
			Capability: "separated hierarchy metadata with consistency checks",
			Section:    "3.2",
			FMCAD:      No, JCF: Yes, Hybrid: Yes,
			Note: "FMCAD hides hierarchy inside design files",
		},
		{
			Capability: "user/team/tool/flow entity management",
			Section:    "3.2",
			FMCAD:      No, JCF: Yes, Hybrid: Yes,
			Note: "these entities cannot be distinguished within FMCAD",
		},
		{
			Capability: "flexible hierarchy manipulation",
			Section:    "3.3",
			FMCAD:      Yes, JCF: No, Hybrid: Partial,
			Note: "hybrid requires manual desktop submission before design",
		},
		{
			Capability: "non-isomorphic hierarchies",
			Section:    "3.3",
			FMCAD:      Yes, JCF: No, Hybrid: No,
			Note: "JCF 3.0 master cannot represent them; future release will",
		},
		{
			Capability: "single user interface",
			Section:    "3.4",
			FMCAD:      Yes, JCF: Yes, Hybrid: No,
			Note: "the designer works with both the FMCAD and JCF desktops",
		},
		{
			Capability: "flow management (forced flows)",
			Section:    "3.5",
			FMCAD:      No, JCF: Yes, Hybrid: Yes,
			Note: "order prescribed and fixed; quality by forced execution",
		},
		{
			Capability: "derivation relations (what-belongs-to-what)",
			Section:    "3.5",
			FMCAD:      No, JCF: Yes, Hybrid: Yes,
			Note: "recorded automatically by the encapsulation",
		},
		{
			Capability: "direct (copy-free) tool access to design files",
			Section:    "3.6",
			FMCAD:      Yes, JCF: No, Hybrid: No,
			Note: "hybrid copies to/from the OMS database even for reads",
		},
	}
}

// RenderFeatureMatrix prints the capability matrix as a text table.
func RenderFeatureMatrix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %-6s %-8s %-8s %-8s\n", "capability", "sect.", "FMCAD", "JCF", "hybrid")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 86))
	for _, f := range FeatureMatrix() {
		fmt.Fprintf(&b, "%-52s %-6s %-8s %-8s %-8s\n", f.Capability, f.Section, f.FMCAD, f.JCF, f.Hybrid)
	}
	return b.String()
}

// UIContexts returns the number of distinct user interfaces a designer
// must operate in each environment (section 3.4): plain FMCAD or plain
// JCF need one; the hybrid prototype needs both.
func UIContexts(environment string) (int, error) {
	switch environment {
	case "fmcad", "jcf":
		return 1, nil
	case "hybrid":
		return 2, nil
	}
	return 0, fmt.Errorf("core: unknown environment %q", environment)
}
