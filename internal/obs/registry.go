package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// entry binds a metric name to the live cell (or function) it reads.
type entry struct {
	name string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() int64
}

// value reads a scalar entry. Histogram entries never reach here.
func (e *entry) value() int64 {
	switch e.kind {
	case kindCounter:
		return e.c.Load()
	case kindGauge:
		return e.g.Load()
	default:
		return e.fn()
	}
}

// Registry maps metric names to live cells owned by the layers that
// maintain them. Registry.mu is a strict leaf lock guarding only the
// name table (declared in docs/lock-hierarchy.md): registration copies
// an entry in, and exposition copies the entry list out before touching
// any cell — gauge functions are evaluated and output is written with
// no lock held, so a scrape can never block or invert against the hot
// path's locks.
//
// Registering an existing name re-points it (last registration wins):
// re-wiring a component — e.g. a promoted replica's store replacing the
// old primary's — atomically redirects the name to the new cell.
type Registry struct {
	mu     sync.Mutex
	byName map[string]int
	list   []entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

func (r *Registry) add(e entry) {
	r.mu.Lock()
	if i, ok := r.byName[e.name]; ok {
		r.list[i] = e
	} else {
		r.byName[e.name] = len(r.list)
		r.list = append(r.list, e)
	}
	r.mu.Unlock()
}

// RegisterCounter exposes a layer-owned Counter cell under name.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.add(entry{name: name, kind: kindCounter, c: c})
}

// RegisterGauge exposes a layer-owned Gauge cell under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	r.add(entry{name: name, kind: kindGauge, g: g})
}

// RegisterHistogram exposes a layer-owned Histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.add(entry{name: name, kind: kindHistogram, h: h})
}

// RegisterCounterFunc exposes a computed monotonic value. fn runs on
// every exposition with no registry lock held; it must be safe to call
// from any goroutine and should itself be non-blocking (read atomics,
// not mutexes).
func (r *Registry) RegisterCounterFunc(name string, fn func() int64) {
	r.add(entry{name: name, kind: kindCounterFunc, fn: fn})
}

// RegisterGaugeFunc exposes a computed level; same contract as
// RegisterCounterFunc.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	r.add(entry{name: name, kind: kindGaugeFunc, fn: fn})
}

// entries returns a name-sorted copy of the table. Cells and functions
// are only touched after Registry.mu is released.
func (r *Registry) entries() []entry {
	r.mu.Lock()
	es := make([]entry, len(r.list))
	copy(es, r.list)
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	return es
}

// errWriter folds the first write error and silences the rest, keeping
// the exposition loops linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// WriteProm writes every metric in Prometheus text exposition style,
// sorted by name. Histogram buckets carry their bound in nanoseconds in
// the `le` label (the repo's metric names end in `_ns`; no unit
// conversion happens anywhere), cumulative as Prometheus expects, with
// empty buckets elided and a final +Inf line.
func (r *Registry) WriteProm(w io.Writer) error {
	ew := &errWriter{w: w}
	for _, e := range r.entries() {
		switch e.kind {
		case kindCounter, kindCounterFunc:
			ew.printf("# TYPE %s counter\n%s %d\n", e.name, e.name, e.value())
		case kindGauge, kindGaugeFunc:
			ew.printf("# TYPE %s gauge\n%s %d\n", e.name, e.name, e.value())
		case kindHistogram:
			s := e.h.Snapshot()
			ew.printf("# TYPE %s histogram\n", e.name)
			var cum int64
			for i, c := range s.Buckets {
				cum += c
				if c != 0 {
					ew.printf("%s_bucket{le=\"%d\"} %d\n", e.name, int64(BucketBound(i)), cum)
				}
			}
			ew.printf("%s_bucket{le=\"+Inf\"} %d\n", e.name, s.Count)
			ew.printf("%s_sum %d\n%s_count %d\n", e.name, int64(s.Sum), e.name, s.Count)
		}
	}
	return ew.err
}

// Snapshot returns every metric's current value as a JSON-ready map:
// counters and gauges as plain integers, histograms as
// {count, sum_ns, p50_ns, p90_ns, p99_ns}. This is the single source
// both the /vars endpoint and the replicad follow loop print from, so
// the CLI and HTTP views can never disagree.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, e := range r.entries() {
		if e.kind == kindHistogram {
			s := e.h.Snapshot()
			out[e.name] = map[string]int64{
				"count":  s.Count,
				"sum_ns": int64(s.Sum),
				"p50_ns": int64(s.P50()),
				"p90_ns": int64(s.P90()),
				"p99_ns": int64(s.P99()),
			}
			continue
		}
		out[e.name] = e.value()
	}
	return out
}

// Names returns the sorted registered metric names (docs tests pin the
// catalogue in docs/observability.md against this).
func (r *Registry) Names() []string {
	es := r.entries()
	names := make([]string, len(es))
	for i := range es {
		names[i] = es[i].name
	}
	return names
}

// WriteJSON writes the Snapshot as indented JSON (the /vars payload).
// encoding/json sorts map keys, so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
