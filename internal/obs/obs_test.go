package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIdxBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {256, 0},
		{257, 1}, {512, 1},
		{513, 2}, {1024, 2},
		{BucketBound(10), 10}, {BucketBound(10) + 1, 11},
		{1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIdx(c.d); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(100)  // bucket 0
	h.Observe(300)  // bucket 1
	h.Observe(300)  // bucket 1
	h.Observe(1000) // bucket 2
	h.Observe(-50)  // clamps to 0, bucket 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 100+300+300+1000 {
		t.Fatalf("sum = %d, want 1700", s.Sum)
	}
	for i, want := range map[int]int64{0: 2, 1: 2, 2: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	// One observation in bucket 1 (256, 512]: every quantile
	// interpolates to the bucket's upper bound.
	h.Observe(300)
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := s.Quantile(q); got != 512 {
			t.Errorf("Quantile(%v) = %d, want 512", q, got)
		}
	}
	// Two observations in the same bucket: the median's rank-1 position
	// interpolates to the bucket midpoint (256 + 128 = 384).
	h.Observe(400)
	s = h.Snapshot()
	if got := s.P50(); got != 384 {
		t.Errorf("P50 of two same-bucket observations = %d, want 384", got)
	}
}

func TestQuantileOrderingAndAccuracy(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	p50, p90, p99 := s.P50(), s.P90(), s.P99()
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not ordered: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// Exponential buckets guarantee factor-2 accuracy: each true value
	// lies in (bound/2, bound] of its bucket.
	check := func(name string, got, truth time.Duration) {
		if got < truth/2 || got > truth*2 {
			t.Errorf("%s = %v, want within 2x of %v", name, got, truth)
		}
	}
	check("p50", p50, 500*time.Microsecond)
	check("p90", p90, 900*time.Microsecond)
	check("p99", p99, 990*time.Microsecond)
	if m := s.Mean(); m < 400*time.Microsecond || m > 600*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", m)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty mean = %d, want 0", got)
	}
}

func TestDisabledStripsTimers(t *testing.T) {
	SetEnabled(false)
	t.Cleanup(func() { SetEnabled(true) })
	if !Now().IsZero() {
		t.Fatal("Now() not zero while disabled")
	}
	var h Histogram
	h.Since(Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("Since(zero) recorded %d observations", s.Count)
	}
	sp := StartSpan("x")
	sp.Stage("a", &h)
	sp.Done(&h)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("disabled span recorded %d observations", s.Count)
	}
	var smp Sampler
	if !smp.Sample(1).IsZero() {
		t.Fatal("Sampler produced a start time while disabled")
	}
}

func TestSamplerStride(t *testing.T) {
	var s Sampler
	hits := 0
	for i := 0; i < 256; i++ {
		if !s.Sample(64).IsZero() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("sampler admitted %d of 256 at stride 64, want 4", hits)
	}
}

func TestSpanStagesAndSlowOp(t *testing.T) {
	var lines []string
	var mu sync.Mutex
	SetSlowOpThreshold(1) // everything is slow
	SetSlowOpLogger(func(line string) {
		mu.Lock()
		lines = append(lines, line)
		mu.Unlock()
	})
	t.Cleanup(func() {
		SetSlowOpThreshold(0)
		SetSlowOpLogger(nil)
	})
	var digest, total Histogram
	sp := StartSpan("jcf.checkin")
	sp.Stage("read", nil)
	sp.Stage("digest", &digest)
	sp.Done(&total)
	if s := digest.Snapshot(); s.Count != 1 {
		t.Fatalf("digest stage recorded %d observations, want 1", s.Count)
	}
	if s := total.Snapshot(); s.Count != 1 {
		t.Fatalf("total recorded %d observations, want 1", s.Count)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow-op lines = %d, want 1", len(lines))
	}
	for _, frag := range []string{"slow op jcf.checkin", "total=", "read=", "digest="} {
		if !strings.Contains(lines[0], frag) {
			t.Errorf("slow-op line %q missing %q", lines[0], frag)
		}
	}
}

func TestRegistryGoldenProm(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(42)
	var g Gauge
	g.Update(7)
	var h Histogram
	h.Observe(300)
	r.RegisterCounter("test_events_total", &c)
	r.RegisterGauge("test_depth", &g)
	r.RegisterGaugeFunc("test_lag", func() int64 { return 3 })
	r.RegisterHistogram("test_latency_ns", &h)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE test_depth gauge
test_depth 7
# TYPE test_events_total counter
test_events_total 42
# TYPE test_lag gauge
test_lag 3
# TYPE test_latency_ns histogram
test_latency_ns_bucket{le="512"} 1
test_latency_ns_bucket{le="+Inf"} 1
test_latency_ns_sum 300
test_latency_ns_count 1
`
	if b.String() != want {
		t.Errorf("prom exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistryGoldenJSON(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(42)
	var g Gauge
	g.Update(7)
	var h Histogram
	h.Observe(300)
	r.RegisterCounter("test_events_total", &c)
	r.RegisterGauge("test_depth", &g)
	r.RegisterGaugeFunc("test_lag", func() int64 { return 3 })
	r.RegisterHistogram("test_latency_ns", &h)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "test_depth": 7,
  "test_events_total": 42,
  "test_lag": 3,
  "test_latency_ns": {
    "count": 1,
    "p50_ns": 512,
    "p90_ns": 512,
    "p99_ns": 512,
    "sum_ns": 300
  }
}
`
	if b.String() != want {
		t.Errorf("json exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistryReRegistrationWins(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	a.Add(1)
	b.Add(2)
	r.RegisterCounter("x", &a)
	r.RegisterCounter("x", &b)
	if v := r.Snapshot()["x"]; v != int64(2) {
		t.Fatalf("re-registered metric reads %v, want 2", v)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v, want [x]", names)
	}
}

// TestConcurrentWritersVsReaders drives every cell type from many
// goroutines while snapshot/exposition readers run; -race is the
// assertion, plus final counts.
func TestConcurrentWritersVsReaders(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	var h Histogram
	r.RegisterCounter("c_total", &c)
	r.RegisterGauge("g", &g)
	r.RegisterHistogram("h_ns", &h)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Inc()
				h.Observe(time.Duration(i))
				g.Dec()
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		var b strings.Builder
		for {
			select {
			case <-stop:
				return
			default:
			}
			b.Reset()
			if err := r.WriteProm(&b); err != nil {
				t.Error(err)
				return
			}
			_ = r.Snapshot()
			// Concurrent registration races the scrape too.
			r.RegisterGaugeFunc("live", func() int64 { return g.Load() })
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if s := h.Snapshot(); s.Count != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", s.Count, writers*perWriter)
	}
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
}
