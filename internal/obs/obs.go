// Package obs is the module's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms with snapshot quantiles) plus
// lightweight pipeline tracing (Span) and a configurable slow-op log.
//
// The design contract, checked by jcflint's holdblock/lockgraph
// analyzers, is that every instrument point is non-blocking: Counter,
// Gauge and Histogram writes are single atomic adds, Span stamps are
// clock reads plus atomic adds, and the only lock in the package —
// Registry.mu — is a strict leaf guarding the name table alone.
// Exposition copies the table out under the lock and touches cells,
// evaluates gauge functions and writes output with no lock held, so a
// /metrics scrape can never block an Apply or an upload.
//
// Layers own their metric cells (embedded by value in their structs)
// and register pointers to them, so the pre-existing Stats() snapshot
// structs and the registry read the same cells — nothing is counted
// twice. Registration happens at wiring time (cmd/replicad, tests):
// there is no global registry, because tests build many stores and
// frameworks side by side.
//
// Timing instrumentation can be stripped at runtime with
// SetEnabled(false): obs.Now returns the zero time, Histogram.Since and
// Span methods become no-ops, and hot paths pay one atomic load instead
// of two clock reads. Counters and gauges stay on — they are single
// adds on cache-hot cells and the Stats() views depend on them.
package obs

import (
	"sync/atomic"
	"time"
)

// disabled strips timing instrumentation when set. The zero value means
// enabled, so an unconfigured process observes by default.
var disabled atomic.Bool

// SetEnabled turns timing instrumentation (histogram timing, spans,
// slow-op log) on or off process-wide. Counters and gauges are
// unaffected.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether timing instrumentation is on.
func Enabled() bool { return !disabled.Load() }

// Now returns the wall clock, or the zero Time when timing
// instrumentation is disabled. Paired with Histogram.Since (a no-op on
// a zero start), hot paths time themselves as
//
//	start := obs.Now()
//	...
//	m.latency.Since(start)
//
// and a stripped build pays one atomic load instead of two clock reads.
func Now() time.Time {
	if disabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Layers embed Counter cells directly in their structs
// and hand the registry a pointer, so Stats() views and /metrics
// scrapes read the same cell.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic;
// this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level: queue depth, in-flight operations,
// subscriber count. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Update stores an absolute level.
func (g *Gauge) Update(n int64) { g.v.Store(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Sampler admits one call in every stride. It thins very hot
// instrument points — e.g. stripe-lock wait timing, where even two
// clock reads per acquisition would be measurable — while still
// filling a histogram with a statistically useful stream.
type Sampler struct{ n atomic.Uint64 }

// Sample returns a start time on every stride-th call and the zero
// Time (which Histogram.Since ignores) otherwise. stride must be a
// power of two.
func (s *Sampler) Sample(stride uint64) time.Time {
	if s.n.Add(1)&(stride-1) != 0 {
		return time.Time{}
	}
	return Now()
}
