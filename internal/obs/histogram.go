package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency buckets. Bucket i counts
// observations with d <= 256ns<<i; the final bucket also absorbs all
// overflow, so every observation lands somewhere. 40 doublings from
// 256ns reach ~39h — far past any latency this module can produce.
const histBuckets = 40

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) time.Duration { return time.Duration(256) << uint(i) }

// bucketIdx maps a duration to its bucket: 0 for d <= 256ns, else the
// unique i with 256ns<<(i-1) < d <= 256ns<<i, clamped to the overflow
// bucket.
func bucketIdx(d time.Duration) int {
	if d <= 256 {
		return 0
	}
	i := bits.Len64(uint64(d-1) >> 8)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Histogram is a fixed-bucket latency histogram. Observe is three
// atomic adds — no locks, no allocation — so it is safe at any hot
// path's call rate and from any number of goroutines. The zero value
// is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIdx(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Since records the time elapsed since start. A zero start — what
// obs.Now returns while timing is disabled, and what Sampler.Sample
// returns off-stride — is a no-op, so callers never branch themselves.
func (h *Histogram) Since(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// HistSnapshot is a point-in-time copy of a histogram. Concurrent
// writers race the copy; each cell is individually consistent, which
// is all a monitoring quantile needs. Count is re-derived from the
// bucket cells so quantile ranks always stay inside the distribution.
type HistSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets [histBuckets]int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1), linearly
// interpolated within the containing bucket. Returns 0 on an empty
// histogram.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := float64(rank-seen) / float64(c)
			return lo + time.Duration(float64(hi-lo)*frac)
		}
		seen += c
	}
	return BucketBound(histBuckets - 1)
}

// P50 returns the median.
func (s *HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P90 returns the 90th percentile.
func (s *HistSnapshot) P90() time.Duration { return s.Quantile(0.90) }

// P99 returns the 99th percentile.
func (s *HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// Mean returns the arithmetic mean, or 0 on an empty histogram.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
