package obs

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// spanStages caps the per-op stage breakdown; later stages still count
// in the total but drop out of the slow-op line.
const spanStages = 8

type stageStamp struct {
	label string
	d     time.Duration
}

// Span stamps stage durations along one operation — the checkin
// pipeline's digest → spill/PutAsync → Apply → upload-durable →
// publish-gate sequence is the motivating client. It is a plain value
// (no allocation on the hot path) and every method is a no-op on the
// zero Span, which is what StartSpan returns while timing is disabled.
//
// Typical use:
//
//	sp := obs.StartSpan("jcf.checkin")
//	defer sp.Done(&m.checkinTotal)
//	... read the design file ...
//	sp.Stage("read", nil)
//	... digest + enqueue upload ...
//	sp.Stage("digest", &m.checkinDigest)
//
// Done records the total and, when the op exceeds the configured
// slow-op threshold, emits one structured line with the stage
// breakdown. Register Done (via defer) BEFORE taking any named lock:
// deferred calls run LIFO, so the line is formatted and written only
// after the later-deferred unlocks have released everything.
type Span struct {
	name   string
	start  time.Time
	mark   time.Time
	n      int
	stages [spanStages]stageStamp
}

// StartSpan begins a span. Returns the inert zero Span while timing is
// disabled.
func StartSpan(name string) Span {
	if disabled.Load() {
		return Span{}
	}
	t := time.Now()
	return Span{name: name, start: t, mark: t}
}

// Stage closes the stage running since the previous stamp, recording
// it under label and — when h is non-nil — into h. Returns the stage
// duration (zero on an inert span).
func (sp *Span) Stage(label string, h *Histogram) time.Duration {
	if sp.start.IsZero() {
		return 0
	}
	now := time.Now()
	d := now.Sub(sp.mark)
	sp.mark = now
	if h != nil {
		h.Observe(d)
	}
	if sp.n < spanStages {
		sp.stages[sp.n] = stageStamp{label: label, d: d}
		sp.n++
	}
	return d
}

// Done closes the span: the total duration is recorded into total (if
// non-nil) and a slow-op line is emitted when the total meets the
// configured threshold.
func (sp *Span) Done(total *Histogram) {
	if sp.start.IsZero() {
		return
	}
	d := time.Since(sp.start)
	if total != nil {
		total.Observe(d)
	}
	if thr := slowNanos.Load(); thr > 0 && int64(d) >= thr {
		sp.emitSlow(d)
	}
}

// slowNanos arms the slow-op log; 0 (the default) disables it.
var slowNanos atomic.Int64

// slowFn holds the slow-op line sink as a func(string).
var slowFn atomic.Value

// SetSlowOpThreshold arms the slow-op log: spans whose total duration
// meets or exceeds d emit one line. Zero disables (the default).
func SetSlowOpThreshold(d time.Duration) { slowNanos.Store(int64(d)) }

// SetSlowOpLogger routes slow-op lines; the default sink is standard
// error. fn runs outside all locks (see Span) but on the operation's
// own goroutine, so it should be cheap or hand off.
func SetSlowOpLogger(fn func(line string)) { slowFn.Store(fn) }

func (sp *Span) emitSlow(total time.Duration) {
	var b strings.Builder
	fmt.Fprintf(&b, "obs: slow op %s total=%s", sp.name, total)
	for i := 0; i < sp.n; i++ {
		fmt.Fprintf(&b, " %s=%s", sp.stages[i].label, sp.stages[i].d)
	}
	if fn, ok := slowFn.Load().(func(string)); ok && fn != nil {
		fn(b.String())
		return
	}
	fmt.Fprintln(os.Stderr, b.String())
}
