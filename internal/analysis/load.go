// Package analysis is jcflint's engine: a repo-specific static-analysis
// suite that machine-enforces the conventions five PRs of growth have
// come to depend on — stripe-lock ordering in the OMS kernel, the
// guardWrite gate on every mutating jcf entry point, feed publishes only
// under the stripe hold, no silently dropped errors, and no internal
// maps/slices escaping by reference.
//
// The module proxy is not reachable from the build environment, so the
// suite does not use golang.org/x/tools/go/analysis. This file is the
// stdlib-only equivalent of go/packages: it walks the module tree,
// parses every non-test file, and type-checks packages recursively with
// go/types — module-internal imports resolve against the source tree,
// standard-library imports through the gc source importer (which reads
// GOROOT source and needs no network or export data).
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package: the unit every analyzer
// operates on.
type Package struct {
	Path  string // import path, e.g. "repro/internal/oms"
	Name  string // package name, e.g. "oms"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // parsed with comments, non-test files only
	Types *types.Package
	Info  *types.Info
}

// loader loads and type-checks the packages of one module tree,
// memoizing so shared dependencies check once. It doubles as the
// types.Importer for its own checks.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	stdPkgs map[string]*types.Package
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		stdPkgs: map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer for the checks the loader runs.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.stdPkgs[path]; ok {
		return p, nil
	}
	p, err := l.std.ImportFrom(path, l.modRoot, 0)
	if err != nil {
		return nil, err
	}
	l.stdPkgs[path] = p
	return p, nil
}

// dirFor maps a module-internal import path onto its directory.
func (l *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

// load parses and type-checks one module-internal package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// Snapshot is one loaded, type-checked module tree: every package plus
// the shared cross-package infrastructure (the call graph and its
// per-function lock/mutation summaries) that the whole-module analyzers
// run on. The tree is loaded and type-checked ONCE; every analyzer —
// and every concurrent analyzer goroutine — shares this snapshot.
type Snapshot struct {
	Root    string // module root directory (absolute)
	ModPath string // module import path
	Fset    *token.FileSet
	Pkgs    []*Package

	graphOnce sync.Once
	graph     *CallGraph
}

// CallGraph returns the module's cross-package call graph, built on
// first use and shared by every analyzer thereafter.
func (s *Snapshot) CallGraph() *CallGraph {
	s.graphOnce.Do(func() { s.graph = buildCallGraph(s) })
	return s.graph
}

// LoadSnapshot loads every package under root (recursively),
// type-checked against module path modPath, as one shared Snapshot.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped, as are directories with no non-test Go files. Packages come
// back sorted by import path.
func LoadSnapshot(root, modPath string) (*Snapshot, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	pkgs, fset, err := loadTree(root, modPath)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Root: root, ModPath: modPath, Fset: fset, Pkgs: pkgs}, nil
}

func loadTree(root, modPath string) ([]*Package, *token.FileSet, error) {
	l := newLoader(root, modPath)
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		for _, seen := range paths {
			if seen == ip {
				return nil
			}
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		p, err := l.load(ip)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, l.fset, nil
}

// ModulePath reads the module path out of the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory holding
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
