package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// guardwrite machine-checks the replica read-only gate: every exported
// method on jcf.Framework that mutates shared state — reaches a mutating
// oms.Store entry point (Apply/Create/Set/Link/Unlink/Delete/...) or
// writes a framework-level map — must call guardWrite() before its first
// mutation, so a read-only replica view rejects the call before any
// state is touched. PR 5 established this by hand across ~25 entry
// points; this analyzer is what keeps entry point #26 from silently
// skipping it.
//
// Mutation reachability is computed over the package call graph:
// an exported method that mutates only through an unexported helper is
// still mutating. Propagation stops at callees that call guardWrite
// themselves — they are self-guarding.
var GuardWriteAnalyzer = &Analyzer{
	Name: "guardwrite",
	Doc:  "exported mutating jcf.Framework methods must call guardWrite() before their first store mutation",
	Match: func(p *Package) bool {
		return p.Name == "jcf" && p.Types.Scope().Lookup("Framework") != nil
	},
	Run: runGuardWrite,
}

// storeMutators are the oms.Store methods that mutate the database.
// Begin/Commit/Rollback count: opening or closing a transaction on a
// replica's store would corrupt replicated apply.
var storeMutators = map[string]bool{
	"Apply":             true,
	"Create":            true,
	"Set":               true,
	"CopyIn":            true,
	"CopyInBytes":       true,
	"Link":              true,
	"Unlink":            true,
	"Delete":            true,
	"Begin":             true,
	"Commit":            true,
	"Rollback":          true,
	"ApplyReplicated":   true,
	"ResetFromSnapshot": true,
	"ReplayChanges":     true,
}

// guardFacts is what the analyzer knows about one function in the jcf
// package. Exported for the real-tree regression test via GuardReport.
type guardFacts struct {
	decl         *ast.FuncDecl
	guardPos     token.Pos // first guardWrite() call (NoPos if none)
	directMutPos token.Pos // first direct store/map mutation (NoPos if none)
	callees      []*types.Func
	mutates      bool // direct or transitive (through unguarded callees)
}

func runGuardWrite(pass *Pass) {
	facts := guardWriteFacts(pass)
	for fn, f := range facts {
		if !isExportedFrameworkMethod(fn, f.decl) {
			continue
		}
		if f.mutates && f.guardPos == token.NoPos {
			pass.Reportf(f.decl.Name.Pos(), "exported mutating Framework method %s does not call guardWrite(); a replica view could write through it", fn.Name())
			continue
		}
		if f.guardPos != token.NoPos && f.directMutPos != token.NoPos && f.guardPos > f.directMutPos {
			pass.Reportf(f.directMutPos, "%s mutates the store before calling guardWrite(); the guard must be the prologue", fn.Name())
		}
	}
}

func isExportedFrameworkMethod(fn *types.Func, decl *ast.FuncDecl) bool {
	if decl == nil || !fn.Exported() {
		return false
	}
	recv := recvNamed(fn)
	return recv != nil && recv.Obj().Name() == "Framework"
}

// guardWriteFacts computes per-function guard/mutation facts and runs
// the mutation propagation to fixpoint.
func guardWriteFacts(pass *Pass) map[*types.Func]*guardFacts {
	decls := funcDecls(pass.Package)
	facts := map[*types.Func]*guardFacts{}
	for fn, fd := range decls {
		f := &guardFacts{decl: fd}
		if fd.Body != nil {
			collectGuardFacts(pass, fd, f)
		}
		f.mutates = f.directMutPos != token.NoPos
		facts[fn] = f
	}
	// Propagate mutation through unguarded same-package callees.
	for changed := true; changed; {
		changed = false
		for _, f := range facts {
			if f.mutates {
				continue
			}
			for _, callee := range f.callees {
				cf, ok := facts[callee]
				if !ok {
					continue
				}
				// A callee that guards itself rejects replica writes on
				// its own; reaching mutation only through it is safe.
				if cf.guardPos != token.NoPos {
					continue
				}
				if cf.mutates {
					f.mutates = true
					changed = true
					break
				}
			}
		}
	}
	return facts
}

func collectGuardFacts(pass *Pass, fd *ast.FuncDecl, f *guardFacts) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(info, nn)
			if callee == nil {
				// delete(fw.someMap, k) — builtin map mutation.
				if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok && id.Name == "delete" && len(nn.Args) > 0 {
					if isFrameworkMapExpr(pass, nn.Args[0]) {
						f.noteMutation(nn.Pos())
					}
				}
				return true
			}
			if callee.Name() == "guardWrite" && recvNamedIs(callee, "Framework") {
				if f.guardPos == token.NoPos {
					f.guardPos = nn.Pos()
				}
				return true
			}
			if storeMutators[callee.Name()] && recvNamedIs(callee, "Store") {
				f.noteMutation(nn.Pos())
				return true
			}
			if callee.Pkg() == pass.Types {
				f.callees = append(f.callees, callee)
			}
		case *ast.AssignStmt:
			for _, lhs := range nn.Lhs {
				if isFrameworkMapWrite(pass, lhs) {
					f.noteMutation(nn.Pos())
				}
			}
		case *ast.IncDecStmt:
			if isFrameworkMapWrite(pass, nn.X) {
				f.noteMutation(nn.Pos())
			}
		}
		return true
	})
}

func (f *guardFacts) noteMutation(pos token.Pos) {
	if f.directMutPos == token.NoPos || pos < f.directMutPos {
		f.directMutPos = pos
	}
}

func recvNamedIs(fn *types.Func, name string) bool {
	recv := recvNamed(fn)
	return recv != nil && recv.Obj().Name() == name
}

// GuardReport is guardwrite's classification of one exported Framework
// method. Exposed for the real-tree regression test: lint only reports
// MUTATING-and-unguarded methods, so if the classifier ever stops seeing
// the mutation inside a known-mutating entry point, lint would go quiet
// exactly when a deleted guardWrite() call matters most. The test pins
// the classification itself.
type GuardReport struct {
	Method  string
	Guarded bool // calls guardWrite()
	Mutates bool // reaches a store mutator or framework-map write
}

// GuardWriteReport classifies every exported Framework method of pkg,
// sorted by method name.
func GuardWriteReport(pkg *Package) []GuardReport {
	pass := &Pass{Package: pkg, analyzer: GuardWriteAnalyzer, diags: new([]Diagnostic)}
	facts := guardWriteFacts(pass)
	var out []GuardReport
	for fn, f := range facts {
		if !isExportedFrameworkMethod(fn, f.decl) {
			continue
		}
		out = append(out, GuardReport{
			Method:  fn.Name(),
			Guarded: f.guardPos != token.NoPos,
			Mutates: f.mutates,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out
}

// isFrameworkMapWrite reports whether the assignment target writes a
// framework-level map: an index into (or wholesale replacement of) a
// map-typed field reached from a Framework value.
func isFrameworkMapWrite(pass *Pass, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		return isFrameworkMapExpr(pass, x.X)
	case *ast.SelectorExpr:
		return isFrameworkMapExpr(pass, x)
	}
	return false
}

// isFrameworkMapExpr reports whether e is a map-typed expression rooted
// in a *Framework value (fw.reservations, fw.typedHier[cv], ...).
func isFrameworkMapExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		return false
	}
	return typeNameIs(obj.Type(), "Framework")
}
