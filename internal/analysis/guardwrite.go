package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// guardwrite machine-checks the replica read-only gate: every exported
// method on jcf.Framework that mutates shared state — reaches a mutating
// oms.Store entry point (Apply/Create/Set/Link/Unlink/Delete/...) or
// writes a framework-level map — must call guardWrite() before its first
// mutation, so a read-only replica view rejects the call before any
// state is touched. PR 5 established this by hand across ~25 entry
// points; this analyzer is what keeps entry point #26 from silently
// skipping it.
//
// Since PR 7, mutation reachability runs over the shared cross-package
// call graph: an exported method that mutates only through a helper in
// another package — a future jcf subpackage, a repl-side apply shim —
// is still mutating. PR 6's version stopped at the package boundary and
// would have gone quiet exactly there. Propagation still stops at
// callees that call guardWrite themselves — they are self-guarding.
var GuardWriteAnalyzer = &Analyzer{
	Name:      "guardwrite",
	Doc:       "exported mutating jcf.Framework methods must call guardWrite() before their first store mutation",
	RunModule: runGuardWrite,
}

// storeMutators are the oms.Store methods that mutate the database.
// Begin/Commit/Rollback count: opening or closing a transaction on a
// replica's store would corrupt replicated apply.
var storeMutators = map[string]bool{
	"Apply":             true,
	"Create":            true,
	"Set":               true,
	"CopyIn":            true,
	"CopyInBytes":       true,
	"Link":              true,
	"Unlink":            true,
	"Delete":            true,
	"Begin":             true,
	"Commit":            true,
	"Rollback":          true,
	"ApplyReplicated":   true,
	"ResetFromSnapshot": true,
	"ReplayChanges":     true,
}

// guardFacts is what the analyzer knows about one module function.
type guardFacts struct {
	decl         *ast.FuncDecl
	pkg          *Package
	guardPos     token.Pos // first guardWrite() call (NoPos if none)
	directMutPos token.Pos // first direct store/map mutation (NoPos if none)
	callees      []*types.Func
	mutates      bool // reaches a mutation transitively (through any callee)
	unguardedMut bool // reaches a mutation on a path with no guardWrite
}

func runGuardWrite(pass *ModulePass) {
	for fn, f := range guardWriteFacts(pass.Snap) {
		if !isExportedFrameworkMethod(fn, f) {
			continue
		}
		if f.unguardedMut && f.guardPos == token.NoPos {
			pass.Reportf(f.decl.Name.Pos(), "exported mutating Framework method %s does not call guardWrite(); a replica view could write through it", fn.Name())
			continue
		}
		if f.guardPos != token.NoPos && f.directMutPos != token.NoPos && f.guardPos > f.directMutPos {
			pass.Reportf(f.directMutPos, "%s mutates the store before calling guardWrite(); the guard must be the prologue", fn.Name())
		}
	}
}

func isExportedFrameworkMethod(fn *types.Func, f *guardFacts) bool {
	if f.decl == nil || !fn.Exported() || f.pkg.Name != "jcf" {
		return false
	}
	recv := recvNamed(fn)
	return recv != nil && recv.Obj().Name() == "Framework"
}

// guardWriteFacts computes per-function guard/mutation facts for the
// whole module off the shared call graph and runs mutation propagation
// to fixpoint across package boundaries.
func guardWriteFacts(snap *Snapshot) map[*types.Func]*guardFacts {
	g := snap.CallGraph()
	facts := map[*types.Func]*guardFacts{}
	for fn, node := range g.Nodes {
		f := &guardFacts{decl: node.Decl, pkg: node.Pkg}
		if node.Decl.Body != nil {
			scanMapWrites(node, f)
		}
		// Calls come from the graph timeline. Async (go-launched) calls
		// count for mutation reachability too: a method that spawns a
		// goroutine writing the store still writes the store.
		classify := func(callee *types.Func, pos token.Pos) {
			if callee.Name() == "guardWrite" && recvNamedIs(callee, "Framework") {
				if f.guardPos == token.NoPos || pos < f.guardPos {
					f.guardPos = pos
				}
				return
			}
			if storeMutators[callee.Name()] && recvNamedIs(callee, "Store") {
				f.noteMutation(pos)
				return
			}
			f.callees = append(f.callees, callee)
		}
		for _, ev := range node.Events {
			if ev.Kind == EvCall {
				classify(ev.Callee, ev.Pos)
			}
		}
		for _, cr := range node.AsyncCalls {
			classify(cr.Callee, cr.Pos)
		}
		f.mutates = f.directMutPos != token.NoPos
		f.unguardedMut = f.mutates
		facts[fn] = f
	}
	// Propagate mutation module-wide, to fixpoint. Two bits: `mutates`
	// is plain reachability (the classification GuardWriteReport pins);
	// `unguardedMut` — what lint reports on — stops at callees that call
	// guardWrite themselves, since they reject replica writes on their
	// own and reaching mutation only through them is safe.
	for changed := true; changed; {
		changed = false
		for _, f := range facts {
			for _, callee := range f.callees {
				cf, ok := facts[callee]
				if !ok {
					continue
				}
				if cf.mutates && !f.mutates {
					f.mutates = true
					changed = true
				}
				if cf.unguardedMut && cf.guardPos == token.NoPos && !f.unguardedMut {
					f.unguardedMut = true
					changed = true
				}
			}
		}
	}
	return facts
}

// scanMapWrites finds direct framework-map mutations — index
// assignments, wholesale map replacement, ++/--, and the delete builtin
// — which the call graph cannot see (they are not calls).
func scanMapWrites(node *FuncNode, f *guardFacts) {
	pkg := node.Pkg
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok && id.Name == "delete" && len(nn.Args) > 0 {
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin { // not a shadow
					if isFrameworkMapExpr(pkg, nn.Args[0]) {
						f.noteMutation(nn.Pos())
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range nn.Lhs {
				if isFrameworkMapWrite(pkg, lhs) {
					f.noteMutation(nn.Pos())
				}
			}
		case *ast.IncDecStmt:
			if isFrameworkMapWrite(pkg, nn.X) {
				f.noteMutation(nn.Pos())
			}
		}
		return true
	})
}

func (f *guardFacts) noteMutation(pos token.Pos) {
	if f.directMutPos == token.NoPos || pos < f.directMutPos {
		f.directMutPos = pos
	}
}

func recvNamedIs(fn *types.Func, name string) bool {
	recv := recvNamed(fn)
	return recv != nil && recv.Obj().Name() == name
}

// GuardReport is guardwrite's classification of one exported Framework
// method. Exposed for the real-tree regression test: lint only reports
// MUTATING-and-unguarded methods, so if the classifier ever stops seeing
// the mutation inside a known-mutating entry point, lint would go quiet
// exactly when a deleted guardWrite() call matters most. The test pins
// the classification itself.
type GuardReport struct {
	Method  string
	Guarded bool // calls guardWrite()
	Mutates bool // reaches a store mutator or framework-map write
}

// GuardWriteReport classifies every exported Framework method declared
// in pkg (facts computed module-wide), sorted by method name.
func GuardWriteReport(snap *Snapshot, pkg *Package) []GuardReport {
	var out []GuardReport
	for fn, f := range guardWriteFacts(snap) {
		if f.pkg != pkg || !isExportedFrameworkMethod(fn, f) {
			continue
		}
		out = append(out, GuardReport{
			Method:  fn.Name(),
			Guarded: f.guardPos != token.NoPos,
			Mutates: f.mutates,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out
}

// isFrameworkMapWrite reports whether the assignment target writes a
// framework-level map: an index into (or wholesale replacement of) a
// map-typed field reached from a Framework value.
func isFrameworkMapWrite(pkg *Package, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		return isFrameworkMapExpr(pkg, x.X)
	case *ast.SelectorExpr:
		return isFrameworkMapExpr(pkg, x)
	}
	return false
}

// isFrameworkMapExpr reports whether e is a map-typed expression rooted
// in a *Framework value (fw.reservations, fw.typedHier[cv], ...).
func isFrameworkMapExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := pkg.Info.Uses[root]
	if obj == nil {
		return false
	}
	return typeNameIs(obj.Type(), "Framework")
}
