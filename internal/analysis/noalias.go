package analysis

import (
	"go/ast"
	"go/types"
)

// noalias hunts the PR 1 Schema.Class/Rel bug class: an exported
// function or method handing an internal map or slice out by reference,
// so a caller's mutation (or a later internal mutation) corrupts state
// the API promised was encapsulated. Flagged: a return whose expression
// selects a map- or slice-typed struct field reached from the receiver
// or a package-level variable (including an index into such a field that
// itself yields a map/slice). Returning a freshly built local is fine —
// the analyzer only follows receiver- and global-rooted selector chains,
// where aliasing means sharing live internal state.
var NoAliasAnalyzer = &Analyzer{
	Name: "noalias",
	Doc:  "exported API must not return internal maps or mutable slices by reference; return copies",
	Match: func(p *Package) bool {
		return p.Name == "oms" || p.Name == "jcf"
	},
	Run: runNoAlias,
}

func runNoAlias(pass *Pass) {
	decls := funcDecls(pass.Package)
	for fn, fd := range decls {
		if fd.Body == nil || !fn.Exported() {
			continue
		}
		if recv := recvNamed(fn); recv != nil && !recv.Obj().Exported() {
			continue
		}
		var recvObj types.Object
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			recvObj = pass.Info.Defs[fd.Recv.List[0].Names[0]]
		}
		checkNoAliasReturns(pass, fd, fn, recvObj)
	}
}

func checkNoAliasReturns(pass *Pass, fd *ast.FuncDecl, fn *types.Func, recvObj types.Object) {
	// Only the declaration's own returns count: a return inside a
	// closure belongs to the closure, not the exported signature.
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range nn.Results {
				checkAliasingExpr(pass, fn, recvObj, res)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkAliasingExpr flags res when it reads a map/slice struct field (or
// an element of one that is itself a map/slice) rooted at the receiver
// or a package-level variable.
func checkAliasingExpr(pass *Pass, fn *types.Func, recvObj types.Object, res ast.Expr) {
	res = ast.Unparen(res)
	var fieldSel *ast.SelectorExpr
	switch x := res.(type) {
	case *ast.SelectorExpr:
		fieldSel = x
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
			fieldSel = sel
		}
	default:
		return
	}
	if fieldSel == nil || !isStructFieldSel(pass, fieldSel) {
		return
	}
	// The returned value itself must be a map or mutable slice.
	tv, ok := pass.Info.Types[res]
	if !ok {
		return
	}
	var kind string
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		kind = "map"
	case *types.Slice:
		kind = "slice"
	default:
		return
	}
	root := rootIdent(res)
	if root == nil {
		return
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		return
	}
	rooted := ""
	switch {
	case recvObj != nil && obj == recvObj:
		rooted = "receiver"
	case isPackageLevelVar(pass, obj):
		rooted = "package"
	default:
		return
	}
	pass.Reportf(res.Pos(), "exported %s returns an internal %s by reference (%s-rooted); return a copy so callers cannot mutate internal state", fn.Name(), kind, rooted)
}

// isStructFieldSel reports whether sel selects a struct field (as
// opposed to a package member or method value).
func isStructFieldSel(pass *Pass, sel *ast.SelectorExpr) bool {
	if s, ok := pass.Info.Selections[sel]; ok {
		return s.Kind() == types.FieldVal
	}
	return false
}

func isPackageLevelVar(pass *Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() == pass.Types.Scope()
}
