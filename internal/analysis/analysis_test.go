package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture tree under testdata/src seeds one violation per analyzer
// shape, marked in-source with `// want <analyzer> "<substring>"`
// comments on the line the finding must land on. The harness fails on
// both misses (a want with no finding) and noise (a finding with no
// want). The suppress fixture is excluded here — the //lint:allow
// protocol cannot be annotated with same-line want comments — and is
// asserted semantically by TestSuppression instead.

var fixtureTree struct {
	once sync.Once
	snap *Snapshot
	err  error
}

func loadFixtureTree(t *testing.T) *Snapshot {
	t.Helper()
	fixtureTree.once.Do(func() {
		fixtureTree.snap, fixtureTree.err = LoadSnapshot(filepath.Join("testdata", "src"), "fixture")
	})
	if fixtureTree.err != nil {
		t.Fatalf("loading fixture tree: %v", fixtureTree.err)
	}
	return fixtureTree.snap
}

// expectation is one parsed want comment.
type expectation struct {
	file     string // basename
	line     int
	analyzer string
	substr   string
	matched  bool
}

var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

func collectWants(t *testing.T) []*expectation {
	t.Helper()
	var wants []*expectation
	root := filepath.Join("testdata", "src")
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &expectation{
					file:     filepath.Base(p),
					line:     i + 1,
					analyzer: m[1],
					substr:   m[2],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting want comments: %v", err)
	}
	return wants
}

func TestFixtures(t *testing.T) {
	snap := loadFixtureTree(t)
	wants := collectWants(t)
	diags := Run(snap, Analyzers())

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		if base == "suppress.go" {
			continue // asserted by TestSuppression
		}
		matched := false
		for _, w := range wants {
			if w.file == base && w.line == d.Pos.Line && w.analyzer == d.Analyzer &&
				strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected %s finding matching %q, got none",
				w.file, w.line, w.analyzer, w.substr)
		}
	}
}

// TestSuppression pins the //lint:allow protocol against the suppress
// fixture: directives with a reason (same line or line above) suppress;
// a reason-less directive suppresses nothing and is itself reported; a
// directive naming the wrong analyzer suppresses nothing.
func TestSuppression(t *testing.T) {
	snap := loadFixtureTree(t)
	diags := Run(snap, Analyzers())

	byAnalyzer := map[string]int{}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) != "suppress.go" {
			continue
		}
		byAnalyzer[d.Analyzer]++
		switch d.Analyzer {
		case "lint":
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("lint finding with unexpected message: %s", d)
			}
		case "noerrdrop":
			// reasonlessDiscard and wrongAnalyzer — both unsuppressed.
		default:
			t.Errorf("unexpected analyzer on suppress fixture: %s", d)
		}
	}
	if got := byAnalyzer["lint"]; got != 1 {
		t.Errorf("reason-less directives reported: got %d lint findings, want 1", got)
	}
	if got := byAnalyzer["noerrdrop"]; got != 2 {
		t.Errorf("unsuppressed noerrdrop findings: got %d, want 2 (reasonless + wrong-analyzer); "+
			"fewer means a directive suppressed something it must not", got)
	}
}

// --- real-tree regression tests ----------------------------------------

var repoTree struct {
	once sync.Once
	snap *Snapshot
	err  error
}

func loadRepoTree(t *testing.T) *Snapshot {
	t.Helper()
	repoTree.once.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			repoTree.err = err
			return
		}
		mod, err := ModulePath(root)
		if err != nil {
			repoTree.err = err
			return
		}
		repoTree.snap, repoTree.err = LoadSnapshot(root, mod)
	})
	if repoTree.err != nil {
		t.Fatalf("loading repository tree: %v", repoTree.err)
	}
	return repoTree.snap
}

// TestRepoTreeClean is the tree-hygiene gate in test form: the full
// suite over the real module must produce zero unsuppressed findings.
// It is what `make lint` enforces, kept in `go test` too so a plain test
// run catches a regression without the Makefile.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	for _, d := range Run(loadRepoTree(t), Analyzers()) {
		t.Errorf("unexpected finding on clean tree: %s", d)
	}
}

// TestGuardWriteClassification pins guardwrite's view of the real jcf
// package. Lint only fires on mutating-and-unguarded methods, so a
// classifier that silently stops seeing mutation would keep the tree
// "clean" while letting a deleted guardWrite() call through — this test
// makes that drift loud by asserting known mutating entry points are
// still classified mutating AND guarded.
func TestGuardWriteClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	snap := loadRepoTree(t)
	var jcfPkg *Package
	for _, p := range snap.Pkgs {
		if strings.HasSuffix(p.Path, "/internal/jcf") {
			jcfPkg = p
		}
	}
	if jcfPkg == nil {
		t.Fatal("internal/jcf not found in module tree")
	}
	byName := map[string]GuardReport{}
	guardedMutating := 0
	for _, r := range GuardWriteReport(snap, jcfPkg) {
		byName[r.Method] = r
		if r.Guarded && r.Mutates {
			guardedMutating++
		}
	}
	known := []string{
		"CreateProject", "CreateCell", "CreateCellVersion", "CreateVariant",
		"CreateDesignObject", "StartActivity", "FinishActivity",
		"Reserve", "ReleaseReservation", "Publish", "RegisterFlow",
	}
	for _, name := range known {
		r, ok := byName[name]
		if !ok {
			t.Errorf("exported Framework method %s not found by the classifier", name)
			continue
		}
		if !r.Mutates {
			t.Errorf("guardwrite no longer classifies %s as mutating; deleting its guardWrite() call would go unflagged", name)
		}
		if !r.Guarded {
			t.Errorf("guardwrite no longer sees the guardWrite() call in %s", name)
		}
	}
	if guardedMutating < 15 {
		t.Errorf("only %d exported Framework methods classified guarded-and-mutating; expected at least 15 — the classifier has gone blind", guardedMutating)
	}
}

// TestDeliberateBlockingStaysLoud is the loudness test for the
// suppression protocol: the deliberate Snapshot-under-fw.mu in
// jcf.Framework.SaveTo must still be DETECTED by holdblock (RunRaw,
// which skips suppression filtering), and silenced only by its
// //lint:allow annotation (Run). If the raw finding disappears, the
// analyzer has gone blind and the annotation is dead weight; if the
// filtered run reports it, the annotation drifted off its line.
func TestDeliberateBlockingStaysLoud(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	snap := loadRepoTree(t)
	raw := RunRaw(snap, []*Analyzer{HoldBlockAnalyzer})
	found := false
	for _, d := range raw {
		if filepath.Base(d.Pos.Filename) == "persist.go" &&
			strings.Contains(d.Message, "oms.Store.Snapshot") &&
			strings.Contains(d.Message, "jcf.Framework.SaveTo") {
			found = true
		}
	}
	if !found {
		t.Fatal("holdblock no longer detects the deliberate Snapshot-under-fw.mu in SaveTo; " +
			"the //lint:allow there is suppressing nothing — the analyzer went blind")
	}
	for _, d := range Run(snap, []*Analyzer{HoldBlockAnalyzer}) {
		t.Errorf("unsuppressed holdblock finding on clean tree: %s", d)
	}
}
