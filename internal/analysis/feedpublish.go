package analysis

import (
	"go/ast"
)

// feedpublish guards LSN integrity: feed.publish/publishAt/rebase assign
// change-feed positions, and the PR 4 invariant is that assignment
// happens while the touched stripe write locks are held — that is what
// makes feed order a valid serialization of the store. The only
// functions that hold the right locks at the right moment are the oms
// commit helpers (commitApplied, Apply, Delete, Rollback) and the
// replication surface (ApplyReplicated, ResetFromSnapshot). Any new call
// site is flagged: publishing outside the hold would let an LSN escape
// the lock and reorder history for every feed consumer — snapshots,
// notifiers, replicas.
var FeedPublishAnalyzer = &Analyzer{
	Name: "feedpublish",
	Doc:  "feed.publish/publishAt/rebase may only be called from the commit helpers that hold the touched stripes",
	Match: func(p *Package) bool {
		return p.Name == "oms" && p.Types.Scope().Lookup("feed") != nil
	},
	Run: runFeedPublish,
}

// feedPublishAllowed are the commit helpers sanctioned to assign LSNs.
var feedPublishAllowed = map[string]bool{
	"commitApplied":     true, // single-op commit, caller holds the op's stripes
	"Apply":             true, // grouped commit, holds the batch's stripe set
	"Delete":            true, // cascade commit, holds lockAll
	"Rollback":          true, // compensating group, holds lockAll
	"ApplyReplicated":   true, // follower apply, holds lockAll, publishes at primary LSNs
	"ResetFromSnapshot": true, // bootstrap swap, holds lockAll, rebases the feed
}

func runFeedPublish(pass *Pass) {
	decls := funcDecls(pass.Package)
	for fn, fd := range decls {
		if fd.Body == nil {
			continue
		}
		if feedPublishAllowed[fn.Name()] {
			continue
		}
		// The feed's own implementation may touch itself.
		if recvNamedIs(fn, "feed") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || !recvNamedIs(callee, "feed") {
				return true
			}
			switch callee.Name() {
			case "publish", "publishAt", "rebase":
				pass.Reportf(call.Pos(), "%s called from %s, which is not a sanctioned commit helper; LSN assignment must happen under the stripe hold (commitApplied/Apply/Delete/Rollback/ApplyReplicated/ResetFromSnapshot)", callee.Name(), fn.Name())
			}
			return true
		})
	}
}
