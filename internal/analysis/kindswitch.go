package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// kindswitch machine-checks change-kind exhaustiveness: every switch
// over oms.ChangeKind — in the wire codec, feed replay, the notifier,
// replica apply, anywhere in the module — must either cover every
// declared kind or carry an explicit default. Adding a sixth ChangeKind
// const must fail lint at every consumer that has not decided what to
// do with it, instead of silently no-opping the new kind through
// replay, replication, or notification fan-out.
//
// Tag-less switches (`switch { case c.Kind == oms.ChangeCreate: ... }`)
// comparing a ChangeKind somewhere get the same treatment: without a
// default, an unmatched kind falls through silently, and no compiler or
// exhaustiveness reasoning can ever see it — those must carry a default
// or become tagged switches.
var KindSwitchAnalyzer = &Analyzer{
	Name:      "kindswitch",
	Doc:       "switches over oms.ChangeKind must be exhaustive or carry an explicit default",
	RunModule: runKindSwitch,
}

func runKindSwitch(pass *ModulePass) {
	for _, pkg := range pass.Snap.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				if sw.Tag != nil {
					checkTaggedKindSwitch(pass, pkg, sw)
				} else {
					checkTaglessKindSwitch(pass, pkg, sw)
				}
				return true
			})
		}
	}
}

// changeKindType returns t as the oms ChangeKind named type, or nil.
func changeKindType(t types.Type) *types.Named {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return nil
	}
	if n.Obj().Name() == "ChangeKind" && n.Obj().Pkg().Name() == "oms" {
		return n
	}
	return nil
}

// kindConsts enumerates the constants of the ChangeKind type declared
// in its defining package, keyed by exact constant value.
func kindConsts(kind *types.Named) map[string]string {
	out := map[string]string{}
	scope := kind.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), kind) {
			continue
		}
		out[c.Val().ExactString()] = name
	}
	return out
}

func checkTaggedKindSwitch(pass *ModulePass, pkg *Package, sw *ast.SwitchStmt) {
	tagType, ok := pkg.Info.Types[sw.Tag]
	if !ok {
		return
	}
	kind := changeKindType(tagType.Type)
	if kind == nil {
		return
	}
	remaining := kindConsts(kind)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the consumer decided
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				// Non-constant case: exhaustiveness is undecidable
				// here, so demand the default instead.
				pass.Reportf(sw.Pos(), "switch over %s has a non-constant case and no default; add a default arm", kindLabel(kind))
				return
			}
			delete(remaining, tv.Value.ExactString())
		}
	}
	if len(remaining) == 0 {
		return
	}
	missing := make([]string, 0, len(remaining))
	for _, name := range remaining {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s is not exhaustive and has no default: missing %s; an unhandled kind would silently no-op",
		kindLabel(kind), strings.Join(missing, ", "))
}

// checkTaglessKindSwitch flags `switch { case x.Kind == ...: }` shapes:
// condition switches comparing a ChangeKind with no default arm.
func checkTaglessKindSwitch(pass *ModulePass, pkg *Package, sw *ast.SwitchStmt) {
	comparesKind := false
	var kind *types.Named
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // has a default
		}
		for _, e := range cc.List {
			ast.Inspect(e, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				for _, operand := range []ast.Expr{be.X, be.Y} {
					if tv, ok := pkg.Info.Types[operand]; ok {
						if k := changeKindType(tv.Type); k != nil {
							comparesKind = true
							kind = k
						}
					}
				}
				return true
			})
		}
	}
	if comparesKind {
		pass.Reportf(sw.Pos(),
			"tag-less switch comparing %s has no default: an unmatched kind falls through silently; use a tagged switch over the kind or add a default",
			kindLabel(kind))
	}
}

func kindLabel(kind *types.Named) string {
	return kind.Obj().Pkg().Name() + "." + kind.Obj().Name()
}
