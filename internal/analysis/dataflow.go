package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The path-aware dataflow layer: the shared machinery under holdblock
// and releasepath. Two whole-graph facts are computed here, both as
// fixpoint summaries over the call graph in the style of lockSummaries:
//
//   - mayBlock: for every declared function, the set of blocking-call
//     CLASSES its synchronous call tree can reach (network and disk
//     I/O, channel operations, time.Sleep, the module's own
//     commit/barrier entry points), each with one witness step so a
//     finding can print the full call path down to the blocking site.
//   - releaserParams: for every declared function, which of its
//     parameters it releases (calls Close on, returns to a sync.Pool,
//     or forwards to another releasing parameter). releasepath uses
//     this to tell "handing a connection to its closer" apart from
//     "losing a connection".
//
// Like the lock summaries, both are computed eagerly inside
// buildCallGraph — under the Snapshot's sync.Once — so the concurrent
// analyzer goroutines read them without locking, and both iterate the
// graph in sorted node order so witness selection is deterministic.

// --- blocking-call classification --------------------------------------

// blockWitness records how a function reaches one blocking class:
// directly at pos (via == nil, desc names the site) or through a callee.
type blockWitness struct {
	via  *types.Func // nil: blocks directly in this function
	pos  token.Pos   // blocking site, or the call site into via
	desc string      // via == nil: human-readable site, e.g. "os.WriteFile"
}

// blockSummary is the per-function blocking fixpoint state.
type blockSummary struct {
	mayBlock map[string]blockWitness
}

// blockClass reduces an EvBlock description to its class key
// ("chan-recv (range)" → "chan-recv").
func blockClass(desc string) string {
	if i := strings.IndexByte(desc, ' '); i >= 0 {
		return desc[:i]
	}
	return desc
}

// osBlockingFuncs are the package-level os functions that hit the disk.
var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Stat": true, "Lstat": true, "Truncate": true, "Chtimes": true,
}

// osFileBlockingMethods are the *os.File methods that hit the disk.
// Close is deliberately absent: closing is brief, and the tree's
// close-under-teardown-lock sites (Replica.Close) are design, not bugs.
var osFileBlockingMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true,
	"Write": true, "WriteAt": true, "WriteString": true, "WriteTo": true,
	"Seek": true, "Sync": true, "Stat": true, "Truncate": true,
}

// ioBlockingFuncs are the io helpers that pump an underlying stream.
var ioBlockingFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadAll": true, "ReadFull": true, "ReadAtLeast": true,
	"WriteString": true,
}

// classifyExtBlocking classifies a call to a function declared outside
// the module (stdlib, or a module-declared INTERFACE method — interface
// methods have no body and are never call-graph nodes). Returns the
// blocking class key, or ok=false for non-blocking calls.
//
// Deliberate exclusions, because the tree depends on them:
//   - sync.Cond.Wait atomically releases the mutex it is guarded by
//     (the feed subscription pump and Replica.WaitFor idiom);
//   - sync.Mutex/RWMutex Lock: lock-vs-lock interaction is lockgraph's
//     and lockorder's job, not holdblock's;
//   - Close on connections and files: teardown is brief and the repo
//     closes under teardown locks by design.
func classifyExtBlocking(callee *types.Func) (string, bool) {
	if callee == nil || callee.Pkg() == nil {
		return "", false
	}
	name := callee.Name()
	recv := recvNamed(callee)
	recvName := ""
	if recv != nil {
		recvName = recv.Obj().Name()
	}
	// Standard library: match by import path (unambiguous).
	switch callee.Pkg().Path() {
	case "time":
		if recv == nil && name == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if recvName == "WaitGroup" && name == "Wait" {
			return "sync.WaitGroup.Wait", true
		}
	case "os":
		if recv == nil && osBlockingFuncs[name] {
			return "os-io", true
		}
		if recvName == "File" && osFileBlockingMethods[name] {
			return "os-io", true
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "Accept",
			"Read", "Write", "ReadFrom", "WriteTo":
			return "net-io", true
		}
	case "io":
		if recv == nil && ioBlockingFuncs[name] {
			return "io", true
		}
		if recv != nil && (name == "Read" || name == "Write") {
			return "io", true
		}
	case "bufio":
		switch name {
		case "Read", "ReadByte", "ReadRune", "ReadString", "ReadBytes",
			"ReadSlice", "Peek", "Discard", "Fill",
			"Write", "WriteByte", "WriteRune", "WriteString",
			"Flush", "ReadFrom", "WriteTo":
			return "io", true
		}
	}
	// Module interfaces: match by package NAME so the fixture trees
	// (which mirror the real packages by name) exercise the same code.
	switch callee.Pkg().Name() {
	case "repl":
		switch {
		case recvName == "Conn" && (name == "Send" || name == "Recv"):
			return "repl.Conn." + name, true
		case recvName == "Listener" && name == "Accept":
			return "repl.Listener.Accept", true
		case recvName == "Dialer" && name == "Dial":
			return "repl.Dialer.Dial", true
		}
	case "backend":
		if recvName == "Backend" {
			switch name {
			case "Put", "Get", "Delete", "List":
				return "backend." + name, true
			}
		}
	}
	return "", false
}

// classifyModuleBlocking classifies calls to module-DECLARED functions
// that are blocking by contract when entered from outside their own
// package: the store's commit/snapshot entry points serialize on the
// whole stripe set (and a snapshot capture besides), and WaitFor parks
// until the replica catches up. Inside their own package they are
// implementation, not a boundary.
func classifyModuleBlocking(callee *types.Func, callerPkg string) (string, bool) {
	if callee.Pkg() == nil {
		return "", false
	}
	recv := recvNamed(callee)
	if recv == nil {
		return "", false
	}
	pkg, recvName, name := callee.Pkg().Name(), recv.Obj().Name(), callee.Name()
	switch {
	case pkg == "oms" && recvName == "Store" && callerPkg != "oms":
		switch name {
		case "Apply", "ApplyReplicated", "Snapshot", "ResetFromSnapshot", "ReplayChanges":
			return "oms.Store." + name, true
		}
	case pkg == "repl" && recvName == "Replica" && callerPkg != "repl" && name == "WaitFor":
		return "repl.Replica.WaitFor", true
	}
	return "", false
}

// blockSummaries computes every node's mayBlock set to fixpoint.
// Deferred events count (they run before the function returns, while a
// caller's locks are still held); events inside RETURNED closures do
// not (they run, if ever, in the caller — and the tree's returned
// closures are unlockers, which must stay non-blocking anyway).
func (g *CallGraph) blockSummaries() map[*types.Func]*blockSummary {
	if g.blockSums != nil {
		return g.blockSums
	}
	sums := map[*types.Func]*blockSummary{}
	for fn := range g.Nodes {
		sums[fn] = &blockSummary{mayBlock: map[string]blockWitness{}}
	}
	nodes := g.sortedNodes()
	for iter := 0; iter < 4*len(sums)+16; iter++ {
		changed := false
		for _, node := range nodes {
			if recomputeBlockSummary(node, sums, sums[node.Fn]) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	g.blockSums = sums
	return sums
}

func recomputeBlockSummary(node *FuncNode, sums map[*types.Func]*blockSummary, out *blockSummary) bool {
	changed := false
	note := func(class string, w blockWitness) {
		if _, ok := out.mayBlock[class]; !ok {
			out.mayBlock[class] = w
			changed = true
		}
	}
	callerPkg := node.Pkg.Name
	for _, ev := range node.Events {
		if ev.Returned {
			continue
		}
		switch ev.Kind {
		case EvBlock:
			note(blockClass(ev.Desc), blockWitness{pos: ev.Pos, desc: ev.Desc})
		case EvExtCall:
			if class, ok := classifyExtBlocking(ev.Callee); ok {
				note(class, blockWitness{pos: ev.Pos, desc: FuncLabel(ev.Callee)})
			}
		case EvCall:
			if class, ok := classifyModuleBlocking(ev.Callee, callerPkg); ok {
				note(class, blockWitness{pos: ev.Pos, desc: FuncLabel(ev.Callee)})
			}
			if cs := sums[ev.Callee]; cs != nil {
				for class := range cs.mayBlock {
					note(class, blockWitness{via: ev.Callee, pos: ev.Pos})
				}
			}
		}
	}
	return changed
}

// BlockPath renders the witness chain from fn down to the blocking site
// of class, and returns every function label on the way (for allowlist
// matching) plus the rendered path.
func (g *CallGraph) BlockPath(fn *types.Func, class string) (labels []string, path string) {
	sums := g.blockSummaries()
	labels = append(labels, FuncLabel(fn))
	desc := class
	cur := fn
	for range g.Nodes { // bounded walk; witnesses cannot cycle forever
		s := sums[cur]
		if s == nil {
			break
		}
		w, ok := s.mayBlock[class]
		if !ok {
			break
		}
		if w.via == nil {
			desc = w.desc
			break
		}
		labels = append(labels, FuncLabel(w.via))
		cur = w.via
	}
	return labels, strings.Join(labels, " → ") + " → " + desc
}

// --- releaser parameters -----------------------------------------------

// isPoolPut matches (*sync.Pool).Put.
func isPoolPut(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return false
	}
	recv := recvNamed(callee)
	return recv != nil && recv.Obj().Name() == "Pool" && callee.Name() == "Put"
}

// releaserParams computes, to fixpoint, which parameters each declared
// function releases: the body calls Close on the parameter, hands it to
// a sync.Pool, or forwards it to an already-known releasing parameter.
// This is what lets releasepath treat `p.closeConn(c)` and
// `fw.putBatch(b)` as releases rather than escapes.
func (g *CallGraph) releaserParams() map[*types.Func]map[int]bool {
	if g.relParams != nil {
		return g.relParams
	}
	rel := map[*types.Func]map[int]bool{}
	nodes := g.sortedNodes()
	for iter := 0; iter < 2*len(nodes)+16; iter++ {
		changed := false
		for _, node := range nodes {
			if recomputeReleaserParams(g, node, rel) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	g.relParams = rel
	return rel
}

// paramIndexOf maps an identifier to the index of the parameter it
// names, or -1.
func paramIndexOf(info *types.Info, decl *ast.FuncDecl, id *ast.Ident) int {
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || decl.Type.Params == nil {
		return -1
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return -1
}

// calleeParamIndex normalizes an argument position against the callee's
// signature (variadic arguments all land on the final parameter).
func calleeParamIndex(callee *types.Func, argPos int) int {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return argPos
	}
	n := sig.Params().Len()
	if sig.Variadic() && argPos >= n-1 {
		return n - 1
	}
	if argPos >= n {
		return -1
	}
	return argPos
}

func recomputeReleaserParams(g *CallGraph, node *FuncNode, rel map[*types.Func]map[int]bool) bool {
	if node.Decl.Body == nil {
		return false
	}
	info := node.Pkg.Info
	changed := false
	mark := func(idx int) {
		if idx < 0 {
			return
		}
		m := rel[node.Fn]
		if m == nil {
			m = map[int]bool{}
			rel[node.Fn] = m
		}
		if !m[idx] {
			m[idx] = true
			changed = true
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// param.Close() — the direct release.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				mark(paramIndexOf(info, node.Decl, id))
			}
		}
		// Forwarding a param to a releasing position.
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		pool := isPoolPut(callee)
		calleeRel := rel[callee]
		if !pool && calleeRel == nil {
			return true
		}
		for argPos, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			if pool || calleeRel[calleeParamIndex(callee, argPos)] {
				mark(paramIndexOf(info, node.Decl, id))
			}
		}
		return true
	})
	return changed
}

// --- resource acquisition ----------------------------------------------

// acquireSpec describes one acquire-shaped call: what class of resource
// it produces and how that class is released. borrowOnly classes
// (pooled batches) treat an argument-pass to a non-releasing function
// as a borrow — the caller still owns the value and must release it —
// where ordinary classes treat it as an ownership transfer.
type acquireSpec struct {
	class      string
	release    string // how to release, for the finding message
	borrowOnly bool
}

// classifyAcquire matches a call against the acquire-shaped APIs:
// transport dials/accepts, feed subscriptions, OS file handles, pooled
// batch builders. Matching is by result type + function name (so every
// implementation of repl.Dialer counts, not just the interface method).
func classifyAcquire(info *types.Info, call *ast.CallExpr) (acquireSpec, bool) {
	if call == nil {
		return acquireSpec{}, false
	}
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		return acquireSpec{}, false
	}
	name := callee.Name()
	if callee.Pkg().Path() == "os" && recvNamed(callee) == nil {
		switch name {
		case "Open", "OpenFile", "Create", "CreateTemp":
			return acquireSpec{class: "os.File", release: "Close"}, true
		}
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return acquireSpec{}, false
	}
	r0 := namedType(sig.Results().At(0).Type())
	if r0 == nil || r0.Obj().Pkg() == nil {
		return acquireSpec{}, false
	}
	pkg, typ := r0.Obj().Pkg().Name(), r0.Obj().Name()
	switch {
	case pkg == "repl" && typ == "Conn" && (name == "Dial" || name == "Accept"):
		return acquireSpec{class: "repl.Conn", release: "Close"}, true
	case pkg == "repl" && typ == "Listener" && name == "ListenTCP":
		return acquireSpec{class: "repl.Listener", release: "Close"}, true
	case pkg == "oms" && typ == "Subscription":
		return acquireSpec{class: "oms.Subscription", release: "Close"}, true
	case pkg == "oms" && typ == "Batch" && name == "getBatch":
		return acquireSpec{class: "oms.Batch", release: "putBatch", borrowOnly: true}, true
	case pkg == "blobstore" && typ == "Writer" && name == "NewWriter":
		// A streaming CAS writer holds buffered bytes until Commit or
		// Close; a leaked one silently drops the upload. Close after
		// Commit is a no-op, so `defer w.Close()` is the clean shape.
		return acquireSpec{class: "blobstore.Writer", release: "Close"}, true
	case pkg == "blobstore" && typ == "Reader" && name == "Open":
		return acquireSpec{class: "blobstore.Reader", release: "Close"}, true
	}
	return acquireSpec{}, false
}
