package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one finding: where, which analyzer, what.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one whole-module analyzer's run over a Snapshot.
// Module analyzers see every package at once plus the shared call graph.
type ModulePass struct {
	Snap     *Snapshot
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at a source position.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Snap.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved position — used for
// findings anchored in non-Go files like docs/lock-hierarchy.md, which
// have no token.Pos.
func (p *ModulePass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker. Package-local analyzers set Match
// (scoping them to the packages they understand — lockorder only ever
// looks at an OMS kernel) and Run; whole-module analyzers set RunModule
// instead and see the full Snapshot with its shared call graph.
type Analyzer struct {
	Name      string
	Doc       string
	Match     func(p *Package) bool
	Run       func(pass *Pass)
	RunModule func(pass *ModulePass)
}

// Analyzers returns the full jcflint suite in stable order: the five
// package-local analyzers from PR 6, the three whole-module
// call-graph analyzers from PR 7, then the three dataflow analyzers
// (holdblock, releasepath, errflow) built on the blocking/resource
// summaries.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockOrderAnalyzer,
		GuardWriteAnalyzer,
		NoErrDropAnalyzer,
		FeedPublishAnalyzer,
		NoAliasAnalyzer,
		LockGraphAnalyzer,
		ApplyAtomicAnalyzer,
		KindSwitchAnalyzer,
		HoldBlockAnalyzer,
		ReleasePathAnalyzer,
		ErrFlowAnalyzer,
	}
}

// Timing is one analyzer's wall time from a RunTimed call.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Run applies each analyzer to the snapshot, resolves //lint:allow
// suppressions, and returns the surviving findings sorted by position.
// A suppression comment with no reason is itself reported: the escape
// hatch requires writing down why.
func Run(snap *Snapshot, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(snap, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall times. The module is loaded and
// type-checked once (the Snapshot), the call graph is built once, and
// the analyzers run concurrently — each into a private findings slice,
// merged and sorted after the last one finishes, so output order is
// deterministic regardless of scheduling.
func RunTimed(snap *Snapshot, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	diags, timings := runAll(snap, analyzers)
	diags = applySuppressions(snap.Pkgs, diags)
	sortDiags(diags)
	return diags, timings
}

// RunRaw is Run WITHOUT suppression filtering: every finding, including
// ones covered by //lint:allow directives. The loudness tests use it to
// prove a deliberate, annotated violation is still detected — that the
// silence in make lint comes from the annotation, not a blind spot.
func RunRaw(snap *Snapshot, analyzers []*Analyzer) []Diagnostic {
	diags, _ := runAll(snap, analyzers)
	sortDiags(diags)
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

func runAll(snap *Snapshot, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var timings []Timing
	// Build the shared call graph up front so its cost shows up as its
	// own line instead of being billed to whichever module analyzer's
	// goroutine happens to get there first.
	for _, a := range analyzers {
		if a.RunModule != nil {
			start := time.Now()
			snap.CallGraph()
			timings = append(timings, Timing{Analyzer: "(callgraph)", Elapsed: time.Since(start)})
			break
		}
	}
	results := make([][]Diagnostic, len(analyzers))
	perAnalyzer := make([]Timing, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			var local []Diagnostic
			if a.RunModule != nil {
				a.RunModule(&ModulePass{Snap: snap, analyzer: a, diags: &local})
			} else {
				for _, pkg := range snap.Pkgs {
					if a.Match != nil && !a.Match(pkg) {
						continue
					}
					a.Run(&Pass{Package: pkg, analyzer: a, diags: &local})
				}
			}
			results[i] = local
			perAnalyzer[i] = Timing{Analyzer: a.Name, Elapsed: time.Since(start)}
		}()
	}
	wg.Wait()
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	timings = append(timings, perAnalyzer...)
	return diags, timings
}

// allowDirective is a parsed "//lint:allow <analyzer> <reason>" comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
}

// collectAllows gathers every lint:allow directive in the package,
// keyed by file:line. A directive suppresses matching findings on its
// own line and on the line directly below (so it can sit above a long
// statement).
func collectAllows(pkgs []*Package) map[string][]allowDirective {
	allows := map[string][]allowDirective{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					d := allowDirective{pos: pkg.Fset.Position(c.Pos())}
					if len(fields) > 0 {
						d.analyzer = fields[0]
						d.reason = strings.Join(fields[1:], " ")
					}
					key := d.pos.Filename
					allows[key] = append(allows[key], d)
				}
			}
		}
	}
	return allows
}

// applySuppressions filters findings covered by a lint:allow directive
// and converts reason-less directives into findings of their own.
func applySuppressions(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	allows := collectAllows(pkgs)
	var out []Diagnostic
	used := map[*allowDirective]bool{}
	for _, d := range diags {
		suppressed := false
		for i := range allows[d.Pos.Filename] {
			a := &allows[d.Pos.Filename][i]
			if a.analyzer != d.Analyzer {
				continue
			}
			if a.pos.Line == d.Pos.Line || a.pos.Line == d.Pos.Line-1 {
				if a.reason != "" {
					suppressed = true
					used[a] = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	// A directive without a reason never suppresses anything — surface
	// it so it gets a reason or gets deleted.
	for _, ds := range allows {
		for i := range ds {
			a := &ds[i]
			if a.reason == "" {
				out = append(out, Diagnostic{
					Pos:      a.pos,
					Analyzer: "lint",
					Message:  "lint:allow directive needs a reason: //lint:allow <analyzer> <why this is safe>",
				})
			}
		}
	}
	return out
}

// --- shared AST/type helpers -------------------------------------------

// funcDecls maps every function and method declared in the package to
// its declaration.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				m[obj] = fd
			}
		}
	}
	return m
}

// calleeFunc resolves the called function object of a call expression,
// if it statically resolves to a named function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeNameIs reports whether t (through pointers) is a named type with
// the given name.
func typeNameIs(t types.Type, name string) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == name
}

// recvNamed returns the named type of a method's receiver, nil for
// plain functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedType(sig.Recv().Type())
}

// returnsError reports whether the call's result type is or contains an
// error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (e.g. st for st.stripes[i].mu), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
