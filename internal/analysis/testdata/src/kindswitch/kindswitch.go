// Package oms (fixture) seeds kindswitch violations: switches over
// ChangeKind that are neither exhaustive nor defaulted, tag-less kind
// comparisons, and non-constant cases.
package oms

// ChangeKind mirrors the change-feed record kind by name.
type ChangeKind uint8

// The kinds; the analyzer enumerates these from the defining package.
const (
	ChangeCreate ChangeKind = iota
	ChangeSet
	ChangeLink
	ChangeUnlink
	ChangeDelete
)

// Change mirrors the feed record shape.
type Change struct {
	Kind ChangeKind
}

// Exhaustive covers every kind — clean without a default.
func Exhaustive(c Change) string {
	switch c.Kind {
	case ChangeCreate:
		return "create"
	case ChangeSet:
		return "set"
	case ChangeLink, ChangeUnlink:
		return "link"
	case ChangeDelete:
		return "delete"
	}
	return ""
}

// Defaulted handles the remainder explicitly — clean.
func Defaulted(c Change) string {
	switch c.Kind {
	case ChangeCreate:
		return "create"
	default:
		return "other"
	}
}

// Missing is neither exhaustive nor defaulted.
func Missing(c Change) string {
	switch c.Kind { // want kindswitch "not exhaustive"
	case ChangeCreate:
		return "create"
	case ChangeSet:
		return "set"
	}
	return ""
}

// NonConstCase compares against a runtime kind — coverage can't be
// proven, so a default is required.
func NonConstCase(c Change, k ChangeKind) string {
	switch c.Kind { // want kindswitch "non-constant case"
	case k:
		return "match"
	}
	return ""
}

// Tagless compares kinds in a tag-less switch with no default.
func Tagless(c Change) string {
	switch { // want kindswitch "tag-less switch"
	case c.Kind == ChangeCreate:
		return "create"
	}
	return ""
}
