// Package oms (fixture) seeds lockorder violations: the analyzer must
// flag indexed stripe acquisition, in-loop acquisition, and hand-ordered
// multi-stripe holds, while accepting the sorted helpers and the
// single-stripe fast path.
package oms

import "sync"

type stripe struct {
	mu sync.RWMutex
}

// Store mirrors the kernel's striped layout.
type Store struct {
	stripes [4]stripe
}

// lockPair is on the allowlist: sorted indexing is sanctioned here.
func (st *Store) lockPair(i, j int) {
	if j < i {
		i, j = j, i
	}
	st.stripes[i].mu.Lock()
	if i != j {
		st.stripes[j].mu.Lock()
	}
}

// lockAll is on the allowlist: the ascending loop is the sanctioned
// whole-store acquisition.
func (st *Store) lockAll() {
	for i := range st.stripes {
		st.stripes[i].mu.Lock()
	}
}

// singleOp takes exactly one stripe lock directly — the sanctioned
// single-op fast path; must NOT be flagged.
func (st *Store) singleOp(s *stripe) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// badIndexed acquires by raw-indexing the stripe array outside the
// sorted helpers.
func (st *Store) badIndexed(i int) {
	st.stripes[i].mu.Lock() // want lockorder "indexing the stripe array"
	st.stripes[i].mu.Unlock()
}

// badLoop acquires stripe locks inside a loop — a multi-acquisition.
func (st *Store) badLoop(ss []*stripe) {
	for _, s := range ss {
		s.mu.RLock() // want lockorder "inside a loop"
		s.mu.RUnlock()
	}
}

// badPair hand-orders two stripes: the second acquisition while the
// first is held cannot be proven ordered.
func (st *Store) badPair(a, b *stripe) {
	a.mu.Lock()
	b.mu.Lock() // want lockorder "second stripe lock"
	b.mu.Unlock()
	a.mu.Unlock()
}

// reacquireSame re-locks the SAME stripe root sequentially after
// releasing — one lock live at a time; must NOT be flagged.
func (st *Store) reacquireSame(s *stripe) {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.RLock()
	s.mu.RUnlock()
}
