// Package repl (fixture) seeds lockgraph violations: the fixture doc
// declares Publisher.mu → Replica.mu, so acquiring them the other way
// round is both an undeclared edge and — together with the declared
// direction — a lock-order cycle. A self-reacquisition seeds the
// self-deadlock shape.
package repl

import "sync"

// Publisher mirrors the replication publisher's lock by name.
type Publisher struct {
	mu sync.Mutex
	n  int
}

// Replica mirrors the replica state lock by name.
type Replica struct {
	mu sync.Mutex
	n  int
}

// DeclaredOrder acquires Replica.mu under Publisher.mu — the declared
// direction, clean.
func DeclaredOrder(p *Publisher, r *Replica) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	p.n++
}

// lockReplica is the helper the transitive witness path must name.
func lockReplica(r *Replica) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// DeclaredTransitive reaches the declared edge through a helper — the
// edge is seen across the call, still clean.
func DeclaredTransitive(p *Publisher, r *Replica) {
	p.mu.Lock()
	defer p.mu.Unlock()
	lockReplica(r)
	p.n++
}

// UndeclaredOrder acquires Publisher.mu under Replica.mu: the edge is
// not declared, and with DeclaredOrder's edge it closes a cycle.
func UndeclaredOrder(p *Publisher, r *Replica) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p.mu.Lock() // want lockgraph "edge not declared" // want lockgraph "lock-order cycle"
	p.n++
	p.mu.Unlock()
	r.n++
}

// Reacquire takes Publisher.mu twice on one path.
func Reacquire(p *Publisher) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mu.Lock() // want lockgraph "self-deadlock"
	p.n++
	p.mu.Unlock()
}
