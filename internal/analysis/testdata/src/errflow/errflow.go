// Package errflow seeds the errflow analyzer's shapes: sentinel errors
// compared with == / != and matched by switch case (all of which break
// under wrapping), an error wrapped with %v (which strips the chain),
// and the clean errors.Is / %w / nil-check idioms.
package errflow

import (
	"errors"
	"fmt"
	"io"
)

var ErrGap = errors.New("feed gap")

func CompareEq(err error) bool {
	return err == ErrGap // want errflow "use errors.Is"
}

func CompareNeq(err error) bool {
	return err != io.EOF // want errflow "use errors.Is"
}

func SwitchCase(err error) int {
	switch err {
	case ErrGap: // want errflow "switch case"
		return 1
	}
	return 0
}

func WrapOpaque(err error) error {
	return fmt.Errorf("bootstrap: %v", err) // want errflow "use %w"
}

func CleanIs(err error) bool {
	return errors.Is(err, ErrGap)
}

func CleanWrap(err error) error {
	return fmt.Errorf("bootstrap: %w", err)
}

func CleanNilCheck(err error) bool {
	return err == nil
}
