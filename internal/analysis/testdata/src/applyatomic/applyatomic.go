// Package jcf (fixture) seeds applyatomic violations: exported
// Framework methods whose call tree performs two or more separate store
// mutations — directly, through helpers, or in a loop — instead of
// staging them in one Batch committed by a single Store.Apply.
package jcf

import "errors"

var errReadOnly = errors.New("read-only replica")

// Batch mirrors the staging API shape.
type Batch struct{ ops []int }

// Store mirrors the mutating surface the analyzer recognizes by name.
type Store struct{ n int }

func (s *Store) Apply(b *Batch) error { s.n += len(b.ops); return nil }

func (s *Store) Set(k, v int) { s.n++ }

func (s *Store) Link(a, b int) { s.n++ }

func (s *Store) Begin() {}

// Framework mirrors the desktop API shape.
type Framework struct {
	store   *Store
	replica bool
}

func (fw *Framework) guardWrite() error {
	if fw.replica {
		return errReadOnly
	}
	return nil
}

// Batched stages both mutations in one batch — clean.
func (fw *Framework) Batched(x int) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	b := &Batch{}
	b.ops = append(b.ops, x, x)
	return fw.store.Apply(b)
}

// Sequential performs two separate store mutations back to back.
func (fw *Framework) Sequential(x int) error { // want applyatomic "without one Batch"
	if err := fw.guardWrite(); err != nil {
		return err
	}
	fw.store.Set(x, 1)
	fw.store.Link(x, 2)
	return nil
}

// setOne hides one mutation behind a helper.
func (fw *Framework) setOne(x int) {
	fw.store.Set(x, 1)
}

// Transitive reaches its two mutations only through helpers.
func (fw *Framework) Transitive(x int) error { // want applyatomic "without one Batch"
	if err := fw.guardWrite(); err != nil {
		return err
	}
	fw.setOne(x)
	fw.setOne(x + 1)
	return nil
}

// Looped mutates once per iteration — a loop counts as two or more.
func (fw *Framework) Looped(xs []int) error { // want applyatomic "without one Batch"
	if err := fw.guardWrite(); err != nil {
		return err
	}
	for _, x := range xs {
		fw.store.Set(x, 1)
	}
	return nil
}

// BeginBarrier uses Begin as a barrier before one Apply — Begin is
// deliberately not a mutation group, so this is clean.
func (fw *Framework) BeginBarrier(x int) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	fw.store.Begin()
	b := &Batch{}
	b.ops = append(b.ops, x)
	return fw.store.Apply(b)
}
