// Package repl seeds the releasepath analyzer's shapes: a connection
// leaked on one error return, a discarded acquire, a redial loop that
// leaks once per iteration, and the clean idioms — deferred close,
// close-on-every-path, escape by return, escape by store.
package repl

import (
	"errors"
	"os"
)

type Conn interface {
	Close() error
	Send(b []byte) error
}

type Dialer interface {
	Dial(addr string) (Conn, error)
}

var errNoRoute = errors.New("no route")

// LeakOnError closes the conn on the happy path but leaks it when the
// hello frame fails — the classic mid-function early return.
func LeakOnError(d Dialer) error {
	c, err := d.Dial("primary") // want releasepath "not released on every path"
	if err != nil {
		return err
	}
	if err := c.Send([]byte("hello")); err != nil {
		return errNoRoute // leaks c
	}
	return c.Close()
}

// Discard never binds the conn at all.
func Discard(d Dialer) {
	_, _ = d.Dial("primary") // want releasepath "discarded"
}

// RedialForever leaks the previous conn every time the send fails and
// the loop comes back around for a fresh dial.
func RedialForever(d Dialer) {
	for {
		c, err := d.Dial("primary") // want releasepath "loops back"
		if err != nil {
			continue
		}
		if c.Send([]byte("ping")) == nil {
			_ = c.Close()
			continue
		}
	}
}

// ReadHeader leaks the file when the read fails.
func ReadHeader(path string) ([]byte, error) {
	f, err := os.Open(path) // want releasepath "not released on every path"
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return nil, err // leaks f
	}
	_ = f.Close()
	return buf, nil
}

// DeferClose is the canonical clean shape: one deferred release covers
// every path, panics included.
func DeferClose(d Dialer) error {
	c, err := d.Dial("primary")
	if err != nil {
		return err
	}
	defer c.Close()
	return c.Send([]byte("hello"))
}

// CloseEveryPath releases explicitly on both exits.
func CloseEveryPath(d Dialer) error {
	c, err := d.Dial("primary")
	if err != nil {
		return err
	}
	if err := c.Send([]byte("hello")); err != nil {
		_ = c.Close()
		return err
	}
	return c.Close()
}

// Open transfers ownership to the caller — escape by return.
func Open(d Dialer) (Conn, error) {
	c, err := d.Dial("primary")
	if err != nil {
		return nil, err
	}
	if err := c.Send([]byte("hello")); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

type pool struct {
	conns []Conn
}

// add stores the conn — escape by store; the pool owns it now.
func (p *pool) add(d Dialer) error {
	c, err := d.Dial("primary")
	if err != nil {
		return err
	}
	p.conns = append(p.conns, c)
	return nil
}
