// Package blobstore seeds the releasepath analyzer's CAS handle shapes:
// a streaming writer leaked on an error return (its buffered bytes are
// silently dropped), a discarded reader, and the clean idioms — the
// defer-Close-then-Commit pattern (Close after Commit is a no-op) and
// ownership transfer by return.
package blobstore

import "errors"

type Ref struct {
	Digest [32]byte
	Size   int64
}

type Writer struct{}

func (w *Writer) Write(p []byte) (int, error) { return len(p), nil }
func (w *Writer) Commit() (Ref, error)        { return Ref{}, nil }
func (w *Writer) Close() error                { return nil }

type Reader struct{}

func (r *Reader) Read(p []byte) (int, error) { return 0, nil }
func (r *Reader) Close() error               { return nil }

type Store struct{}

func (s *Store) NewWriter() *Writer            { return &Writer{} }
func (s *Store) Open(ref Ref) (*Reader, error) { return &Reader{}, nil }

var errShort = errors.New("short design data")

// LeakWriterOnError aborts without Close when the write fails — the
// buffered upload is dropped on the floor with no abort accounting.
func LeakWriterOnError(s *Store, data []byte) (Ref, error) {
	w := s.NewWriter() // want releasepath "not released on every path"
	if _, err := w.Write(data); err != nil {
		return Ref{}, err // leaks w
	}
	return w.Commit()
}

// DiscardReader never binds the handle at all.
func DiscardReader(s *Store, ref Ref) {
	_, _ = s.Open(ref) // want releasepath "discarded"
}

// LeakReaderOnError closes on the happy path only.
func LeakReaderOnError(s *Store, ref Ref) ([]byte, error) {
	r, err := s.Open(ref) // want releasepath "not released on every path"
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	if _, err := r.Read(buf); err != nil {
		return nil, errShort // leaks r
	}
	_ = r.Close()
	return buf, nil
}

// PutStream is the canonical clean shape: defer Close covers every
// path (abort on error exits, no-op after the successful Commit).
func PutStream(s *Store, data []byte) (Ref, error) {
	w := s.NewWriter()
	defer w.Close()
	if _, err := w.Write(data); err != nil {
		return Ref{}, err
	}
	return w.Commit()
}

// OpenStream transfers ownership of the reader to the caller.
func OpenStream(s *Store, ref Ref) (*Reader, error) {
	r, err := s.Open(ref)
	if err != nil {
		return nil, err
	}
	return r, nil
}
