// Package repl seeds the holdblock analyzer's shapes: direct blocking
// under a named lock, blocking reached transitively through a helper,
// channel operations under a deferred unlock, the non-blocking
// select-with-default idiom (clean), and an allowlisted lock (the
// fixture hierarchy doc allows time.Sleep under repl.Replica.mu).
package repl

import (
	"sync"
	"time"
)

type Publisher struct {
	mu sync.Mutex
	ch chan int
}

// SleepUnderLock blocks directly while holding the session-table lock.
func (p *Publisher) SleepUnderLock() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want holdblock "blocking call (time.Sleep) while holding repl.Publisher.mu"
	p.mu.Unlock()
}

// SendUnderLock parks on an unbuffered channel with the lock held via
// defer — the unlock runs only after the send completes.
func (p *Publisher) SendUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ch <- 1 // want holdblock "blocking call (chan-send) while holding repl.Publisher.mu"
}

// slowHelper blocks; it takes no lock itself, so only callers that hold
// one are findings.
func slowHelper() {
	time.Sleep(time.Millisecond)
}

// TransitiveUnderLock reaches the sleep through the helper — the
// finding lands on the call edge, with the witness path through
// slowHelper.
func (p *Publisher) TransitiveUnderLock() {
	p.mu.Lock()
	slowHelper() // want holdblock "repl.slowHelper"
	p.mu.Unlock()
}

// NonBlockingSend is the sanctioned delivery idiom: select with a
// default never parks, so holding the lock across it is fine.
func (p *Publisher) NonBlockingSend() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 1:
	default:
	}
}

// SleepOutsideLock blocks only after the unlock — clean.
func (p *Publisher) SleepOutsideLock() {
	p.mu.Lock()
	p.mu.Unlock()
	time.Sleep(time.Millisecond)
}

type Replica struct {
	mu sync.Mutex
}

// AllowedSleep blocks under repl.Replica.mu, which the fixture
// hierarchy doc's blocking-call allowlist permits for time.Sleep —
// clean, proving the allowlist row is honored.
func (r *Replica) AllowedSleep() {
	r.mu.Lock()
	time.Sleep(time.Millisecond)
	r.mu.Unlock()
}
