// Package jcf (fixture) seeds guardwrite violations: exported Framework
// methods that reach a Store mutator or write a framework map without
// calling guardWrite() first, including mutation reached only through an
// unexported helper.
package jcf

import (
	"errors"

	"fixture/storeops"
)

var errReadOnly = errors.New("read-only replica")

// Store mirrors the mutating surface the analyzer recognizes by name.
type Store struct{ n int }

func (s *Store) Apply(x int) (int, error) { s.n += x; return s.n, nil }

func (s *Store) Get() int { return s.n }

// Framework mirrors the desktop API shape: a store plus framework maps.
type Framework struct {
	store        *Store
	ops          *storeops.Store
	reservations map[int]string
	replica      bool
}

func (fw *Framework) guardWrite() error {
	if fw.replica {
		return errReadOnly
	}
	return nil
}

// Guarded guards before mutating — clean.
func (fw *Framework) Guarded(x int) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	_, err := fw.store.Apply(x)
	return err
}

// ReadOnly never mutates — clean without a guard.
func (fw *Framework) ReadOnly() int {
	return fw.store.Get()
}

// Unguarded reaches Store.Apply with no guard.
func (fw *Framework) Unguarded(x int) error { // want guardwrite "does not call guardWrite"
	_, err := fw.store.Apply(x)
	return err
}

// helperMut is the unexported mutation the propagation must see through.
func (fw *Framework) helperMut(x int) {
	fw.reservations[x] = "held"
}

// UnguardedTransitive mutates only through an unguarded helper.
func (fw *Framework) UnguardedTransitive(x int) { // want guardwrite "does not call guardWrite"
	fw.helperMut(x)
}

// GuardedTransitive reaches mutation only through a self-guarding
// callee — clean: the callee rejects replica writes on its own.
func (fw *Framework) GuardedTransitive(x int) error {
	return fw.Guarded(x)
}

// LateGuard mutates before the guard: the guard must be the prologue.
func (fw *Framework) LateGuard(x int) error {
	fw.reservations[x] = "held" // want guardwrite "before calling guardWrite"
	return fw.guardWrite()
}

// DeleteEntry mutates through the delete builtin on a framework map.
func (fw *Framework) DeleteEntry(x int) { // want guardwrite "does not call guardWrite"
	delete(fw.reservations, x)
}

// UnguardedCrossPackage mutates only through a helper in another
// package — the module-wide propagation must still see it.
func (fw *Framework) UnguardedCrossPackage() error { // want guardwrite "does not call guardWrite"
	return storeops.Touch(fw.ops)
}

// GuardedCrossPackage is the same call, guarded — clean.
func (fw *Framework) GuardedCrossPackage() error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	return storeops.Touch(fw.ops)
}
