// Package oms (fixture) seeds feedpublish violations: LSN assignment
// (feed.publish/publishAt/rebase) from functions outside the sanctioned
// commit helpers.
package oms

type feed struct{ lsn uint64 }

func (f *feed) publish() uint64      { f.lsn++; return f.lsn }
func (f *feed) publishAt(lsn uint64) { f.lsn = lsn }
func (f *feed) rebase(lsn uint64)    { f.lsn = lsn }

// Store mirrors the kernel: a store owning its change feed.
type Store struct{ feed feed }

// commitApplied is a sanctioned commit helper — clean.
func (st *Store) commitApplied() uint64 {
	return st.feed.publish()
}

// Apply is a sanctioned commit helper — clean.
func (st *Store) Apply() uint64 {
	return st.feed.publish()
}

// ApplyReplicated is sanctioned to publish at explicit LSNs — clean.
func (st *Store) ApplyReplicated(lsn uint64) {
	st.feed.publishAt(lsn)
}

// sneakyPublish assigns an LSN outside the allowlist.
func (st *Store) sneakyPublish() uint64 {
	return st.feed.publish() // want feedpublish "not a sanctioned commit helper"
}

// Reset rebases the feed outside the allowlist.
func (st *Store) Reset(lsn uint64) {
	st.feed.rebase(lsn) // want feedpublish "not a sanctioned commit helper"
}
