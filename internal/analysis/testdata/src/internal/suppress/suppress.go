// Package suppress (fixture) exercises the //lint:allow protocol: a
// directive with a reason suppresses a finding on its own line or the
// line below; a reason-less directive suppresses nothing and is itself
// reported. Asserted semantically by TestSuppression (no want comments —
// a want comment cannot share a line with the directive under test).
package suppress

import "errors"

func mayFail() error { return errors.New("x") }

// allowedSameLine is suppressed by a same-line directive with a reason.
func allowedSameLine() {
	_ = mayFail() //lint:allow noerrdrop fixture: deliberate discard, reason given
}

// allowedLineAbove is suppressed by a directive on the line above.
func allowedLineAbove() {
	//lint:allow noerrdrop fixture: directive above the statement also covers it
	_ = mayFail()
}

// reasonlessDiscard is NOT suppressed: the directive has no reason, so
// it suppresses nothing and is reported as a finding of its own.
func reasonlessDiscard() {
	//lint:allow noerrdrop
	_ = mayFail()
}

// wrongAnalyzer is NOT suppressed: the directive names a different
// analyzer than the finding.
func wrongAnalyzer() {
	_ = mayFail() //lint:allow lockorder fixture: names the wrong analyzer
}
