// Package noerrdrop (fixture) seeds discarded-error violations under an
// internal/ path: bare call statements and blank assignments dropping an
// error, alongside the shapes that must stay clean (handled errors, fmt
// printing, in-memory writers).
package noerrdrop

import (
	"bytes"
	"errors"
	"fmt"
)

func mayFail() error { return errors.New("boom") }

func mayFail2() (int, error) { return 0, nil }

// dropBare discards an error via a bare call statement.
func dropBare() {
	mayFail() // want noerrdrop "result of mayFail discarded"
}

// dropBlank discards through blank assignments.
func dropBlank() {
	_ = mayFail()     // want noerrdrop "error from mayFail assigned to _"
	_, _ = mayFail2() // want noerrdrop "error from mayFail2 assigned to _"
}

// handled returns the error — clean.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// partiallyUsed keeps the error — clean (not all-blank).
func partiallyUsed() error {
	_, err := mayFail2()
	return err
}

// printing exercises the fmt and in-memory-writer exclusions — clean.
func printing() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "x=%d", 1)
	buf.WriteString("!")
	fmt.Println("report written")
	return buf.String()
}
