// Package storeops (fixture) hosts a cross-package mutation helper:
// a jcf fixture method that mutates ONLY through this package exercises
// guardwrite's module-wide propagation — the PR 6 version stopped at
// the package boundary and would have gone quiet exactly here.
package storeops

// Store mirrors the mutating surface the analyzer recognizes by name.
type Store struct{ n int }

func (s *Store) Apply(x int) (int, error) { s.n += x; return s.n, nil }

// Touch mutates the store on the caller's behalf.
func Touch(s *Store) error {
	_, err := s.Apply(1)
	return err
}
