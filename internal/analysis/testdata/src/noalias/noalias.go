// Package oms (fixture) seeds noalias violations: exported API handing
// internal maps and slices out by reference, from receiver fields,
// elements of receiver fields, and package-level state.
package oms

// Store mirrors an API type with internal collection state.
type Store struct {
	classes map[string]int
	order   []string
	byClass map[string][]string
}

var cfg = struct {
	items map[string]int
}{items: map[string]int{}}

// Classes leaks the internal map by reference.
func (st *Store) Classes() map[string]int {
	return st.classes // want noalias "internal map by reference"
}

// Order leaks the internal slice by reference.
func (st *Store) Order() []string {
	return st.order // want noalias "internal slice by reference"
}

// Members leaks an element slice of an internal map.
func (st *Store) Members(c string) []string {
	return st.byClass[c] // want noalias "internal slice by reference"
}

// Items leaks package-level state.
func Items() map[string]int {
	return cfg.items // want noalias "package-rooted"
}

// ClassesCopy returns a fresh copy — clean.
func (st *Store) ClassesCopy() map[string]int {
	out := make(map[string]int, len(st.classes))
	for k, v := range st.classes {
		out[k] = v
	}
	return out
}

// OrderCopy returns a fresh copy — clean.
func (st *Store) OrderCopy() []string {
	out := make([]string, len(st.order))
	copy(out, st.order)
	return out
}

// Count returns a scalar — clean.
func (st *Store) Count() int {
	return len(st.classes)
}
