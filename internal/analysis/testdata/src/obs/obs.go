// Package obs (fixture) exercises the obs.Registry.mu tracking: the
// registry lock is declared as a strict leaf, so blocking under it or
// re-entering it must stay loud, while the copy-then-release shape the
// real exposition path uses is clean.
package obs

import (
	"sync"
	"time"
)

// Registry mirrors the metrics registry's lock by name.
type Registry struct {
	mu   sync.Mutex
	list []int
}

// Snapshot copies the entry list under the leaf lock and evaluates
// outside it — the clean shape exposition uses.
func (r *Registry) Snapshot() []int {
	r.mu.Lock()
	out := append([]int(nil), r.list...)
	r.mu.Unlock()
	return out
}

// SleepUnderMu blocks while holding the registry lock — the leaf
// contract forbids it.
func (r *Registry) SleepUnderMu() {
	r.mu.Lock()
	defer r.mu.Unlock()
	time.Sleep(time.Millisecond) // want holdblock "blocking call (time.Sleep) while holding obs.Registry.mu"
}

// NestUnderMu acquires a second registry's lock under the first; the
// lock is tracked by name, so this is a self-reacquisition.
func NestUnderMu(a, b *Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockgraph "self-deadlock"
	b.list = append(b.list, 1)
	b.mu.Unlock()
}
