package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// releasepath is the resource-leak analyzer: every value obtained from
// an acquire-shaped call (a transport Dial/Accept connection, a feed
// subscription, an os.File, a pooled batch builder) must reach its
// release on EVERY path out of the function — including early error
// returns — or demonstrably escape: be returned, stored into a field,
// map, slice, or channel, captured by a closure or goroutine, or handed
// to a function that releases that parameter (the releaserParams
// fixpoint: closeConn, noteCloseErr, putBatch). A deferred release
// covers every path at once, panics included.
//
// The walk is a structural abstract interpretation of the body: one
// pass over the statement tree tracking, per acquired variable, whether
// it is still held on the current path. Branches fork the state and
// merge at the join (held on ANY live branch stays held); the
// `v, err := acquire(); if err != nil` idiom is recognized so the
// error branch does not count as holding a value that was never
// produced. Constructs the walk cannot follow precisely — goto, labeled
// break/continue — drop tracking for the function (conservative
// silence, never a false positive).
var ReleasePathAnalyzer = &Analyzer{
	Name: "releasepath",
	Doc:  "acquired resources (conns, subscriptions, files, pooled batches) released or escaped on every path",
	RunModule: func(pass *ModulePass) {
		g := pass.Snap.CallGraph()
		rel := g.releaserParams()
		for _, node := range g.sortedNodes() {
			if node.Decl.Body == nil {
				continue
			}
			runReleasePath(pass, g, rel, node.Pkg, node.Decl.Body)
			// Function literals get their own independent walk:
			// resources acquired inside a goroutine body or callback
			// must balance within it.
			ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					runReleasePath(pass, g, rel, node.Pkg, lit.Body)
				}
				return true
			})
		}
	},
}

// resource is one tracked acquired value.
type resource struct {
	obj    *types.Var
	spec   acquireSpec
	pos    token.Pos
	src    string     // label of the acquiring call, e.g. "repl.Dialer.Dial"
	errObj *types.Var // the paired error result of the acquire, if any
	okObj  *types.Var // the paired bool ok-result of the acquire, if any
}

// rpWalker carries one body's walk state.
type rpWalker struct {
	pass     *ModulePass
	g        *CallGraph
	rel      map[*types.Func]map[int]bool
	info     *types.Info
	byVar    map[*types.Var]*resource
	reported map[*types.Var]bool
	bailed   bool // goto/labeled-branch seen: suppress all findings
	loops    []*loopFrame
}

// env maps each live tracked resource to whether it is still held.
// A resource leaves the env (or flips to false) once released or
// escaped; merging keeps it held if ANY live branch still holds it.
type env map[*types.Var]bool

func cloneEnv(e env) env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// mergeEnv joins branch exits: held anywhere → held.
func mergeEnv(envs ...env) env {
	out := env{}
	for _, e := range envs {
		for k, v := range e {
			if v {
				out[k] = true
			} else if _, ok := out[k]; !ok {
				out[k] = false
			}
		}
	}
	return out
}

// loopFrame accumulates the envs flowing out of a loop via break and
// back to its head via continue.
type loopFrame struct {
	breaks []env
	conts  []env
}

func runReleasePath(pass *ModulePass, g *CallGraph, rel map[*types.Func]map[int]bool, pkg *Package, body *ast.BlockStmt) {
	w := &rpWalker{
		pass:     pass,
		g:        g,
		rel:      rel,
		info:     pkg.Info,
		byVar:    map[*types.Var]*resource{},
		reported: map[*types.Var]bool{},
	}
	out, term := w.walkStmts(body.List, env{})
	if !term {
		w.reportHeld(out, body.End(), "falls off the end of the function")
	}
}

// report flags every resource still held in e at an exit.
func (w *rpWalker) reportHeld(e env, exit token.Pos, how string) {
	if w.bailed {
		return
	}
	for obj, held := range e {
		if !held {
			continue
		}
		res := w.byVar[obj]
		if res == nil || w.reported[obj] {
			continue
		}
		w.reported[obj] = true
		exitPos := w.pass.Snap.Fset.Position(exit)
		w.pass.Reportf(res.pos,
			"%s %q from %s is not released on every path: the path that %s (%s:%d) still holds it — release it with %s, store/return it, or annotate //lint:allow releasepath",
			res.spec.class, obj.Name(), res.src, how,
			filepathBase(exitPos.Filename), exitPos.Line, res.spec.release)
	}
}

func filepathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}

// escape drops a resource from tracking without a finding: ownership
// moved somewhere the walk cannot follow, which is the safe direction.
func escape(e env, obj *types.Var) {
	if _, ok := e[obj]; ok {
		e[obj] = false
	}
}

// trackedIdent resolves an expression to a live tracked resource var.
func (w *rpWalker) trackedIdent(e env, x ast.Expr) *types.Var {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := w.info.Uses[id].(*types.Var)
	if !ok {
		obj, ok = w.info.Defs[id].(*types.Var)
		if !ok {
			return nil
		}
	}
	if _, live := e[obj]; !live {
		return nil
	}
	return obj
}

// --- statement walk ----------------------------------------------------

func (w *rpWalker) walkStmts(list []ast.Stmt, e env) (env, bool) {
	for _, s := range list {
		var term bool
		e, term = w.walkStmt(s, e)
		if term {
			return e, true
		}
	}
	return e, false
}

func (w *rpWalker) walkStmt(s ast.Stmt, e env) (env, bool) {
	switch ss := s.(type) {
	case *ast.AssignStmt:
		return w.walkAssign(ss, e), false
	case *ast.DeclStmt:
		if gd, ok := ss.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) == 1 && len(vs.Values) == 1 {
					if spec, ok := classifyAcquire(w.info, callOf(vs.Values[0])); ok {
						w.track(e, vs.Names[0], nil, nil, callOf(vs.Values[0]), spec)
						continue
					}
				}
				for _, v := range vs.Values {
					w.scanExpr(v, e)
				}
			}
		}
		return e, false
	case *ast.ExprStmt:
		if call := callOf(ss.X); call != nil {
			if spec, ok := classifyAcquire(w.info, call); ok && !w.bailed {
				w.pass.Reportf(call.Pos(),
					"%s from %s is discarded: the result is never bound, so it can never be released with %s",
					spec.class, acquireLabel(w.info, call), spec.release)
				w.scanCallArgs(call, e)
				return e, false
			}
			if isTerminalCall(w.info, call) {
				w.scanExpr(ss.X, e)
				return e, true
			}
		}
		w.scanExpr(ss.X, e)
		return e, false
	case *ast.ReturnStmt:
		// Release calls in the operands (`return c.Close()`) count,
		// then returned resources escape, then what's left leaks.
		for _, r := range ss.Results {
			if obj := w.trackedIdent(e, r); obj != nil {
				escape(e, obj)
				continue
			}
			w.scanExpr(r, e)
		}
		w.reportHeld(e, ss.Pos(), "returns here")
		return e, true
	case *ast.DeferStmt:
		// A deferred release covers every path out, panics included; a
		// deferred closure or forwarded call that merely references the
		// resource is an escape. Either way the value is covered.
		w.escapeAllIn(ss.Call, e)
		return e, false
	case *ast.GoStmt:
		w.escapeAllIn(ss.Call, e)
		return e, false
	case *ast.SendStmt:
		if obj := w.trackedIdent(e, ss.Value); obj != nil {
			escape(e, obj)
		} else {
			w.scanExpr(ss.Value, e)
		}
		w.scanExpr(ss.Chan, e)
		return e, false
	case *ast.IfStmt:
		return w.walkIf(ss, e)
	case *ast.ForStmt:
		return w.walkFor(ss, e)
	case *ast.RangeStmt:
		return w.walkRange(ss, e)
	case *ast.SwitchStmt:
		var clauses []*ast.CaseClause
		for _, c := range ss.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				clauses = append(clauses, cc)
			}
		}
		pre := e
		if ss.Init != nil {
			pre, _ = w.walkStmt(ss.Init, cloneEnv(pre))
		}
		if ss.Tag != nil {
			w.scanExpr(ss.Tag, pre)
		}
		var outs []env
		hasDefault := false
		allTerm := true
		for _, cc := range clauses {
			if cc.List == nil {
				hasDefault = true
			}
			for _, x := range cc.List {
				w.scanExpr(x, pre)
			}
			ce, term := w.walkStmts(cc.Body, cloneEnv(pre))
			if !term {
				outs = append(outs, ce)
				allTerm = false
			}
		}
		if !hasDefault {
			outs = append(outs, pre)
			allTerm = false
		}
		return mergeEnv(outs...), allTerm && len(clauses) > 0
	case *ast.TypeSwitchStmt:
		pre := e
		if ss.Init != nil {
			pre, _ = w.walkStmt(ss.Init, cloneEnv(pre))
		}
		w.scanStmtExprs(ss.Assign, pre)
		var outs []env
		hasDefault := false
		allTerm := true
		for _, c := range ss.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			ce, term := w.walkStmts(cc.Body, cloneEnv(pre))
			if !term {
				outs = append(outs, ce)
				allTerm = false
			}
		}
		if !hasDefault {
			outs = append(outs, pre)
			allTerm = false
		}
		return mergeEnv(outs...), allTerm && len(ss.Body.List) > 0
	case *ast.SelectStmt:
		var outs []env
		allTerm := true
		hasClause := false
		for _, c := range ss.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			hasClause = true
			ce := cloneEnv(e)
			if cc.Comm != nil {
				ce, _ = w.walkStmt(cc.Comm, ce)
			}
			ce, term := w.walkStmts(cc.Body, ce)
			if !term {
				outs = append(outs, ce)
				allTerm = false
			}
		}
		if !hasClause {
			return e, true // select{} blocks forever
		}
		return mergeEnv(outs...), allTerm
	case *ast.BranchStmt:
		if ss.Label != nil || ss.Tok == token.GOTO {
			// Labeled control flow: give up on this body, silently.
			w.bailed = true
			return e, true
		}
		switch ss.Tok {
		case token.BREAK:
			if f := w.topLoop(); f != nil {
				f.breaks = append(f.breaks, cloneEnv(e))
			}
			return e, true
		case token.CONTINUE:
			if f := w.topLoop(); f != nil {
				f.conts = append(f.conts, cloneEnv(e))
			}
			return e, true
		case token.FALLTHROUGH:
			return e, false
		}
		return e, false
	case *ast.BlockStmt:
		return w.walkStmts(ss.List, e)
	case *ast.LabeledStmt:
		return w.walkStmt(ss.Stmt, e)
	case *ast.IncDecStmt:
		w.scanExpr(ss.X, e)
		return e, false
	case *ast.EmptyStmt:
		return e, false
	default:
		w.scanStmtExprs(s, e)
		return e, false
	}
}

// walkAssign handles acquisition, overwrite, and generic escapes.
func (w *rpWalker) walkAssign(a *ast.AssignStmt, e env) env {
	if len(a.Rhs) == 1 {
		if call := callOf(a.Rhs[0]); call != nil {
			if spec, ok := classifyAcquire(w.info, call); ok {
				w.scanCallArgs(call, e)
				lhs0 := ast.Unparen(a.Lhs[0])
				id, isIdent := lhs0.(*ast.Ident)
				switch {
				case isIdent && id.Name == "_":
					if !w.bailed {
						w.pass.Reportf(call.Pos(),
							"%s from %s is discarded (assigned to _), so it can never be released with %s",
							spec.class, acquireLabel(w.info, call), spec.release)
					}
				case isIdent:
					// Pair the acquire's err / ok result variable so the
					// failed-acquire branch of the following guard does
					// not count as holding a value never produced. The
					// LHS idents of := are definitions, absent from
					// Info.Types — resolve the object's type instead.
					var errId, okId *ast.Ident
					for _, l := range a.Lhs[1:] {
						eid, ok := ast.Unparen(l).(*ast.Ident)
						if !ok || eid.Name == "_" {
							continue
						}
						var obj types.Object = w.info.Defs[eid]
						if obj == nil {
							obj = w.info.Uses[eid]
						}
						if obj == nil {
							continue
						}
						if errId == nil && isErrorType(obj.Type()) {
							errId = eid
						} else if okId == nil && isBoolType(obj.Type()) {
							okId = eid
						}
					}
					w.track(e, id, errId, okId, call, spec)
				default:
					// Stored straight into a field/map/slice: escaped.
				}
				// Remaining LHS (the err slot) cannot hold resources.
				return e
			}
		}
	}
	// Generic assignment: anything tracked on the RHS escapes (aliased
	// or stored); a tracked var OVERWRITTEN on the LHS stops being
	// tracked (silently — the walk cannot prove the old value leaked).
	for _, r := range a.Rhs {
		if obj := w.trackedIdent(e, r); obj != nil {
			escape(e, obj)
		} else {
			w.scanExpr(r, e)
		}
	}
	for _, l := range a.Lhs {
		if obj := w.trackedIdent(e, l); obj != nil {
			delete(e, obj)
			continue
		}
		// Reassigning an acquire's paired error variable invalidates
		// the err-branch refinement for its resource.
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if obj, ok := w.info.Uses[id].(*types.Var); ok {
				for _, res := range w.byVar {
					if res.errObj == obj {
						res.errObj = nil
					}
				}
			}
			continue
		}
		w.scanExpr(l, e)
	}
	return e
}

// track begins tracking one acquired resource.
func (w *rpWalker) track(e env, id *ast.Ident, errId, okId *ast.Ident, call *ast.CallExpr, spec acquireSpec) {
	if id.Name == "_" {
		if !w.bailed {
			w.pass.Reportf(call.Pos(),
				"%s from %s is discarded (assigned to _), so it can never be released with %s",
				spec.class, acquireLabel(w.info, call), spec.release)
		}
		return
	}
	obj, ok := w.info.Defs[id].(*types.Var)
	if !ok {
		obj, ok = w.info.Uses[id].(*types.Var)
		if !ok {
			return
		}
	}
	res := &resource{obj: obj, spec: spec, pos: call.Pos(), src: acquireLabel(w.info, call)}
	res.errObj = identVar(w.info, errId)
	res.okObj = identVar(w.info, okId)
	w.byVar[obj] = res
	e[obj] = true
}

func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if id == nil {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

// walkIf forks the env, refining on the `err != nil` guard of an
// acquire when the condition tests a paired error variable.
func (w *rpWalker) walkIf(s *ast.IfStmt, e env) (env, bool) {
	pre := e
	if s.Init != nil {
		pre, _ = w.walkStmt(s.Init, cloneEnv(pre))
	}
	w.scanExpr(s.Cond, pre)
	thenEnv, elseEnv := cloneEnv(pre), cloneEnv(pre)
	if errVar, errIsNonNil, ok := w.errNilCond(s.Cond); ok {
		// On the branch where err != nil the acquire failed: the
		// resource was never produced there.
		for obj, res := range w.byVar {
			if res.errObj != errVar {
				continue
			}
			if errIsNonNil {
				delete(thenEnv, obj)
			} else {
				delete(elseEnv, obj)
			}
		}
	}
	if okVar, okIsTrue, ok := w.okCond(s.Cond); ok {
		// `if v, ok := acquire(); ok { ... }`: the !ok branch never
		// produced the resource.
		for obj, res := range w.byVar {
			if res.okObj != okVar {
				continue
			}
			if okIsTrue {
				delete(elseEnv, obj)
			} else {
				delete(thenEnv, obj)
			}
		}
	}
	thenOut, thenTerm := w.walkStmts(s.Body.List, thenEnv)
	elseOut, elseTerm := elseEnv, false
	if s.Else != nil {
		elseOut, elseTerm = w.walkStmt(s.Else, elseEnv)
	}
	var outs []env
	if !thenTerm {
		outs = append(outs, thenOut)
	}
	if !elseTerm {
		outs = append(outs, elseOut)
	}
	return mergeEnv(outs...), thenTerm && elseTerm
}

// errNilCond matches `err != nil` / `err == nil` over an error var.
func (w *rpWalker) errNilCond(cond ast.Expr) (*types.Var, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil, false, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	obj, ok := w.info.Uses[id].(*types.Var)
	if !ok {
		return nil, false, false
	}
	return obj, be.Op == token.NEQ, true
}

func isNilIdent(x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	return ok && id.Name == "nil"
}

// okCond matches a bare `ok` or `!ok` condition over a bool var,
// returning the var and whether the then-branch is the ok==true side.
func (w *rpWalker) okCond(cond ast.Expr) (*types.Var, bool, bool) {
	okIsTrue := true
	x := ast.Unparen(cond)
	if ue, ok := x.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		okIsTrue = false
		x = ast.Unparen(ue.X)
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	obj, ok := w.info.Uses[id].(*types.Var)
	if !ok || !isBoolType(obj.Type()) {
		return nil, false, false
	}
	return obj, okIsTrue, true
}

func (w *rpWalker) topLoop() *loopFrame {
	if len(w.loops) == 0 {
		return nil
	}
	return w.loops[len(w.loops)-1]
}

func (w *rpWalker) walkFor(s *ast.ForStmt, e env) (env, bool) {
	pre := e
	if s.Init != nil {
		pre, _ = w.walkStmt(s.Init, cloneEnv(pre))
	}
	if s.Cond != nil {
		w.scanExpr(s.Cond, pre)
	}
	frame := &loopFrame{}
	w.loops = append(w.loops, frame)
	bodyOut, bodyTerm := w.walkStmts(s.Body.List, cloneEnv(pre))
	if s.Post != nil {
		w.scanStmtExprs(s.Post, bodyOut)
	}
	w.loops = w.loops[:len(w.loops)-1]

	// The loop's back edge: a resource acquired inside the body that is
	// still held when the body finishes (or continues) leaks once per
	// iteration.
	backEdges := frame.conts
	if !bodyTerm {
		backEdges = append(backEdges, bodyOut)
	}
	for _, be := range backEdges {
		iterLeaks := env{}
		for obj, held := range be {
			if held {
				if _, preLive := pre[obj]; !preLive {
					iterLeaks[obj] = true
				}
			}
		}
		w.reportHeld(iterLeaks, s.End(), "loops back for the next iteration")
	}

	if s.Cond == nil {
		// `for {` only exits through break.
		if len(frame.breaks) == 0 {
			return pre, true
		}
		return mergeEnv(frame.breaks...), false
	}
	outs := append([]env{pre}, frame.breaks...)
	if !bodyTerm {
		outs = append(outs, bodyOut)
	}
	return mergeEnv(outs...), false
}

func (w *rpWalker) walkRange(s *ast.RangeStmt, e env) (env, bool) {
	pre := cloneEnv(e)
	w.scanExpr(s.X, pre)
	frame := &loopFrame{}
	w.loops = append(w.loops, frame)
	bodyOut, bodyTerm := w.walkStmts(s.Body.List, cloneEnv(pre))
	w.loops = w.loops[:len(w.loops)-1]

	backEdges := frame.conts
	if !bodyTerm {
		backEdges = append(backEdges, bodyOut)
	}
	for _, be := range backEdges {
		iterLeaks := env{}
		for obj, held := range be {
			if held {
				if _, preLive := pre[obj]; !preLive {
					iterLeaks[obj] = true
				}
			}
		}
		w.reportHeld(iterLeaks, s.End(), "loops back for the next iteration")
	}

	outs := append([]env{pre}, frame.breaks...)
	if !bodyTerm {
		outs = append(outs, bodyOut)
	}
	return mergeEnv(outs...), false
}

// --- expression scan ---------------------------------------------------

// scanExpr applies the release/escape rules inside one expression tree.
// Reads (comparisons, field selections, method calls other than the
// release) keep the resource held; anything that could store the value
// — composite literals, closures, address-of, untracked argument
// positions — escapes it.
func (w *rpWalker) scanExpr(x ast.Expr, e env) {
	if x == nil {
		return
	}
	switch xx := x.(type) {
	case *ast.CallExpr:
		w.scanCall(xx, e)
	case *ast.BinaryExpr:
		// Comparisons and arithmetic only read.
		if w.trackedIdent(e, xx.X) == nil {
			w.scanExpr(xx.X, e)
		}
		if w.trackedIdent(e, xx.Y) == nil {
			w.scanExpr(xx.Y, e)
		}
	case *ast.SelectorExpr:
		// Reading a field/method through the resource is a borrow.
		if w.trackedIdent(e, xx.X) == nil {
			w.scanExpr(xx.X, e)
		}
	case *ast.UnaryExpr:
		if xx.Op == token.AND {
			if obj := w.trackedIdent(e, xx.X); obj != nil {
				escape(e, obj) // address taken
				return
			}
		}
		w.scanExpr(xx.X, e)
	case *ast.ParenExpr:
		w.scanExpr(xx.X, e)
	case *ast.StarExpr:
		w.scanExpr(xx.X, e)
	case *ast.IndexExpr:
		w.scanExpr(xx.X, e)
		w.scanExpr(xx.Index, e)
	case *ast.SliceExpr:
		w.scanExpr(xx.X, e)
	case *ast.TypeAssertExpr:
		if w.trackedIdent(e, xx.X) == nil {
			w.scanExpr(xx.X, e)
		}
	case *ast.FuncLit:
		// Captured by a closure: escapes (the closure may release it
		// later — either way this body's paths are off the hook).
		w.escapeAllIn(xx, e)
	case *ast.CompositeLit:
		for _, elt := range xx.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if obj := w.trackedIdent(e, elt); obj != nil {
				escape(e, obj)
				continue
			}
			w.scanExpr(elt, e)
		}
	case *ast.Ident:
		if obj := w.trackedIdent(e, xx); obj != nil {
			escape(e, obj)
		}
	default:
		w.escapeAllIn(x, e)
	}
}

// scanCall applies the call rules: the release method clears the
// resource; handing it to a releasing parameter or a sync.Pool releases
// it; handing it anywhere else transfers ownership (escape) unless the
// class is borrow-only, in which case the caller still owes the
// release.
func (w *rpWalker) scanCall(call *ast.CallExpr, e env) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := w.trackedIdent(e, sel.X); obj != nil {
			res := w.byVar[obj]
			if res != nil && sel.Sel.Name == "Close" && !res.spec.borrowOnly {
				e[obj] = false // released
			}
			// Any other method on the resource is a borrow.
			w.scanCallArgs(call, e)
			return
		}
		w.scanExpr(sel.X, e)
	} else {
		w.scanExpr(call.Fun, e)
	}
	w.scanCallArgs(call, e)
}

func (w *rpWalker) scanCallArgs(call *ast.CallExpr, e env) {
	callee := calleeFunc(w.info, call)
	for argPos, arg := range call.Args {
		obj := w.trackedIdent(e, arg)
		if obj == nil {
			w.scanExpr(arg, e)
			continue
		}
		res := w.byVar[obj]
		switch {
		case callee != nil && isPoolPut(callee):
			e[obj] = false // released to the pool
		case callee != nil && w.rel[callee] != nil && w.rel[callee][calleeParamIndex(callee, argPos)]:
			e[obj] = false // handed to its releaser
		case res != nil && res.spec.borrowOnly:
			// Borrowed (e.g. Store.Apply(b)): the caller still owns it.
		default:
			escape(e, obj) // ownership transferred
		}
	}
}

// scanStmtExprs conservatively scans any statement the walk has no
// precise case for.
func (w *rpWalker) scanStmtExprs(s ast.Stmt, e env) {
	ast.Inspect(s, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok {
			w.scanExpr(x, e)
			return false
		}
		return true
	})
}

// escapeAllIn escapes every tracked resource referenced under n.
func (w *rpWalker) escapeAllIn(n ast.Node, e env) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj, ok := w.info.Uses[id].(*types.Var); ok {
				escape(e, obj)
			}
		}
		return true
	})
}

// callOf unwraps an expression to a call, or nil.
func callOf(x ast.Expr) *ast.CallExpr {
	call, _ := ast.Unparen(x).(*ast.CallExpr)
	return call
}

// acquireLabel names the acquiring callee for messages.
func acquireLabel(info *types.Info, call *ast.CallExpr) string {
	if callee := calleeFunc(info, call); callee != nil {
		return FuncLabel(callee)
	}
	return "the acquire call"
}

// isTerminalCall recognizes calls that never return: panic, os.Exit,
// log.Fatal*. Paths ending in them are not leak reports — deferred
// releases (panic) or process exit cover them.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
			return true
		}
	}
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "os":
		return callee.Name() == "Exit"
	case "log":
		switch callee.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}
