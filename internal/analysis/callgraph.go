package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The cross-package call graph: the shared infrastructure under the
// whole-module analyzers. PR 6's analyzers each walked one package at a
// time, which made every cross-package convention — jcf holding fw.mu
// while calling into oms stripe locks, repl holding its own mutexes
// around Store.ApplyReplicated — invisible. The graph is built ONCE per
// Snapshot (lazily, see Snapshot.CallGraph) and records, per declared
// function, a source-order timeline of the events the analyzers care
// about: acquisitions and releases of the module's NAMED locks, and
// statically-resolved calls to other module functions.
//
// Static approximations, chosen to match how the tree is written:
//
//   - Function literals launched by `go` are excluded from the
//     synchronous timeline (a goroutine does not inherit its spawner's
//     held locks) but their calls are kept separately (AsyncCalls) for
//     reachability questions like guardwrite's.
//   - Events inside `defer` statements and deferred literals are marked
//     Deferred: they run at return, so they never release a lock
//     mid-body and never acquire one while the body's locks are held in
//     a way source order can see.
//   - Other function literals (IIFEs, callbacks built and passed on the
//     spot) are walked inline — conservative for callbacks that the
//     callee runs later, but that is the safe direction for lock edges.

// CallGraph holds one node per function or method declared anywhere in
// the module, with lazily-computed whole-graph summaries.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode

	lockSums  map[*types.Func]*lockSummary
	blockSums map[*types.Func]*blockSummary
	relParams map[*types.Func]map[int]bool
	sorted    []*FuncNode
}

// FuncNode is one declared function with its analyzer-relevant timeline.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Events is the body's source-order timeline (lock ops and calls),
	// excluding `go`-launched literals.
	Events []Event
	// AsyncCalls are module-internal calls made inside `go`-launched
	// literals — reachable, but on another goroutine.
	AsyncCalls []CallRef
}

// EventKind discriminates Event.
type EventKind int

// Event kinds.
const (
	EvAcquire EventKind = iota // a named lock Lock/RLock
	EvRelease                  // a named lock Unlock/RUnlock
	EvCall                     // a call to a module-declared function
	EvExtCall                  // a resolved call to a function declared OUTSIDE the module
	EvBlock                    // a directly-blocking channel primitive (send/recv/select)
)

// Event is one timeline entry.
type Event struct {
	Kind     EventKind
	Lock     string      // EvAcquire/EvRelease: the named-lock key
	Callee   *types.Func // EvCall/EvExtCall
	Desc     string      // EvBlock: "chan-send", "chan-recv", "chan-recv (range)", "select"
	Pos      token.Pos
	Deferred bool // inside a defer statement or deferred literal
	Returned bool // inside a func literal the function returns
	InLoop   bool // lexically inside a for/range statement
}

// CallRef is a call with its position (AsyncCalls entries).
type CallRef struct {
	Callee *types.Func
	Pos    token.Pos
}

// FuncLabel renders a function as pkg.Recv.Name or pkg.Name for
// human-readable witness paths.
func FuncLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := recvNamed(fn); recv != nil {
		return pkg + recv.Obj().Name() + "." + fn.Name()
	}
	return pkg + fn.Name()
}

// --- named locks -------------------------------------------------------

// lockSpec names one mutex the module-wide lock hierarchy tracks: a
// mutex-typed field, identified by (package name, owner type, field).
// The 32 OMS stripe mutexes count as ONE level ("oms.stripes"): their
// internal ordering is the lockorder analyzer's business; lockgraph
// cares about what is acquired around the stripe set as a whole.
type lockSpec struct {
	pkgName, typeName, fieldName string
	key                          string
}

// namedLockSpecs is the registry of tracked locks. docs/lock-hierarchy.md
// declares the partial order over exactly these keys.
var namedLockSpecs = []lockSpec{
	{"jcf", "Framework", "mu", "jcf.Framework.mu"},
	{"jcf", "Framework", "numMu", "jcf.Framework.numMu"},
	{"jcf", "Framework", "upMu", "jcf.Framework.upMu"},
	{"oms", "stripe", "mu", "oms.stripes"},
	{"oms", "feed", "mu", "oms.feed.mu"},
	{"blobstore", "Store", "mu", "blobstore.Store.mu"},
	{"blobstore", "Store", "sweepMu", "blobstore.Store.sweepMu"},
	{"itc", "Bus", "mu", "itc.Bus.mu"},
	{"repl", "Publisher", "mu", "repl.Publisher.mu"},
	{"repl", "Replica", "mu", "repl.Replica.mu"},
	{"obs", "Registry", "mu", "obs.Registry.mu"},
}

// stripesKey is the collapsed stripe level.
const stripesKey = "oms.stripes"

// knownLockKey reports whether key names a registered lock.
func knownLockKey(key string) bool {
	for _, s := range namedLockSpecs {
		if s.key == key {
			return true
		}
	}
	return false
}

// LockKeys returns the registered lock keys, sorted.
func LockKeys() []string {
	out := make([]string, 0, len(namedLockSpecs))
	for _, s := range namedLockSpecs {
		out = append(out, s.key)
	}
	sort.Strings(out)
	return out
}

// classifyLockOp matches x.<field>.Lock()/RLock()/Unlock()/RUnlock()
// against the named-lock registry: returns the lock key and whether the
// call acquires.
func classifyLockOp(info *types.Info, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return classifyLockSel(info, sel)
}

// classifyLockSel is classifyLockOp on the bare selector — also used
// for method VALUES like lockPair's `return s.mu.Unlock`, where there
// is no call expression.
func classifyLockSel(info *types.Info, sel *ast.SelectorExpr) (key string, acquire, ok bool) {
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	// sel.X is the mutex expression <owner>.<field>.
	muSel, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	owner := namedType(typeOf(info, muSel.X))
	if owner == nil || owner.Obj().Pkg() == nil {
		return "", false, false
	}
	for _, s := range namedLockSpecs {
		if owner.Obj().Name() == s.typeName && owner.Obj().Pkg().Name() == s.pkgName &&
			muSel.Sel.Name == s.fieldName {
			return s.key, acquire, true
		}
	}
	return "", false, false
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// --- graph construction ------------------------------------------------

func buildCallGraph(snap *Snapshot) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*FuncNode{}}
	for _, pkg := range snap.Pkgs {
		for fn, fd := range funcDecls(pkg) {
			g.Nodes[fn] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
		}
	}
	for _, node := range g.Nodes {
		if node.Decl.Body != nil {
			collectEvents(g, node)
		}
	}
	// Compute every whole-graph summary eagerly: the graph is built
	// under the Snapshot's sync.Once, so everything memoized here is
	// visible to the concurrent analyzer goroutines without further
	// locking.
	g.lockSummaries()
	g.blockSummaries()
	g.releaserParams()
	return g
}

// sortedNodes returns the graph's nodes in a deterministic order
// (label, then declaration position), so fixpoint witness selection and
// per-function scans do not depend on map iteration order.
func (g *CallGraph) sortedNodes() []*FuncNode {
	if g.sorted != nil {
		return g.sorted
	}
	nodes := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		li, lj := FuncLabel(nodes[i].Fn), FuncLabel(nodes[j].Fn)
		if li != lj {
			return li < lj
		}
		return nodes[i].Fn.Pos() < nodes[j].Fn.Pos()
	})
	g.sorted = nodes
	return nodes
}

// collectEvents walks one declaration body building its timeline.
//
// Returned func literals get their own flag: a helper like
// Store.lockPair acquires its stripes and hands back the closure that
// releases them, so the release events belong to the CALLER's return
// (the caller defers the closure), not to the helper's own body.
func collectEvents(g *CallGraph, node *FuncNode) {
	info := node.Pkg.Info
	// noChan suppresses the channel-primitive events inside a select's
	// comm clauses: the select itself is the blocking (or, with a
	// default clause, non-blocking) operation, not the individual
	// send/recv cases under it.
	var walk func(n ast.Node, deferred, returned, noChan bool, loop int)
	visitCall := func(call *ast.CallExpr, deferred, returned bool, loop int) {
		if key, acquire, ok := classifyLockOp(info, call); ok {
			kind := EvRelease
			if acquire {
				kind = EvAcquire
			}
			node.Events = append(node.Events, Event{
				Kind: kind, Lock: key, Pos: call.Pos(),
				Deferred: deferred, Returned: returned, InLoop: loop > 0,
			})
			return
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return
		}
		kind := EvCall
		if _, declared := g.Nodes[callee]; !declared {
			// Interface methods (repl.Conn.Send, backend.Backend.Put)
			// and out-of-module functions (time.Sleep, os.WriteFile):
			// the dataflow layer classifies these as blocking or not.
			kind = EvExtCall
		}
		node.Events = append(node.Events, Event{
			Kind: kind, Callee: callee, Pos: call.Pos(),
			Deferred: deferred, Returned: returned, InLoop: loop > 0,
		})
	}
	walk = func(n ast.Node, deferred, returned, noChan bool, loop int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch mm := m.(type) {
			case *ast.GoStmt:
				// The spawned work runs without the spawner's locks:
				// keep its calls for reachability, not for hold edges.
				collectAsync(g, node, mm.Call)
				return false
			case *ast.DeferStmt:
				walk(mm.Call, true, returned, noChan, loop)
				return false
			case *ast.ReturnStmt:
				for _, res := range mm.Results {
					if lit, ok := ast.Unparen(res).(*ast.FuncLit); ok {
						walk(lit.Body, deferred, true, noChan, loop)
						continue
					}
					// `return s.mu.Unlock` — a returned lock-method
					// VALUE is a returned release, same as a closure.
					if sel, ok := ast.Unparen(res).(*ast.SelectorExpr); ok {
						if key, acquire, ok := classifyLockSel(info, sel); ok {
							kind := EvRelease
							if acquire {
								kind = EvAcquire
							}
							node.Events = append(node.Events, Event{
								Kind: kind, Lock: key, Pos: sel.Pos(),
								Returned: true, InLoop: loop > 0,
							})
							continue
						}
					}
					walk(res, deferred, returned, noChan, loop)
				}
				return false
			case *ast.ForStmt:
				if mm.Init != nil {
					walk(mm.Init, deferred, returned, noChan, loop)
				}
				if mm.Cond != nil {
					walk(mm.Cond, deferred, returned, noChan, loop)
				}
				if mm.Post != nil {
					walk(mm.Post, deferred, returned, noChan, loop+1)
				}
				walk(mm.Body, deferred, returned, noChan, loop+1)
				return false
			case *ast.RangeStmt:
				walk(mm.X, deferred, returned, noChan, loop)
				if t := typeOf(info, mm.X); t != nil && !noChan {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						// Ranging a channel blocks on every iteration.
						node.Events = append(node.Events, Event{
							Kind: EvBlock, Desc: "chan-recv (range)", Pos: mm.Pos(),
							Deferred: deferred, Returned: returned, InLoop: true,
						})
					}
				}
				walk(mm.Body, deferred, returned, noChan, loop+1)
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range mm.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					node.Events = append(node.Events, Event{
						Kind: EvBlock, Desc: "select", Pos: mm.Pos(),
						Deferred: deferred, Returned: returned, InLoop: loop > 0,
					})
				}
				for _, c := range mm.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm != nil {
						walk(cc.Comm, deferred, returned, true, loop)
					}
					for _, s := range cc.Body {
						walk(s, deferred, returned, noChan, loop)
					}
				}
				return false
			case *ast.SendStmt:
				if !noChan {
					node.Events = append(node.Events, Event{
						Kind: EvBlock, Desc: "chan-send", Pos: mm.Arrow,
						Deferred: deferred, Returned: returned, InLoop: loop > 0,
					})
				}
				return true
			case *ast.UnaryExpr:
				if mm.Op == token.ARROW && !noChan {
					node.Events = append(node.Events, Event{
						Kind: EvBlock, Desc: "chan-recv", Pos: mm.Pos(),
						Deferred: deferred, Returned: returned, InLoop: loop > 0,
					})
				}
				return true
			case *ast.CallExpr:
				visitCall(mm, deferred, returned, loop)
				return true // arguments may contain nested calls/lits
			}
			return true
		})
	}
	walk(node.Decl.Body, false, false, false, 0)
}

// collectAsync records every module-internal call under a go statement.
func collectAsync(g *CallGraph, node *FuncNode, root ast.Node) {
	info := node.Pkg.Info
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		if _, declared := g.Nodes[callee]; declared {
			node.AsyncCalls = append(node.AsyncCalls, CallRef{Callee: callee, Pos: call.Pos()})
		}
		return true
	})
}

// --- lock summaries ----------------------------------------------------

// acqWitness records how a function's call tree reaches an acquisition
// of a lock: directly (via == nil) or through a callee.
type acqWitness struct {
	via *types.Func // nil: acquired directly at pos
	pos token.Pos   // acquisition site, or the call site into via
}

// lockSummary is the per-function fixpoint state.
//
// Two deltas, because of the lockPair idiom (acquire stripes, return
// the closure that releases them):
//
//   - delta is the net held-count change observed by a caller the
//     moment the call returns — lockAll and lockPair are +1 on stripes,
//     unlockAll is -1, balanced bodies are 0. Deferred events count
//     (they ran at return); events inside a RETURNED closure do not
//     (the closure has not run yet).
//   - retDelta is the net change by the time the CALLER returns,
//     assuming the caller defers the returned closure (the tree-wide
//     idiom: `unlock := st.lockPair(a, b); defer unlock()`). For
//     ordinary functions retDelta == delta; for lockPair it is 0.
//
// Mid-body hold tracking uses callee delta; end-of-body accounting uses
// callee retDelta. Values saturate to {-1, 0, +1} — the analyses only
// need the sign.
type lockSummary struct {
	// mayAcquire: every named lock the function's synchronous call tree
	// can acquire, with one witness step for path reconstruction.
	mayAcquire map[string]acqWitness
	delta      map[string]int
	retDelta   map[string]int
}

// lockSummaries computes every node's summary to fixpoint. Built
// eagerly inside buildCallGraph, i.e. under the Snapshot's sync.Once,
// so concurrent analyzers read it without locking.
func (g *CallGraph) lockSummaries() map[*types.Func]*lockSummary {
	if g.lockSums != nil {
		return g.lockSums
	}
	sums := map[*types.Func]*lockSummary{}
	for fn := range g.Nodes {
		sums[fn] = &lockSummary{
			mayAcquire: map[string]acqWitness{},
			delta:      map[string]int{},
			retDelta:   map[string]int{},
		}
	}
	// mayAcquire grows monotonically; the saturated deltas live in a
	// tiny domain. The iteration cap is a belt against a pathological
	// oscillation, far above what convergence needs.
	for iter := 0; iter < 4*len(sums)+16; iter++ {
		changed := false
		for fn, node := range g.Nodes {
			if recomputeLockSummary(node, sums, sums[fn]) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	g.lockSums = sums
	return sums
}

func saturate(n int) int {
	if n > 1 {
		return 1
	}
	if n < -1 {
		return -1
	}
	return n
}

// lockAcc accumulates one lock's running balance across a linear event
// scan. The scan is branch-blind: a function that acquires once and
// releases on each of three early-return paths would sum to -2 if
// counted naively. So releases clamp the running balance at zero —
// alternative unlock paths cannot take a function below balanced —
// UNLESS the function never acquires the lock at all (directly or via a
// callee): then it is a pure releaser like unlockAll, whose whole point
// is a negative delta, and the raw sum is used.
type lockAcc struct {
	held   int  // clamped running balance
	raw    int  // unclamped sum
	sawPos bool // any acquire or positive callee delta seen
}

func (a *lockAcc) add(d int) {
	a.raw += d
	if d > 0 {
		a.sawPos = true
	}
	a.held += d
	if a.held < 0 {
		a.held = 0
	}
}

func (a *lockAcc) result() int {
	if a == nil {
		return 0
	}
	if !a.sawPos {
		return saturate(a.raw)
	}
	return saturate(a.held)
}

// recomputeLockSummary re-derives one function's summary from its
// timeline plus current callee summaries; reports whether it changed.
func recomputeLockSummary(node *FuncNode, sums map[*types.Func]*lockSummary, out *lockSummary) bool {
	changed := false
	body := map[string]*lockAcc{}    // events that run by this function's return
	closure := map[string]*lockAcc{} // events inside returned closures
	add := func(m map[string]*lockAcc, key string, d int) {
		a := m[key]
		if a == nil {
			a = &lockAcc{}
			m[key] = a
		}
		a.add(d)
	}
	note := func(key string, w acqWitness) {
		if _, ok := out.mayAcquire[key]; !ok {
			out.mayAcquire[key] = w
			changed = true
		}
	}
	for _, ev := range node.Events {
		target := body
		if ev.Returned {
			target = closure
		}
		switch ev.Kind {
		case EvAcquire:
			note(ev.Lock, acqWitness{pos: ev.Pos})
			add(target, ev.Lock, 1)
		case EvRelease:
			add(target, ev.Lock, -1)
		case EvCall:
			cs := sums[ev.Callee]
			if cs == nil {
				continue
			}
			for key := range cs.mayAcquire {
				note(key, acqWitness{via: ev.Callee, pos: ev.Pos})
			}
			for key, d := range cs.retDelta {
				if d != 0 {
					add(target, key, d)
				}
			}
		}
	}
	for _, key := range LockKeys() {
		d := body[key].result()
		r := saturate(d + closure[key].result())
		if out.delta[key] != d {
			out.delta[key] = d
			changed = true
		}
		if out.retDelta[key] != r {
			out.retDelta[key] = r
			changed = true
		}
	}
	return changed
}

// AcquirePath renders the witness chain from fn down to a direct
// acquisition of key, e.g.
// "jcf.Framework.CheckInData → oms.Store.Apply → oms.Store.lockAll".
func (g *CallGraph) AcquirePath(fn *types.Func, key string) string {
	sums := g.lockSummaries()
	var parts []string
	parts = append(parts, FuncLabel(fn))
	cur := fn
	for range g.Nodes { // bounded walk; witnesses cannot cycle forever
		s := sums[cur]
		if s == nil {
			break
		}
		w, ok := s.mayAcquire[key]
		if !ok || w.via == nil {
			break
		}
		parts = append(parts, FuncLabel(w.via))
		cur = w.via
	}
	return strings.Join(parts, " → ")
}
