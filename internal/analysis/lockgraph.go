package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// lockgraph is the whole-module lock-hierarchy analyzer. Using the
// shared call graph it extracts every "acquire lock B while holding
// lock A" edge across packages for the named locks (jcf.Framework.mu,
// jcf.Framework.numMu, the oms stripe set as one level, the feed mutex,
// the repl publisher/replica mutexes, itc.Bus.mu) and checks the edge
// set against the partial order declared in docs/lock-hierarchy.md.
// Any observed edge outside the declared order's transitive closure is
// reported with its full witness call path, as is any cycle — the doc
// is machine-checked, not aspirational, and deleting a declared edge
// fails the lint run with the code path that still takes it.
var LockGraphAnalyzer = &Analyzer{
	Name: "lockgraph",
	Doc:  "cross-package lock acquisition order must match docs/lock-hierarchy.md and be cycle-free",
	RunModule: func(pass *ModulePass) {
		runLockGraph(pass)
	},
}

// lockHierarchyDoc is the declared-order table, relative to module root.
const lockHierarchyDoc = "docs/lock-hierarchy.md"

// lockEdge is one observed "acquired to while holding from" edge with
// the witness that found it first (nodes are visited in sorted order,
// so the witness is deterministic).
type lockEdge struct {
	from, to string
	pos      token.Pos
	path     string // human-readable call path to the acquisition
}

func runLockGraph(pass *ModulePass) {
	docPath := filepath.Join(pass.Snap.Root, filepath.FromSlash(lockHierarchyDoc))
	declared := parseDeclaredOrder(pass, docPath)
	allowed := transitiveClosure(declared)

	g := pass.Snap.CallGraph()
	sums := g.lockSummaries()

	// Visit functions in sorted order so each edge's witness is stable.
	fns := make([]*types.Func, 0, len(g.Nodes))
	for fn := range g.Nodes {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return FuncLabel(fns[i]) < FuncLabel(fns[j]) })

	edges := map[[2]string]*lockEdge{}
	addEdge := func(from, to string, pos token.Pos, path string) {
		if from == to {
			if from == stripesKey {
				// Intra-stripe ordering (multiple stripes of the same
				// set) is lockorder's job: the sorted helpers.
				return
			}
			pass.Reportf(pos, "acquires %s while already holding it (self-deadlock); path: %s", to, path)
			return
		}
		key := [2]string{from, to}
		if _, ok := edges[key]; !ok {
			edges[key] = &lockEdge{from: from, to: to, pos: pos, path: path}
		}
	}

	for _, fn := range fns {
		node := g.Nodes[fn]
		held := map[string]int{}
		for _, ev := range node.Events {
			if ev.Deferred || ev.Returned {
				// Deferred events run at return, after the body's
				// acquisition sequence; returned-closure events run in
				// the caller. Neither interleaves with this body.
				continue
			}
			switch ev.Kind {
			case EvAcquire:
				for a, n := range held {
					if n > 0 {
						addEdge(a, ev.Lock, ev.Pos, FuncLabel(fn))
					}
				}
				held[ev.Lock]++
			case EvRelease:
				held[ev.Lock]--
			case EvCall:
				cs := sums[ev.Callee]
				if cs == nil {
					continue
				}
				for a, n := range held {
					if n <= 0 {
						continue
					}
					for b := range cs.mayAcquire {
						addEdge(a, b, ev.Pos, FuncLabel(fn)+" → "+g.AcquirePath(ev.Callee, b))
					}
				}
				for k, d := range cs.delta {
					held[k] += d
				}
			}
		}
	}

	// Every observed edge must be inside the declared order's
	// transitive closure.
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := edges[k]
		if !allowed[k] {
			pass.Reportf(e.pos,
				"acquires %s while holding %s: edge not declared in %s; path: %s",
				e.to, e.from, lockHierarchyDoc, e.path)
		}
	}

	reportCycles(pass, edges)
}

// parseDeclaredOrder reads the markdown table out of the hierarchy doc:
// rows of the form `| held | acquired | why |`, lock names in
// backticks. Unknown lock names and a missing doc are findings — the
// doc and the registry must stay in step.
func parseDeclaredOrder(pass *ModulePass, docPath string) map[[2]string]bool {
	docPos := func(line int) token.Position {
		return token.Position{Filename: docPath, Line: line, Column: 1}
	}
	data, err := os.ReadFile(docPath)
	if err != nil {
		pass.ReportAt(docPos(1),
			"cannot read the declared lock order (%s): %v", lockHierarchyDoc, err)
		return nil
	}
	declared := map[[2]string]bool{}
	// Only the table whose header's first cell is "Held" (or
	// "While holding") declares edges; the doc may carry other tables
	// (e.g. a lock inventory) that must not be parsed as rows.
	inOrderTable := false
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			inOrderTable = false
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) < 2 {
			continue
		}
		for j := range cells {
			cells[j] = strings.Trim(strings.TrimSpace(cells[j]), "`")
		}
		if isOrderHeader(cells) {
			inOrderTable = true
			continue
		}
		if isSeparatorRow(cells) || !inOrderTable {
			continue
		}
		from, to := cells[0], cells[1]
		bad := false
		for _, k := range []string{from, to} {
			if !knownLockKey(k) {
				pass.ReportAt(docPos(i+1),
					"unknown lock %q in %s; tracked locks are: %s",
					k, lockHierarchyDoc, strings.Join(LockKeys(), ", "))
				bad = true
			}
		}
		if bad {
			continue
		}
		if from == to {
			pass.ReportAt(docPos(i+1), "self-edge %s → %s declared in %s", from, to, lockHierarchyDoc)
			continue
		}
		declared[[2]string{from, to}] = true
	}
	// The declared order must itself be a partial order: closure
	// containing both a→b and b→a means the doc declares a cycle.
	closure := transitiveClosure(declared)
	for e := range closure {
		if e[0] < e[1] && closure[[2]string{e[1], e[0]}] {
			pass.ReportAt(docPos(1),
				"declared lock order contains a cycle between %s and %s", e[0], e[1])
		}
	}
	return declared
}

// isSeparatorRow recognizes the |---|---| divider under a table header.
func isSeparatorRow(cells []string) bool {
	for _, c := range cells {
		if c != "" && strings.Trim(c, "-: ") != "" {
			return false
		}
	}
	return true
}

// isOrderHeader recognizes the declared-order table's header row.
func isOrderHeader(cells []string) bool {
	return strings.EqualFold(cells[0], "held") || strings.EqualFold(cells[0], "while holding")
}

// transitiveClosure closes the declared edge set: declaring a→b and
// b→c allows a→c without spelling every composite out.
func transitiveClosure(edges map[[2]string]bool) map[[2]string]bool {
	out := map[[2]string]bool{}
	for e := range edges {
		out[e] = true
	}
	keys := LockKeys()
	for _, k := range keys {
		for _, i := range keys {
			for _, j := range keys {
				if out[[2]string{i, k}] && out[[2]string{k, j}] {
					out[[2]string{i, j}] = true
				}
			}
		}
	}
	return out
}

// reportCycles finds every elementary cycle in the observed edge set
// and reports each once, anchored at an undeclared edge's acquisition
// site when the cycle has one (it must, if the declared order is
// acyclic), with the witness path for every hop.
func reportCycles(pass *ModulePass, edges map[[2]string]*lockEdge) {
	adj := map[string][]string{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, next := range adj {
		sort.Strings(next)
	}
	starts := make([]string, 0, len(adj))
	for k := range adj {
		starts = append(starts, k)
	}
	sort.Strings(starts)

	seen := map[string]bool{}
	var stack []string
	onStack := map[string]bool{}
	var dfs func(n string)
	emit := func(cycle []string) {
		// Canonicalize: rotate so the smallest lock leads, and dedupe.
		min := 0
		for i := range cycle {
			if cycle[i] < cycle[min] {
				min = i
			}
		}
		rot := append(append([]string{}, cycle[min:]...), cycle[:min]...)
		sig := strings.Join(rot, "→")
		if seen[sig] {
			return
		}
		seen[sig] = true
		var hops []string
		for i := range rot {
			e := edges[[2]string{rot[i], rot[(i+1)%len(rot)]}]
			hops = append(hops, fmt.Sprintf("%s→%s via %s", e.from, e.to, e.path))
		}
		// Anchor at the closing hop back to the smallest lock: with the
		// declared order acyclic, that edge is the anomalous one in the
		// common two-lock case.
		anchor := edges[[2]string{rot[len(rot)-1], rot[0]}]
		pass.Reportf(anchor.pos, "lock-order cycle: %s → %s; %s",
			strings.Join(rot, " → "), rot[0], strings.Join(hops, "; "))
	}
	dfs = func(n string) {
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range adj[n] {
			if onStack[m] {
				for i, s := range stack {
					if s == m {
						emit(append([]string{}, stack[i:]...))
						break
					}
				}
				continue
			}
			dfs(m)
		}
		stack = stack[:len(stack)-1]
		onStack[n] = false
	}
	for _, s := range starts {
		dfs(s)
	}
}
