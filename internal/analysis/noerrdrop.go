package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// noerrdrop flags silently discarded errors in the internal packages
// and the CLIs: `_ = f(...)` assignments and bare call statements where
// f returns an error. Both of the bug classes earlier PRs fixed by hand (enact.go's
// discarded Link error, StartActivity's dropped Finish) would have been
// one jcflint run away. Deliberate discards take
// //lint:allow noerrdrop <reason>.
//
// Excluded: fmt printing (Print*/Fprint* — the repo's experiment and
// report writers emit hundreds of fmt.Fprintf calls into an io.Writer,
// and a failed report write has no recovery path; important bytes go
// through backend.Put and friends, which ARE checked), and
// Write/WriteString on bytes.Buffer and strings.Builder, whose
// contracts pin the error to nil.
var NoErrDropAnalyzer = &Analyzer{
	Name: "noerrdrop",
	Doc:  "errors must be handled, returned, or explicitly allowed — not discarded",
	Match: func(p *Package) bool {
		return strings.Contains(p.Path, "/internal/") || strings.HasPrefix(p.Path, "internal/") ||
			strings.Contains(p.Path, "/cmd/") || strings.HasPrefix(p.Path, "cmd/")
	},
	Run: runNoErrDrop,
}

func runNoErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ExprStmt:
				if call, ok := nn.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "result of %s discarded; handle the error or annotate //lint:allow noerrdrop")
				}
			case *ast.AssignStmt:
				if allBlank(nn.Lhs) && len(nn.Rhs) == 1 {
					if call, ok := nn.Rhs[0].(*ast.CallExpr); ok {
						checkDroppedCall(pass, call, "error from %s assigned to _; handle it or annotate //lint:allow noerrdrop")
					}
				}
			}
			return true
		})
	}
}

func checkDroppedCall(pass *Pass, call *ast.CallExpr, format string) {
	if !returnsError(pass.Info, call) || isNeverFailingWrite(pass, call) {
		return
	}
	name := "call"
	if fn := calleeFunc(pass.Info, call); fn != nil {
		name = fn.Name()
		if recv := recvNamed(fn); recv != nil {
			name = recv.Obj().Name() + "." + name
		} else if fn.Pkg() != nil && fn.Pkg() != pass.Types {
			name = fn.Pkg().Name() + "." + name
		}
	}
	pass.Reportf(call.Pos(), format, name)
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// isNeverFailingWrite excludes the error returns that exist only to
// satisfy io interfaces: fmt printing to the standard streams and
// writes into in-memory buffers.
func isNeverFailingWrite(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if recv := recvNamed(fn); recv != nil && isInMemoryWriterType(recv) {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

func isInMemoryWriterType(n *types.Named) bool {
	if n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}
