package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// errflow enforces the wrap-safe error-flow contract: package-level
// sentinel errors (oms.ErrFeedGap, repl.ErrReadOnlyReplica, io.EOF, …)
// may only be tested with errors.Is — never == or != — and errors
// wrapped into a new message with fmt.Errorf must use the %w verb, not
// %v or %s. A == comparison breaks the moment any layer wraps the
// sentinel for context, which is exactly what the service boundary in
// cmd/jcfd will do; %v wrapping strips the chain so errors.Is on the
// caller side stops matching. Both bugs are invisible at the site that
// introduces them and surface as dead error-handling paths elsewhere.
var ErrFlowAnalyzer = &Analyzer{
	Name: "errflow",
	Doc:  "sentinel errors compared only via errors.Is; error wrapping uses %w",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.BinaryExpr:
					checkSentinelCompare(pass, nn)
				case *ast.SwitchStmt:
					checkSentinelSwitch(pass, nn)
				case *ast.CallExpr:
					checkErrorfWrap(pass, nn)
				}
				return true
			})
		}
	},
}

// sentinelVar reports whether the expression resolves to a
// package-scope variable of type error — a sentinel.
func sentinelVar(info *types.Info, x ast.Expr) *types.Var {
	var id *ast.Ident
	switch xx := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = xx
	case *ast.SelectorExpr:
		id = xx.Sel
	default:
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !isErrorType(obj.Type()) {
		return nil
	}
	return obj
}

func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	s := sentinelVar(pass.Info, be.X)
	if s == nil {
		s = sentinelVar(pass.Info, be.Y)
	}
	if s == nil {
		return
	}
	pass.Reportf(be.OpPos,
		"sentinel error %s compared with %s; use errors.Is so the check survives wrapping",
		s.Name(), be.Op)
}

func checkSentinelSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t := typeOf(pass.Info, sw.Tag)
	if t == nil || !isErrorType(t) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, x := range cc.List {
			if s := sentinelVar(pass.Info, x); s != nil {
				pass.Reportf(x.Pos(),
					"sentinel error %s matched by switch case (an == comparison); use errors.Is so the check survives wrapping",
					s.Name())
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error value to a
// verb other than %w. The scan is deliberately conservative: indexed
// verbs ([1]s) or a spread argument make the verb/argument pairing
// ambiguous, so the whole call is skipped rather than misattributed.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass.Info, call)
	if callee == nil || callee.Pkg() == nil ||
		callee.Pkg().Path() != "fmt" || callee.Name() != "Errorf" {
		return
	}
	if call.Ellipsis.IsValid() || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)

	argIdx := 1
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags.
		for i < len(format) && (format[i] == '#' || format[i] == '+' ||
			format[i] == '-' || format[i] == ' ' || format[i] == '0') {
			i++
		}
		if i < len(format) && format[i] == '[' {
			return // indexed verbs: pairing is ambiguous, skip the call
		}
		// Width, possibly '*' (consumes an argument).
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				argIdx++
			}
			i++
		}
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					argIdx++
				}
				i++
			}
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if argIdx < len(call.Args) {
			arg := call.Args[argIdx]
			if verb != 'w' {
				if t := typeOf(pass.Info, arg); t != nil && isErrorType(t) {
					pass.Reportf(arg.Pos(),
						"error wrapped with %%%c; use %%w so errors.Is/As can unwrap it", verb)
				}
			}
		}
		argIdx++
	}
}
