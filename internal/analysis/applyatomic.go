package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// applyatomic machine-checks PR 3's atomicity convention: an exported
// jcf.Framework method whose call tree performs two or more store
// mutations must funnel them through ONE atomic group — a Batch handed
// to Store.Apply (or an explicit Begin/Commit transaction, which the
// batch layer applies as one group). Sequential Create/Set/Link calls
// from a desktop entry point reintroduce exactly the check-then-act
// windows PR 3 closed: a concurrent designer can observe (or collide
// with) the state between step one and step two.
//
// The count runs over the shared cross-package call graph, so mutations
// buried in helpers — in jcf or out of it — are charged to the exported
// method that reaches them. A call inside a loop counts twice (it can
// execute twice), a call to Apply/Commit counts as one group however
// many ops the batch carries.
var ApplyAtomicAnalyzer = &Analyzer{
	Name:      "applyatomic",
	Doc:       "exported jcf.Framework methods performing ≥2 store mutations must batch them through one Store.Apply",
	RunModule: runApplyAtomic,
}

// singleOpMutators are the one-op oms.Store write entry points: each
// call is its own commit, invisible to batching.
var singleOpMutators = map[string]bool{
	"Create":      true,
	"Set":         true,
	"CopyIn":      true,
	"CopyInBytes": true,
	"Link":        true,
	"Unlink":      true,
	"Delete":      true,
}

// groupMutators apply one atomic group per call, however many ops it
// holds. Begin is deliberately absent: the mutation happens at Commit.
var groupMutators = map[string]bool{
	"Apply":             true,
	"Commit":            true,
	"ApplyReplicated":   true,
	"ResetFromSnapshot": true,
	"ReplayChanges":     true,
}

// mutWitness is one concrete mutation group a call tree reaches.
type mutWitness struct {
	pos  token.Pos
	path string // caller → ... → Store.<op>
}

// mutInfo summarizes one function: how many separate mutation groups
// its synchronous call tree performs (saturated at 2 — the analyzer
// only needs "one" vs "more than one") with up to two witnesses.
type mutInfo struct {
	groups    int
	witnesses []mutWitness
}

func (m *mutInfo) add(n int, ws ...mutWitness) {
	m.groups += n
	if m.groups > 2 {
		m.groups = 2
	}
	for _, w := range ws {
		if len(m.witnesses) < 2 {
			m.witnesses = append(m.witnesses, w)
		}
	}
}

func runApplyAtomic(pass *ModulePass) {
	g := pass.Snap.CallGraph()
	memo := map[*types.Func]*mutInfo{}
	onStack := map[*types.Func]bool{}

	var mutOf func(fn *types.Func) *mutInfo
	mutOf = func(fn *types.Func) *mutInfo {
		if m, ok := memo[fn]; ok {
			return m
		}
		if onStack[fn] {
			return &mutInfo{} // recursion: charge the cycle once, at the top
		}
		onStack[fn] = true
		defer delete(onStack, fn)
		m := &mutInfo{}
		node := g.Nodes[fn]
		if node != nil {
			for _, ev := range node.Events {
				if ev.Kind != EvCall {
					continue
				}
				mult := 1
				if ev.InLoop {
					mult = 2
				}
				callee := ev.Callee
				switch {
				case singleOpMutators[callee.Name()] && recvNamedIs(callee, "Store"):
					m.add(mult, mutWitness{pos: ev.Pos, path: FuncLabel(fn) + " → Store." + callee.Name()})
				case groupMutators[callee.Name()] && recvNamedIs(callee, "Store"):
					m.add(mult, mutWitness{pos: ev.Pos, path: FuncLabel(fn) + " → Store." + callee.Name()})
				default:
					sub := mutOf(callee)
					if sub.groups == 0 {
						continue
					}
					var ws []mutWitness
					for _, w := range sub.witnesses {
						ws = append(ws, mutWitness{pos: ev.Pos, path: FuncLabel(fn) + " → " + w.path})
					}
					m.add(sub.groups*mult, ws...)
				}
			}
		}
		memo[fn] = m
		return m
	}

	fns := make([]*types.Func, 0, len(g.Nodes))
	for fn := range g.Nodes {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return FuncLabel(fns[i]) < FuncLabel(fns[j]) })

	for _, fn := range fns {
		node := g.Nodes[fn]
		f := &guardFacts{decl: node.Decl, pkg: node.Pkg}
		if !isExportedFrameworkMethod(fn, f) {
			continue
		}
		m := mutOf(fn)
		if m.groups < 2 {
			continue
		}
		var sites []string
		for _, w := range m.witnesses {
			p := pass.Snap.Fset.Position(w.pos)
			sites = append(sites, fmt.Sprintf("%s (%s:%d)", w.path, filepath.Base(p.Filename), p.Line))
		}
		pass.Reportf(node.Decl.Name.Pos(),
			"%s performs ≥2 separate store mutations — e.g. %s — without one Batch+Store.Apply; "+
				"a concurrent designer can observe the state between them",
			fn.Name(), joinSites(sites))
	}
}

func joinSites(sites []string) string {
	switch len(sites) {
	case 0:
		return "(no witness)"
	case 1:
		return sites[0]
	default:
		return sites[0] + " and " + sites[1]
	}
}
