package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// holdblock is the hold-a-lock-while-blocking analyzer: no named lock
// may be held across a transitively-blocking call — network or disk
// I/O, channel send/recv/select without default, time.Sleep,
// WaitGroup.Wait, the store's commit/snapshot entry points from outside
// oms, or Replica.WaitFor. A service thread stalled inside fw.mu stalls
// every designer session behind it; this analyzer makes that latency
// bug a lint failure with the full call path to the blocking site.
//
// Deliberate hold-and-block pairs are declared in the machine-checked
// "Blocking-call allowlist" table of docs/lock-hierarchy.md: a row
// `| lock | identifier | why |` legalizes any blocking path that passes
// through `identifier` — a blocking class (time.Sleep, os-io), a direct
// site (os.WriteFile), or any function label on the witness path
// (oms.Store.Apply). Site-specific exceptions use
// //lint:allow holdblock <reason> instead.
var HoldBlockAnalyzer = &Analyzer{
	Name: "holdblock",
	Doc:  "no transitively-blocking call while holding a named lock (allowlist in docs/lock-hierarchy.md)",
	RunModule: func(pass *ModulePass) {
		runHoldBlock(pass)
	},
}

// parseBlockAllowlist reads the blocking-call allowlist table out of the
// hierarchy doc: the table whose header's first cell is "Lock", rows
// `| lock key | allowed identifier | why |`. Unknown lock keys are
// findings, like the declared-order table's. A missing doc is reported
// by lockgraph already, so it is silent here.
func parseBlockAllowlist(pass *ModulePass, docPath string) map[string]map[string]bool {
	data, err := os.ReadFile(docPath)
	if err != nil {
		return nil
	}
	docPos := func(line int) token.Position {
		return token.Position{Filename: docPath, Line: line, Column: 1}
	}
	allow := map[string]map[string]bool{}
	inTable := false
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			inTable = false
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) < 2 {
			continue
		}
		for j := range cells {
			cells[j] = strings.Trim(strings.TrimSpace(cells[j]), "`")
		}
		if strings.EqualFold(cells[0], "lock") {
			inTable = true
			continue
		}
		if isSeparatorRow(cells) || !inTable {
			continue
		}
		lock, ident := cells[0], cells[1]
		if !knownLockKey(lock) {
			pass.ReportAt(docPos(i+1),
				"unknown lock %q in the blocking-call allowlist of %s; tracked locks are: %s",
				lock, lockHierarchyDoc, strings.Join(LockKeys(), ", "))
			continue
		}
		if ident == "" {
			pass.ReportAt(docPos(i+1),
				"empty identifier in the blocking-call allowlist of %s", lockHierarchyDoc)
			continue
		}
		if allow[lock] == nil {
			allow[lock] = map[string]bool{}
		}
		allow[lock][ident] = true
	}
	return allow
}

func runHoldBlock(pass *ModulePass) {
	docPath := filepath.Join(pass.Snap.Root, filepath.FromSlash(lockHierarchyDoc))
	allow := parseBlockAllowlist(pass, docPath)

	g := pass.Snap.CallGraph()
	lockSums := g.lockSummaries()
	blockSums := g.blockSummaries()

	// allowed reports whether any identifier associated with the
	// blocking path — its class, its direct-site description, or any
	// function label along the witness chain — is allowlisted for lock.
	allowed := func(lock string, idents []string) bool {
		m := allow[lock]
		if m == nil {
			return false
		}
		for _, id := range idents {
			if m[id] {
				return true
			}
		}
		return false
	}

	seen := map[string]bool{}
	report := func(lock string, pos token.Pos, class, path string) {
		key := fmt.Sprintf("%d|%s", pos, lock)
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pos,
			"blocking call (%s) while holding %s; path: %s — move it outside the lock or allow `%s` for %s in %s",
			class, lock, path, class, lock, lockHierarchyDoc)
	}

	for _, node := range g.sortedNodes() {
		held := map[string]int{}
		anyHeld := func() bool {
			for _, n := range held {
				if n > 0 {
					return true
				}
			}
			return false
		}
		forHeld := func(f func(lock string)) {
			locks := make([]string, 0, len(held))
			for l, n := range held {
				if n > 0 {
					locks = append(locks, l)
				}
			}
			sort.Strings(locks)
			for _, l := range locks {
				f(l)
			}
		}
		for _, ev := range node.Events {
			if ev.Deferred || ev.Returned {
				// Deferred events run at return, after the body's
				// releases; returned-closure events run in the caller.
				continue
			}
			switch ev.Kind {
			case EvAcquire:
				held[ev.Lock]++
			case EvRelease:
				held[ev.Lock]--
			case EvBlock:
				if !anyHeld() {
					continue
				}
				class := blockClass(ev.Desc)
				path := FuncLabel(node.Fn) + " → " + ev.Desc
				forHeld(func(lock string) {
					if !allowed(lock, []string{class, ev.Desc}) {
						report(lock, ev.Pos, class, path)
					}
				})
			case EvExtCall:
				if !anyHeld() {
					continue
				}
				if class, ok := classifyExtBlocking(ev.Callee); ok {
					desc := FuncLabel(ev.Callee)
					path := FuncLabel(node.Fn) + " → " + desc
					forHeld(func(lock string) {
						if !allowed(lock, []string{class, desc}) {
							report(lock, ev.Pos, class, path)
						}
					})
				}
			case EvCall:
				if anyHeld() {
					if class, ok := classifyModuleBlocking(ev.Callee, node.Pkg.Name); ok {
						desc := FuncLabel(ev.Callee)
						path := FuncLabel(node.Fn) + " → " + desc
						forHeld(func(lock string) {
							if !allowed(lock, []string{class, desc}) {
								report(lock, ev.Pos, class, path)
							}
						})
					}
					if cs := blockSums[ev.Callee]; cs != nil {
						classes := make([]string, 0, len(cs.mayBlock))
						for class := range cs.mayBlock {
							classes = append(classes, class)
						}
						sort.Strings(classes)
						for _, class := range classes {
							labels, path := g.BlockPath(ev.Callee, class)
							idents := append([]string{class}, labels...)
							// The leaf description is the path's tail.
							if i := strings.LastIndex(path, " → "); i >= 0 {
								idents = append(idents, path[i+len(" → "):])
							}
							forHeld(func(lock string) {
								if !allowed(lock, idents) {
									report(lock, ev.Pos, class, FuncLabel(node.Fn)+" → "+path)
								}
							})
						}
					}
				}
				if ls := lockSums[ev.Callee]; ls != nil {
					for k, d := range ls.delta {
						held[k] += d
					}
				}
			}
		}
	}
}
