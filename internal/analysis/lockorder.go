package analysis

import (
	"go/ast"
	"go/token"
)

// lockorder enforces the OMS kernel's deadlock-freedom convention:
// stripe mutexes are only ever multi-acquired in ascending stripe order,
// and the only code allowed to do that is the small set of sorted
// helpers. Everything else takes at most ONE stripe lock directly (the
// single-op fast paths) — the moment a function wants a second stripe it
// must go through lockPair/lockAll/rlockAll or Apply's stripe-set path,
// because two hand-written acquisitions cannot be statically proven
// ordered.
//
// Three shapes are flagged outside the allowed helpers:
//
//  1. indexed acquisition — st.stripes[i].mu.Lock(): raw index math over
//     the stripe array is exactly how an out-of-order pair sneaks in;
//  2. a second stripe-lock acquisition while another stripe lock is
//     statically live in the same function;
//  3. any stripe-lock acquisition inside a loop (a loop over stripes IS
//     a multi-acquisition).
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "stripe mutexes may only be multi-acquired via the sorted helpers (lockPair/lockAll/rlockAll/Apply)",
	Match: func(p *Package) bool {
		return p.Name == "oms" && p.Types.Scope().Lookup("stripe") != nil
	},
	Run: runLockOrder,
}

// lockOrderAllowed are the sorted-acquisition helpers: the only
// functions allowed to index the stripe array for locking or to hold
// more than one stripe lock. Apply is the grouped-operation commit path
// (its stripe-set mask loop is the batch equivalent of lockAll);
// forEachStripeRLocked releases each stripe before taking the next.
var lockOrderAllowed = map[string]bool{
	"lockPair":             true,
	"lockAll":              true,
	"unlockAll":            true,
	"rlockAll":             true,
	"runlockAll":           true,
	"forEachStripeRLocked": true,
	"Apply":                true,
}

func runLockOrder(pass *Pass) {
	decls := funcDecls(pass.Package)
	for _, fd := range decls {
		if fd.Body == nil || lockOrderAllowed[fd.Name.Name] {
			continue
		}
		checkLockOrderFunc(pass, fd)
	}
}

// stripeLockCall matches x.mu.Lock() / x.mu.RLock() (and the unlock
// forms) where x is a stripe value: returns the stripe expression and
// whether the call acquires (vs releases).
func stripeLockCall(pass *Pass, call *ast.CallExpr) (stripeExpr ast.Expr, acquire bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	var isAcquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isAcquire = true
	case "Unlock", "RUnlock":
		isAcquire = false
	default:
		return nil, false, false
	}
	// sel.X must be the mutex expression <stripe>.mu
	muSel, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel || muSel.Sel.Name != "mu" {
		return nil, false, false
	}
	tv, okT := pass.Info.Types[muSel.X]
	if !okT || !typeNameIs(tv.Type, "stripe") {
		return nil, false, false
	}
	return muSel.X, isAcquire, true
}

// containsStripesIndex reports whether the expression reaches the
// stripe through raw indexing of a field/var named "stripes".
func containsStripesIndex(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ix, ok := n.(*ast.IndexExpr); ok {
			if r := rootIdentOfSelector(ix.X); r != "" && r == "stripes" {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootIdentOfSelector returns the name of the final selector (or ident)
// an index expression indexes — "stripes" for st.stripes[i].
func rootIdentOfSelector(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

func checkLockOrderFunc(pass *Pass, fd *ast.FuncDecl) {
	// Collect every stripe-lock call in source order, remembering loop
	// nesting. Source order approximates execution order well enough
	// here: the kernel's lock/unlock pairs are straight-line.
	type lockEvent struct {
		pos     token.Pos
		expr    ast.Expr
		acquire bool
		inLoop  bool
		indexed bool
	}
	var events []lockEvent
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(loopBody(nn), walk)
			loopDepth--
			return false
		case *ast.CallExpr:
			if se, acquire, ok := stripeLockCall(pass, nn); ok {
				events = append(events, lockEvent{
					pos:     nn.Pos(),
					expr:    se,
					acquire: acquire,
					inLoop:  loopDepth > 0,
					indexed: containsStripesIndex(se),
				})
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)

	// held tracks, per root identifier, how many acquisitions are
	// statically live. Distinct roots held together = a hand-ordered
	// multi-stripe hold.
	held := map[string]int{}
	liveRoots := 0
	for _, ev := range events {
		root := "?"
		if id := rootIdent(ev.expr); id != nil {
			root = id.Name
		}
		if !ev.acquire {
			if held[root] > 0 {
				held[root]--
				if held[root] == 0 {
					liveRoots--
				}
			}
			continue
		}
		if ev.indexed {
			pass.Reportf(ev.pos, "stripe lock acquired by indexing the stripe array directly; use lockPair/lockAll/rlockAll or Apply's stripe-set path")
			continue
		}
		if ev.inLoop {
			pass.Reportf(ev.pos, "stripe lock acquired inside a loop; a loop over stripes is a multi-acquisition and must use the sorted helpers")
			continue
		}
		if liveRoots > 0 && held[root] == 0 {
			pass.Reportf(ev.pos, "second stripe lock acquired while another stripe lock is held; unordered multi-stripe holds deadlock — use lockPair or lockAll")
			continue
		}
		if held[root] == 0 {
			liveRoots++
		}
		held[root]++
	}
}

func loopBody(n ast.Node) ast.Node {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return n
}
