// Package otod implements a small semantic data-modelling notation in the
// style of OTO-D (ter Bekke, "Semantic Data Modelling", 1992), the notation
// the paper uses for its two architecture figures. A Model is a graph of
// entity types and named binary relationships between them, optionally
// grouped into regions (the figures' dashed boxes such as "Flows",
// "Activities", "Project structure", "Variants", "Design data").
//
// The package serves two purposes in this reproduction:
//
//  1. Figures 1 and 2 of the paper are encoded as Models (see jcfmodel.go
//     and fmcadmodel.go) and can be re-rendered as entity/relationship
//     inventories — the reproduction of those figures.
//  2. A Model can be translated into an oms.Schema so the frameworks'
//     information architectures are enforced at run time, and instance
//     populations can be validated against the model.
package otod

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/oms"
)

// Entity is one entity type (a box in the OTO-D diagram).
type Entity struct {
	Name   string
	Region string // dashed grouping box; may be empty
	Attrs  []oms.AttrDef
}

// Relationship is a named, directed edge between two entity types.
type Relationship struct {
	Name     string
	From, To string
	FromCard oms.Cardinality
	ToCard   oms.Cardinality
}

// Model is a complete OTO-D diagram.
type Model struct {
	Title    string
	entities map[string]*Entity
	rels     []Relationship
}

// NewModel returns an empty model with the given title.
func NewModel(title string) *Model {
	return &Model{Title: title, entities: map[string]*Entity{}}
}

// AddEntity registers an entity type. Duplicate names are an error.
func (m *Model) AddEntity(e Entity) error {
	if e.Name == "" {
		return fmt.Errorf("otod: empty entity name")
	}
	if _, dup := m.entities[e.Name]; dup {
		return fmt.Errorf("otod: duplicate entity %q", e.Name)
	}
	cp := e
	cp.Attrs = append([]oms.AttrDef(nil), e.Attrs...)
	m.entities[e.Name] = &cp
	return nil
}

// AddRel registers a relationship; both endpoints must already exist.
func (m *Model) AddRel(r Relationship) error {
	if r.Name == "" {
		return fmt.Errorf("otod: empty relationship name")
	}
	if _, ok := m.entities[r.From]; !ok {
		return fmt.Errorf("otod: relationship %q: unknown entity %q", r.Name, r.From)
	}
	if _, ok := m.entities[r.To]; !ok {
		return fmt.Errorf("otod: relationship %q: unknown entity %q", r.Name, r.To)
	}
	for _, have := range m.rels {
		if have.Name == r.Name && have.From == r.From && have.To == r.To {
			return fmt.Errorf("otod: duplicate relationship %q %s->%s", r.Name, r.From, r.To)
		}
	}
	m.rels = append(m.rels, r)
	return nil
}

// Entity returns the named entity, or nil.
func (m *Model) Entity(name string) *Entity { return m.entities[name] }

// Entities returns all entities sorted by name.
func (m *Model) Entities() []Entity {
	names := make([]string, 0, len(m.entities))
	for n := range m.entities {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Entity, 0, len(names))
	for _, n := range names {
		out = append(out, *m.entities[n])
	}
	return out
}

// Relationships returns all relationships sorted by (name, from, to).
func (m *Model) Relationships() []Relationship {
	out := append([]Relationship(nil), m.rels...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Regions returns the distinct region names, sorted, omitting "".
func (m *Model) Regions() []string {
	set := map[string]bool{}
	for _, e := range m.entities {
		if e.Region != "" {
			set[e.Region] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// EntityCount and RelCount size the model (used when reproducing the
// figures as inventories).
func (m *Model) EntityCount() int { return len(m.entities) }

// RelCount returns the number of relationships in the model.
func (m *Model) RelCount() int { return len(m.rels) }

// Schema translates the model into an oms.Schema so instances can be stored
// and validated. Relationship names are qualified as "name:From->To" when a
// bare name would collide (OTO-D reuses edge labels like "precedes").
func (m *Model) Schema() (*oms.Schema, error) {
	s := oms.NewSchema()
	for _, e := range m.Entities() {
		if err := s.AddClass(e.Name, e.Attrs...); err != nil {
			return nil, err
		}
	}
	used := map[string]bool{}
	for _, r := range m.Relationships() {
		name := r.Name
		if used[name] {
			name = fmt.Sprintf("%s:%s->%s", r.Name, r.From, r.To)
		}
		used[name] = true
		if err := s.AddRel(oms.RelDef{Name: name, From: r.From, To: r.To, FromCard: r.FromCard, ToCard: r.ToCard}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SchemaRelName returns the oms.Schema relationship name used for r by
// Schema: the bare name if unambiguous, the qualified form otherwise.
func (m *Model) SchemaRelName(r Relationship) string {
	count := 0
	firstIsR := false
	for _, have := range m.Relationships() {
		if have.Name == r.Name {
			if count == 0 {
				firstIsR = have.From == r.From && have.To == r.To
			}
			count++
		}
	}
	if count <= 1 || firstIsR {
		return r.Name
	}
	return fmt.Sprintf("%s:%s->%s", r.Name, r.From, r.To)
}

// Render prints the model as a text inventory: the reproduction of the
// paper's figures. Entities are grouped by region.
func (m *Model) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", m.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(m.Title)))
	fmt.Fprintf(&b, "entities: %d, relationships: %d\n\n", m.EntityCount(), m.RelCount())

	regions := m.Regions()
	regions = append(regions, "") // ungrouped last
	for _, reg := range regions {
		var names []string
		for _, e := range m.Entities() {
			if e.Region == reg {
				names = append(names, e.Name)
			}
		}
		if len(names) == 0 {
			continue
		}
		label := reg
		if label == "" {
			label = "(ungrouped)"
		}
		fmt.Fprintf(&b, "[%s]\n", label)
		for _, n := range names {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	b.WriteString("\nrelationships:\n")
	for _, r := range m.Relationships() {
		fmt.Fprintf(&b, "  %-28s %s (%s) -> %s (%s)\n", r.Name, r.From, r.FromCard, r.To, r.ToCard)
	}
	return b.String()
}

// DOT renders the model in Graphviz dot syntax, clustering by region, so
// the figures can be drawn.
func (m *Model) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", m.Title)
	regions := m.Regions()
	for i, reg := range regions {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n    style=dashed;\n", i, reg)
		for _, e := range m.Entities() {
			if e.Region == reg {
				fmt.Fprintf(&b, "    %q;\n", e.Name)
			}
		}
		b.WriteString("  }\n")
	}
	for _, e := range m.Entities() {
		if e.Region == "" {
			fmt.Fprintf(&b, "  %q;\n", e.Name)
		}
	}
	for _, r := range m.Relationships() {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", r.From, r.To, r.Name)
	}
	b.WriteString("}\n")
	return b.String()
}

// Validate checks an instance population in store against the model: every
// object's class must be a model entity and every link must correspond to a
// model relationship. (Cardinalities are enforced by oms at link time.)
func (m *Model) Validate(store *oms.Store) []string {
	var problems []string
	for _, oid := range store.All("") {
		cls, err := store.ClassOf(oid)
		if err != nil {
			continue
		}
		if m.Entity(cls) == nil {
			problems = append(problems, fmt.Sprintf("object %d has class %q not in model %q", oid, cls, m.Title))
		}
	}
	return problems
}
