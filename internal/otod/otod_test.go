package otod

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/oms"
)

func smallModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel("test")
	if err := m.AddEntity(Entity{Name: "A", Region: "r1", Attrs: []oms.AttrDef{{Name: "name", Kind: oms.KindString}}}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddEntity(Entity{Name: "B", Region: "r2"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRel(Relationship{Name: "ab", From: "A", To: "B", FromCard: oms.One, ToCard: oms.Many}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelBasics(t *testing.T) {
	m := smallModel(t)
	if m.EntityCount() != 2 || m.RelCount() != 1 {
		t.Fatalf("counts = %d/%d", m.EntityCount(), m.RelCount())
	}
	if m.Entity("A") == nil || m.Entity("Z") != nil {
		t.Fatal("Entity lookup broken")
	}
	if got := m.Regions(); len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Fatalf("Regions = %v", got)
	}
	ents := m.Entities()
	if len(ents) != 2 || ents[0].Name != "A" {
		t.Fatalf("Entities = %v", ents)
	}
}

func TestModelErrors(t *testing.T) {
	m := smallModel(t)
	if err := m.AddEntity(Entity{Name: ""}); err == nil {
		t.Fatal("empty entity accepted")
	}
	if err := m.AddEntity(Entity{Name: "A"}); err == nil {
		t.Fatal("duplicate entity accepted")
	}
	if err := m.AddRel(Relationship{Name: ""}); err == nil {
		t.Fatal("empty relationship accepted")
	}
	if err := m.AddRel(Relationship{Name: "x", From: "A", To: "Z"}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if err := m.AddRel(Relationship{Name: "x", From: "Z", To: "A"}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if err := m.AddRel(Relationship{Name: "ab", From: "A", To: "B"}); err == nil {
		t.Fatal("duplicate relationship accepted")
	}
}

func TestSchemaTranslation(t *testing.T) {
	m := smallModel(t)
	// Add a second rel reusing the name "ab" with different endpoints, as
	// OTO-D diagrams do with labels like "precedes".
	if err := m.AddEntity(Entity{Name: "C"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRel(Relationship{Name: "ab", From: "B", To: "C"}); err != nil {
		t.Fatal(err)
	}
	s, err := m.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.Class("A") == nil || s.Class("B") == nil || s.Class("C") == nil {
		t.Fatal("classes missing from schema")
	}
	if s.Rel("ab") == nil {
		t.Fatal("first ab missing")
	}
	if s.Rel("ab:B->C") == nil {
		t.Fatalf("qualified second ab missing; rels = %v", s.Rels())
	}
	if got := m.SchemaRelName(Relationship{Name: "ab", From: "A", To: "B"}); got != "ab" {
		t.Fatalf("SchemaRelName first = %q", got)
	}
	if got := m.SchemaRelName(Relationship{Name: "ab", From: "B", To: "C"}); got != "ab:B->C" {
		t.Fatalf("SchemaRelName second = %q", got)
	}
}

func TestRenderAndDOT(t *testing.T) {
	m := smallModel(t)
	out := m.Render()
	for _, want := range []string{"test", "entities: 2", "[r1]", "[r2]", "ab", "A (1) -> B (N)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	dot := m.DOT()
	for _, want := range []string{"digraph", "cluster_0", `"A" -> "B"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestValidate(t *testing.T) {
	m := smallModel(t)
	schema, err := m.Schema()
	if err != nil {
		t.Fatal(err)
	}
	st := oms.NewStore(schema)
	if _, err := st.Create("A", map[string]oms.Value{"name": oms.S("x")}); err != nil {
		t.Fatal(err)
	}
	if probs := m.Validate(st); len(probs) != 0 {
		t.Fatalf("valid store flagged: %v", probs)
	}
	// A store whose schema has extra classes produces validation problems.
	s2 := oms.NewSchema()
	if err := s2.AddClass("Other"); err != nil {
		t.Fatal(err)
	}
	st2 := oms.NewStore(s2)
	if _, err := st2.Create("Other", nil); err != nil {
		t.Fatal(err)
	}
	if probs := m.Validate(st2); len(probs) != 1 {
		t.Fatalf("foreign class not flagged: %v", probs)
	}
}

// --- the paper's figures ------------------------------------------------

func TestJCFModelFigure1(t *testing.T) {
	m := JCFModel()
	// The figure's regions must all be present.
	wantRegions := []string{"Activities", "Configurations", "Design data", "Flows", "Project structure", "Team", "Variants"}
	got := m.Regions()
	if len(got) != len(wantRegions) {
		t.Fatalf("Regions = %v, want %v", got, wantRegions)
	}
	for i := range got {
		if got[i] != wantRegions[i] {
			t.Fatalf("Regions = %v, want %v", got, wantRegions)
		}
	}
	// Key entities named in the paper's text and Table 1.
	for _, e := range []string{"Project", "Cell", "CellVersion", "Variant", "DesignObject",
		"DesignObjectVersion", "ViewType", "Flow", "Activity", "ActivityProxy", "Tool",
		"Team", "User", "Configuration", "ConfigVersion", "Part", "DirectoryPath", "ActiveExecVersion"} {
		if m.Entity(e) == nil {
			t.Errorf("Figure 1 missing entity %q", e)
		}
	}
	// Key relationships the paper names: equivalent/derived versioning,
	// compOf hierarchy, precedes, uses, needs/creates.
	names := map[string]bool{}
	for _, r := range m.Relationships() {
		names[r.Name] = true
	}
	for _, r := range []string{"equivalent", "derived", "compOf", "precedes", "uses", "needs", "creates", "hasVariant", "hasVersion"} {
		if !names[r] {
			t.Errorf("Figure 1 missing relationship %q", r)
		}
	}
	// The model must translate to a valid schema.
	if _, err := m.Schema(); err != nil {
		t.Fatalf("Schema: %v", err)
	}
}

func TestFMCADModelFigure2(t *testing.T) {
	m := FMCADModel()
	for _, e := range []string{"Library", "Cell", "View", "Viewtype", "Cellview", "CellviewVersion",
		"Config", "CheckOutStatus", "LockedFlag", "Property",
		"Layout", "Schema", "Symbol", "LayoutVersion", "SchemaVersion", "SymbolVersion", "SymbolInSchemaVersion"} {
		if m.Entity(e) == nil {
			t.Errorf("Figure 2 missing entity %q", e)
		}
	}
	names := map[string]bool{}
	for _, r := range m.Relationships() {
		names[r.Name] = true
	}
	for _, r := range []string{"contains", "hasCellview", "ofView", "ofViewtype", "hasVersion",
		"checkedOut", "lock", "cvvInConfig", "configInConfig", "hasProperty", "isa", "instantiates"} {
		if !names[r] {
			t.Errorf("Figure 2 missing relationship %q", r)
		}
	}
	if _, err := m.Schema(); err != nil {
		t.Fatalf("Schema: %v", err)
	}
	// The ".Project" / "=ViewSubType" / ".File" annotations are attributes.
	lib := m.Entity("Library")
	foundDir := false
	for _, a := range lib.Attrs {
		if a.Name == "directory" {
			foundDir = true
		}
	}
	if !foundDir {
		t.Error("Library lacks directory attribute (.Project annotation)")
	}
}

func TestFiguresRenderDeterministic(t *testing.T) {
	a, b := JCFModel().Render(), JCFModel().Render()
	if a != b {
		t.Error("JCF render not deterministic")
	}
	c, d := FMCADModel().DOT(), FMCADModel().DOT()
	if c != d {
		t.Error("FMCAD DOT not deterministic")
	}
}

// Property: every relationship returned by Relationships() survives
// SchemaRelName + Schema translation (the schema has that relationship).
func TestPropertySchemaRelNames(t *testing.T) {
	for _, m := range []*Model{JCFModel(), FMCADModel()} {
		s, err := m.Schema()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range m.Relationships() {
			if s.Rel(m.SchemaRelName(r)) == nil {
				t.Errorf("%s: relationship %s (%s->%s) not resolvable in schema",
					m.Title, r.Name, r.From, r.To)
			}
		}
	}
}

// Property: models with arbitrary entity names remain internally consistent.
func TestPropertyArbitraryEntities(t *testing.T) {
	f := func(raw []string) bool {
		m := NewModel("prop")
		added := map[string]bool{}
		for _, n := range raw {
			if n == "" || added[n] {
				continue
			}
			if err := m.AddEntity(Entity{Name: n}); err != nil {
				return false
			}
			added[n] = true
		}
		return m.EntityCount() == len(added)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
