package otod

import "repro/internal/oms"

// JCFModel returns the information architecture of JCF 3.0 as shown in
// Figure 1 of the paper ("Information architecture of JCF 3.0 (in OTO-D
// format)"). The figure groups entities into the dashed regions Team,
// Flows, Activities, Project structure, Variants, Configurations and
// Design data; the regions and the edges below reconstruct the figure.
//
// JCF distinguishes resources (metadata fully under framework control:
// teams, flows, activities, tools, view types) from project data (cells,
// cell versions, variants, design objects and their versions,
// configurations).
func JCFModel() *Model {
	m := NewModel("Figure 1: Information architecture of JCF 3.0 (OTO-D)")

	must := func(err error) {
		if err != nil {
			panic(err) // model is a package-level constant; an error is a programming bug
		}
	}

	name := oms.AttrDef{Name: "name", Kind: oms.KindString, Required: true}

	// Team region (resources).
	must(m.AddEntity(Entity{Name: "User", Region: "Team", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "Team", Region: "Team", Attrs: []oms.AttrDef{name}}))

	// Flows region (resources / metadata).
	must(m.AddEntity(Entity{Name: "Flow", Region: "Flows", Attrs: []oms.AttrDef{name}}))

	// Activities region (resources / metadata).
	must(m.AddEntity(Entity{Name: "Activity", Region: "Activities", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "ActivityProxy", Region: "Activities", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "Tool", Region: "Activities", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "ViewType", Region: "Activities", Attrs: []oms.AttrDef{name}}))

	// Project structure region.
	must(m.AddEntity(Entity{Name: "Project", Region: "Project structure", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "Cell", Region: "Project structure", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "CellVersion", Region: "Project structure", Attrs: []oms.AttrDef{
		{Name: "num", Kind: oms.KindInt, Required: true},
		{Name: "published", Kind: oms.KindBool},
		// reservedBy mirrors the workspace reservation into the database
		// ("" when free) so reservation traffic rides the change feed and
		// reaches tools via the feed-driven notification bridge.
		{Name: "reservedBy", Kind: oms.KindString},
	}}))
	must(m.AddEntity(Entity{Name: "Part", Region: "Project structure", Attrs: []oms.AttrDef{name}}))

	// Variants region.
	must(m.AddEntity(Entity{Name: "Variant", Region: "Variants", Attrs: []oms.AttrDef{
		{Name: "num", Kind: oms.KindInt, Required: true},
	}}))
	must(m.AddEntity(Entity{Name: "ActiveExecVersion", Region: "Variants", Attrs: []oms.AttrDef{
		{Name: "state", Kind: oms.KindString},
	}}))

	// Configurations region.
	must(m.AddEntity(Entity{Name: "Configuration", Region: "Configurations", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "ConfigVersion", Region: "Configurations", Attrs: []oms.AttrDef{
		{Name: "num", Kind: oms.KindInt, Required: true},
	}}))

	// Design data region.
	must(m.AddEntity(Entity{Name: "DesignObject", Region: "Design data", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "DesignObjectVersion", Region: "Design data", Attrs: []oms.AttrDef{
		{Name: "num", Kind: oms.KindInt, Required: true},
		{Name: "data", Kind: oms.KindBlob},
	}}))
	must(m.AddEntity(Entity{Name: "DirectoryPath", Region: "Design data", Attrs: []oms.AttrDef{
		{Name: "path", Kind: oms.KindString, Required: true},
	}}))

	// Team membership and project support.
	must(m.AddRel(Relationship{Name: "memberOf", From: "User", To: "Team", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "supports", From: "Team", To: "Project", FromCard: oms.Many, ToCard: oms.Many}))

	// Project structure: Project has Cells, Cells have CellVersions,
	// CellVersions form the CompOf hierarchy, Parts decompose CellVersions.
	must(m.AddRel(Relationship{Name: "has", From: "Project", To: "Cell", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "hasVersion", From: "Cell", To: "CellVersion", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "compOf", From: "CellVersion", To: "CellVersion", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "partOf", From: "Part", To: "CellVersion", FromCard: oms.Many, ToCard: oms.One}))

	// Each cell version carries its (possibly modified) flow and team.
	must(m.AddRel(Relationship{Name: "attachedFlow", From: "CellVersion", To: "Flow", FromCard: oms.Many, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "attachedTeam", From: "CellVersion", To: "Team", FromCard: oms.Many, ToCard: oms.One}))

	// Variants: second versioning mechanism inside a cell version.
	must(m.AddRel(Relationship{Name: "hasVariant", From: "CellVersion", To: "Variant", FromCard: oms.One, ToCard: oms.Many}))
	// A variant has one predecessor but may branch into many successors.
	must(m.AddRel(Relationship{Name: "precedes", From: "Variant", To: "Variant", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "activeExec", From: "Variant", To: "ActiveExecVersion", FromCard: oms.One, ToCard: oms.Many}))

	// Flows are built from activities; proxies stand for activities in a
	// flow instance; activities are performed by tools on view types.
	must(m.AddRel(Relationship{Name: "contains", From: "Flow", To: "ActivityProxy", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "proxies", From: "ActivityProxy", To: "Activity", FromCard: oms.Many, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "precedes", From: "ActivityProxy", To: "ActivityProxy", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "performedBy", From: "Activity", To: "Tool", FromCard: oms.Many, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "needs", From: "Activity", To: "ViewType", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "creates", From: "Activity", To: "ViewType", FromCard: oms.Many, ToCard: oms.Many}))

	// Design data: design objects under a variant, versioned, typed,
	// with equivalence/derivation relations and file-system paths.
	must(m.AddRel(Relationship{Name: "uses", From: "Variant", To: "DesignObject", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "hasVersion", From: "DesignObject", To: "DesignObjectVersion", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "ofViewType", From: "DesignObject", To: "ViewType", FromCard: oms.Many, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "equivalent", From: "DesignObjectVersion", To: "DesignObjectVersion", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "derived", From: "DesignObjectVersion", To: "DesignObjectVersion", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "storedAt", From: "DesignObjectVersion", To: "DirectoryPath", FromCard: oms.One, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "needsOfVersion", From: "ActiveExecVersion", To: "DesignObjectVersion", FromCard: oms.Many, ToCard: oms.Many}))

	// Configurations: versioned collections with entries per cell version.
	must(m.AddRel(Relationship{Name: "hasVersion", From: "Configuration", To: "ConfigVersion", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "precedes", From: "ConfigVersion", To: "ConfigVersion", FromCard: oms.One, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "hasEntry", From: "ConfigVersion", To: "DesignObjectVersion", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "configures", From: "Configuration", To: "CellVersion", FromCard: oms.Many, ToCard: oms.One}))

	return m
}
