package otod

import "repro/internal/oms"

// FMCADModel returns the information architecture of the FMCAD framework as
// shown in Figure 2 of the paper. FMCAD stores design data in libraries
// (UNIX directories with one .meta file), organized as cells, views,
// cellviews, cellview versions and configs. The figure's annotations map
// framework objects to the file system: Library = directory (".Project"),
// View carries a view subtype, CellviewVersion = design file (".File").
func FMCADModel() *Model {
	m := NewModel("Figure 2: Information architecture of FMCAD (OTO-D)")

	must := func(err error) {
		if err != nil {
			panic(err) // model is a package-level constant; an error is a programming bug
		}
	}

	name := oms.AttrDef{Name: "name", Kind: oms.KindString, Required: true}

	// Core library structure.
	must(m.AddEntity(Entity{Name: "Library", Region: "Library structure", Attrs: []oms.AttrDef{
		name,
		{Name: "directory", Kind: oms.KindString}, // the ".Project" annotation
	}}))
	must(m.AddEntity(Entity{Name: "Cell", Region: "Library structure", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "View", Region: "Library structure", Attrs: []oms.AttrDef{
		name,
		{Name: "subtype", Kind: oms.KindString}, // the "=ViewSubType" annotation
	}}))
	must(m.AddEntity(Entity{Name: "Viewtype", Region: "Library structure", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "Cellview", Region: "Library structure", Attrs: []oms.AttrDef{name}}))
	must(m.AddEntity(Entity{Name: "CellviewVersion", Region: "Library structure", Attrs: []oms.AttrDef{
		{Name: "num", Kind: oms.KindInt, Required: true},
		{Name: "file", Kind: oms.KindString}, // the ".File" annotation
	}}))

	// Concurrency control.
	must(m.AddEntity(Entity{Name: "CheckOutStatus", Region: "Concurrency", Attrs: []oms.AttrDef{
		{Name: "user", Kind: oms.KindString},
	}}))
	must(m.AddEntity(Entity{Name: "LockedFlag", Region: "Concurrency", Attrs: []oms.AttrDef{
		{Name: "locked", Kind: oms.KindBool},
	}}))

	// Configs.
	must(m.AddEntity(Entity{Name: "Config", Region: "Configs", Attrs: []oms.AttrDef{name}}))

	// Properties.
	must(m.AddEntity(Entity{Name: "Property", Region: "Properties", Attrs: []oms.AttrDef{
		name,
		{Name: "value", Kind: oms.KindString},
	}}))

	// Concrete view subtypes and their version specializations (the
	// figure's Layout / Schema / Symbol triples).
	for _, vt := range []string{"Layout", "Schema", "Symbol"} {
		must(m.AddEntity(Entity{Name: vt, Region: "View subtypes", Attrs: []oms.AttrDef{name}}))
		must(m.AddEntity(Entity{Name: vt + "Version", Region: "View subtypes", Attrs: []oms.AttrDef{
			{Name: "num", Kind: oms.KindInt, Required: true},
		}}))
	}
	must(m.AddEntity(Entity{Name: "SymbolInSchemaVersion", Region: "View subtypes", Attrs: []oms.AttrDef{
		{Name: "instance", Kind: oms.KindString},
	}}))

	// Library containment.
	must(m.AddRel(Relationship{Name: "contains", From: "Library", To: "Cell", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "hasCellview", From: "Cell", To: "Cellview", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "ofView", From: "Cellview", To: "View", FromCard: oms.Many, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "ofViewtype", From: "View", To: "Viewtype", FromCard: oms.Many, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "hasVersion", From: "Cellview", To: "CellviewVersion", FromCard: oms.One, ToCard: oms.Many}))

	// Concurrency: the checked-out version and per-cellview lock.
	must(m.AddRel(Relationship{Name: "checkedOut", From: "CellviewVersion", To: "CheckOutStatus", FromCard: oms.One, ToCard: oms.One}))
	must(m.AddRel(Relationship{Name: "lock", From: "Cellview", To: "LockedFlag", FromCard: oms.One, ToCard: oms.One}))

	// Configs: collections of cellview versions, nested configs.
	must(m.AddRel(Relationship{Name: "cvvInConfig", From: "Config", To: "CellviewVersion", FromCard: oms.Many, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "configInConfig", From: "Config", To: "Config", FromCard: oms.Many, ToCard: oms.Many}))

	// Properties may hang off cellview versions.
	must(m.AddRel(Relationship{Name: "hasProperty", From: "CellviewVersion", To: "Property", FromCard: oms.One, ToCard: oms.Many}))

	// View subtype specializations (isa edges) and their versions.
	for _, vt := range []string{"Layout", "Schema", "Symbol"} {
		must(m.AddRel(Relationship{Name: "isa", From: vt, To: "View", FromCard: oms.Many, ToCard: oms.One}))
		must(m.AddRel(Relationship{Name: "isa", From: vt + "Version", To: "CellviewVersion", FromCard: oms.Many, ToCard: oms.One}))
		must(m.AddRel(Relationship{Name: "versionOf", From: vt + "Version", To: vt, FromCard: oms.One, ToCard: oms.One}))
	}

	// A schematic version instantiates symbols ("Symbol in Sch.V").
	must(m.AddRel(Relationship{Name: "instantiates", From: "SchemaVersion", To: "SymbolInSchemaVersion", FromCard: oms.One, ToCard: oms.Many}))
	must(m.AddRel(Relationship{Name: "refersTo", From: "SymbolInSchemaVersion", To: "SymbolVersion", FromCard: oms.Many, ToCard: oms.One}))

	return m
}
