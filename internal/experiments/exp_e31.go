package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fmcad"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/schematic"
)

// RunE31 reproduces section 3.1: multi-user design and concurrency
// control. Two measurements:
//
//	A. Lock-conflict rate under team contention. In standalone FMCAD, all
//	   designers share one library (one .meta file) and collide on
//	   checkouts; in the hybrid, each designer reserves a JCF cell version
//	   — and when a cell is busy, derives a *new version* and keeps
//	   working, which FMCAD cannot offer.
//	B. Parallel work on different versions of the same cellview:
//	   demonstrably impossible in FMCAD, possible in the hybrid (cell
//	   versions map onto distinct slave cells).
func RunE31(w io.Writer) error {
	header(w, "A: blocked work attempts per 100 steps (4 shared cells)")
	fmt.Fprintf(w, "%-10s %-22s %-22s %s\n", "designers", "FMCAD blocked/100", "hybrid blocked/100", "hybrid versions derived")
	type rowA struct {
		n              int
		fmcadBlocked   float64
		hybridBlocked  float64
		derivedVersion int
	}
	var rowsA []rowA
	for _, n := range []int{2, 4, 8, 16} {
		fc, steps, err := FMCADContention(n, 4, 50)
		if err != nil {
			return err
		}
		hb, derived, hsteps, err := HybridContention(n, 4, 50)
		if err != nil {
			return err
		}
		r := rowA{
			n:              n,
			fmcadBlocked:   100 * float64(fc) / float64(steps),
			hybridBlocked:  100 * float64(hb) / float64(hsteps),
			derivedVersion: derived,
		}
		rowsA = append(rowsA, r)
		fmt.Fprintf(w, "%-10d %-22.1f %-22.1f %d\n", r.n, r.fmcadBlocked, r.hybridBlocked, r.derivedVersion)
	}
	// Shape: FMCAD blocking grows with team size; the hybrid never blocks.
	last := rowsA[len(rowsA)-1]
	if last.fmcadBlocked <= rowsA[0].fmcadBlocked {
		return fmt.Errorf("E31A shape violated: FMCAD blocking did not grow (%v)", rowsA)
	}
	for _, r := range rowsA {
		if r.hybridBlocked != 0 {
			return fmt.Errorf("E31A shape violated: hybrid blocked at n=%d", r.n)
		}
	}

	header(w, "B: parallel work on two versions of one cellview")
	fmcadPossible, err := fmcadParallelVersions()
	if err != nil {
		return err
	}
	hybridPossible, err := hybridParallelVersions()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "FMCAD standalone: %s\n", possible(fmcadPossible))
	fmt.Fprintf(w, "hybrid JCF-FMCAD: %s\n", possible(hybridPossible))
	if fmcadPossible || !hybridPossible {
		return fmt.Errorf("E31 shape violated: fmcad=%t hybrid=%t", fmcadPossible, hybridPossible)
	}

	header(w, "C: true multi-threaded designers against one shared OMS database")
	fmt.Fprintf(w, "%-10s %-22s %s\n", "designers", "blocked work steps", "versions derived")
	for _, n := range []int{2, 4, 8} {
		blocked, derivedP, _, err := HybridContentionParallel(n, 4, 25)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %-22d %d\n", n, blocked, derivedP)
		if blocked != 0 {
			return fmt.Errorf("E31C shape violated: hybrid blocked %d steps at n=%d", blocked, n)
		}
	}
	fmt.Fprintf(w, "result: matches the paper — conflicts grow with team size in FMCAD,\n")
	fmt.Fprintf(w, "        the hybrid works conflict-free by deriving parallel cell versions\n")
	return nil
}

func possible(b bool) string {
	if b {
		return "POSSIBLE"
	}
	return "IMPOSSIBLE"
}

// expRNG is the experiments' deterministic generator.
type expRNG uint64

func (r *expRNG) next() uint64 {
	*r = expRNG(uint64(*r)*6364136223846793005 + 1442695040888963407)
	return uint64(*r)
}

func (r *expRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// FMCADContention simulates `designers` users working `steps` steps each
// against `cells` shared cells in ONE library. A busy designer keeps their
// checkout for a few steps; everyone else picking the same cell conflicts.
func FMCADContention(designers, cells, steps int) (conflicts int64, totalAttempts int, err error) {
	dir, err := os.MkdirTemp("", "e31-fmcad-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	lib, err := fmcad.Create(filepath.Join(dir, "lib"), "shared")
	if err != nil {
		return 0, 0, err
	}
	if err := lib.DefineView("schematic", "schematic"); err != nil {
		return 0, 0, err
	}
	for c := 0; c < cells; c++ {
		name := fmt.Sprintf("cell%d", c)
		if err := lib.CreateCell(name); err != nil {
			return 0, 0, err
		}
		if err := lib.CreateCellview(name, "schematic"); err != nil {
			return 0, 0, err
		}
	}
	type state struct {
		session *fmcad.Session
		wf      *fmcad.Workfile
		holdFor int
	}
	states := make([]state, designers)
	for d := range states {
		states[d].session = lib.NewSession(fmt.Sprintf("u%d", d))
	}
	rng := expRNG(0xE31)
	for s := 0; s < steps; s++ {
		for d := range states {
			st := &states[d]
			if st.wf != nil {
				st.holdFor--
				if st.holdFor <= 0 {
					if _, err := st.session.Checkin(st.wf); err != nil {
						return 0, 0, err
					}
					st.wf = nil
				}
				continue
			}
			cell := fmt.Sprintf("cell%d", rng.intn(cells))
			totalAttempts++
			wf, err := st.session.Checkout(cell, "schematic")
			if err != nil {
				if errors.Is(err, fmcad.ErrLocked) {
					continue // counted by the library
				}
				return 0, 0, err
			}
			st.wf = wf
			st.holdFor = 2 + rng.intn(3)
		}
	}
	// Release any held locks.
	for d := range states {
		if states[d].wf != nil {
			if _, err := states[d].session.Checkin(states[d].wf); err != nil {
				return 0, 0, err
			}
		}
	}
	return lib.Conflicts(), totalAttempts, nil
}

// HybridContention runs the same workload through the hybrid framework:
// designers reserve JCF cell versions; when the wanted cell's current
// version is reserved, the designer derives a NEW cell version of that
// cell and proceeds — the escape FMCAD does not have. blocked counts work
// steps where a designer could not obtain any workspace (zero by
// construction: deriving always succeeds).
func HybridContention(designers, cells, steps int) (blocked int64, derived int, totalAttempts int, err error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, designers)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cleanup()
	cellOIDs := make([]oms.OID, cells)
	current := make([][]oms.OID, cells) // all versions per cell
	for c := 0; c < cells; c++ {
		cv, err := h.NewDesignCell(project, fmt.Sprintf("cell%d", c), h.DefaultFlowName(), team)
		if err != nil {
			return 0, 0, 0, err
		}
		cell, err := h.JCF.CellOf(cv)
		if err != nil {
			return 0, 0, 0, err
		}
		cellOIDs[c] = cell
		current[c] = []oms.OID{cv}
	}
	type state struct {
		user    string
		held    oms.OID // reserved cell version (InvalidOID when idle)
		holdFor int
	}
	states := make([]state, designers)
	for d := range states {
		states[d].user = fmt.Sprintf("u%d", d)
	}
	rng := expRNG(0xE31)
	for s := 0; s < steps; s++ {
		for d := range states {
			st := &states[d]
			if st.held != oms.InvalidOID {
				st.holdFor--
				if st.holdFor <= 0 {
					if err := h.JCF.ReleaseReservation(st.user, st.held); err != nil {
						return 0, 0, 0, err
					}
					st.held = oms.InvalidOID
				}
				continue
			}
			c := rng.intn(cells)
			totalAttempts++
			// Try every existing version of the cell.
			reserved := false
			for _, cv := range current[c] {
				if err := h.JCF.Reserve(st.user, cv); err == nil {
					st.held = cv
					reserved = true
					break
				}
			}
			if !reserved {
				// All versions busy: derive a new parallel version. The
				// designer is never blocked — this always succeeds.
				cv, err := h.NewCellVersion(cellOIDs[c], h.DefaultFlowName(), team)
				if err != nil {
					return 0, 0, 0, err
				}
				current[c] = append(current[c], cv)
				derived++
				if err := h.JCF.Reserve(st.user, cv); err != nil {
					blocked++ // cannot happen; counted defensively
					continue
				}
				st.held = cv
			}
			st.holdFor = 2 + rng.intn(3)
		}
	}
	return blocked, derived, totalAttempts, nil
}

// ContentionWorld is a populated hybrid shared by concurrent designer
// goroutines — the workload of the paper's section 3.1 ("several designers
// ... working simultaneously on one chip design") with every designer a
// real goroutine hammering the one shared OMS database. The root benchmark
// suite builds the world once and times RunSteps alone, so the measured
// region is database traffic, not library/file-system setup.
type ContentionWorld struct {
	h         *core.Hybrid
	team      oms.OID
	designers int
	states    []*contentionCell
	// Cleanup removes all temporary state; callers must invoke it.
	Cleanup func()
}

// contentionCell serializes version derivation per cell: deriving
// allocates the next version number and the bound slave cell, which must
// stay unique per cell. Reservation itself is the framework's job.
type contentionCell struct {
	mu       sync.Mutex
	cell     oms.OID
	versions []oms.OID
}

// NewContentionWorld builds a hybrid with `designers` team members and
// `cells` design cells, ready for RunSteps.
func NewContentionWorld(designers, cells int) (*ContentionWorld, error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, designers)
	if err != nil {
		return nil, err
	}
	cw := &ContentionWorld{h: h, team: team, designers: designers, Cleanup: cleanup}
	for c := 0; c < cells; c++ {
		cv, err := h.NewDesignCell(project, fmt.Sprintf("cell%d", c), h.DefaultFlowName(), team)
		if err != nil {
			cleanup()
			return nil, err
		}
		cell, err := h.JCF.CellOf(cv)
		if err != nil {
			cleanup()
			return nil, err
		}
		cw.states = append(cw.states, &contentionCell{cell: cell, versions: []oms.OID{cv}})
	}
	return cw, nil
}

// RunSteps drives every designer through `steps` work steps concurrently.
// Designers reserve cell versions, run desktop metadata queries while the
// workspace is held, and derive a fresh parallel version whenever every
// existing one is busy — so no designer ever blocks (blocked stays 0).
func (cw *ContentionWorld) RunSteps(steps int) (blocked, derived, totalAttempts int64, err error) {
	var blockedN, derivedN, attemptsN atomic.Int64
	// firstErr keeps the first failure from any designer goroutine. A
	// mutex, not an atomic.Value: CompareAndSwap panics when two failures
	// carry different concrete error types.
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(e error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	cells := len(cw.states)
	for d := 0; d < cw.designers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", d)
			rng := expRNG(0xE31C ^ uint64(d)*0x9E3779B97F4A7C15)
			held := oms.InvalidOID
			holdFor := 0
			for s := 0; s < steps; s++ {
				if held != oms.InvalidOID {
					// Desktop metadata traffic while the workspace is held.
					_, _ = cw.h.JCF.ReservedBy(held)
					_ = cw.h.JCF.Published(held)
					_, _ = cw.h.JCF.AttachedFlowName(held) //lint:allow noerrdrop load generator; only the lock traffic of the query matters
					holdFor--
					if holdFor <= 0 {
						if err := cw.h.JCF.ReleaseReservation(user, held); err != nil {
							fail(err)
							return
						}
						held = oms.InvalidOID
					}
					continue
				}
				cs := cw.states[rng.intn(cells)]
				attemptsN.Add(1)
				cs.mu.Lock()
				for _, cv := range cs.versions {
					if err := cw.h.JCF.Reserve(user, cv); err == nil {
						held = cv
						break
					}
				}
				if held == oms.InvalidOID {
					// Every version busy: derive a new parallel version —
					// the escape hatch FMCAD does not have.
					cv, err := cw.h.NewCellVersion(cs.cell, cw.h.DefaultFlowName(), cw.team)
					if err != nil {
						cs.mu.Unlock()
						fail(err)
						return
					}
					cs.versions = append(cs.versions, cv)
					derivedN.Add(1)
					if err := cw.h.JCF.Reserve(user, cv); err != nil {
						blockedN.Add(1) // cannot happen; counted defensively
					} else {
						held = cv
					}
				}
				cs.mu.Unlock()
				holdFor = 2 + rng.intn(3)
			}
			if held != oms.InvalidOID {
				_ = cw.h.JCF.ReleaseReservation(user, held) //lint:allow noerrdrop end-of-run cleanup; the world is discarded right after
			}
		}(d)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, 0, firstErr
	}
	return blockedN.Load(), derivedN.Load(), attemptsN.Load(), nil
}

// HybridContentionParallel is the one-shot form of the concurrent-designer
// workload: build a world, run `steps` steps per designer, tear down.
func HybridContentionParallel(designers, cells, steps int) (blocked int64, derived int64, totalAttempts int64, err error) {
	cw, err := NewContentionWorld(designers, cells)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cw.Cleanup()
	return cw.RunSteps(steps)
}

// fmcadParallelVersions demonstrates that standalone FMCAD cannot let two
// users work on two versions of one cellview at the same time.
func fmcadParallelVersions() (bool, error) {
	dir, err := os.MkdirTemp("", "e31-pv-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	lib, err := fmcad.Create(filepath.Join(dir, "lib"), "pv")
	if err != nil {
		return false, err
	}
	if err := lib.DefineView("schematic", "schematic"); err != nil {
		return false, err
	}
	if err := lib.CreateCell("alu"); err != nil {
		return false, err
	}
	if err := lib.CreateCellview("alu", "schematic"); err != nil {
		return false, err
	}
	// Build up two versions.
	sa := lib.NewSession("anna")
	wf, err := sa.Checkout("alu", "schematic")
	if err != nil {
		return false, err
	}
	if err := os.WriteFile(wf.Path, []byte("v2 content\n"), 0o644); err != nil {
		return false, err
	}
	if _, err := sa.Checkin(wf); err != nil {
		return false, err
	}
	// anna re-opens v2; bert wants to work "on v1" — but checkout targets
	// the cellview, not a version: there is exactly one lock.
	wf2, err := sa.Checkout("alu", "schematic")
	if err != nil {
		return false, err
	}
	defer func() { _ = sa.Cancel(wf2) }() //lint:allow noerrdrop demonstration teardown; the library is discarded right after
	sb := lib.NewSession("bert")
	if _, err := sb.Checkout("alu", "schematic"); errors.Is(err, fmcad.ErrLocked) {
		return false, nil // impossible, as the paper says
	}
	return true, nil
}

// hybridParallelVersions demonstrates the hybrid making it possible: two
// JCF cell versions of the same cell are reserved by two users who both
// run schematic entry concurrently.
func hybridParallelVersions() (bool, error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 2)
	if err != nil {
		return false, err
	}
	defer cleanup()
	cv1, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		return false, err
	}
	cell, err := h.JCF.CellOf(cv1)
	if err != nil {
		return false, err
	}
	cv2, err := h.NewCellVersion(cell, h.DefaultFlowName(), team)
	if err != nil {
		return false, err
	}
	if err := h.JCF.Reserve("u0", cv1); err != nil {
		return false, err
	}
	if err := h.JCF.Reserve("u1", cv2); err != nil {
		return false, nil
	}
	draw := func(s *schematic.Schematic) error {
		if err := s.AddPort("a", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("y", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("g", schematic.Inv, "y", "a")
	}
	// Interleave the two users' tool runs on "the same cellview".
	if _, err := h.RunSchematicEntry("u0", cv1, draw, core.RunOpts{}); err != nil {
		return false, nil
	}
	if _, err := h.RunSchematicEntry("u1", cv2, draw, core.RunOpts{}); err != nil {
		return false, nil
	}
	return h.Lib.Conflicts() == 0, nil
}
