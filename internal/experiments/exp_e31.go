package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fmcad"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/schematic"
)

// RunE31 reproduces section 3.1: multi-user design and concurrency
// control. Two measurements:
//
//	A. Lock-conflict rate under team contention. In standalone FMCAD, all
//	   designers share one library (one .meta file) and collide on
//	   checkouts; in the hybrid, each designer reserves a JCF cell version
//	   — and when a cell is busy, derives a *new version* and keeps
//	   working, which FMCAD cannot offer.
//	B. Parallel work on different versions of the same cellview:
//	   demonstrably impossible in FMCAD, possible in the hybrid (cell
//	   versions map onto distinct slave cells).
func RunE31(w io.Writer) error {
	header(w, "A: blocked work attempts per 100 steps (4 shared cells)")
	fmt.Fprintf(w, "%-10s %-22s %-22s %s\n", "designers", "FMCAD blocked/100", "hybrid blocked/100", "hybrid versions derived")
	type rowA struct {
		n              int
		fmcadBlocked   float64
		hybridBlocked  float64
		derivedVersion int
	}
	var rowsA []rowA
	for _, n := range []int{2, 4, 8, 16} {
		fc, steps, err := FMCADContention(n, 4, 50)
		if err != nil {
			return err
		}
		hb, derived, hsteps, err := HybridContention(n, 4, 50)
		if err != nil {
			return err
		}
		r := rowA{
			n:              n,
			fmcadBlocked:   100 * float64(fc) / float64(steps),
			hybridBlocked:  100 * float64(hb) / float64(hsteps),
			derivedVersion: derived,
		}
		rowsA = append(rowsA, r)
		fmt.Fprintf(w, "%-10d %-22.1f %-22.1f %d\n", r.n, r.fmcadBlocked, r.hybridBlocked, r.derivedVersion)
	}
	// Shape: FMCAD blocking grows with team size; the hybrid never blocks.
	last := rowsA[len(rowsA)-1]
	if last.fmcadBlocked <= rowsA[0].fmcadBlocked {
		return fmt.Errorf("E31A shape violated: FMCAD blocking did not grow (%v)", rowsA)
	}
	for _, r := range rowsA {
		if r.hybridBlocked != 0 {
			return fmt.Errorf("E31A shape violated: hybrid blocked at n=%d", r.n)
		}
	}

	header(w, "B: parallel work on two versions of one cellview")
	fmcadPossible, err := fmcadParallelVersions()
	if err != nil {
		return err
	}
	hybridPossible, err := hybridParallelVersions()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "FMCAD standalone: %s\n", possible(fmcadPossible))
	fmt.Fprintf(w, "hybrid JCF-FMCAD: %s\n", possible(hybridPossible))
	if fmcadPossible || !hybridPossible {
		return fmt.Errorf("E31 shape violated: fmcad=%t hybrid=%t", fmcadPossible, hybridPossible)
	}
	fmt.Fprintf(w, "result: matches the paper — conflicts grow with team size in FMCAD,\n")
	fmt.Fprintf(w, "        the hybrid works conflict-free by deriving parallel cell versions\n")
	return nil
}

func possible(b bool) string {
	if b {
		return "POSSIBLE"
	}
	return "IMPOSSIBLE"
}

// expRNG is the experiments' deterministic generator.
type expRNG uint64

func (r *expRNG) next() uint64 {
	*r = expRNG(uint64(*r)*6364136223846793005 + 1442695040888963407)
	return uint64(*r)
}

func (r *expRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// FMCADContention simulates `designers` users working `steps` steps each
// against `cells` shared cells in ONE library. A busy designer keeps their
// checkout for a few steps; everyone else picking the same cell conflicts.
func FMCADContention(designers, cells, steps int) (conflicts int64, totalAttempts int, err error) {
	dir, err := os.MkdirTemp("", "e31-fmcad-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	lib, err := fmcad.Create(filepath.Join(dir, "lib"), "shared")
	if err != nil {
		return 0, 0, err
	}
	if err := lib.DefineView("schematic", "schematic"); err != nil {
		return 0, 0, err
	}
	for c := 0; c < cells; c++ {
		name := fmt.Sprintf("cell%d", c)
		if err := lib.CreateCell(name); err != nil {
			return 0, 0, err
		}
		if err := lib.CreateCellview(name, "schematic"); err != nil {
			return 0, 0, err
		}
	}
	type state struct {
		session *fmcad.Session
		wf      *fmcad.Workfile
		holdFor int
	}
	states := make([]state, designers)
	for d := range states {
		states[d].session = lib.NewSession(fmt.Sprintf("u%d", d))
	}
	rng := expRNG(0xE31)
	for s := 0; s < steps; s++ {
		for d := range states {
			st := &states[d]
			if st.wf != nil {
				st.holdFor--
				if st.holdFor <= 0 {
					if _, err := st.session.Checkin(st.wf); err != nil {
						return 0, 0, err
					}
					st.wf = nil
				}
				continue
			}
			cell := fmt.Sprintf("cell%d", rng.intn(cells))
			totalAttempts++
			wf, err := st.session.Checkout(cell, "schematic")
			if err != nil {
				if errors.Is(err, fmcad.ErrLocked) {
					continue // counted by the library
				}
				return 0, 0, err
			}
			st.wf = wf
			st.holdFor = 2 + rng.intn(3)
		}
	}
	// Release any held locks.
	for d := range states {
		if states[d].wf != nil {
			if _, err := states[d].session.Checkin(states[d].wf); err != nil {
				return 0, 0, err
			}
		}
	}
	return lib.Conflicts(), totalAttempts, nil
}

// HybridContention runs the same workload through the hybrid framework:
// designers reserve JCF cell versions; when the wanted cell's current
// version is reserved, the designer derives a NEW cell version of that
// cell and proceeds — the escape FMCAD does not have. blocked counts work
// steps where a designer could not obtain any workspace (zero by
// construction: deriving always succeeds).
func HybridContention(designers, cells, steps int) (blocked int64, derived int, totalAttempts int, err error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, designers)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cleanup()
	cellOIDs := make([]oms.OID, cells)
	current := make([][]oms.OID, cells) // all versions per cell
	for c := 0; c < cells; c++ {
		cv, err := h.NewDesignCell(project, fmt.Sprintf("cell%d", c), h.DefaultFlowName(), team)
		if err != nil {
			return 0, 0, 0, err
		}
		cell, err := h.JCF.CellOf(cv)
		if err != nil {
			return 0, 0, 0, err
		}
		cellOIDs[c] = cell
		current[c] = []oms.OID{cv}
	}
	type state struct {
		user    string
		held    oms.OID // reserved cell version (InvalidOID when idle)
		holdFor int
	}
	states := make([]state, designers)
	for d := range states {
		states[d].user = fmt.Sprintf("u%d", d)
	}
	rng := expRNG(0xE31)
	for s := 0; s < steps; s++ {
		for d := range states {
			st := &states[d]
			if st.held != oms.InvalidOID {
				st.holdFor--
				if st.holdFor <= 0 {
					if err := h.JCF.ReleaseReservation(st.user, st.held); err != nil {
						return 0, 0, 0, err
					}
					st.held = oms.InvalidOID
				}
				continue
			}
			c := rng.intn(cells)
			totalAttempts++
			// Try every existing version of the cell.
			reserved := false
			for _, cv := range current[c] {
				if err := h.JCF.Reserve(st.user, cv); err == nil {
					st.held = cv
					reserved = true
					break
				}
			}
			if !reserved {
				// All versions busy: derive a new parallel version. The
				// designer is never blocked — this always succeeds.
				cv, err := h.NewCellVersion(cellOIDs[c], h.DefaultFlowName(), team)
				if err != nil {
					return 0, 0, 0, err
				}
				current[c] = append(current[c], cv)
				derived++
				if err := h.JCF.Reserve(st.user, cv); err != nil {
					blocked++ // cannot happen; counted defensively
					continue
				}
				st.held = cv
			}
			st.holdFor = 2 + rng.intn(3)
		}
	}
	return blocked, derived, totalAttempts, nil
}

// fmcadParallelVersions demonstrates that standalone FMCAD cannot let two
// users work on two versions of one cellview at the same time.
func fmcadParallelVersions() (bool, error) {
	dir, err := os.MkdirTemp("", "e31-pv-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	lib, err := fmcad.Create(filepath.Join(dir, "lib"), "pv")
	if err != nil {
		return false, err
	}
	if err := lib.DefineView("schematic", "schematic"); err != nil {
		return false, err
	}
	if err := lib.CreateCell("alu"); err != nil {
		return false, err
	}
	if err := lib.CreateCellview("alu", "schematic"); err != nil {
		return false, err
	}
	// Build up two versions.
	sa := lib.NewSession("anna")
	wf, err := sa.Checkout("alu", "schematic")
	if err != nil {
		return false, err
	}
	if err := os.WriteFile(wf.Path, []byte("v2 content\n"), 0o644); err != nil {
		return false, err
	}
	if _, err := sa.Checkin(wf); err != nil {
		return false, err
	}
	// anna re-opens v2; bert wants to work "on v1" — but checkout targets
	// the cellview, not a version: there is exactly one lock.
	wf2, err := sa.Checkout("alu", "schematic")
	if err != nil {
		return false, err
	}
	defer func() { _ = sa.Cancel(wf2) }()
	sb := lib.NewSession("bert")
	if _, err := sb.Checkout("alu", "schematic"); errors.Is(err, fmcad.ErrLocked) {
		return false, nil // impossible, as the paper says
	}
	return true, nil
}

// hybridParallelVersions demonstrates the hybrid making it possible: two
// JCF cell versions of the same cell are reserved by two users who both
// run schematic entry concurrently.
func hybridParallelVersions() (bool, error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 2)
	if err != nil {
		return false, err
	}
	defer cleanup()
	cv1, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		return false, err
	}
	cell, err := h.JCF.CellOf(cv1)
	if err != nil {
		return false, err
	}
	cv2, err := h.NewCellVersion(cell, h.DefaultFlowName(), team)
	if err != nil {
		return false, err
	}
	if err := h.JCF.Reserve("u0", cv1); err != nil {
		return false, err
	}
	if err := h.JCF.Reserve("u1", cv2); err != nil {
		return false, nil
	}
	draw := func(s *schematic.Schematic) error {
		if err := s.AddPort("a", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("y", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("g", schematic.Inv, "y", "a")
	}
	// Interleave the two users' tool runs on "the same cellview".
	if _, err := h.RunSchematicEntry("u0", cv1, draw, core.RunOpts{}); err != nil {
		return false, nil
	}
	if _, err := h.RunSchematicEntry("u1", cv2, draw, core.RunOpts{}); err != nil {
		return false, nil
	}
	return h.Lib.Conflicts() == 0, nil
}
