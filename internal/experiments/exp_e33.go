package experiments

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/layout"
	"repro/internal/tools/schematic"
)

// RunE33 reproduces section 3.3: handling of design hierarchies.
//
//	A. Desktop burden: under JCF 3.0 every hierarchy edge must be
//	   submitted manually BEFORE design; the tool refuses instances whose
//	   edge is missing. Under 4.0 the procedural interface removes every
//	   manual step.
//	B. Non-isomorphic hierarchies: a layout-only pad ring is rejected by
//	   the 3.0 hybrid and accepted by the 4.0 hybrid (per-view-type
//	   hierarchy storage).
func RunE33(w io.Writer) error {
	header(w, "A: manual desktop steps to build an 8-child hierarchy")
	steps30, err := hierarchySteps(jcf.Release30, 8)
	if err != nil {
		return err
	}
	steps40, err := hierarchySteps(jcf.Release40, 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-28s %-16s %s\n", "master release", "manual steps", "tool-submitted edges")
	fmt.Fprintf(w, "%-28s %-16d %d\n", "JCF 3.0 (desktop only)", steps30.manual, steps30.procedural)
	fmt.Fprintf(w, "%-28s %-16d %d\n", "JCF 4.0 (procedural)", steps40.manual, steps40.procedural)
	if steps30.manual != 8 || steps30.procedural != 0 || steps40.manual != 0 || steps40.procedural != 8 {
		return fmt.Errorf("E33A shape violated: %+v %+v", steps30, steps40)
	}
	fmt.Fprintf(w, "rejected instance adds before submission (3.0): %d of %d attempts\n",
		steps30.rejected, steps30.rejected)

	header(w, "B: non-isomorphic hierarchy (layout-only pad ring)")
	rejected30, err := nonIsomorphicAttempt(jcf.Release30)
	if err != nil {
		return err
	}
	rejected40, err := nonIsomorphicAttempt(jcf.Release40)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "JCF 3.0 hybrid: %s\n", acceptance(!rejected30))
	fmt.Fprintf(w, "JCF 4.0 hybrid: %s (typed per-view hierarchies)\n", acceptance(!rejected40))
	if !rejected30 || rejected40 {
		return fmt.Errorf("E33B shape violated: 3.0 rejected=%t 4.0 rejected=%t", rejected30, rejected40)
	}
	fmt.Fprintf(w, "result: matches the paper — 3.0 cannot represent functional/physical\n")
	fmt.Fprintf(w, "        hierarchy divergence; the future release lifts the restriction\n")
	return nil
}

func acceptance(accepted bool) string {
	if accepted {
		return "ACCEPTED"
	}
	return "REJECTED"
}

// HierarchyManualSteps runs the E33A workload once and reports how many
// manual desktop submissions, tool-submitted edges and rejected instance
// adds the given release produced. The root benchmark suite calls it.
func HierarchyManualSteps(release jcf.Release, n int) (manual, procedural, rejected int, err error) {
	stats, err := hierarchySteps(release, n)
	if err != nil {
		return 0, 0, 0, err
	}
	return stats.manual, stats.procedural, stats.rejected, nil
}

type hierarchyStats struct {
	manual     int // desktop SubmitHierarchy calls the designer had to make
	procedural int // edges the tools submitted themselves
	rejected   int // instance adds refused for missing hierarchy
}

// hierarchySteps builds top + n children and wires every child into the
// top schematic, counting the manual desktop operations each release
// requires.
func hierarchySteps(release jcf.Release, n int) (hierarchyStats, error) {
	var stats hierarchyStats
	h, project, team, cleanup, err := tempWorld(release, 1)
	if err != nil {
		return stats, err
	}
	defer cleanup()
	top, err := h.NewDesignCell(project, "top", h.DefaultFlowName(), team)
	if err != nil {
		return stats, err
	}
	if err := h.JCF.Reserve("u0", top); err != nil {
		return stats, err
	}
	children := make([]oms.OID, n)
	for i := range children {
		cv, err := h.NewDesignCell(project, fmt.Sprintf("blk%d", i), h.DefaultFlowName(), team)
		if err != nil {
			return stats, err
		}
		children[i] = cv
	}
	for i, child := range children {
		inst := fmt.Sprintf("u%d", i)
		// First try without a desktop submission.
		_, err := h.AddSchematicInstance("u0", top, child, inst, nil, core.RunOpts{})
		if err != nil {
			if release >= jcf.Release40 {
				return stats, fmt.Errorf("4.0 rejected instance: %w", err)
			}
			stats.rejected++
			// The 3.0 way: desktop first, then the instance.
			if err := h.SubmitHierarchyManual(top, child); err != nil {
				return stats, err
			}
			stats.manual++
			if _, err := h.AddSchematicInstance("u0", top, child, inst, nil, core.RunOpts{}); err != nil {
				return stats, err
			}
		} else if release >= jcf.Release40 {
			stats.procedural++
		}
	}
	return stats, nil
}

// nonIsomorphicAttempt draws a schematic, simulates, then edits the layout
// to contain a pad instance absent from the schematic. Returns whether
// the hybrid rejected the layout.
func nonIsomorphicAttempt(release jcf.Release) (rejected bool, err error) {
	h, project, team, cleanup, err := tempWorld(release, 1)
	if err != nil {
		return false, err
	}
	defer cleanup()
	cv, err := h.NewDesignCell(project, "chip", h.DefaultFlowName(), team)
	if err != nil {
		return false, err
	}
	if _, err := h.NewDesignCell(project, "pad", h.DefaultFlowName(), team); err != nil {
		return false, err
	}
	if err := h.JCF.Reserve("u0", cv); err != nil {
		return false, err
	}
	draw := func(s *schematic.Schematic) error {
		if err := s.AddPort("a", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("y", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("g", schematic.Inv, "y", "a")
	}
	if _, err := h.RunSchematicEntry("u0", cv, draw, core.RunOpts{}); err != nil {
		return false, err
	}
	if _, _, err := h.RunSimulation("u0", cv, []byte("at 0 set a 0\nrun 20\n"), core.RunOpts{}); err != nil {
		return false, err
	}
	_, err = h.RunLayoutEntry("u0", cv, func(l *layout.Layout) error {
		return l.AddInstance("p1", "pad_v1", core.ViewLayout, 0, 0)
	}, core.RunOpts{})
	if err != nil {
		if errors.Is(err, jcf.ErrUnsupported) {
			return true, nil
		}
		return false, err
	}
	return false, nil
}
