package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"T1", "F1", "F2", "E31", "E32", "E33", "E34", "E35", "E36", "M1", "A1"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Title == "" || reg[i].Paper == "" {
			t.Errorf("registry[%d] incomplete: %+v", i, reg[i])
		}
	}
	if got := IDs(); len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	if _, ok := ByID("E31"); !ok {
		t.Fatal("ByID(E31) missing")
	}
	if _, ok := ByID("ZZ"); ok {
		t.Fatal("ByID(ZZ) found")
	}
}

// run executes one experiment and returns its report.
func run(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %s", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatalf("%s: %v\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestT1(t *testing.T) {
	out := run(t, "T1")
	for _, want := range []string{"Project", "Library", "CellVersion", "Cellview Version", "mapping violations: 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 missing %q", want)
		}
	}
}

func TestF1F2(t *testing.T) {
	out := run(t, "F1")
	for _, want := range []string{"Figure 1", "[Project structure]", "CellVersion", "equivalent", "derived"} {
		if !strings.Contains(out, want) {
			t.Errorf("F1 missing %q", want)
		}
	}
	out = run(t, "F2")
	for _, want := range []string{"Figure 2", "Library", "CheckOutStatus", ".Project", "cvvInConfig"} {
		if !strings.Contains(out, want) {
			t.Errorf("F2 missing %q", want)
		}
	}
}

func TestE31(t *testing.T) {
	out := run(t, "E31")
	if !strings.Contains(out, "FMCAD standalone: IMPOSSIBLE") {
		t.Errorf("E31 part B fmcad shape:\n%s", out)
	}
	if !strings.Contains(out, "hybrid JCF-FMCAD: POSSIBLE") {
		t.Errorf("E31 part B hybrid shape:\n%s", out)
	}
}

func TestE32(t *testing.T) {
	out := run(t, "E32")
	for _, want := range []string{"cell versions", "variants", "hybrid JCF-FMCAD detected:       5", "FMCAD standalone detected:       0"} {
		if !strings.Contains(out, want) {
			t.Errorf("E32 missing %q:\n%s", want, out)
		}
	}
}

func TestE33(t *testing.T) {
	out := run(t, "E33")
	for _, want := range []string{"JCF 3.0 hybrid: REJECTED", "JCF 4.0 hybrid: ACCEPTED"} {
		if !strings.Contains(out, want) {
			t.Errorf("E33 missing %q:\n%s", want, out)
		}
	}
}

func TestE34(t *testing.T) {
	out := run(t, "E34")
	if !strings.Contains(out, "hybrid") || !strings.Contains(out, "2") {
		t.Errorf("E34 shape:\n%s", out)
	}
}

func TestE35(t *testing.T) {
	out := run(t, "E35")
	for _, want := range []string{"FMCAD standalone", "unanswerable", "answerable"} {
		if !strings.Contains(out, want) {
			t.Errorf("E35 missing %q:\n%s", want, out)
		}
	}
}

func TestE36(t *testing.T) {
	if testing.Short() {
		t.Skip("E36 sweeps large designs")
	}
	out := run(t, "E36")
	for _, want := range []string{"file bytes", "FMCAD direct", "hybrid copy-out", "metadata op"} {
		if !strings.Contains(out, want) {
			t.Errorf("E36 missing %q:\n%s", want, out)
		}
	}
}

func TestM1(t *testing.T) {
	out := run(t, "M1")
	if !strings.Contains(out, "capability") || !strings.Contains(out, "partial") {
		t.Errorf("M1 shape:\n%s", out)
	}
}

func TestA1(t *testing.T) {
	out := run(t, "A1")
	for _, want := range []string{"locks installed", "locks removed", "load-bearing"} {
		if !strings.Contains(out, want) {
			t.Errorf("A1 missing %q:\n%s", want, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "==== "+id) {
			t.Errorf("RunAll missing %s", id)
		}
	}
}
