// Package experiments regenerates every table and figure of the paper's
// evaluation (section 3 plus Table 1 and Figures 1-2). Each experiment is
// a function writing a human-readable report and returning structured
// results so both the fwbench CLI and the root benchmark suite can drive
// it. EXPERIMENTS.md records paper-claim vs. measured-shape for each.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string // e.g. "T1", "F1", "E31"
	Title string
	Paper string // where the paper makes the claim
	Run   func(w io.Writer) error
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "Table 1: JCF - FMCAD object mapping", Paper: "section 2.3, Table 1", Run: RunT1},
		{ID: "F1", Title: "Figure 1: Information architecture of JCF 3.0 (OTO-D)", Paper: "section 2.1, Figure 1", Run: RunF1},
		{ID: "F2", Title: "Figure 2: Information architecture of FMCAD (OTO-D)", Paper: "section 2.2, Figure 2", Run: RunF2},
		{ID: "E31", Title: "Multi-user design and concurrency control", Paper: "section 3.1", Run: RunE31},
		{ID: "E32", Title: "Design management and data consistency", Paper: "section 3.2", Run: RunE32},
		{ID: "E33", Title: "Handling of design hierarchies", Paper: "section 3.3", Run: RunE33},
		{ID: "E34", Title: "User interface", Paper: "section 3.4", Run: RunE34},
		{ID: "E35", Title: "Flow management and derivation relations", Paper: "section 3.5", Run: RunE35},
		{ID: "E36", Title: "Performance of metadata and design data operations", Paper: "section 3.6", Run: RunE36},
		{ID: "M1", Title: "Capability matrix (section 3 summary)", Paper: "section 3", Run: RunM1},
		{ID: "A1", Title: "Ablation: menu locking on vs off", Paper: "section 2.4 design choice", Run: RunA1},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) error {
	for _, e := range Registry() {
		if err := runOne(w, e); err != nil {
			return err
		}
	}
	return nil
}

func runOne(w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "==== %s: %s (%s) ====\n", e.ID, e.Title, e.Paper)
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}

// header prints a sub-table heading.
func header(w io.Writer, text string) {
	fmt.Fprintf(w, "\n-- %s --\n", text)
}

// sortedKeys is a small helper for deterministic map iteration in reports.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
