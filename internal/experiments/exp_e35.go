package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/fmcad"
	"repro/internal/jcf"
	"repro/internal/tools/schematic"
)

// RunE35 reproduces section 3.5: flow management and derivation relations.
//
// Standalone FMCAD lets the user "invoke all design tools in a very
// flexible manner", so out-of-order invocations all succeed and neither
// derivation relations nor what-belongs-to-what information exists. The
// hybrid prescribes the flow: out-of-order invocations are rejected (or
// escorted through a consistency window when forced), and every tool run
// records its derivation, making what-belongs-to-what queryable.
func RunE35(w io.Writer) error {
	// The out-of-order schedule: simulate and draw layout before any
	// schematic exists, twice.
	header(w, "A: out-of-order tool invocations (4 attempts)")
	fmcadAllowed, err := fmcadOutOfOrder()
	if err != nil {
		return err
	}
	hybridAllowed, hybridRejected, err := hybridOutOfOrder(false)
	if err != nil {
		return err
	}
	forcedAllowed, _, err := hybridOutOfOrder(true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-34s %-10s %s\n", "environment", "allowed", "rejected")
	fmt.Fprintf(w, "%-34s %-10d %d\n", "FMCAD standalone", fmcadAllowed, 4-fmcadAllowed)
	fmt.Fprintf(w, "%-34s %-10d %d\n", "hybrid (forced flow)", hybridAllowed, hybridRejected)
	fmt.Fprintf(w, "%-34s %-10d %s\n", "hybrid (Force + consistency window)", forcedAllowed, "runs under supervision")
	if fmcadAllowed != 4 || hybridAllowed != 0 || hybridRejected != 4 {
		return fmt.Errorf("E35A shape violated: fmcad=%d hybrid=%d/%d", fmcadAllowed, hybridAllowed, hybridRejected)
	}

	header(w, "B: derivation relations after one full design pass")
	recorded, closureSize, err := hybridDerivations()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-24s %-22s %s\n", "environment", "derivations recorded", "what-belongs-to-what query")
	fmt.Fprintf(w, "%-24s %-22d %s\n", "FMCAD standalone", 0, "unanswerable (no such relation exists)")
	fmt.Fprintf(w, "%-24s %-22d answerable: closure of schematic v1 = %d versions\n", "hybrid JCF-FMCAD", recorded, closureSize)
	if recorded < 2 || closureSize < 2 {
		return fmt.Errorf("E35B shape violated: recorded=%d closure=%d", recorded, closureSize)
	}
	fmt.Fprintf(w, "result: matches the paper — the hybrid forces flows and records all\n")
	fmt.Fprintf(w, "        derivation relationships between schematic and layout versions\n")
	return nil
}

// fmcadOutOfOrder plays the bad schedule against the raw library: FMCAD
// has no flow concept, so every checkout/checkin pair succeeds.
func fmcadOutOfOrder() (allowed int, err error) {
	dir, err := os.MkdirTemp("", "e35-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	lib, err := fmcad.Create(filepath.Join(dir, "lib"), "flex")
	if err != nil {
		return 0, err
	}
	for view, vt := range map[string]string{"schematic": "schematic", "layout": "layout", "waveform": "waveform"} {
		if err := lib.DefineView(view, vt); err != nil {
			return 0, err
		}
	}
	if err := lib.CreateCell("alu"); err != nil {
		return 0, err
	}
	for _, view := range []string{"schematic", "layout", "waveform"} {
		if err := lib.CreateCellview("alu", view); err != nil {
			return 0, err
		}
	}
	s := lib.NewSession("u0")
	// Simulate, layout, simulate, layout — all before any schematic.
	for _, view := range []string{"waveform", "layout", "waveform", "layout"} {
		wf, err := s.Checkout("alu", view)
		if err != nil {
			return allowed, err
		}
		if err := os.WriteFile(wf.Path, []byte("tool output without inputs\n"), 0o644); err != nil {
			return allowed, err
		}
		if _, err := s.Checkin(wf); err != nil {
			return allowed, err
		}
		allowed++
	}
	return allowed, nil
}

// hybridOutOfOrder plays the same schedule through the hybrid.
func hybridOutOfOrder(force bool) (allowed, rejected int, err error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 1)
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	cv, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		return 0, 0, err
	}
	if err := h.JCF.Reserve("u0", cv); err != nil {
		return 0, 0, err
	}
	opts := core.RunOpts{Force: force}
	for i := 0; i < 4; i++ {
		var err error
		if i%2 == 0 {
			_, _, err = h.RunSimulation("u0", cv, []byte("run 10\n"), opts)
		} else {
			_, err = h.RunLayoutEntry("u0", cv, nil, opts)
		}
		switch {
		case err == nil:
			allowed++
		case errors.Is(err, flow.ErrOrder):
			rejected++
		case force:
			// Forced runs pass the order gate and then fail on missing
			// input data — they went through the consistency window.
			allowed++
		default:
			return allowed, rejected, err
		}
	}
	return allowed, rejected, nil
}

// hybridDerivations runs the proper schematic -> simulate -> layout pass
// and counts the derivation edges JCF recorded.
func hybridDerivations() (recorded, closureSize int, err error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 1)
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	cv, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		return 0, 0, err
	}
	if err := h.JCF.Reserve("u0", cv); err != nil {
		return 0, 0, err
	}
	draw := func(s *schematic.Schematic) error {
		for _, p := range []struct {
			n string
			d schematic.PortDir
		}{{"a", schematic.In}, {"b", schematic.In}, {"y", schematic.Out}} {
			if err := s.AddPort(p.n, p.d); err != nil {
				return err
			}
		}
		return s.AddGate("g", schematic.Nand2, "y", "a", "b")
	}
	sres, err := h.RunSchematicEntry("u0", cv, draw, core.RunOpts{})
	if err != nil {
		return 0, 0, err
	}
	if _, _, err := h.RunSimulation("u0", cv, []byte("at 0 set a 1\nat 0 set b 1\nrun 50\n"), core.RunOpts{}); err != nil {
		return 0, 0, err
	}
	if _, err := h.RunLayoutEntry("u0", cv, nil, core.RunOpts{}); err != nil {
		return 0, 0, err
	}
	recorded = len(h.JCF.Derivatives(sres.OutputDOV))
	closureSize = len(h.JCF.DerivationClosure(sres.OutputDOV))
	return recorded, closureSize, nil
}
