package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fmcad"
	"repro/internal/jcf"
	"repro/internal/oms"
)

// RunE32 reproduces section 3.2: design management and data consistency.
//
//	A. Two-level versioning: JCF-FMCAD versions cells AND design objects
//	   within them (plus variants); FMCAD has only flat cellview versions.
//	   The experiment builds the same design history in both and reports
//	   what each model can represent.
//	B. Consistency checking: stale-hierarchy faults are injected; the
//	   hybrid's separated metadata detects every one, while FMCAD's
//	   dynamic binding silently rebinds and reports nothing.
func RunE32(w io.Writer) error {
	header(w, "A: versioning levels representable")
	if err := versioningDepth(w); err != nil {
		return err
	}
	header(w, "B: injected stale-hierarchy faults")
	if err := consistencyFaults(w); err != nil {
		return err
	}
	return nil
}

func versioningDepth(w io.Writer) error {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 1)
	if err != nil {
		return err
	}
	defer cleanup()
	// One cell, three cell versions, extra variants in the first, and a
	// design object version history below.
	cv1, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	cell, err := h.JCF.CellOf(cv1)
	if err != nil {
		return err
	}
	if _, err := h.NewCellVersion(cell, h.DefaultFlowName(), team); err != nil {
		return err
	}
	if _, err := h.NewCellVersion(cell, h.DefaultFlowName(), team); err != nil {
		return err
	}
	v1 := h.JCF.Variants(cv1)[0]
	if _, err := h.JCF.DeriveVariant(v1); err != nil {
		return err
	}
	if _, err := h.JCF.DeriveVariant(v1); err != nil {
		return err
	}
	// Design object versions: three check-ins of the schematic.
	if err := h.JCF.Reserve("u0", cv1); err != nil {
		return err
	}
	b, err := h.BindingFor(cv1)
	if err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "e32-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	src := filepath.Join(tmp, "s.sch")
	do := b.DesignObjects["schematic"]
	for i := 0; i < 3; i++ {
		if err := os.WriteFile(src, []byte(fmt.Sprintf("schematic alu\nnet n%d\n", i)), 0o644); err != nil {
			return err
		}
		if _, err := h.JCF.CheckInData("u0", do, src); err != nil {
			return err
		}
	}
	cellVersions := len(h.JCF.CellVersions(cell))
	variants := len(h.JCF.Variants(cv1))
	dovs := len(h.JCF.DesignObjectVersions(do))
	fmt.Fprintf(w, "%-24s %-18s %s\n", "level", "JCF-FMCAD", "FMCAD standalone")
	fmt.Fprintf(w, "%-24s %-18d %s\n", "cell versions", cellVersions, "n/a (cells are unversioned)")
	fmt.Fprintf(w, "%-24s %-18d %s\n", "variants per version", variants, "n/a (no variant concept)")
	fmt.Fprintf(w, "%-24s %-18d %s\n", "design object versions", dovs, "flat cellview versions only")
	if cellVersions != 3 || variants != 3 || dovs != 3 {
		return fmt.Errorf("E32A shape violated: %d/%d/%d", cellVersions, variants, dovs)
	}
	fmt.Fprintf(w, "result: two-level versioning (plus variants) vs a single flat level\n")
	return nil
}

func consistencyFaults(w io.Writer) error {
	const faults = 5

	// Hybrid: build parent->child hierarchies, then publish newer child
	// versions; CheckConsistency must flag each stale edge.
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 1)
	if err != nil {
		return err
	}
	defer cleanup()
	parent, err := h.NewDesignCell(project, "top", h.DefaultFlowName(), team)
	if err != nil {
		return err
	}
	for i := 0; i < faults; i++ {
		childV1, err := h.NewDesignCell(project, fmt.Sprintf("blk%d", i), h.DefaultFlowName(), team)
		if err != nil {
			return err
		}
		if err := h.SubmitHierarchyManual(parent, childV1); err != nil {
			return err
		}
		cell, err := h.JCF.CellOf(childV1)
		if err != nil {
			return err
		}
		childV2, err := h.NewCellVersion(cell, h.DefaultFlowName(), team)
		if err != nil {
			return err
		}
		if err := h.JCF.Reserve("u0", childV2); err != nil {
			return err
		}
		if err := h.JCF.Publish("u0", childV2); err != nil {
			return err
		}
	}
	detected := 0
	for _, p := range h.JCF.CheckConsistency() {
		if p.Kind == "stale-hierarchy" {
			detected++
		}
	}

	// FMCAD standalone: the same situation — a parent whose children get
	// new default versions. Dynamic binding silently rebinds: Expand
	// succeeds, reports the NEW versions, and flags nothing.
	dir, err := os.MkdirTemp("", "e32-fmcad-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	lib, err := fmcad.Create(filepath.Join(dir, "lib"), "cons")
	if err != nil {
		return err
	}
	if err := lib.DefineView("schematic", "schematic"); err != nil {
		return err
	}
	if err := lib.CreateCell("top"); err != nil {
		return err
	}
	if err := lib.CreateCellview("top", "schematic"); err != nil {
		return err
	}
	session := lib.NewSession("u0")
	topContent := "schematic top\n"
	for i := 0; i < faults; i++ {
		name := fmt.Sprintf("blk%d", i)
		if err := lib.CreateCell(name); err != nil {
			return err
		}
		if err := lib.CreateCellview(name, "schematic"); err != nil {
			return err
		}
		topContent += fmcad.InstLine(fmt.Sprintf("u%d", i), name, "schematic") + "\n"
	}
	wf, err := session.Checkout("top", "schematic")
	if err != nil {
		return err
	}
	if err := os.WriteFile(wf.Path, []byte(topContent), 0o644); err != nil {
		return err
	}
	if _, err := session.Checkin(wf); err != nil {
		return err
	}
	before, err := lib.Expand("top", "schematic")
	if err != nil {
		return err
	}
	// Inject the faults: new child versions appear.
	for i := 0; i < faults; i++ {
		name := fmt.Sprintf("blk%d", i)
		cw, err := session.Checkout(name, "schematic")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cw.Path, []byte("schematic "+name+"\nnet changed\n"), 0o644); err != nil {
			return err
		}
		if _, err := session.Checkin(cw); err != nil {
			return err
		}
	}
	after, err := lib.Expand("top", "schematic")
	if err != nil {
		return err
	}
	rebound := 0
	for i := range after.Children {
		if after.Children[i].Version != before.Children[i].Version {
			rebound++
		}
	}

	fmt.Fprintf(w, "injected stale-hierarchy faults: %d\n", faults)
	fmt.Fprintf(w, "hybrid JCF-FMCAD detected:       %d (CheckConsistency, kind=stale-hierarchy)\n", detected)
	fmt.Fprintf(w, "FMCAD standalone detected:       0 (dynamic binding silently rebound %d children)\n", rebound)
	if detected != faults || rebound != faults {
		return fmt.Errorf("E32B shape violated: detected=%d rebound=%d", detected, rebound)
	}
	fmt.Fprintf(w, "result: separated metadata gives the hybrid a consistency check FMCAD lacks\n")
	_ = oms.InvalidOID
	return nil
}
