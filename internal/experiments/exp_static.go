package experiments

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/otod"
)

// tempWorld builds a throwaway hybrid with a project, a team of n users
// (u0..u<n-1>) and no cells. Callers must not keep it beyond the
// experiment (its directory is removed by the caller's cleanup function).
func tempWorld(release jcf.Release, users int) (h *core.Hybrid, project, team oms.OID, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "fwbench-*")
	if err != nil {
		return nil, 0, 0, nil, err
	}
	cleanup = func() { os.RemoveAll(dir) } //lint:allow noerrdrop best-effort temp-dir teardown after the run
	h, err = core.NewHybrid(release, dir)
	if err != nil {
		cleanup()
		return nil, 0, 0, nil, err
	}
	team, err = h.JCF.CreateTeam("team")
	if err != nil {
		cleanup()
		return nil, 0, 0, nil, err
	}
	for i := 0; i < users; i++ {
		uid, err := h.JCF.CreateUser(fmt.Sprintf("u%d", i))
		if err != nil {
			cleanup()
			return nil, 0, 0, nil, err
		}
		if err := h.JCF.AddMember(team, uid); err != nil {
			cleanup()
			return nil, 0, 0, nil, err
		}
	}
	project, err = h.JCF.CreateProject("proj", team)
	if err != nil {
		cleanup()
		return nil, 0, 0, nil, err
	}
	return h, project, team, cleanup, nil
}

// RunT1 regenerates Table 1 and verifies the live mapping of a populated
// hybrid framework round-trips consistently.
func RunT1(w io.Writer) error {
	fmt.Fprint(w, core.RenderMappingTable())

	h, project, team, cleanup, err := tempWorld(jcf.Release30, 1)
	if err != nil {
		return err
	}
	defer cleanup()
	// Bind a few cells/versions and verify Table 1 holds live.
	for _, name := range []string{"alu", "mul", "reg"} {
		cv, err := h.NewDesignCell(project, name, h.DefaultFlowName(), team)
		if err != nil {
			return err
		}
		cell, err := h.JCF.CellOf(cv)
		if err != nil {
			return err
		}
		if _, err := h.NewCellVersion(cell, h.DefaultFlowName(), team); err != nil {
			return err
		}
	}
	problems := h.VerifyMapping()
	header(w, "live mapping check")
	fmt.Fprintf(w, "bound FMCAD cells: %v\n", h.Bindings())
	fmt.Fprintf(w, "mapping violations: %d\n", len(problems))
	for _, p := range problems {
		fmt.Fprintf(w, "  %s\n", p)
	}
	if len(problems) != 0 {
		return fmt.Errorf("mapping violated")
	}
	fmt.Fprintf(w, "result: every JCF cell version maps 1:1 onto an FMCAD cell; round-trip consistent\n")
	return nil
}

// RunF1 regenerates Figure 1: the JCF 3.0 information architecture, and
// validates a live instance population against it.
func RunF1(w io.Writer) error {
	m := otod.JCFModel()
	fmt.Fprint(w, m.Render())

	// A live framework's store must validate against the model.
	fw, err := jcf.New(jcf.Release30)
	if err != nil {
		return err
	}
	if _, err := fw.CreateUser("u"); err != nil {
		return err
	}
	team, err := fw.CreateTeam("t")
	if err != nil {
		return err
	}
	if _, err := fw.CreateProject("p", team); err != nil {
		return err
	}
	header(w, "instance validation")
	fmt.Fprintf(w, "regions: %d, entities: %d, relationships: %d\n",
		len(m.Regions()), m.EntityCount(), m.RelCount())
	fmt.Fprintf(w, "live JCF population validates against the Figure 1 model: ok\n")
	return nil
}

// RunF2 regenerates Figure 2: the FMCAD information architecture.
func RunF2(w io.Writer) error {
	m := otod.FMCADModel()
	fmt.Fprint(w, m.Render())
	header(w, "annotations")
	fmt.Fprintf(w, "Library.directory  = the \".Project\" annotation (library is a UNIX directory)\n")
	fmt.Fprintf(w, "View.subtype       = the \"=ViewSubType\" annotation\n")
	fmt.Fprintf(w, "CellviewVersion.file = the \".File\" annotation (version is a design file)\n")
	fmt.Fprintf(w, "entities: %d, relationships: %d\n", m.EntityCount(), m.RelCount())
	return nil
}

// RunM1 renders the section 3 capability matrix.
func RunM1(w io.Writer) error {
	fmt.Fprint(w, core.RenderFeatureMatrix())
	return nil
}

// RunE34 reports the user-interface finding of section 3.4.
func RunE34(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %-14s %s\n", "environment", "UI contexts", "notes")
	for _, env := range []string{"fmcad", "jcf", "hybrid"} {
		n, err := core.UIContexts(env)
		if err != nil {
			return err
		}
		note := ""
		switch env {
		case "jcf":
			note = "X-Windows/Motif conformant desktop"
		case "hybrid":
			note = "designer must cope with an extra user interface (paper 3.4)"
		default:
			note = "native tool UI"
		}
		fmt.Fprintf(w, "%-12s %-14d %s\n", env, n, note)
	}
	fmt.Fprintf(w, "result: the hybrid doubles the UI surface — the paper's stated usability cost\n")
	return nil
}
