package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/flow"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/otod"
	"repro/internal/repl"
)

// Replication scale-out world (PR 5, BENCH_5.json).
//
// One primary JCF framework serves a population of writers; n read-only
// replicas follow it over in-process pipe transports and serve the
// read-mostly tool traffic. The world backs two benchmarks:
//
//   - BenchmarkE40ReplicaReadScaling: aggregate read throughput against
//     1/2/4 replica views while the primary keeps mutating.
//   - BenchmarkE41ReplicationLag: commit-to-replica-visibility latency
//     (WaitFor barrier) under a sustained write load.

// ReplicationWorld is a primary with n live replicas and their views.
type ReplicationWorld struct {
	FW        *jcf.Framework
	Publisher *repl.Publisher
	Replicas  []*repl.Replica
	Views     []*jcf.Framework

	// CVs are published cell versions (one per cell); DOVs the data
	// versions checked into them — the read-side working set.
	CVs  []oms.OID
	DOVs []oms.OID
	// ReserveCV and ChurnCV are spare, unpublished cell versions the
	// write loads toggle reservations on (constant-size churn: one feed
	// record per op, no store growth). Two distinct targets so a
	// measured writer and a background writer never collide on the same
	// reservation.
	ReserveCV oms.OID
	ChurnCV   oms.OID
}

// NewReplicationWorld builds the primary with `cells` published cells
// (each with one checked-in design object version) and starts n replicas
// following it.
func NewReplicationWorld(n, cells int) (*ReplicationWorld, error) {
	fw, err := jcf.New(jcf.Release30)
	if err != nil {
		return nil, err
	}
	if _, err := fw.CreateUser("anna"); err != nil {
		return nil, err
	}
	team, err := fw.CreateTeam("vlsi")
	if err != nil {
		return nil, err
	}
	anna, err := fw.User("anna")
	if err != nil {
		return nil, err
	}
	if err := fw.AddMember(team, anna); err != nil {
		return nil, err
	}
	vt, err := fw.CreateViewType("schematic")
	if err != nil {
		return nil, err
	}
	f := flow.New("repl-flow")
	if err := f.AddActivity(flow.Activity{Name: "edit"}); err != nil {
		return nil, err
	}
	if _, err := fw.RegisterFlow(f); err != nil {
		return nil, err
	}
	project, err := fw.CreateProject("scaleout", team)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "repl-world")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	src := filepath.Join(dir, "data.sch")
	if err := os.WriteFile(src, []byte("netlist payload for replication benchmarks"), 0o644); err != nil {
		return nil, err
	}

	w := &ReplicationWorld{FW: fw}
	for c := 0; c < cells; c++ {
		cell, err := fw.CreateCell(project, fmt.Sprintf("cell%03d", c))
		if err != nil {
			return nil, err
		}
		cv, err := fw.CreateCellVersion(cell, "repl-flow", team)
		if err != nil {
			return nil, err
		}
		if err := fw.Reserve("anna", cv); err != nil {
			return nil, err
		}
		variants := fw.Variants(cv)
		do, err := fw.CreateDesignObject(variants[0], fmt.Sprintf("cell%03d-sch", c), vt)
		if err != nil {
			return nil, err
		}
		dov, err := fw.CheckInData("anna", do, src)
		if err != nil {
			return nil, err
		}
		if err := fw.Publish("anna", cv); err != nil {
			return nil, err
		}
		w.CVs = append(w.CVs, cv)
		w.DOVs = append(w.DOVs, dov)
	}
	spareCell, err := fw.CreateCell(project, "spare")
	if err != nil {
		return nil, err
	}
	if w.ReserveCV, err = fw.CreateCellVersion(spareCell, "repl-flow", team); err != nil {
		return nil, err
	}
	if w.ChurnCV, err = fw.CreateCellVersion(spareCell, "repl-flow", team); err != nil {
		return nil, err
	}

	w.Publisher = repl.NewPublisher(fw.ReplicationSource())
	schema, err := otod.JCFModel().Schema()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		ln, d := repl.Pipe()
		go func() { _ = w.Publisher.Serve(ln) }() //lint:allow noerrdrop Serve returns nil or ErrPublisherClosed at experiment teardown
		rep := repl.NewReplica(schema, d, repl.WithReconnectBackoff(time.Millisecond))
		rep.Start()
		view, err := jcf.NewReplicaView(rep.Store(), fw.Release())
		if err != nil {
			w.Close()
			return nil, err
		}
		w.Replicas = append(w.Replicas, rep)
		w.Views = append(w.Views, view)
	}
	if err := w.CatchUp(30 * time.Second); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// CatchUp blocks until every replica has applied the primary's whole
// feed, then has each view run the incremental consistency check — the
// convergence self-check a follower performs after catch-up.
func (w *ReplicationWorld) CatchUp(timeout time.Duration) error {
	lsn := w.FW.FeedLSN()
	for i, rep := range w.Replicas {
		if err := rep.WaitFor(lsn, timeout); err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
	}
	for i, view := range w.Views {
		if probs := view.CheckConsistency(); len(probs) != 0 {
			return fmt.Errorf("replica %d inconsistent after catch-up: %v", i, probs)
		}
	}
	return nil
}

// Close stops the replicas and the publisher.
func (w *ReplicationWorld) Close() {
	for _, rep := range w.Replicas {
		rep.Close()
	}
	if w.Publisher != nil {
		w.Publisher.Close()
	}
}

// ReadProbe runs one representative read-mostly tool interaction against
// a view: resolve a cell version's publication state, its variants and
// design objects, and the stored size of its checked-in data.
func (w *ReplicationWorld) ReadProbe(view *jcf.Framework, i int) error {
	cv := w.CVs[i%len(w.CVs)]
	if !view.Published(cv) {
		return fmt.Errorf("cv %d not published on replica", cv)
	}
	variants := view.Variants(cv)
	if len(variants) == 0 {
		return fmt.Errorf("cv %d has no variants on replica", cv)
	}
	if dos := view.DesignObjects(variants[0]); len(dos) == 0 {
		return fmt.Errorf("variant %d has no design objects on replica", variants[0])
	}
	if _, err := view.DataSize(w.DOVs[i%len(w.DOVs)]); err != nil {
		return err
	}
	return nil
}

// MutatePrimary performs one constant-size write on the primary (a
// reservation toggle on the spare cell version) and returns the commit
// LSN — the measured write of the lag benchmark.
func (w *ReplicationWorld) MutatePrimary(i int) (uint64, error) {
	if err := w.toggle(w.ReserveCV, i); err != nil {
		return 0, err
	}
	return w.FW.FeedLSN(), nil
}

// ChurnPrimary is MutatePrimary on a second target — the background
// write load, kept off the measured writer's reservation so the two
// never collide.
func (w *ReplicationWorld) ChurnPrimary(i int) error {
	return w.toggle(w.ChurnCV, i)
}

func (w *ReplicationWorld) toggle(cv oms.OID, i int) error {
	if i%2 == 0 {
		return w.FW.Reserve("anna", cv)
	}
	return w.FW.ReleaseReservation("anna", cv)
}
