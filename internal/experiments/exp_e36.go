package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/tools/schematic"
)

// RunE36 reproduces section 3.6: performance. The paper's findings:
//
//   - "The performance of metadata operations in the JCF-FMCAD
//     environment is sufficiently high" — metadata ops run through the
//     desktop methods and are independent of design size.
//   - "For design data manipulations the performance is strongly
//     dependent on the amount of data: while the time delay for small
//     designs is acceptable, more complex and realistic designs may cause
//     problems, mainly due to the fact that design data have to be copied
//     to and from the JCF database even in the case of read only
//     accesses."
//
// The experiment sweeps ripple-adder sizes, then times (a) desktop
// metadata operations, (b) read-only design-data access natively through
// FMCAD (direct file read) vs through the hybrid (database copy-out), on
// the same bytes.
func RunE36(w io.Writer) error {
	sizes := []int{8, 32, 128, 512}
	header(w, "design-data read cost vs design size (read-only access)")
	fmt.Fprintf(w, "%-10s %-12s %-16s %-18s %-18s %s\n",
		"adder", "file bytes", "bytes moved", "FMCAD direct", "hybrid copy-out", "ratio")

	type row struct {
		bits        int
		bytes       int64
		hybridMoved int64 // bytes a single hybrid read moves (DB out + stage write + read)
		nativeUS    float64
		hybridUS    float64
	}
	var rows []row
	var world *E36World
	for _, bits := range sizes {
		var err error
		world, err = NewE36World(bits)
		if err != nil {
			return err
		}
		// Warm both paths once so first-touch file-system costs do not
		// distort the per-op numbers.
		if _, err := world.timeNativeRead(3); err != nil {
			world.Cleanup()
			return err
		}
		if _, err := world.timeHybridRead(3); err != nil {
			world.Cleanup()
			return err
		}
		nativeUS, err := world.timeNativeRead(50)
		if err != nil {
			world.Cleanup()
			return err
		}
		// Byte accounting around a single hybrid read: the database blob
		// copy-out plus the staged write and re-read. Deterministic, so
		// the shape check does not depend on wall-clock noise.
		_, outBefore := world.h.JCF.BlobTraffic()
		if err := world.HybridReadOnce(); err != nil {
			world.Cleanup()
			return err
		}
		_, outAfter := world.h.JCF.BlobTraffic()
		hybridMoved := (outAfter - outBefore) + 2*world.FileBytes // DB out + stage write + stage read
		hybridUS, err := world.timeHybridRead(50)
		if err != nil {
			world.Cleanup()
			return err
		}
		rows = append(rows, row{bits: bits, bytes: world.FileBytes, hybridMoved: hybridMoved, nativeUS: nativeUS, hybridUS: hybridUS})
		if bits != sizes[len(sizes)-1] {
			world.Cleanup()
		}
	}
	defer world.Cleanup()

	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-12d %-16d %-18s %-18s %.1fx\n",
			r.bits, r.bytes, r.hybridMoved, fmtUS(r.nativeUS), fmtUS(r.hybridUS), r.hybridUS/r.nativeUS)
	}
	// Shape checks, all deterministic: the workload grows with size, and
	// a hybrid read moves strictly more bytes than the native direct read
	// (which moves exactly the file once). Wall-clock numbers above are
	// reported but not asserted — they vary with machine load.
	for i := 1; i < len(rows); i++ {
		if rows[i].bytes <= rows[i-1].bytes {
			return fmt.Errorf("E36 workload did not grow: %d vs %d bytes", rows[i].bytes, rows[i-1].bytes)
		}
		if rows[i].hybridMoved <= rows[i-1].hybridMoved {
			return fmt.Errorf("E36 shape violated: hybrid traffic did not grow with size")
		}
	}
	for _, r := range rows {
		if r.hybridMoved <= r.bytes {
			return fmt.Errorf("E36 shape violated: hybrid moved %d bytes <= native %d at %d bits",
				r.hybridMoved, r.bytes, r.bits)
		}
	}

	header(w, "design-data write cost at the largest size (one edit cycle)")
	nw, err := timeOp(20, world.NativeWriteOnce)
	if err != nil {
		return err
	}
	hw, err := timeOp(20, world.HybridWriteOnce)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "native FMCAD checkout/checkin:       %s per edit\n", fmtUS(nw))
	fmt.Fprintf(w, "hybrid encapsulated activity:        %s per edit (flow check + staging + DB copy-in + derivation)\n", fmtUS(hw))

	header(w, "metadata operation latency (desktop methods, largest design loaded)")
	metaUS := world.timeMetadataOps(2000)
	fmt.Fprintf(w, "desktop metadata op: %s per op over %d ops (design size %d bytes)\n",
		fmtUS(metaUS), 2000, world.FileBytes)
	fmt.Fprintf(w, "metadata ops executed so far by the master: %d\n", world.h.JCF.MetadataOps())
	in, out := world.h.JCF.BlobTraffic()
	fmt.Fprintf(w, "design-data traffic through the database: %d bytes in, %d bytes out\n", in, out)

	fmt.Fprintf(w, "\nresult: matches the paper — metadata ops are fast and size-independent;\n")
	fmt.Fprintf(w, "        design-data access pays the copy to/from the database even read-only,\n")
	fmt.Fprintf(w, "        acceptable for small designs, increasingly painful for realistic ones\n")
	return nil
}

func fmtUS(us float64) string {
	return fmt.Sprintf("%.1fus", us)
}

// E36World is one populated hybrid with an n-bit adder checked in. The
// root benchmark suite uses it to time single operations under testing.B.
type E36World struct {
	h         *core.Hybrid
	cv        oms.OID
	schDO     oms.OID
	schDOV    oms.OID
	fmcadCell string
	slaveVer  int
	// FileBytes is the size of the checked-in schematic design file.
	FileBytes int64
	content   []byte // the formatted design, for the write-path workload
	stage     string
	// Cleanup removes all temporary state; callers must invoke it.
	Cleanup func()
}

// NewE36World builds the E36 workload at the given adder width.
func NewE36World(bits int) (*E36World, error) {
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 1)
	if err != nil {
		return nil, err
	}
	cv, err := h.NewDesignCell(project, "dut", h.DefaultFlowName(), team)
	if err != nil {
		cleanup()
		return nil, err
	}
	if err := h.JCF.Reserve("u0", cv); err != nil {
		cleanup()
		return nil, err
	}
	gen, err := schematic.GenRippleAdder("dut_v1", bits)
	if err != nil {
		cleanup()
		return nil, err
	}
	res, err := h.RunSchematicEntry("u0", cv, func(s *schematic.Schematic) error {
		return s.CopyFrom(gen)
	}, core.RunOpts{})
	if err != nil {
		cleanup()
		return nil, err
	}
	b, err := h.BindingFor(cv)
	if err != nil {
		cleanup()
		return nil, err
	}
	size, err := h.JCF.DataSize(res.OutputDOV)
	if err != nil {
		cleanup()
		return nil, err
	}
	stage, err := os.MkdirTemp("", "e36-stage-*")
	if err != nil {
		cleanup()
		return nil, err
	}
	return &E36World{
		h:         h,
		cv:        cv,
		schDO:     b.DesignObjects[core.ViewSchematic],
		schDOV:    res.OutputDOV,
		fmcadCell: b.FMCADCell,
		slaveVer:  res.SlaveVersion,
		FileBytes: size,
		content:   gen.Format(),
		stage:     stage,
		Cleanup: func() {
			os.RemoveAll(stage) //lint:allow noerrdrop best-effort temp-dir teardown after the run
			cleanup()
		},
	}, nil
}

// NativeWriteOnce performs one native FMCAD edit cycle: checkout, write,
// checkin. No master involvement.
func (w *E36World) NativeWriteOnce() error {
	session := w.h.Lib.NewSession("u0")
	wf, err := session.Checkout(w.fmcadCell, core.ViewSchematic)
	if err != nil {
		return err
	}
	if err := os.WriteFile(wf.Path, w.content, 0o644); err != nil {
		return errors.Join(err, session.Cancel(wf))
	}
	_, err = session.Checkin(wf)
	return err
}

// HybridWriteOnce performs one full encapsulated edit cycle: flow-checked
// activity, staging, slave checkout/checkin, database copy-in, derivation
// recording.
func (w *E36World) HybridWriteOnce() error {
	gen, err := schematic.Parse(w.content)
	if err != nil {
		return err
	}
	_, err = w.h.RunSchematicEntry("u0", w.cv, func(s *schematic.Schematic) error {
		return s.CopyFrom(gen)
	}, core.RunOpts{})
	return err
}

// NativeReadOnce performs one direct FMCAD file read (what native tools
// do).
func (w *E36World) NativeReadOnce() error {
	data, err := w.h.Lib.ReadVersion(w.fmcadCell, core.ViewSchematic, w.slaveVer)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("empty native read")
	}
	return nil
}

// HybridReadOnce reads the same bytes through the master: a read-only
// access still copies the design data out of the OMS database into the
// file system, then reads the staged file.
func (w *E36World) HybridReadOnce() error {
	dst := w.stage + "/read.sch"
	if err := w.h.JCF.CheckOutData("u0", w.schDOV, dst); err != nil {
		return err
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("empty hybrid read")
	}
	return nil
}

// MetadataOpOnce performs one batch of pure desktop metadata operations.
func (w *E36World) MetadataOpOnce() {
	cell, _ := w.h.JCF.CellOf(w.cv)
	_, _ = w.h.JCF.ReservedBy(w.cv)
	_ = w.h.JCF.Published(w.cv)
	_ = w.h.JCF.CellVersions(cell)
	_, _ = w.h.JCF.AttachedFlowName(w.cv) //lint:allow noerrdrop load generator; only the lock traffic of the query matters
}

// MetadataOpsParallel runs opsPerDesigner metadata batches from `designers`
// concurrent goroutines against the one shared database — the section 3.6
// metadata workload under section 3.1 team pressure. It is the benchmark
// probe for the lock-striped kernel: all designers read the same hot
// objects, so the old single-mutex store serialized them completely.
func (w *E36World) MetadataOpsParallel(designers, opsPerDesigner int) {
	var wg sync.WaitGroup
	for d := 0; d < designers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerDesigner; i++ {
				w.MetadataOpOnce()
			}
		}()
	}
	wg.Wait()
}

// timeOp times reps calls of op.
func timeOp(reps int, op func() error) (usPerOp float64, err error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(reps), nil
}

func (w *E36World) timeNativeRead(reps int) (usPerOp float64, err error) {
	return timeOp(reps, w.NativeReadOnce)
}

func (w *E36World) timeHybridRead(reps int) (usPerOp float64, err error) {
	return timeOp(reps, w.HybridReadOnce)
}

func (w *E36World) timeMetadataOps(reps int) (usPerOp float64) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		w.MetadataOpOnce()
	}
	return float64(time.Since(start).Microseconds()) / float64(reps)
}
