package experiments

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/flow"
	"repro/internal/jcf"
	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/otod"
	"repro/internal/repl"
)

// Content-addressed checkin world (ISSUE 9, BENCH_6.json).
//
// One designer checks design data of a fixed size into a reserved cell
// version, either inline (the pre-CAS baseline: the blob rides the
// batch, the snapshot, every differential delta and every replication
// frame) or through the content-addressed pipeline (the blob spills to
// the CAS asynchronously and only a ~40-byte ref commits). The world
// backs three benchmarks:
//
//   - BenchmarkE42BlobCheckin: checkin latency and metadata-commit
//     (differential SaveTo) latency p50/p99 at 4KiB/256KiB/4MiB.
//   - BenchmarkE42BlobDedup: logical/physical ratio on a re-checkin
//     workload (every version same content).
//   - BenchmarkE42BlobReplFrames: replication bytes shipped per large
//     checkin, inline vs ref.

// BlobWorld is one primary framework with a reserved cell version to
// check data into, a segment backend for differential saves, and
// (optionally) a replica following over a pipe.
type BlobWorld struct {
	FW *jcf.Framework
	CV oms.OID
	DO oms.OID

	dir    string
	src    string
	buf    []byte
	seq    uint64
	saveBE backend.Backend

	pub *repl.Publisher
	rep *repl.Replica
}

// NewBlobWorld builds the world. size is the design-data payload size;
// with cas set, a blob store (file backend, 1KiB spill threshold) is
// enabled so every checkin takes the async two-stage pipeline.
func NewBlobWorld(cas bool, size int) (*BlobWorld, error) {
	fw, err := jcf.New(jcf.Release30)
	if err != nil {
		return nil, err
	}
	if _, err := fw.CreateUser("anna"); err != nil {
		return nil, err
	}
	team, err := fw.CreateTeam("vlsi")
	if err != nil {
		return nil, err
	}
	anna, err := fw.User("anna")
	if err != nil {
		return nil, err
	}
	if err := fw.AddMember(team, anna); err != nil {
		return nil, err
	}
	vt, err := fw.CreateViewType("layout")
	if err != nil {
		return nil, err
	}
	f := flow.New("blob-flow")
	if err := f.AddActivity(flow.Activity{Name: "edit"}); err != nil {
		return nil, err
	}
	if _, err := fw.RegisterFlow(f); err != nil {
		return nil, err
	}
	project, err := fw.CreateProject("blobs", team)
	if err != nil {
		return nil, err
	}
	cell, err := fw.CreateCell(project, "macro")
	if err != nil {
		return nil, err
	}
	cv, err := fw.CreateCellVersion(cell, "blob-flow", team)
	if err != nil {
		return nil, err
	}
	if err := fw.Reserve("anna", cv); err != nil {
		return nil, err
	}
	do, err := fw.CreateDesignObject(fw.Variants(cv)[0], "macro-lay", vt)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "blob-world")
	if err != nil {
		return nil, err
	}
	w := &BlobWorld{FW: fw, CV: cv, DO: do, dir: dir,
		src: filepath.Join(dir, "design.lay"), buf: make([]byte, size)}
	for i := range w.buf {
		w.buf[i] = byte(i * 7)
	}
	if cas {
		casBE, err := backend.OpenFile(filepath.Join(dir, "cas"))
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := fw.EnableBlobStore(casBE, 1<<10); err != nil {
			w.Close()
			return nil, err
		}
	}
	// Differential saves need a delta-capable backend and a committed
	// base; every later SaveTo ships only the feed suffix — the
	// "metadata commit" the benchmark times.
	if w.saveBE, err = backend.OpenSegment(filepath.Join(dir, "state")); err != nil {
		w.Close()
		return nil, err
	}
	if err := fw.SaveTo(w.saveBE); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.NextDesign(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// NextDesign mutates the staged design file so the next CheckIn carries
// content the CAS has never seen (a counter stamped into the payload) —
// call it outside the measured region to force a real upload per
// iteration instead of a dedup hit.
func (w *BlobWorld) NextDesign() error {
	w.seq++
	binary.BigEndian.PutUint64(w.buf, w.seq)
	return os.WriteFile(w.src, w.buf, 0o644)
}

// CheckIn runs one CheckInData of the staged design file.
func (w *BlobWorld) CheckIn() (oms.OID, error) {
	return w.FW.CheckInData("anna", w.DO, w.src)
}

// Save commits the metadata delta (differential SaveTo on the segment
// backend). In inline mode the delta drags the full design bytes; in
// cas mode it carries only the ref.
func (w *BlobWorld) Save() error {
	return w.FW.SaveTo(w.saveBE)
}

// Drain blocks until every async blob upload for the cell version is
// durable (no-op in inline mode) — the benchmark's quiesce point, so
// the measured metadata commit is not timed against the CAS upload's
// disk traffic.
func (w *BlobWorld) Drain() error {
	return w.FW.WaitBlobDurable(w.CV)
}

// StartReplication attaches a publisher and one pipe replica and waits
// for convergence.
func (w *BlobWorld) StartReplication() error {
	schema, err := otod.JCFModel().Schema()
	if err != nil {
		return err
	}
	w.pub = repl.NewPublisher(w.FW.ReplicationSource())
	ln, d := repl.Pipe()
	go func() { _ = w.pub.Serve(ln) }() //lint:allow noerrdrop Serve returns nil or ErrClosed at experiment teardown
	w.rep = repl.NewReplica(schema, d, repl.WithReconnectBackoff(time.Millisecond))
	w.rep.Start()
	return w.WaitReplica(30 * time.Second)
}

// WaitReplica blocks until the replica has applied the primary's feed.
func (w *BlobWorld) WaitReplica(timeout time.Duration) error {
	return w.rep.WaitFor(w.FW.FeedLSN(), timeout)
}

// FrameBytes returns the publisher's cumulative streamed payload bytes.
func (w *BlobWorld) FrameBytes() int64 {
	return w.pub.Stats().BytesSent
}

// DedupRatio returns logical/physical ingest bytes — 1.0 means no
// dedup, N means N copies collapsed onto one.
func (w *BlobWorld) DedupRatio() float64 {
	s := w.FW.BlobStats()
	if s.PhysicalIn == 0 {
		return 0
	}
	return float64(s.LogicalIn) / float64(s.PhysicalIn)
}

// Publish publishes the cell version — draining the async uploads —
// and re-reserves it so checkins can continue.
func (w *BlobWorld) Publish() error {
	if err := w.FW.Publish("anna", w.CV); err != nil {
		return err
	}
	return w.FW.Reserve("anna", w.CV)
}

// Close tears the world down and removes its on-disk state. Uploads
// still in flight are drained first so they cannot race the removal.
func (w *BlobWorld) Close() {
	if w.rep != nil {
		w.rep.Close()
	}
	if w.pub != nil {
		w.pub.Close()
	}
	if err := w.Drain(); err != nil {
		fmt.Fprintf(os.Stderr, "blob world drain: %v\n", err)
	}
	if err := os.RemoveAll(w.dir); err != nil {
		fmt.Fprintf(os.Stderr, "blob world cleanup: %v\n", err)
	}
}
