package experiments

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/jcf"
	"repro/internal/tools/schematic"
)

// RunA1 is the ablation for the encapsulation's menu-locking design
// choice (section 2.4: extension-language procedures "lock menu points in
// order to prevent data inconsistency"). It runs the same rogue workload
// — a designer driving the slave's native checkin behind the master's
// back — against two hybrids, one with the locks installed and one with
// the locks removed, and counts the master/slave divergences each ends up
// with.
func RunA1(w io.Writer) error {
	header(w, "ablation: FML menu locks on vs off (5 rogue native check-ins)")
	withLocks, err := rogueWorkload(false)
	if err != nil {
		return err
	}
	withoutLocks, err := rogueWorkload(true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-26s %-22s %-22s %s\n", "configuration", "menu invocations", "rogue check-ins", "untracked slave versions")
	fmt.Fprintf(w, "%-26s %-22s %-22d %d\n", "locks installed (paper)",
		fmt.Sprintf("%d refused", withLocks.menuRefused), withLocks.rogueCheckins, withLocks.untracked)
	fmt.Fprintf(w, "%-26s %-22s %-22d %d\n", "locks removed (ablated)",
		fmt.Sprintf("%d allowed", withoutLocks.menuAllowed), withoutLocks.rogueCheckins, withoutLocks.untracked)
	if withLocks.untracked != 0 {
		return fmt.Errorf("A1 shape violated: locked hybrid diverged")
	}
	if withoutLocks.untracked != withoutLocks.rogueCheckins {
		return fmt.Errorf("A1 shape violated: ablated hybrid missed divergences")
	}
	fmt.Fprintf(w, "result: the menu locks are load-bearing — removing them lets every native\n")
	fmt.Fprintf(w, "        check-in desynchronize the frameworks (found by SlaveSyncCheck)\n")
	return nil
}

type a1Result struct {
	menuRefused   int
	menuAllowed   int
	rogueCheckins int
	untracked     int
}

// rogueWorkload builds a hybrid with one drawn design, then tries 5
// native menu invocations and (when unlocked) 5 native check-ins.
func rogueWorkload(unlock bool) (a1Result, error) {
	var res a1Result
	h, project, team, cleanup, err := tempWorld(jcf.Release30, 1)
	if err != nil {
		return res, err
	}
	defer cleanup()
	cv, err := h.NewDesignCell(project, "alu", h.DefaultFlowName(), team)
	if err != nil {
		return res, err
	}
	if err := h.JCF.Reserve("u0", cv); err != nil {
		return res, err
	}
	draw := func(s *schematic.Schematic) error {
		if err := s.AddPort("a", schematic.In); err != nil {
			return err
		}
		if err := s.AddPort("y", schematic.Out); err != nil {
			return err
		}
		return s.AddGate("g", schematic.Inv, "y", "a")
	}
	if _, err := h.RunSchematicEntry("u0", cv, draw, core.RunOpts{}); err != nil {
		return res, err
	}
	if unlock {
		h.UnlockNativeMenus()
	}
	binding, err := h.BindingFor(cv)
	if err != nil {
		return res, err
	}
	for i := 0; i < 5; i++ {
		if err := h.InvokeNativeMenu("File>CheckIn"); err != nil {
			res.menuRefused++
			continue
		}
		res.menuAllowed++
		// The menu worked: the designer drives the slave natively.
		session := h.Lib.NewSession("rogue")
		wf, err := session.Checkout(binding.FMCADCell, core.ViewSchematic)
		if err != nil {
			return res, err
		}
		content := fmt.Sprintf("schematic %s\nnet rogue%d\n", binding.FMCADCell, i)
		if err := os.WriteFile(wf.Path, []byte(content), 0o644); err != nil {
			return res, err
		}
		if _, err := session.Checkin(wf); err != nil {
			return res, err
		}
		res.rogueCheckins++
	}
	problems, err := h.SlaveSyncCheck()
	if err != nil {
		return res, err
	}
	res.untracked = len(problems)
	return res, nil
}
