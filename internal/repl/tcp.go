package repl

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport: length-prefixed frames (see writeFrame/readFrame)
// over one TCP connection per replica session. Reconnection is not this
// layer's job — the Replica redials through its Dialer and resumes from
// its applied LSN, so a dropped connection costs at most a re-served
// feed suffix.

// ListenTCP starts a frame listener on addr (e.g. ":7070" or
// "127.0.0.1:0"; Addr reports the bound address).
func ListenTCP(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen %s: %w", addr, err)
	}
	return &tcpListener{ln: ln}, nil
}

type tcpListener struct {
	ln net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error { return l.ln.Close() }

// TCPDialer dials a publisher endpoint. The zero Timeout means
// defaultDialTimeout per attempt.
type TCPDialer struct {
	Addr    string
	Timeout time.Duration
}

const defaultDialTimeout = 5 * time.Second

// Dial opens one connection to the publisher.
func (d *TCPDialer) Dial() (Conn, error) {
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = defaultDialTimeout
	}
	c, err := net.DialTimeout("tcp", d.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("repl: dial %s: %w", d.Addr, err)
	}
	return newTCPConn(c), nil
}

// tcpConn frames a net.Conn. Send and Recv each serialize under their
// own mutex, so one sender and one receiver goroutine can run
// concurrently (the session pattern both ends use).
type tcpConn struct {
	c  net.Conn
	wm sync.Mutex
	bw *bufio.Writer
	rm sync.Mutex
	br *bufio.Reader
}

func newTCPConn(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Frames are written whole and flushed; coalescing delay would
		// only add replication lag.
		_ = tc.SetNoDelay(true) //lint:allow noerrdrop best-effort socket tuning; the stream works (slower) without it
	}
	return &tcpConn{c: c, bw: bufio.NewWriter(c), br: bufio.NewReader(c)}
}

func (t *tcpConn) Send(f Frame) error {
	t.wm.Lock()
	defer t.wm.Unlock()
	if err := writeFrame(t.bw, f); err != nil {
		return err
	}
	return t.bw.Flush()
}

func (t *tcpConn) Recv() (Frame, error) {
	t.rm.Lock()
	defer t.rm.Unlock()
	return readFrame(t.br)
}

func (t *tcpConn) Close() error { return t.c.Close() }
