package repl

import (
	"testing"
	"time"

	"repro/internal/jcf"
	"repro/internal/oms/backend"
)

// Repro: serve a framework restored via LoadFrom (feed restarts at 0).
func TestReproLoadThenServe(t *testing.T) {
	dir := t.TempDir()
	fw, err := jcf.New(jcf.Release40)
	if err != nil {
		t.Fatal(err)
	}
	team, err := fw.CreateTeam("t1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := fw.CreateProject("p1", team)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.CreateCell(p, "alu"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Save(dir); err != nil {
		t.Fatal(err)
	}
	b, err := backend.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := jcf.LoadFrom(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded primary: objects=%d feedLSN=%d", fw2.ReplicationSource().Count(""), fw2.ReplicationSource().FeedLSN())

	pub := NewPublisher(fw2.ReplicationSource(), WithSeedBackend(b))
	defer pub.Close()
	ln, d := Pipe()
	go pub.Serve(ln)
	rep := NewReplica(fw2.ReplicationSource().Schema(), d)
	rep.Start()
	defer rep.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rep.Lag() == 0 && rep.Stats().FramesApplied > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("replica: objects=%d applied=%d lag=%d primary objects=%d",
		rep.Store().Count(""), rep.AppliedLSN(), rep.Lag(), fw2.ReplicationSource().Count(""))
	if rep.Store().Count("") != fw2.ReplicationSource().Count("") {
		t.Fatalf("DIVERGED: replica has %d objects, primary has %d", rep.Store().Count(""), fw2.ReplicationSource().Count(""))
	}
}
