package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/oms/blobstore"
)

// Replica is one follower store: it dials a Publisher, bootstraps, and
// applies the primary's change feed in strict LSN order. The replica's
// store mirrors the primary's commit sequence record for record
// (ApplyReplicated republishes at the primary's LSNs), so AppliedLSN is
// both the replication position and the store's own FeedLSN.
//
// Failure handling is uniform: any transport error, decode error, gap or
// mid-apply failure ends the current session, and the next (re)connect
// resumes from the applied LSN — or, when the store may be damaged
// (mid-apply failure), demands a fresh bootstrap. The publisher decides
// per session whether the resume position can be served from its feed
// ring or needs a snapshot/chain bootstrap, mirroring the Watch
// Lagged() fallback inside one process.
type Replica struct {
	st      *oms.Store
	dial    Dialer
	seed    backend.Backend // optional: local manifest chain for first boot
	backoff time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	poisoned  bool // store state suspect; next hello demands a snapshot
	gapStreak int  // consecutive gap-failed sessions; escalates to bootstrap
	lastErr   error
	closed    bool
	done      chan struct{} // closed by Close; interrupts backoff sleeps
	conn      Conn          // live connection, closed to interrupt follow()

	// applied (== st.FeedLSN()) and watermark (publisher's last reported
	// committed LSN) are written only by the follow goroutine, inside
	// advanceLocked under r.mu — the store-then-Broadcast order is what
	// keeps WaitFor's cond loop free of lost wakeups. Reads (AppliedLSN,
	// Lag, WaitFor's fast path, the /metrics gauges) are lock-free, so a
	// scrape never contends with an apply.
	applied   atomic.Uint64
	watermark atomic.Uint64

	// blobWaiters holds the readers parked in fetchBlob, keyed by the
	// digest they asked the publisher for (guarded by mu). Each channel
	// is buffered and receives exactly one result.
	blobWaiters map[[32]byte][]chan blobResult

	wg sync.WaitGroup

	metrics replicaMetrics
}

// replicaMetrics holds the replica's instrument cells: pure atomics, so
// Stats() and a /metrics scrape never take r.mu (satellite: scraping
// must not block an apply).
type replicaMetrics struct {
	bootstraps  obs.Counter
	reconnects  obs.Counter
	gaps        obs.Counter
	framesIn    obs.Counter
	bytesIn     obs.Counter
	applied     obs.Counter // change frames applied
	closeErrors obs.Counter
	waitFor     obs.Histogram // WaitFor latency (fast path included)
	blobFetch   obs.Histogram // lazy blob fetch round-trip
}

// ReplicaStats counts a replica's lifecycle events (a point-in-time view
// over the atomic cells; read via Stats).
type ReplicaStats struct {
	// Bootstraps counts snapshot installs (initial and re-bootstraps).
	Bootstraps int64
	// Reconnects counts sessions after the first.
	Reconnects int64
	// Gaps counts streams rejected because they skipped records.
	Gaps int64
	// FramesApplied counts applied change frames.
	FramesApplied int64
	// CloseErrors counts connection teardowns that themselves failed —
	// otherwise-invisible descriptor-leak warnings.
	CloseErrors int64
}

// noteCloseErr closes a dead connection, counting (rather than
// discarding) a teardown failure; the session it belonged to is already
// over, so there is no error path left to return it on.
func (r *Replica) noteCloseErr(c Conn) {
	if err := c.Close(); err != nil {
		r.metrics.closeErrors.Inc()
	}
}

// ReplicaOption configures NewReplica.
type ReplicaOption func(*Replica)

// WithLocalSeed seeds the first bootstrap from a local backend's commit
// manifest (base + delta chain) before dialing — a replica colocated
// with a state directory starts warm and asks the publisher only for the
// suffix.
func WithLocalSeed(b backend.Backend) ReplicaOption {
	return func(r *Replica) { r.seed = b }
}

// WithReconnectBackoff sets the delay between failed sessions (default
// 50ms). Dial errors and dropped connections both wait this long.
func WithReconnectBackoff(d time.Duration) ReplicaOption {
	return func(r *Replica) { r.backoff = d }
}

// WithBlobStore attaches a content-addressed blob store to the follower
// store. The change feed replicates only ~40-byte refs for spilled
// design data; the first read of a blob the replica does not hold
// fetches it from the publisher by digest (FrameBlobFetch) and caches
// it locally, digest-verified. Spilling is disabled on the follower
// (threshold 0) — replicas never originate blobs.
func WithBlobStore(bs *blobstore.Store) ReplicaOption {
	return func(r *Replica) {
		r.st.AttachBlobs(bs, 0)
		bs.SetFetcher(r.fetchBlob)
	}
}

// NewReplica returns a stopped replica with an empty follower store
// enforcing schema. Call Start to begin following.
func NewReplica(schema *oms.Schema, d Dialer, opts ...ReplicaOption) *Replica {
	r := &Replica{
		st:      oms.NewStore(schema),
		dial:    d,
		backoff: 50 * time.Millisecond,
		done:    make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	return r
}

// Store returns the follower store. It is live — queries see replicated
// state as it applies — and must be treated as STRICTLY read-only;
// mutating it forks the replica from the primary. Query layers wrap it
// in an enforcing view (jcf.NewReplicaView).
func (r *Replica) Store() *oms.Store { return r.st }

// Start launches the follow loop. It returns immediately.
func (r *Replica) Start() {
	r.wg.Add(1)
	go r.run()
}

// AppliedLSN returns the highest primary LSN applied to the follower
// store (0 before the first bootstrap). Lock-free.
func (r *Replica) AppliedLSN() uint64 {
	return r.applied.Load()
}

// Lag returns how many committed records the replica is known to be
// behind the primary: the publisher's last reported watermark minus the
// applied LSN. It is a lower bound — the primary may have committed more
// since the last frame arrived. Lock-free; the two loads may straddle an
// advance, which only shrinks the reported lag (applied reads newer).
func (r *Replica) Lag() uint64 {
	watermark, applied := r.watermark.Load(), r.applied.Load()
	if watermark <= applied {
		return 0
	}
	return watermark - applied
}

// Err returns the error that ended the most recent session (nil after a
// clean stretch). Sessions auto-retry; Err is diagnostic.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Stats returns cumulative replica counters. Lock-free: each field is an
// independent atomic load, so the view may straddle a concurrent frame.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		Bootstraps:    r.metrics.bootstraps.Load(),
		Reconnects:    r.metrics.reconnects.Load(),
		Gaps:          r.metrics.gaps.Load(),
		FramesApplied: r.metrics.applied.Load(),
		CloseErrors:   r.metrics.closeErrors.Load(),
	}
}

// RegisterMetrics exposes the replica's instrument cells in reg. The
// applied/lag gauges read the same atomics AppliedLSN and Lag do, so the
// HTTP endpoint and the CLI report identical numbers.
func (r *Replica) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("repl_replica_bootstraps_total", &r.metrics.bootstraps)
	reg.RegisterCounter("repl_replica_reconnects_total", &r.metrics.reconnects)
	reg.RegisterCounter("repl_replica_gaps_total", &r.metrics.gaps)
	reg.RegisterCounter("repl_replica_frames_in_total", &r.metrics.framesIn)
	reg.RegisterCounter("repl_replica_bytes_in_total", &r.metrics.bytesIn)
	reg.RegisterCounter("repl_replica_frames_applied_total", &r.metrics.applied)
	reg.RegisterCounter("repl_replica_close_errors_total", &r.metrics.closeErrors)
	reg.RegisterGaugeFunc("repl_replica_applied_lsn", func() int64 { return int64(r.applied.Load()) })
	reg.RegisterGaugeFunc("repl_replica_lag", func() int64 { return int64(r.Lag()) })
	reg.RegisterHistogram("repl_waitfor_ns", &r.metrics.waitFor)
	reg.RegisterHistogram("repl_blob_fetch_ns", &r.metrics.blobFetch)
}

// WaitFor blocks until the replica has applied every record up to and
// including lsn — the read-your-writes barrier: a client that wrote to
// the primary at commit LSN n calls WaitFor(n) on its replica and then
// reads its own write. It fails after timeout, or immediately once the
// replica is closed or promoted.
func (r *Replica) WaitFor(lsn uint64, timeout time.Duration) error {
	start := obs.Now()
	// Already-applied fast path: no lock, no timer allocation. applied is
	// monotonic, and the slow path below returns nil for a satisfied wait
	// even on a closed replica, so answering from the atomic alone is
	// exactly the behavior the lock would produce.
	if r.applied.Load() >= lsn {
		r.metrics.waitFor.Since(start)
		return nil
	}
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	defer r.metrics.waitFor.Since(start)
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.applied.Load() < lsn {
		if r.closed {
			return fmt.Errorf("repl: wait for lsn %d: replica closed", lsn)
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("repl: wait for lsn %d: timeout at %d", lsn, r.applied.Load())
		}
		r.cond.Wait()
	}
	return nil
}

// Close stops the follow loop and waits for it. Idempotent.
func (r *Replica) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.done)
		if r.conn != nil {
			r.noteCloseErr(r.conn)
		}
		r.cond.Broadcast()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Promote detaches the replica for failover: the follow loop stops and
// the follower store is returned as the new writable primary. Its feed
// watermark already equals the applied LSN, so new commits continue the
// primary's LSN sequence — snapshots, differential saves and replicas of
// the promoted store all line up. The caller owns deciding that the old
// primary is really dead; repl offers no quorum.
func (r *Replica) Promote() *oms.Store {
	r.Close()
	return r.st
}

// run is the follow loop: dial, follow, back off, repeat.
func (r *Replica) run() {
	defer r.wg.Done()
	if r.seed != nil {
		r.seedLocal()
	}
	first := true
	for {
		if r.isClosed() {
			return
		}
		if !first {
			r.metrics.reconnects.Inc()
		}
		first = false
		c, err := r.dial.Dial()
		if err != nil {
			r.fail(err)
			r.sleep()
			continue
		}
		r.setConn(c)
		err = r.follow(c)
		r.noteCloseErr(c)
		r.setConn(nil)
		r.failBlobWaiters()
		if r.isClosed() {
			return
		}
		if err != nil {
			r.fail(err)
		}
		r.sleep()
	}
}

// follow runs one session: hello, then apply frames until the stream
// ends. A nil return means the peer hung up cleanly (publisher closing
// or dropping the session); the loop reconnects either way.
func (r *Replica) follow(c Conn) error {
	r.mu.Lock()
	flags := byte(0)
	if r.poisoned {
		flags |= helloNeedSnapshot
	}
	r.mu.Unlock()
	resume := r.applied.Load()
	if err := c.Send(Frame{Type: FrameHello, LSN: resume, Payload: []byte{flags}}); err != nil {
		return err
	}
	for {
		f, err := c.Recv()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		r.metrics.framesIn.Inc()
		r.metrics.bytesIn.Add(int64(len(f.Payload)))
		switch f.Type {
		case FrameSnapshot:
			// A healthy replica at or past the bootstrap base skips the
			// install: rewinding the store below its applied LSN would
			// transiently un-happen writes that WaitFor barriers already
			// acknowledged. The frames that follow overlap-trim against
			// the applied position and continue from there. A poisoned
			// store takes the snapshot unconditionally — that is the
			// point of demanding it.
			r.mu.Lock()
			skip := !r.poisoned && f.LSN <= r.applied.Load()
			r.mu.Unlock()
			if skip {
				continue
			}
			if err := r.st.ResetFromSnapshot(f.Payload, f.LSN); err != nil {
				// Nothing was installed; the store is whatever it was.
				return err
			}
			r.metrics.bootstraps.Inc()
			r.mu.Lock()
			r.poisoned = false
			r.gapStreak = 0
			r.advanceLocked(f.LSN, f.LSN)
			r.mu.Unlock()
		case FrameChanges:
			recs, err := oms.DecodeChanges(f.Payload)
			if err != nil {
				return err
			}
			// Drop records the store already holds — overlap is normal
			// when a resume point sits inside a shipped delta chain.
			applied := r.st.FeedLSN()
			for len(recs) > 0 && recs[0].LSN <= applied {
				recs = recs[1:]
			}
			if err := r.st.ApplyReplicated(recs); err != nil {
				r.mu.Lock()
				if errors.Is(err, oms.ErrFeedGap) {
					// Nothing applied; resuming from the applied LSN is
					// safe and the publisher will fill the gap. But a
					// gap that persists across sessions means resume
					// cannot converge (e.g. the replica's history has
					// diverged from this primary's) — escalate to a
					// forced bootstrap instead of reconnecting forever.
					r.metrics.gaps.Inc()
					if r.gapStreak++; r.gapStreak >= 3 {
						r.poisoned = true
					}
				} else {
					// Failed mid-group: the store is suspect. Demand a
					// fresh snapshot on the next session.
					r.poisoned = true
				}
				r.mu.Unlock()
				return err
			}
			r.metrics.applied.Inc()
			r.mu.Lock()
			if len(recs) > 0 {
				// Real records attached — resume is converging. (Empty
				// position frames don't count: they would reset the
				// streak on every reconnect of a diverged replica.)
				r.gapStreak = 0
			}
			r.advanceLocked(r.st.FeedLSN(), f.LSN)
			r.mu.Unlock()
		case FrameBlob:
			if err := r.acceptBlob(f); err != nil {
				return err
			}
		default:
			return fmt.Errorf("repl: unexpected frame type %d", f.Type)
		}
	}
}

// blobResult delivers one fetched blob (or its failure) to a waiter.
type blobResult struct {
	data []byte
	err  error
}

// fetchBlob is the blob store's miss handler: ask the current session's
// publisher for ref and park until the FrameBlob answer is routed back
// by follow(). The blob store digest-verifies whatever arrives before
// caching or returning it, so a corrupt or lying peer cannot poison the
// local CAS. Runs on reader goroutines, never under r.mu.
func (r *Replica) fetchBlob(ref blobstore.Ref) ([]byte, error) {
	start := obs.Now()
	ch := make(chan blobResult, 1)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("repl: fetch %s: replica closed", ref)
	}
	c := r.conn
	if c == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("repl: fetch %s: no publisher session", ref)
	}
	if r.blobWaiters == nil {
		r.blobWaiters = map[[32]byte][]chan blobResult{}
	}
	r.blobWaiters[ref.Digest] = append(r.blobWaiters[ref.Digest], ch)
	r.mu.Unlock()
	if err := c.Send(Frame{Type: FrameBlobFetch, Payload: blobstore.EncodeRef(ref)}); err != nil {
		r.dropBlobWaiter(ref.Digest, ch)
		// The channel may have raced a delivery in before the drop; a
		// buffered result is simply discarded with the channel.
		return nil, fmt.Errorf("repl: fetch %s: %w", ref, err)
	}
	select {
	case res := <-ch:
		r.metrics.blobFetch.Since(start)
		return res.data, res.err
	case <-r.done:
		r.dropBlobWaiter(ref.Digest, ch)
		return nil, fmt.Errorf("repl: fetch %s: replica closed", ref)
	}
}

// acceptBlob routes one FrameBlob to the waiters parked on its digest.
// The status byte after the echoed ref distinguishes a not-found answer
// from a found blob — including a legitimate zero-length one, which an
// empty-payload convention could never deliver.
func (r *Replica) acceptBlob(f Frame) error {
	if len(f.Payload) < blobstore.EncodedRefSize+1 {
		return fmt.Errorf("repl: short blob frame (%d bytes)", len(f.Payload))
	}
	ref, err := blobstore.DecodeRef(f.Payload[:blobstore.EncodedRefSize])
	if err != nil {
		return fmt.Errorf("repl: blob frame: %w", err)
	}
	var res blobResult
	switch status := f.Payload[blobstore.EncodedRefSize]; status {
	case blobFound:
		res.data = f.Payload[blobstore.EncodedRefSize+1:]
	case blobMissing:
		res.err = fmt.Errorf("repl: publisher does not hold %s", ref)
	default:
		return fmt.Errorf("repl: blob frame with unknown status %d", status)
	}
	r.mu.Lock()
	chs := r.blobWaiters[ref.Digest]
	delete(r.blobWaiters, ref.Digest)
	r.mu.Unlock()
	for _, ch := range chs {
		ch <- res // buffered; never blocks
	}
	return nil
}

// dropBlobWaiter unregisters one fetch channel (send failed or the
// replica closed before the answer came).
func (r *Replica) dropBlobWaiter(digest [32]byte, ch chan blobResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	chs := r.blobWaiters[digest]
	for i, c := range chs {
		if c == ch {
			chs = append(chs[:i], chs[i+1:]...)
			break
		}
	}
	if len(chs) == 0 {
		delete(r.blobWaiters, digest)
	} else {
		r.blobWaiters[digest] = chs
	}
}

// failBlobWaiters ends every outstanding fetch: the session the requests
// went out on is gone and its answers will never arrive. Readers retry
// against the next session if they want to.
func (r *Replica) failBlobWaiters() {
	r.mu.Lock()
	waiters := r.blobWaiters
	r.blobWaiters = nil
	r.mu.Unlock()
	for _, chs := range waiters {
		for _, ch := range chs {
			ch <- blobResult{err: errors.New("repl: session ended before blob arrived")}
		}
	}
}

// advanceLocked moves the applied/watermark positions and wakes WaitFor.
// Caller holds r.mu: the atomics are stored before the Broadcast and
// WaitFor re-checks them under the same mu, so no wakeup is lost.
func (r *Replica) advanceLocked(applied, watermark uint64) {
	r.applied.Store(applied)
	if watermark < applied {
		watermark = applied
	}
	if watermark > r.watermark.Load() {
		r.watermark.Store(watermark)
	}
	r.cond.Broadcast()
}

// seedLocal installs the local backend's committed base + delta chain
// before the first dial, so the publisher only streams the suffix. Best
// effort: any failure leaves the store empty and the publisher
// bootstraps as usual.
func (r *Replica) seedLocal() {
	m, err := backend.LoadManifest(r.seed)
	if err != nil {
		return
	}
	base, err := r.seed.Get(m.OMS)
	if err != nil || backend.SHA256Hex(base) != m.OMSSum {
		return
	}
	if err := r.st.ResetFromSnapshot(base, m.BaseLSN); err != nil {
		return
	}
	for _, d := range m.Deltas {
		payload, err := r.seed.Get(d.Name)
		if err != nil || backend.SHA256Hex(payload) != d.Sum {
			break
		}
		recs, err := oms.DecodeChanges(payload)
		if err != nil {
			break
		}
		if err := r.st.ApplyReplicated(recs); err != nil {
			break
		}
	}
	r.metrics.bootstraps.Inc()
	r.mu.Lock()
	r.advanceLocked(r.st.FeedLSN(), r.st.FeedLSN())
	r.mu.Unlock()
}

func (r *Replica) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *Replica) setConn(c Conn) {
	r.mu.Lock()
	r.conn = c
	if r.closed && c != nil {
		r.noteCloseErr(c)
	}
	r.mu.Unlock()
}

func (r *Replica) fail(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.mu.Unlock()
}

// sleep waits the reconnect backoff, returning early on Close.
func (r *Replica) sleep() {
	t := time.NewTimer(r.backoff)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.done:
	}
}
