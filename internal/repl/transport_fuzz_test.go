package repl

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes renders a valid frame for the seed corpus.
func frameBytes(t *testing.F, f Frame) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := writeFrame(&b, f); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// FuzzReadFrame: parse arbitrary bytes as one wire frame. Whatever
// parses must re-encode byte-identically to the consumed prefix, and a
// hostile length prefix must be rejected before any allocation.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(f, Frame{Type: FrameHello, LSN: 42}))
	f.Add(frameBytes(f, Frame{Type: FrameSnapshot, LSN: 7, Payload: []byte(`{"objects":{}}`)}))
	f.Add(frameBytes(f, Frame{Type: FrameChanges, LSN: 9, Payload: []byte(`[{"lsn":1,"group":1,"kind":0,"oid":1,"class":"Cell"}]`)}))
	f.Add(frameBytes(f, Frame{Type: FrameHello, LSN: 1})[:5]) // truncated header
	short := frameBytes(f, Frame{Type: FrameChanges, LSN: 3, Payload: []byte(`[]`)})
	f.Add(short[:len(short)-1]) // truncated payload
	hostile := make([]byte, frameHeaderSize)
	hostile[0] = byte(FrameChanges)
	binary.BigEndian.PutUint32(hostile[9:13], 1<<31) // over maxFramePayload
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeFrame(&out, fr); err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		if got, want := out.Bytes(), data[:out.Len()]; !bytes.Equal(got, want) {
			t.Fatalf("round-trip mismatch:\n got %x\nwant %x", got, want)
		}
	})
}
