package repl

import (
	"sync"
)

// The in-process pipe transport: a Listener/Dialer pair connected by
// channels. It is the transport of the tests, the stress harness and the
// benchmarks — no sockets, no serialization beyond the Frame structs
// themselves — and of same-process replicas (a read-only view inside the
// primary's process, e.g. to isolate heavy analytical queries).

// pipeBuf is the per-direction frame buffer of a pipe connection.
const pipeBuf = 16

// Pipe returns a connected Listener/Dialer pair. Every Dial produces a
// fresh connection accepted by the listener; closing the listener fails
// further dials.
func Pipe() (Listener, Dialer) {
	ln := &pipeListener{ch: make(chan Conn), done: make(chan struct{})}
	return ln, &pipeDialer{ln: ln}
}

type pipeListener struct {
	ch        chan Conn
	done      chan struct{}
	closeOnce sync.Once
}

func (l *pipeListener) Accept() (Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *pipeListener) Addr() string { return "pipe" }

func (l *pipeListener) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	return nil
}

type pipeDialer struct {
	ln *pipeListener
}

func (d *pipeDialer) Dial() (Conn, error) {
	a2b := make(chan Frame, pipeBuf)
	b2a := make(chan Frame, pipeBuf)
	cDone := make(chan struct{})
	sDone := make(chan struct{})
	client := &pipeConn{out: a2b, in: b2a, localDone: cDone, peerDone: sDone}
	server := &pipeConn{out: b2a, in: a2b, localDone: sDone, peerDone: cDone}
	select {
	case d.ln.ch <- server:
		return client, nil
	case <-d.ln.done:
		return nil, ErrClosed
	}
}

// pipeConn is one end of an in-process connection. Frames pass by value;
// payload slices are shared between the ends (both sides treat frame
// payloads as immutable, like every feed consumer).
type pipeConn struct {
	out       chan<- Frame
	in        <-chan Frame
	localDone chan struct{} // closed by this end's Close
	peerDone  chan struct{} // closed by the peer's Close
	closeOnce sync.Once
}

func (c *pipeConn) Send(f Frame) error {
	select {
	case <-c.localDone:
		return ErrClosed
	case <-c.peerDone:
		return ErrClosed
	default:
	}
	select {
	case c.out <- f:
		return nil
	case <-c.localDone:
		return ErrClosed
	case <-c.peerDone:
		return ErrClosed
	}
}

func (c *pipeConn) Recv() (Frame, error) {
	// Drain frames already in flight even when the peer has closed —
	// mirrors a socket, where buffered bytes are readable after the
	// writer hangs up.
	select {
	case f := <-c.in:
		return f, nil
	default:
	}
	select {
	case f := <-c.in:
		return f, nil
	case <-c.localDone:
		return Frame{}, ErrClosed
	case <-c.peerDone:
		select {
		case f := <-c.in:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() { close(c.localDone) })
	return nil
}
