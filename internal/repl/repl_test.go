package repl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/oms"
	"repro/internal/oms/backend"
)

// testSchema is the small schema the replication tests share.
func testSchema(t testing.TB) *oms.Schema {
	t.Helper()
	s := oms.NewSchema()
	if err := s.AddClass("Cell",
		oms.AttrDef{Name: "name", Kind: oms.KindString, Required: true},
		oms.AttrDef{Name: "rev", Kind: oms.KindInt},
		oms.AttrDef{Name: "data", Kind: oms.KindBlob}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("Version",
		oms.AttrDef{Name: "num", Kind: oms.KindInt, Required: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRel(oms.RelDef{Name: "hasVersion", From: "Cell", To: "Version",
		FromCard: oms.One, ToCard: oms.Many}); err != nil {
		t.Fatal(err)
	}
	return s
}

// fingerprint renders a store deterministically with the allocator
// position masked (failed ops burn OIDs without leaving records).
func fingerprint(t testing.TB, st *oms.Store) string {
	t.Helper()
	data, err := st.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "next_oid")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func waitConverged(t testing.TB, r *Replica, st *oms.Store, timeout time.Duration) {
	t.Helper()
	if err := r.WaitFor(st.FeedLSN(), timeout); err != nil {
		t.Fatalf("replica did not converge: %v (applied %d, want %d)", err, r.AppliedLSN(), st.FeedLSN())
	}
}

// TestFrameCodec covers the wire framing: round-trip, truncated header,
// truncated payload, oversized length prefix.
func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Type: FrameChanges, LSN: 42, Payload: []byte("hello")}
	if err := writeFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.LSN != want.LSN || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("round-trip mismatch: %+v != %+v", got, want)
	}
	// Every truncation of a valid frame must error, never hang or panic.
	for cut := 0; cut < len(wire); cut++ {
		if _, err := readFrame(bytes.NewReader(wire[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// A hostile length prefix must be rejected before allocation.
	bad := append([]byte(nil), wire...)
	bad[9], bad[10], bad[11], bad[12] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := readFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	if _, err := readFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: got %v, want EOF", err)
	}
}

// startPipePublisher wires a publisher to a fresh pipe transport.
func startPipePublisher(t testing.TB, st *oms.Store, opts ...PublisherOption) (*Publisher, Dialer) {
	t.Helper()
	ln, d := Pipe()
	p := NewPublisher(st, opts...)
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(p.Close)
	return p, d
}

// TestReplicaBootstrapAndTail: a replica joining an already-populated
// primary converges, then tracks live traffic; WaitFor gives
// read-your-writes.
func TestReplicaBootstrapAndTail(t *testing.T) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := st.Create("Version", map[string]oms.Value{"num": oms.I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	_, d := startPipePublisher(t, st)
	rep := NewReplica(testSchema(t), d)
	rep.Start()
	defer rep.Close()
	waitConverged(t, rep, st, 5*time.Second)
	if got, want := fingerprint(t, rep.Store()), fingerprint(t, st); got != want {
		t.Fatalf("bootstrap fingerprint mismatch:\n got %s\nwant %s", got, want)
	}

	// Live tail + read-your-writes barrier.
	if err := st.Set(cell, "rev", oms.I(7)); err != nil {
		t.Fatal(err)
	}
	lsn := st.FeedLSN()
	if err := rep.WaitFor(lsn, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := rep.Store().GetInt(cell, "rev"); got != 7 {
		t.Fatalf("read-your-writes violated: rev = %d after WaitFor(%d)", got, lsn)
	}
	if rep.AppliedLSN() != rep.Store().FeedLSN() {
		t.Fatalf("applied %d != follower feed %d", rep.AppliedLSN(), rep.Store().FeedLSN())
	}
	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("lag %d after quiesce", lag)
	}
}

// TestReplicaResume: a dropped transport resumes from the applied LSN
// without a second bootstrap.
func TestReplicaResume(t *testing.T) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	p, d := startPipePublisher(t, st)
	rep := NewReplica(testSchema(t), d, WithReconnectBackoff(time.Millisecond))
	rep.Start()
	defer rep.Close()
	waitConverged(t, rep, st, 5*time.Second)

	p.DisconnectAll()
	for i := 0; i < 50; i++ {
		if err := st.Set(cell, "rev", oms.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, rep, st, 5*time.Second)
	if got := rep.Store().GetInt(cell, "rev"); got != 49 {
		t.Fatalf("rev = %d after resume", got)
	}
	// The whole history stayed within the feed ring, so no session ever
	// needed a snapshot.
	if boots := rep.Stats().Bootstraps; boots != 0 {
		t.Fatalf("resume took %d bootstraps, want 0", boots)
	}
	if rec := rep.Stats().Reconnects; rec == 0 {
		t.Fatal("expected at least one reconnect")
	}
}

// churn drives n tiny committed ops through the store.
func churn(t testing.TB, st *oms.Store, oid oms.OID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.Set(oid, "rev", oms.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

// gateDialer blocks Dial while the gate is shut — the test lever for
// keeping a replica disconnected long enough to fall out of the ring.
type gateDialer struct {
	d    Dialer
	mu   sync.Mutex
	open chan struct{}
}

func newGateDialer(d Dialer) *gateDialer {
	g := &gateDialer{d: d, open: make(chan struct{})}
	close(g.open)
	return g
}

func (g *gateDialer) gate() chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.open
}

func (g *gateDialer) Shut() {
	g.mu.Lock()
	g.open = make(chan struct{})
	g.mu.Unlock()
}

func (g *gateDialer) Open() {
	g.mu.Lock()
	select {
	case <-g.open:
	default:
		close(g.open)
	}
	g.mu.Unlock()
}

func (g *gateDialer) Dial() (Conn, error) {
	select {
	case <-g.gate():
		return g.d.Dial()
	case <-time.After(time.Millisecond):
		return nil, fmt.Errorf("repl_test: gate shut")
	}
}

// TestReplicaEvictionRebootstrap: a replica that falls behind the feed
// ring's retention window re-bootstraps from a snapshot and still
// converges — the Watch Lagged() fallback across the wire.
func TestReplicaEvictionRebootstrap(t *testing.T) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	p, d := startPipePublisher(t, st)
	gated := newGateDialer(d)
	rep := NewReplica(testSchema(t), gated, WithReconnectBackoff(time.Millisecond))
	rep.Start()
	defer rep.Close()
	waitConverged(t, rep, st, 5*time.Second)

	// Cut the transport and hold it down while the primary runs far past
	// the ring's retention (32k records), so the replica's resume
	// position is gone by the time it can reconnect.
	gated.Shut()
	p.DisconnectAll()
	churn(t, st, cell, 40_000)
	gated.Open()
	waitConverged(t, rep, st, 30*time.Second)
	if got, want := fingerprint(t, rep.Store()), fingerprint(t, st); got != want {
		t.Fatal("fingerprint mismatch after eviction re-bootstrap")
	}
	if boots := rep.Stats().Bootstraps; boots == 0 {
		t.Fatal("expected a snapshot re-bootstrap after eviction")
	}
}

// TestReplicaChainBootstrap: a publisher with a seed backend bootstraps
// an evicted-past replica by shipping the committed base + delta chain
// instead of cutting a fresh snapshot.
func TestReplicaChainBootstrap(t *testing.T) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Mimic the persistence layer's periodic differential saves: a full
	// base commit, then delta commits captured while the suffix is still
	// retained, while the feed ring churns far past its window.
	base, err := st.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put("oms@1", base); err != nil {
		t.Fatal(err)
	}
	m := backend.Manifest{
		Epoch: 1, OMS: "oms@1", Framework: "framework@1",
		OMSSum:       backend.SHA256Hex(base),
		FrameworkSum: backend.SHA256Hex(nil),
		BaseEpoch:    1, BaseLSN: st.FeedLSN(), FeedLSN: st.FeedLSN(),
	}
	if err := seed.Put("framework@1", nil); err != nil {
		t.Fatal(err)
	}
	prevLSN := st.FeedLSN()
	for round := 0; round < 40; round++ {
		churn(t, st, cell, 1000)
		recs, ok := st.Changes(prevLSN)
		if !ok {
			t.Fatalf("round %d: suffix evicted before capture", round)
		}
		payload, err := oms.EncodeChanges(recs)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("delta@%d", round+2)
		if err := seed.Put(name, payload); err != nil {
			t.Fatal(err)
		}
		to := recs[len(recs)-1].LSN
		m.Deltas = append(m.Deltas, backend.DeltaRef{
			Name: name, Sum: backend.SHA256Hex(payload), FromLSN: prevLSN, ToLSN: to,
		})
		m.Epoch++
		m.FeedLSN = to
		prevLSN = to
	}
	if err := backend.PutManifest(seed, m); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Watch(0, 1); err == nil {
		t.Fatal("test premise broken: feed still retains LSN 0")
	}

	p, d := startPipePublisher(t, st, WithSeedBackend(seed))
	rep := NewReplica(testSchema(t), d)
	rep.Start()
	defer rep.Close()
	waitConverged(t, rep, st, 30*time.Second)
	if got, want := fingerprint(t, rep.Store()), fingerprint(t, st); got != want {
		t.Fatal("fingerprint mismatch after chain bootstrap")
	}
	if p.Stats().ChainBootstraps != 1 {
		t.Fatalf("chain bootstraps = %d, want 1", p.Stats().ChainBootstraps)
	}
	if p.Stats().SnapshotBootstraps != 0 {
		t.Fatalf("snapshot bootstraps = %d, want 0", p.Stats().SnapshotBootstraps)
	}
}

// TestReplicaLocalSeed: a replica colocated with a saved state directory
// starts from the local chain and only streams the suffix.
func TestReplicaLocalSeed(t *testing.T) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	churn(t, st, cell, 100)
	seed, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, err := st.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put("oms@1", base); err != nil {
		t.Fatal(err)
	}
	if err := seed.Put("framework@1", nil); err != nil {
		t.Fatal(err)
	}
	if err := backend.PutManifest(seed, backend.Manifest{
		Epoch: 1, OMS: "oms@1", Framework: "framework@1",
		OMSSum:       backend.SHA256Hex(base),
		FrameworkSum: backend.SHA256Hex(nil),
		BaseEpoch:    1, BaseLSN: st.FeedLSN(), FeedLSN: st.FeedLSN(),
	}); err != nil {
		t.Fatal(err)
	}
	churn(t, st, cell, 50) // the suffix the publisher must stream

	p, d := startPipePublisher(t, st)
	rep := NewReplica(testSchema(t), d, WithLocalSeed(seed))
	rep.Start()
	defer rep.Close()
	waitConverged(t, rep, st, 5*time.Second)
	if got, want := fingerprint(t, rep.Store()), fingerprint(t, st); got != want {
		t.Fatal("fingerprint mismatch after local seed")
	}
	// The publisher served the suffix from its ring — no remote bootstrap.
	if p.Stats().SnapshotBootstraps != 0 || p.Stats().ChainBootstraps != 0 {
		t.Fatalf("unexpected remote bootstrap: %+v", p.Stats())
	}
}

// TestPromoteContinuesLSNSequence: a promoted replica is writable, its
// feed continues the primary's LSN sequence, and a second replica can
// follow the promoted store — failover chaining.
func TestPromoteContinuesLSNSequence(t *testing.T) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	churn(t, st, cell, 25)
	_, d := startPipePublisher(t, st)
	rep := NewReplica(testSchema(t), d)
	rep.Start()
	waitConverged(t, rep, st, 5*time.Second)
	was := st.FeedLSN()

	promoted := rep.Promote()
	if got := promoted.FeedLSN(); got != was {
		t.Fatalf("promoted feed at %d, want %d", got, was)
	}
	if err := promoted.Set(cell, "rev", oms.I(999)); err != nil {
		t.Fatalf("promoted store not writable: %v", err)
	}
	if got := promoted.FeedLSN(); got != was+1 {
		t.Fatalf("post-promotion commit got LSN %d, want %d", got, was+1)
	}

	// Chain: a fresh replica follows the promoted store.
	_, d2 := startPipePublisher(t, promoted)
	rep2 := NewReplica(testSchema(t), d2)
	rep2.Start()
	defer rep2.Close()
	waitConverged(t, rep2, promoted, 5*time.Second)
	if got, want := fingerprint(t, rep2.Store()), fingerprint(t, promoted); got != want {
		t.Fatal("chained replica diverged from promoted primary")
	}
}

// faultConn wraps a Conn, corrupting or gapping selected publisher
// frames to probe the replica's robustness paths.
type faultConn struct {
	Conn
	mutate func(Frame) (Frame, bool) // false: drop the frame
}

func (f *faultConn) Recv() (Frame, error) {
	for {
		fr, err := f.Conn.Recv()
		if err != nil {
			return fr, err
		}
		if out, ok := f.mutate(fr); ok {
			return out, nil
		}
	}
}

// faultDialer injects a per-connection mutator around a real dialer.
type faultDialer struct {
	d      Dialer
	mutate func(Frame) (Frame, bool)
}

func (fd *faultDialer) Dial() (Conn, error) {
	c, err := fd.d.Dial()
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, mutate: fd.mutate}, nil
}

// TestReplicaStreamRobustness: corrupt payloads and gapped streams never
// apply partially — the replica resynchronizes and still converges, and
// a detected gap is counted.
func TestReplicaStreamRobustness(t *testing.T) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	_, d := startPipePublisher(t, st)

	var corrupted, gapped atomic.Int64
	fd := &faultDialer{d: d, mutate: func(f Frame) (Frame, bool) {
		// Only target frames carrying records; the empty position frame
		// at session start is not interesting to corrupt or drop.
		if f.Type != FrameChanges || len(f.Payload) <= len("[]") {
			return f, true
		}
		// First changes frame: corrupt bytes. Second: drop it entirely,
		// so the next one arrives as a gap.
		if corrupted.CompareAndSwap(0, 1) {
			return Frame{Type: FrameChanges, LSN: f.LSN, Payload: []byte("{corrupt")}, true
		}
		if gapped.CompareAndSwap(0, 1) {
			return Frame{}, false
		}
		return f, true
	}}
	rep := NewReplica(testSchema(t), fd, WithReconnectBackoff(time.Millisecond))
	rep.Start()
	defer rep.Close()

	// Keep traffic flowing while the faults hit: the corrupted frame ends
	// one session, the dropped frame surfaces as a gap on the next.
	for i := 0; i < 30; i++ {
		if err := st.Set(cell, "rev", oms.I(int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	waitConverged(t, rep, st, 10*time.Second)
	if got, want := fingerprint(t, rep.Store()), fingerprint(t, st); got != want {
		t.Fatal("fingerprint mismatch after stream faults")
	}
	if corrupted.Load() == 0 || gapped.Load() == 0 {
		t.Fatalf("faults not exercised: corrupted=%d gapped=%d", corrupted.Load(), gapped.Load())
	}
	if rep.Stats().Gaps == 0 {
		t.Fatal("gap went undetected")
	}
}

// --- the convergence stress test (the stress-repl CI gate) ------------

// runConvergenceStress is the acceptance scenario: a primary mutating
// under concurrent load while one replica follows from the start, a
// second bootstraps mid-stream from a snapshot (the primary's feed has
// already evicted its prefix), and the transport is killed twice
// mid-run. After the primary quiesces, every replica must reach the
// final LSN and fingerprint-match the primary, and WaitFor barriers must
// observe the writes they cover.
func runConvergenceStress(t *testing.T, mkTransport func(t *testing.T, p *Publisher) Dialer) {
	schema := testSchema(t)
	st := oms.NewStore(schema)
	cell, err := st.Create("Cell", map[string]oms.Value{"name": oms.S("seed")})
	if err != nil {
		t.Fatal(err)
	}
	// Push the feed past its retention window up front, so every session
	// resuming from 0 exercises the snapshot bootstrap deterministically.
	churn(t, st, cell, 34_000)

	p := NewPublisher(st)
	defer p.Close()
	d := mkTransport(t, p)

	newRep := func() *Replica {
		r := NewReplica(testSchema(t), d, WithReconnectBackoff(time.Millisecond))
		r.Start()
		return r
	}
	repA := newRep()
	defer repA.Close()

	const (
		designers   = 4
		opsPer      = 3000
		killAtOp    = 4000 // total ops across designers
		joinAtOp    = 2000
		secondKill  = 8000
		totalBudget = designers * opsPer
	)
	var (
		opCount atomic.Int64
		repB    *Replica
		ctl     sync.Once
		kill1   sync.Once
		kill2   sync.Once
	)
	var wg sync.WaitGroup
	for g := 0; g < designers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			var mine []oms.OID
			for i := 0; i < opsPer; i++ {
				n := opCount.Add(1)
				if n == joinAtOp {
					ctl.Do(func() { repB = newRep() })
				}
				if n == killAtOp {
					kill1.Do(p.DisconnectAll)
				}
				if n == secondKill {
					kill2.Do(p.DisconnectAll)
				}
				switch r := rng.Intn(100); {
				case r < 25:
					oid, err := st.Create("Cell", map[string]oms.Value{
						"name": oms.S(fmt.Sprintf("c%d-%d", g, i)),
					})
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, oid)
				case r < 60:
					if len(mine) > 0 {
						oid := mine[rng.Intn(len(mine))]
						_ = st.Set(oid, "rev", oms.I(int64(i)))
					}
				case r < 70:
					if len(mine) > 0 {
						oid := mine[rng.Intn(len(mine))]
						_ = st.Set(oid, "data", oms.Bytes([]byte(fmt.Sprintf("blob-%d-%d", g, i))))
					}
				case r < 85:
					// A whole-group batch: version create + link.
					if len(mine) > 0 {
						b := oms.NewBatch()
						v := b.CreateOwned("Version", map[string]oms.Value{"num": oms.I(int64(i))})
						b.Link("hasVersion", mine[rng.Intn(len(mine))], v)
						if _, err := st.Apply(b); err != nil {
							t.Error(err)
							return
						}
					}
				default:
					if len(mine) > 1 {
						idx := rng.Intn(len(mine))
						_ = st.Delete(mine[idx])
						mine = append(mine[:idx], mine[idx+1:]...)
					}
				}
			}
		}(g)
	}
	// Read-your-writes probes against replica A while the storm runs.
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for i := 0; i < 20; i++ {
			if err := st.Set(cell, "rev", oms.I(int64(1000+i))); err != nil {
				t.Error(err)
				return
			}
			lsn := st.FeedLSN()
			if err := repA.WaitFor(lsn, 60*time.Second); err != nil {
				t.Errorf("probe %d: %v", i, err)
				return
			}
			// The barrier covers the write: the replica's value must be
			// at least as new as ours (later writes may already be in).
			if got := repA.Store().GetInt(cell, "rev"); got < int64(1000+i) {
				t.Errorf("probe %d: read %d after WaitFor(%d)", i, got, lsn)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-probeDone
	if t.Failed() {
		return
	}
	if int(opCount.Load()) != totalBudget {
		t.Fatalf("ran %d ops, want %d", opCount.Load(), totalBudget)
	}

	final := st.FeedLSN()
	want := fingerprint(t, st)
	for i, rep := range []*Replica{repA, repB} {
		if rep == nil {
			t.Fatal("mid-stream replica never started")
		}
		if err := rep.WaitFor(final, 60*time.Second); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if got := fingerprint(t, rep.Store()); got != want {
			t.Fatalf("replica %d fingerprint diverged from primary", i)
		}
	}
	if repA.Stats().Bootstraps == 0 {
		t.Fatal("replica A never snapshot-bootstrapped (premise broken)")
	}
	defer repB.Close()
}

func TestReplicationConvergenceUnderLoad(t *testing.T) {
	runConvergenceStress(t, func(t *testing.T, p *Publisher) Dialer {
		ln, d := Pipe()
		go func() { _ = p.Serve(ln) }()
		return d
	})
}

func TestReplicationConvergenceUnderLoadTCP(t *testing.T) {
	runConvergenceStress(t, func(t *testing.T, p *Publisher) Dialer {
		ln, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = p.Serve(ln) }()
		return &TCPDialer{Addr: ln.Addr()}
	})
}
