package repl

import (
	"errors"
	"sync"

	"repro/internal/obs"
	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/oms/blobstore"
)

// Publisher wraps a primary oms.Store and serves its change feed to
// follower sessions. One Publisher serves any number of listeners and
// sessions concurrently; sessions are independent — a slow replica can
// only lose its own subscription (and reconnect), never stall the
// primary's writers or its siblings.
type Publisher struct {
	st   *oms.Store
	seed backend.Backend // optional: manifest-chain bootstrap source
	buf  int             // per-session Watch channel depth

	mu        sync.Mutex
	closed    bool
	listeners map[Listener]struct{}
	conns     map[Conn]struct{}
	wg        sync.WaitGroup

	statSessions    obs.Counter
	statSnapshots   obs.Counter
	statChainBoots  obs.Counter
	statFrames      obs.Counter
	statBytes       obs.Counter
	statCloseErrors obs.Counter
}

// RegisterMetrics exposes the publisher's counters in reg; they are the
// same cells Stats() reads, so both views always agree.
func (p *Publisher) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("repl_pub_sessions_total", &p.statSessions)
	reg.RegisterCounter("repl_pub_snapshot_bootstraps_total", &p.statSnapshots)
	reg.RegisterCounter("repl_pub_chain_bootstraps_total", &p.statChainBoots)
	reg.RegisterCounter("repl_pub_frames_out_total", &p.statFrames)
	reg.RegisterCounter("repl_pub_bytes_out_total", &p.statBytes)
	reg.RegisterCounter("repl_pub_close_errors_total", &p.statCloseErrors)
}

// closeConn tears a connection or listener down. Teardown failures
// cannot be returned (the session is already gone) but they must not
// vanish either — a transport that fails to close is a descriptor leak
// in the making, so the failure is counted and surfaced in Stats.
func (p *Publisher) closeConn(c interface{ Close() error }) {
	if err := c.Close(); err != nil {
		p.statCloseErrors.Inc()
	}
}

// PublisherStats is a point-in-time counter snapshot.
type PublisherStats struct {
	// Sessions is the number of follower sessions ever accepted.
	Sessions int64
	// SnapshotBootstraps counts sessions bootstrapped with a fresh
	// consistent-cut snapshot of the live store.
	SnapshotBootstraps int64
	// ChainBootstraps counts sessions bootstrapped by shipping the
	// persistence layer's committed base + delta chain instead.
	ChainBootstraps int64
	// FramesSent / BytesSent count streamed frames and payload bytes.
	FramesSent int64
	BytesSent  int64
	// CloseErrors counts connection/listener teardowns that themselves
	// failed — otherwise-invisible descriptor-leak warnings.
	CloseErrors int64
}

// PublisherOption configures NewPublisher.
type PublisherOption func(*Publisher)

// WithSeedBackend lets the publisher bootstrap followers by shipping the
// base + delta chain already committed to b (the backend the primary's
// Framework.SaveTo targets) instead of cutting and encoding a fresh
// snapshot — the manifest commit stream reused as the bootstrap path.
// The chain is only used while the feed still retains the manifest's
// FeedLSN; otherwise the publisher falls back to a live snapshot.
func WithSeedBackend(b backend.Backend) PublisherOption {
	return func(p *Publisher) { p.seed = b }
}

// WithSessionBuffer sets the per-session Watch channel depth (default
// 256 groups). Deeper buffers absorb longer consumer stalls before a
// session lags out of the feed ring.
func WithSessionBuffer(n int) PublisherOption {
	return func(p *Publisher) { p.buf = n }
}

// NewPublisher returns a publisher for the primary store. Call Serve
// with one or more listeners, then Close to stop everything.
func NewPublisher(st *oms.Store, opts ...PublisherOption) *Publisher {
	p := &Publisher{
		st:        st,
		buf:       256,
		listeners: map[Listener]struct{}{},
		conns:     map[Conn]struct{}{},
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Serve accepts follower sessions on ln until the listener or the
// publisher is closed. It blocks; run it on its own goroutine when
// serving multiple listeners.
func (p *Publisher) Serve(ln Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.listeners[ln] = struct{}{}
	p.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			delete(p.listeners, ln)
			p.mu.Unlock()
			if closed || errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			p.closeConn(c)
			return nil
		}
		p.conns[c] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		p.statSessions.Inc()
		go p.session(c)
	}
}

// DisconnectAll drops every live session (replicas reconnect and resume
// from their applied LSN). Listeners stay open — the operational lever
// for a rolling reconnect, and the stress tests' transport kill.
func (p *Publisher) DisconnectAll() {
	p.mu.Lock()
	conns := make([]Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		p.closeConn(c)
	}
}

// Close stops every listener and session and waits for them.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	lns := make([]Listener, 0, len(p.listeners))
	for ln := range p.listeners {
		lns = append(lns, ln)
	}
	conns := make([]Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, ln := range lns {
		p.closeConn(ln)
	}
	for _, c := range conns {
		p.closeConn(c)
	}
	p.wg.Wait()
}

// Stats returns cumulative publisher counters.
func (p *Publisher) Stats() PublisherStats {
	return PublisherStats{
		Sessions:           p.statSessions.Load(),
		SnapshotBootstraps: p.statSnapshots.Load(),
		ChainBootstraps:    p.statChainBoots.Load(),
		FramesSent:         p.statFrames.Load(),
		BytesSent:          p.statBytes.Load(),
		CloseErrors:        p.statCloseErrors.Load(),
	}
}

// session runs one follower connection: hello → (bootstrap frames) →
// live stream until either side drops.
func (p *Publisher) session(c Conn) {
	defer func() {
		p.closeConn(c)
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
		p.wg.Done()
	}()
	hello, err := c.Recv()
	if err != nil || hello.Type != FrameHello {
		return
	}
	needSnap := len(hello.Payload) > 0 && hello.Payload[0]&helloNeedSnapshot != 0
	sub, bootstrap, err := p.attach(hello.LSN, needSnap)
	if err != nil {
		return
	}
	defer sub.Close()
	// Watch the connection for peer departure so the stream loop (which
	// may be parked in sub.C() with nothing to send) shuts down promptly.
	// The same goroutine serves blob-fetch requests: the change feed
	// carries only ~40-byte refs, so followers pull blob bytes on demand,
	// and serving from here keeps fetches off the stream loop's back.
	go func() {
		for {
			f, err := c.Recv()
			if err != nil {
				sub.Close()
				return
			}
			if f.Type == FrameBlobFetch {
				if !p.serveBlob(c, f) {
					sub.Close()
					return
				}
			}
		}
	}()
	for _, f := range bootstrap {
		if !p.send(c, f) {
			return
		}
	}
	// Position frame: an empty changes payload carrying the committed
	// watermark, so the follower knows its lag (and that it is converged)
	// immediately instead of only after the next commit.
	if pos, err := oms.EncodeChanges(nil); err == nil {
		if !p.send(c, Frame{Type: FrameChanges, LSN: p.st.FeedLSN(), Payload: pos}) {
			return
		}
	}
	for group := range sub.C() {
		payload, err := oms.EncodeChanges(group)
		if err != nil {
			return
		}
		if !p.send(c, Frame{Type: FrameChanges, LSN: p.st.FeedLSN(), Payload: payload}) {
			return
		}
	}
	// sub closed: the session lagged out of the feed ring (the replica
	// reconnects and re-bootstraps), or the publisher/conn is closing.
}

// serveBlob answers one FrameBlobFetch: look the ref up in the primary
// store's blob store and reply FrameBlob with ref||status||bytes. An
// explicit blobMissing status (rather than an empty bytes section) tells
// the replica not-found without making a legitimate zero-length blob
// unfetchable. Returns false only on a send failure; a miss or a
// malformed request is the requester's problem, not grounds to kill the
// session. Safe concurrently with the stream loop: both transports
// serialize Send internally.
func (p *Publisher) serveBlob(c Conn, req Frame) bool {
	ref, err := blobstore.DecodeRef(req.Payload)
	if err != nil {
		return true
	}
	resp := Frame{Type: FrameBlob, Payload: append(blobstore.EncodeRef(ref), blobMissing)}
	if bs := p.st.Blobs(); bs != nil {
		if data, err := bs.Get(ref); err == nil {
			resp.Payload[blobstore.EncodedRefSize] = blobFound
			resp.Payload = append(resp.Payload, data...)
		}
	}
	return p.send(c, resp)
}

func (p *Publisher) send(c Conn, f Frame) bool {
	if err := c.Send(f); err != nil {
		return false
	}
	p.statFrames.Inc()
	p.statBytes.Add(int64(len(f.Payload)))
	return true
}

// attach picks a session's start strategy: resume straight from the feed
// ring when it still retains the follower's position, else bootstrap —
// by manifest chain when available, else by live snapshot — and returns
// the live subscription plus the bootstrap frames to send first.
func (p *Publisher) attach(resume uint64, needSnap bool) (*oms.Subscription, []Frame, error) {
	if !needSnap && resume <= p.st.FeedLSN() {
		if sub, err := p.st.Watch(resume, p.buf); err == nil {
			return sub, nil, nil
		}
	}
	if sub, frames, ok := p.chainBootstrap(); ok {
		p.statChainBoots.Inc()
		return sub, frames, nil
	}
	// Live snapshot. Between the cut and the Watch the ring would have to
	// evict the snapshot's LSN — ~32k commits — for the Watch to fail;
	// retry the pair a few times rather than treating that as fatal.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		snap := p.st.Snapshot()
		data, err := snap.EncodeJSON()
		if err != nil {
			return nil, nil, err
		}
		sub, err := p.st.Watch(snap.LSN(), p.buf)
		if err != nil {
			lastErr = err
			continue
		}
		p.statSnapshots.Inc()
		return sub, []Frame{{Type: FrameSnapshot, LSN: snap.LSN(), Payload: data}}, nil
	}
	return nil, nil, lastErr
}

// chainBootstrap builds bootstrap frames from the seed backend's commit
// manifest: the base snapshot payload plus each delta payload, exactly
// as the persistence layer wrote them. Usable only while the feed still
// retains the manifest's FeedLSN (the chain must hand over to the live
// stream without a gap); any missing or corrupt payload disqualifies the
// chain and the caller falls back to a live snapshot.
func (p *Publisher) chainBootstrap() (*oms.Subscription, []Frame, bool) {
	if p.seed == nil {
		return nil, nil, false
	}
	m, err := backend.LoadManifest(p.seed)
	if err != nil {
		return nil, nil, false
	}
	sub, err := p.st.Watch(m.FeedLSN, p.buf)
	if err != nil {
		return nil, nil, false
	}
	base, err := p.seed.Get(m.OMS)
	if err != nil || backend.SHA256Hex(base) != m.OMSSum {
		sub.Close()
		return nil, nil, false
	}
	frames := []Frame{{Type: FrameSnapshot, LSN: m.BaseLSN, Payload: base}}
	for _, d := range m.Deltas {
		payload, err := p.seed.Get(d.Name)
		if err != nil || backend.SHA256Hex(payload) != d.Sum {
			sub.Close()
			return nil, nil, false
		}
		frames = append(frames, Frame{Type: FrameChanges, LSN: m.FeedLSN, Payload: payload})
	}
	return sub, frames, true
}
