package repl

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"
	"time"

	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/oms/blobstore"
)

func openBackend(t *testing.T) *backend.File {
	t.Helper()
	be, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// blobWorld wires a primary with a CAS (spilling at 64 bytes) to a
// replica with its own empty CAS over a pipe transport.
func blobWorld(t *testing.T) (st *oms.Store, rep *Replica, cell oms.OID, data []byte) {
	t.Helper()
	st = oms.NewStore(testSchema(t))
	pbs, err := blobstore.New(openBackend(t))
	if err != nil {
		t.Fatal(err)
	}
	st.AttachBlobs(pbs, 64)
	cell, err = st.Create("Cell", map[string]oms.Value{"name": oms.S("alu")})
	if err != nil {
		t.Fatal(err)
	}
	data = bytes.Repeat([]byte("design-bytes "), 512)
	b := oms.NewBatch()
	b.CopyInBytes(cell, "data", data)
	if _, err := st.Apply(b); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Get(cell, "data")
	if err != nil || !ok || v.Kind != oms.KindBlobRef {
		t.Fatalf("primary did not spill: v=%v ok=%v err=%v", v, ok, err)
	}

	_, d := startPipePublisher(t, st)
	rbs, err := blobstore.New(openBackend(t))
	if err != nil {
		t.Fatal(err)
	}
	rep = NewReplica(testSchema(t), d, WithReconnectBackoff(time.Millisecond), WithBlobStore(rbs))
	rep.Start()
	t.Cleanup(rep.Close)
	waitConverged(t, rep, st, 5*time.Second)
	return st, rep, cell, data
}

// TestReplicaBlobFetch: the feed replicates only the ref; the first read
// on the follower pulls the bytes over a FrameBlobFetch round-trip and
// caches them, so the second read is local.
func TestReplicaBlobFetch(t *testing.T) {
	_, rep, cell, data := blobWorld(t)

	// The replicated attribute is a ref, not bytes.
	v, ok, err := rep.Store().Get(cell, "data")
	if err != nil || !ok {
		t.Fatalf("replica missing data attr: ok=%v err=%v", ok, err)
	}
	if v.Kind != oms.KindBlobRef {
		t.Fatalf("replica holds %s, want a blob ref", v.Kind)
	}
	ref, err := v.AsBlobRef()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Store().Blobs().Has(ref) {
		t.Fatal("replica holds the blob before any read — feed shipped bytes, not a ref")
	}

	// First read fetches and caches.
	got, err := rep.Store().BlobBytes(cell, "data")
	if err != nil {
		t.Fatalf("first read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("fetched blob differs: %d bytes vs %d", len(got), len(data))
	}
	if !rep.Store().Blobs().Has(ref) {
		t.Fatal("fetched blob was not cached locally")
	}
	if n := rep.Store().Blobs().Stats().FetchedBytes; n != int64(len(data)) {
		t.Fatalf("FetchedBytes = %d, want %d", n, len(data))
	}

	// Second read is served locally — the fetch counter must not move.
	if _, err := rep.Store().BlobBytes(cell, "data"); err != nil {
		t.Fatalf("second read: %v", err)
	}
	if n := rep.Store().Blobs().Stats().FetchedBytes; n != int64(len(data)) {
		t.Fatalf("second read re-fetched: FetchedBytes = %d", n)
	}
}

// TestReplicaBlobFetchMiss: asking for a digest the publisher does not
// hold fails cleanly (not-found travels back as a blobMissing status
// byte in the FrameBlob answer) and nothing gets cached.
func TestReplicaBlobFetchMiss(t *testing.T) {
	_, rep, _, _ := blobWorld(t)
	bogus := blobstore.Ref{Digest: sha256.Sum256([]byte("never stored")), Size: 12}
	if _, err := rep.Store().Blobs().Get(bogus); err == nil {
		t.Fatal("fetch of unknown blob succeeded")
	} else if !strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("miss error = %v, want publisher not-found", err)
	}
	if rep.Store().Blobs().Has(bogus) {
		t.Fatal("miss cached a blob")
	}
}

// TestReplicaBlobFetchEmpty: a legitimate zero-length blob round-trips;
// the status byte keeps it distinguishable from a not-found answer.
func TestReplicaBlobFetchEmpty(t *testing.T) {
	st, rep, _, _ := blobWorld(t)
	ref, err := st.Blobs().PutBytes(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Store().Blobs().Get(ref)
	if err != nil {
		t.Fatalf("empty blob fetch: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty blob came back with %d bytes", len(got))
	}
	if !rep.Store().Blobs().Has(ref) {
		t.Fatal("fetched empty blob was not cached")
	}
}

// TestFrameFitsMaxBlob pins the framing invariant: the payload bound
// must admit the largest legal FrameBlob answer (max-size blob behind
// its ref and status byte), or such a blob becomes unservable and the
// replica kills and redials the session forever.
func TestFrameFitsMaxBlob(t *testing.T) {
	if maxFramePayload < blobstore.MaxBlobSize+blobstore.EncodedRefSize+1 {
		t.Fatalf("maxFramePayload %d cannot carry a max-size FrameBlob (%d)",
			maxFramePayload, blobstore.MaxBlobSize+blobstore.EncodedRefSize+1)
	}
}

// TestReplicaBlobFetchConcurrent: many readers hitting the same cold ref
// coalesce on one waiter list; all get the verified bytes.
func TestReplicaBlobFetchConcurrent(t *testing.T) {
	_, rep, cell, data := blobWorld(t)
	const readers = 16
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func() {
			got, err := rep.Store().BlobBytes(cell, "data")
			if err == nil && !bytes.Equal(got, data) {
				err = errFetchMismatch
			}
			errs <- err
		}()
	}
	for i := 0; i < readers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errFetchMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "fetched bytes differ from checked-in data" }
