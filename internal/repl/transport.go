// Package repl is the primary→replica replication subsystem: it streams
// the OMS change feed (internal/oms/feed.go) from one writable primary
// store to any number of read-only follower stores on other goroutines,
// processes or machines.
//
// The moving parts:
//
//   - A Publisher wraps the primary store. Each follower session opens
//     with the follower's resume LSN; the publisher serves the session
//     straight from the feed ring when it still retains that position,
//     and otherwise bootstraps the follower — preferably by shipping the
//     already-encoded base + delta chain of the persistence layer's
//     commit manifest (backend.Manifest), falling back to a fresh
//     consistent-cut snapshot — then tails Store.Watch.
//
//   - A Replica dials the publisher, applies frames with
//     Store.ApplyReplicated in strict LSN order (a gap or a corrupt
//     frame never applies partially — the replica re-bootstraps), and
//     republishes them into its own feed at the primary's LSNs, so the
//     follower store is a full citizen: local Watch consumers work,
//     AppliedLSN == FeedLSN, and WaitFor gives read-your-writes
//     barriers. Promote detaches the follower into a writable primary.
//
//   - A Transport is the pair (Listener, Dialer) moving Frames between
//     the two. Two implementations ship: an in-process pipe for tests
//     and benchmarks, and TCP with reconnect + resume-from-LSN for real
//     deployment. Reconnect is the replica's job: every (re)connect is
//     an ordinary session whose hello carries the applied LSN, so a
//     killed transport costs at most a re-served suffix.
//
// Read-only query service on a follower is the jcf layer's business:
// jcf.NewReplicaView wraps a Replica's store in a Framework that rejects
// every mutation with jcf.ErrReadOnlyReplica.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/oms/blobstore"
)

// FrameType tags one replication frame.
type FrameType byte

// Frame types.
const (
	// FrameHello opens a session (replica → publisher). LSN carries the
	// replica's applied position — the publisher resumes after it — and
	// Payload is one flags byte.
	FrameHello FrameType = 1 + iota
	// FrameSnapshot carries a full base snapshot (a Store EncodeJSON
	// payload); LSN is the snapshot's change-feed position. The replica
	// replaces its whole store with it.
	FrameSnapshot
	// FrameChanges carries an oms.EncodeChanges payload of one or more
	// whole commit groups; LSN is the publisher's committed watermark at
	// send time (the replica's lag reference).
	FrameChanges
	// FrameBlobFetch asks the publisher for one content-addressed blob
	// (replica → publisher). Payload is a 40-byte blobstore.EncodeRef;
	// LSN is unused. Replicas send it lazily — the change feed carries
	// only refs, so a blob crosses the wire the first time a follower
	// actually reads it.
	FrameBlobFetch
	// FrameBlob answers a FrameBlobFetch (publisher → replica). Payload
	// is the echoed 40-byte ref, one status byte (blobFound/blobMissing),
	// and — when found — the blob bytes, so a legitimate zero-length blob
	// is distinguishable from a miss. LSN is unused. The replica verifies
	// the digest before accepting.
	FrameBlob
)

// FrameBlob status byte: does the publisher hold the requested blob?
const (
	blobMissing byte = 0
	blobFound   byte = 1
)

// helloNeedSnapshot asks the publisher for an unconditional bootstrap:
// the replica considers its store unusable (a frame failed mid-apply)
// and resuming from its LSN would replicate the damage.
const helloNeedSnapshot byte = 1 << 0

// Frame is one replication protocol message.
type Frame struct {
	Type    FrameType
	LSN     uint64
	Payload []byte
}

// Conn is one bidirectional frame connection. Send and Recv may be
// called from different goroutines; Close unblocks both sides.
type Conn interface {
	Send(f Frame) error
	Recv() (Frame, error)
	Close() error
}

// Listener accepts follower connections on the publisher side.
type Listener interface {
	Accept() (Conn, error)
	// Addr names the listening endpoint (for dialers and diagnostics).
	Addr() string
	Close() error
}

// Dialer opens connections from the replica side. The replica redials
// through it on every reconnect, so a Dialer must stay usable after a
// failed or closed connection.
type Dialer interface {
	Dial() (Conn, error)
}

// ErrClosed is returned by transport operations on a closed endpoint.
var ErrClosed = errors.New("repl: transport closed")

// maxFramePayload bounds a decoded frame's payload so a corrupt or
// hostile length prefix cannot force an arbitrary allocation. It is
// derived from the blob limit so the largest legal frame — a FrameBlob
// answer carrying a maximum-size blob behind its ref and status byte —
// always fits; a hardcoded bound equal to MaxBlobSize would make such
// blobs unservable (the send fails, the session dies, and the replica
// re-fetches in a reconnect loop forever).
const maxFramePayload = blobstore.MaxBlobSize + blobstore.EncodedRefSize + 1

// frameHeaderSize is the wire header: type byte, 8-byte LSN, 4-byte
// payload length, all big-endian.
const frameHeaderSize = 1 + 8 + 4

// writeFrame renders f onto a byte stream in the length-prefixed wire
// format shared by every stream transport.
func writeFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > maxFramePayload {
		return fmt.Errorf("repl: frame payload %d exceeds limit", len(f.Payload))
	}
	var hdr [frameHeaderSize]byte
	hdr[0] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[1:9], f.LSN)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// readFrame parses one frame off a byte stream. A truncated header or
// payload returns an error (io.ErrUnexpectedEOF for a short read mid-
// frame), never a partial frame.
func readFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f := Frame{Type: FrameType(hdr[0]), LSN: binary.BigEndian.Uint64(hdr[1:9])}
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > maxFramePayload {
		return Frame{}, fmt.Errorf("repl: frame payload length %d exceeds limit", n)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}
