// Package flow implements JCF design-flow management: flows are directed
// acyclic graphs of activities, defined in advance by the project manager,
// fixed thereafter, and *enforced* — "the user must follow the flow
// constraints" (section 2.1). Each activity names the tool that performs
// it, the view types it needs and the view types it creates; precedes
// edges prescribe the execution order. The hybrid framework turns each
// encapsulated FMCAD tool into one activity (section 2.4).
//
// An Enactment tracks the execution state of one flow instance (JCF
// attaches one to each cell version). Starting an activity whose
// predecessors have not all finished is rejected — the behaviour the
// section 3.5 experiment measures against plain FMCAD, which "does not
// support flow management capabilities" and lets designers invoke tools in
// any order.
package flow

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors reported by flow enforcement.
var (
	ErrOrder    = errors.New("flow: predecessors not finished")
	ErrState    = errors.New("flow: activity not in a startable state")
	ErrNotFound = errors.New("flow: unknown activity")
	ErrFrozen   = errors.New("flow: flow is frozen and cannot be modified")
)

// Activity is one step of a flow: a tool run consuming and producing view
// types.
type Activity struct {
	Name    string
	Tool    string   // tool resource that performs the activity
	Needs   []string // view types consumed
	Creates []string // view types produced
}

// Flow is a named DAG of activities. A flow under construction accepts
// AddActivity/AddPrecedes; Freeze validates it and makes it immutable,
// matching JCF's "flows are fixed and cannot be modified".
type Flow struct {
	Name string

	mu         sync.Mutex
	activities map[string]*Activity
	order      []string            // insertion order for stable listings
	precedes   map[string][]string // activity -> successors
	frozen     bool
}

// New returns an empty, unfrozen flow.
func New(name string) *Flow {
	return &Flow{
		Name:       name,
		activities: map[string]*Activity{},
		precedes:   map[string][]string{},
	}
}

// AddActivity registers an activity in an unfrozen flow.
func (f *Flow) AddActivity(a Activity) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.frozen {
		return ErrFrozen
	}
	if a.Name == "" {
		return fmt.Errorf("flow: empty activity name")
	}
	if _, dup := f.activities[a.Name]; dup {
		return fmt.Errorf("flow: duplicate activity %q", a.Name)
	}
	cp := a
	cp.Needs = append([]string(nil), a.Needs...)
	cp.Creates = append([]string(nil), a.Creates...)
	f.activities[a.Name] = &cp
	f.order = append(f.order, a.Name)
	return nil
}

// AddPrecedes declares that before must finish before after may start.
func (f *Flow) AddPrecedes(before, after string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.frozen {
		return ErrFrozen
	}
	if _, ok := f.activities[before]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, before)
	}
	if _, ok := f.activities[after]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, after)
	}
	if before == after {
		return fmt.Errorf("flow: %q cannot precede itself", before)
	}
	for _, s := range f.precedes[before] {
		if s == after {
			return nil // idempotent
		}
	}
	f.precedes[before] = append(f.precedes[before], after)
	return nil
}

// Freeze validates the flow (must be a DAG; every need must be satisfiable)
// and makes it immutable. A frozen flow is safe for concurrent use.
func (f *Flow) Freeze() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.frozen {
		return nil
	}
	if len(f.activities) == 0 {
		return fmt.Errorf("flow: %q has no activities", f.Name)
	}
	if _, err := f.topoLocked(); err != nil {
		return err
	}
	if err := f.checkDataDepsLocked(); err != nil {
		return err
	}
	f.frozen = true
	return nil
}

// Frozen reports whether the flow is frozen.
func (f *Flow) Frozen() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frozen
}

// Activities returns the activity names in insertion order.
func (f *Flow) Activities() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

// Activity returns a copy of the named activity.
func (f *Flow) Activity(name string) (Activity, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, ok := f.activities[name]
	if !ok {
		return Activity{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	cp := *a
	cp.Needs = append([]string(nil), a.Needs...)
	cp.Creates = append([]string(nil), a.Creates...)
	return cp, nil
}

// Predecessors returns the direct predecessors of an activity, sorted.
func (f *Flow) Predecessors(name string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for before, afters := range f.precedes {
		for _, a := range afters {
			if a == name {
				out = append(out, before)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Successors returns the direct successors of an activity, sorted.
func (f *Flow) Successors(name string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := append([]string(nil), f.precedes[name]...)
	sort.Strings(out)
	return out
}

// Topo returns a topological order of the activities.
func (f *Flow) Topo() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.topoLocked()
}

func (f *Flow) topoLocked() ([]string, error) {
	indeg := map[string]int{}
	for name := range f.activities {
		indeg[name] = 0
	}
	for _, afters := range f.precedes {
		for _, a := range afters {
			indeg[a]++
		}
	}
	// Start from insertion order for determinism.
	var queue []string
	for _, name := range f.order {
		if indeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		succs := append([]string(nil), f.precedes[n]...)
		sort.Strings(succs)
		for _, s := range succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(f.activities) {
		return nil, fmt.Errorf("flow: %q contains a cycle", f.Name)
	}
	return out, nil
}

// checkDataDepsLocked verifies every needed view type is either created by
// some (transitive) predecessor or is a primary input (created by nobody —
// assumed to come from the design entry itself).
func (f *Flow) checkDataDepsLocked() error {
	creators := map[string][]string{} // viewtype -> activities creating it
	for name, a := range f.activities {
		for _, vt := range a.Creates {
			creators[vt] = append(creators[vt], name)
		}
	}
	// Transitive predecessors.
	preds := map[string]map[string]bool{}
	topo, err := f.topoLocked()
	if err != nil {
		return err
	}
	direct := map[string][]string{}
	for before, afters := range f.precedes {
		for _, a := range afters {
			direct[a] = append(direct[a], before)
		}
	}
	for _, name := range topo {
		set := map[string]bool{}
		for _, p := range direct[name] {
			set[p] = true
			for pp := range preds[p] {
				set[pp] = true
			}
		}
		preds[name] = set
	}
	for name, a := range f.activities {
		for _, vt := range a.Needs {
			makers := creators[vt]
			if len(makers) == 0 {
				continue // primary input
			}
			ok := false
			for _, mk := range makers {
				if preds[name][mk] {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("flow: activity %q needs %q but no predecessor creates it", name, vt)
			}
		}
	}
	return nil
}

// --- enactment ---------------------------------------------------------

// State is the execution state of one activity in an enactment.
type State int

// Activity states.
const (
	NotRun State = iota
	Running
	Done
	Failed
)

// String returns the display name of the state.
func (s State) String() string {
	switch s {
	case NotRun:
		return "not-run"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Event is one entry in the enactment history.
type Event struct {
	Activity string
	From, To State
}

// Enactment is the running state of one flow instance.
type Enactment struct {
	flow *Flow

	mu      sync.Mutex
	states  map[string]State
	history []Event
	// rejected counts refused Start calls (out-of-order attempts); the
	// section 3.5 experiment reads it.
	rejected int
}

// NewEnactment starts tracking a frozen flow. Unfrozen flows are rejected:
// enactments of a flow still under construction would not be reproducible.
func NewEnactment(f *Flow) (*Enactment, error) {
	if !f.Frozen() {
		return nil, fmt.Errorf("flow: enactment requires a frozen flow")
	}
	states := map[string]State{}
	for _, a := range f.Activities() {
		states[a] = NotRun
	}
	return &Enactment{flow: f, states: states}, nil
}

// Flow returns the underlying flow.
func (e *Enactment) Flow() *Flow { return e.flow }

// State returns the state of an activity.
func (e *Enactment) State(name string) (State, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.states[name]
	if !ok {
		return NotRun, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return s, nil
}

// Startable returns the activities that may start now: NotRun or Failed
// (retry) with all predecessors Done. Sorted.
func (e *Enactment) Startable() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for name, s := range e.states {
		if s != NotRun && s != Failed {
			continue
		}
		if e.predsDoneLocked(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (e *Enactment) predsDoneLocked(name string) bool {
	for _, p := range e.flow.Predecessors(name) {
		if e.states[p] != Done {
			return false
		}
	}
	return true
}

// Start transitions an activity to Running. It fails with ErrOrder if a
// predecessor has not finished — the forced-flow behaviour — and with
// ErrState if the activity is already running. Done activities may start
// again: iterating a finished step is how designs are revised.
func (e *Enactment) Start(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.states[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if s == Running {
		e.rejected++
		return fmt.Errorf("%w: %q is %s", ErrState, name, s)
	}
	if !e.predsDoneLocked(name) {
		e.rejected++
		var missing []string
		for _, p := range e.flow.Predecessors(name) {
			if e.states[p] != Done {
				missing = append(missing, p)
			}
		}
		return fmt.Errorf("%w: %q waits for %s", ErrOrder, name, strings.Join(missing, ", "))
	}
	e.setLocked(name, Running)
	return nil
}

// Finish transitions a Running activity to Done (ok) or Failed.
func (e *Enactment) Finish(name string, ok bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, exists := e.states[name]
	if !exists {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if s != Running {
		return fmt.Errorf("%w: %q is %s, not running", ErrState, name, s)
	}
	if ok {
		e.setLocked(name, Done)
	} else {
		e.setLocked(name, Failed)
	}
	return nil
}

func (e *Enactment) setLocked(name string, to State) {
	from := e.states[name]
	e.states[name] = to
	e.history = append(e.history, Event{Activity: name, From: from, To: to})
}

// Complete reports whether every activity is Done.
func (e *Enactment) Complete() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.states {
		if s != Done {
			return false
		}
	}
	return true
}

// History returns a copy of the event log.
func (e *Enactment) History() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Event(nil), e.history...)
}

// Rejected returns the number of refused Start attempts.
func (e *Enactment) Rejected() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rejected
}
