package flow

import (
	"errors"
	"testing"
	"testing/quick"
)

// asicFlow is the paper's encapsulation flow: schematic entry, then
// simulation, then layout (three FMCAD tools as JCF activities).
func asicFlow(t *testing.T) *Flow {
	t.Helper()
	f := New("asic")
	for _, a := range []Activity{
		{Name: "schematic-entry", Tool: "fmcad-schematic", Creates: []string{"schematic"}},
		{Name: "simulate", Tool: "fmcad-dsim", Needs: []string{"schematic"}, Creates: []string{"waveform"}},
		{Name: "layout-entry", Tool: "fmcad-layout", Needs: []string{"schematic"}, Creates: []string{"layout"}},
	} {
		if err := f.AddActivity(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AddPrecedes("schematic-entry", "simulate"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPrecedes("schematic-entry", "layout-entry"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPrecedes("simulate", "layout-entry"); err != nil {
		t.Fatal(err)
	}
	return f
}

func frozen(t *testing.T) *Flow {
	t.Helper()
	f := asicFlow(t)
	if err := f.Freeze(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFlowConstruction(t *testing.T) {
	f := asicFlow(t)
	if got := f.Activities(); len(got) != 3 || got[0] != "schematic-entry" {
		t.Fatalf("Activities = %v", got)
	}
	a, err := f.Activity("simulate")
	if err != nil || a.Tool != "fmcad-dsim" || len(a.Needs) != 1 {
		t.Fatalf("Activity = %+v, %v", a, err)
	}
	if _, err := f.Activity("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown activity found")
	}
	if err := f.AddActivity(Activity{Name: "simulate"}); err == nil {
		t.Fatal("duplicate activity accepted")
	}
	if err := f.AddActivity(Activity{}); err == nil {
		t.Fatal("empty activity accepted")
	}
	if err := f.AddPrecedes("nope", "simulate"); !errors.Is(err, ErrNotFound) {
		t.Fatal("precedes from unknown")
	}
	if err := f.AddPrecedes("simulate", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("precedes to unknown")
	}
	if err := f.AddPrecedes("simulate", "simulate"); err == nil {
		t.Fatal("self-precedes accepted")
	}
	// Idempotent edge.
	if err := f.AddPrecedes("schematic-entry", "simulate"); err != nil {
		t.Fatal(err)
	}
	if got := f.Predecessors("layout-entry"); len(got) != 2 {
		t.Fatalf("Predecessors = %v", got)
	}
	if got := f.Successors("schematic-entry"); len(got) != 2 {
		t.Fatalf("Successors = %v", got)
	}
}

func TestFreezeMakesImmutable(t *testing.T) {
	f := frozen(t)
	if !f.Frozen() {
		t.Fatal("not frozen")
	}
	if err := f.AddActivity(Activity{Name: "x"}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddActivity after freeze: %v", err)
	}
	if err := f.AddPrecedes("simulate", "layout-entry"); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddPrecedes after freeze: %v", err)
	}
	// Double freeze is fine.
	if err := f.Freeze(); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeRejectsCycle(t *testing.T) {
	f := New("cyclic")
	for _, n := range []string{"a", "b", "c"} {
		if err := f.AddActivity(Activity{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	_ = f.AddPrecedes("a", "b")
	_ = f.AddPrecedes("b", "c")
	_ = f.AddPrecedes("c", "a")
	if err := f.Freeze(); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := f.Topo(); err == nil {
		t.Fatal("Topo of cyclic flow succeeded")
	}
}

func TestFreezeRejectsEmpty(t *testing.T) {
	if err := New("empty").Freeze(); err == nil {
		t.Fatal("empty flow froze")
	}
}

func TestFreezeRejectsBadDataDeps(t *testing.T) {
	f := New("bad")
	if err := f.AddActivity(Activity{Name: "sim", Needs: []string{"netlist"}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddActivity(Activity{Name: "gen", Creates: []string{"netlist"}}); err != nil {
		t.Fatal(err)
	}
	// gen creates netlist but does not precede sim.
	if err := f.Freeze(); err == nil {
		t.Fatal("unsatisfied data dependency accepted")
	}
	// With the edge it freezes.
	f2 := New("good")
	_ = f2.AddActivity(Activity{Name: "gen", Creates: []string{"netlist"}})
	_ = f2.AddActivity(Activity{Name: "sim", Needs: []string{"netlist"}})
	_ = f2.AddPrecedes("gen", "sim")
	if err := f2.Freeze(); err != nil {
		t.Fatal(err)
	}
	// A need nobody creates is a primary input and is fine.
	f3 := New("primary")
	_ = f3.AddActivity(Activity{Name: "sim", Needs: []string{"stimulus"}})
	if err := f3.Freeze(); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrder(t *testing.T) {
	f := frozen(t)
	topo, err := f.Topo()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range topo {
		pos[n] = i
	}
	if !(pos["schematic-entry"] < pos["simulate"] && pos["simulate"] < pos["layout-entry"]) {
		t.Fatalf("topo = %v", topo)
	}
}

func TestEnactmentHappyPath(t *testing.T) {
	f := frozen(t)
	e, err := NewEnactment(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Startable(); len(got) != 1 || got[0] != "schematic-entry" {
		t.Fatalf("Startable = %v", got)
	}
	if err := e.Start("schematic-entry"); err != nil {
		t.Fatal(err)
	}
	if s, _ := e.State("schematic-entry"); s != Running {
		t.Fatalf("state = %s", s)
	}
	if err := e.Finish("schematic-entry", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("simulate"); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish("simulate", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("layout-entry"); err != nil {
		t.Fatal(err)
	}
	if e.Complete() {
		t.Fatal("complete before last finish")
	}
	if err := e.Finish("layout-entry", true); err != nil {
		t.Fatal(err)
	}
	if !e.Complete() {
		t.Fatal("not complete")
	}
	if len(e.History()) != 6 {
		t.Fatalf("history = %v", e.History())
	}
	if e.Rejected() != 0 {
		t.Fatalf("Rejected = %d", e.Rejected())
	}
}

func TestEnactmentEnforcesOrder(t *testing.T) {
	f := frozen(t)
	e, err := NewEnactment(f)
	if err != nil {
		t.Fatal(err)
	}
	// The forced-flow property of section 3.5: layout before schematic is
	// rejected.
	if err := e.Start("layout-entry"); !errors.Is(err, ErrOrder) {
		t.Fatalf("out-of-order start: %v", err)
	}
	if err := e.Start("simulate"); !errors.Is(err, ErrOrder) {
		t.Fatalf("out-of-order start: %v", err)
	}
	if e.Rejected() != 2 {
		t.Fatalf("Rejected = %d", e.Rejected())
	}
	// Failure allows retry but does not unblock successors.
	if err := e.Start("schematic-entry"); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish("schematic-entry", false); err != nil {
		t.Fatal(err)
	}
	if s, _ := e.State("schematic-entry"); s != Failed {
		t.Fatalf("state = %s", s)
	}
	if err := e.Start("simulate"); !errors.Is(err, ErrOrder) {
		t.Fatal("successor of failed activity startable")
	}
	if err := e.Start("schematic-entry"); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if err := e.Finish("schematic-entry", true); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("simulate"); err != nil {
		t.Fatal(err)
	}
}

func TestEnactmentStateErrors(t *testing.T) {
	f := frozen(t)
	e, _ := NewEnactment(f)
	if err := e.Start("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown start")
	}
	if err := e.Finish("nope", true); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown finish")
	}
	if err := e.Finish("simulate", true); !errors.Is(err, ErrState) {
		t.Fatal("finish of not-running")
	}
	if _, err := e.State("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown state")
	}
	_ = e.Start("schematic-entry")
	if err := e.Start("schematic-entry"); !errors.Is(err, ErrState) {
		t.Fatal("double start")
	}
	_ = e.Finish("schematic-entry", true)
	// Re-running a done activity is a design iteration and is allowed.
	if err := e.Start("schematic-entry"); err != nil {
		t.Fatalf("restart of done: %v", err)
	}
}

func TestEnactmentRequiresFrozen(t *testing.T) {
	if _, err := NewEnactment(asicFlow(t)); err == nil {
		t.Fatal("enactment of unfrozen flow accepted")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{NotRun: "not-run", Running: "running", Done: "done", Failed: "failed"} {
		if s.String() != want {
			t.Errorf("%d.String() = %s", s, s.String())
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state empty")
	}
}

// Property: for a random linear chain, activities can only be executed in
// exactly the chain order.
func TestPropertyLinearChainOrder(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%10) + 2
		fl := New("chain")
		names := make([]string, count)
		for i := 0; i < count; i++ {
			names[i] = string(rune('a' + i))
			if err := fl.AddActivity(Activity{Name: names[i]}); err != nil {
				return false
			}
		}
		for i := 1; i < count; i++ {
			if err := fl.AddPrecedes(names[i-1], names[i]); err != nil {
				return false
			}
		}
		if err := fl.Freeze(); err != nil {
			return false
		}
		e, err := NewEnactment(fl)
		if err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			// Everything after position i must be blocked.
			for j := i + 1; j < count; j++ {
				if err := e.Start(names[j]); !errors.Is(err, ErrOrder) {
					return false
				}
			}
			if err := e.Start(names[i]); err != nil {
				return false
			}
			if err := e.Finish(names[i], true); err != nil {
				return false
			}
		}
		return e.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Startable never returns an activity with unfinished
// predecessors.
func TestPropertyStartableSound(t *testing.T) {
	fl := frozen(t)
	e, err := NewEnactment(fl)
	if err != nil {
		t.Fatal(err)
	}
	check := func() bool {
		for _, name := range e.Startable() {
			for _, p := range fl.Predecessors(name) {
				if s, _ := e.State(p); s != Done {
					return false
				}
			}
		}
		return true
	}
	steps := []func() error{
		func() error { return e.Start("schematic-entry") },
		func() error { return e.Finish("schematic-entry", true) },
		func() error { return e.Start("simulate") },
		func() error { return e.Finish("simulate", false) },
		func() error { return e.Start("simulate") },
		func() error { return e.Finish("simulate", true) },
		func() error { return e.Start("layout-entry") },
		func() error { return e.Finish("layout-entry", true) },
	}
	for i, step := range steps {
		if !check() {
			t.Fatalf("Startable unsound before step %d", i)
		}
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !check() {
		t.Fatal("Startable unsound at end")
	}
}
