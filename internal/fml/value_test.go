package fml

import "testing"

func TestEqualAllTypes(t *testing.T) {
	fn := &Func{Name: "f"}
	fn2 := &Func{Name: "f"}
	bi := &Builtin{Name: "b"}
	bi2 := &Builtin{Name: "b"}
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{Nil{}, Nil{}, true},
		{Nil{}, Bool{}, false},
		{Bool{}, Bool{}, true},
		{Bool{}, Int(1), false},
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(3), Float(3), true},
		{Int(3), Float(3.5), false},
		{Float(2.5), Float(2.5), true},
		{Float(2.5), Int(2), false},
		{Float(2), Int(2), true},
		{Float(1), Str("1"), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Str("a"), Symbol("a"), false},
		{Symbol("s"), Symbol("s"), true},
		{Symbol("s"), Symbol("t"), false},
		{List{Int(1)}, List{Int(1)}, true},
		{List{Int(1)}, List{Int(2)}, false},
		{List{Int(1)}, List{Int(1), Int(2)}, false},
		{List{}, Nil{}, false}, // empty list is falsy but not Equal to nil
		{fn, fn, true},
		{fn, fn2, false}, // identity, not structure
		{bi, bi, true},
		{bi, bi2, false},
		{fn, bi, false},
	}
	for i, c := range cases {
		if got := Equal(c.a, c.b); got != c.eq {
			t.Errorf("case %d: Equal(%s, %s) = %t, want %t", i, Sprint(c.a), Sprint(c.b), got, c.eq)
		}
	}
}

func TestSprintAllTypes(t *testing.T) {
	for v, want := range map[Value]string{
		Nil{}:         "nil",
		Bool{}:        "t",
		Int(-7):       "-7",
		Float(2.5):    "2.5",
		Str("hi"):     `"hi"`,
		Symbol("sym"): "sym",
	} {
		if got := Sprint(v); got != want {
			t.Errorf("Sprint(%v) = %q, want %q", v, got, want)
		}
	}
	if got := Sprint(List{Int(1), Str("a")}); got != `(1 "a")` {
		t.Errorf("list Sprint = %q", got)
	}
	if got := Sprint(&Builtin{Name: "car"}); got != "#<builtin car>" {
		t.Errorf("builtin Sprint = %q", got)
	}
}

func TestErrorType(t *testing.T) {
	e := &Error{Msg: "boom", Form: Int(1)}
	if e.Error() != "fml: boom in 1" {
		t.Fatalf("Error = %q", e.Error())
	}
	e2 := &Error{Msg: "boom"}
	if e2.Error() != "fml: boom" {
		t.Fatalf("Error = %q", e2.Error())
	}
}

func TestTruthyTable(t *testing.T) {
	for v, want := range map[Value]bool{
		Nil{}:      false,
		Bool{}:     true,
		Int(0):     true, // 0 is truthy, only nil/() are false
		Float(0):   true,
		Str(""):    true,
		Symbol(""): true,
	} {
		if got := Truthy(v); got != want {
			t.Errorf("Truthy(%s) = %t, want %t", Sprint(v), got, want)
		}
	}
	if Truthy(List{}) {
		t.Error("empty list truthy")
	}
	if !Truthy(List{Int(1)}) {
		t.Error("non-empty list falsy")
	}
	if Truthy(nil) {
		t.Error("go-nil truthy")
	}
}

func TestUnlessAndQuoteEdges(t *testing.T) {
	in := NewInterp()
	if _, err := in.Run("(unless)"); err == nil {
		t.Error("(unless) accepted")
	}
	if _, err := in.Run("(quote)"); err == nil {
		t.Error("(quote) accepted")
	}
	if _, err := in.Run("(quote a b)"); err == nil {
		t.Error("(quote a b) accepted")
	}
	if _, err := in.Run("(lambda)"); err == nil {
		t.Error("(lambda) accepted")
	}
	if _, err := in.Run("(lambda 5 1)"); err == nil {
		t.Error("bad lambda params accepted")
	}
	// lambda with nil parameter list is legal.
	v, err := in.Run("((lambda nil 42))")
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := v.(Int); !ok || i != 42 {
		t.Fatalf("nil-params lambda = %s", Sprint(v))
	}
	// unless with multiple body forms returns the last.
	v, err = in.Run("(unless nil 1 2 3)")
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := v.(Int); !ok || i != 3 {
		t.Fatalf("unless = %s", Sprint(v))
	}
}
