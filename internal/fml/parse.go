package fml

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// token kinds produced by the lexer.
type tokKind int

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokQuote
	tokAtom   // symbol or number, decided by the parser
	tokString // quoted string literal, already unescaped
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
	}
	return c
}

// next returns the next token, skipping whitespace and ; comments.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ';':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

scan:
	line := lx.line
	switch c := lx.peek(); c {
	case '(':
		lx.advance()
		return token{kind: tokLParen, line: line}, nil
	case ')':
		lx.advance()
		return token{kind: tokRParen, line: line}, nil
	case '\'':
		lx.advance()
		return token{kind: tokQuote, line: line}, nil
	case '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, fmt.Errorf("fml: line %d: unterminated string", line)
			}
			ch := lx.advance()
			if ch == '"' {
				return token{kind: tokString, text: b.String(), line: line}, nil
			}
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return token{}, fmt.Errorf("fml: line %d: unterminated escape", line)
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(esc)
				default:
					return token{}, fmt.Errorf("fml: line %d: bad escape \\%c", line, esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
	default:
		var b strings.Builder
		for lx.pos < len(lx.src) {
			ch := lx.peek()
			if ch == '(' || ch == ')' || ch == '\'' || ch == '"' || ch == ';' ||
				ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' {
				break
			}
			b.WriteByte(lx.advance())
		}
		if b.Len() == 0 {
			return token{}, fmt.Errorf("fml: line %d: unexpected character %q", line, c)
		}
		return token{kind: tokAtom, text: b.String(), line: line}, nil
	}
}

// Parse reads a whole program: a sequence of top-level forms.
func Parse(src string) ([]Value, error) {
	lx := newLexer(src)
	var forms []Value
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokEOF {
			return forms, nil
		}
		form, err := parseForm(lx, tok)
		if err != nil {
			return nil, err
		}
		forms = append(forms, form)
	}
}

// ParseOne parses exactly one form and errors on trailing input.
func ParseOne(src string) (Value, error) {
	forms, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(forms) != 1 {
		return nil, fmt.Errorf("fml: want exactly one form, got %d", len(forms))
	}
	return forms[0], nil
}

func parseForm(lx *lexer, tok token) (Value, error) {
	switch tok.kind {
	case tokLParen:
		var items List
		for {
			t, err := lx.next()
			if err != nil {
				return nil, err
			}
			switch t.kind {
			case tokRParen:
				return items, nil
			case tokEOF:
				return nil, fmt.Errorf("fml: line %d: unclosed list", tok.line)
			default:
				item, err := parseForm(lx, t)
				if err != nil {
					return nil, err
				}
				items = append(items, item)
			}
		}
	case tokRParen:
		return nil, fmt.Errorf("fml: line %d: unexpected )", tok.line)
	case tokQuote:
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokEOF {
			return nil, fmt.Errorf("fml: line %d: quote at end of input", tok.line)
		}
		inner, err := parseForm(lx, t)
		if err != nil {
			return nil, err
		}
		return List{Symbol("quote"), inner}, nil
	case tokString:
		return Str(tok.text), nil
	case tokAtom:
		return atomValue(tok.text), nil
	}
	return nil, fmt.Errorf("fml: line %d: unexpected token", tok.line)
}

// atomValue classifies an atom as number, t/nil or symbol.
func atomValue(text string) Value {
	switch text {
	case "nil":
		return Nil{}
	case "t":
		return Bool{}
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return Int(i)
	}
	// Only treat as float when it looks numeric (so symbols like `1+` or
	// `-` stay symbols unless fully parseable).
	if looksNumeric(text) {
		if f, err := strconv.ParseFloat(text, 64); err == nil {
			return Float(f)
		}
	}
	return Symbol(text)
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '+' || s[0] == '-' {
		i = 1
		if i == len(s) {
			return false
		}
	}
	return unicode.IsDigit(rune(s[i]))
}
