package fml

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// run evaluates src and fails the test on error.
func run(t *testing.T, src string) Value {
	t.Helper()
	in := NewInterp()
	v, err := in.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return v
}

// runErr evaluates src and fails unless it errors.
func runErr(t *testing.T, src string) error {
	t.Helper()
	in := NewInterp()
	_, err := in.Run(src)
	if err == nil {
		t.Fatalf("Run(%q) succeeded, want error", src)
	}
	return err
}

func wantInt(t *testing.T, src string, want int64) {
	t.Helper()
	v := run(t, src)
	i, ok := v.(Int)
	if !ok || int64(i) != want {
		t.Fatalf("Run(%q) = %s, want %d", src, Sprint(v), want)
	}
}

func wantStr(t *testing.T, src, want string) {
	t.Helper()
	v := run(t, src)
	s, ok := v.(Str)
	if !ok || string(s) != want {
		t.Fatalf("Run(%q) = %s, want %q", src, Sprint(v), want)
	}
}

func wantTruthy(t *testing.T, src string, want bool) {
	t.Helper()
	if got := Truthy(run(t, src)); got != want {
		t.Fatalf("Truthy(Run(%q)) = %t, want %t", src, got, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantInt(t, "(+ 1 2 3)", 6)
	wantInt(t, "(- 10 3 2)", 5)
	wantInt(t, "(- 5)", -5)
	wantInt(t, "(* 2 3 4)", 24)
	wantInt(t, "(/ 20 2 5)", 2)
	wantInt(t, "(mod 10 3)", 1)
	if f, ok := run(t, "(+ 1 0.5)").(Float); !ok || float64(f) != 1.5 {
		t.Fatal("float promotion broken")
	}
	if f, ok := run(t, "(- 1.5)").(Float); !ok || float64(f) != -1.5 {
		t.Fatal("unary float minus broken")
	}
	runErr(t, "(/ 1 0)")
	runErr(t, "(/ 1.0 0)")
	runErr(t, "(mod 1 0)")
	runErr(t, `(+ 1 "x")`)
	runErr(t, "(mod 1.5 2)")
}

func TestComparisons(t *testing.T) {
	wantTruthy(t, "(= 1 1)", true)
	wantTruthy(t, "(= 1 2)", false)
	wantTruthy(t, "(= 1 1.0)", true)
	wantTruthy(t, "(< 1 2)", true)
	wantTruthy(t, "(> 2 1)", true)
	wantTruthy(t, "(<= 2 2)", true)
	wantTruthy(t, "(>= 1 2)", false)
	wantTruthy(t, "(!= 1 2)", true)
	wantTruthy(t, `(< "a" "b")`, true)
	wantTruthy(t, `(equal '(1 2) '(1 2))`, true)
	wantTruthy(t, `(equal '(1 2) '(1 3))`, false)
	wantTruthy(t, "(not nil)", true)
	wantTruthy(t, "(not 1)", false)
	runErr(t, `(< 1 "a")`)
}

func TestSpecialForms(t *testing.T) {
	wantInt(t, "(if t 1 2)", 1)
	wantInt(t, "(if nil 1 2)", 2)
	wantTruthy(t, "(if nil 1)", false)
	wantInt(t, "(when t 1 2 3)", 3)
	wantTruthy(t, "(when nil 1)", false)
	wantInt(t, "(unless nil 4)", 4)
	wantInt(t, "(progn 1 2 3)", 3)
	wantInt(t, "(let ((x 2) (y 3)) (* x y))", 6)
	wantInt(t, "(let (x) (if x 1 2))", 2)
	wantInt(t, "(progn (setq n 0) (while (< n 5) (setq n (+ n 1))) n)", 5)
	wantInt(t, "(cond ((= 1 2) 10) ((= 1 1) 20) (t 30))", 20)
	wantInt(t, "(cond (nil 1) (t 2))", 2)
	wantTruthy(t, "(cond (nil 1))", false)
	wantInt(t, "(and 1 2 3)", 3)
	wantTruthy(t, "(and 1 nil 3)", false)
	wantInt(t, "(or nil 7 8)", 7)
	wantTruthy(t, "(or nil nil)", false)
	// and/or must short-circuit: the error branch is never evaluated.
	wantTruthy(t, "(and nil (error \"boom\"))", false)
	wantInt(t, "(or 5 (error \"boom\"))", 5)
}

func TestDefunLambdaClosure(t *testing.T) {
	wantInt(t, "(defun sq (x) (* x x)) (sq 7)", 49)
	wantInt(t, "((lambda (a b) (+ a b)) 3 4)", 7)
	// Closures capture their defining environment.
	wantInt(t, `
		(defun mkadder (n) (lambda (x) (+ x n)))
		(setq add5 (mkadder 5))
		(add5 37)`, 42)
	// Recursion.
	wantInt(t, `
		(defun fact (n) (if (<= n 1) 1 (* n (fact (- n 1)))))
		(fact 10)`, 3628800)
	runErr(t, "(defun)")
	runErr(t, "(defun 3 (x) x)")
	runErr(t, "(defun f (1) 2)")
	runErr(t, "(sq 1)") // unbound in fresh interp
	runErr(t, "(defun f (x) x) (f 1 2)")
	runErr(t, "(1 2 3)") // not a function
}

func TestForeach(t *testing.T) {
	wantInt(t, `
		(setq sum 0)
		(foreach x '(1 2 3 4) (setq sum (+ sum x)))
		sum`, 10)
	wantTruthy(t, "(foreach x nil x)", false)
	runErr(t, "(foreach 1 '(1) 1)")
	runErr(t, "(foreach x 5 x)")
}

func TestListOps(t *testing.T) {
	wantInt(t, "(car '(1 2 3))", 1)
	wantTruthy(t, "(car nil)", false)
	wantTruthy(t, `(equal (cdr '(1 2 3)) '(2 3))`, true)
	wantTruthy(t, "(cdr '(1))", false)
	wantTruthy(t, `(equal (cons 1 '(2 3)) '(1 2 3))`, true)
	wantTruthy(t, `(equal (cons 1 nil) '(1))`, true)
	wantInt(t, "(length '(1 2 3))", 3)
	wantInt(t, `(length "abcd")`, 4)
	wantInt(t, "(length nil)", 0)
	wantTruthy(t, `(equal (append '(1) '(2 3) nil '(4)) '(1 2 3 4))`, true)
	wantTruthy(t, `(equal (reverse '(1 2 3)) '(3 2 1))`, true)
	wantInt(t, "(nth 1 '(10 20 30))", 20)
	wantTruthy(t, "(nth 9 '(1))", false)
	wantTruthy(t, `(equal (member 2 '(1 2 3)) '(2 3))`, true)
	wantTruthy(t, "(member 9 '(1 2))", false)
	wantTruthy(t, `(equal (assoc 'b '((a 1) (b 2))) '(b 2))`, true)
	wantTruthy(t, "(assoc 'z '((a 1)))", false)
	wantTruthy(t, `(equal (mapcar (lambda (x) (* x x)) '(1 2 3)) '(1 4 9))`, true)
	wantTruthy(t, `(equal (filter (lambda (x) (> x 1)) '(1 2 3)) '(2 3))`, true)
	wantInt(t, "(apply + '(1 2 3))", 6)
	runErr(t, "(car 5)")
	runErr(t, "(length 5)")
}

func TestStringOps(t *testing.T) {
	wantStr(t, `(strcat "a" "b" 3)`, "ab3")
	wantStr(t, `(sprintf "%s=%d" "x" 7)`, "x=7")
	wantStr(t, `(upperCase "abc")`, "ABC")
	wantStr(t, `(lowerCase "ABC")`, "abc")
	wantTruthy(t, `(equal (strsplit "a,b,c" ",") '("a" "b" "c"))`, true)
	wantStr(t, "(symbolName 'foo)", "foo")
	runErr(t, "(sprintf 1)")
	runErr(t, "(upperCase 3)")
	runErr(t, "(symbolName 3)")
}

func TestTypeOf(t *testing.T) {
	for src, want := range map[string]string{
		"(type nil)":            "nil",
		"(type t)":              "bool",
		"(type 1)":              "int",
		"(type 1.5)":            "float",
		`(type "s")`:            "string",
		"(type 'x)":             "symbol",
		"(type '(1))":           "list",
		"(type (lambda (x) x))": "function",
	} {
		v := run(t, src)
		if s, ok := v.(Symbol); !ok || string(s) != want {
			t.Errorf("%s = %s, want %s", src, Sprint(v), want)
		}
	}
}

func TestPrintlnOutput(t *testing.T) {
	in := NewInterp()
	var buf bytes.Buffer
	in.Out = &buf
	if _, err := in.Run(`(println "hello" 42 '(1 2))`); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "hello 42 (1 2)\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestErrorBuiltin(t *testing.T) {
	err := runErr(t, `(error "custom failure" 42)`)
	if !strings.Contains(err.Error(), "custom failure 42") {
		t.Fatalf("error text = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"(", ")", "'", `"abc`, `"\q"`, "(a (b)"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	if _, err := ParseOne("1 2"); err == nil {
		t.Error("ParseOne with two forms succeeded")
	}
	if _, err := ParseOne("42"); err != nil {
		t.Errorf("ParseOne(42): %v", err)
	}
}

func TestComments(t *testing.T) {
	wantInt(t, "; leading comment\n(+ 1 2) ; trailing", 3)
}

func TestAtomClassification(t *testing.T) {
	cases := map[string]string{
		"42":  "42",
		"-7":  "-7",
		"3.5": "3.5",
		"nil": "nil",
		"t":   "t",
		"x":   "x",
		"-":   "-",
		"+":   "+",
		"1+":  "1", // ParseFloat fails; but looksNumeric true and ParseInt fails -> symbol
	}
	_ = cases
	if _, ok := atomValue("42").(Int); !ok {
		t.Error("42 not Int")
	}
	if _, ok := atomValue("-7").(Int); !ok {
		t.Error("-7 not Int")
	}
	if _, ok := atomValue("3.5").(Float); !ok {
		t.Error("3.5 not Float")
	}
	if _, ok := atomValue("-").(Symbol); !ok {
		t.Error("- not Symbol")
	}
	if _, ok := atomValue("abc").(Symbol); !ok {
		t.Error("abc not Symbol")
	}
	if _, ok := atomValue("1+").(Symbol); !ok {
		t.Error("1+ not Symbol")
	}
}

func TestSetqScoping(t *testing.T) {
	// setq inside let assigns the let binding, not a global.
	wantInt(t, `
		(setq x 1)
		(let ((x 10)) (setq x 20) x)`, 20)
	wantInt(t, `
		(setq x 1)
		(let ((x 10)) (setq x 20))
		x`, 1)
	// setq on a truly unbound name defines where evaluated.
	wantInt(t, "(setq fresh 9) fresh", 9)
}

func TestEvaluationBudget(t *testing.T) {
	in := NewInterp()
	in.MaxStep = 1000
	_, err := in.Run("(while t 1)")
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("infinite loop not stopped: %v", err)
	}
	// Budget resets between top-level Runs.
	if _, err := in.Run("(+ 1 2)"); err != nil {
		t.Fatalf("budget did not reset: %v", err)
	}
}

func TestSprintDisplay(t *testing.T) {
	v := run(t, `'(1 "two" three (4))`)
	if got := Sprint(v); got != `(1 "two" three (4))` {
		t.Fatalf("Sprint = %s", got)
	}
	if got := Display(Str("plain")); got != "plain" {
		t.Fatalf("Display = %s", got)
	}
	if Sprint(nil) != "nil" {
		t.Fatal("Sprint(nil)")
	}
	f := run(t, "(lambda (x) x)")
	if !strings.Contains(Sprint(f), "lambda") {
		t.Fatal("lambda Sprint")
	}
	fn := run(t, "(defun named (x) x)")
	if !strings.Contains(Sprint(fn), "named") {
		t.Fatal("named func Sprint")
	}
}

func TestFuncsIntrospection(t *testing.T) {
	in := NewInterp()
	if _, err := in.Run("(defun mine (x) x)"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range in.Funcs() {
		if f == "mine" {
			found = true
		}
	}
	if !found {
		t.Fatal("Funcs missing user function")
	}
}

// --- hooks -----------------------------------------------------------

func TestHooksLockUnlock(t *testing.T) {
	in := NewInterp()
	h := NewHooks(in)
	if _, err := in.Run(`(hiLockMenu "File>CheckIn" "flow not ready")`); err != nil {
		t.Fatal(err)
	}
	reason, locked := h.Locked("File>CheckIn")
	if !locked || reason != "flow not ready" {
		t.Fatalf("Locked = %q,%t", reason, locked)
	}
	if got := h.LockedMenus(); len(got) != 1 || got[0] != "File>CheckIn" {
		t.Fatalf("LockedMenus = %v", got)
	}
	if err := h.Invoke("File>CheckIn"); err == nil {
		t.Fatal("locked menu invokable")
	}
	v, err := in.Run(`(hiMenuLocked "File>CheckIn")`)
	if err != nil || !Truthy(v) {
		t.Fatalf("hiMenuLocked = %s, %v", Sprint(v), err)
	}
	if _, err := in.Run(`(hiUnlockMenu "File>CheckIn")`); err != nil {
		t.Fatal(err)
	}
	if _, locked := h.Locked("File>CheckIn"); locked {
		t.Fatal("still locked after unlock")
	}
	if err := h.Invoke("File>CheckIn"); err != nil {
		t.Fatalf("unlocked menu: %v", err)
	}
}

func TestHooksTriggers(t *testing.T) {
	in := NewInterp()
	h := NewHooks(in)
	src := `
		(setq fired 0)
		(hiRegTrigger "preSave" (lambda (name) (setq fired (+ fired 1))))
		(hiRegTrigger "preSave" (lambda (name) (setq fired (+ fired 10))))`
	if _, err := in.Run(src); err != nil {
		t.Fatal(err)
	}
	if err := h.Fire("preSave", Str("cell1")); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Lookup("fired")
	if i, ok := v.(Int); !ok || i != 11 {
		t.Fatalf("fired = %s, want 11", Sprint(v))
	}
	if h.Fired("preSave") != 1 {
		t.Fatalf("Fired = %d", h.Fired("preSave"))
	}
	// A failing trigger vetoes.
	if _, err := in.Run(`(hiRegTrigger "preSave" (lambda (name) (error "veto" name)))`); err != nil {
		t.Fatal(err)
	}
	if err := h.Fire("preSave", Str("cell2")); err == nil {
		t.Fatal("failing trigger did not propagate")
	}
}

func TestHooksMenuTrigger(t *testing.T) {
	in := NewInterp()
	h := NewHooks(in)
	if _, err := in.Run(`
		(setq invoked nil)
		(hiRegTrigger "menu:Tools>Simulate" (lambda () (setq invoked t)))`); err != nil {
		t.Fatal(err)
	}
	if err := h.Invoke("Tools>Simulate"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Lookup("invoked")
	if !Truthy(v) {
		t.Fatal("menu trigger did not fire")
	}
}

func TestHooksArgErrors(t *testing.T) {
	in := NewInterp()
	NewHooks(in)
	for _, src := range []string{
		"(hiLockMenu)",
		"(hiLockMenu 1)",
		"(hiUnlockMenu)",
		"(hiUnlockMenu 2)",
		"(hiMenuLocked)",
		"(hiMenuLocked 3)",
		"(hiRegTrigger \"p\")",
		"(hiRegTrigger 1 (lambda () 1))",
		"(hiRegTrigger \"p\" 5)",
	} {
		if _, err := in.Run(src); err == nil {
			t.Errorf("%s succeeded", src)
		}
	}
}

// Property: Sprint output of integer arithmetic re-parses to the same value.
func TestPropertyIntRoundTrip(t *testing.T) {
	in := NewInterp()
	f := func(n int64) bool {
		v, err := in.Run(Sprint(Int(n)))
		if err != nil {
			return false
		}
		i, ok := v.(Int)
		return ok && int64(i) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: string literals round-trip through Sprint/Parse/Eval.
func TestPropertyStringRoundTrip(t *testing.T) {
	in := NewInterp()
	f := func(s string) bool {
		// Our lexer supports \n \t \\ \" escapes; strconv.Quote may emit
		// other escapes for exotic bytes, so restrict to printable ASCII.
		for _, r := range s {
			if r < 32 || r > 126 {
				return true // skip
			}
		}
		v, err := in.Run(Sprint(Str(s)))
		if err != nil {
			return false
		}
		got, ok := v.(Str)
		return ok && string(got) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: list construction via cons matches literal lists.
func TestPropertyConsLength(t *testing.T) {
	in := NewInterp()
	f := func(n uint8) bool {
		count := int(n % 50)
		src := "nil"
		for i := 0; i < count; i++ {
			src = "(cons 1 " + src + ")"
		}
		v, err := in.Run("(length " + src + ")")
		if err != nil {
			return false
		}
		i, ok := v.(Int)
		return ok && int(i) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
