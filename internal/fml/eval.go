package fml

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Env is a lexical environment frame.
type Env struct {
	vars   map[Symbol]Value
	parent *Env
}

// NewEnv returns a child of parent (parent may be nil for the global frame).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[Symbol]Value{}, parent: parent}
}

// Lookup resolves a symbol through the frame chain.
func (e *Env) Lookup(s Symbol) (Value, bool) {
	for f := e; f != nil; f = f.parent {
		if v, ok := f.vars[s]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a symbol in this frame.
func (e *Env) Define(s Symbol, v Value) { e.vars[s] = v }

// Assign rebinds an existing symbol wherever it is bound, or defines it in
// this frame when unbound (SKILL setq semantics).
func (e *Env) Assign(s Symbol, v Value) {
	for f := e; f != nil; f = f.parent {
		if _, ok := f.vars[s]; ok {
			f.vars[s] = v
			return
		}
	}
	e.vars[s] = v
}

// Interp is one interpreter instance: a global environment, builtins, an
// output writer for print functions, and an evaluation-step budget that
// guards against runaway scripts.
type Interp struct {
	Global  *Env
	Out     io.Writer
	MaxStep int // 0 means the default budget
	steps   int
}

// DefaultMaxStep bounds evaluation steps per Eval/Run call.
const DefaultMaxStep = 2_000_000

// NewInterp returns an interpreter with the standard builtins installed.
func NewInterp() *Interp {
	in := &Interp{Global: NewEnv(nil), Out: io.Discard}
	installBuiltins(in)
	return in
}

// RegisterFunc exposes a Go function to FML programs under the given name.
// This is the host-integration point the encapsulation layer uses.
func (in *Interp) RegisterFunc(name string, fn func(in *Interp, args []Value) (Value, error)) {
	in.Global.Define(Symbol(name), &Builtin{Name: name, Fn: fn})
}

// Funcs returns the names of all globally bound functions, sorted. Useful
// for the fmcadsh REPL's introspection.
func (in *Interp) Funcs() []string {
	var out []string
	for s, v := range in.Global.vars {
		switch v.(type) {
		case *Builtin, *Func:
			out = append(out, string(s))
		}
	}
	sort.Strings(out)
	return out
}

// Run parses and evaluates a whole program in the global environment,
// returning the value of the last form.
func (in *Interp) Run(src string) (Value, error) {
	forms, err := Parse(src)
	if err != nil {
		return nil, err
	}
	var last Value = Nil{}
	for _, form := range forms {
		last, err = in.Eval(form, in.Global)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Eval evaluates one form in env. The step budget is reset per top-level
// call (calls where env is the global frame).
func (in *Interp) Eval(form Value, env *Env) (Value, error) {
	if env == in.Global {
		in.steps = 0
	}
	return in.eval(form, env)
}

func (in *Interp) budget() int {
	if in.MaxStep > 0 {
		return in.MaxStep
	}
	return DefaultMaxStep
}

func (in *Interp) eval(form Value, env *Env) (Value, error) {
	in.steps++
	if in.steps > in.budget() {
		return nil, errf(form, "evaluation budget exceeded (%d steps)", in.budget())
	}
	switch x := form.(type) {
	case nil:
		return Nil{}, nil
	case Nil, Bool, Int, Float, Str, *Func, *Builtin:
		return x, nil
	case Symbol:
		if v, ok := env.Lookup(x); ok {
			return v, nil
		}
		return nil, errf(form, "unbound symbol %s", x)
	case List:
		if len(x) == 0 {
			return Nil{}, nil
		}
		if sym, ok := x[0].(Symbol); ok {
			if fn, special := specialForms[sym]; special {
				return fn(in, x, env)
			}
		}
		// Function application.
		fv, err := in.eval(x[0], env)
		if err != nil {
			return nil, err
		}
		args := make([]Value, 0, len(x)-1)
		for _, a := range x[1:] {
			av, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			args = append(args, av)
		}
		return in.Apply(fv, args, form)
	}
	return nil, errf(form, "cannot evaluate %T", form)
}

// Apply calls a function value with already-evaluated arguments.
func (in *Interp) Apply(fv Value, args []Value, form Value) (Value, error) {
	switch fn := fv.(type) {
	case *Builtin:
		return fn.Fn(in, args)
	case *Func:
		if len(args) != len(fn.Params) {
			return nil, errf(form, "%s wants %d args, got %d", fn.fmlString(), len(fn.Params), len(args))
		}
		frame := NewEnv(fn.Env)
		for i, p := range fn.Params {
			frame.Define(p, args[i])
		}
		var last Value = Nil{}
		var err error
		for _, b := range fn.Body {
			last, err = in.eval(b, frame)
			if err != nil {
				return nil, err
			}
		}
		return last, nil
	}
	return nil, errf(form, "not a function: %s", Sprint(fv))
}

// specialForms are evaluated without evaluating arguments first. The map is
// populated in init to break the declaration cycle with eval.
var specialForms map[Symbol]func(in *Interp, form List, env *Env) (Value, error)

func init() {
	specialForms = map[Symbol]func(in *Interp, form List, env *Env) (Value, error){
		"quote":   evalQuote,
		"if":      evalIf,
		"when":    evalWhen,
		"unless":  evalUnless,
		"defun":   evalDefun,
		"lambda":  evalLambda,
		"let":     evalLet,
		"setq":    evalSetq,
		"progn":   evalProgn,
		"while":   evalWhile,
		"and":     evalAnd,
		"or":      evalOr,
		"cond":    evalCond,
		"foreach": evalForeach,
	}
}

func evalQuote(_ *Interp, form List, _ *Env) (Value, error) {
	if len(form) != 2 {
		return nil, errf(form, "quote wants 1 arg")
	}
	return form[1], nil
}

func evalIf(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 3 || len(form) > 4 {
		return nil, errf(form, "if wants 2 or 3 args")
	}
	c, err := in.eval(form[1], env)
	if err != nil {
		return nil, err
	}
	if Truthy(c) {
		return in.eval(form[2], env)
	}
	if len(form) == 4 {
		return in.eval(form[3], env)
	}
	return Nil{}, nil
}

func evalWhen(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 2 {
		return nil, errf(form, "when wants a condition")
	}
	c, err := in.eval(form[1], env)
	if err != nil {
		return nil, err
	}
	if !Truthy(c) {
		return Nil{}, nil
	}
	return evalBody(in, form[2:], env)
}

func evalUnless(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 2 {
		return nil, errf(form, "unless wants a condition")
	}
	c, err := in.eval(form[1], env)
	if err != nil {
		return nil, err
	}
	if Truthy(c) {
		return Nil{}, nil
	}
	return evalBody(in, form[2:], env)
}

func evalBody(in *Interp, body []Value, env *Env) (Value, error) {
	var last Value = Nil{}
	var err error
	for _, b := range body {
		last, err = in.eval(b, env)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

func paramList(v Value) ([]Symbol, error) {
	lst, ok := v.(List)
	if !ok {
		if _, isNil := v.(Nil); isNil {
			return nil, nil
		}
		return nil, errf(v, "parameter list must be a list")
	}
	params := make([]Symbol, 0, len(lst))
	for _, p := range lst {
		s, ok := p.(Symbol)
		if !ok {
			return nil, errf(v, "parameter must be a symbol, got %s", Sprint(p))
		}
		params = append(params, s)
	}
	return params, nil
}

func evalDefun(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 4 {
		return nil, errf(form, "defun wants name, params, body")
	}
	name, ok := form[1].(Symbol)
	if !ok {
		return nil, errf(form, "defun name must be a symbol")
	}
	params, err := paramList(form[2])
	if err != nil {
		return nil, err
	}
	fn := &Func{Name: string(name), Params: params, Body: append([]Value(nil), form[3:]...), Env: env}
	in.Global.Define(name, fn)
	return fn, nil
}

func evalLambda(_ *Interp, form List, env *Env) (Value, error) {
	if len(form) < 3 {
		return nil, errf(form, "lambda wants params and body")
	}
	params, err := paramList(form[1])
	if err != nil {
		return nil, err
	}
	return &Func{Params: params, Body: append([]Value(nil), form[2:]...), Env: env}, nil
}

func evalLet(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 3 {
		return nil, errf(form, "let wants bindings and body")
	}
	bindings, ok := form[1].(List)
	if !ok {
		return nil, errf(form, "let bindings must be a list")
	}
	frame := NewEnv(env)
	for _, b := range bindings {
		switch binding := b.(type) {
		case Symbol:
			frame.Define(binding, Nil{})
		case List:
			if len(binding) != 2 {
				return nil, errf(form, "let binding wants (name value)")
			}
			name, ok := binding[0].(Symbol)
			if !ok {
				return nil, errf(form, "let binding name must be a symbol")
			}
			v, err := in.eval(binding[1], env)
			if err != nil {
				return nil, err
			}
			frame.Define(name, v)
		default:
			return nil, errf(form, "bad let binding %s", Sprint(b))
		}
	}
	return evalBody(in, form[2:], frame)
}

func evalSetq(in *Interp, form List, env *Env) (Value, error) {
	if len(form) != 3 {
		return nil, errf(form, "setq wants name and value")
	}
	name, ok := form[1].(Symbol)
	if !ok {
		return nil, errf(form, "setq name must be a symbol")
	}
	v, err := in.eval(form[2], env)
	if err != nil {
		return nil, err
	}
	env.Assign(name, v)
	return v, nil
}

func evalProgn(in *Interp, form List, env *Env) (Value, error) {
	return evalBody(in, form[1:], env)
}

func evalWhile(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 2 {
		return nil, errf(form, "while wants a condition")
	}
	var last Value = Nil{}
	for {
		c, err := in.eval(form[1], env)
		if err != nil {
			return nil, err
		}
		if !Truthy(c) {
			return last, nil
		}
		last, err = evalBody(in, form[2:], env)
		if err != nil {
			return nil, err
		}
	}
}

func evalAnd(in *Interp, form List, env *Env) (Value, error) {
	var last Value = Bool{}
	for _, f := range form[1:] {
		v, err := in.eval(f, env)
		if err != nil {
			return nil, err
		}
		if !Truthy(v) {
			return Nil{}, nil
		}
		last = v
	}
	return last, nil
}

func evalOr(in *Interp, form List, env *Env) (Value, error) {
	for _, f := range form[1:] {
		v, err := in.eval(f, env)
		if err != nil {
			return nil, err
		}
		if Truthy(v) {
			return v, nil
		}
	}
	return Nil{}, nil
}

func evalCond(in *Interp, form List, env *Env) (Value, error) {
	for _, clause := range form[1:] {
		cl, ok := clause.(List)
		if !ok || len(cl) == 0 {
			return nil, errf(form, "cond clause must be a non-empty list")
		}
		c, err := in.eval(cl[0], env)
		if err != nil {
			return nil, err
		}
		if Truthy(c) {
			if len(cl) == 1 {
				return c, nil
			}
			return evalBody(in, cl[1:], env)
		}
	}
	return Nil{}, nil
}

// evalForeach implements (foreach x list body...) — SKILL's loop over lists.
func evalForeach(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 3 {
		return nil, errf(form, "foreach wants var, list, body")
	}
	name, ok := form[1].(Symbol)
	if !ok {
		return nil, errf(form, "foreach var must be a symbol")
	}
	lv, err := in.eval(form[2], env)
	if err != nil {
		return nil, err
	}
	lst, ok := lv.(List)
	if !ok {
		if _, isNil := lv.(Nil); isNil {
			return Nil{}, nil
		}
		return nil, errf(form, "foreach wants a list, got %s", Sprint(lv))
	}
	frame := NewEnv(env)
	var last Value = Nil{}
	for _, item := range lst {
		frame.Define(name, item)
		last, err = evalBody(in, form[3:], frame)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Fprintln writes display text plus newline to the interpreter's output.
func (in *Interp) Fprintln(args []Value) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Display(a)
	}
	fmt.Fprintln(in.Out, strings.Join(parts, " "))
}
