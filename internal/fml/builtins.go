package fml

import (
	"fmt"
	"strings"
)

// installBuiltins defines the standard library in the global environment.
func installBuiltins(in *Interp) {
	reg := in.RegisterFunc

	// --- arithmetic ----------------------------------------------------
	reg("+", func(_ *Interp, args []Value) (Value, error) { return arith(args, "+") })
	reg("-", func(_ *Interp, args []Value) (Value, error) { return arith(args, "-") })
	reg("*", func(_ *Interp, args []Value) (Value, error) { return arith(args, "*") })
	reg("/", func(_ *Interp, args []Value) (Value, error) { return arith(args, "/") })
	reg("mod", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "mod wants 2 args")
		}
		a, aok := args[0].(Int)
		b, bok := args[1].(Int)
		if !aok || !bok {
			return nil, errf(nil, "mod wants ints")
		}
		if b == 0 {
			return nil, errf(nil, "mod by zero")
		}
		return a % b, nil
	})

	// --- comparison ----------------------------------------------------
	reg("=", cmpFn(func(c int) bool { return c == 0 }))
	reg("<", cmpFn(func(c int) bool { return c < 0 }))
	reg(">", cmpFn(func(c int) bool { return c > 0 }))
	reg("<=", cmpFn(func(c int) bool { return c <= 0 }))
	reg(">=", cmpFn(func(c int) bool { return c >= 0 }))
	reg("!=", cmpFn(func(c int) bool { return c != 0 }))
	reg("equal", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "equal wants 2 args")
		}
		return boolVal(Equal(args[0], args[1])), nil
	})
	reg("not", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errf(nil, "not wants 1 arg")
		}
		return boolVal(!Truthy(args[0])), nil
	})

	// --- lists ----------------------------------------------------------
	reg("list", func(_ *Interp, args []Value) (Value, error) {
		return List(append([]Value(nil), args...)), nil
	})
	reg("car", func(_ *Interp, args []Value) (Value, error) {
		lst, err := wantList(args, "car")
		if err != nil {
			return nil, err
		}
		if len(lst) == 0 {
			return Nil{}, nil
		}
		return lst[0], nil
	})
	reg("cdr", func(_ *Interp, args []Value) (Value, error) {
		lst, err := wantList(args, "cdr")
		if err != nil {
			return nil, err
		}
		if len(lst) <= 1 {
			return Nil{}, nil
		}
		return List(append([]Value(nil), lst[1:]...)), nil
	})
	reg("cons", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "cons wants 2 args")
		}
		tail := toList(args[1])
		return List(append([]Value{args[0]}, tail...)), nil
	})
	reg("length", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errf(nil, "length wants 1 arg")
		}
		switch x := args[0].(type) {
		case List:
			return Int(len(x)), nil
		case Str:
			return Int(len(x)), nil
		case Nil:
			return Int(0), nil
		}
		return nil, errf(nil, "length wants a list or string")
	})
	reg("append", func(_ *Interp, args []Value) (Value, error) {
		var out List
		for _, a := range args {
			out = append(out, toList(a)...)
		}
		return out, nil
	})
	reg("reverse", func(_ *Interp, args []Value) (Value, error) {
		lst, err := wantList(args, "reverse")
		if err != nil {
			return nil, err
		}
		out := make(List, len(lst))
		for i, v := range lst {
			out[len(lst)-1-i] = v
		}
		return out, nil
	})
	reg("nth", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "nth wants index and list")
		}
		i, ok := args[0].(Int)
		if !ok {
			return nil, errf(nil, "nth index must be int")
		}
		lst := toList(args[1])
		if i < 0 || int(i) >= len(lst) {
			return Nil{}, nil
		}
		return lst[i], nil
	})
	reg("member", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "member wants item and list")
		}
		lst := toList(args[1])
		for i, v := range lst {
			if Equal(v, args[0]) {
				return List(append([]Value(nil), lst[i:]...)), nil
			}
		}
		return Nil{}, nil
	})
	reg("assoc", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "assoc wants key and alist")
		}
		for _, v := range toList(args[1]) {
			if pair, ok := v.(List); ok && len(pair) >= 1 && Equal(pair[0], args[0]) {
				return pair, nil
			}
		}
		return Nil{}, nil
	})
	reg("mapcar", func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "mapcar wants fn and list")
		}
		lst := toList(args[1])
		out := make(List, 0, len(lst))
		for _, v := range lst {
			r, err := in.Apply(args[0], []Value{v}, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	})
	reg("filter", func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "filter wants fn and list")
		}
		var out List
		for _, v := range toList(args[1]) {
			r, err := in.Apply(args[0], []Value{v}, nil)
			if err != nil {
				return nil, err
			}
			if Truthy(r) {
				out = append(out, v)
			}
		}
		return out, nil
	})
	reg("apply", func(in *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "apply wants fn and arg list")
		}
		return in.Apply(args[0], toList(args[1]), nil)
	})

	// --- strings ---------------------------------------------------------
	reg("strcat", func(_ *Interp, args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteString(Display(a))
		}
		return Str(b.String()), nil
	})
	reg("sprintf", func(_ *Interp, args []Value) (Value, error) {
		if len(args) < 1 {
			return nil, errf(nil, "sprintf wants a format")
		}
		f, ok := args[0].(Str)
		if !ok {
			return nil, errf(nil, "sprintf format must be a string")
		}
		goArgs := make([]any, 0, len(args)-1)
		for _, a := range args[1:] {
			switch x := a.(type) {
			case Int:
				goArgs = append(goArgs, int64(x))
			case Float:
				goArgs = append(goArgs, float64(x))
			case Str:
				goArgs = append(goArgs, string(x))
			default:
				goArgs = append(goArgs, Display(a))
			}
		}
		return Str(fmt.Sprintf(string(f), goArgs...)), nil
	})
	reg("upperCase", strFn(strings.ToUpper))
	reg("lowerCase", strFn(strings.ToLower))
	reg("strsplit", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "strsplit wants string and separator")
		}
		s, ok1 := args[0].(Str)
		sep, ok2 := args[1].(Str)
		if !ok1 || !ok2 {
			return nil, errf(nil, "strsplit wants strings")
		}
		parts := strings.Split(string(s), string(sep))
		out := make(List, len(parts))
		for i, p := range parts {
			out[i] = Str(p)
		}
		return out, nil
	})
	reg("symbolName", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errf(nil, "symbolName wants 1 arg")
		}
		s, ok := args[0].(Symbol)
		if !ok {
			return nil, errf(nil, "symbolName wants a symbol")
		}
		return Str(s), nil
	})

	// --- I/O and misc -----------------------------------------------------
	reg("println", func(in *Interp, args []Value) (Value, error) {
		in.Fprintln(args)
		return Nil{}, nil
	})
	reg("error", func(_ *Interp, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Display(a)
		}
		return nil, &Error{Msg: strings.Join(parts, " ")}
	})
	reg("type", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errf(nil, "type wants 1 arg")
		}
		switch args[0].(type) {
		case Nil:
			return Symbol("nil"), nil
		case Bool:
			return Symbol("bool"), nil
		case Int:
			return Symbol("int"), nil
		case Float:
			return Symbol("float"), nil
		case Str:
			return Symbol("string"), nil
		case Symbol:
			return Symbol("symbol"), nil
		case List:
			return Symbol("list"), nil
		case *Func, *Builtin:
			return Symbol("function"), nil
		}
		return Symbol("unknown"), nil
	})
}

func boolVal(b bool) Value {
	if b {
		return Bool{}
	}
	return Nil{}
}

// toList coerces nil to the empty list and returns lists as-is; any other
// value becomes a one-element list (convenient for cons/append).
func toList(v Value) List {
	switch x := v.(type) {
	case List:
		return x
	case Nil:
		return nil
	default:
		return List{x}
	}
}

func wantList(args []Value, name string) (List, error) {
	if len(args) != 1 {
		return nil, errf(nil, "%s wants 1 arg", name)
	}
	switch x := args[0].(type) {
	case List:
		return x, nil
	case Nil:
		return nil, nil
	}
	return nil, errf(nil, "%s wants a list, got %s", name, Sprint(args[0]))
}

func strFn(f func(string) string) func(*Interp, []Value) (Value, error) {
	return func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errf(nil, "string function wants 1 arg")
		}
		s, ok := args[0].(Str)
		if !ok {
			return nil, errf(nil, "want a string, got %s", Sprint(args[0]))
		}
		return Str(f(string(s))), nil
	}
}

// arith folds numeric arguments left to right, promoting to float when any
// argument is a float.
func arith(args []Value, op string) (Value, error) {
	if len(args) == 0 {
		return nil, errf(nil, "%s wants at least 1 arg", op)
	}
	// Unary minus.
	if op == "-" && len(args) == 1 {
		switch x := args[0].(type) {
		case Int:
			return -x, nil
		case Float:
			return -x, nil
		}
		return nil, errf(nil, "- wants numbers")
	}
	useFloat := false
	for _, a := range args {
		switch a.(type) {
		case Float:
			useFloat = true
		case Int:
		default:
			return nil, errf(nil, "%s wants numbers, got %s", op, Sprint(a))
		}
	}
	if useFloat {
		acc := toFloat(args[0])
		for _, a := range args[1:] {
			v := toFloat(a)
			switch op {
			case "+":
				acc += v
			case "-":
				acc -= v
			case "*":
				acc *= v
			case "/":
				if v == 0 {
					return nil, errf(nil, "division by zero")
				}
				acc /= v
			}
		}
		return Float(acc), nil
	}
	acc := int64(args[0].(Int))
	for _, a := range args[1:] {
		v := int64(a.(Int))
		switch op {
		case "+":
			acc += v
		case "-":
			acc -= v
		case "*":
			acc *= v
		case "/":
			if v == 0 {
				return nil, errf(nil, "division by zero")
			}
			acc /= v
		}
	}
	return Int(acc), nil
}

func toFloat(v Value) float64 {
	switch x := v.(type) {
	case Int:
		return float64(x)
	case Float:
		return float64(x)
	}
	return 0
}

// cmpFn builds a numeric/string comparison builtin from a predicate over
// the three-way comparison result.
func cmpFn(pred func(int) bool) func(*Interp, []Value) (Value, error) {
	return func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "comparison wants 2 args")
		}
		c, err := compare(args[0], args[1])
		if err != nil {
			return nil, err
		}
		return boolVal(pred(c)), nil
	}
}

func compare(a, b Value) (int, error) {
	switch x := a.(type) {
	case Int:
		switch y := b.(type) {
		case Int:
			return cmpOrd(int64(x), int64(y)), nil
		case Float:
			return cmpOrd(float64(x), float64(y)), nil
		}
	case Float:
		switch y := b.(type) {
		case Int:
			return cmpOrd(float64(x), float64(y)), nil
		case Float:
			return cmpOrd(float64(x), float64(y)), nil
		}
	case Str:
		if y, ok := b.(Str); ok {
			return strings.Compare(string(x), string(y)), nil
		}
	}
	return 0, errf(nil, "cannot compare %s and %s", Sprint(a), Sprint(b))
}

func cmpOrd[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
