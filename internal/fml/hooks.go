package fml

import (
	"fmt"
	"sort"
	"sync"
)

// Hooks is the customization surface an FMCAD tool exposes to FML scripts:
// named menu points that can be locked/unlocked and named trigger points
// that run FML procedures when the tool reaches them. The paper's
// encapsulation uses exactly this mechanism — "extension language
// procedures to trigger functions and lock menu points in order to prevent
// data inconsistency" (section 2.4).
type Hooks struct {
	mu       sync.Mutex
	in       *Interp
	locked   map[string]string  // menu point -> reason
	triggers map[string][]Value // trigger point -> FML closures
	fired    map[string]int     // trigger point -> invocation count
}

// NewHooks returns an empty hook registry bound to interp and installs the
// hook builtins (hiLockMenu, hiUnlockMenu, hiMenuLocked, hiRegTrigger) into
// it, so FML scripts can manipulate the registry directly.
func NewHooks(interp *Interp) *Hooks {
	h := &Hooks{
		in:       interp,
		locked:   map[string]string{},
		triggers: map[string][]Value{},
		fired:    map[string]int{},
	}
	interp.RegisterFunc("hiLockMenu", func(_ *Interp, args []Value) (Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, errf(nil, "hiLockMenu wants menu [reason]")
		}
		menu, ok := args[0].(Str)
		if !ok {
			return nil, errf(nil, "hiLockMenu menu must be a string")
		}
		reason := "locked by framework"
		if len(args) == 2 {
			reason = Display(args[1])
		}
		h.Lock(string(menu), reason)
		return Bool{}, nil
	})
	interp.RegisterFunc("hiUnlockMenu", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errf(nil, "hiUnlockMenu wants menu")
		}
		menu, ok := args[0].(Str)
		if !ok {
			return nil, errf(nil, "hiUnlockMenu menu must be a string")
		}
		h.Unlock(string(menu))
		return Bool{}, nil
	})
	interp.RegisterFunc("hiMenuLocked", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, errf(nil, "hiMenuLocked wants menu")
		}
		menu, ok := args[0].(Str)
		if !ok {
			return nil, errf(nil, "hiMenuLocked menu must be a string")
		}
		_, locked := h.Locked(string(menu))
		return boolVal(locked), nil
	})
	interp.RegisterFunc("hiRegTrigger", func(_ *Interp, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, errf(nil, "hiRegTrigger wants point and function")
		}
		point, ok := args[0].(Str)
		if !ok {
			return nil, errf(nil, "hiRegTrigger point must be a string")
		}
		switch args[1].(type) {
		case *Func, *Builtin:
		default:
			return nil, errf(nil, "hiRegTrigger wants a function")
		}
		h.Register(string(point), args[1])
		return Bool{}, nil
	})
	return h
}

// Lock marks a menu point locked with a human-readable reason.
func (h *Hooks) Lock(menu, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.locked[menu] = reason
}

// Unlock releases a menu point.
func (h *Hooks) Unlock(menu string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.locked, menu)
}

// Locked reports whether a menu point is locked and why.
func (h *Hooks) Locked(menu string) (reason string, locked bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.locked[menu]
	return r, ok
}

// LockedMenus returns all locked menu points, sorted.
func (h *Hooks) LockedMenus() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.locked))
	for m := range h.locked {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Register attaches an FML function to a trigger point.
func (h *Hooks) Register(point string, fn Value) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.triggers[point] = append(h.triggers[point], fn)
}

// Fire runs every function registered at point with the given arguments.
// Errors abort the remaining triggers — a trigger that fails is how the
// encapsulation vetoes an inconsistent tool action.
func (h *Hooks) Fire(point string, args ...Value) error {
	h.mu.Lock()
	fns := append([]Value(nil), h.triggers[point]...)
	h.fired[point]++
	h.mu.Unlock()
	for _, fn := range fns {
		if _, err := h.in.Apply(fn, args, nil); err != nil {
			return fmt.Errorf("trigger %q: %w", point, err)
		}
	}
	return nil
}

// Fired returns how many times a trigger point has fired.
func (h *Hooks) Fired(point string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired[point]
}

// Invoke simulates a user picking a menu point: locked menus return an
// error (the tool refuses), unlocked menus fire the "menu:<name>" trigger.
func (h *Hooks) Invoke(menu string, args ...Value) error {
	if reason, locked := h.Locked(menu); locked {
		return fmt.Errorf("fml: menu %q is locked: %s", menu, reason)
	}
	return h.Fire("menu:"+menu, args...)
}
