// Package fml implements the FMCAD extension language, a small Lisp-family
// interpreter standing in for the proprietary customization language the
// paper relies on ("each part of the system can be modified by an extension
// language", section 2.2; the encapsulation "was extended by several
// extension language procedures to trigger functions and lock menu points",
// section 2.4).
//
// The language is an s-expression Lisp with lexical scoping: symbols,
// integers, floats, strings, lists, t/nil, defun/lambda/let/if/while/setq,
// quoting, and a builtin library. Host programs extend it with Go functions
// via Interp.RegisterFunc, which is how the hybrid framework installs its
// menu-locking and trigger procedures.
package fml

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is any FML runtime value: Nil, Bool, Int, Float, Str, Symbol, List,
// *Func or Builtin.
type Value interface {
	fmlString() string
}

// Nil is the empty list / false value.
type Nil struct{}

func (Nil) fmlString() string { return "nil" }

// Bool is the truth value; only true is represented (false is Nil), but a
// distinct type keeps `t` printing as t.
type Bool struct{}

func (Bool) fmlString() string { return "t" }

// Int is an integer value.
type Int int64

func (i Int) fmlString() string { return strconv.FormatInt(int64(i), 10) }

// Float is a floating-point value.
type Float float64

func (f Float) fmlString() string { return strconv.FormatFloat(float64(f), 'g', -1, 64) }

// Str is a string value.
type Str string

func (s Str) fmlString() string { return strconv.Quote(string(s)) }

// Symbol is an identifier.
type Symbol string

func (s Symbol) fmlString() string { return string(s) }

// List is a proper list of values.
type List []Value

func (l List) fmlString() string {
	parts := make([]string, len(l))
	for i, v := range l {
		parts[i] = v.fmlString()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Func is a user-defined function (defun or lambda) closing over env.
type Func struct {
	Name   string
	Params []Symbol
	Body   []Value
	Env    *Env
}

func (f *Func) fmlString() string {
	if f.Name != "" {
		return "#<function " + f.Name + ">"
	}
	return "#<lambda>"
}

// Builtin is a Go function exposed to FML programs.
type Builtin struct {
	Name string
	Fn   func(in *Interp, args []Value) (Value, error)
}

func (b *Builtin) fmlString() string { return "#<builtin " + b.Name + ">" }

// Sprint renders a value as FML source text.
func Sprint(v Value) string {
	if v == nil {
		return "nil"
	}
	return v.fmlString()
}

// Display renders a value for user output: strings without quotes,
// everything else like Sprint.
func Display(v Value) string {
	if s, ok := v.(Str); ok {
		return string(s)
	}
	return Sprint(v)
}

// Truthy reports FML truth: everything except nil (and empty Nil value)
// is true. The empty list is false, as in Lisp.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil, Nil:
		return false
	case List:
		return len(x) > 0
	default:
		return true
	}
}

// Equal compares two values structurally.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Nil:
		_, ok := b.(Nil)
		return ok
	case Bool:
		_, ok := b.(Bool)
		return ok
	case Int:
		switch y := b.(type) {
		case Int:
			return x == y
		case Float:
			return Float(x) == y
		}
		return false
	case Float:
		switch y := b.(type) {
		case Int:
			return x == Float(y)
		case Float:
			return x == y
		}
		return false
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Symbol:
		y, ok := b.(Symbol)
		return ok && x == y
	case List:
		y, ok := b.(List)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case *Func:
		return a == b
	case *Builtin:
		return a == b
	}
	return false
}

// Error is an FML evaluation error carrying the failing form.
type Error struct {
	Msg  string
	Form Value
}

func (e *Error) Error() string {
	if e.Form != nil {
		return fmt.Sprintf("fml: %s in %s", e.Msg, Sprint(e.Form))
	}
	return "fml: " + e.Msg
}

func errf(form Value, format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Form: form}
}
