// Package schematic implements the FMCAD schematic entry tool: a netlist
// editor for gate-level designs with hierarchy. It is one of the three
// tools the paper encapsulates into the hybrid framework (section 2.4).
//
// A Schematic holds ports, nets, primitive gates and hierarchical
// instances of other cellviews. The text file format is line-oriented and
// deliberately uses the same "inst" lines the FMCAD framework scans for
// dynamic hierarchy binding, so design hierarchy lives inside the design
// data exactly as section 2.2 describes.
package schematic

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	In PortDir = iota
	Out
	InOut
)

// String returns the file-format keyword of the direction.
func (d PortDir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("PortDir(%d)", int(d))
}

func parseDir(s string) (PortDir, error) {
	switch s {
	case "in":
		return In, nil
	case "out":
		return Out, nil
	case "inout":
		return InOut, nil
	}
	return In, fmt.Errorf("schematic: bad port direction %q", s)
}

// GateType enumerates the primitive gate library shared with the
// simulator.
type GateType string

// The primitive gate library.
const (
	Inv   GateType = "inv"
	Buf   GateType = "buf"
	And2  GateType = "and2"
	Or2   GateType = "or2"
	Nand2 GateType = "nand2"
	Nor2  GateType = "nor2"
	Xor2  GateType = "xor2"
	Xnor2 GateType = "xnor2"
	Dff   GateType = "dff" // inputs: d, clk; output: q
)

// GateInputs returns the number of inputs a gate type takes.
func GateInputs(t GateType) (int, error) {
	switch t {
	case Inv, Buf:
		return 1, nil
	case And2, Or2, Nand2, Nor2, Xor2, Xnor2, Dff:
		return 2, nil
	}
	return 0, fmt.Errorf("schematic: unknown gate type %q", t)
}

// Port is a named, directed connection point of the schematic.
type Port struct {
	Name string
	Dir  PortDir
}

// Gate is one primitive logic gate instance. Out is the output net;
// Ins are the input nets (for Dff: Ins[0]=d, Ins[1]=clk).
type Gate struct {
	Name string
	Type GateType
	Out  string
	Ins  []string
}

// Instance is a hierarchical reference to another cellview. Conns maps the
// child's port names to nets of this schematic.
type Instance struct {
	Name  string
	Cell  string
	View  string
	Conns map[string]string
}

// Schematic is one schematic cellview's content.
type Schematic struct {
	Cell      string
	ports     []Port
	nets      map[string]bool
	netOrder  []string
	gates     []Gate
	gateIdx   map[string]int
	instances []Instance
	instIdx   map[string]int
}

// New returns an empty schematic for the named cell.
func New(cell string) *Schematic {
	return &Schematic{
		Cell:    cell,
		nets:    map[string]bool{},
		gateIdx: map[string]int{},
		instIdx: map[string]int{},
	}
}

// AddPort declares a port and its implicit net of the same name.
func (s *Schematic) AddPort(name string, dir PortDir) error {
	if name == "" {
		return fmt.Errorf("schematic: empty port name")
	}
	for _, p := range s.ports {
		if p.Name == name {
			return fmt.Errorf("schematic: duplicate port %q", name)
		}
	}
	s.ports = append(s.ports, Port{Name: name, Dir: dir})
	return s.AddNet(name)
}

// AddNet declares a net. Re-declaring is a no-op.
func (s *Schematic) AddNet(name string) error {
	if name == "" {
		return fmt.Errorf("schematic: empty net name")
	}
	if !s.nets[name] {
		s.nets[name] = true
		s.netOrder = append(s.netOrder, name)
	}
	return nil
}

// AddGate places a primitive gate. All referenced nets must exist.
func (s *Schematic) AddGate(name string, t GateType, out string, ins ...string) error {
	if name == "" {
		return fmt.Errorf("schematic: empty gate name")
	}
	if _, dup := s.gateIdx[name]; dup {
		return fmt.Errorf("schematic: duplicate gate %q", name)
	}
	want, err := GateInputs(t)
	if err != nil {
		return err
	}
	if len(ins) != want {
		return fmt.Errorf("schematic: gate %q (%s) wants %d inputs, got %d", name, t, want, len(ins))
	}
	if !s.nets[out] {
		return fmt.Errorf("schematic: gate %q output net %q undeclared", name, out)
	}
	for _, in := range ins {
		if !s.nets[in] {
			return fmt.Errorf("schematic: gate %q input net %q undeclared", name, in)
		}
	}
	s.gateIdx[name] = len(s.gates)
	s.gates = append(s.gates, Gate{Name: name, Type: t, Out: out, Ins: append([]string(nil), ins...)})
	return nil
}

// AddInstance places a hierarchical instance of another cellview.
func (s *Schematic) AddInstance(name, cell, view string) error {
	if name == "" || cell == "" || view == "" {
		return fmt.Errorf("schematic: instance needs name, cell and view")
	}
	if _, dup := s.instIdx[name]; dup {
		return fmt.Errorf("schematic: duplicate instance %q", name)
	}
	s.instIdx[name] = len(s.instances)
	s.instances = append(s.instances, Instance{Name: name, Cell: cell, View: view, Conns: map[string]string{}})
	return nil
}

// Connect wires a child instance port to a net of this schematic.
func (s *Schematic) Connect(inst, port, net string) error {
	i, ok := s.instIdx[inst]
	if !ok {
		return fmt.Errorf("schematic: unknown instance %q", inst)
	}
	if !s.nets[net] {
		return fmt.Errorf("schematic: undeclared net %q", net)
	}
	s.instances[i].Conns[port] = net
	return nil
}

// Ports returns the ports in declaration order.
func (s *Schematic) Ports() []Port { return append([]Port(nil), s.ports...) }

// Nets returns the nets in declaration order.
func (s *Schematic) Nets() []string { return append([]string(nil), s.netOrder...) }

// HasNet reports whether a net is declared.
func (s *Schematic) HasNet(name string) bool { return s.nets[name] }

// Gates returns the gates in placement order.
func (s *Schematic) Gates() []Gate {
	out := make([]Gate, len(s.gates))
	for i, g := range s.gates {
		out[i] = Gate{Name: g.Name, Type: g.Type, Out: g.Out, Ins: append([]string(nil), g.Ins...)}
	}
	return out
}

// Instances returns the hierarchical instances in placement order.
func (s *Schematic) Instances() []Instance {
	out := make([]Instance, len(s.instances))
	for i, in := range s.instances {
		conns := make(map[string]string, len(in.Conns))
		for k, v := range in.Conns {
			conns[k] = v
		}
		out[i] = Instance{Name: in.Name, Cell: in.Cell, View: in.View, Conns: conns}
	}
	return out
}

// Stats summarizes the design size.
func (s *Schematic) Stats() (ports, nets, gates, instances int) {
	return len(s.ports), len(s.netOrder), len(s.gates), len(s.instances)
}

// Validate checks structural consistency: every output net driven at most
// once (by a gate or an input port), every gate net declared, every
// instance connection on a declared net.
func (s *Schematic) Validate() []string {
	var problems []string
	drivers := map[string][]string{}
	for _, p := range s.ports {
		if p.Dir == In || p.Dir == InOut {
			drivers[p.Name] = append(drivers[p.Name], "port "+p.Name)
		}
	}
	for _, g := range s.gates {
		drivers[g.Out] = append(drivers[g.Out], "gate "+g.Name)
	}
	for net, ds := range drivers {
		if len(ds) > 1 {
			problems = append(problems, fmt.Sprintf("net %q has %d drivers: %s", net, len(ds), strings.Join(ds, ", ")))
		}
	}
	for _, in := range s.instances {
		for port, net := range in.Conns {
			if !s.nets[net] {
				problems = append(problems, fmt.Sprintf("instance %q port %q on undeclared net %q", in.Name, port, net))
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// CopyFrom replaces s's entire content with a deep copy of o. Editors use
// it to load a generated or externally prepared design into the working
// copy handed to them by the encapsulation.
func (s *Schematic) CopyFrom(o *Schematic) error {
	fresh := New(o.Cell)
	for _, p := range o.ports {
		if err := fresh.AddPort(p.Name, p.Dir); err != nil {
			return err
		}
	}
	for _, n := range o.netOrder {
		if err := fresh.AddNet(n); err != nil {
			return err
		}
	}
	for _, g := range o.gates {
		if err := fresh.AddGate(g.Name, g.Type, g.Out, g.Ins...); err != nil {
			return err
		}
	}
	for _, in := range o.instances {
		if err := fresh.AddInstance(in.Name, in.Cell, in.View); err != nil {
			return err
		}
		for port, net := range in.Conns {
			if err := fresh.Connect(in.Name, port, net); err != nil {
				return err
			}
		}
	}
	*s = *fresh
	return nil
}

// --- file format -----------------------------------------------------------

// Format renders the schematic in the design-file syntax. The layout is
// deterministic so versions diff cleanly.
func (s *Schematic) Format() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "schematic %s\n", s.Cell)
	for _, p := range s.ports {
		fmt.Fprintf(&b, "port %s %s\n", p.Name, p.Dir)
	}
	for _, n := range s.netOrder {
		fmt.Fprintf(&b, "net %s\n", n)
	}
	for _, g := range s.gates {
		fmt.Fprintf(&b, "gate %s %s %s %s\n", g.Name, g.Type, g.Out, strings.Join(g.Ins, " "))
	}
	for _, in := range s.instances {
		fmt.Fprintf(&b, "inst %s %s %s\n", in.Name, in.Cell, in.View)
		ports := make([]string, 0, len(in.Conns))
		for p := range in.Conns {
			ports = append(ports, p)
		}
		sort.Strings(ports)
		for _, p := range ports {
			fmt.Fprintf(&b, "conn %s %s %s\n", in.Name, p, in.Conns[p])
		}
	}
	return b.Bytes()
}

// Parse reads a schematic design file produced by Format.
func Parse(data []byte) (*Schematic, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var s *Schematic
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "schematic":
			if len(f) != 2 {
				return nil, fmt.Errorf("schematic: line %d: bad header", lineNo)
			}
			s = New(f[1])
		case "port":
			if s == nil {
				return nil, fmt.Errorf("schematic: line %d: port before header", lineNo)
			}
			if len(f) != 3 {
				return nil, fmt.Errorf("schematic: line %d: bad port", lineNo)
			}
			dir, err := parseDir(f[2])
			if err != nil {
				return nil, fmt.Errorf("schematic: line %d: %w", lineNo, err)
			}
			if err := s.AddPort(f[1], dir); err != nil {
				return nil, fmt.Errorf("schematic: line %d: %w", lineNo, err)
			}
		case "net":
			if s == nil || len(f) != 2 {
				return nil, fmt.Errorf("schematic: line %d: bad net", lineNo)
			}
			if err := s.AddNet(f[1]); err != nil {
				return nil, fmt.Errorf("schematic: line %d: %w", lineNo, err)
			}
		case "gate":
			if s == nil || len(f) < 4 {
				return nil, fmt.Errorf("schematic: line %d: bad gate", lineNo)
			}
			if err := s.AddGate(f[1], GateType(f[2]), f[3], f[4:]...); err != nil {
				return nil, fmt.Errorf("schematic: line %d: %w", lineNo, err)
			}
		case "inst":
			if s == nil || len(f) != 4 {
				return nil, fmt.Errorf("schematic: line %d: bad inst", lineNo)
			}
			if err := s.AddInstance(f[1], f[2], f[3]); err != nil {
				return nil, fmt.Errorf("schematic: line %d: %w", lineNo, err)
			}
		case "conn":
			if s == nil || len(f) != 4 {
				return nil, fmt.Errorf("schematic: line %d: bad conn", lineNo)
			}
			if err := s.Connect(f[1], f[2], f[3]); err != nil {
				return nil, fmt.Errorf("schematic: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("schematic: line %d: unknown keyword %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schematic: %w", err)
	}
	if s == nil {
		return nil, fmt.Errorf("schematic: empty file")
	}
	return s, nil
}
