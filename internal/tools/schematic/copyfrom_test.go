package schematic

import (
	"bytes"
	"testing"
)

func TestCopyFrom(t *testing.T) {
	src, err := GenRippleAdder("add2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddInstance("u1", "sub", "schematic"); err != nil {
		t.Fatal(err)
	}
	if err := src.Connect("u1", "p", "cin"); err != nil {
		t.Fatal(err)
	}
	dst := New("other")
	if err := dst.AddPort("x", In); err != nil {
		t.Fatal(err)
	}
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	// Content fully replaced, byte-identical format.
	if !bytes.Equal(dst.Format(), src.Format()) {
		t.Fatalf("CopyFrom not exact:\n%s\nvs\n%s", dst.Format(), src.Format())
	}
	if dst.Cell != "add2" {
		t.Fatalf("cell = %q", dst.Cell)
	}
	// The old content is gone.
	if dst.HasNet("x") {
		t.Fatal("old net survived CopyFrom")
	}
	// Deep copy: mutating the source does not affect the copy.
	if err := src.AddNet("postcopy"); err != nil {
		t.Fatal(err)
	}
	if dst.HasNet("postcopy") {
		t.Fatal("CopyFrom aliases source")
	}
	// Nets accessor matches the declaration order.
	nets := dst.Nets()
	if len(nets) == 0 || nets[0] != "cin" {
		t.Fatalf("Nets = %v", nets)
	}
}

func TestCopyFromEmpty(t *testing.T) {
	dst := New("d")
	if err := dst.AddGate("g", Inv, "y", "a"); err == nil {
		t.Fatal("gate on undeclared nets accepted") // sanity
	}
	if err := dst.CopyFrom(New("empty")); err != nil {
		t.Fatal(err)
	}
	p, n, g, i := dst.Stats()
	if p+n+g+i != 0 {
		t.Fatalf("Stats = %d,%d,%d,%d", p, n, g, i)
	}
}
