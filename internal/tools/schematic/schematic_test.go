package schematic

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// halfAdder builds a minimal two-gate schematic.
func halfAdder(t *testing.T) *Schematic {
	t.Helper()
	s := New("ha")
	for _, p := range []struct {
		name string
		dir  PortDir
	}{{"a", In}, {"b", In}, {"sum", Out}, {"carry", Out}} {
		if err := s.AddPort(p.name, p.dir); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddGate("x1", Xor2, "sum", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGate("a1", And2, "carry", "a", "b"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildBasics(t *testing.T) {
	s := halfAdder(t)
	ports, nets, gates, insts := s.Stats()
	if ports != 4 || nets != 4 || gates != 2 || insts != 0 {
		t.Fatalf("Stats = %d,%d,%d,%d", ports, nets, gates, insts)
	}
	if !s.HasNet("sum") || s.HasNet("zz") {
		t.Fatal("HasNet")
	}
	if got := s.Ports(); len(got) != 4 || got[0].Name != "a" || got[0].Dir != In {
		t.Fatalf("Ports = %v", got)
	}
	if got := s.Gates(); len(got) != 2 || got[0].Type != Xor2 {
		t.Fatalf("Gates = %v", got)
	}
	if probs := s.Validate(); len(probs) != 0 {
		t.Fatalf("Validate = %v", probs)
	}
}

func TestBuildErrors(t *testing.T) {
	s := halfAdder(t)
	if err := s.AddPort("a", In); err == nil {
		t.Fatal("duplicate port")
	}
	if err := s.AddPort("", In); err == nil {
		t.Fatal("empty port")
	}
	if err := s.AddNet(""); err == nil {
		t.Fatal("empty net")
	}
	if err := s.AddGate("x1", Inv, "sum", "a"); err == nil {
		t.Fatal("duplicate gate")
	}
	if err := s.AddGate("", Inv, "sum", "a"); err == nil {
		t.Fatal("empty gate name")
	}
	if err := s.AddGate("g9", GateType("bogus"), "sum", "a"); err == nil {
		t.Fatal("unknown gate type")
	}
	if err := s.AddGate("g9", And2, "sum", "a"); err == nil {
		t.Fatal("wrong input count")
	}
	if err := s.AddGate("g9", Inv, "nope", "a"); err == nil {
		t.Fatal("undeclared output")
	}
	if err := s.AddGate("g9", Inv, "sum", "nope"); err == nil {
		t.Fatal("undeclared input")
	}
	if err := s.AddInstance("u1", "alu", "schematic"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInstance("u1", "alu", "schematic"); err == nil {
		t.Fatal("duplicate instance")
	}
	if err := s.AddInstance("", "alu", "schematic"); err == nil {
		t.Fatal("empty instance")
	}
	if err := s.Connect("zz", "p", "a"); err == nil {
		t.Fatal("connect on unknown instance")
	}
	if err := s.Connect("u1", "p", "zz"); err == nil {
		t.Fatal("connect to undeclared net")
	}
	if err := s.Connect("u1", "p", "a"); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFindsMultipleDrivers(t *testing.T) {
	s := New("bad")
	_ = s.AddPort("a", In)
	_ = s.AddPort("y", Out)
	_ = s.AddGate("g1", Inv, "y", "a")
	_ = s.AddGate("g2", Buf, "y", "a") // second driver on y
	probs := s.Validate()
	if len(probs) != 1 || !strings.Contains(probs[0], "2 drivers") {
		t.Fatalf("Validate = %v", probs)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := halfAdder(t)
	if err := s.AddInstance("u1", "sub", "schematic"); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("u1", "x", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("u1", "y", "b"); err != nil {
		t.Fatal(err)
	}
	data := s.Format()
	s2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s2.Format(), data) {
		t.Fatalf("round-trip mismatch:\n%s\nvs\n%s", data, s2.Format())
	}
	if s2.Cell != "ha" {
		t.Fatalf("cell = %q", s2.Cell)
	}
	insts := s2.Instances()
	if len(insts) != 1 || insts[0].Conns["x"] != "a" || insts[0].Conns["y"] != "b" {
		t.Fatalf("instances = %+v", insts)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus line\n",
		"port a in\n",                     // before header
		"schematic x\nport a\n",           // short port
		"schematic x\nport a sideways\n",  // bad dir
		"schematic x\nnet\n",              // short net
		"schematic x\ngate g inv\n",       // short gate
		"schematic x\ninst u1 c\n",        // short inst
		"schematic x\nconn u1 p n\n",      // conn on unknown inst
		"schematic\n",                     // short header
		"schematic x\ngate g bogus y a\n", // unknown type
	}
	for _, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	// Comments and blank lines are fine.
	s, err := Parse([]byte("# comment\nschematic ok\n\nnet n1\n"))
	if err != nil || s.Cell != "ok" {
		t.Fatalf("comment parse: %v", err)
	}
}

func TestPortDirString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Fatal("dir strings")
	}
	if PortDir(9).String() == "" {
		t.Fatal("unknown dir")
	}
	if _, err := parseDir("x"); err == nil {
		t.Fatal("bad dir parsed")
	}
}

func TestGenRippleAdder(t *testing.T) {
	s, err := GenRippleAdder("add8", 8)
	if err != nil {
		t.Fatal(err)
	}
	ports, _, gates, _ := s.Stats()
	// 8 bits: 3 ports per bit + cin + cout = 26 ports; 5 gates per bit.
	if ports != 26 {
		t.Fatalf("ports = %d", ports)
	}
	if gates != 40 {
		t.Fatalf("gates = %d", gates)
	}
	if probs := s.Validate(); len(probs) != 0 {
		t.Fatalf("Validate = %v", probs)
	}
	// Round-trips through the file format.
	if _, err := Parse(s.Format()); err != nil {
		t.Fatal(err)
	}
	if _, err := GenRippleAdder("x", 0); err == nil {
		t.Fatal("0-bit adder accepted")
	}
}

func TestGenRandomLogic(t *testing.T) {
	s, err := GenRandomLogic("rnd", 8, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gates, _ := s.Stats()
	if gates != 101 { // 100 + output buffer
		t.Fatalf("gates = %d", gates)
	}
	if probs := s.Validate(); len(probs) != 0 {
		t.Fatalf("Validate = %v", probs)
	}
	// Deterministic in seed.
	s2, _ := GenRandomLogic("rnd", 8, 100, 42)
	if !bytes.Equal(s.Format(), s2.Format()) {
		t.Fatal("not deterministic")
	}
	s3, _ := GenRandomLogic("rnd", 8, 100, 43)
	if bytes.Equal(s.Format(), s3.Format()) {
		t.Fatal("seed ignored")
	}
	if _, err := GenRandomLogic("x", 0, 1, 1); err == nil {
		t.Fatal("no inputs accepted")
	}
	if _, err := GenRandomLogic("x", 1, 0, 1); err == nil {
		t.Fatal("no gates accepted")
	}
}

func TestGenHierarchy(t *testing.T) {
	cells, err := GenHierarchy("top", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Depth 3, fanout 2: 1 + 2 + 4 = 7 cells.
	if len(cells) != 7 {
		t.Fatalf("cells = %d", len(cells))
	}
	top := cells["top"]
	if top == nil {
		t.Fatal("no top")
	}
	if len(top.Instances()) != 2 {
		t.Fatalf("top instances = %d", len(top.Instances()))
	}
	// Leaves contain the DFF.
	leaf := cells["top_c0_c0"]
	if leaf == nil {
		t.Fatal("no leaf")
	}
	if len(leaf.Gates()) != 2 {
		t.Fatalf("leaf gates = %d", len(leaf.Gates()))
	}
	// Every generated cell parses back.
	for name, c := range cells {
		if _, err := Parse(c.Format()); err != nil {
			t.Errorf("cell %s: %v", name, err)
		}
	}
	if _, err := GenHierarchy("x", 0, 1); err == nil {
		t.Fatal("bad depth accepted")
	}
}

// Property: Format/Parse round-trip is the identity on generated adders.
func TestPropertyAdderRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		bits := int(n%16) + 1
		s, err := GenRippleAdder("a", bits)
		if err != nil {
			return false
		}
		s2, err := Parse(s.Format())
		if err != nil {
			return false
		}
		return bytes.Equal(s.Format(), s2.Format())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// Property: random logic of any seed validates cleanly (single driver per
// net, acyclic wiring by construction).
func TestPropertyRandomLogicValid(t *testing.T) {
	f := func(seed uint64, g uint8) bool {
		gates := int(g%64) + 1
		s, err := GenRandomLogic("r", 4, gates, seed)
		if err != nil {
			return false
		}
		return len(s.Validate()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
