package schematic

import "fmt"

// Synthetic design generators. The paper's performance discussion
// (section 3.6) hinges on design size — "while the time delay for small
// designs is acceptable, more complex and realistic designs may cause
// problems" — so the benchmark harness needs parametric workloads whose
// file sizes grow with a size knob.

// GenRippleAdder builds an n-bit ripple-carry adder out of the primitive
// gate library: full adders from xor2/and2/or2. Ports: a<i>, b<i>, cin,
// s<i>, cout.
func GenRippleAdder(cell string, bits int) (*Schematic, error) {
	if bits < 1 {
		return nil, fmt.Errorf("schematic: adder needs at least 1 bit")
	}
	s := New(cell)
	must := func(err error) error { return err }
	if err := must(s.AddPort("cin", In)); err != nil {
		return nil, err
	}
	for i := 0; i < bits; i++ {
		if err := s.AddPort(fmt.Sprintf("a%d", i), In); err != nil {
			return nil, err
		}
		if err := s.AddPort(fmt.Sprintf("b%d", i), In); err != nil {
			return nil, err
		}
		if err := s.AddPort(fmt.Sprintf("s%d", i), Out); err != nil {
			return nil, err
		}
	}
	if err := s.AddPort("cout", Out); err != nil {
		return nil, err
	}
	carry := "cin"
	for i := 0; i < bits; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		axb := fmt.Sprintf("axb%d", i)
		ab := fmt.Sprintf("ab%d", i)
		ac := fmt.Sprintf("ac%d", i)
		var cnext string
		if i == bits-1 {
			cnext = "cout"
		} else {
			cnext = fmt.Sprintf("c%d", i)
			if err := s.AddNet(cnext); err != nil {
				return nil, err
			}
		}
		for _, n := range []string{axb, ab, ac} {
			if err := s.AddNet(n); err != nil {
				return nil, err
			}
		}
		if err := s.AddGate(fmt.Sprintf("x1_%d", i), Xor2, axb, a, b); err != nil {
			return nil, err
		}
		if err := s.AddGate(fmt.Sprintf("x2_%d", i), Xor2, fmt.Sprintf("s%d", i), axb, carry); err != nil {
			return nil, err
		}
		if err := s.AddGate(fmt.Sprintf("a1_%d", i), And2, ab, a, b); err != nil {
			return nil, err
		}
		if err := s.AddGate(fmt.Sprintf("a2_%d", i), And2, ac, axb, carry); err != nil {
			return nil, err
		}
		if err := s.AddGate(fmt.Sprintf("o1_%d", i), Or2, cnext, ab, ac); err != nil {
			return nil, err
		}
		carry = cnext
	}
	return s, nil
}

// lcg is a tiny deterministic linear congruential generator so workloads
// are reproducible without math/rand seeding ambiguity.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = lcg(uint64(*r)*6364136223846793005 + 1442695040888963407)
	return uint64(*r)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// GenRandomLogic builds a random combinational netlist with the given
// number of primary inputs and gates. Gate inputs are wired to earlier
// nets only, so the result is acyclic by construction. Deterministic in
// seed.
func GenRandomLogic(cell string, inputs, gates int, seed uint64) (*Schematic, error) {
	if inputs < 1 || gates < 1 {
		return nil, fmt.Errorf("schematic: random logic needs inputs and gates")
	}
	s := New(cell)
	rng := lcg(seed ^ 0x9e3779b97f4a7c15) // golden-ratio mix keeps distinct seeds distinct
	rng.next()
	nets := make([]string, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		name := fmt.Sprintf("i%d", i)
		if err := s.AddPort(name, In); err != nil {
			return nil, err
		}
		nets = append(nets, name)
	}
	types := []GateType{Inv, And2, Or2, Nand2, Nor2, Xor2}
	for g := 0; g < gates; g++ {
		out := fmt.Sprintf("n%d", g)
		if err := s.AddNet(out); err != nil {
			return nil, err
		}
		t := types[rng.intn(len(types))]
		nIn, err := GateInputs(t)
		if err != nil {
			return nil, err
		}
		ins := make([]string, nIn)
		for i := range ins {
			ins[i] = nets[rng.intn(len(nets))]
		}
		if err := s.AddGate(fmt.Sprintf("g%d", g), t, out, ins...); err != nil {
			return nil, err
		}
		nets = append(nets, out)
	}
	// Expose the last net as the primary output.
	if err := s.AddPort("out", Out); err != nil {
		return nil, err
	}
	if err := s.AddGate("gout", Buf, "out", nets[len(nets)-1]); err != nil {
		return nil, err
	}
	return s, nil
}

// GenHierarchy builds a tree-shaped hierarchical design: each non-leaf
// cell instantiates fanout children, depth levels deep. Returns the
// schematics keyed by cell name; the root is named cell. Leaf cells hold a
// small amount of real logic. The view of every instance is "schematic".
func GenHierarchy(cell string, depth, fanout int) (map[string]*Schematic, error) {
	if depth < 1 || fanout < 1 {
		return nil, fmt.Errorf("schematic: hierarchy needs depth and fanout")
	}
	out := map[string]*Schematic{}
	var build func(name string, level int) error
	build = func(name string, level int) error {
		s := New(name)
		if err := s.AddPort("clk", In); err != nil {
			return err
		}
		if level == depth {
			// Leaf: a DFF and an inverter.
			if err := s.AddPort("d", In); err != nil {
				return err
			}
			if err := s.AddPort("q", Out); err != nil {
				return err
			}
			if err := s.AddNet("qi"); err != nil {
				return err
			}
			if err := s.AddGate("ff", Dff, "qi", "d", "clk"); err != nil {
				return err
			}
			if err := s.AddGate("inv", Inv, "q", "qi"); err != nil {
				return err
			}
			out[name] = s
			return nil
		}
		for i := 0; i < fanout; i++ {
			childName := fmt.Sprintf("%s_c%d", name, i)
			inst := fmt.Sprintf("u%d", i)
			if err := s.AddInstance(inst, childName, "schematic"); err != nil {
				return err
			}
			if err := s.Connect(inst, "clk", "clk"); err != nil {
				return err
			}
			if err := build(childName, level+1); err != nil {
				return err
			}
		}
		out[name] = s
		return nil
	}
	if err := build(cell, 1); err != nil {
		return nil, err
	}
	return out, nil
}
