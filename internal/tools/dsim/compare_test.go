package dsim

import (
	"strings"
	"testing"

	"repro/internal/tools/schematic"
)

func TestCompareWavesIdentical(t *testing.T) {
	s := schematic.New("c")
	_ = s.AddPort("a", schematic.In)
	_ = s.AddPort("y", schematic.Out)
	_ = s.AddGate("g", schematic.Inv, "y", "a")
	c, err := Flatten(s, MapResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		sim := NewSimulator(c)
		_ = sim.SetAt(0, "a", L0)
		_ = sim.SetAt(10, "a", L1)
		sim.Run(20)
		return sim.DumpWaves()
	}
	golden := run()
	if diffs := CompareWaves(golden, run()); len(diffs) != 0 {
		t.Fatalf("identical runs differ: %v", diffs)
	}
}

func TestCompareWavesDiffs(t *testing.T) {
	golden := []byte("0 a 0\n5 y 1\n10 a 1\n")
	// y changed value, a's change at 10 missing, extra change at 15.
	got := []byte("0 a 0\n5 y 0\n15 b x\n")
	diffs := CompareWaves(golden, got)
	if len(diffs) != 3 {
		t.Fatalf("diffs = %v", diffs)
	}
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"at 5 y: golden 1, got 0", "missing change at 10 a", "extra change at 15 b"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diffs missing %q:\n%s", want, joined)
		}
	}
	// Malformed lines are ignored rather than crashing.
	if diffs := CompareWaves([]byte("bogus\n"), []byte("")); len(diffs) != 0 {
		t.Fatalf("malformed line produced diffs: %v", diffs)
	}
}

func TestGoldenWaveformRegression(t *testing.T) {
	// The realistic use: an adder's golden waves vs a re-run after a
	// (simulated) library change that alters behaviour.
	s, err := schematic.GenRippleAdder("add2", 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Flatten(s, MapResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	drive := func(a0 Logic) []byte {
		sim := NewSimulator(c)
		for _, n := range []string{"a0", "a1", "b0", "b1", "cin"} {
			_ = sim.Set(n, L0)
		}
		_ = sim.Set("a0", a0)
		sim.Run(200)
		return sim.DumpWaves()
	}
	golden := drive(L1)
	if diffs := CompareWaves(golden, drive(L1)); len(diffs) != 0 {
		t.Fatalf("regression in identical run: %v", diffs)
	}
	if diffs := CompareWaves(golden, drive(L0)); len(diffs) == 0 {
		t.Fatal("behavioural change not detected")
	}
}
