package dsim

import (
	"fmt"
	"sort"

	"repro/internal/tools/schematic"
)

// Resolver loads the schematic of an instantiated cellview during
// flattening. The hybrid framework backs this with FMCAD library reads (or
// JCF copy-outs); tests back it with in-memory maps.
type Resolver func(cell, view string) (*schematic.Schematic, error)

// gate is a flattened primitive gate operating on net indices.
type gate struct {
	name string
	typ  schematic.GateType
	out  int
	ins  []int
	// lastClk tracks the previous clock value for DFF edge detection.
	lastClk Logic
}

// Circuit is a flattened gate-level netlist ready for simulation.
type Circuit struct {
	netIdx   map[string]int
	netNames []string
	gates    []gate
	// fanout[i] lists gates whose inputs include net i.
	fanout [][]int
}

// NumNets returns the flattened net count.
func (c *Circuit) NumNets() int { return len(c.netNames) }

// NumGates returns the flattened gate count.
func (c *Circuit) NumGates() int { return len(c.gates) }

// Nets returns all flattened net names, sorted.
func (c *Circuit) Nets() []string {
	out := append([]string(nil), c.netNames...)
	sort.Strings(out)
	return out
}

// HasNet reports whether a flattened net exists.
func (c *Circuit) HasNet(name string) bool {
	_, ok := c.netIdx[name]
	return ok
}

// MaxFlattenDepth bounds hierarchy recursion as a cycle guard.
const MaxFlattenDepth = 64

// Flatten expands top hierarchically into a flat circuit. Hierarchical
// nets are named instPath/net; nets wired to parent nets through instance
// connections collapse onto the parent net. Unconnected child ports keep
// their hierarchical name (and float at X unless driven inside).
func Flatten(top *schematic.Schematic, resolve Resolver) (*Circuit, error) {
	c := &Circuit{netIdx: map[string]int{}}
	if err := c.addCell(top, "", resolve, 0); err != nil {
		return nil, err
	}
	c.fanout = make([][]int, len(c.netNames))
	for gi := range c.gates {
		for _, in := range c.gates[gi].ins {
			c.fanout[in] = append(c.fanout[in], gi)
		}
	}
	return c, nil
}

func (c *Circuit) netID(name string) int {
	if id, ok := c.netIdx[name]; ok {
		return id
	}
	id := len(c.netNames)
	c.netIdx[name] = id
	c.netNames = append(c.netNames, name)
	return id
}

// addCell flattens one schematic under the given instance prefix ("" for
// the top). boundary maps child port names to parent net names.
func (c *Circuit) addCell(s *schematic.Schematic, prefix string, resolve Resolver, depth int) error {
	return c.addCellBound(s, prefix, map[string]string{}, resolve, depth)
}

func (c *Circuit) addCellBound(s *schematic.Schematic, prefix string, boundary map[string]string, resolve Resolver, depth int) error {
	if depth > MaxFlattenDepth {
		return fmt.Errorf("dsim: hierarchy deeper than %d (cycle?) at %q", MaxFlattenDepth, prefix)
	}
	local := func(net string) string {
		if bound, ok := boundary[net]; ok {
			return bound
		}
		if prefix == "" {
			return net
		}
		return prefix + "/" + net
	}
	for _, g := range s.Gates() {
		fg := gate{
			name:    joinName(prefix, g.Name),
			typ:     g.Type,
			out:     c.netID(local(g.Out)),
			lastClk: LX,
		}
		for _, in := range g.Ins {
			fg.ins = append(fg.ins, c.netID(local(in)))
		}
		c.gates = append(c.gates, fg)
	}
	// Make sure declared nets exist even when no gate touches them.
	for _, n := range s.Nets() {
		c.netID(local(n))
	}
	for _, inst := range s.Instances() {
		child, err := resolve(inst.Cell, inst.View)
		if err != nil {
			return fmt.Errorf("dsim: resolving %s/%s for instance %q: %w", inst.Cell, inst.View, inst.Name, err)
		}
		childBoundary := map[string]string{}
		for port, net := range inst.Conns {
			childBoundary[port] = local(net)
		}
		if err := c.addCellBound(child, joinName(prefix, inst.Name), childBoundary, resolve, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func joinName(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "/" + name
}

// MapResolver builds a Resolver over an in-memory cell table, ignoring the
// view name (every cell has exactly one schematic).
func MapResolver(cells map[string]*schematic.Schematic) Resolver {
	return func(cell, view string) (*schematic.Schematic, error) {
		s, ok := cells[cell]
		if !ok {
			return nil, fmt.Errorf("dsim: no schematic for cell %q", cell)
		}
		return s, nil
	}
}
