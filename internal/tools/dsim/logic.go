// Package dsim implements the FMCAD digital simulator: a four-valued
// (0/1/X/Z), event-driven, gate-level logic simulator — the third tool the
// paper encapsulates into the hybrid framework (section 2.4). It consumes
// schematics from the schematic entry tool, flattens their hierarchy, and
// runs stimulus files to produce waveforms.
package dsim

import "fmt"

// Logic is a four-valued signal level.
type Logic uint8

// The four signal levels.
const (
	L0 Logic = iota // strong 0
	L1              // strong 1
	LX              // unknown
	LZ              // high impedance
)

// String returns "0", "1", "x" or "z".
func (v Logic) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	case LX:
		return "x"
	case LZ:
		return "z"
	}
	return "?"
}

// ParseLogic reads one signal level character.
func ParseLogic(s string) (Logic, error) {
	switch s {
	case "0":
		return L0, nil
	case "1":
		return L1, nil
	case "x", "X":
		return LX, nil
	case "z", "Z":
		return LZ, nil
	}
	return LX, fmt.Errorf("dsim: bad logic value %q", s)
}

// in01 reports whether v is a driven binary value; X and Z are not.
func in01(v Logic) bool { return v == L0 || v == L1 }

// evalNot returns the inverse with X propagation (Z inputs read as X).
func evalNot(a Logic) Logic {
	switch a {
	case L0:
		return L1
	case L1:
		return L0
	}
	return LX
}

// evalAnd implements 4-valued AND: 0 dominates, otherwise X wins over 1.
func evalAnd(a, b Logic) Logic {
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return LX
}

// evalOr implements 4-valued OR: 1 dominates.
func evalOr(a, b Logic) Logic {
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return LX
}

// evalXor implements 4-valued XOR: any undriven input poisons the output.
func evalXor(a, b Logic) Logic {
	if !in01(a) || !in01(b) {
		return LX
	}
	if a != b {
		return L1
	}
	return L0
}
