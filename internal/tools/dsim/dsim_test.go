package dsim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tools/schematic"
)

// flatten builds a circuit from a single flat schematic.
func flatten(t *testing.T, s *schematic.Schematic) *Circuit {
	t.Helper()
	c, err := Flatten(s, MapResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// run drives inputs and returns the settled value of a net.
func runGate(t *testing.T, typ schematic.GateType, a, b Logic) Logic {
	t.Helper()
	s := schematic.New("g")
	if err := s.AddPort("a", schematic.In); err != nil {
		t.Fatal(err)
	}
	nIn, err := schematic.GateInputs(typ)
	if err != nil {
		t.Fatal(err)
	}
	ins := []string{"a"}
	if nIn == 2 {
		if err := s.AddPort("b", schematic.In); err != nil {
			t.Fatal(err)
		}
		ins = append(ins, "b")
	}
	if err := s.AddPort("y", schematic.Out); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGate("g1", typ, "y", ins...); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(flatten(t, s))
	if err := sim.Set("a", a); err != nil {
		t.Fatal(err)
	}
	if nIn == 2 {
		if err := sim.Set("b", b); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(100)
	v, err := sim.Value("y")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGateTruthTables(t *testing.T) {
	cases := []struct {
		typ  schematic.GateType
		a, b Logic
		want Logic
	}{
		{schematic.Inv, L0, L0, L1},
		{schematic.Inv, L1, L0, L0},
		{schematic.Inv, LX, L0, LX},
		{schematic.Inv, LZ, L0, LX},
		{schematic.Buf, L1, L0, L1},
		{schematic.Buf, LZ, L0, LX},
		{schematic.And2, L1, L1, L1},
		{schematic.And2, L1, L0, L0},
		{schematic.And2, L0, LX, L0}, // 0 dominates X
		{schematic.And2, L1, LX, LX},
		{schematic.Or2, L0, L0, L0},
		{schematic.Or2, L1, LX, L1}, // 1 dominates X
		{schematic.Or2, L0, LX, LX},
		{schematic.Nand2, L1, L1, L0},
		{schematic.Nand2, L0, LX, L1},
		{schematic.Nor2, L0, L0, L1},
		{schematic.Nor2, L1, LX, L0},
		{schematic.Xor2, L1, L0, L1},
		{schematic.Xor2, L1, L1, L0},
		{schematic.Xor2, L1, LX, LX},
		{schematic.Xnor2, L1, L1, L1},
		{schematic.Xnor2, L1, L0, L0},
		{schematic.Xnor2, LZ, L0, LX},
	}
	for _, c := range cases {
		if got := runGate(t, c.typ, c.a, c.b); got != c.want {
			t.Errorf("%s(%s,%s) = %s, want %s", c.typ, c.a, c.b, got, c.want)
		}
	}
}

func TestLogicStrings(t *testing.T) {
	for v, want := range map[Logic]string{L0: "0", L1: "1", LX: "x", LZ: "z"} {
		if v.String() != want {
			t.Errorf("%d.String() = %s", v, v.String())
		}
	}
	if Logic(9).String() != "?" {
		t.Error("unknown logic string")
	}
	for s, want := range map[string]Logic{"0": L0, "1": L1, "x": LX, "X": LX, "z": LZ, "Z": LZ} {
		got, err := ParseLogic(s)
		if err != nil || got != want {
			t.Errorf("ParseLogic(%q) = %s, %v", s, got, err)
		}
	}
	if _, err := ParseLogic("q"); err == nil {
		t.Error("bad logic parsed")
	}
}

func TestDffEdgeTriggered(t *testing.T) {
	s := schematic.New("ff")
	_ = s.AddPort("d", schematic.In)
	_ = s.AddPort("clk", schematic.In)
	_ = s.AddPort("q", schematic.Out)
	if err := s.AddGate("ff1", schematic.Dff, "q", "d", "clk"); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(flatten(t, s))
	_ = sim.Set("d", L1)
	_ = sim.Set("clk", L0)
	sim.Run(10)
	if v, _ := sim.Value("q"); v != LX {
		t.Fatalf("q before edge = %s", v)
	}
	// Rising edge captures d.
	_ = sim.SetAt(20, "clk", L1)
	sim.Run(30)
	if v, _ := sim.Value("q"); v != L1 {
		t.Fatalf("q after rising edge = %s", v)
	}
	// d changes while clk high: q holds.
	_ = sim.SetAt(40, "d", L0)
	sim.Run(50)
	if v, _ := sim.Value("q"); v != L1 {
		t.Fatalf("q after d change = %s", v)
	}
	// Falling edge: q holds.
	_ = sim.SetAt(60, "clk", L0)
	sim.Run(70)
	if v, _ := sim.Value("q"); v != L1 {
		t.Fatalf("q after falling edge = %s", v)
	}
	// Next rising edge captures new d.
	_ = sim.SetAt(80, "clk", L1)
	sim.Run(90)
	if v, _ := sim.Value("q"); v != L0 {
		t.Fatalf("q after second edge = %s", v)
	}
}

func TestAdderComputes(t *testing.T) {
	s, err := schematic.GenRippleAdder("add4", 4)
	if err != nil {
		t.Fatal(err)
	}
	c := flatten(t, s)
	// 4-bit adder: check a few sums exhaustively derived.
	add := func(a, b, cin uint) (sum uint, cout uint) {
		sim := NewSimulator(c)
		for i := 0; i < 4; i++ {
			av, bv := L0, L0
			if a&(1<<i) != 0 {
				av = L1
			}
			if b&(1<<i) != 0 {
				bv = L1
			}
			if err := sim.Set(fmtNet("a", i), av); err != nil {
				t.Fatal(err)
			}
			if err := sim.Set(fmtNet("b", i), bv); err != nil {
				t.Fatal(err)
			}
		}
		cv := L0
		if cin != 0 {
			cv = L1
		}
		_ = sim.Set("cin", cv)
		sim.Run(1000)
		for i := 0; i < 4; i++ {
			v, err := sim.Value(fmtNet("s", i))
			if err != nil {
				t.Fatal(err)
			}
			if v == L1 {
				sum |= 1 << i
			} else if v != L0 {
				t.Fatalf("s%d = %s", i, v)
			}
		}
		v, _ := sim.Value("cout")
		if v == L1 {
			cout = 1
		}
		return sum, cout
	}
	for _, c := range []struct{ a, b, cin uint }{
		{0, 0, 0}, {1, 1, 0}, {5, 3, 0}, {15, 15, 1}, {7, 8, 0}, {9, 6, 1},
	} {
		sum, cout := add(c.a, c.b, c.cin)
		want := c.a + c.b + c.cin
		if sum != want&0xF || cout != (want>>4)&1 {
			t.Errorf("add(%d,%d,%d) = %d carry %d, want %d carry %d",
				c.a, c.b, c.cin, sum, cout, want&0xF, (want>>4)&1)
		}
	}
}

func fmtNet(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestHierarchicalFlatten(t *testing.T) {
	// top instantiates two inverters in series through a sub cell.
	sub := schematic.New("sub")
	_ = sub.AddPort("in", schematic.In)
	_ = sub.AddPort("out", schematic.Out)
	if err := sub.AddGate("i1", schematic.Inv, "out", "in"); err != nil {
		t.Fatal(err)
	}
	top := schematic.New("top")
	_ = top.AddPort("a", schematic.In)
	_ = top.AddPort("y", schematic.Out)
	_ = top.AddNet("mid")
	_ = top.AddInstance("u1", "sub", "schematic")
	_ = top.AddInstance("u2", "sub", "schematic")
	_ = top.Connect("u1", "in", "a")
	_ = top.Connect("u1", "out", "mid")
	_ = top.Connect("u2", "in", "mid")
	_ = top.Connect("u2", "out", "y")

	c, err := Flatten(top, MapResolver(map[string]*schematic.Schematic{"sub": sub}))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 {
		t.Fatalf("gates = %d", c.NumGates())
	}
	// Boundary nets collapsed; internal nets are hierarchical.
	if !c.HasNet("a") || !c.HasNet("mid") || !c.HasNet("y") {
		t.Fatalf("nets = %v", c.Nets())
	}
	sim := NewSimulator(c)
	_ = sim.Set("a", L0)
	sim.Run(10)
	if v, _ := sim.Value("y"); v != L0 {
		t.Fatalf("double inversion of 0 = %s", v)
	}
	_ = sim.SetAt(20, "a", L1)
	sim.Run(30)
	if v, _ := sim.Value("y"); v != L1 {
		t.Fatalf("double inversion of 1 = %s", v)
	}
}

func TestFlattenErrors(t *testing.T) {
	top := schematic.New("top")
	_ = top.AddInstance("u1", "ghost", "schematic")
	if _, err := Flatten(top, MapResolver(nil)); err == nil {
		t.Fatal("missing child accepted")
	}
	// Self-instantiating cell exceeds the depth bound.
	loop := schematic.New("loop")
	_ = loop.AddInstance("u1", "loop", "schematic")
	if _, err := Flatten(loop, MapResolver(map[string]*schematic.Schematic{"loop": loop})); err == nil ||
		!strings.Contains(err.Error(), "deeper") {
		t.Fatal("hierarchy cycle accepted")
	}
}

func TestSimulatorAPIErrors(t *testing.T) {
	s := schematic.New("x")
	_ = s.AddPort("a", schematic.In)
	sim := NewSimulator(flatten(t, s))
	if err := sim.Set("ghost", L1); err == nil {
		t.Fatal("unknown net set")
	}
	if _, err := sim.Value("ghost"); err == nil {
		t.Fatal("unknown net value")
	}
	if _, err := sim.Waveform("ghost"); err == nil {
		t.Fatal("unknown net waveform")
	}
	_ = sim.Set("a", L1)
	sim.Run(10)
	if err := sim.SetAt(5, "a", L0); err == nil {
		t.Fatal("past scheduling accepted")
	}
}

func TestWaveformsAndDump(t *testing.T) {
	s := schematic.New("w")
	_ = s.AddPort("a", schematic.In)
	_ = s.AddPort("y", schematic.Out)
	_ = s.AddGate("g", schematic.Inv, "y", "a")
	sim := NewSimulator(flatten(t, s))
	_ = sim.SetAt(0, "a", L0)
	_ = sim.SetAt(10, "a", L1)
	sim.Run(20)
	wf, err := sim.Waveform("y")
	if err != nil {
		t.Fatal(err)
	}
	if len(wf) != 2 || wf[0].Val != L1 || wf[1].Val != L0 {
		t.Fatalf("waveform = %+v", wf)
	}
	if wf[1].Time != 11 {
		t.Fatalf("inv delay: change at %d, want 11", wf[1].Time)
	}
	dump := string(sim.DumpWaves())
	for _, want := range []string{"0 a 0", "1 y 1", "10 a 1", "11 y 0"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if sim.Events() != 4 {
		t.Fatalf("Events = %d", sim.Events())
	}
	if sim.Now() != 20 {
		t.Fatalf("Now = %d", sim.Now())
	}
}

func TestStimulusParseAndApply(t *testing.T) {
	s := schematic.New("w")
	_ = s.AddPort("a", schematic.In)
	_ = s.AddPort("y", schematic.Out)
	_ = s.AddGate("g", schematic.Inv, "y", "a")
	stim, err := ParseStimulus([]byte(`
# toggle a
at 0 set a 0
at 10 set a 1
run 20
at 30 set a x
run 40
`))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(flatten(t, s))
	n, err := stim.Apply(sim)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("changes = %d", n)
	}
	if v, _ := sim.Value("y"); v != LX {
		t.Fatalf("final y = %s", v)
	}
}

func TestStimulusParseErrors(t *testing.T) {
	for _, src := range []string{
		"at x set a 1\n",
		"at 0 put a 1\n",
		"at 0 set a q\n",
		"at 0 set a\n",
		"run\n",
		"run x\n",
		"bogus\n",
	} {
		if _, err := ParseStimulus([]byte(src)); err == nil {
			t.Errorf("ParseStimulus(%q) succeeded", src)
		}
	}
}

func TestGenClockStimulus(t *testing.T) {
	stim := GenClockStimulus("clk", 10, 40, map[string]Logic{"d": L1})
	parsed, err := ParseStimulus(stim)
	if err != nil {
		t.Fatalf("generated stimulus invalid: %v\n%s", err, stim)
	}
	// Drive a DFF with it.
	s := schematic.New("ff")
	_ = s.AddPort("d", schematic.In)
	_ = s.AddPort("clk", schematic.In)
	_ = s.AddPort("q", schematic.Out)
	_ = s.AddGate("ff1", schematic.Dff, "q", "d", "clk")
	sim := NewSimulator(flatten(t, s))
	if _, err := parsed.Apply(sim); err != nil {
		t.Fatal(err)
	}
	if v, _ := sim.Value("q"); v != L1 {
		t.Fatalf("q = %s", v)
	}
}

func TestHierarchyGeneratorSimulates(t *testing.T) {
	cells, err := schematic.GenHierarchy("top", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Flatten(cells["top"], MapResolver(cells))
	if err != nil {
		t.Fatal(err)
	}
	// 4 leaves x 2 gates.
	if c.NumGates() != 8 {
		t.Fatalf("gates = %d", c.NumGates())
	}
	sim := NewSimulator(c)
	_ = sim.Set("clk", L0)
	sim.Run(5)
	_ = sim.SetAt(10, "clk", L1)
	sim.Run(20)
	// Leaves sampled their (floating-X) d inputs; no crash, X propagates.
	if v, err := sim.Value("u0/u0/q"); err != nil || v != LX {
		t.Fatalf("leaf q = %s, %v", v, err)
	}
}

// Property: a chain of 2k inverters is the identity for driven inputs.
func TestPropertyInverterChain(t *testing.T) {
	f := func(k uint8, bit bool) bool {
		n := (int(k%5) + 1) * 2
		s := schematic.New("chain")
		if err := s.AddPort("in", schematic.In); err != nil {
			return false
		}
		prev := "in"
		for i := 0; i < n; i++ {
			net := "n" + string(rune('a'+i))
			if err := s.AddNet(net); err != nil {
				return false
			}
			if err := s.AddGate("g"+string(rune('a'+i)), schematic.Inv, net, prev); err != nil {
				return false
			}
			prev = net
		}
		c, err := Flatten(s, MapResolver(nil))
		if err != nil {
			return false
		}
		sim := NewSimulator(c)
		v := L0
		if bit {
			v = L1
		}
		if err := sim.Set("in", v); err != nil {
			return false
		}
		sim.Run(uint64(10 * n))
		got, err := sim.Value(prev)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulation is deterministic — same stimulus, same dump.
func TestPropertyDeterministic(t *testing.T) {
	s, err := schematic.GenRandomLogic("r", 4, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Flatten(s, MapResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() string {
		sim := NewSimulator(c)
		for i := 0; i < 4; i++ {
			_ = sim.Set("i"+string(rune('0'+i)), L1)
		}
		sim.Run(1000)
		return string(sim.DumpWaves())
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatal("simulation not deterministic")
	}
}
