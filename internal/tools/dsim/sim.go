package dsim

import (
	"bufio"
	"bytes"
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tools/schematic"
)

// GateDelay is the uniform propagation delay of every gate, in simulator
// time units.
const GateDelay = 1

// Change is one recorded value change on a net.
type Change struct {
	Time uint64
	Val  Logic
}

// event is a scheduled net assignment.
type event struct {
	time uint64
	seq  int // tie-breaker keeping event order deterministic
	net  int
	val  Logic
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator runs one flattened circuit. Not safe for concurrent use (one
// simulator per goroutine, like the original single-user tool).
type Simulator struct {
	c      *Circuit
	values []Logic
	queue  eventHeap
	seq    int
	now    uint64
	waves  map[int][]Change
	// eventCount is the number of processed net changes.
	eventCount int64
}

// NewSimulator initializes all nets to X.
func NewSimulator(c *Circuit) *Simulator {
	values := make([]Logic, c.NumNets())
	for i := range values {
		values[i] = LX
	}
	return &Simulator{c: c, values: values, waves: map[int][]Change{}}
}

// Now returns the current simulation time.
func (s *Simulator) Now() uint64 { return s.now }

// Events returns the number of processed value changes.
func (s *Simulator) Events() int64 { return s.eventCount }

// Value returns the current value of a net.
func (s *Simulator) Value(net string) (Logic, error) {
	id, ok := s.c.netIdx[net]
	if !ok {
		return LX, fmt.Errorf("dsim: unknown net %q", net)
	}
	return s.values[id], nil
}

// Set schedules a stimulus assignment at the current time.
func (s *Simulator) Set(net string, v Logic) error {
	return s.SetAt(s.now, net, v)
}

// SetAt schedules a stimulus assignment at an absolute time >= now.
func (s *Simulator) SetAt(t uint64, net string, v Logic) error {
	id, ok := s.c.netIdx[net]
	if !ok {
		return fmt.Errorf("dsim: unknown net %q", net)
	}
	if t < s.now {
		return fmt.Errorf("dsim: cannot schedule at %d, now is %d", t, s.now)
	}
	s.schedule(t, id, v)
	return nil
}

func (s *Simulator) schedule(t uint64, net int, v Logic) {
	s.seq++
	heap.Push(&s.queue, event{time: t, seq: s.seq, net: net, val: v})
}

// Run processes events until the queue is empty or simulation time would
// exceed `until`. It returns the number of value changes processed in this
// call.
func (s *Simulator) Run(until uint64) int64 {
	var processed int64
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if next.time > until {
			break
		}
		e := heap.Pop(&s.queue).(event)
		s.now = e.time
		if s.values[e.net] == e.val {
			continue // no change, no propagation
		}
		s.values[e.net] = e.val
		s.eventCount++
		processed++
		s.waves[e.net] = append(s.waves[e.net], Change{Time: e.time, Val: e.val})
		for _, gi := range s.c.fanout[e.net] {
			s.evalGate(gi)
		}
	}
	if s.now < until {
		s.now = until
	}
	return processed
}

// evalGate computes a gate's output and schedules the change after
// GateDelay. The DFF is edge-triggered: it samples d only on a 0→1 clock
// transition.
func (s *Simulator) evalGate(gi int) {
	g := &s.c.gates[gi]
	in := func(i int) Logic { return s.values[g.ins[i]] }
	var out Logic
	switch g.typ {
	case schematic.Inv:
		out = evalNot(in(0))
	case schematic.Buf:
		v := in(0)
		if !in01(v) {
			v = LX
		}
		out = v
	case schematic.And2:
		out = evalAnd(in(0), in(1))
	case schematic.Or2:
		out = evalOr(in(0), in(1))
	case schematic.Nand2:
		out = evalNot(evalAnd(in(0), in(1)))
	case schematic.Nor2:
		out = evalNot(evalOr(in(0), in(1)))
	case schematic.Xor2:
		out = evalXor(in(0), in(1))
	case schematic.Xnor2:
		out = evalNot(evalXor(in(0), in(1)))
	case schematic.Dff:
		clk := in(1)
		rising := g.lastClk == L0 && clk == L1
		g.lastClk = clk
		if !rising {
			return
		}
		out = in(0)
		if !in01(out) {
			out = LX
		}
	default:
		out = LX
	}
	s.schedule(s.now+GateDelay, g.out, out)
}

// Waveform returns the recorded changes of a net.
func (s *Simulator) Waveform(net string) ([]Change, error) {
	id, ok := s.c.netIdx[net]
	if !ok {
		return nil, fmt.Errorf("dsim: unknown net %q", net)
	}
	return append([]Change(nil), s.waves[id]...), nil
}

// DumpWaves renders all recorded changes as deterministic text, one
// "time net value" line per change, ordered by time then net name — the
// tool's waveform output file.
func (s *Simulator) DumpWaves() []byte {
	type row struct {
		t   uint64
		net string
		val Logic
	}
	var rows []row
	for id, changes := range s.waves {
		for _, ch := range changes {
			rows = append(rows, row{t: ch.Time, net: s.c.netNames[id], val: ch.Val})
		}
	}
	// Stable sort: a net can change twice at one timestamp (e.g. two
	// stimulus assignments); per-net chronological order must survive.
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t < rows[j].t
		}
		return rows[i].net < rows[j].net
	})
	var b bytes.Buffer
	for _, r := range rows {
		fmt.Fprintf(&b, "%d %s %s\n", r.t, r.net, r.val)
	}
	return b.Bytes()
}

// CompareWaves diffs two waveform dumps produced by DumpWaves, returning
// a description of each difference (missing, extra or changed lines).
// Empty result means identical waveforms — the golden-waveform regression
// check design teams run after tool or library changes.
func CompareWaves(golden, got []byte) []string {
	parse := func(data []byte) map[string]string {
		out := map[string]string{}
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			f := strings.Fields(sc.Text())
			if len(f) != 3 {
				continue
			}
			out[f[0]+" "+f[1]] = f[2] // "time net" -> value
		}
		return out
	}
	g, h := parse(golden), parse(got)
	var diffs []string
	for key, want := range g {
		if have, ok := h[key]; !ok {
			diffs = append(diffs, fmt.Sprintf("missing change at %s (golden %s)", key, want))
		} else if have != want {
			diffs = append(diffs, fmt.Sprintf("at %s: golden %s, got %s", key, want, have))
		}
	}
	for key, have := range h {
		if _, ok := g[key]; !ok {
			diffs = append(diffs, fmt.Sprintf("extra change at %s (got %s)", key, have))
		}
	}
	sort.Strings(diffs)
	return diffs
}

// --- stimulus files -----------------------------------------------------

// Stimulus is a parsed stimulus program.
type Stimulus struct {
	ops []stimOp
}

type stimOp struct {
	// kind is "set" or "run".
	kind string
	time uint64 // for set: absolute time; for run: run-until time
	net  string
	val  Logic
}

// ParseStimulus reads the stimulus format:
//
//	at <time> set <net> <0|1|x|z>
//	run <until>
//
// Lines may be blank or start with # for comments.
func ParseStimulus(data []byte) (*Stimulus, error) {
	st := &Stimulus{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "at":
			if len(f) != 5 || f[2] != "set" {
				return nil, fmt.Errorf("dsim: stimulus line %d: want 'at <t> set <net> <v>'", lineNo)
			}
			t, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dsim: stimulus line %d: %w", lineNo, err)
			}
			v, err := ParseLogic(f[4])
			if err != nil {
				return nil, fmt.Errorf("dsim: stimulus line %d: %w", lineNo, err)
			}
			st.ops = append(st.ops, stimOp{kind: "set", time: t, net: f[3], val: v})
		case "run":
			if len(f) != 2 {
				return nil, fmt.Errorf("dsim: stimulus line %d: want 'run <until>'", lineNo)
			}
			t, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dsim: stimulus line %d: %w", lineNo, err)
			}
			st.ops = append(st.ops, stimOp{kind: "run", time: t})
		default:
			return nil, fmt.Errorf("dsim: stimulus line %d: unknown keyword %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// Apply runs the stimulus program on a simulator, returning the total
// number of value changes processed.
func (st *Stimulus) Apply(sim *Simulator) (int64, error) {
	var total int64
	for _, op := range st.ops {
		switch op.kind {
		case "set":
			if err := sim.SetAt(op.time, op.net, op.val); err != nil {
				return total, err
			}
		case "run":
			total += sim.Run(op.time)
		}
	}
	return total, nil
}

// GenClockStimulus builds a stimulus that toggles clk with the given
// period up to tmax and drives the listed data nets to fixed values at
// time 0.
func GenClockStimulus(clkNet string, period, tmax uint64, fixed map[string]Logic) []byte {
	var b bytes.Buffer
	nets := make([]string, 0, len(fixed))
	for n := range fixed {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	for _, n := range nets {
		fmt.Fprintf(&b, "at 0 set %s %s\n", n, fixed[n])
	}
	v := "0"
	for t := uint64(0); t <= tmax; t += period / 2 {
		fmt.Fprintf(&b, "at %d set %s %s\n", t, clkNet, v)
		if v == "0" {
			v = "1"
		} else {
			v = "0"
		}
		if period == 0 {
			break
		}
	}
	fmt.Fprintf(&b, "run %d\n", tmax+period)
	return b.Bytes()
}
