package layout

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tools/schematic"
)

func TestAddAndQuery(t *testing.T) {
	l := New("alu")
	if err := l.AddRect("metal1", 10, 0, 0, 5, "n1"); err != nil {
		t.Fatal(err) // normalized
	}
	if err := l.AddRect("poly", 0, 0, 4, 4, ""); err != nil {
		t.Fatal(err)
	}
	if err := l.AddLabel("text", 1, 2, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := l.AddInstance("u1", "sub", "layout", 100, 200); err != nil {
		t.Fatal(err)
	}
	rects := l.Rects()
	if len(rects) != 2 || rects[0].X1 != 0 || rects[0].X2 != 10 {
		t.Fatalf("rects = %+v", rects)
	}
	if rects[0].Width() != 10 || rects[0].Height() != 5 || rects[0].Area() != 50 {
		t.Fatal("geometry accessors")
	}
	if got := l.Layers(); len(got) != 3 || got[0] != "metal1" || got[1] != "poly" || got[2] != "text" {
		t.Fatalf("Layers = %v", got)
	}
	x1, y1, x2, y2, ok := l.BBox()
	if !ok || x1 != 0 || y1 != 0 || x2 != 10 || y2 != 5 {
		t.Fatalf("BBox = %d,%d,%d,%d,%t", x1, y1, x2, y2, ok)
	}
	if l.LayerArea("metal1") != 50 || l.LayerArea("poly") != 16 || l.LayerArea("nope") != 0 {
		t.Fatal("LayerArea")
	}
	if got := l.NetShapes("n1"); len(got) != 1 {
		t.Fatalf("NetShapes = %v", got)
	}
	if got := l.NetShapes("zz"); len(got) != 0 {
		t.Fatal("NetShapes for unknown net")
	}
	r, lb, in := l.Stats()
	if r != 2 || lb != 1 || in != 1 {
		t.Fatalf("Stats = %d,%d,%d", r, lb, in)
	}
}

func TestAddErrors(t *testing.T) {
	l := New("x")
	if err := l.AddRect("", 0, 0, 1, 1, ""); err == nil {
		t.Fatal("empty layer")
	}
	if err := l.AddRect("m", 0, 0, 0, 5, ""); err == nil {
		t.Fatal("zero-area rect")
	}
	if err := l.AddLabel("", 0, 0, "t"); err == nil {
		t.Fatal("empty label layer")
	}
	if err := l.AddLabel("m", 0, 0, ""); err == nil {
		t.Fatal("empty label text")
	}
	if err := l.AddInstance("", "c", "v", 0, 0); err == nil {
		t.Fatal("empty instance")
	}
	if err := l.AddInstance("u", "c", "v", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.AddInstance("u", "c", "v", 0, 0); err == nil {
		t.Fatal("duplicate instance")
	}
	_, _, _, _, ok := New("e").BBox()
	if ok {
		t.Fatal("BBox of empty layout ok")
	}
}

func TestDRC(t *testing.T) {
	l := New("x")
	// A 2-wide rect violates min-width 3.
	if err := l.AddRect("metal1", 0, 0, 2, 10, "a"); err != nil {
		t.Fatal(err)
	}
	// A close neighbour on a different net violates spacing 3.
	if err := l.AddRect("metal1", 4, 0, 10, 10, "b"); err != nil {
		t.Fatal(err)
	}
	// Same-net shapes may abut freely.
	if err := l.AddRect("metal1", 10, 0, 16, 10, "b"); err != nil {
		t.Fatal(err)
	}
	// Different layer never interacts.
	if err := l.AddRect("poly", 3, 0, 9, 10, "c"); err != nil {
		t.Fatal(err)
	}
	vios := l.DRC(3, 3)
	var width, space int
	for _, v := range vios {
		switch v.Rule {
		case "min-width":
			width++
		case "spacing":
			space++
		}
	}
	if width != 1 {
		t.Fatalf("min-width violations = %d: %+v", width, vios)
	}
	if space != 1 {
		t.Fatalf("spacing violations = %d: %+v", space, vios)
	}
	// Clean layout has no violations.
	clean := New("c")
	_ = clean.AddRect("m", 0, 0, 10, 10, "a")
	_ = clean.AddRect("m", 20, 0, 30, 10, "b")
	if got := clean.DRC(3, 3); len(got) != 0 {
		t.Fatalf("clean DRC = %v", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	l := New("alu")
	_ = l.AddRect("metal1", 0, 0, 10, 5, "n1")
	_ = l.AddRect("poly", 0, 0, 4, 4, "")
	_ = l.AddLabel("text", 1, 2, "multi word label")
	_ = l.AddInstance("u1", "sub", "layout", 100, 200)
	data := l.Format()
	l2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l2.Format(), data) {
		t.Fatalf("round-trip mismatch:\n%s\nvs\n%s", data, l2.Format())
	}
	ins := l2.Instances()
	if len(ins) != 1 || ins[0].X != 100 || ins[0].Y != 200 {
		t.Fatalf("instances = %+v", ins)
	}
	if l2.Labels()[0].Text != "multi word label" {
		t.Fatalf("label = %+v", l2.Labels()[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"rect m 0 0 1 1\n",                 // before header
		"layout\n",                         // short header
		"layout x\nrect m 0 0 1\n",         // short rect
		"layout x\nrect m a 0 1 1\n",       // bad coord
		"layout x\nrect m 0 0 0 1\n",       // zero area
		"layout x\nlabel m 0 0\n",          // short label
		"layout x\nlabel m a 0 t\n",        // bad label coord
		"layout x\ninst u c\n",             // short inst
		"layout x\nat u 0 0\n",             // at before inst
		"layout x\ninst u c v\nat u a 0\n", // bad at coord
		"layout x\nwhatever\n",             // unknown keyword
	}
	for _, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	if _, err := Parse([]byte("# c\nlayout ok\n")); err != nil {
		t.Fatal(err)
	}
}

func TestFromSchematic(t *testing.T) {
	s, err := schematic.GenRippleAdder("add4", 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := FromSchematic(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.Cell != "add4" {
		t.Fatalf("cell = %q", l.Cell)
	}
	_, nets, gates, _ := s.Stats()
	rects, labels, _ := l.Stats()
	// 3 rects per gate + 1 metal2 track per net.
	if rects != gates*3+nets {
		t.Fatalf("rects = %d, want %d", rects, gates*3+nets)
	}
	if labels != gates {
		t.Fatalf("labels = %d", labels)
	}
	// Cross-probe works: the first gate's output net has shapes.
	out := s.Gates()[0].Out
	if len(l.NetShapes(out)) == 0 {
		t.Fatalf("no shapes for net %q", out)
	}
	// Round-trips through the file format.
	if _, err := Parse(l.Format()); err != nil {
		t.Fatal(err)
	}
	// Hierarchical instances carried over.
	hs := schematic.New("top")
	if err := hs.AddInstance("u1", "add4", "schematic"); err != nil {
		t.Fatal(err)
	}
	hl, err := FromSchematic(hs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := hl.Instances(); len(got) != 1 || got[0].View != "layout" {
		t.Fatalf("instances = %+v", got)
	}
}

func TestGenPadRing(t *testing.T) {
	l, err := GenPadRing("ring", 4)
	if err != nil {
		t.Fatal(err)
	}
	rects, _, _ := l.Stats()
	if rects != 16 {
		t.Fatalf("pads = %d", rects)
	}
	if len(l.NetShapes("pad_s0")) != 1 {
		t.Fatal("pad net missing")
	}
	if _, err := GenPadRing("x", 0); err == nil {
		t.Fatal("0 pads accepted")
	}
}

// Property: layout files round-trip for arbitrary rectangle sets.
func TestPropertyRectRoundTrip(t *testing.T) {
	f := func(coords [][4]int16) bool {
		l := New("p")
		added := 0
		for _, c := range coords {
			if err := l.AddRect("m", int(c[0]), int(c[1]), int(c[2]), int(c[3]), ""); err == nil {
				added++
			}
		}
		l2, err := Parse(l.Format())
		if err != nil {
			return false
		}
		if len(l2.Rects()) != added {
			return false
		}
		return bytes.Equal(l.Format(), l2.Format())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BBox always contains every rectangle.
func TestPropertyBBoxContains(t *testing.T) {
	f := func(coords [][4]int16) bool {
		l := New("p")
		for _, c := range coords {
			_ = l.AddRect("m", int(c[0]), int(c[1]), int(c[2]), int(c[3]), "")
		}
		x1, y1, x2, y2, ok := l.BBox()
		if !ok {
			return len(l.Rects()) == 0
		}
		for _, r := range l.Rects() {
			if r.X1 < x1 || r.Y1 < y1 || r.X2 > x2 || r.Y2 > y2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
