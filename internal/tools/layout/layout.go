// Package layout implements the FMCAD layout editor: a polygon-level mask
// layout tool, the second of the three tools the paper encapsulates
// (section 2.4). A Layout holds rectangles on named layers (optionally
// tagged with the net they implement, which powers cross-probing), text
// labels, and hierarchical instances with placements. The file format uses
// the same "inst" lines the framework scans for dynamic hierarchy binding.
package layout

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Rect is an axis-aligned rectangle on a layer. Coordinates are in
// database units; X1<=X2 and Y1<=Y2 are normalized at insertion.
type Rect struct {
	Layer          string
	X1, Y1, X2, Y2 int
	Net            string // "" when the shape implements no net
}

// Width returns the rectangle's extent in x.
func (r Rect) Width() int { return r.X2 - r.X1 }

// Height returns the rectangle's extent in y.
func (r Rect) Height() int { return r.Y2 - r.Y1 }

// Area returns the rectangle area.
func (r Rect) Area() int64 { return int64(r.Width()) * int64(r.Height()) }

// overlaps reports whether two rectangles share interior area.
func (r Rect) overlaps(o Rect) bool {
	return r.X1 < o.X2 && o.X1 < r.X2 && r.Y1 < o.Y2 && o.Y1 < r.Y2
}

// Label is a text annotation.
type Label struct {
	Layer string
	X, Y  int
	Text  string
}

// Instance is a placed hierarchical reference to another cellview.
type Instance struct {
	Name string
	Cell string
	View string
	X, Y int
}

// Layout is one layout cellview's content.
type Layout struct {
	Cell      string
	rects     []Rect
	labels    []Label
	instances []Instance
	instIdx   map[string]int
}

// New returns an empty layout for the named cell.
func New(cell string) *Layout {
	return &Layout{Cell: cell, instIdx: map[string]int{}}
}

// AddRect places a rectangle; coordinates are normalized. Zero-area
// rectangles are rejected.
func (l *Layout) AddRect(layer string, x1, y1, x2, y2 int, net string) error {
	if layer == "" {
		return fmt.Errorf("layout: empty layer")
	}
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	if x1 == x2 || y1 == y2 {
		return fmt.Errorf("layout: zero-area rect on %s", layer)
	}
	l.rects = append(l.rects, Rect{Layer: layer, X1: x1, Y1: y1, X2: x2, Y2: y2, Net: net})
	return nil
}

// AddLabel places a text label.
func (l *Layout) AddLabel(layer string, x, y int, text string) error {
	if layer == "" || text == "" {
		return fmt.Errorf("layout: label needs layer and text")
	}
	l.labels = append(l.labels, Label{Layer: layer, X: x, Y: y, Text: text})
	return nil
}

// AddInstance places a hierarchical instance at (x, y).
func (l *Layout) AddInstance(name, cell, view string, x, y int) error {
	if name == "" || cell == "" || view == "" {
		return fmt.Errorf("layout: instance needs name, cell and view")
	}
	if _, dup := l.instIdx[name]; dup {
		return fmt.Errorf("layout: duplicate instance %q", name)
	}
	l.instIdx[name] = len(l.instances)
	l.instances = append(l.instances, Instance{Name: name, Cell: cell, View: view, X: x, Y: y})
	return nil
}

// Rects returns all rectangles in insertion order.
func (l *Layout) Rects() []Rect { return append([]Rect(nil), l.rects...) }

// Labels returns all labels in insertion order.
func (l *Layout) Labels() []Label { return append([]Label(nil), l.labels...) }

// Instances returns all instances in insertion order.
func (l *Layout) Instances() []Instance { return append([]Instance(nil), l.instances...) }

// Layers returns the distinct layer names in use, sorted.
func (l *Layout) Layers() []string {
	set := map[string]bool{}
	for _, r := range l.rects {
		set[r.Layer] = true
	}
	for _, lb := range l.labels {
		set[lb.Layer] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BBox returns the bounding box over all rectangles. ok is false for an
// empty layout.
func (l *Layout) BBox() (x1, y1, x2, y2 int, ok bool) {
	if len(l.rects) == 0 {
		return 0, 0, 0, 0, false
	}
	x1, y1 = l.rects[0].X1, l.rects[0].Y1
	x2, y2 = l.rects[0].X2, l.rects[0].Y2
	for _, r := range l.rects[1:] {
		if r.X1 < x1 {
			x1 = r.X1
		}
		if r.Y1 < y1 {
			y1 = r.Y1
		}
		if r.X2 > x2 {
			x2 = r.X2
		}
		if r.Y2 > y2 {
			y2 = r.Y2
		}
	}
	return x1, y1, x2, y2, true
}

// LayerArea returns the summed rectangle area on a layer (overlaps counted
// twice; mask utilization metric, not exact coverage).
func (l *Layout) LayerArea(layer string) int64 {
	var total int64
	for _, r := range l.rects {
		if r.Layer == layer {
			total += r.Area()
		}
	}
	return total
}

// NetShapes returns the rectangles implementing a net — the lookup that
// answers a cross-probe from the schematic editor.
func (l *Layout) NetShapes(net string) []Rect {
	var out []Rect
	for _, r := range l.rects {
		if r.Net == net {
			out = append(out, r)
		}
	}
	return out
}

// Stats summarizes the layout size.
func (l *Layout) Stats() (rects, labels, instances int) {
	return len(l.rects), len(l.labels), len(l.instances)
}

// --- design rule checking ---------------------------------------------------

// Violation is one design-rule violation found by DRC.
type Violation struct {
	Rule   string // "min-width" or "spacing"
	Layer  string
	Detail string
}

// DRC runs two simple geometric design rules over every layer: minimum
// feature width and minimum spacing between shapes on the same layer that
// belong to different nets. (Same-net shapes may abut or overlap freely.)
func (l *Layout) DRC(minWidth, minSpace int) []Violation {
	var out []Violation
	for i, r := range l.rects {
		if r.Width() < minWidth || r.Height() < minWidth {
			out = append(out, Violation{
				Rule:  "min-width",
				Layer: r.Layer,
				Detail: fmt.Sprintf("rect %d (%d,%d)-(%d,%d) is %dx%d, min %d",
					i, r.X1, r.Y1, r.X2, r.Y2, r.Width(), r.Height(), minWidth),
			})
		}
		for j := i + 1; j < len(l.rects); j++ {
			o := l.rects[j]
			if r.Layer != o.Layer {
				continue
			}
			if r.Net != "" && r.Net == o.Net {
				continue
			}
			grown := Rect{X1: r.X1 - minSpace, Y1: r.Y1 - minSpace, X2: r.X2 + minSpace, Y2: r.Y2 + minSpace}
			if grown.overlaps(o) {
				out = append(out, Violation{
					Rule:  "spacing",
					Layer: r.Layer,
					Detail: fmt.Sprintf("rects %d and %d closer than %d on %s",
						i, j, minSpace, r.Layer),
				})
			}
		}
	}
	return out
}

// --- file format -------------------------------------------------------------

// Format renders the layout in the design-file syntax, deterministically.
func (l *Layout) Format() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "layout %s\n", l.Cell)
	for _, r := range l.rects {
		if r.Net != "" {
			fmt.Fprintf(&b, "rect %s %d %d %d %d %s\n", r.Layer, r.X1, r.Y1, r.X2, r.Y2, r.Net)
		} else {
			fmt.Fprintf(&b, "rect %s %d %d %d %d\n", r.Layer, r.X1, r.Y1, r.X2, r.Y2)
		}
	}
	for _, lb := range l.labels {
		fmt.Fprintf(&b, "label %s %d %d %s\n", lb.Layer, lb.X, lb.Y, lb.Text)
	}
	for _, in := range l.instances {
		fmt.Fprintf(&b, "inst %s %s %s\n", in.Name, in.Cell, in.View)
		fmt.Fprintf(&b, "at %s %d %d\n", in.Name, in.X, in.Y)
	}
	return b.Bytes()
}

// Parse reads a layout design file produced by Format.
func Parse(data []byte) (*Layout, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var l *Layout
	lineNo := 0
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "layout":
			if len(f) != 2 {
				return nil, fmt.Errorf("layout: line %d: bad header", lineNo)
			}
			l = New(f[1])
		case "rect":
			if l == nil || (len(f) != 6 && len(f) != 7) {
				return nil, fmt.Errorf("layout: line %d: bad rect", lineNo)
			}
			var coords [4]int
			for i := 0; i < 4; i++ {
				v, err := atoi(f[2+i])
				if err != nil {
					return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
				}
				coords[i] = v
			}
			net := ""
			if len(f) == 7 {
				net = f[6]
			}
			if err := l.AddRect(f[1], coords[0], coords[1], coords[2], coords[3], net); err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
		case "label":
			if l == nil || len(f) < 5 {
				return nil, fmt.Errorf("layout: line %d: bad label", lineNo)
			}
			x, err := atoi(f[2])
			if err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
			y, err := atoi(f[3])
			if err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
			if err := l.AddLabel(f[1], x, y, strings.Join(f[4:], " ")); err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
		case "inst":
			if l == nil || len(f) != 4 {
				return nil, fmt.Errorf("layout: line %d: bad inst", lineNo)
			}
			if err := l.AddInstance(f[1], f[2], f[3], 0, 0); err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
		case "at":
			if l == nil || len(f) != 4 {
				return nil, fmt.Errorf("layout: line %d: bad at", lineNo)
			}
			i, ok := l.instIdx[f[1]]
			if !ok {
				return nil, fmt.Errorf("layout: line %d: at for unknown instance %q", lineNo, f[1])
			}
			x, err := atoi(f[2])
			if err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
			y, err := atoi(f[3])
			if err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
			l.instances[i].X, l.instances[i].Y = x, y
		default:
			return nil, fmt.Errorf("layout: line %d: unknown keyword %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	if l == nil {
		return nil, fmt.Errorf("layout: empty file")
	}
	return l, nil
}
