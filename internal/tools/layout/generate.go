package layout

import (
	"fmt"

	"repro/internal/tools/schematic"
)

// FromSchematic synthesizes a standard-cell-style layout from a schematic:
// every gate becomes a cell site on a row grid (poly + diffusion rects),
// every net gets one metal1 routing stub tagged with the net name (which
// makes cross-probing work), and hierarchical instances are re-emitted as
// placed layout instances. The output size is proportional to the
// schematic size, which the section 3.6 experiments rely on.
//
// The generator is deliberately simple — the paper's evaluation does not
// depend on layout quality, only on realistic, size-proportional design
// files flowing through the frameworks.
func FromSchematic(s *schematic.Schematic, rowSites int) (*Layout, error) {
	if rowSites < 1 {
		rowSites = 16
	}
	const (
		siteW  = 10
		siteH  = 12
		rowGap = 4
	)
	l := New(s.Cell)
	gates := s.Gates()
	for i, g := range gates {
		col := i % rowSites
		row := i / rowSites
		x := col * siteW
		y := row * (siteH + rowGap)
		// Diffusion and poly for the transistor pair.
		if err := l.AddRect("diff", x+1, y+1, x+siteW-1, y+5, ""); err != nil {
			return nil, err
		}
		if err := l.AddRect("poly", x+3, y, x+5, y+siteH, ""); err != nil {
			return nil, err
		}
		// Output stub on metal1 tagged with the output net.
		if err := l.AddRect("metal1", x+6, y+2, x+9, y+10, g.Out); err != nil {
			return nil, err
		}
		if err := l.AddLabel("text", x+1, y+siteH, g.Name); err != nil {
			return nil, err
		}
	}
	// One metal2 routing track per net (beyond the per-gate stubs).
	nets := s.Nets()
	_, _, _, y2, ok := l.BBox()
	if !ok {
		y2 = 0
	}
	for i, net := range nets {
		y := y2 + rowGap + i*3
		if err := l.AddRect("metal2", 0, y, rowSites*siteW, y+2, net); err != nil {
			return nil, err
		}
	}
	// Hierarchical instances carried over with grid placement.
	for i, in := range s.Instances() {
		x := (i % rowSites) * siteW * 4
		y := -((i / rowSites) + 1) * (siteH * 4)
		if err := l.AddInstance(in.Name, in.Cell, "layout", x, y); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// GenPadRing builds a pad ring layout with n pads per side — layout-only
// structure with no schematic counterpart, the canonical source of
// non-isomorphic hierarchies (section 2.3).
func GenPadRing(cell string, padsPerSide int) (*Layout, error) {
	if padsPerSide < 1 {
		return nil, fmt.Errorf("layout: pad ring needs at least 1 pad per side")
	}
	const (
		padW  = 60
		padH  = 80
		pitch = 90
	)
	l := New(cell)
	side := (padsPerSide + 1) * pitch
	for i := 0; i < padsPerSide; i++ {
		off := pitch + i*pitch
		// south, north, west, east
		if err := l.AddRect("pad", off, 0, off+padW, padH, fmt.Sprintf("pad_s%d", i)); err != nil {
			return nil, err
		}
		if err := l.AddRect("pad", off, side-padH, off+padW, side, fmt.Sprintf("pad_n%d", i)); err != nil {
			return nil, err
		}
		if err := l.AddRect("pad", 0, off, padH, off+padW, fmt.Sprintf("pad_w%d", i)); err != nil {
			return nil, err
		}
		if err := l.AddRect("pad", side-padH, off, side, off+padW, fmt.Sprintf("pad_e%d", i)); err != nil {
			return nil, err
		}
	}
	return l, nil
}
