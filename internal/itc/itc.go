// Package itc implements FMCAD's inter-tool communication (ITC): an
// in-process message bus over which the integrated tools talk to each
// other, e.g. cross-probing between the schematic editor and the layout
// editor (section 2.2). The paper notes that "due to the closed interfaces
// of JCF, FMCAD's ITC could not be used normally" in the hybrid framework —
// the coupling layer in internal/core installs wrappers on this bus to keep
// cross-probing alive under JCF control.
package itc

import (
	"fmt"
	"sort"
	"sync"
)

// Message is one ITC datagram.
type Message struct {
	Topic  string            // e.g. "crossprobe"
	From   string            // sending tool
	Fields map[string]string // payload
}

// Handler consumes messages delivered to a subscription. Returning an
// error vetoes the publication (remaining handlers do not run) — the hook
// the hybrid framework uses to guard consistency.
type Handler func(Message) error

// Bus is a synchronous publish/subscribe message bus. All methods are safe
// for concurrent use; handlers run on the publisher's goroutine, which
// keeps tool interactions deterministic.
type Bus struct {
	mu   sync.Mutex
	subs map[string][]subscription
	// delivered counts per-topic deliveries for diagnostics.
	delivered map[string]int
	nextID    int
}

type subscription struct {
	id      int
	tool    string
	handler Handler
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: map[string][]subscription{}, delivered: map[string]int{}}
}

// Subscribe registers a handler for a topic on behalf of a tool. The
// returned id cancels the subscription via Unsubscribe.
func (b *Bus) Subscribe(topic, tool string, h Handler) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.subs[topic] = append(b.subs[topic], subscription{id: b.nextID, tool: tool, handler: h})
	return b.nextID
}

// Unsubscribe removes a subscription by id. Unknown ids are ignored. A
// topic whose last subscriber leaves is removed from the table entirely:
// an empty-but-present slice would make Topics report a stale topic
// forever (and leak an entry per topic name ever used).
func (b *Bus) Unsubscribe(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for topic, subs := range b.subs {
		for i, s := range subs {
			if s.id == id {
				if len(subs) == 1 {
					delete(b.subs, topic)
				} else {
					b.subs[topic] = append(subs[:i:i], subs[i+1:]...)
				}
				return
			}
		}
	}
}

// Publish delivers a message to every subscriber of its topic, in
// subscription order. The first handler error aborts delivery and is
// returned to the publisher.
//
// Delivery counting: the per-topic counter is bumped once per Publish,
// after the handler loop, not once per handler — handlers run lock-free
// and publishers on one topic no longer serialize on the counter. A
// vetoed publication counts its partial deliveries: every handler that
// ran and accepted the message before the veto is counted; the vetoing
// handler itself is not.
func (b *Bus) Publish(msg Message) error {
	if msg.Topic == "" {
		return fmt.Errorf("itc: empty topic")
	}
	b.mu.Lock()
	subs := append([]subscription(nil), b.subs[msg.Topic]...)
	b.mu.Unlock()
	delivered := 0
	var vetoErr error
	for _, s := range subs {
		if err := s.handler(msg); err != nil {
			vetoErr = fmt.Errorf("itc: handler of %s (topic %s): %w", s.tool, msg.Topic, err)
			break
		}
		delivered++
	}
	if delivered > 0 {
		b.mu.Lock()
		b.delivered[msg.Topic] += delivered
		b.mu.Unlock()
	}
	return vetoErr
}

// Delivered returns how many deliveries happened on a topic.
func (b *Bus) Delivered(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delivered[topic]
}

// Subscribers returns the tools subscribed to a topic, sorted.
func (b *Bus) Subscribers(topic string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, s := range b.subs[topic] {
		out = append(out, s.tool)
	}
	sort.Strings(out)
	return out
}

// Topics returns the topics that currently have at least one subscriber,
// sorted. Unsubscribe removes emptied topics from the table, so a topic
// never lingers here after its last subscriber left.
func (b *Bus) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.subs))
	for topic := range b.subs {
		out = append(out, topic)
	}
	sort.Strings(out)
	return out
}

// --- cross-probing ---------------------------------------------------------

// TopicCrossProbe is the topic the schematic and layout editors share.
const TopicCrossProbe = "crossprobe"

// CrossProbe builds the standard cross-probe message: a tool announces
// that the user selected a net of a cell so peer editors can highlight it.
func CrossProbe(fromTool, cell, view, net string) Message {
	return Message{
		Topic: TopicCrossProbe,
		From:  fromTool,
		Fields: map[string]string{
			"cell": cell,
			"view": view,
			"net":  net,
		},
	}
}
