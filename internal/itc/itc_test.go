package itc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus()
	var got []string
	b.Subscribe("topic1", "layout", func(m Message) error {
		got = append(got, m.Fields["net"])
		return nil
	})
	if err := b.Publish(Message{Topic: "topic1", From: "schematic", Fields: map[string]string{"net": "n1"}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "n1" {
		t.Fatalf("got = %v", got)
	}
	// Messages on other topics are not delivered.
	if err := b.Publish(Message{Topic: "other", Fields: map[string]string{"net": "n2"}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("cross-topic delivery")
	}
	if b.Delivered("topic1") != 1 || b.Delivered("other") != 0 {
		t.Fatalf("Delivered = %d/%d", b.Delivered("topic1"), b.Delivered("other"))
	}
	if err := b.Publish(Message{}); err == nil {
		t.Fatal("empty topic accepted")
	}
}

func TestVeto(t *testing.T) {
	b := NewBus()
	order := []string{}
	b.Subscribe("t", "a", func(Message) error {
		order = append(order, "a")
		return errors.New("veto")
	})
	b.Subscribe("t", "b", func(Message) error {
		order = append(order, "b")
		return nil
	})
	err := b.Publish(Message{Topic: "t"})
	if err == nil {
		t.Fatal("veto not propagated")
	}
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("order = %v; later handlers must not run after veto", order)
	}
}

// TestVetoCountsPartialDeliveries pins the documented counting rule: a
// vetoed publication counts the handlers that accepted the message
// before the veto; the vetoing handler and everything after it do not
// count.
func TestVetoCountsPartialDeliveries(t *testing.T) {
	b := NewBus()
	b.Subscribe("t", "ok1", func(Message) error { return nil })
	b.Subscribe("t", "ok2", func(Message) error { return nil })
	b.Subscribe("t", "veto", func(Message) error { return errors.New("no") })
	b.Subscribe("t", "after", func(Message) error { t.Error("ran after veto"); return nil })
	if err := b.Publish(Message{Topic: "t"}); err == nil {
		t.Fatal("veto not propagated")
	}
	if got := b.Delivered("t"); got != 2 {
		t.Fatalf("Delivered after veto = %d, want 2 (the pre-veto deliveries)", got)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBus()
	n := 0
	id := b.Subscribe("t", "a", func(Message) error { n++; return nil })
	b.Subscribe("t", "b", func(Message) error { n += 10; return nil })
	_ = b.Publish(Message{Topic: "t"})
	b.Unsubscribe(id)
	b.Unsubscribe(9999) // unknown id ignored
	_ = b.Publish(Message{Topic: "t"})
	if n != 21 {
		t.Fatalf("n = %d", n)
	}
	if subs := b.Subscribers("t"); len(subs) != 1 || subs[0] != "b" {
		t.Fatalf("Subscribers = %v", subs)
	}
}

func TestCrossProbeMessage(t *testing.T) {
	m := CrossProbe("schematic-editor", "alu", "schematic", "net42")
	if m.Topic != TopicCrossProbe || m.From != "schematic-editor" {
		t.Fatalf("msg = %+v", m)
	}
	if m.Fields["cell"] != "alu" || m.Fields["view"] != "schematic" || m.Fields["net"] != "net42" {
		t.Fatalf("fields = %v", m.Fields)
	}
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	count := 0
	b.Subscribe("t", "x", func(Message) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := b.Publish(Message{Topic: "t", From: fmt.Sprintf("p%d", i)}); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	if count != 200 {
		t.Fatalf("count = %d", count)
	}
	if b.Delivered("t") != 200 {
		t.Fatalf("Delivered = %d", b.Delivered("t"))
	}
}

func TestUnsubscribeRemovesEmptyTopics(t *testing.T) {
	b := NewBus()
	nop := func(Message) error { return nil }
	id1 := b.Subscribe("crossprobe", "schematic", nop)
	id2 := b.Subscribe("crossprobe", "layout", nop)
	id3 := b.Subscribe("status", "dsim", nop)
	if got := b.Topics(); len(got) != 2 || got[0] != "crossprobe" || got[1] != "status" {
		t.Fatalf("Topics = %v", got)
	}
	b.Unsubscribe(id3)
	if got := b.Topics(); len(got) != 1 || got[0] != "crossprobe" {
		t.Fatalf("Topics after emptying status = %v; stale topic reported", got)
	}
	b.Unsubscribe(id1)
	if got := b.Topics(); len(got) != 1 {
		t.Fatalf("Topics after partial unsubscribe = %v", got)
	}
	if got := b.Subscribers("crossprobe"); len(got) != 1 || got[0] != "layout" {
		t.Fatalf("Subscribers = %v", got)
	}
	b.Unsubscribe(id2)
	if got := b.Topics(); len(got) != 0 {
		t.Fatalf("Topics after last unsubscribe = %v; stale topic reported", got)
	}
	// Resubscribing a drained topic works from scratch.
	b.Subscribe("crossprobe", "schematic", nop)
	if got := b.Topics(); len(got) != 1 || got[0] != "crossprobe" {
		t.Fatalf("Topics after resubscribe = %v", got)
	}
}
