// Package jcf implements the JESSI-COMMON-Framework (JCF 3.0) of the
// paper: a CAD framework with strong design management, two-level
// versioning, team-based concurrent engineering via workspaces, prescribed
// design flows and a common object-oriented database (OMS) that holds both
// metadata and design data.
//
// The package reproduces the section 2.1 architecture:
//
//   - Resources (users, teams, tools, view types, flows) are metadata,
//     defined in advance by the framework administrator and fully under
//     framework control.
//   - Project data are cells and relationships between cells. Cells have
//     cell versions; each cell version carries its (possibly modified)
//     flow and team, and contains variants — a second versioning
//     mechanism for exploring alternatives.
//   - The workspace concept lets exactly one user reserve a cell version;
//     everyone else may only read the published parts. This is "the
//     kernel of the JCF multi-user capabilities".
//   - All data live in the OMS database. Encapsulated tools exchange
//     design data with the database only through UNIX files (CopyIn /
//     CopyOut) — "direct access to the internal structure of the stored
//     data ... is not possible", which is also why even read-only tool
//     access pays a full copy-out (section 3.6).
//
// Release gating: New takes a Release. Release30 reproduces the paper's
// limitations (no procedural hierarchy interface, no non-isomorphic
// hierarchies, no inter-project sharing); Release40 enables the paper's
// future-work features so the experiments can show both eras.
package jcf

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/oms/blobstore"
	"repro/internal/otod"
)

// Release selects the JCF feature level.
type Release int

// Supported releases. Release30 is the paper's JCF 3.0; Release40 is the
// hypothetical next release with the paper's future-work features enabled.
const (
	Release30 Release = 30
	Release40 Release = 40
)

// String returns "3.0" or "4.0".
func (r Release) String() string {
	switch r {
	case Release30:
		return "3.0"
	case Release40:
		return "4.0"
	}
	return fmt.Sprintf("Release(%d)", int(r))
}

// Errors reported by the framework.
var (
	ErrReserved     = errors.New("jcf: cell version is reserved by another user")
	ErrNotReserved  = errors.New("jcf: cell version is not reserved by this user")
	ErrNotMember    = errors.New("jcf: user is not a member of the responsible team")
	ErrNotPublished = errors.New("jcf: cell version is not published for reading")
	ErrUnsupported  = errors.New("jcf: feature not supported in this release")
	ErrNotFound     = errors.New("jcf: object not found")
	ErrExists       = errors.New("jcf: object already exists")
)

// relNames resolves the OTO-D relationship labels into the (possibly
// qualified) oms.Schema relationship names once at startup.
type relNames struct {
	memberOf, supports          string
	has, cellHasVersion, compOf string
	attachedFlow, attachedTeam  string
	hasVariant, variantPrecedes string
	uses, doHasVersion          string
	ofViewType                  string
	equivalent, derived         string
	cfgHasVersion, cfgPrecedes  string
	hasEntry, configures        string
}

// Framework is one live JCF instance. All methods are safe for concurrent
// use. The underlying OMS store is private: tools and coupling layers get
// only this desktop API — the "closed interfaces" the paper works around.
type Framework struct {
	release Release
	model   *otod.Model
	store   *oms.Store

	// replica marks a read-only replica view (see replica.go): every
	// mutating entry point consults guardWrite before touching anything.
	// Atomic because PromoteToPrimary flips it while readers query.
	replica atomic.Bool

	// numMu serializes count-then-create version/variant numbering
	// (CreateCellVersion, CreateVariant, DeriveVariant, CheckInData,
	// DeriveConfigVersion) so concurrent designers on the same cell
	// never allocate duplicate numbers. Lock order: fw.mu may be held
	// when numMu is taken (CheckInData holds fw.mu for reading across
	// its whole batch so the reservation check stays true until the
	// commit); never the reverse. Store stripe locks are always the
	// innermost.
	numMu sync.Mutex

	// saveMu serializes Save/SaveTo: the commit epoch is a
	// read-modify-write on the backend. Designers never touch it.
	// The lastSave fields (guarded by saveMu) anchor differential
	// saves: a delta continues from the previous commit only when this
	// framework instance wrote that commit to the same backend — any
	// mismatch (first save, different backend, loaded framework) falls
	// back to a full base snapshot.
	saveMu        sync.Mutex
	lastSaveTo    backend.Backend
	lastSaveEpoch int64
	lastSaveLSN   uint64
	maxDeltaChain int  // 0 means defaultMaxDeltaChain
	fullSaveOnly  bool // SetDifferentialSave(false): ablation/benchmark knob

	// batchPool recycles oms.Batch builders for the hot grouped paths
	// (CheckInData, CreateDesignObject): one checkin = one small batch,
	// and pooling keeps the builder allocation off the per-checkin cost.
	batchPool sync.Pool

	// cc is the feed-driven consistency-check cache (see
	// CheckConsistency): the last sweep's verdict plus the feed position
	// it was computed at. Guarded by cc.mu — its own lock, because a
	// consistency check must not stall designers holding fw.mu.
	cc struct {
		mu    sync.Mutex
		valid bool
		lsn   uint64
		cache []Inconsistency
	}

	// mu guards the framework-level maps below. Reads vastly outnumber
	// writes on the designers' hot path (reservation checks, flow lookups),
	// so readers share the lock; the OMS store underneath does its own
	// finer-grained striping.
	mu sync.RWMutex
	// flows registered as resources, by name. Entries appear only once a
	// flow is fully materialized; in-flight registrations live in
	// flowsPending so readers never observe a half-registered flow.
	flows map[string]*flow.Flow
	// flowsPending reserves flow names during RegisterFlow.
	flowsPending map[string]bool
	// flowOIDs maps flow name -> OMS Flow object.
	flowOIDs map[string]oms.OID
	// reservations: cell version OID -> user name holding the workspace.
	reservations map[oms.OID]string
	// enactments: cell version OID -> flow enactment.
	enactments map[oms.OID]*flow.Enactment
	// typedHier (Release 4.0 only): per-viewtype hierarchies, allowing
	// non-isomorphic designs: parent CV -> viewtype name -> children.
	typedHier map[oms.OID]map[string][]oms.OID
	// shares (Release 4.0 only): project OID -> cells shared into it.
	shares map[oms.OID][]oms.OID

	rel relNames

	// blobs is the optional content-addressed design-data store (see
	// blobs.go); blobThreshold is the checkin spill threshold in bytes.
	// Both are set once by EnableBlobStore, before concurrent use.
	blobs         *blobstore.Store
	blobThreshold int

	// upMu guards the per-cell-version async-upload ledger behind the
	// Publish durability gate: uploads counts blob uploads still in
	// flight, upCond wakes publishers waiting for them to drain. Lock
	// order: fw.mu (and numMu) may be held when upMu is taken — never the
	// reverse; upMu is a leaf.
	upMu    sync.Mutex
	upCond  *sync.Cond
	uploads map[oms.OID]*cvUploads

	// statReserveConflicts counts rejected reservations (section 3.1).
	// An obs.Counter cell so ReserveConflicts and a /metrics scrape read
	// it without touching fw.mu.
	statReserveConflicts obs.Counter

	// metrics holds the checkin-pipeline instruments (see metrics.go).
	metrics fwMetrics
}

// New creates a framework instance of the given release with a fresh OMS
// database enforcing the Figure 1 information model.
func New(release Release) (*Framework, error) {
	if release != Release30 && release != Release40 {
		return nil, fmt.Errorf("jcf: unknown release %d", int(release))
	}
	model := otod.JCFModel()
	schema, err := model.Schema()
	if err != nil {
		return nil, fmt.Errorf("jcf: building schema: %w", err)
	}
	fw := &Framework{
		release:      release,
		model:        model,
		store:        oms.NewStore(schema),
		flows:        map[string]*flow.Flow{},
		flowsPending: map[string]bool{},
		flowOIDs:     map[string]oms.OID{},
		reservations: map[oms.OID]string{},
		enactments:   map[oms.OID]*flow.Enactment{},
		typedHier:    map[oms.OID]map[string][]oms.OID{},
		shares:       map[oms.OID][]oms.OID{},
		uploads:      map[oms.OID]*cvUploads{},
	}
	fw.upCond = sync.NewCond(&fw.upMu)
	r := func(name, from, to string) string {
		return model.SchemaRelName(otod.Relationship{Name: name, From: from, To: to})
	}
	fw.rel = relNames{
		memberOf:        r("memberOf", "User", "Team"),
		supports:        r("supports", "Team", "Project"),
		has:             r("has", "Project", "Cell"),
		cellHasVersion:  r("hasVersion", "Cell", "CellVersion"),
		compOf:          r("compOf", "CellVersion", "CellVersion"),
		attachedFlow:    r("attachedFlow", "CellVersion", "Flow"),
		attachedTeam:    r("attachedTeam", "CellVersion", "Team"),
		hasVariant:      r("hasVariant", "CellVersion", "Variant"),
		variantPrecedes: r("precedes", "Variant", "Variant"),
		uses:            r("uses", "Variant", "DesignObject"),
		doHasVersion:    r("hasVersion", "DesignObject", "DesignObjectVersion"),
		ofViewType:      r("ofViewType", "DesignObject", "ViewType"),
		equivalent:      r("equivalent", "DesignObjectVersion", "DesignObjectVersion"),
		derived:         r("derived", "DesignObjectVersion", "DesignObjectVersion"),
		cfgHasVersion:   r("hasVersion", "Configuration", "ConfigVersion"),
		cfgPrecedes:     r("precedes", "ConfigVersion", "ConfigVersion"),
		hasEntry:        r("hasEntry", "ConfigVersion", "DesignObjectVersion"),
		configures:      r("configures", "Configuration", "CellVersion"),
	}
	return fw, nil
}

// getBatch fetches a pooled, reset batch builder; putBatch returns it.
// Safe because Apply takes no lasting references into the batch (staged
// values are either transferred into store objects or dropped) and Reset
// zeroes every slot before the batch is reused.
func (fw *Framework) getBatch() *oms.Batch {
	if b, ok := fw.batchPool.Get().(*oms.Batch); ok {
		return b
	}
	return oms.NewBatch()
}

func (fw *Framework) putBatch(b *oms.Batch) {
	b.Reset()
	fw.batchPool.Put(b)
}

// Release returns the framework release level.
func (fw *Framework) Release() Release { return fw.release }

// Model returns the Figure 1 information model the framework enforces.
func (fw *Framework) Model() *otod.Model { return fw.model }

// MetadataOps reports the cumulative OMS operation count — the metric
// behind the "performance of metadata operations ... is sufficiently high"
// statement of section 3.6.
func (fw *Framework) MetadataOps() int64 {
	ops, _, _ := fw.store.Stats()
	return ops
}

// BlobTraffic reports cumulative design-data bytes copied into and out of
// the database.
func (fw *Framework) BlobTraffic() (in, out int64) {
	_, in, out = fw.store.Stats()
	return in, out
}

// ReserveConflicts reports the number of rejected workspace reservations.
func (fw *Framework) ReserveConflicts() int64 {
	return fw.statReserveConflicts.Load()
}

// --- resources (administrator API) ---------------------------------------

// named creates a resource object with a unique name within its class.
// When stage is non-nil it adds further ops to the same batch, keyed to
// the new object's placeholder OID, so the creation and its wiring
// commit as ONE atomic group — no reader ever observes the object
// half-linked.
func (fw *Framework) named(class, name string, stage func(b *oms.Batch, oid oms.OID)) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	if name == "" {
		return oms.InvalidOID, fmt.Errorf("jcf: empty %s name", class)
	}
	if hits := fw.store.FindByAttr(class, "name", oms.S(name)); len(hits) > 0 {
		return oms.InvalidOID, fmt.Errorf("%w: %s %q", ErrExists, class, name)
	}
	b := fw.getBatch()
	defer fw.putBatch(b)
	oid := b.Create(class, map[string]oms.Value{"name": oms.S(name)})
	if stage != nil {
		stage(b, oid)
	}
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// CreateUser registers a user resource.
func (fw *Framework) CreateUser(name string) (oms.OID, error) {
	return fw.named("User", name, nil)
}

// CreateTeam registers a team resource.
func (fw *Framework) CreateTeam(name string) (oms.OID, error) {
	return fw.named("Team", name, nil)
}

// CreateTool registers a tool resource (an integrated or encapsulated
// tool; the hybrid framework registers the three FMCAD tools here).
func (fw *Framework) CreateTool(name string) (oms.OID, error) {
	return fw.named("Tool", name, nil)
}

// CreateViewType registers a view type resource.
func (fw *Framework) CreateViewType(name string) (oms.OID, error) {
	return fw.named("ViewType", name, nil)
}

// AddMember puts a user into a team.
func (fw *Framework) AddMember(team oms.OID, user oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	return fw.store.Link(fw.rel.memberOf, user, team)
}

// lookupNamed finds a resource by class and name.
func (fw *Framework) lookupNamed(class, name string) (oms.OID, error) {
	hits := fw.store.FindByAttr(class, "name", oms.S(name))
	if len(hits) == 0 {
		return oms.InvalidOID, fmt.Errorf("%w: %s %q", ErrNotFound, class, name)
	}
	return hits[0], nil
}

// User returns the OID of a user resource by name.
func (fw *Framework) User(name string) (oms.OID, error) { return fw.lookupNamed("User", name) }

// Team returns the OID of a team resource by name.
func (fw *Framework) Team(name string) (oms.OID, error) { return fw.lookupNamed("Team", name) }

// ViewType returns the OID of a view type resource by name.
func (fw *Framework) ViewType(name string) (oms.OID, error) { return fw.lookupNamed("ViewType", name) }

// IsMember reports whether user (by OID) belongs to team.
func (fw *Framework) IsMember(team, user oms.OID) bool {
	for _, t := range fw.store.Targets(fw.rel.memberOf, user) {
		if t == team {
			return true
		}
	}
	return false
}

// Members returns the user names of a team, sorted.
func (fw *Framework) Members(team oms.OID) []string {
	var out []string
	for _, u := range fw.store.Sources(fw.rel.memberOf, team) {
		out = append(out, fw.store.GetString(u, "name"))
	}
	sort.Strings(out)
	return out
}

// RegisterFlow freezes the given flow and registers it as a framework
// resource. Flows become metadata fully under framework control; they are
// fixed and cannot be modified afterwards (section 2.1). The flow's
// activities and their tools are materialized as OMS objects.
func (fw *Framework) RegisterFlow(f *flow.Flow) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	if err := f.Freeze(); err != nil {
		return oms.InvalidOID, fmt.Errorf("jcf: registering flow: %w", err)
	}
	// Reserve the name under the write lock so two concurrent
	// registrations of the same flow cannot both pass a read-locked
	// duplicate check and materialize twice. The reservation lives in
	// flowsPending, not flows, so Flow/Flows/Save never see the flow
	// until it is fully materialized.
	fw.mu.Lock()
	if fw.flowsPending[f.Name] {
		fw.mu.Unlock()
		return oms.InvalidOID, fmt.Errorf("%w: flow %q", ErrExists, f.Name)
	}
	if _, dup := fw.flows[f.Name]; dup {
		fw.mu.Unlock()
		return oms.InvalidOID, fmt.Errorf("%w: flow %q", ErrExists, f.Name)
	}
	fw.flowsPending[f.Name] = true
	fw.mu.Unlock()
	// The deferred guard retracts the reservation on any error return;
	// the success path below clears it itself.
	registered := false
	defer func() {
		if !registered {
			fw.mu.Lock()
			delete(fw.flowsPending, f.Name)
			fw.mu.Unlock()
		}
	}()

	if f.Name == "" {
		return oms.InvalidOID, fmt.Errorf("jcf: empty Flow name")
	}
	if hits := fw.store.FindByAttr("Flow", "name", oms.S(f.Name)); len(hits) > 0 {
		return oms.InvalidOID, fmt.Errorf("%w: Flow %q", ErrExists, f.Name)
	}
	// Materialize the flow object, its activities and their proxies as ONE
	// batch so the queryable metadata appears atomically: no concurrent
	// reader (or crash-consistent snapshot) ever sees a Flow object whose
	// activities are still being wired up, and any failure leaves no
	// half-materialized flow to collide with a retry.
	proxyRel := fw.model.SchemaRelName(otod.Relationship{Name: "proxies", From: "ActivityProxy", To: "Activity"})
	containsRel := fw.model.SchemaRelName(otod.Relationship{Name: "contains", From: "Flow", To: "ActivityProxy"})
	performedBy := fw.model.SchemaRelName(otod.Relationship{Name: "performedBy", From: "Activity", To: "Tool"})
	b := oms.NewBatch()
	flowPH := b.CreateOwned("Flow", map[string]oms.Value{"name": oms.S(f.Name)})
	for _, name := range f.Activities() {
		a, err := f.Activity(name)
		if err != nil {
			return oms.InvalidOID, err
		}
		actPH := b.CreateOwned("Activity", map[string]oms.Value{"name": oms.S(f.Name + "/" + name)})
		proxyPH := b.CreateOwned("ActivityProxy", map[string]oms.Value{"name": oms.S(f.Name + "/" + name + "#proxy")})
		b.Link(containsRel, flowPH, proxyPH)
		b.Link(proxyRel, proxyPH, actPH)
		if a.Tool != "" {
			if toolOID, err := fw.lookupNamed("Tool", a.Tool); err == nil {
				b.Link(performedBy, actPH, toolOID)
			}
		}
	}
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	oid := created[0]
	fw.mu.Lock()
	fw.flows[f.Name] = f
	fw.flowOIDs[f.Name] = oid
	delete(fw.flowsPending, f.Name)
	registered = true
	fw.mu.Unlock()
	return oid, nil
}

// Flow returns a registered flow by name.
func (fw *Framework) Flow(name string) (*flow.Flow, error) {
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	f, ok := fw.flows[name]
	if !ok {
		return nil, fmt.Errorf("%w: flow %q", ErrNotFound, name)
	}
	return f, nil
}

// Flows returns the registered flow names, sorted.
func (fw *Framework) Flows() []string {
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	out := make([]string, 0, len(fw.flows))
	for n := range fw.flows {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
