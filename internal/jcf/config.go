package jcf

import (
	"fmt"

	"repro/internal/oms"
)

// Configurations (Figure 1, "Configurations" region): a configuration
// belongs to a cell version and is itself versioned; each configuration
// version collects design object versions ("has entry"). Together with the
// two-level cell/variant versioning this is the configuration-management
// strength the paper attributes to JCF (section 3.2).

// CreateConfiguration creates a named configuration for a cell version
// with an initial configuration version 1. Configuration, its configures
// link, the initial version and its ownership link commit as ONE batch:
// a failure anywhere (say, cv is not a CellVersion) leaves no detached
// Configuration or versionless stub behind.
func (fw *Framework) CreateConfiguration(cv oms.OID, name string) (cfg, cfgVersion oms.OID, err error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, oms.InvalidOID, err
	}
	if name == "" {
		return oms.InvalidOID, oms.InvalidOID, fmt.Errorf("jcf: empty configuration name")
	}
	b := fw.getBatch()
	defer fw.putBatch(b)
	cfgPH := b.CreateOwned("Configuration", map[string]oms.Value{"name": oms.S(name)})
	b.Link(fw.rel.configures, cfgPH, cv)
	verPH := b.CreateOwned("ConfigVersion", map[string]oms.Value{"num": oms.I(1)})
	b.Link(fw.rel.cfgHasVersion, cfgPH, verPH)
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, oms.InvalidOID, err
	}
	return created[0], created[1], nil
}

// DeriveConfigVersion creates the next configuration version, copying the
// entries of the predecessor and recording the precedes relation.
//
// The whole derivation — version, ownership link, precedes edge and the
// copied entry links — is one atomic batch. A losing concurrent derive
// (a config version has at most one successor, so only one precedes
// link can land) fails the batch and leaves nothing behind; the old
// op-by-op path had to retract a half-created version by hand.
func (fw *Framework) DeriveConfigVersion(from oms.OID) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	cfgSrc := fw.store.Sources(fw.rel.cfgHasVersion, from)
	if len(cfgSrc) == 0 {
		return oms.InvalidOID, fmt.Errorf("%w: configuration of version", ErrNotFound)
	}
	// numMu spans the numbering decision and the Apply that makes the
	// new version visible to it — the same discipline CreateCellVersion
	// and CreateVariant use — so concurrent derives on one configuration
	// never allocate duplicate numbers. The number is max+1 rather than
	// count+1: a failed losing derive leaves a numbering gap, and a
	// count would then re-issue a live number.
	fw.numMu.Lock()
	defer fw.numMu.Unlock()
	num := int64(1)
	for _, v := range fw.store.Targets(fw.rel.cfgHasVersion, cfgSrc[0]) {
		if n := fw.store.GetInt(v, "num"); n >= num {
			num = n + 1
		}
	}
	b := fw.getBatch()
	defer fw.putBatch(b)
	next := b.CreateOwned("ConfigVersion", map[string]oms.Value{"num": oms.I(num)})
	b.Link(fw.rel.cfgHasVersion, cfgSrc[0], next)
	b.Link(fw.rel.cfgPrecedes, from, next)
	for _, e := range fw.store.Targets(fw.rel.hasEntry, from) {
		b.Link(fw.rel.hasEntry, next, e)
	}
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// AddConfigEntry binds a design object version into a configuration
// version. At most one version per design object may be bound (the same
// constraint FMCAD configs have); a second bind for the same design object
// replaces the old entry.
func (fw *Framework) AddConfigEntry(cfgVersion, dov oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	do, err := fw.designObjectOfVersion(dov)
	if err != nil {
		return err
	}
	// Replace atomically: the unlink of the old entry and the link of
	// the new one commit as one batch, so no reader of ConfigEntries
	// ever observes the design object momentarily unbound (the window
	// the op-by-op version had between Unlink and Link).
	b := fw.getBatch()
	defer fw.putBatch(b)
	for _, e := range fw.store.Targets(fw.rel.hasEntry, cfgVersion) {
		eDO, err := fw.designObjectOfVersion(e)
		if err != nil {
			continue
		}
		if eDO == do {
			b.Unlink(fw.rel.hasEntry, cfgVersion, e)
		}
	}
	b.Link(fw.rel.hasEntry, cfgVersion, dov)
	_, err = fw.store.Apply(b)
	return err
}

// ConfigEntries returns the design object versions bound in a
// configuration version, sorted by OID.
func (fw *Framework) ConfigEntries(cfgVersion oms.OID) []oms.OID {
	return fw.store.Targets(fw.rel.hasEntry, cfgVersion)
}

// ConfigVersions returns the version OIDs of a configuration in order.
func (fw *Framework) ConfigVersions(cfg oms.OID) []oms.OID {
	vs := fw.store.Targets(fw.rel.cfgHasVersion, cfg)
	fw.sortByIntAttr(vs, "num")
	return vs
}

// ConfigurationsOf returns the configurations attached to a cell version.
// The configures backlink answers this directly — no scan over every
// Configuration object in the store.
func (fw *Framework) ConfigurationsOf(cv oms.OID) []oms.OID {
	return fw.store.Sources(fw.rel.configures, cv)
}

// --- consistency checking ------------------------------------------------

// Inconsistency describes one problem found by CheckConsistency.
type Inconsistency struct {
	Kind   string // e.g. "dangling-hierarchy", "unversioned-object", "stale-derivation"
	Detail string
}

// CheckConsistency runs the data-consistency checks the paper credits to
// JCF's separated metadata (section 3.2): every compOf child must still
// exist and be a cell version; every design object a variant uses must
// exist; every configuration entry must point at a live version. It
// returns all problems found (empty means consistent).
//
// It is feed-driven and incremental, the same dirty-tracking pattern the
// coupling layer's VerifyMapping uses: the sweep's verdict is cached
// together with the feed position it was computed at, and a later call
// first scans the change-feed suffix — if nothing touched the checked
// relationships (compOf / uses / hasEntry / version ownership), the
// published flags or version numbering, the cached verdict is returned
// without visiting the store at all. An unchanged (or
// irrelevantly-changed) database answers in O(changes since last check);
// checkin-heavy traffic in particular never invalidates. Any relevant
// change — or a feed suffix the ring has already evicted — triggers a
// full sweep. CheckConsistencyFull bypasses the cache.
//
// Replicas run this too (their follower stores republish the primary's
// feed), which is what makes it a cheap post-catch-up convergence
// self-check.
func (fw *Framework) CheckConsistency() []Inconsistency {
	fw.cc.mu.Lock()
	defer fw.cc.mu.Unlock()
	if fw.cc.valid {
		recs, ok := fw.store.Changes(fw.cc.lsn)
		if ok && !fw.consistencyRelevant(recs) {
			if len(recs) > 0 {
				fw.cc.lsn = recs[len(recs)-1].LSN
			}
			return append([]Inconsistency(nil), fw.cc.cache...)
		}
	}
	return fw.refreshConsistencyLocked()
}

// CheckConsistencyFull runs the full sweep unconditionally (refreshing
// the cache) — the pre-feed behaviour, kept for audits and for the
// cached-vs-full ablation.
func (fw *Framework) CheckConsistencyFull() []Inconsistency {
	fw.cc.mu.Lock()
	defer fw.cc.mu.Unlock()
	return fw.refreshConsistencyLocked()
}

// refreshConsistencyLocked sweeps and refills the cache; caller holds
// fw.cc.mu. The feed position is read BEFORE the sweep: changes landing
// while the sweep runs are re-examined by the next call — conservative,
// never stale.
func (fw *Framework) refreshConsistencyLocked() []Inconsistency {
	at := fw.store.FeedLSN()
	out := fw.consistencySweep()
	fw.cc.valid, fw.cc.lsn, fw.cc.cache = true, at, out
	return append([]Inconsistency(nil), out...)
}

// consistencyRelevant reports whether any record in the suffix can
// change the sweep's verdict.
func (fw *Framework) consistencyRelevant(recs []oms.Change) bool {
	for _, c := range recs {
		switch c.Kind {
		case oms.ChangeLink, oms.ChangeUnlink:
			switch c.Rel {
			case fw.rel.compOf, fw.rel.uses, fw.rel.hasEntry, fw.rel.cellHasVersion:
				return true
			}
		case oms.ChangeSet:
			// "published" drives the stale-hierarchy check, "num" the
			// newest-version ordering. (c.Cleared sets ride the same
			// attrs.)
			if c.Attr == "published" || c.Attr == "num" {
				return true
			}
		case oms.ChangeCreate:
			// Creates cannot dangle an existing edge (OIDs are never
			// reused); only a CellVersion create matters, via the
			// newest-published-version ordering. In particular a
			// DesignObjectVersion create — every checkin — does NOT
			// invalidate, which is what keeps checkin-heavy traffic on
			// the cached path.
			if c.Class == "CellVersion" {
				return true
			}
		case oms.ChangeDelete:
			switch c.Class {
			case "CellVersion", "Cell", "DesignObject", "DesignObjectVersion":
				return true
			}
		}
	}
	return false
}

// consistencySweep is the actual store walk behind both entry points.
// The sweep enumerates each relationship type straight from the store's
// relationship index (Related) instead of walking every object of the
// owning class and asking for its targets — on a populated design
// database the sweep only ever visits objects that actually participate.
func (fw *Framework) consistencySweep() []Inconsistency {
	var out []Inconsistency
	compOf := fw.store.Related(fw.rel.compOf)
	for _, p := range compOf {
		if !fw.store.Exists(p.To) {
			out = append(out, Inconsistency{
				Kind:   "dangling-hierarchy",
				Detail: fmt.Sprintf("cell version %d composed of missing %d", p.From, p.To),
			})
		}
	}
	for _, p := range fw.store.Related(fw.rel.uses) {
		if !fw.store.Exists(p.To) {
			out = append(out, Inconsistency{
				Kind:   "missing-design-object",
				Detail: fmt.Sprintf("variant %d uses missing design object %d", p.From, p.To),
			})
		}
	}
	for _, p := range fw.store.Related(fw.rel.hasEntry) {
		if !fw.store.Exists(p.To) {
			out = append(out, Inconsistency{
				Kind:   "dangling-config-entry",
				Detail: fmt.Sprintf("config version %d binds missing version %d", p.From, p.To),
			})
		}
	}
	// Hierarchy/version staleness: a published parent whose child cell has
	// a newer published version than the one in the hierarchy.
	for _, p := range compOf {
		cell, err := fw.CellOf(p.To)
		if err != nil {
			continue
		}
		versions := fw.CellVersions(cell)
		if len(versions) == 0 {
			continue
		}
		newest := versions[len(versions)-1]
		if newest != p.To && fw.Published(newest) {
			out = append(out, Inconsistency{
				Kind: "stale-hierarchy",
				Detail: fmt.Sprintf("cell version %d uses version %d of cell %q but version %d is published",
					p.From, fw.CellVersionNum(p.To), fw.CellName(cell), fw.CellVersionNum(newest)),
			})
		}
	}
	return out
}
