package jcf

import (
	"fmt"

	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/oms/blobstore"
)

// Content-addressed design data (ISSUE 9).
//
// With a blob store enabled, CheckInData becomes a two-stage pipeline:
// the blob uploads asynchronously (digest computed up front, bytes
// written by the store's bounded worker pool) while the metadata batch —
// version, links, and the ~40-byte ref — commits immediately. Publish is
// the durability gate: it blocks until every upload for the cell version
// has drained and refuses to publish if one failed, so a crash before
// blob durability can never leave a *published* version pointing at a
// missing blob. An unpublished version with a dangling ref is the
// documented crash window; load-time verification tolerates it, and the
// liveness sweep collects the orphaned bytes.

// blobUpload is one registered async upload (guarded by fw.upMu).
// release drops the GC pin PutAsync took before any backend write; it is
// set once at registration and called by CheckInData after the metadata
// batch has resolved, so the blob is pinned for the whole durable-but-
// uncommitted window.
type blobUpload struct {
	ref       blobstore.Ref
	release   func()
	err       error // valid once settled
	settled   bool  // the store's completion callback has run
	abandoned bool  // the checkin's metadata batch failed; outcome moot
}

// cvUploads is the per-cell-version async-upload ledger (guarded by
// fw.upMu). ups holds every upload that still matters to Publish:
// settled successes and settled-and-abandoned entries drop out
// immediately, so what remains is in-flight work and unretried failures.
type cvUploads struct {
	pending int // registered but not yet settled
	ups     []*blobUpload
}

// EnableBlobStore attaches a content-addressed blob store on be and
// spills checkin blobs of at least threshold bytes into it. Must be
// called during wiring — before designers run — and, on a loaded
// framework, verifies that every published design-object version's data
// ref resolves with a matching digest before accepting the store (the
// Load/bootstrap half of the durability contract). The blob namespace
// (blob-<digest>) coexists with the manifest epochs on a shared backend.
func (fw *Framework) EnableBlobStore(be backend.Backend, threshold int, opts ...blobstore.Option) error {
	if threshold <= 0 {
		return fmt.Errorf("jcf: blob spill threshold must be positive, got %d", threshold)
	}
	bs, err := blobstore.New(be, opts...)
	if err != nil {
		return err
	}
	fw.store.AttachBlobs(bs, threshold)
	fw.blobs = bs
	fw.blobThreshold = threshold
	return fw.verifyPublishedBlobs()
}

// BlobStore returns the attached blob store, or nil.
func (fw *Framework) BlobStore() *blobstore.Store { return fw.blobs }

// verifyPublishedBlobs walks every published cell version and fully
// verifies (read + digest check) each design-data ref reachable under
// it. Unpublished versions may dangle — that is exactly the crash window
// the Publish gate exists for — but a published version must resolve.
func (fw *Framework) verifyPublishedBlobs() error {
	for _, cv := range fw.store.All("CellVersion") {
		if !fw.store.GetBool(cv, "published") {
			continue
		}
		if err := fw.forEachCVDataRef(cv, func(dov oms.OID, r blobstore.Ref) error {
			if err := fw.blobs.Verify(r); err != nil {
				return fmt.Errorf("jcf: published version %d: %w", dov, err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// forEachCVDataRef visits the blob ref (if any) of every design object
// version under a cell version.
func (fw *Framework) forEachCVDataRef(cv oms.OID, fn func(dov oms.OID, r blobstore.Ref) error) error {
	for _, variant := range fw.Variants(cv) {
		for _, do := range fw.DesignObjects(variant) {
			for _, dov := range fw.DesignObjectVersions(do) {
				v, ok, err := fw.store.Get(dov, "data")
				if err != nil || !ok || v.Kind != oms.KindBlobRef {
					continue
				}
				r, err := v.AsBlobRef()
				if err != nil {
					return fmt.Errorf("jcf: version %d carries a malformed blob ref: %w", dov, err)
				}
				if err := fn(dov, r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// startUpload registers one pending upload on cv's ledger and hands the
// bytes to the blob store's async pool. The returned token identifies
// the upload for abandonUpload; its ref is ready for the metadata commit
// immediately, pinned against the GC sweep until the caller invokes
// up.release (which it must, exactly once, after the metadata batch has
// resolved either way).
func (fw *Framework) startUpload(cv oms.OID, data []byte) *blobUpload {
	up := &blobUpload{}
	fw.upMu.Lock()
	u := fw.uploads[cv]
	if u == nil {
		u = &cvUploads{}
		fw.uploads[cv] = u
	}
	u.pending++
	u.ups = append(u.ups, up)
	fw.metrics.ledgerDepth.Inc()
	fw.upMu.Unlock()
	up.ref, up.release = fw.blobs.PutAsync(data, func(err error) { fw.finishUpload(cv, up, err) })
	return up
}

// finishUpload settles one upload on cv's ledger and wakes publishers.
func (fw *Framework) finishUpload(cv oms.OID, up *blobUpload, err error) {
	fw.upMu.Lock()
	defer fw.upMu.Unlock()
	u := fw.uploads[cv]
	if u == nil {
		return
	}
	u.pending--
	fw.metrics.ledgerDepth.Dec()
	up.settled = true
	up.err = err
	if err == nil {
		// Content-addressed retry: a successful upload of these bytes
		// makes every earlier failure of the same digest moot.
		for _, other := range u.ups {
			if other.settled && other.err != nil && other.ref == up.ref {
				other.err = nil
			}
		}
	}
	u.compact(fw, cv)
	fw.upCond.Broadcast()
}

// abandonUpload marks an upload as no longer gating Publish — its
// metadata batch failed, so whatever the upload's outcome, no committed
// version references it.
func (fw *Framework) abandonUpload(cv oms.OID, up *blobUpload) {
	fw.upMu.Lock()
	defer fw.upMu.Unlock()
	up.abandoned = true
	if u := fw.uploads[cv]; u != nil {
		u.compact(fw, cv)
	}
	fw.upCond.Broadcast()
}

// compact drops ledger entries that no longer gate Publish (settled
// successes, abandoned-and-settled uploads) and retires the whole ledger
// once empty. Caller holds fw.upMu.
func (u *cvUploads) compact(fw *Framework, cv oms.OID) {
	kept := u.ups[:0]
	for _, up := range u.ups {
		if up.settled && (up.err == nil || up.abandoned) {
			continue
		}
		kept = append(kept, up)
	}
	u.ups = kept
	if u.pending == 0 && len(u.ups) == 0 {
		delete(fw.uploads, cv)
	}
}

// waitUploads blocks until cv has no upload in flight, then reports the
// first still-gating failure, if any. Callers must not hold fw.mu (lock
// order: fw.mu -> upMu, and Wait would park holding it).
func (fw *Framework) waitUploads(cv oms.OID) error {
	fw.upMu.Lock()
	defer fw.upMu.Unlock()
	for fw.uploads[cv] != nil && fw.uploads[cv].pending > 0 {
		fw.upCond.Wait()
	}
	if u := fw.uploads[cv]; u != nil {
		for _, up := range u.ups {
			if up.settled && up.err != nil && !up.abandoned {
				return fmt.Errorf("jcf: design data %s.. not durable: %w", up.ref.Hex()[:12], up.err)
			}
		}
	}
	return nil
}

// uploadsIdle is the Publish re-check under fw.mu: true when cv has
// nothing in flight and nothing gating.
func (fw *Framework) uploadsIdle(cv oms.OID) bool {
	fw.upMu.Lock()
	defer fw.upMu.Unlock()
	u := fw.uploads[cv]
	if u == nil {
		return true
	}
	if u.pending > 0 {
		return false
	}
	for _, up := range u.ups {
		if up.settled && up.err != nil && !up.abandoned {
			return false
		}
	}
	return true
}

// WaitBlobDurable blocks until every async upload registered for the
// cell version has settled, and reports the first still-gating failure
// — the standalone durability barrier (Publish applies it implicitly).
// A no-op without a blob store or with nothing in flight.
func (fw *Framework) WaitBlobDurable(cv oms.OID) error {
	if fw.blobs == nil {
		return nil
	}
	return fw.waitUploads(cv)
}

// SweepBlobs garbage-collects CAS entries no live ref reaches: the live
// set is every KindBlobRef value in the store; blobs mid-upload or
// pinned (headed for or through the CAS with their metadata batch still
// in flight) are never collected. Returns the number of blobs removed.
// Refcount-free by design: the sweep recomputes liveness from the store,
// so no counter can drift — and it does so inside the blob store's sweep
// fence, so a checkin that commits its ref and drops its pin while the
// sweep is running can never be selected off a stale live set.
func (fw *Framework) SweepBlobs() (int, error) {
	if fw.blobs == nil {
		return 0, nil
	}
	return fw.blobs.Sweep(func() map[[32]byte]bool {
		live := map[[32]byte]bool{}
		fw.store.ForEachBlobRef(func(_ oms.OID, _ string, r blobstore.Ref) {
			live[r.Digest] = true
		})
		return live
	})
}

// BlobStats reports the design-data accounting split (logical vs
// physical bytes) the dedup ratio is computed from.
func (fw *Framework) BlobStats() oms.BlobStats {
	return fw.store.BlobStatsNow()
}
