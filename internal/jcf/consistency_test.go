package jcf

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/itc"
)

// TestCheckConsistencyCached: the feed-driven check answers from cache
// across irrelevant traffic, invalidates on relevant changes, and
// CheckConsistencyFull always re-sweeps.
func TestCheckConsistencyCached(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if probs := fw.CheckConsistency(); len(probs) != 0 {
		t.Fatalf("fresh world inconsistent: %v", probs)
	}

	// Whitebox: plant a sentinel in the cache. A cache hit returns it; a
	// re-sweep erases it.
	sentinel := Inconsistency{Kind: "sentinel", Detail: "cache probe"}
	fw.cc.mu.Lock()
	fw.cc.cache = []Inconsistency{sentinel}
	fw.cc.mu.Unlock()

	// Irrelevant traffic: users, reservations, checkin-style blob sets —
	// none of it touches the checked relationships.
	for i := 0; i < 5; i++ {
		if _, err := fw.CreateUser(fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if got := fw.CheckConsistency(); len(got) != 1 || got[0].Kind != "sentinel" {
		t.Fatalf("irrelevant traffic invalidated the cache: %v", got)
	}

	// A real checkin (DesignObjectVersion create + doHasVersion link +
	// blob + derivation) must stay on the cached path too — the whole
	// point of the relevance filter. The design object setup itself IS
	// relevant (uses link), so re-seed the sentinel after it.
	variants := fw.Variants(w.cv)
	do, err := fw.CreateDesignObject(variants[0], "cc-probe", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.CheckConsistency(); len(got) != 0 {
		t.Fatalf("design object setup: %v", got)
	}
	fw.cc.mu.Lock()
	fw.cc.cache = []Inconsistency{sentinel}
	fw.cc.mu.Unlock()
	src := filepath.Join(t.TempDir(), "probe.sch")
	if err := os.WriteFile(src, []byte("netlist"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := fw.CheckInData("anna", do, src); err != nil {
			t.Fatal(err)
		}
	}
	if got := fw.CheckConsistency(); len(got) != 1 || got[0].Kind != "sentinel" {
		t.Fatalf("checkins invalidated the consistency cache: %v", got)
	}

	// Full bypasses the cache regardless.
	if got := fw.CheckConsistencyFull(); len(got) != 0 {
		t.Fatalf("full sweep: %v", got)
	}

	// Relevant traffic: a second cell version (cellHasVersion link) must
	// invalidate; re-plant the sentinel to prove the sweep ran.
	fw.cc.mu.Lock()
	fw.cc.cache = []Inconsistency{sentinel}
	fw.cc.mu.Unlock()
	cv2, err := fw.CreateCellVersion(w.cell, "asic", w.team)
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.CheckConsistency(); len(got) != 0 {
		t.Fatalf("relevant traffic served from cache: %v", got)
	}

	// And a real problem is reported through the cached path: an older
	// version in a hierarchy while a newer one is published.
	parentCell, err := fw.CreateCell(w.project, "chip-top")
	if err != nil {
		t.Fatal(err)
	}
	parent, err := fw.CreateCellVersion(parentCell, "asic", w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SubmitHierarchy(parent, w.cv); err != nil {
		t.Fatal(err)
	}
	if err := fw.Reserve("anna", cv2); err != nil {
		t.Fatal(err)
	}
	if err := fw.Publish("anna", cv2); err != nil {
		t.Fatal(err)
	}
	got := fw.CheckConsistency()
	if len(got) != 1 || got[0].Kind != "stale-hierarchy" {
		t.Fatalf("stale hierarchy not detected: %v", got)
	}
	// Steady state: the verdict keeps answering from cache.
	if again := fw.CheckConsistency(); len(again) != 1 || again[0].Kind != "stale-hierarchy" {
		t.Fatalf("cached verdict drifted: %v", again)
	}
}

// TestNotifierStatsCountsVetoes: a bus handler refusing a framework
// event is no longer silent — the loss shows up in Notifier.Stats.
func TestNotifierStatsCountsVetoes(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	bus := itc.NewBus()
	bus.Subscribe(TopicPublish, "grumpy", func(m itc.Message) error {
		return fmt.Errorf("vetoed")
	})
	reservations := make(chan itc.Message, 8)
	bus.Subscribe(TopicReservation, "listener", func(m itc.Message) error {
		reservations <- m
		return nil
	})
	n, err := fw.StartNotifier(bus)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := fw.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	// Publish commits publish+release as one group; wait for the release
	// notification so the vetoed publish has certainly been attempted.
	deadline := time.After(10 * time.Second)
	for got := 0; got < 2; {
		select {
		case <-reservations:
			got++
		case <-deadline:
			t.Fatal("reservation notifications never arrived")
		}
	}
	s := n.Stats()
	if s.Vetoed != 1 {
		t.Fatalf("vetoed = %d, want 1 (stats %+v)", s.Vetoed, s)
	}
	if s.Published < 2 {
		t.Fatalf("published = %d, want >= 2", s.Published)
	}
}
