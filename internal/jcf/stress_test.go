package jcf

import (
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/oms"
)

// TestSaveCrashConsistencyUnderLoad is the regression test for the torn
// framework snapshot: Framework.Save runs in a loop while designer
// goroutines create cells, derive versions, reserve workspaces and link
// hierarchies against the same framework. Every saved pair must Load
// successfully and every reservation in the framework half must resolve
// to a live object in the store half. Before the single-cut Save, a
// reservation landing between the two writes produced exactly the torn
// pair this test asserts can no longer exist. Run under -race by the
// `make check` gate.
func TestSaveCrashConsistencyUnderLoad(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	const designers = 4
	team := w.team
	for d := 0; d < designers; d++ {
		name := fmt.Sprintf("designer%d", d)
		uid, err := fw.CreateUser(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.AddMember(team, uid); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for d := 0; d < designers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			user := fmt.Sprintf("designer%d", d)
			var prevCV oms.OID
			for i := 0; !stop.Load(); i++ {
				cell, err := fw.CreateCell(w.project, fmt.Sprintf("c-%d-%d", d, i))
				if err != nil {
					t.Errorf("designer %d: create cell: %v", d, err)
					return
				}
				cv, err := fw.CreateCellVersion(cell, "asic", team)
				if err != nil {
					t.Errorf("designer %d: create cell version: %v", d, err)
					return
				}
				if err := fw.Reserve(user, cv); err != nil {
					t.Errorf("designer %d: reserve: %v", d, err)
					return
				}
				if prevCV != 0 {
					// Link traffic: the new version contains the previous
					// one (a growing per-designer hierarchy).
					if err := fw.SubmitHierarchy(cv, prevCV); err != nil {
						t.Errorf("designer %d: hierarchy: %v", d, err)
						return
					}
				}
				prevCV = cv
			}
		}(d)
	}

	base := t.TempDir()
	const saves = 8
	for i := 0; i < saves; i++ {
		dir := filepath.Join(base, strconv.Itoa(i))
		if err := fw.Save(dir); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("save %d: %v", i, err)
		}
		// Load already rejects torn pairs (checksums + mutual
		// consistency); assert the reservation property explicitly too.
		ld, err := Load(dir)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("load of save %d: %v", i, err)
		}
		ld.mu.RLock()
		for cv, user := range ld.reservations {
			if !ld.store.Exists(cv) {
				ld.mu.RUnlock()
				stop.Store(true)
				wg.Wait()
				t.Fatalf("save %d: reservation by %q names cell version %d absent from oms snapshot", i, user, cv)
			}
		}
		ld.mu.RUnlock()
	}
	stop.Store(true)
	wg.Wait()
}

// TestDeriveConfigVersionConcurrent is the regression test for the
// duplicate-number race: DeriveConfigVersion's count-then-create now
// runs under numMu (like cell version and variant numbering), so
// concurrent derives never allocate the same number. Only one derive
// per predecessor can succeed — each config version has at most one
// successor — and since the fix a losing derive retracts its version
// instead of leaving a duplicate-numbered one attached.
func TestDeriveConfigVersionConcurrent(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	cfg, cfgV1, err := fw.CreateConfiguration(w.cv, "golden")
	if err != nil {
		t.Fatal(err)
	}
	const derives = 16
	var wg sync.WaitGroup
	var wins atomic.Int64
	for i := 0; i < derives; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fw.DeriveConfigVersion(cfgV1); err == nil {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d concurrent derives from one version succeeded, want exactly 1", wins.Load())
	}
	versions := fw.ConfigVersions(cfg)
	if len(versions) != 2 { // v1 + the single winner; losers left nothing
		t.Fatalf("config has %d versions, want 2 (losers must retract)", len(versions))
	}
	seen := map[int64]oms.OID{}
	for _, v := range versions {
		num := fw.store.GetInt(v, "num")
		if other, dup := seen[num]; dup {
			t.Fatalf("config versions %d and %d share number %d", other, v, num)
		}
		seen[num] = v
	}
	// A follow-up derive from the new tip keeps numbering strictly
	// increasing even across the gaps retracted losers may leave.
	tip := versions[len(versions)-1]
	tipNum := fw.store.GetInt(tip, "num")
	v3, err := fw.DeriveConfigVersion(tip)
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.store.GetInt(v3, "num"); got != tipNum+1 {
		t.Fatalf("next derived num = %d, want %d", got, tipNum+1)
	}
}
