package jcf

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/flow"
	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/otod"
)

// Framework persistence: one crash-consistent cut over the OMS database
// and the framework metadata around it — registered flows, workspace
// reservations, typed hierarchies and shares — committed through a
// pluggable storage backend.
//
// The failure this design removes: the old Save wrote oms.json, *then*
// captured framework state, so a designer reserving or linking in the
// gap produced a framework.json referencing OIDs absent from oms.json.
// Now both halves are captured under a single cut (fw.mu held across the
// store's stripe-locked Snapshot) and committed by ONE atomic manifest
// Put; Load refuses any pair that is not mutually consistent.
//
// Layout through the backend (file backend shown; the segment backend
// stores the same names in its write-ahead log):
//
//	CURRENT          commit manifest: epoch, payload names, checksums.
//	                 Its atomic replacement is the commit point.
//	oms@<epoch>        the object database snapshot payload
//	framework@<epoch>  release, flows, reservations, 4.0 extension state
//
// Older epochs are garbage-collected after a successful commit. Legacy
// state directories (oms.json + framework.json, written before the
// manifest scheme) still load via a fallback.
//
// Flow enactments are not persisted: like the original, activity
// execution state lives with the session, while all design data and
// metadata live in the database.

// persistedFlow serializes one registered flow.
type persistedFlow struct {
	Name       string              `json:"name"`
	Activities []flow.Activity     `json:"activities"`
	Precedes   map[string][]string `json:"precedes"`
	OID        oms.OID             `json:"oid"`
}

// persistedState is the framework payload content.
type persistedState struct {
	Release      Release                          `json:"release"`
	Flows        []persistedFlow                  `json:"flows"`
	Reservations map[oms.OID]string               `json:"reservations"`
	TypedHier    map[oms.OID]map[string][]oms.OID `json:"typed_hier,omitempty"`
	Shares       map[oms.OID][]oms.OID            `json:"shares,omitempty"`
}

// The CURRENT commit manifest — the one object whose atomic replacement
// commits a (framework, oms) snapshot pair, with the base + delta-chain
// bookkeeping of differential commits — is a shared format now: it lives
// in the backend package (backend.Manifest) so the replication publisher
// can ship the same commit stream this layer writes.

const (
	legacyOMS   = "oms.json"
	legacyFW    = "framework.json"
	omsPrefix   = "oms@"
	fwPrefix    = "framework@"
	deltaPrefix = "delta@"

	// defaultMaxDeltaChain bounds how many deltas may accumulate before
	// Save compacts back to a full base snapshot: load time and GC reach
	// grow with the chain, so it is periodically reset.
	defaultMaxDeltaChain = 64
)

// Save persists the framework into dir (created if needed) through the
// default atomic-rename file backend. See SaveTo.
func (fw *Framework) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	b, err := backend.OpenFile(dir)
	if err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	return fw.SaveTo(b)
}

// SetDifferentialSave toggles differential saves (on by default). With
// differential saves off — or on a backend that is not DeltaCapable —
// every SaveTo writes a full base snapshot. The knob exists for the
// full-vs-differential ablation (`make bench-feed`).
func (fw *Framework) SetDifferentialSave(enabled bool) {
	fw.saveMu.Lock()
	defer fw.saveMu.Unlock()
	fw.fullSaveOnly = !enabled
}

// SaveTo persists the framework through an arbitrary storage backend.
//
// The capture is one consistent cut: the framework maps are copied and
// the store snapshot is taken while fw.mu is held, so every OID the
// framework state references exists in the store payload. Designers are
// stalled only for that capture — encoding and the backend writes run
// outside all locks. The pair becomes visible atomically when the
// CURRENT manifest is Put; a crash at any earlier point leaves the
// previous epoch fully intact.
//
// On a DeltaCapable backend (the segment/WAL backend), a SaveTo that
// follows a commit this same framework instance made writes only the
// change-feed suffix since that commit — a delta payload of O(what
// changed), not O(store) — and the manifest binds base epoch + delta
// chain. The framework metadata payload is always written in full (it
// is small). Save falls back to a full base snapshot whenever the
// anchor is missing (first save, a different backend, a freshly loaded
// framework), the feed ring has evicted part of the needed suffix, or
// the chain has reached its compaction bound.
func (fw *Framework) SaveTo(b backend.Backend) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	// One saver at a time per framework: the epoch read-modify-write and
	// the old-epoch GC below are not meant to race with themselves.
	// Designers never take saveMu, so they are unaffected.
	fw.saveMu.Lock()
	defer fw.saveMu.Unlock()

	epoch := int64(1)
	var prev backend.Manifest
	havePrev := false
	if m, err := backend.LoadManifest(b); err == nil {
		prev, havePrev = m, true
		epoch = m.Epoch + 1
	} else if !errors.Is(err, backend.ErrNotFound) {
		return fmt.Errorf("jcf: save: reading previous manifest: %w", err)
	}

	maxChain := fw.maxDeltaChain
	if maxChain <= 0 {
		maxChain = defaultMaxDeltaChain
	}
	dc, deltaCapable := b.(backend.DeltaCapable)
	wantDelta := !fw.fullSaveOnly &&
		deltaCapable && dc.SupportsDeltas() &&
		havePrev && fw.lastSaveTo == b && fw.lastSaveEpoch == prev.Epoch &&
		prev.FeedLSN == fw.lastSaveLSN &&
		len(prev.Deltas) < maxChain

	// --- the consistent cut -------------------------------------------
	fw.mu.RLock()
	state := persistedState{
		Release:      fw.release,
		Reservations: map[oms.OID]string{},
		TypedHier:    map[oms.OID]map[string][]oms.OID{},
		Shares:       map[oms.OID][]oms.OID{},
	}
	for cv, user := range fw.reservations {
		state.Reservations[cv] = user
	}
	for p, m := range fw.typedHier {
		cp := map[string][]oms.OID{}
		for vt, kids := range m {
			cp[vt] = append([]oms.OID(nil), kids...)
		}
		state.TypedHier[p] = cp
	}
	for p, cells := range fw.shares {
		state.Shares[p] = append([]oms.OID(nil), cells...)
	}
	flows := make(map[string]*flow.Flow, len(fw.flows))
	flowOIDs := make(map[string]oms.OID, len(fw.flowOIDs))
	for n, f := range fw.flows {
		flows[n] = f
		flowOIDs[n] = fw.flowOIDs[n]
	}
	// The store cut is taken while fw.mu is still held: anything the
	// captured framework state references was created strictly before
	// this point, so it is inside the cut. Lock order fw.mu -> stripes is
	// the one Publish already uses. The differential cut reads the
	// change-feed suffix instead of snapshotting — same ordering
	// argument: every OID the captured maps reference committed (and
	// published) before this read, so the suffix up to the current feed
	// watermark covers it.
	var snap *oms.Snapshot
	var delta []oms.Change
	var deltaTo uint64
	if wantDelta {
		recs, ok := fw.store.Changes(fw.lastSaveLSN)
		if ok {
			delta, deltaTo = recs, fw.lastSaveLSN
			if len(recs) > 0 {
				deltaTo = recs[len(recs)-1].LSN
			}
		} else {
			// The ring evicted part of the suffix (the framework fell
			// more than the retention window behind): full snapshot.
			wantDelta = false
		}
	}
	if !wantDelta {
		// The RLock-spanning Snapshot is the point of SaveTo: the cut
		// must be consistent with the flow/config tables read above.
		//lint:allow holdblock SaveTo needs a store cut consistent with the framework tables it read under the same RLock
		snap = fw.store.Snapshot()
	}
	fw.mu.RUnlock()
	// --- everything below runs outside all framework/store locks ------

	for _, name := range sortedFlowNames(flows) {
		f := flows[name]
		pf := persistedFlow{Name: name, Precedes: map[string][]string{}, OID: flowOIDs[name]}
		for _, an := range f.Activities() {
			a, err := f.Activity(an)
			if err != nil {
				return err
			}
			pf.Activities = append(pf.Activities, a)
			if succ := f.Successors(an); len(succ) > 0 {
				pf.Precedes[an] = succ
			}
		}
		state.Flows = append(state.Flows, pf)
	}
	fwPayload, err := json.MarshalIndent(&state, "", " ")
	if err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}

	fwName := fmt.Sprintf("%s%d", fwPrefix, epoch)
	var manifest backend.Manifest
	switch {
	case wantDelta:
		// Differential commit: the base payload and earlier deltas are
		// already durable; only the new suffix (if any) is written.
		manifest = backend.Manifest{
			Epoch:        epoch,
			OMS:          prev.OMS,
			Framework:    fwName,
			OMSSum:       prev.OMSSum,
			FrameworkSum: backend.SHA256Hex(fwPayload),
			BaseEpoch:    prev.BaseEpoch,
			BaseLSN:      prev.BaseLSN,
			Deltas:       append([]backend.DeltaRef(nil), prev.Deltas...),
			FeedLSN:      deltaTo,
		}
		if len(delta) > 0 {
			deltaPayload, err := oms.EncodeChanges(delta)
			if err != nil {
				return fmt.Errorf("jcf: save: %w", err)
			}
			deltaName := fmt.Sprintf("%s%d", deltaPrefix, epoch)
			if err := b.Put(deltaName, deltaPayload); err != nil {
				return fmt.Errorf("jcf: save: %w", err)
			}
			manifest.Deltas = append(manifest.Deltas, backend.DeltaRef{
				Name:    deltaName,
				Sum:     backend.SHA256Hex(deltaPayload),
				FromLSN: fw.lastSaveLSN,
				ToLSN:   deltaTo,
			})
		}
	default:
		// Full commit: a fresh base snapshot, empty delta chain.
		omsPayload, err := snap.EncodeJSON()
		if err != nil {
			return fmt.Errorf("jcf: save: %w", err)
		}
		omsName := fmt.Sprintf("%s%d", omsPrefix, epoch)
		if err := b.Put(omsName, omsPayload); err != nil {
			return fmt.Errorf("jcf: save: %w", err)
		}
		manifest = backend.Manifest{
			Epoch:        epoch,
			OMS:          omsName,
			Framework:    fwName,
			OMSSum:       backend.SHA256Hex(omsPayload),
			FrameworkSum: backend.SHA256Hex(fwPayload),
			BaseEpoch:    epoch,
			BaseLSN:      snap.LSN(),
			FeedLSN:      snap.LSN(),
		}
	}
	if err := b.Put(fwName, fwPayload); err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	// The commit point: one atomic Put flips readers to the new pair.
	if err := backend.PutManifest(b, manifest); err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	fw.lastSaveTo, fw.lastSaveEpoch, fw.lastSaveLSN = b, epoch, manifest.FeedLSN
	var prevRef *backend.Manifest
	if havePrev {
		prevRef = &prev
	}
	gcOldEpochs(b, &manifest, prevRef)
	return nil
}

// gcOldEpochs drops superseded snapshot payloads. Everything the new
// manifest references (base snapshot, delta chain, framework payload)
// is retained, and so is everything the immediately preceding manifest
// referenced: a concurrent LoadFrom that read the previous CURRENT
// moments before this commit must still find the payloads it names.
// Best effort: a failure leaves stale-but-unreferenced names behind,
// never a broken commit.
func gcOldEpochs(b backend.Backend, committed, prev *backend.Manifest) {
	names, err := b.List()
	if err != nil {
		return
	}
	keep := map[string]bool{}
	for _, m := range []*backend.Manifest{committed, prev} {
		if m == nil {
			continue
		}
		for _, n := range m.PayloadNames() {
			keep[n] = true
		}
	}
	for _, n := range names {
		if keep[n] {
			continue
		}
		if !strings.HasPrefix(n, omsPrefix) && !strings.HasPrefix(n, fwPrefix) &&
			!strings.HasPrefix(n, deltaPrefix) {
			continue
		}
		_ = b.Delete(n) //lint:allow noerrdrop epoch GC is best-effort; a failed delete must not fail the committed save
	}
}

func sortedFlowNames(m map[string]*flow.Flow) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	// Insertion-order independence: sort for deterministic files.
	sort.Strings(out)
	return out
}

// Load restores a framework saved by Save from a state directory.
func Load(dir string) (*Framework, error) {
	b, err := backend.OpenFile(dir)
	if err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	return LoadFrom(b)
}

// LoadFrom restores a framework from a storage backend. The manifest's
// checksums are verified and the (framework, oms) pair is validated for
// mutual consistency — a torn pair (one that references objects the
// store payload does not contain) is rejected rather than resurrected.
//
// A differential commit is restored by decoding the base snapshot and
// replaying the manifest's delta chain in order; every payload is
// checksum-verified and the chain's LSN ranges must be contiguous.
//
// Backends without a CURRENT manifest fall back to the legacy layout
// (framework.json + oms.json as two independent files).
func LoadFrom(b backend.Backend) (*Framework, error) {
	manifest, err := backend.LoadManifest(b)
	if errors.Is(err, backend.ErrNotFound) {
		return loadLegacy(b)
	}
	if err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	fwPayload, err := b.Get(manifest.Framework)
	if err != nil {
		return nil, fmt.Errorf("jcf: load: manifest epoch %d: %w", manifest.Epoch, err)
	}
	omsPayload, err := b.Get(manifest.OMS)
	if err != nil {
		return nil, fmt.Errorf("jcf: load: manifest epoch %d: %w", manifest.Epoch, err)
	}
	if got := backend.SHA256Hex(fwPayload); got != manifest.FrameworkSum {
		return nil, fmt.Errorf("jcf: load: %s checksum mismatch (corrupt payload)", manifest.Framework)
	}
	if got := backend.SHA256Hex(omsPayload); got != manifest.OMSSum {
		return nil, fmt.Errorf("jcf: load: %s checksum mismatch (corrupt payload)", manifest.OMS)
	}
	store, err := decodeStore(omsPayload)
	if err != nil {
		return nil, err
	}
	// The chain must attach to the base's cut and stay contiguous — a
	// gap replays incomplete history, which is refused as loudly as a
	// torn pair.
	prevTo := manifest.BaseLSN
	for _, d := range manifest.Deltas {
		payload, err := b.Get(d.Name)
		if err != nil {
			return nil, fmt.Errorf("jcf: load: manifest epoch %d: %w", manifest.Epoch, err)
		}
		if got := backend.SHA256Hex(payload); got != d.Sum {
			return nil, fmt.Errorf("jcf: load: %s checksum mismatch (corrupt delta)", d.Name)
		}
		if d.FromLSN != prevTo {
			return nil, fmt.Errorf("jcf: load: delta chain broken at %s: starts at %d, expected %d",
				d.Name, d.FromLSN, prevTo)
		}
		recs, err := oms.DecodeChanges(payload)
		if err != nil {
			return nil, fmt.Errorf("jcf: load: %s: %w", d.Name, err)
		}
		if err := store.ReplayChanges(recs); err != nil {
			return nil, fmt.Errorf("jcf: load: %s: %w", d.Name, err)
		}
		prevTo = d.ToLSN
	}
	return decodeFramework(fwPayload, store)
}

// loadLegacy reads the pre-manifest two-file layout.
func loadLegacy(b backend.Backend) (*Framework, error) {
	fwPayload, err := b.Get(legacyFW)
	if err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	omsPayload, err := b.Get(legacyOMS)
	if err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	return decodePair(fwPayload, omsPayload)
}

// decodePair rebuilds a framework from the two snapshot payloads and
// validates their mutual consistency (the legacy non-differential path).
func decodePair(fwPayload, omsPayload []byte) (*Framework, error) {
	store, err := decodeStore(omsPayload)
	if err != nil {
		return nil, err
	}
	return decodeFramework(fwPayload, store)
}

// decodeStore rebuilds the OMS store from a base snapshot payload.
func decodeStore(omsPayload []byte) (*oms.Store, error) {
	schema, err := otod.JCFModel().Schema()
	if err != nil {
		return nil, err
	}
	store, err := oms.DecodeSnapshot(omsPayload, schema)
	if err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	return store, nil
}

// decodeFramework rebuilds the framework metadata around a restored
// store and validates their mutual consistency.
func decodeFramework(fwPayload []byte, store *oms.Store) (*Framework, error) {
	var state persistedState
	if err := json.Unmarshal(fwPayload, &state); err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	fw, err := New(state.Release)
	if err != nil {
		return nil, err
	}
	fw.store = store

	for _, pf := range state.Flows {
		f := flow.New(pf.Name)
		for _, a := range pf.Activities {
			if err := f.AddActivity(a); err != nil {
				return nil, fmt.Errorf("jcf: load flow %q: %w", pf.Name, err)
			}
		}
		for before, afters := range pf.Precedes {
			for _, after := range afters {
				if err := f.AddPrecedes(before, after); err != nil {
					return nil, fmt.Errorf("jcf: load flow %q: %w", pf.Name, err)
				}
			}
		}
		if err := f.Freeze(); err != nil {
			return nil, fmt.Errorf("jcf: load flow %q: %w", pf.Name, err)
		}
		fw.mu.Lock()
		fw.flows[pf.Name] = f
		fw.flowOIDs[pf.Name] = pf.OID
		fw.mu.Unlock()
	}
	fw.mu.Lock()
	for cv, user := range state.Reservations {
		fw.reservations[cv] = user
	}
	if state.TypedHier != nil {
		fw.typedHier = state.TypedHier
	}
	if state.Shares != nil {
		fw.shares = state.Shares
	}
	fw.mu.Unlock()
	if err := fw.validateLoadedState(); err != nil {
		return nil, err
	}
	return fw, nil
}

// validateLoadedState cross-checks the restored framework metadata
// against the restored store: every OID the framework half references
// must resolve. A failure means the pair was written by something other
// than a single-cut Save (e.g. hand-edited or mixed epochs) — exactly
// the torn snapshot Load must refuse to resurrect.
func (fw *Framework) validateLoadedState() error {
	torn := func(format string, args ...any) error {
		return fmt.Errorf("jcf: load: torn snapshot pair: %s", fmt.Sprintf(format, args...))
	}
	for cv, user := range fw.reservations {
		if !fw.store.Exists(cv) {
			return torn("reservation by %q names missing cell version %d", user, cv)
		}
	}
	for name, oid := range fw.flowOIDs {
		if oid != oms.InvalidOID && !fw.store.Exists(oid) {
			return torn("flow %q names missing object %d", name, oid)
		}
	}
	for p, m := range fw.typedHier {
		if !fw.store.Exists(p) {
			return torn("typed hierarchy names missing parent %d", p)
		}
		for vt, kids := range m {
			for _, k := range kids {
				if !fw.store.Exists(k) {
					return torn("typed hierarchy %d/%s names missing child %d", p, vt, k)
				}
			}
		}
	}
	for p, cells := range fw.shares {
		if !fw.store.Exists(p) {
			return torn("share names missing project %d", p)
		}
		for _, c := range cells {
			if !fw.store.Exists(c) {
				return torn("project %d shares missing cell %d", p, c)
			}
		}
	}
	return nil
}
