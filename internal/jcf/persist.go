package jcf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/flow"
	"repro/internal/oms"
	"repro/internal/otod"
)

// Framework persistence. The OMS database already persists itself
// (oms.Store.Save); this file adds the framework-level state around it —
// registered flows, workspace reservations, typed hierarchies and shares —
// so a JCF instance survives desktop restarts like the original did.
//
// Layout under the state directory:
//
//	oms.json        the object database snapshot
//	framework.json  release, flows, reservations, 4.0 extension state

// persistedFlow serializes one registered flow.
type persistedFlow struct {
	Name       string              `json:"name"`
	Activities []flow.Activity     `json:"activities"`
	Precedes   map[string][]string `json:"precedes"`
	OID        oms.OID             `json:"oid"`
}

// persistedState is the framework.json content.
type persistedState struct {
	Release      Release                          `json:"release"`
	Flows        []persistedFlow                  `json:"flows"`
	Reservations map[oms.OID]string               `json:"reservations"`
	TypedHier    map[oms.OID]map[string][]oms.OID `json:"typed_hier,omitempty"`
	Shares       map[oms.OID][]oms.OID            `json:"shares,omitempty"`
}

// Save writes the framework state into dir (created if needed). Flow
// enactments are not persisted: like the original, activity execution
// state lives with the session, while all design data and metadata live
// in the database.
func (fw *Framework) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	if err := fw.store.Save(filepath.Join(dir, "oms.json")); err != nil {
		return err
	}
	fw.mu.RLock()
	state := persistedState{
		Release:      fw.release,
		Reservations: map[oms.OID]string{},
		TypedHier:    map[oms.OID]map[string][]oms.OID{},
		Shares:       map[oms.OID][]oms.OID{},
	}
	for cv, user := range fw.reservations {
		state.Reservations[cv] = user
	}
	for p, m := range fw.typedHier {
		cp := map[string][]oms.OID{}
		for vt, kids := range m {
			cp[vt] = append([]oms.OID(nil), kids...)
		}
		state.TypedHier[p] = cp
	}
	for p, cells := range fw.shares {
		state.Shares[p] = append([]oms.OID(nil), cells...)
	}
	flows := make(map[string]*flow.Flow, len(fw.flows))
	flowOIDs := make(map[string]oms.OID, len(fw.flowOIDs))
	for n, f := range fw.flows {
		flows[n] = f
		flowOIDs[n] = fw.flowOIDs[n]
	}
	fw.mu.RUnlock()

	for _, name := range sortedFlowNames(flows) {
		f := flows[name]
		pf := persistedFlow{Name: name, Precedes: map[string][]string{}, OID: flowOIDs[name]}
		for _, an := range f.Activities() {
			a, err := f.Activity(an)
			if err != nil {
				return err
			}
			pf.Activities = append(pf.Activities, a)
			if succ := f.Successors(an); len(succ) > 0 {
				pf.Precedes[an] = succ
			}
		}
		state.Flows = append(state.Flows, pf)
	}
	data, err := json.MarshalIndent(&state, "", " ")
	if err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	tmp := filepath.Join(dir, "framework.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "framework.json")); err != nil {
		return fmt.Errorf("jcf: save: %w", err)
	}
	return nil
}

func sortedFlowNames(m map[string]*flow.Flow) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	// Insertion-order independence: sort for deterministic files.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Load restores a framework saved by Save.
func Load(dir string) (*Framework, error) {
	data, err := os.ReadFile(filepath.Join(dir, "framework.json"))
	if err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	var state persistedState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("jcf: load: %w", err)
	}
	fw, err := New(state.Release)
	if err != nil {
		return nil, err
	}
	model := otod.JCFModel()
	schema, err := model.Schema()
	if err != nil {
		return nil, err
	}
	store, err := oms.Load(filepath.Join(dir, "oms.json"), schema)
	if err != nil {
		return nil, err
	}
	fw.store = store

	for _, pf := range state.Flows {
		f := flow.New(pf.Name)
		for _, a := range pf.Activities {
			if err := f.AddActivity(a); err != nil {
				return nil, fmt.Errorf("jcf: load flow %q: %w", pf.Name, err)
			}
		}
		for before, afters := range pf.Precedes {
			for _, after := range afters {
				if err := f.AddPrecedes(before, after); err != nil {
					return nil, fmt.Errorf("jcf: load flow %q: %w", pf.Name, err)
				}
			}
		}
		if err := f.Freeze(); err != nil {
			return nil, fmt.Errorf("jcf: load flow %q: %w", pf.Name, err)
		}
		fw.mu.Lock()
		fw.flows[pf.Name] = f
		fw.flowOIDs[pf.Name] = pf.OID
		fw.mu.Unlock()
	}
	fw.mu.Lock()
	for cv, user := range state.Reservations {
		fw.reservations[cv] = user
	}
	if state.TypedHier != nil {
		fw.typedHier = state.TypedHier
	}
	if state.Shares != nil {
		fw.shares = state.Shares
	}
	fw.mu.Unlock()
	return fw, nil
}
