package jcf

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/oms"
	"repro/internal/oms/blobstore"
)

// The workspace concept (section 2.1): "the workspace concept of JCF
// allows only one user to work on a particular cell version if this cell
// version is reserved in his private workspace. Other users are only
// allowed to read the published parts of the design data. When the work is
// finished, the cell can be published and then be modified by other
// users." Unlike FMCAD's single .meta file, reservations are per cell
// version, so designers working on disjoint cells never conflict —
// the section 3.1 result.

// Reserve places a cell version into the user's private workspace. The
// user must be a member of the team attached to the cell version, and no
// other user may hold the reservation.
func (fw *Framework) Reserve(user string, cv oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	userOID, err := fw.User(user)
	if err != nil {
		return err
	}
	team, err := fw.AttachedTeam(cv)
	if err != nil {
		return err
	}
	if !fw.IsMember(team, userOID) {
		return fmt.Errorf("%w (user %s)", ErrNotMember, user)
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if holder, held := fw.reservations[cv]; held {
		fw.statReserveConflicts.Inc()
		if holder == user {
			return fmt.Errorf("%w (already in your workspace)", ErrReserved)
		}
		return fmt.Errorf("%w (held by %s, wanted by %s)", ErrReserved, holder, user)
	}
	// Mirror the reservation into the database: the Set rides the change
	// feed, which is how tools learn about workspace traffic (the
	// feed-driven notification bridge) and how a second machine replays
	// it. The in-memory map stays authoritative for access checks.
	if err := fw.store.Set(cv, "reservedBy", oms.S(user)); err != nil {
		return err
	}
	fw.reservations[cv] = user
	return nil
}

// ReleaseReservation drops the user's reservation without publishing.
func (fw *Framework) ReleaseReservation(user string, cv oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.reservations[cv] != user {
		return fmt.Errorf("%w (user %s)", ErrNotReserved, user)
	}
	if err := fw.store.Set(cv, "reservedBy", oms.S("")); err != nil {
		return err
	}
	delete(fw.reservations, cv)
	return nil
}

// Publish marks the cell version's design data as published and releases
// the reservation, making the data readable (and the version reservable)
// by other team members.
func (fw *Framework) Publish(user string, cv oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	// Durability gate (ISSUE 9): published data must be readable by the
	// whole team, so every async blob upload for this cell version has to
	// be durable first. Wait outside fw.mu (Wait would park holding it),
	// then re-check under the lock — a checkin that raced in between
	// registers its upload before fw.mu.RLock, so the re-check sees it.
	gateWait := obs.Now()
	for {
		if err := fw.waitUploads(cv); err != nil {
			return fmt.Errorf("jcf: publish %d: %w", cv, err)
		}
		fw.mu.Lock()
		if fw.uploadsIdle(cv) {
			break
		}
		fw.mu.Unlock()
	}
	fw.metrics.publishGate.Since(gateWait)
	// On a framework loaded from disk the ledger is empty; the refs
	// themselves are the record. Presence in the CAS is the publishable
	// bar (EnableBlobStore already digest-verified everything published).
	if fw.blobs != nil {
		if err := fw.forEachCVDataRef(cv, func(dov oms.OID, r blobstore.Ref) error {
			if !fw.blobs.Has(r) {
				return fmt.Errorf("jcf: publish %d: version %d references missing %s", cv, dov, r)
			}
			return nil
		}); err != nil {
			fw.mu.Unlock()
			return err
		}
	}
	// Check, publish and release under one write lock: a check-then-act
	// window here could evict a reservation another user acquired in
	// between. fw.mu may be held across store calls (the store never
	// calls back into the framework, so the lock order fw.mu -> stripe
	// is acyclic).
	defer fw.mu.Unlock()
	if fw.reservations[cv] != user {
		return fmt.Errorf("%w (user %s)", ErrNotReserved, user)
	}
	// Publish and reservation release commit as ONE batch — one feed
	// group — so no feed consumer ever observes a published version whose
	// reservation still looks held (or vice versa).
	b := fw.getBatch()
	defer fw.putBatch(b)
	b.Set(cv, "published", oms.B(true))
	b.Set(cv, "reservedBy", oms.S(""))
	if _, err := fw.store.Apply(b); err != nil {
		return err
	}
	delete(fw.reservations, cv)
	return nil
}

// ReservedBy returns the user holding the workspace reservation on a cell
// version, and whether it is held at all. A replica view answers from the
// database's mirrored reservedBy attribute (the feed replicates
// reservation traffic); a primary answers from its authoritative
// in-memory map.
func (fw *Framework) ReservedBy(cv oms.OID) (string, bool) {
	if fw.replica.Load() {
		u := fw.store.GetString(cv, "reservedBy")
		return u, u != ""
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	u, ok := fw.reservations[cv]
	return u, ok
}

// Published reports whether a cell version has been published.
func (fw *Framework) Published(cv oms.OID) bool {
	return fw.store.GetBool(cv, "published")
}

// CanRead reports whether user may read the design data of a cell version:
// either they hold the reservation or the version is published.
func (fw *Framework) CanRead(user string, cv oms.OID) bool {
	if holder, held := fw.ReservedBy(cv); held && holder == user {
		return true
	}
	return fw.Published(cv)
}

// CanWrite reports whether user may modify the design data of a cell
// version: only the reservation holder may.
func (fw *Framework) CanWrite(user string, cv oms.OID) bool {
	holder, held := fw.ReservedBy(cv)
	return held && holder == user
}

// requireReservation is the write guard used by CheckInData and the
// activity API.
func (fw *Framework) requireReservation(user string, cv oms.OID) error {
	if !fw.CanWrite(user, cv) {
		return fmt.Errorf("%w (user %s)", ErrNotReserved, user)
	}
	return nil
}

// requireReservationLocked is requireReservation for callers already
// holding fw.mu (fw.mu is not reentrant, so they must not detour through
// CanWrite/ReservedBy). CheckInData holds fw.mu for reading from this
// check until its batch has committed, so a concurrent Publish or
// ReleaseReservation — both need fw.mu for writing — can no longer drop
// the reservation between the check and the blob landing.
func (fw *Framework) requireReservationLocked(user string, cv oms.OID) error {
	if holder, held := fw.reservations[cv]; !held || holder != user {
		return fmt.Errorf("%w (user %s)", ErrNotReserved, user)
	}
	return nil
}
