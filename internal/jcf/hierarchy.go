package jcf

import (
	"fmt"
	"sort"

	"repro/internal/oms"
)

// Design hierarchies in JCF are separated metadata: compOf relationships
// between cell versions, submitted manually via the JCF desktop *before*
// design work starts (sections 2.3 and 3.3). Because JCF 3.0 keeps one
// hierarchy per cell version — not one per view type — non-isomorphic
// hierarchies (schematic differing from layout) cannot be represented and
// are rejected. Release 4.0 lifts both restrictions: SubmitHierarchyTyped
// stores per-view-type hierarchies, and the procedural interface lets
// tools pass hierarchy information programmatically instead of through the
// desktop.

// SubmitHierarchy records, via the desktop, that parent (a cell version)
// is composed of child. Cycles are rejected: a cell version cannot
// transitively contain itself.
func (fw *Framework) SubmitHierarchy(parent, child oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	if parent == child {
		return fmt.Errorf("jcf: cell version cannot contain itself")
	}
	if fw.reachable(child, parent) {
		return fmt.Errorf("jcf: hierarchy cycle: child already contains parent")
	}
	return fw.store.Link(fw.rel.compOf, parent, child)
}

// reachable reports whether `to` is transitively contained in `from`.
func (fw *Framework) reachable(from, to oms.OID) bool {
	if from == to {
		return true
	}
	for _, c := range fw.store.Targets(fw.rel.compOf, from) {
		if fw.reachable(c, to) {
			return true
		}
	}
	return false
}

// Children returns the direct compOf children of a cell version.
func (fw *Framework) Children(parent oms.OID) []oms.OID {
	return fw.store.Targets(fw.rel.compOf, parent)
}

// Parents returns the direct compOf parents of a cell version.
func (fw *Framework) Parents(child oms.OID) []oms.OID {
	return fw.store.Sources(fw.rel.compOf, child)
}

// HierarchyClosure returns every cell version transitively contained in
// root (excluding root), sorted.
func (fw *Framework) HierarchyClosure(root oms.OID) []oms.OID {
	seen := map[oms.OID]bool{}
	var walk func(oms.OID)
	walk = func(o oms.OID) {
		for _, c := range fw.store.Targets(fw.rel.compOf, o) {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(root)
	out := make([]oms.OID, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubmitHierarchyTyped records a per-view-type hierarchy edge, allowing
// the schematic and layout hierarchies of the same cell version to differ
// (non-isomorphic hierarchies). JCF 3.0 rejects this with ErrUnsupported —
// "JCF 3.0 does not yet support non-isomorphic hierarchies" (section 2.3);
// Release 4.0 accepts it.
func (fw *Framework) SubmitHierarchyTyped(parent, child oms.OID, viewType string) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	if fw.release < Release40 {
		return fmt.Errorf("%w: non-isomorphic (per-view-type) hierarchies need release 4.0", ErrUnsupported)
	}
	if parent == child {
		return fmt.Errorf("jcf: cell version cannot contain itself")
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.typedReachableLocked(child, parent, viewType) {
		return fmt.Errorf("jcf: hierarchy cycle in view type %q", viewType)
	}
	m := fw.typedHier[parent]
	if m == nil {
		m = map[string][]oms.OID{}
		fw.typedHier[parent] = m
	}
	for _, c := range m[viewType] {
		if c == child {
			return nil // idempotent
		}
	}
	m[viewType] = append(m[viewType], child)
	return nil
}

func (fw *Framework) typedReachableLocked(from, to oms.OID, viewType string) bool {
	if from == to {
		return true
	}
	for _, c := range fw.typedHier[from][viewType] {
		if fw.typedReachableLocked(c, to, viewType) {
			return true
		}
	}
	return false
}

// TypedChildren returns the per-view-type children of a cell version
// (Release 4.0). On release 3.0 it returns ErrUnsupported.
func (fw *Framework) TypedChildren(parent oms.OID, viewType string) ([]oms.OID, error) {
	if fw.release < Release40 {
		return nil, fmt.Errorf("%w: typed hierarchies need release 4.0", ErrUnsupported)
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	return append([]oms.OID(nil), fw.typedHier[parent][viewType]...), nil
}

// ProceduralHierarchyInterface reports whether tools may submit hierarchy
// information programmatically (the section 3.3 future-work item). In 3.0
// all hierarchy manipulation "must be done manually via the JCF desktop".
func (fw *Framework) ProceduralHierarchyInterface() bool {
	return fw.release >= Release40
}

// SubmitHierarchyProcedural is the tool-facing hierarchy interface. JCF
// 3.0 rejects it (tools cannot reach the desktop); 4.0 forwards to
// SubmitHierarchy.
func (fw *Framework) SubmitHierarchyProcedural(parent, child oms.OID) error {
	if !fw.ProceduralHierarchyInterface() {
		return fmt.Errorf("%w: procedural hierarchy interface needs release 4.0 (use the desktop)", ErrUnsupported)
	}
	return fw.SubmitHierarchy(parent, child)
}

// --- inter-project sharing (release 4.0) -----------------------------------

// ShareCell makes a cell from another project readable in toProject.
// Section 3.1: "Not yet possible in JCF or in the combined framework is
// data sharing between projects. It would be helpful to also provide
// access to cells of other projects." Release 4.0 implements it.
func (fw *Framework) ShareCell(cell, toProject oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	if fw.release < Release40 {
		return fmt.Errorf("%w: inter-project data sharing needs release 4.0", ErrUnsupported)
	}
	owner := fw.store.Sources(fw.rel.has, cell)
	if len(owner) == 0 {
		return fmt.Errorf("%w: cell %d", ErrNotFound, cell)
	}
	if owner[0] == toProject {
		return fmt.Errorf("jcf: cell already belongs to that project")
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	for _, c := range fw.shares[toProject] {
		if c == cell {
			return nil // idempotent
		}
	}
	fw.shares[toProject] = append(fw.shares[toProject], cell)
	return nil
}

// SharedCells returns the cells shared into a project (Release 4.0).
func (fw *Framework) SharedCells(project oms.OID) ([]oms.OID, error) {
	if fw.release < Release40 {
		return nil, fmt.Errorf("%w: inter-project data sharing needs release 4.0", ErrUnsupported)
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	return append([]oms.OID(nil), fw.shares[project]...), nil
}
