package jcf

import (
	"cmp"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/oms"
)

// Project data: projects own cells; cells have cell versions; each cell
// version carries an attached flow and team and contains variants; design
// objects (typed by view type) live under variants and are versioned with
// derivation/equivalence relations (section 2.1).

// CreateProject creates a project supported by the given team. The
// project object and its supports link commit as one batch: no reader
// ever observes an unsupported project, and a bad team OID fails the
// whole creation instead of stranding a linkless project.
func (fw *Framework) CreateProject(name string, team oms.OID) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	return fw.named("Project", name, func(b *oms.Batch, oid oms.OID) {
		b.Link(fw.rel.supports, team, oid)
	})
}

// Project returns a project OID by name.
func (fw *Framework) Project(name string) (oms.OID, error) {
	return fw.lookupNamed("Project", name)
}

// CreateCell creates a cell within a project. Cell names are unique per
// project.
func (fw *Framework) CreateCell(project oms.OID, name string) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	if name == "" {
		return oms.InvalidOID, fmt.Errorf("jcf: empty cell name")
	}
	for _, c := range fw.store.Targets(fw.rel.has, project) {
		if fw.store.GetString(c, "name") == name {
			return oms.InvalidOID, fmt.Errorf("%w: cell %q in project", ErrExists, name)
		}
	}
	// One batch: the cell and its containment link are never observable
	// apart, and a bad project OID cannot strand an unlinked cell.
	b := fw.getBatch()
	defer fw.putBatch(b)
	oid := b.Create("Cell", map[string]oms.Value{"name": oms.S(name)})
	b.Link(fw.rel.has, project, oid)
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// Cell finds a cell by name within a project.
func (fw *Framework) Cell(project oms.OID, name string) (oms.OID, error) {
	for _, c := range fw.store.Targets(fw.rel.has, project) {
		if fw.store.GetString(c, "name") == name {
			return c, nil
		}
	}
	return oms.InvalidOID, fmt.Errorf("%w: cell %q", ErrNotFound, name)
}

// Cells returns the cell names of a project, sorted.
func (fw *Framework) Cells(project oms.OID) []string {
	var out []string
	for _, c := range fw.store.Targets(fw.rel.has, project) {
		out = append(out, fw.store.GetString(c, "name"))
	}
	sort.Strings(out)
	return out
}

// CellName returns the name of a cell.
func (fw *Framework) CellName(cell oms.OID) string {
	return fw.store.GetString(cell, "name")
}

// CreateCellVersion instantiates a cell with the given flow and
// responsible team. The version number is assigned automatically. Each
// cell version may carry a different flow and team (section 2.1). An
// initial variant 1 is created along with it.
//
// The whole six-op sequence (version + ownership link + flow link + team
// link + initial variant + its link) commits as one oms.Batch: a failure
// anywhere — say, team is not a Team object — leaves no half-wired cell
// version behind, where the old op-by-op path could leave a version
// without flow, team or variant. numMu spans the count and the Apply that
// makes the new version countable, so concurrent designers never allocate
// the same number.
func (fw *Framework) CreateCellVersion(cell oms.OID, flowName string, team oms.OID) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	fw.mu.RLock()
	flowOID, ok := fw.flowOIDs[flowName]
	fw.mu.RUnlock()
	if !ok {
		return oms.InvalidOID, fmt.Errorf("%w: flow %q", ErrNotFound, flowName)
	}
	fw.numMu.Lock()
	defer fw.numMu.Unlock()
	num := int64(len(fw.store.Targets(fw.rel.cellHasVersion, cell)) + 1)
	b := oms.NewBatch()
	cv := b.CreateOwned("CellVersion", map[string]oms.Value{
		"num":       oms.I(num),
		"published": oms.B(false),
	})
	b.Link(fw.rel.cellHasVersion, cell, cv)
	b.Link(fw.rel.attachedFlow, cv, flowOID)
	b.Link(fw.rel.attachedTeam, cv, team)
	v := b.CreateOwned("Variant", map[string]oms.Value{"num": oms.I(1)})
	b.Link(fw.rel.hasVariant, cv, v)
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// sortByIntAttr orders OIDs by an int attribute, fetching each key from
// the store once up front — O(n) lock round-trips instead of the
// O(n log n) a store-hitting sort comparator pays.
func (fw *Framework) sortByIntAttr(oids []oms.OID, attr string) {
	keys := make([]int64, len(oids))
	for i, o := range oids {
		keys[i] = fw.store.GetInt(o, attr)
	}
	sort.Sort(&byKey[int64]{oids: oids, keys: keys})
}

// sortByStringAttr is sortByIntAttr for string keys.
func (fw *Framework) sortByStringAttr(oids []oms.OID, attr string) {
	keys := make([]string, len(oids))
	for i, o := range oids {
		keys[i] = fw.store.GetString(o, attr)
	}
	sort.Sort(&byKey[string]{oids: oids, keys: keys})
}

// byKey sorts an OID slice by a parallel slice of pre-fetched keys.
type byKey[K cmp.Ordered] struct {
	oids []oms.OID
	keys []K
}

func (s *byKey[K]) Len() int           { return len(s.oids) }
func (s *byKey[K]) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey[K]) Swap(i, j int) {
	s.oids[i], s.oids[j] = s.oids[j], s.oids[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// CellVersions returns the cell version OIDs of a cell, in version order.
func (fw *Framework) CellVersions(cell oms.OID) []oms.OID {
	cvs := fw.store.Targets(fw.rel.cellHasVersion, cell)
	fw.sortByIntAttr(cvs, "num")
	return cvs
}

// CellVersionNum returns the version number of a cell version.
func (fw *Framework) CellVersionNum(cv oms.OID) int64 {
	return fw.store.GetInt(cv, "num")
}

// CellOf returns the cell owning a cell version.
func (fw *Framework) CellOf(cv oms.OID) (oms.OID, error) {
	src := fw.store.Sources(fw.rel.cellHasVersion, cv)
	if len(src) == 0 {
		return oms.InvalidOID, fmt.Errorf("%w: cell of version %d", ErrNotFound, cv)
	}
	return src[0], nil
}

// AttachedFlowName returns the flow name attached to a cell version.
func (fw *Framework) AttachedFlowName(cv oms.OID) (string, error) {
	f := fw.store.Target(fw.rel.attachedFlow, cv)
	if f == oms.InvalidOID {
		return "", fmt.Errorf("%w: flow of cell version", ErrNotFound)
	}
	return fw.store.GetString(f, "name"), nil
}

// AttachedTeam returns the team attached to a cell version.
func (fw *Framework) AttachedTeam(cv oms.OID) (oms.OID, error) {
	t := fw.store.Target(fw.rel.attachedTeam, cv)
	if t == oms.InvalidOID {
		return oms.InvalidOID, fmt.Errorf("%w: team of cell version", ErrNotFound)
	}
	return t, nil
}

// --- variants --------------------------------------------------------------

// CreateVariant creates a fresh variant under a cell version (numbered
// automatically). Variants let users "store the modifications and select
// the optimal design solution" (section 2.1). Creation and the hasVariant
// link commit as one batch: a numbered variant can never exist detached
// from its cell version.
func (fw *Framework) CreateVariant(cv oms.OID) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	fw.numMu.Lock()
	defer fw.numMu.Unlock()
	num := int64(len(fw.store.Targets(fw.rel.hasVariant, cv)) + 1)
	b := oms.NewBatch()
	v := b.CreateOwned("Variant", map[string]oms.Value{"num": oms.I(num)})
	b.Link(fw.rel.hasVariant, cv, v)
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// DeriveVariant creates a new variant derived from an existing one,
// recording the precedes relation. The new variant shares the design
// objects of its predecessor (they are "used" by both until replaced).
//
// The derivation is one atomic batch: variant, hasVariant link,
// variantPrecedes link and every shared-uses link land together, so a
// failure can no longer strand a numbered variant that is attached to the
// cell version but has no precedes edge or design objects. The source's
// cell version is resolved inside the numbering lock — resolving it
// before numMu let a concurrent re-parent race the count.
func (fw *Framework) DeriveVariant(from oms.OID) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	fw.numMu.Lock()
	defer fw.numMu.Unlock()
	cvSrc := fw.store.Sources(fw.rel.hasVariant, from)
	if len(cvSrc) == 0 {
		return oms.InvalidOID, fmt.Errorf("%w: variant %d", ErrNotFound, from)
	}
	cv := cvSrc[0]
	num := int64(len(fw.store.Targets(fw.rel.hasVariant, cv)) + 1)
	b := oms.NewBatch()
	v := b.CreateOwned("Variant", map[string]oms.Value{"num": oms.I(num)})
	b.Link(fw.rel.hasVariant, cv, v)
	b.Link(fw.rel.variantPrecedes, from, v)
	for _, do := range fw.store.Targets(fw.rel.uses, from) {
		b.Link(fw.rel.uses, v, do)
	}
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// Variants returns the variant OIDs of a cell version in variant order.
func (fw *Framework) Variants(cv oms.OID) []oms.OID {
	vs := fw.store.Targets(fw.rel.hasVariant, cv)
	fw.sortByIntAttr(vs, "num")
	return vs
}

// VariantNum returns a variant's number.
func (fw *Framework) VariantNum(v oms.OID) int64 { return fw.store.GetInt(v, "num") }

// VariantSuccessors returns the variants derived from v (the precedes
// relation may branch: a user can derive several alternatives from the
// same variant).
func (fw *Framework) VariantSuccessors(v oms.OID) []oms.OID {
	return fw.store.Targets(fw.rel.variantPrecedes, v)
}

// VariantPredecessor returns the variant v was derived from (InvalidOID
// for an original variant).
func (fw *Framework) VariantPredecessor(v oms.OID) oms.OID {
	src := fw.store.Sources(fw.rel.variantPrecedes, v)
	if len(src) == 0 {
		return oms.InvalidOID
	}
	return src[0]
}

// --- design objects ---------------------------------------------------------

// CreateDesignObject creates a named, view-typed design object used by a
// variant. Object, uses link and ofViewType link commit as one batch —
// passing a non-ViewType OID no longer leaves an untyped design object
// attached to the variant.
func (fw *Framework) CreateDesignObject(variant oms.OID, name string, viewType oms.OID) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	if name == "" {
		return oms.InvalidOID, fmt.Errorf("jcf: empty design object name")
	}
	b := fw.getBatch()
	defer fw.putBatch(b)
	do := b.CreateOwned("DesignObject", map[string]oms.Value{"name": oms.S(name)})
	b.Link(fw.rel.uses, variant, do)
	b.Link(fw.rel.ofViewType, do, viewType)
	created, err := fw.store.Apply(b)
	if err != nil {
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// DesignObjects returns the design objects used by a variant, sorted by
// name.
func (fw *Framework) DesignObjects(variant oms.OID) []oms.OID {
	dos := fw.store.Targets(fw.rel.uses, variant)
	fw.sortByStringAttr(dos, "name")
	return dos
}

// DesignObjectName returns a design object's name.
func (fw *Framework) DesignObjectName(do oms.OID) string { return fw.store.GetString(do, "name") }

// DesignObjectByName finds a design object of a variant by name.
func (fw *Framework) DesignObjectByName(variant oms.OID, name string) (oms.OID, error) {
	for _, do := range fw.store.Targets(fw.rel.uses, variant) {
		if fw.store.GetString(do, "name") == name {
			return do, nil
		}
	}
	return oms.InvalidOID, fmt.Errorf("%w: design object %q", ErrNotFound, name)
}

// ViewTypeOf returns the view type name of a design object. A design
// object without an ofViewType link is an error, like its sibling
// accessors — the old signature silently answered "" and callers could
// not tell a missing link from a view type actually named "".
func (fw *Framework) ViewTypeOf(do oms.OID) (string, error) {
	vt := fw.store.Target(fw.rel.ofViewType, do)
	if vt == oms.InvalidOID {
		return "", fmt.Errorf("%w: view type of design object %d", ErrNotFound, do)
	}
	return fw.store.GetString(vt, "name"), nil
}

// DesignObjectVersions returns the version OIDs of a design object in
// version order.
func (fw *Framework) DesignObjectVersions(do oms.OID) []oms.OID {
	vs := fw.store.Targets(fw.rel.doHasVersion, do)
	fw.sortByIntAttr(vs, "num")
	return vs
}

// LatestVersion returns the newest design object version (InvalidOID when
// none exists yet).
func (fw *Framework) LatestVersion(do oms.OID) oms.OID {
	vs := fw.DesignObjectVersions(do)
	if len(vs) == 0 {
		return oms.InvalidOID
	}
	return vs[len(vs)-1]
}

// VersionNum returns a design object version's number.
func (fw *Framework) VersionNum(dov oms.OID) int64 { return fw.store.GetInt(dov, "num") }

// --- design data (copy-in / copy-out) ---------------------------------------

// CheckInData reads the design file at srcPath into the database as the
// next version of the design object, automatically recording a derivation
// from the previous version. The caller must hold the workspace
// reservation on the owning cell version.
//
// The checkin is the paper's copy-in sequence (section 3.6) and commits
// as ONE atomic batch — version create, doHasVersion link, data blob,
// derivation link — so a failure anywhere leaves no orphaned, dataless
// DesignObjectVersion behind (the old op-by-op path could). The design
// file is staged into memory first, outside every lock; then fw.mu is
// held for reading from the reservation check until the batch has
// committed, so a concurrent Publish or ReleaseReservation (fw.mu
// writers) can no longer drop the reservation between the check and the
// blob landing: the batch commits only while the user still holds the
// workspace. Lock order: fw.mu -> numMu -> store stripes.
func (fw *Framework) CheckInData(user string, do oms.OID, srcPath string) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	cv, err := fw.cellVersionOfDesignObject(do)
	if err != nil {
		return oms.InvalidOID, err
	}
	// Cheap unlocked pre-check so a caller without the reservation is
	// rejected before the file is read; the verdict that matters is the
	// re-check below, under the same fw.mu hold the commit runs in.
	if err := fw.requireReservation(user, cv); err != nil {
		return oms.InvalidOID, err
	}
	// The pipeline span: stage stamps land in the per-stage histograms
	// and feed the slow-op log. Done is deferred BEFORE fw.mu.RLock, so
	// its (possible) slow-op line is formatted and written only after
	// every lock below has been released.
	sp := obs.StartSpan("jcf.checkin")
	defer sp.Done(&fw.metrics.checkinTotal)
	data, err := os.ReadFile(srcPath)
	if err != nil {
		return oms.InvalidOID, fmt.Errorf("jcf: check-in: %w", err)
	}
	sp.Stage("read", &fw.metrics.checkinRead)
	// Stage 1 of the async pipeline (ISSUE 9): with a blob store enabled
	// and the design at or above the spill threshold, hash now, upload on
	// the store's bounded worker pool, and commit only the ~40-byte ref —
	// the metadata batch below no longer scales with design size. The
	// upload is registered on the cell version's ledger BEFORE the commit
	// so Publish's durability gate can never miss it, and the blob is
	// pinned against the GC sweep from before its backend write (inside
	// startUpload) until the batch has resolved (the deferred release).
	var up *blobUpload
	if fw.blobs != nil && len(data) >= fw.blobThreshold {
		up = fw.startUpload(cv, data)
		sp.Stage("digest", &fw.metrics.checkinDigest)
		defer up.release()
	}
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	if err := fw.requireReservationLocked(user, cv); err != nil {
		if up != nil {
			fw.abandonUpload(cv, up)
		}
		return oms.InvalidOID, err
	}
	fw.numMu.Lock()
	defer fw.numMu.Unlock()
	// One version-history read answers both the predecessor and the next
	// number (the op-by-op path paid for two).
	versions := fw.DesignObjectVersions(do)
	num := int64(len(versions) + 1)
	b := fw.getBatch()
	defer fw.putBatch(b)
	dov := b.CreateOwned("DesignObjectVersion", map[string]oms.Value{"num": oms.I(num)})
	b.Link(fw.rel.doHasVersion, do, dov)
	if up != nil {
		// Stage 2: metadata only — the bytes are already on their way.
		b.Set(dov, "data", oms.BlobRef(up.ref))
	} else {
		b.CopyInBytes(dov, "data", data)
	}
	if len(versions) > 0 {
		b.Link(fw.rel.derived, versions[len(versions)-1], dov)
	}
	sp.Stage("prepare", nil)
	created, err := fw.store.Apply(b)
	sp.Stage("apply", &fw.metrics.checkinApply)
	if err != nil {
		if up != nil {
			fw.abandonUpload(cv, up)
		}
		return oms.InvalidOID, err
	}
	return created[0], nil
}

// CheckInDataOpByOp is the pre-batch checkin retained as the ablation
// baseline for BenchmarkE38BatchCheckin (BENCH_3.json), exactly like
// SaveStopTheWorld documents the pre-snapshot persistence path. It pays
// one lock round-trip per op and reproduces the two bugs the batched
// path closes: a failing CopyIn or derivation link strands a linked,
// dataless DesignObjectVersion, and the reservation can be released
// between the requireReservation check and the blob write. New code must
// use CheckInData.
//
//lint:allow applyatomic deliberate op-by-op ablation baseline for BENCH_3; the batched path is CheckInData
func (fw *Framework) CheckInDataOpByOp(user string, do oms.OID, srcPath string) (oms.OID, error) {
	if err := fw.guardWrite(); err != nil {
		return oms.InvalidOID, err
	}
	cv, err := fw.cellVersionOfDesignObject(do)
	if err != nil {
		return oms.InvalidOID, err
	}
	if err := fw.requireReservation(user, cv); err != nil {
		return oms.InvalidOID, err
	}
	fw.numMu.Lock()
	prev := fw.LatestVersion(do)
	num := int64(len(fw.DesignObjectVersions(do)) + 1)
	dov, err := fw.store.Create("DesignObjectVersion", map[string]oms.Value{"num": oms.I(num)})
	if err != nil {
		fw.numMu.Unlock()
		return oms.InvalidOID, err
	}
	if err := fw.store.Link(fw.rel.doHasVersion, do, dov); err != nil {
		fw.numMu.Unlock()
		return oms.InvalidOID, err
	}
	fw.numMu.Unlock()
	if _, err := fw.store.CopyIn(dov, "data", srcPath); err != nil {
		return oms.InvalidOID, err
	}
	if prev != oms.InvalidOID {
		if err := fw.store.Link(fw.rel.derived, prev, dov); err != nil {
			return oms.InvalidOID, err
		}
	}
	return dov, nil
}

// CheckOutData copies a design object version's data out of the database
// to dstPath. Reading requires that the user holds the reservation or the
// owning cell version is published — and it always pays the full copy,
// "even in the case of read only accesses" (section 3.6).
func (fw *Framework) CheckOutData(user string, dov oms.OID, dstPath string) error {
	do, err := fw.designObjectOfVersion(dov)
	if err != nil {
		return err
	}
	cv, err := fw.cellVersionOfDesignObject(do)
	if err != nil {
		return err
	}
	if !fw.CanRead(user, cv) {
		return fmt.Errorf("%w (user %s)", ErrNotPublished, user)
	}
	_, err = fw.store.CopyOut(dov, "data", dstPath)
	return err
}

// VersionExists reports whether a design object version OID still
// names a live object — the liveness probe the coupling layer uses to
// drop feed-announced checkins whose version has since been deleted or
// rolled back.
func (fw *Framework) VersionExists(dov oms.OID) bool {
	return fw.store.Exists(dov)
}

// ExportVersionData copies a design object version's data blob to
// dstPath without a user-permission check — the trusted export the
// coupling layer (internal/core) uses to mirror feed-announced checkins
// into the slave library. Tools never call this; they go through
// CheckOutData, which enforces the workspace rules.
func (fw *Framework) ExportVersionData(dov oms.OID, dstPath string) error {
	_, err := fw.store.CopyOut(dov, "data", dstPath)
	return err
}

// DataSize returns the stored size in bytes of a design object version.
// A content-addressed version answers from its ref alone — no blob read.
func (fw *Framework) DataSize(dov oms.OID) (int64, error) {
	v, ok, err := fw.store.Get(dov, "data")
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	if v.Kind == oms.KindBlobRef {
		return v.Int, nil
	}
	return int64(len(v.Blob)), nil
}

func (fw *Framework) designObjectOfVersion(dov oms.OID) (oms.OID, error) {
	src := fw.store.Sources(fw.rel.doHasVersion, dov)
	if len(src) == 0 {
		return oms.InvalidOID, fmt.Errorf("%w: design object of version", ErrNotFound)
	}
	return src[0], nil
}

// cellVersionOfDesignObject walks design object -> variant -> cell version.
func (fw *Framework) cellVersionOfDesignObject(do oms.OID) (oms.OID, error) {
	variants := fw.store.Sources(fw.rel.uses, do)
	if len(variants) == 0 {
		return oms.InvalidOID, fmt.Errorf("%w: variant of design object", ErrNotFound)
	}
	// A design object may be shared across derived variants of the same
	// cell version; any of them resolves to the same cell version.
	cvs := fw.store.Sources(fw.rel.hasVariant, variants[0])
	if len(cvs) == 0 {
		return oms.InvalidOID, fmt.Errorf("%w: cell version of variant", ErrNotFound)
	}
	return cvs[0], nil
}

// --- derivation and equivalence ----------------------------------------------

// RecordDerivation records that `to` was derived from `from` (e.g. a layout
// version derived from a schematic version). JCF records all derivation
// relationships between schematic and layout versions (section 2.4).
func (fw *Framework) RecordDerivation(from, to oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	return fw.store.Link(fw.rel.derived, from, to)
}

// RecordEquivalence records that two design object versions are equivalent
// representations.
func (fw *Framework) RecordEquivalence(a, b oms.OID) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	return fw.store.Link(fw.rel.equivalent, a, b)
}

// DerivedFrom returns the direct derivation sources of a version.
func (fw *Framework) DerivedFrom(dov oms.OID) []oms.OID {
	return fw.store.Sources(fw.rel.derived, dov)
}

// Derivatives returns the direct derivation targets of a version.
func (fw *Framework) Derivatives(dov oms.OID) []oms.OID {
	return fw.store.Targets(fw.rel.derived, dov)
}

// EquivalentTo returns versions recorded equivalent to dov (both
// directions).
func (fw *Framework) EquivalentTo(dov oms.OID) []oms.OID {
	set := map[oms.OID]bool{}
	for _, o := range fw.store.Targets(fw.rel.equivalent, dov) {
		set[o] = true
	}
	for _, o := range fw.store.Sources(fw.rel.equivalent, dov) {
		set[o] = true
	}
	out := make([]oms.OID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DerivationClosure returns every version transitively derived from dov
// (not including dov), sorted — the "what-belongs-to-what" information
// plain FMCAD cannot answer (section 3.5).
func (fw *Framework) DerivationClosure(dov oms.OID) []oms.OID {
	seen := map[oms.OID]bool{}
	var walk func(oms.OID)
	walk = func(o oms.OID) {
		for _, d := range fw.store.Targets(fw.rel.derived, o) {
			if !seen[d] {
				seen[d] = true
				walk(d)
			}
		}
	}
	walk(dov)
	out := make([]oms.OID, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
