package jcf

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/oms"
	"repro/internal/oms/backend"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw

	// Populate: reservation, hierarchy, design data, flow progress.
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "d.sch")
	if err := os.WriteFile(src, []byte("schematic alu\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dov, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	cell2, _ := fw.CreateCell(w.project, "reg")
	cv2, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	if err := fw.SubmitHierarchy(w.cv, cv2); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := fw.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Release and resources survive.
	if ld.Release() != Release30 {
		t.Fatalf("release = %s", ld.Release())
	}
	if got := ld.Flows(); len(got) != 1 || got[0] != "asic" {
		t.Fatalf("flows = %v", got)
	}
	f, err := ld.Flow("asic")
	if err != nil || !f.Frozen() {
		t.Fatal("flow not restored frozen")
	}
	if got := f.Activities(); len(got) != 3 {
		t.Fatalf("activities = %v", got)
	}
	if got := f.Successors("schematic-entry"); len(got) != 1 || got[0] != "simulate" {
		t.Fatalf("precedes lost: %v", got)
	}
	// Project data survives (same OIDs).
	if got := ld.Cells(w.project); len(got) != 2 {
		t.Fatalf("cells = %v", got)
	}
	if ld.CellVersionNum(w.cv) != 1 {
		t.Fatal("cell version lost")
	}
	// Reservation survives.
	holder, held := ld.ReservedBy(w.cv)
	if !held || holder != "anna" {
		t.Fatalf("reservation lost: %q,%t", holder, held)
	}
	// Hierarchy survives.
	if got := ld.Children(w.cv); len(got) != 1 || got[0] != cv2 {
		t.Fatalf("hierarchy lost: %v", got)
	}
	// Design data survives, byte-exact.
	dst := filepath.Join(t.TempDir(), "out.sch")
	if err := ld.CheckOutData("anna", dov, dst); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dst)
	if err != nil || string(data) != "schematic alu\n" {
		t.Fatalf("design data lost: %q, %v", data, err)
	}
	// The restored framework is fully operational: publish then re-reserve.
	if err := ld.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := ld.Reserve("bert", w.cv); err != nil {
		t.Fatal(err)
	}
	// New objects do not collide with old OIDs.
	cell3, err := ld.CreateCell(w.project, "mul")
	if err != nil {
		t.Fatal(err)
	}
	if cell3 == w.cell || cell3 == cell2 {
		t.Fatal("OID reuse after load")
	}
}

func TestSaveLoadRelease40State(t *testing.T) {
	w := newWorld(t, Release40)
	fw := w.fw
	cell2, _ := fw.CreateCell(w.project, "reg")
	cv2, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	if err := fw.SubmitHierarchyTyped(w.cv, cv2, "layout"); err != nil {
		t.Fatal(err)
	}
	team2, _ := fw.CreateTeam("t2")
	project2, err := fw.CreateProject("p2", team2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.ShareCell(w.cell, project2); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := fw.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Release() != Release40 {
		t.Fatal("release lost")
	}
	kids, err := ld.TypedChildren(w.cv, "layout")
	if err != nil || len(kids) != 1 || kids[0] != cv2 {
		t.Fatalf("typed hierarchy lost: %v, %v", kids, err)
	}
	shared, err := ld.SharedCells(project2)
	if err != nil || len(shared) != 1 || shared[0] != w.cell {
		t.Fatalf("shares lost: %v, %v", shared, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("load of missing dir")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "framework.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt framework.json accepted")
	}
	// Valid framework.json but missing oms.json.
	if err := os.WriteFile(filepath.Join(dir, "framework.json"), []byte(`{"release":30}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("missing oms.json accepted")
	}
	_ = oms.InvalidOID
	var errSentinel = errors.New("x")
	_ = errSentinel
}

// readCommitted resolves the committed payload pair of a state dir
// through its CURRENT manifest.
func readCommitted(t *testing.T, dir string) (fwPayload, omsPayload []byte) {
	t.Helper()
	b, err := backend.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	mdata, err := b.Get("CURRENT")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		OMS       string `json:"oms"`
		Framework string `json:"framework"`
	}
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatal(err)
	}
	fwPayload, err = b.Get(m.Framework)
	if err != nil {
		t.Fatal(err)
	}
	omsPayload, err = b.Get(m.OMS)
	if err != nil {
		t.Fatal(err)
	}
	return fwPayload, omsPayload
}

func TestSaveIsDeterministic(t *testing.T) {
	w := newWorld(t, Release30)
	dir1, dir2 := t.TempDir(), t.TempDir()
	if err := w.fw.Save(dir1); err != nil {
		t.Fatal(err)
	}
	if err := w.fw.Save(dir2); err != nil {
		t.Fatal(err)
	}
	fw1, oms1 := readCommitted(t, dir1)
	fw2, oms2 := readCommitted(t, dir2)
	if string(fw1) != string(fw2) {
		t.Fatal("framework payload not deterministic")
	}
	if string(oms1) != string(oms2) {
		t.Fatal("oms payload not deterministic")
	}
}

// TestSaveCommitIsAtomic corrupts a committed payload and expects Load to
// reject the pair via the manifest checksums instead of resurrecting
// inconsistent state.
func TestSaveCommitIsAtomic(t *testing.T) {
	w := newWorld(t, Release30)
	dir := t.TempDir()
	if err := w.fw.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the committed oms payload, bypassing Save.
	var m struct {
		OMS string `json:"oms"`
	}
	mdata, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatal(err)
	}
	payload, err := os.ReadFile(filepath.Join(dir, m.OMS))
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, m.OMS), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt committed payload accepted")
	}
}

// TestLoadRejectsTornPair builds, by hand, the exact artifact the old
// two-cut Save could produce — a framework payload whose reservation
// names a cell version absent from the oms payload — and expects Load to
// refuse it.
func TestLoadRejectsTornPair(t *testing.T) {
	w := newWorld(t, Release30)
	if err := w.fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := w.fw.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Pair the committed framework payload (reservation included) with
	// the oms payload of an EMPTY framework — mixed cuts.
	empty, err := New(Release30)
	if err != nil {
		t.Fatal(err)
	}
	emptyDir := t.TempDir()
	if err := empty.Save(emptyDir); err != nil {
		t.Fatal(err)
	}
	fwPayload, _ := readCommitted(t, dir)
	_, emptyOMS := readCommitted(t, emptyDir)

	torn := t.TempDir()
	b, err := backend.OpenFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("framework.json", fwPayload); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("oms.json", emptyOMS); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(torn); err == nil {
		t.Fatal("torn (framework, oms) pair accepted")
	}
}

// TestSaveLoadThroughSegmentBackend round-trips the framework through the
// append-only WAL backend — the same public Save/Load semantics over the
// second storage implementation.
func TestSaveLoadThroughSegmentBackend(t *testing.T) {
	w := newWorld(t, Release30)
	if err := w.fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seg, err := backend.OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.fw.SaveTo(seg); err != nil {
		t.Fatal(err)
	}
	// Save twice: the segment backend is delta-capable, and nothing
	// changed since epoch 1, so epoch 2 is a differential commit that
	// re-binds the epoch-1 base snapshot — no second OMS payload exists.
	if err := w.fw.SaveTo(seg); err != nil {
		t.Fatal(err)
	}
	reopened, err := backend.OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := LoadFrom(reopened)
	if err != nil {
		t.Fatal(err)
	}
	holder, held := ld.ReservedBy(w.cv)
	if !held || holder != "anna" {
		t.Fatalf("reservation lost through segment backend: %q,%t", holder, held)
	}
	if got := ld.Flows(); len(got) != 1 || got[0] != "asic" {
		t.Fatalf("flows = %v", got)
	}
	names, err := reopened.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CURRENT", "framework@1", "framework@2", "oms@1"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("after full + differential save want %v, got %v", want, names)
	}
	// A loaded framework has no differential anchor, so its next save is
	// a full base snapshot (epoch 3). GC retains what the new AND the
	// previous manifest reference — the epoch-2 manifest still names the
	// epoch-1 base — and collects the rest (framework@1).
	if err := ld.SaveTo(reopened); err != nil {
		t.Fatal(err)
	}
	names, err = reopened.List()
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"CURRENT", "framework@2", "framework@3", "oms@1", "oms@3"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("after full save over differential chain want %v, got %v", want, names)
	}
}
