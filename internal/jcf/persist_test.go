package jcf

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/oms"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw

	// Populate: reservation, hierarchy, design data, flow progress.
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "d.sch")
	if err := os.WriteFile(src, []byte("schematic alu\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dov, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	cell2, _ := fw.CreateCell(w.project, "reg")
	cv2, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	if err := fw.SubmitHierarchy(w.cv, cv2); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := fw.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Release and resources survive.
	if ld.Release() != Release30 {
		t.Fatalf("release = %s", ld.Release())
	}
	if got := ld.Flows(); len(got) != 1 || got[0] != "asic" {
		t.Fatalf("flows = %v", got)
	}
	f, err := ld.Flow("asic")
	if err != nil || !f.Frozen() {
		t.Fatal("flow not restored frozen")
	}
	if got := f.Activities(); len(got) != 3 {
		t.Fatalf("activities = %v", got)
	}
	if got := f.Successors("schematic-entry"); len(got) != 1 || got[0] != "simulate" {
		t.Fatalf("precedes lost: %v", got)
	}
	// Project data survives (same OIDs).
	if got := ld.Cells(w.project); len(got) != 2 {
		t.Fatalf("cells = %v", got)
	}
	if ld.CellVersionNum(w.cv) != 1 {
		t.Fatal("cell version lost")
	}
	// Reservation survives.
	holder, held := ld.ReservedBy(w.cv)
	if !held || holder != "anna" {
		t.Fatalf("reservation lost: %q,%t", holder, held)
	}
	// Hierarchy survives.
	if got := ld.Children(w.cv); len(got) != 1 || got[0] != cv2 {
		t.Fatalf("hierarchy lost: %v", got)
	}
	// Design data survives, byte-exact.
	dst := filepath.Join(t.TempDir(), "out.sch")
	if err := ld.CheckOutData("anna", dov, dst); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dst)
	if err != nil || string(data) != "schematic alu\n" {
		t.Fatalf("design data lost: %q, %v", data, err)
	}
	// The restored framework is fully operational: publish then re-reserve.
	if err := ld.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := ld.Reserve("bert", w.cv); err != nil {
		t.Fatal(err)
	}
	// New objects do not collide with old OIDs.
	cell3, err := ld.CreateCell(w.project, "mul")
	if err != nil {
		t.Fatal(err)
	}
	if cell3 == w.cell || cell3 == cell2 {
		t.Fatal("OID reuse after load")
	}
}

func TestSaveLoadRelease40State(t *testing.T) {
	w := newWorld(t, Release40)
	fw := w.fw
	cell2, _ := fw.CreateCell(w.project, "reg")
	cv2, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	if err := fw.SubmitHierarchyTyped(w.cv, cv2, "layout"); err != nil {
		t.Fatal(err)
	}
	team2, _ := fw.CreateTeam("t2")
	project2, err := fw.CreateProject("p2", team2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.ShareCell(w.cell, project2); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := fw.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Release() != Release40 {
		t.Fatal("release lost")
	}
	kids, err := ld.TypedChildren(w.cv, "layout")
	if err != nil || len(kids) != 1 || kids[0] != cv2 {
		t.Fatalf("typed hierarchy lost: %v, %v", kids, err)
	}
	shared, err := ld.SharedCells(project2)
	if err != nil || len(shared) != 1 || shared[0] != w.cell {
		t.Fatalf("shares lost: %v, %v", shared, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("load of missing dir")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "framework.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt framework.json accepted")
	}
	// Valid framework.json but missing oms.json.
	if err := os.WriteFile(filepath.Join(dir, "framework.json"), []byte(`{"release":30}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("missing oms.json accepted")
	}
	_ = oms.InvalidOID
	var errSentinel = errors.New("x")
	_ = errSentinel
}

func TestSaveIsDeterministic(t *testing.T) {
	w := newWorld(t, Release30)
	dir1, dir2 := t.TempDir(), t.TempDir()
	if err := w.fw.Save(dir1); err != nil {
		t.Fatal(err)
	}
	if err := w.fw.Save(dir2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dir1, "framework.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir2, "framework.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("framework.json not deterministic")
	}
}
