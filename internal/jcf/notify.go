package jcf

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/itc"
	"repro/internal/obs"
	"repro/internal/oms"
)

// Feed-driven tool notification.
//
// The paper's coupling problem (section 2.4) is keeping the tools on the
// ITC bus informed about design-management events without opening JCF's
// closed interfaces. Before the change feed, each interested call site
// would have had to publish its own bus message — scattered, easy to
// miss, and invisible for state that commits through a batch. The
// notifier replaces call-site publication wholesale: it subscribes to
// the OMS change feed and translates committed low-level records into
// framework-level messages, so every path that mutates the database —
// single ops, grouped batches, even future ones — feeds tool
// notification automatically and in commit (LSN) order.
//
// Because Watch delivers whole commit groups, a notification is emitted
// only once its group committed completely: tools never hear about half
// a checkin.

// Notification topics published on the itc.Bus.
const (
	// TopicCheckin announces a committed design-data checkin. Fields:
	// dov, do (OIDs), lsn.
	TopicCheckin = "jcf.checkin"
	// TopicPublish announces a published cell version. Fields: cv, lsn.
	TopicPublish = "jcf.publish"
	// TopicReservation announces workspace reservation traffic. Fields:
	// cv, user ("" when released), action ("reserved"/"released"), lsn.
	TopicReservation = "jcf.reservation"
	// TopicVariant announces a variant derivation. Fields: variant,
	// from (the predecessor variant; absent for an original variant),
	// cv, lsn.
	TopicVariant = "jcf.variant"
)

// NotifierTool is the From name the notifier signs its messages with.
const NotifierTool = "jcf-notifier"

// Notifier is a running feed→bus bridge; Stop cancels it.
type Notifier struct {
	fw   *Framework
	bus  *itc.Bus
	sub  *oms.Subscription
	done sync.WaitGroup

	// Delivery-loss accounting (see Stats): a vetoed Publish means a bus
	// handler refused the message — the event still happened (it is
	// committed history), so the loss must be observable rather than
	// silently discarded as it was before.
	statPublished obs.Counter
	statVetoed    obs.Counter
}

// RegisterMetrics exposes the bridge's delivery counters in reg — the
// same cells Stats() reads.
func (n *Notifier) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("jcf_notify_published_total", &n.statPublished)
	reg.RegisterCounter("jcf_notify_vetoed_total", &n.statVetoed)
}

// NotifierStats reports how the feed→ITC bridge has fared.
type NotifierStats struct {
	// Published counts messages every subscribed handler accepted.
	Published int64
	// Vetoed counts messages a bus handler refused (or that failed to
	// publish): framework events tools did NOT (all) hear about. A tool
	// that needs completeness resynchronizes from the database.
	Vetoed int64
}

// Stats returns cumulative delivery counters for the bridge.
func (n *Notifier) Stats() NotifierStats {
	return NotifierStats{
		Published: n.statPublished.Load(),
		Vetoed:    n.statVetoed.Load(),
	}
}

// StartNotifier bridges the framework's change feed onto an ITC bus,
// starting with changes committed after this call. Delivery runs on its
// own goroutine in feed order; a bus handler veto cannot stop history
// (the change already committed) — it is counted in Stats as a dropped
// delivery instead. Works on primaries and on replica views alike: a
// follower store republishes the primary's commit groups into its own
// feed, so tools colocated with a replica hear the same events in the
// same commit order.
func (fw *Framework) StartNotifier(bus *itc.Bus) (*Notifier, error) {
	sub, err := fw.store.Watch(fw.store.FeedLSN(), 64)
	if err != nil {
		return nil, fmt.Errorf("jcf: notifier: %w", err)
	}
	n := &Notifier{fw: fw, bus: bus, sub: sub}
	n.done.Add(1)
	go func() {
		defer n.done.Done()
		for group := range sub.C() {
			n.notifyGroup(group)
		}
	}()
	return n, nil
}

// Stop cancels the bridge and waits for the delivery goroutine.
func (n *Notifier) Stop() {
	n.sub.Close()
	n.done.Wait()
}

// publish sends one framework-level message, folding the outcome into
// the bridge's loss accounting.
func (n *Notifier) publish(msg itc.Message) {
	if err := n.bus.Publish(msg); err != nil {
		n.statVetoed.Inc()
		return
	}
	n.statPublished.Inc()
}

// Lagged reports whether the bridge lost its subscription because it
// fell behind the feed's retention window. A lagged notifier has
// stopped; the caller restarts one (missed events are gone — tools that
// need completeness resynchronize from the database, not the bus).
func (n *Notifier) Lagged() bool { return n.sub.Lagged() }

// notifyGroup translates one committed feed group into framework-level
// bus messages.
func (n *Notifier) notifyGroup(group []oms.Change) {
	fw := n.fw
	oidStr := func(o oms.OID) string { return strconv.FormatInt(int64(o), 10) }
	lsn := strconv.FormatUint(group[0].Group, 10)
	// Group-scoped link lookup: a checkin's doHasVersion link and a
	// derivation's precedes link commit in the same group as the create
	// they qualify.
	linkTo := func(rel string, to oms.OID) (oms.OID, bool) {
		for _, c := range group {
			if c.Kind == oms.ChangeLink && c.Rel == rel && c.To == to {
				return c.From, true
			}
		}
		return oms.InvalidOID, false
	}
	// Tagged switch over the kind, exhaustive by construction: adding a
	// sixth ChangeKind fails the kindswitch lint here until the notifier
	// decides what (if anything) it means for subscribers.
	for _, c := range group {
		switch c.Kind {
		case oms.ChangeCreate:
			switch c.Class {
			case "DesignObjectVersion":
				do, ok := linkTo(fw.rel.doHasVersion, c.OID)
				if !ok {
					// A version created without its ownership link in the
					// same group cannot be attributed; skip rather than
					// misreport.
					continue
				}
				n.publish(itc.Message{Topic: TopicCheckin, From: NotifierTool, Fields: map[string]string{
					"dov": oidStr(c.OID), "do": oidStr(do), "lsn": lsn,
				}})
			case "Variant":
				cv, _ := linkTo(fw.rel.hasVariant, c.OID)
				fields := map[string]string{"variant": oidStr(c.OID), "cv": oidStr(cv), "lsn": lsn}
				if from, derived := linkTo(fw.rel.variantPrecedes, c.OID); derived {
					fields["from"] = oidStr(from)
				} else {
					continue // original variants are part of cell version setup, not derivations
				}
				n.publish(itc.Message{Topic: TopicVariant, From: NotifierTool, Fields: fields})
			}
		case oms.ChangeSet:
			if c.Class != "CellVersion" {
				continue
			}
			switch c.Attr {
			case "published":
				if c.Value.Kind == oms.KindBool && c.Value.Bool {
					n.publish(itc.Message{Topic: TopicPublish, From: NotifierTool, Fields: map[string]string{
						"cv": oidStr(c.OID), "lsn": lsn,
					}})
				}
			case "reservedBy":
				if c.Cleared {
					continue // rollback compensation of a first-time reserve
				}
				action := "reserved"
				if c.Value.Str == "" {
					action = "released"
				}
				n.publish(itc.Message{Topic: TopicReservation, From: NotifierTool, Fields: map[string]string{
					"cv": oidStr(c.OID), "user": c.Value.Str, "action": action, "lsn": lsn,
				}})
			}
		case oms.ChangeLink, oms.ChangeUnlink, oms.ChangeDelete:
			// Links are read group-scoped above (linkTo); no standalone
			// notifications for these kinds.
		}
	}
}

// --- change feed access for coupling layers ---------------------------

// FeedLSN returns the database's committed change-feed position. See
// oms.Store.FeedLSN.
func (fw *Framework) FeedLSN() uint64 { return fw.store.FeedLSN() }

// Changes returns the committed change records after `since` and
// whether the range is complete (false: the feed ring evicted part of
// it and the consumer must resynchronize from a full scan). The records
// expose the database's low-level history; they are how the coupling
// layer (internal/core) tracks the master incrementally despite JCF's
// otherwise closed interfaces.
func (fw *Framework) Changes(since uint64) ([]oms.Change, bool) {
	return fw.store.Changes(since)
}

// Watch subscribes to the framework database's change feed. See
// oms.Store.Watch.
func (fw *Framework) Watch(since uint64, buf int) (*oms.Subscription, error) {
	return fw.store.Watch(since, buf)
}
