package jcf

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/itc"
	"repro/internal/oms/backend"
)

// Tests for ISSUE 4: the change feed's jcf consumers — the batched
// config/enact paths, the feed→itc notification bridge, and
// differential persistence on the segment backend.

// --- induced-failure atomicity of the newly batched paths -------------

// TestCreateConfigurationInducedFailureAtomic: a non-CellVersion target
// fails the configures link mid-batch; no Configuration and no
// ConfigVersion may survive. The old op-by-op path left a detached
// Configuration behind.
func TestCreateConfigurationInducedFailureAtomic(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	cfgCount := fw.store.Count("Configuration")
	verCount := fw.store.Count("ConfigVersion")
	if _, _, err := fw.CreateConfiguration(w.team, "golden"); err == nil {
		t.Fatal("configuration on a Team accepted")
	}
	if got := fw.store.Count("Configuration"); got != cfgCount {
		t.Fatalf("store grew %d orphan Configurations", got-cfgCount)
	}
	if got := fw.store.Count("ConfigVersion"); got != verCount {
		t.Fatalf("store grew %d orphan ConfigVersions", got-verCount)
	}
	// A good create right after works and numbers from 1.
	cfg, v1, err := fw.CreateConfiguration(w.cv, "golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.ConfigVersions(cfg); len(got) != 1 || got[0] != v1 {
		t.Fatalf("config versions = %v, want [%d]", got, v1)
	}
	if got := fw.store.GetInt(v1, "num"); got != 1 {
		t.Fatalf("initial config version num = %d", got)
	}
}

// TestDeriveConfigVersionInducedFailureAtomic: deriving from a version
// that already has a successor fails on the precedes link (ToCard One);
// the whole batch — version, ownership link, entry copies — must vanish.
func TestDeriveConfigVersionInducedFailureAtomic(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	cfg, v1, err := fw.CreateConfiguration(w.cv, "golden")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := fw.DeriveConfigVersion(v1)
	if err != nil {
		t.Fatal(err)
	}
	verCount := fw.store.Count("ConfigVersion")
	fp := fw.store.Count("") // total objects: the no-trace fingerprint
	if _, err := fw.DeriveConfigVersion(v1); err == nil {
		t.Fatal("second derive from v1 accepted (v1 already has a successor)")
	}
	if got := fw.store.Count("ConfigVersion"); got != verCount {
		t.Fatalf("losing derive left %d orphan ConfigVersions", got-verCount)
	}
	if got := fw.store.Count(""); got != fp {
		t.Fatalf("losing derive changed object count by %d", got-fp)
	}
	if got := fw.ConfigVersions(cfg); len(got) != 2 {
		t.Fatalf("config has %d versions, want 2", len(got))
	}
	// Deriving from the tip still works and copies entries atomically.
	v3, err := fw.DeriveConfigVersion(v2)
	if err != nil {
		t.Fatal(err)
	}
	if fw.store.GetInt(v3, "num") != fw.store.GetInt(v2, "num")+1 {
		t.Fatal("derived numbering broken")
	}
}

// TestRecordExecInducedFailureAtomicAndSurfaced: the exec-version
// create+link batch against a dead variant must fail loudly (the old
// path discarded the link error) and strand nothing.
func TestRecordExecInducedFailureAtomicAndSurfaced(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	if err := fw.store.Delete(v1); err != nil {
		t.Fatal(err)
	}
	execCount := fw.store.Count("ActiveExecVersion")
	if err := fw.recordExecOn(v1, "entry", "running:anna"); err == nil {
		t.Fatal("recording execution on a deleted variant succeeded silently")
	}
	if got := fw.store.Count("ActiveExecVersion"); got != execCount {
		t.Fatalf("failed exec recording stranded %d ActiveExecVersions", got-execCount)
	}
}

// TestExecutionHistoryStillRecorded: the batched path keeps the
// queryable execution history intact end to end.
func TestExecutionHistoryStillRecorded(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := fw.StartActivity("anna", w.cv, "schematic-entry"); err != nil {
		t.Fatal(err)
	}
	if err := fw.FinishActivity("anna", w.cv, "schematic-entry", true); err != nil {
		t.Fatal(err)
	}
	hist := fw.ExecutionHistory(w.cv)
	if len(hist) != 2 || hist[0] != "schematic-entry/running:anna" || hist[1] != "schematic-entry/done" {
		t.Fatalf("execution history = %v", hist)
	}
}

// --- the feed→itc notification bridge ---------------------------------

// busRecorder collects messages of one topic.
type busRecorder struct {
	mu   sync.Mutex
	msgs []itc.Message
}

func (r *busRecorder) handler(m itc.Message) error {
	r.mu.Lock()
	r.msgs = append(r.msgs, m)
	r.mu.Unlock()
	return nil
}

func (r *busRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func (r *busRecorder) get(i int) itc.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.msgs[i]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNotifierPublishesFrameworkEvents: reservation, checkin, variant
// derivation and publish all reach the bus, in commit order, sourced
// from the feed rather than from the call sites.
func TestNotifierPublishesFrameworkEvents(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	bus := itc.NewBus()
	recs := map[string]*busRecorder{}
	for _, topic := range []string{TopicCheckin, TopicPublish, TopicReservation, TopicVariant} {
		r := &busRecorder{}
		recs[topic] = r
		bus.Subscribe(topic, "test-tool", r.handler)
	}
	n, err := fw.StartNotifier(bus)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "alu.sch")
	if err := os.WriteFile(src, []byte("netlist"), 0o644); err != nil {
		t.Fatal(err)
	}
	dov, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := fw.DeriveVariant(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "reservation events", func() bool { return recs[TopicReservation].count() >= 2 })
	waitFor(t, "checkin event", func() bool { return recs[TopicCheckin].count() >= 1 })
	waitFor(t, "variant event", func() bool { return recs[TopicVariant].count() >= 1 })
	waitFor(t, "publish event", func() bool { return recs[TopicPublish].count() >= 1 })

	res := recs[TopicReservation].get(0)
	if res.Fields["user"] != "anna" || res.Fields["action"] != "reserved" ||
		res.Fields["cv"] != fmt.Sprint(w.cv) {
		t.Fatalf("reservation event = %+v", res.Fields)
	}
	rel := recs[TopicReservation].get(1)
	if rel.Fields["action"] != "released" || rel.Fields["user"] != "" {
		t.Fatalf("release event = %+v", rel.Fields)
	}
	ci := recs[TopicCheckin].get(0)
	if ci.Fields["dov"] != fmt.Sprint(dov) || ci.Fields["do"] != fmt.Sprint(do) {
		t.Fatalf("checkin event = %+v", ci.Fields)
	}
	va := recs[TopicVariant].get(0)
	if va.Fields["variant"] != fmt.Sprint(v2) || va.Fields["from"] != fmt.Sprint(v1) ||
		va.Fields["cv"] != fmt.Sprint(w.cv) {
		t.Fatalf("variant event = %+v", va.Fields)
	}
	pub := recs[TopicPublish].get(0)
	if pub.Fields["cv"] != fmt.Sprint(w.cv) {
		t.Fatalf("publish event = %+v", pub.Fields)
	}
	// The original variant created during cell-version setup is not a
	// derivation — exactly one variant event.
	if got := recs[TopicVariant].count(); got != 1 {
		t.Fatalf("%d variant derivation events, want 1", got)
	}
}

// --- differential persistence on the segment backend ------------------

// populate runs some designer traffic so saves have something to write.
func populate(t *testing.T, fw *Framework, w *world, tag string, n int) {
	t.Helper()
	v1 := fw.Variants(w.cv)[0]
	src := filepath.Join(t.TempDir(), "d.dat")
	if err := os.WriteFile(src, []byte("design-"+tag), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		do, err := fw.CreateDesignObject(v1, fmt.Sprintf("do-%s-%d", tag, i), w.schVT)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.CheckInData("anna", do, src); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialSaveRoundTrip: full base, then two differential
// commits; the manifest chains deltas, payload bytes shrink, and Load
// replays the chain to the exact live state.
func TestDifferentialSaveRoundTrip(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	seg, err := backend.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	populate(t, fw, w, "base", 8)
	if err := fw.SaveTo(seg); err != nil {
		t.Fatal(err)
	}
	m1, err := backend.LoadManifest(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Deltas) != 0 || m1.BaseEpoch != m1.Epoch || m1.FeedLSN == 0 {
		t.Fatalf("first save not a clean base: %+v", m1)
	}
	basePayload, err := seg.Get(m1.OMS)
	if err != nil {
		t.Fatal(err)
	}

	populate(t, fw, w, "delta1", 2)
	if err := fw.SaveTo(seg); err != nil {
		t.Fatal(err)
	}
	populate(t, fw, w, "delta2", 2)
	if err := fw.SaveTo(seg); err != nil {
		t.Fatal(err)
	}
	m3, err := backend.LoadManifest(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Deltas) != 2 {
		t.Fatalf("manifest chains %d deltas, want 2: %+v", len(m3.Deltas), m3)
	}
	if m3.OMS != m1.OMS || m3.BaseEpoch != m1.Epoch {
		t.Fatalf("differential commit rewrote the base: %+v", m3)
	}
	if m3.Deltas[0].FromLSN != m1.FeedLSN || m3.Deltas[1].FromLSN != m3.Deltas[0].ToLSN {
		t.Fatalf("delta chain not contiguous: %+v", m3.Deltas)
	}
	for _, d := range m3.Deltas {
		payload, err := seg.Get(d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) >= len(basePayload) {
			t.Fatalf("delta %s (%d bytes) not smaller than base (%d bytes)",
				d.Name, len(payload), len(basePayload))
		}
	}

	ld, err := LoadFrom(seg)
	if err != nil {
		t.Fatal(err)
	}
	if holder, held := ld.ReservedBy(w.cv); !held || holder != "anna" {
		t.Fatal("reservation lost through differential load")
	}
	if got, want := ld.store.Count("DesignObjectVersion"), fw.store.Count("DesignObjectVersion"); got != want {
		t.Fatalf("restored %d versions, want %d", got, want)
	}
	// Byte-level equivalence of the restored database.
	liveSnap, err := fw.store.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	loadedSnap, err := ld.store.Snapshot().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(liveSnap) != string(loadedSnap) {
		t.Fatal("differential load diverges from live store")
	}
}

// TestDifferentialSaveCompaction: the chain folds back into a full base
// once it reaches the compaction bound, and a loaded framework (no
// anchor) always starts with a full base.
func TestDifferentialSaveCompaction(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	fw.maxDeltaChain = 2
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	seg, err := backend.OpenSegment(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		populate(t, fw, w, fmt.Sprintf("e%d", i), 1)
		if err := fw.SaveTo(seg); err != nil {
			t.Fatal(err)
		}
	}
	m, err := backend.LoadManifest(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs: 1 full, 2 delta, 3 delta (chain=2), 4 full again.
	if m.Epoch != 4 || m.BaseEpoch != 4 || len(m.Deltas) != 0 {
		t.Fatalf("no compaction after chain bound: %+v", m)
	}
	ld, err := LoadFrom(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.SaveTo(seg); err != nil {
		t.Fatal(err)
	}
	m5, err := backend.LoadManifest(seg)
	if err != nil {
		t.Fatal(err)
	}
	if m5.BaseEpoch != 5 || len(m5.Deltas) != 0 {
		t.Fatalf("loaded framework did not fall back to a full base: %+v", m5)
	}
	if _, err := LoadFrom(seg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialSaveIgnoredOnFileBackend: the atomic-rename file
// backend is not delta-capable; every save stays a full base.
func TestDifferentialSaveIgnoredOnFileBackend(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	fb, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SaveTo(fb); err != nil {
		t.Fatal(err)
	}
	populate(t, fw, w, "x", 1)
	if err := fw.SaveTo(fb); err != nil {
		t.Fatal(err)
	}
	m, err := backend.LoadManifest(fb)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Deltas) != 0 || m.BaseEpoch != m.Epoch {
		t.Fatalf("file backend produced a differential commit: %+v", m)
	}
}

// TestDifferentialSaveCrashConsistencyUnderLoad is the segment-backend
// sibling of TestSaveCrashConsistencyUnderLoad: differential saves loop
// against concurrent designers, and every committed manifest must load
// into a mutually consistent (framework, oms) pair. Run under -race by
// `make stress-feed`.
func TestDifferentialSaveCrashConsistencyUnderLoad(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	const designers = 4
	for d := 0; d < designers; d++ {
		name := fmt.Sprintf("designer%d", d)
		uid, err := fw.CreateUser(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.AddMember(w.team, uid); err != nil {
			t.Fatal(err)
		}
	}
	var stopFlag chanStop
	var wg sync.WaitGroup
	for d := 0; d < designers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			user := fmt.Sprintf("designer%d", d)
			for i := 0; !stopFlag.stopped(); i++ {
				cell, err := fw.CreateCell(w.project, fmt.Sprintf("dc-%d-%d", d, i))
				if err != nil {
					t.Errorf("designer %d: %v", d, err)
					return
				}
				cv, err := fw.CreateCellVersion(cell, "asic", w.team)
				if err != nil {
					t.Errorf("designer %d: %v", d, err)
					return
				}
				if err := fw.Reserve(user, cv); err != nil {
					t.Errorf("designer %d: %v", d, err)
					return
				}
				if err := fw.Publish(user, cv); err != nil {
					t.Errorf("designer %d: %v", d, err)
					return
				}
			}
		}(d)
	}
	seg, err := backend.OpenSegment(t.TempDir())
	if err != nil {
		stopFlag.stop()
		wg.Wait()
		t.Fatal(err)
	}
	const saves = 8
	for i := 0; i < saves; i++ {
		if err := fw.SaveTo(seg); err != nil {
			stopFlag.stop()
			wg.Wait()
			t.Fatalf("save %d: %v", i, err)
		}
		ld, err := LoadFrom(seg)
		if err != nil {
			stopFlag.stop()
			wg.Wait()
			t.Fatalf("load of save %d: %v", i, err)
		}
		ld.mu.RLock()
		for cv, user := range ld.reservations {
			if !ld.store.Exists(cv) {
				ld.mu.RUnlock()
				stopFlag.stop()
				wg.Wait()
				t.Fatalf("save %d: reservation by %q names missing cell version %d", i, user, cv)
			}
		}
		ld.mu.RUnlock()
	}
	m, err := backend.LoadManifest(seg)
	if err == nil && len(m.Deltas) == 0 && m.Epoch > 1 {
		t.Log("note: no differential commit happened (designers may have outrun the ring)")
	}
	stopFlag.stop()
	wg.Wait()
}

// chanStop is a tiny stop flag (sync/atomic-free test helper).
type chanStop struct {
	mu sync.Mutex
	s  bool
}

func (c *chanStop) stop()         { c.mu.Lock(); c.s = true; c.mu.Unlock() }
func (c *chanStop) stopped() bool { c.mu.Lock(); defer c.mu.Unlock(); return c.s }
