package jcf

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/oms"
	"repro/internal/oms/backend"
	"repro/internal/oms/blobstore"
)

// Stress and crash-window tests for the content-addressed checkin
// pipeline (ISSUE 9). Run under -race by `make stress-blob`.

const blobSpillAt = 64

// newBlobWorld is newWorld plus an enabled blob store on a file backend
// (the same backend SaveTo targets, as deployed: blob-<digest> names
// coexist with the manifest epochs).
func newBlobWorld(t *testing.T) (*world, backend.Backend) {
	t.Helper()
	w := newWorld(t, Release30)
	be, err := backend.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.fw.EnableBlobStore(be, blobSpillAt); err != nil {
		t.Fatal(err)
	}
	return w, be
}

// checkInBytes runs one CheckInData with data staged to a real file.
func checkInBytes(t *testing.T, fw *Framework, dir, user string, do oms.OID, data []byte) (oms.OID, error) {
	t.Helper()
	src := filepath.Join(dir, fmt.Sprintf("src-%d", do))
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return fw.CheckInData(user, do, src)
}

// TestStressBlobDedupConcurrentCheckins: designers hammer concurrent
// checkins, half with content A and half with content B. Dedup must
// collapse the CAS to exactly two physical blobs without ever
// cross-wiring a version to the other goroutine's content, and Publish
// (the durability gate) must drain every async upload first.
func TestStressBlobDedupConcurrentCheckins(t *testing.T) {
	w, _ := newBlobWorld(t)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	contentA := bytes.Repeat([]byte("layout-a "), 4096)
	contentB := bytes.Repeat([]byte("layout-b "), 4096)

	const designers = 8
	const perDesigner = 6
	dir := t.TempDir()
	dos := make([]oms.OID, designers)
	for i := range dos {
		do, err := fw.CreateDesignObject(v1, fmt.Sprintf("alu-%d", i), w.layVT)
		if err != nil {
			t.Fatal(err)
		}
		dos[i] = do
	}
	want := sync.Map{} // dov -> expected content
	var wg sync.WaitGroup
	errs := make(chan error, designers)
	for i := 0; i < designers; i++ {
		content := contentA
		if i%2 == 1 {
			content = contentB
		}
		src := filepath.Join(dir, fmt.Sprintf("designer-%d", i))
		if err := os.WriteFile(src, content, 0o644); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(do oms.OID, src string, content []byte) {
			defer wg.Done()
			for j := 0; j < perDesigner; j++ {
				dov, err := fw.CheckInData("anna", do, src)
				if err != nil {
					errs <- err
					return
				}
				want.Store(dov, content)
			}
		}(dos[i], src, content)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Publish gates on every upload being durable; afterwards every
	// version must resolve to exactly the content its designer checked in.
	if err := fw.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	versions := 0
	want.Range(func(k, v any) bool {
		versions++
		dov, content := k.(oms.OID), v.([]byte)
		got, err := fw.store.BlobBytes(dov, "data")
		if err != nil {
			t.Fatalf("version %d: %v", dov, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("version %d cross-wired: got %q.. want %q..", dov, got[:9], content[:9])
		}
		return true
	})
	if versions != designers*perDesigner {
		t.Fatalf("resolved %d versions, want %d", versions, designers*perDesigner)
	}

	// Two distinct contents -> exactly two physical blobs, whatever the
	// interleaving; everything else was a dedup hit.
	if n := fw.BlobStore().Count(); n != 2 {
		t.Fatalf("CAS holds %d blobs, want 2", n)
	}
	stats := fw.BlobStats()
	logical := int64(designers * perDesigner * len(contentA))
	if stats.LogicalIn != logical {
		t.Fatalf("LogicalIn = %d, want %d", stats.LogicalIn, logical)
	}
	if phys := int64(len(contentA) + len(contentB)); stats.PhysicalIn != phys {
		t.Fatalf("PhysicalIn = %d, want %d (dedup broken)", stats.PhysicalIn, phys)
	}
	if stats.DedupHits != int64(designers*perDesigner-2) {
		t.Fatalf("DedupHits = %d, want %d", stats.DedupHits, designers*perDesigner-2)
	}
}

// TestStressBlobCrashBeforeMetadataCommit: the crash window where the
// blob reached the CAS but the metadata batch never committed. The
// surviving state must load, verify every live ref, and sweep the
// orphaned bytes.
func TestStressBlobCrashBeforeMetadataCommit(t *testing.T) {
	w, be := newBlobWorld(t)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-lay", w.layVT)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	live := bytes.Repeat([]byte("survivor "), 1024)
	if _, err := checkInBytes(t, fw, t.TempDir(), "anna", do, live); err != nil {
		t.Fatal(err)
	}
	if err := fw.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	// The crash: bytes durable in the CAS, metadata commit never happened.
	orphan, err := fw.BlobStore().PutBytes(bytes.Repeat([]byte("orphan "), 1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SaveTo(be); err != nil {
		t.Fatal(err)
	}

	// Restart. Load + EnableBlobStore must verify all live refs (the
	// orphan references nothing and must not fail verification).
	fw2, err := LoadFrom(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw2.EnableBlobStore(be, blobSpillAt); err != nil {
		t.Fatal(err)
	}
	if !fw2.BlobStore().Has(orphan) {
		t.Fatal("index rebuild lost the orphan blob")
	}
	swept, err := fw2.SweepBlobs()
	if err != nil {
		t.Fatal(err)
	}
	if swept != 1 {
		t.Fatalf("swept %d blobs, want 1 (the orphan)", swept)
	}
	if fw2.BlobStore().Has(orphan) {
		t.Fatal("orphan survived the sweep")
	}
	// The live version still resolves, digest-verified.
	dov := fw2.DesignObjectVersions(do)[0]
	got, err := fw2.store.BlobBytes(dov, "data")
	if err != nil || !bytes.Equal(got, live) {
		t.Fatalf("live blob lost after sweep: %v", err)
	}
}

// TestStressBlobCrashBeforeBlobDurability: the opposite window — the
// metadata ref committed but the blob never became durable. An
// UNPUBLISHED version may dangle (Load tolerates it; the designer
// re-checks-in), but Publish must refuse it, and a PUBLISHED version
// with a missing or corrupt blob must fail load-time verification.
func TestStressBlobCrashBeforeBlobDurability(t *testing.T) {
	w, be := newBlobWorld(t)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-lay", w.layVT)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("not-yet-durable "), 1024)
	dov, err := checkInBytes(t, fw, t.TempDir(), "anna", do, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SaveTo(be); err != nil {
		t.Fatal(err)
	}
	// Quiesce the async upload before inducing the crash — otherwise a
	// late upload could re-create the blob after the Delete below and
	// the simulated crash state (ref committed, blob absent) would not
	// hold. The scenario is about the resulting on-disk state.
	if err := fw.WaitBlobDurable(w.cv); err != nil {
		t.Fatal(err)
	}
	// The crash: delete the blob from the backend — as if the process
	// died before the async upload hit disk (the ref committed first).
	ref := blobstore.RefOf(data)
	if err := be.Delete(ref.Key()); err != nil {
		t.Fatal(err)
	}

	// Unpublished dangling ref: load succeeds, publishing refuses.
	fw2, err := LoadFrom(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw2.EnableBlobStore(be, blobSpillAt); err != nil {
		t.Fatalf("unpublished dangling ref must not fail load: %v", err)
	}
	if err := fw2.Publish("anna", w.cv); err == nil {
		t.Fatal("published a version whose blob is not durable")
	} else if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("publish error = %v, want missing-blob refusal", err)
	}
	if _, err := fw2.store.BlobBytes(dov, "data"); err == nil {
		t.Fatal("dangling ref resolved")
	}

	// The designer recovers by re-checking-in the data; then publishing
	// works and a fresh load verifies clean.
	if _, err := checkInBytes(t, fw2, t.TempDir(), "anna", do, data); err != nil {
		t.Fatal(err)
	}
	if err := fw2.Publish("anna", w.cv); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	if err := fw2.SaveTo(be); err != nil {
		t.Fatal(err)
	}
	fw3, err := LoadFrom(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw3.EnableBlobStore(be, blobSpillAt); err != nil {
		t.Fatalf("clean state failed verification: %v", err)
	}

	// A PUBLISHED version must never survive load with a bad blob:
	// corrupt the stored bytes and verification has to fail loudly.
	if err := be.Put(ref.Key(), []byte("corrupted payload")); err != nil {
		t.Fatal(err)
	}
	fw4, err := LoadFrom(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw4.EnableBlobStore(be, blobSpillAt); err == nil {
		t.Fatal("load accepted a published version with a corrupt blob")
	}
	if err := be.Delete(ref.Key()); err != nil {
		t.Fatal(err)
	}
	fw5, err := LoadFrom(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw5.EnableBlobStore(be, blobSpillAt); err == nil {
		t.Fatal("load accepted a published version with a missing blob")
	}
}

// TestStressBlobSweepCheckinRace: the GC sweep races live checkins. A
// checkin that spills its blob, commits the ref, and drops its pin while
// a sweep is mid-flight must never lose the blob to that sweep (the
// sweep-fence + pin-before-put contract); every committed version must
// still resolve with a verified digest afterwards. Unique contents per
// checkin keep every round a fresh blob, so a stale live set would be
// fatal rather than masked by dedup.
func TestStressBlobSweepCheckinRace(t *testing.T) {
	w, _ := newBlobWorld(t)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	const designers = 4
	const perDesigner = 12
	dir := t.TempDir()
	dos := make([]oms.OID, designers)
	for i := range dos {
		do, err := fw.CreateDesignObject(v1, fmt.Sprintf("alu-%d", i), w.layVT)
		if err != nil {
			t.Fatal(err)
		}
		dos[i] = do
	}
	want := sync.Map{} // dov -> expected content
	stop := make(chan struct{})
	var sweeper sync.WaitGroup
	sweeper.Add(1)
	go func() {
		defer sweeper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := fw.SweepBlobs(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, designers)
	for i := 0; i < designers; i++ {
		wg.Add(1)
		go func(i int, do oms.OID) {
			defer wg.Done()
			for j := 0; j < perDesigner; j++ {
				content := bytes.Repeat([]byte(fmt.Sprintf("unique-%d-%d ", i, j)), 512)
				src := filepath.Join(dir, fmt.Sprintf("d%d-%d", i, j))
				if err := os.WriteFile(src, content, 0o644); err != nil {
					errs <- err
					return
				}
				dov, err := fw.CheckInData("anna", do, src)
				if err != nil {
					errs <- err
					return
				}
				want.Store(dov, content)
			}
		}(i, dos[i])
	}
	wg.Wait()
	close(stop)
	sweeper.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := fw.WaitBlobDurable(w.cv); err != nil {
		t.Fatal(err)
	}
	// One final sweep with everything quiesced, then every committed
	// version must still resolve to exactly its content.
	if _, err := fw.SweepBlobs(); err != nil {
		t.Fatal(err)
	}
	resolved := 0
	want.Range(func(k, v any) bool {
		resolved++
		dov, content := k.(oms.OID), v.([]byte)
		got, err := fw.store.BlobBytes(dov, "data")
		if err != nil {
			t.Fatalf("version %d lost its blob to the sweep: %v", dov, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("version %d resolved to wrong content", dov)
		}
		return true
	})
	if resolved != designers*perDesigner {
		t.Fatalf("resolved %d versions, want %d", resolved, designers*perDesigner)
	}
}

// TestStressBlobPublishWaitsForUploads: Publish must block on in-flight
// uploads rather than racing them — checkins and publishes interleave
// from separate goroutines and every successfully published state must
// have durable data for all its versions.
func TestStressBlobPublishWaitsForUploads(t *testing.T) {
	w, _ := newBlobWorld(t)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-lay", w.layVT)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for round := 0; round < 30; round++ {
		if err := fw.Reserve("anna", w.cv); err != nil {
			t.Fatal(err)
		}
		content := bytes.Repeat([]byte{byte('a' + round%26)}, 8192)
		dov, err := checkInBytes(t, fw, dir, "anna", do, content)
		if err != nil {
			t.Fatal(err)
		}
		// Publish immediately: the upload may still be in flight; the
		// durability gate must hold the publish until it lands.
		if err := fw.Publish("anna", w.cv); err != nil {
			t.Fatal(err)
		}
		v, ok, err := fw.store.Get(dov, "data")
		if err != nil || !ok {
			t.Fatalf("round %d: version lost its data: ok=%v err=%v", round, ok, err)
		}
		ref, err := v.AsBlobRef()
		if err != nil {
			t.Fatalf("round %d: published data is not a ref: %v", round, err)
		}
		if err := fw.BlobStore().Verify(ref); err != nil {
			t.Fatalf("round %d: published version not durable: %v", round, err)
		}
	}
}
