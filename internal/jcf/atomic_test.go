package jcf

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/oms"
)

// Regression tests for the check-then-act windows and partial-failure
// orphans the batched (Store.Apply) rewiring closes. See ISSUE 3.

// TestCheckInDataInducedFailureNoOrphans is the acceptance-criteria test:
// 1000 checkins whose copy-in is induced to fail (missing source file)
// must leave zero orphaned DesignObjectVersions — the old op-by-op path
// created and linked the version before discovering the file was gone.
func TestCheckInDataInducedFailureNoOrphans(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	// One good checkin so the failures below would also exercise the
	// derivation-link step if they ever got that far.
	src := filepath.Join(t.TempDir(), "alu.sch")
	if err := os.WriteFile(src, []byte("version-1 netlist"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.CheckInData("anna", do, src); err != nil {
		t.Fatal(err)
	}
	versionsBefore := len(fw.DesignObjectVersions(do))
	countBefore := fw.store.Count("DesignObjectVersion")

	for i := 0; i < 1000; i++ {
		if _, err := fw.CheckInData("anna", do, "/no/such/design/file"); err == nil {
			t.Fatal("checkin of a missing file succeeded")
		}
	}
	if got := len(fw.DesignObjectVersions(do)); got != versionsBefore {
		t.Fatalf("design object grew %d orphan versions", got-versionsBefore)
	}
	if got := fw.store.Count("DesignObjectVersion"); got != countBefore {
		t.Fatalf("store grew %d orphan DesignObjectVersions", got-countBefore)
	}
	// The next good checkin numbers contiguously — the 1000 failures
	// consumed no version numbers.
	dov, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.VersionNum(dov); got != int64(versionsBefore)+1 {
		t.Fatalf("next version num = %d, want %d", got, versionsBefore+1)
	}
}

// TestCheckInDataVsPublishRace closes the reservation window: CheckInData
// must commit its batch only while the user still holds the workspace
// reservation. Designer goroutines hammer checkins while the owner keeps
// publishing (which releases the reservation) and re-reserving. The
// invariant a torn window would break: every DesignObjectVersion that
// exists carries its data blob, and there are exactly as many versions as
// successful checkins. Run under -race by `make check`.
func TestCheckInDataVsPublishRace(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "alu.sch")
	if err := os.WriteFile(src, []byte("netlist"), 0o644); err != nil {
		t.Fatal(err)
	}
	var successes atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := fw.CheckInData("anna", do, src)
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, ErrNotReserved):
					// The window where anna does not hold the workspace.
				default:
					t.Errorf("checkin: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := fw.Reserve("anna", w.cv); err != nil {
			t.Errorf("reserve: %v", err)
			break
		}
		if err := fw.Publish("anna", w.cv); err != nil {
			t.Errorf("publish: %v", err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	versions := fw.DesignObjectVersions(do)
	if int64(len(versions)) != successes.Load() {
		t.Fatalf("%d versions exist but %d checkins succeeded", len(versions), successes.Load())
	}
	for i, dov := range versions {
		size, err := fw.DataSize(dov)
		if err != nil {
			t.Fatal(err)
		}
		if size == 0 {
			t.Fatalf("version %d (num %d) has no data blob: committed outside the reservation", dov, fw.VersionNum(dov))
		}
		if got := fw.VersionNum(dov); got != int64(i)+1 {
			t.Fatalf("version numbering torn: position %d holds num %d", i, got)
		}
	}
}

// TestCreateCellVersionInducedFailureAtomic feeds CreateCellVersion a
// team OID that is not a Team object: the attachedTeam link fails
// mid-sequence, and the whole batch — version, ownership link, flow link,
// initial variant — must vanish. The old path left a version linked to
// the cell with a flow but no team and no variant.
func TestCreateCellVersionInducedFailureAtomic(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	before := len(fw.CellVersions(w.cell))
	cvCount := fw.store.Count("CellVersion")
	varCount := fw.store.Count("Variant")
	anna, err := fw.User("anna")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.CreateCellVersion(w.cell, "asic", anna); err == nil {
		t.Fatal("cell version with a User as team accepted")
	}
	if got := len(fw.CellVersions(w.cell)); got != before {
		t.Fatalf("cell kept %d half-wired versions", got-before)
	}
	if got := fw.store.Count("CellVersion"); got != cvCount {
		t.Fatalf("store grew %d orphan CellVersions", got-cvCount)
	}
	if got := fw.store.Count("Variant"); got != varCount {
		t.Fatalf("store grew %d orphan Variants", got-varCount)
	}
	// Numbering is unaffected by the failed attempt.
	cv2, err := fw.CreateCellVersion(w.cell, "asic", w.team)
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.CellVersionNum(cv2); got != int64(before)+1 {
		t.Fatalf("next version num = %d, want %d", got, before+1)
	}
}

// TestCreateDesignObjectInducedFailureAtomic: a non-ViewType target for
// ofViewType must not leave an untyped DesignObject attached to the
// variant.
func TestCreateDesignObjectInducedFailureAtomic(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	doCount := fw.store.Count("DesignObject")
	if _, err := fw.CreateDesignObject(v1, "alu-sch", w.team); err == nil {
		t.Fatal("design object with a Team as view type accepted")
	}
	if got := fw.store.Count("DesignObject"); got != doCount {
		t.Fatalf("store grew %d orphan DesignObjects", got-doCount)
	}
	if got := len(fw.DesignObjects(v1)); got != 0 {
		t.Fatalf("variant uses %d half-wired design objects", got)
	}
}

// TestDeriveVariantConcurrent: concurrent derives from one variant must
// each land fully — distinct numbers, a precedes edge, and the complete
// shared design-object set — because the whole derivation is one batch.
func TestDeriveVariantConcurrent(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	for _, name := range []string{"alu-sch", "alu-lay"} {
		if _, err := fw.CreateDesignObject(v1, name, w.schVT); err != nil {
			t.Fatal(err)
		}
	}
	const derives = 8
	var wg sync.WaitGroup
	got := make([]oms.OID, derives)
	for i := 0; i < derives; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := fw.DeriveVariant(v1)
			if err != nil {
				t.Errorf("derive %d: %v", i, err)
				return
			}
			got[i] = v
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if vs := fw.Variants(w.cv); len(vs) != derives+1 {
		t.Fatalf("cell version has %d variants, want %d", len(vs), derives+1)
	}
	seen := map[int64]bool{}
	for _, v := range got {
		num := fw.VariantNum(v)
		if seen[num] {
			t.Fatalf("duplicate variant number %d", num)
		}
		seen[num] = true
		if fw.VariantPredecessor(v) != v1 {
			t.Fatalf("variant %d lost its precedes edge", v)
		}
		if dos := fw.DesignObjects(v); len(dos) != 2 {
			t.Fatalf("variant %d shares %d design objects, want 2", v, len(dos))
		}
	}
	if succ := fw.VariantSuccessors(v1); len(succ) != derives {
		t.Fatalf("v1 has %d successors, want %d", len(succ), derives)
	}
}
