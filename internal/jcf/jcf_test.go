package jcf

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/flow"
	"repro/internal/oms"
)

// testFlow builds the three-activity encapsulation flow of section 2.4.
func testFlow(t *testing.T) *flow.Flow {
	t.Helper()
	f := flow.New("asic")
	for _, a := range []flow.Activity{
		{Name: "schematic-entry", Tool: "fmcad-schematic", Creates: []string{"schematic"}},
		{Name: "simulate", Tool: "fmcad-dsim", Needs: []string{"schematic"}},
		{Name: "layout-entry", Tool: "fmcad-layout", Needs: []string{"schematic"}, Creates: []string{"layout"}},
	} {
		if err := f.AddActivity(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AddPrecedes("schematic-entry", "simulate"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPrecedes("simulate", "layout-entry"); err != nil {
		t.Fatal(err)
	}
	return f
}

// world is a ready-to-use framework with users, a team, a project, a cell
// and one cell version.
type world struct {
	fw      *Framework
	team    oms.OID
	project oms.OID
	cell    oms.OID
	cv      oms.OID
	schVT   oms.OID
	layVT   oms.OID
}

func newWorld(t *testing.T, release Release) *world {
	t.Helper()
	fw, err := New(release)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"anna", "bert", "carl"} {
		if _, err := fw.CreateUser(u); err != nil {
			t.Fatal(err)
		}
	}
	team, err := fw.CreateTeam("vlsi")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"anna", "bert"} {
		uid, err := fw.User(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.AddMember(team, uid); err != nil {
			t.Fatal(err)
		}
	}
	for _, tool := range []string{"fmcad-schematic", "fmcad-dsim", "fmcad-layout"} {
		if _, err := fw.CreateTool(tool); err != nil {
			t.Fatal(err)
		}
	}
	schVT, err := fw.CreateViewType("schematic")
	if err != nil {
		t.Fatal(err)
	}
	layVT, err := fw.CreateViewType("layout")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RegisterFlow(testFlow(t)); err != nil {
		t.Fatal(err)
	}
	project, err := fw.CreateProject("chip1", team)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := fw.CreateCell(project, "alu")
	if err != nil {
		t.Fatal(err)
	}
	cv, err := fw.CreateCellVersion(cell, "asic", team)
	if err != nil {
		t.Fatal(err)
	}
	return &world{fw: fw, team: team, project: project, cell: cell, cv: cv, schVT: schVT, layVT: layVT}
}

func TestReleaseString(t *testing.T) {
	if Release30.String() != "3.0" || Release40.String() != "4.0" {
		t.Fatal("release strings")
	}
	if Release(7).String() == "" {
		t.Fatal("unknown release string")
	}
	if _, err := New(Release(7)); err == nil {
		t.Fatal("unknown release accepted")
	}
}

func TestResources(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if _, err := fw.CreateUser("anna"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate user: %v", err)
	}
	if _, err := fw.CreateUser(""); err == nil {
		t.Fatal("empty user accepted")
	}
	if _, err := fw.User("nobody"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing user found")
	}
	uid, err := fw.User("anna")
	if err != nil {
		t.Fatal(err)
	}
	if !fw.IsMember(w.team, uid) {
		t.Fatal("anna not member")
	}
	carl, _ := fw.User("carl")
	if fw.IsMember(w.team, carl) {
		t.Fatal("carl is member")
	}
	if got := fw.Members(w.team); len(got) != 2 || got[0] != "anna" || got[1] != "bert" {
		t.Fatalf("Members = %v", got)
	}
	if got := fw.Flows(); len(got) != 1 || got[0] != "asic" {
		t.Fatalf("Flows = %v", got)
	}
	if _, err := fw.Flow("asic"); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Flow("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing flow found")
	}
	// Registering the same flow name again fails.
	if _, err := fw.RegisterFlow(testFlow(t)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate flow: %v", err)
	}
}

func TestProjectStructure(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if _, err := fw.CreateCell(w.project, "alu"); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate cell accepted")
	}
	if _, err := fw.CreateCell(w.project, ""); err == nil {
		t.Fatal("empty cell accepted")
	}
	if got := fw.Cells(w.project); len(got) != 1 || got[0] != "alu" {
		t.Fatalf("Cells = %v", got)
	}
	c, err := fw.Cell(w.project, "alu")
	if err != nil || c != w.cell {
		t.Fatalf("Cell = %d, %v", c, err)
	}
	if _, err := fw.Cell(w.project, "mul"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing cell found")
	}
	if fw.CellName(w.cell) != "alu" {
		t.Fatal("CellName")
	}
	if p, err := fw.Project("chip1"); err != nil || p != w.project {
		t.Fatal("Project lookup")
	}

	// Cell versions number automatically and carry flow/team.
	if fw.CellVersionNum(w.cv) != 1 {
		t.Fatalf("num = %d", fw.CellVersionNum(w.cv))
	}
	cv2, err := fw.CreateCellVersion(w.cell, "asic", w.team)
	if err != nil {
		t.Fatal(err)
	}
	if fw.CellVersionNum(cv2) != 2 {
		t.Fatalf("second num = %d", fw.CellVersionNum(cv2))
	}
	if got := fw.CellVersions(w.cell); len(got) != 2 || got[0] != w.cv {
		t.Fatalf("CellVersions = %v", got)
	}
	if cell, err := fw.CellOf(w.cv); err != nil || cell != w.cell {
		t.Fatal("CellOf")
	}
	fn, err := fw.AttachedFlowName(w.cv)
	if err != nil || fn != "asic" {
		t.Fatalf("AttachedFlowName = %q, %v", fn, err)
	}
	team, err := fw.AttachedTeam(w.cv)
	if err != nil || team != w.team {
		t.Fatal("AttachedTeam")
	}
	if _, err := fw.CreateCellVersion(w.cell, "missing-flow", w.team); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing flow accepted")
	}
}

func TestVariants(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	vs := fw.Variants(w.cv)
	if len(vs) != 1 || fw.VariantNum(vs[0]) != 1 {
		t.Fatalf("initial variants = %v", vs)
	}
	v2, err := fw.DeriveVariant(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if fw.VariantNum(v2) != 2 {
		t.Fatalf("v2 num = %d", fw.VariantNum(v2))
	}
	if got := fw.VariantSuccessors(vs[0]); len(got) != 1 || got[0] != v2 {
		t.Fatalf("precedes relation = %v", got)
	}
	if got := fw.VariantSuccessors(v2); len(got) != 0 {
		t.Fatal("v2 has successor")
	}
	if fw.VariantPredecessor(v2) != vs[0] {
		t.Fatal("predecessor missing")
	}
	if fw.VariantPredecessor(vs[0]) != oms.InvalidOID {
		t.Fatal("original variant has predecessor")
	}
	if _, err := fw.DeriveVariant(oms.OID(99999)); !errors.Is(err, ErrNotFound) {
		t.Fatal("derive of missing variant")
	}
	// Design objects are shared into derived variants.
	do, err := fw.CreateDesignObject(vs[0], "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := fw.DeriveVariant(v2)
	if err != nil {
		t.Fatal(err)
	}
	_ = v3
	// v2 had no design objects (do was added to v1 after v2 derived), so
	// check sharing through a fresh derivation from v1.
	v4, err := fw.DeriveVariant(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.DesignObjects(v4); len(got) != 1 || got[0] != do {
		t.Fatalf("shared design objects = %v", got)
	}
}

func TestDesignObjectsAndData(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	do, err := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.CreateDesignObject(v1, "", w.schVT); err == nil {
		t.Fatal("empty design object accepted")
	}
	if fw.DesignObjectName(do) != "alu-sch" {
		t.Fatal("DesignObjectName")
	}
	if vt, err := fw.ViewTypeOf(do); err != nil || vt != "schematic" {
		t.Fatalf("ViewTypeOf = %q, %v", vt, err)
	}
	if _, err := fw.ViewTypeOf(w.cv); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ViewTypeOf on an object without an ofViewType link = %v, want ErrNotFound", err)
	}
	if got, err := fw.DesignObjectByName(v1, "alu-sch"); err != nil || got != do {
		t.Fatal("DesignObjectByName")
	}
	if _, err := fw.DesignObjectByName(v1, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing DO found")
	}

	dir := t.TempDir()
	src := filepath.Join(dir, "alu.sch")
	if err := os.WriteFile(src, []byte("cell alu\nwire w1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Check-in without reservation is rejected.
	if _, err := fw.CheckInData("anna", do, src); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("unreserved check-in: %v", err)
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	dov, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	if fw.VersionNum(dov) != 1 {
		t.Fatalf("version num = %d", fw.VersionNum(dov))
	}
	if fw.LatestVersion(do) != dov {
		t.Fatal("LatestVersion")
	}
	size, err := fw.DataSize(dov)
	if err != nil || size != 17 {
		t.Fatalf("DataSize = %d, %v", size, err)
	}

	// Second check-in records automatic derivation.
	dov2, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.DerivedFrom(dov2); len(got) != 1 || got[0] != dov {
		t.Fatalf("DerivedFrom = %v", got)
	}
	if got := fw.Derivatives(dov); len(got) != 1 || got[0] != dov2 {
		t.Fatalf("Derivatives = %v", got)
	}

	// Copy-out: reservation holder may read; outsiders may not before
	// publication.
	dst := filepath.Join(dir, "out.sch")
	if err := fw.CheckOutData("anna", dov, dst); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dst)
	if err != nil || string(data) != "cell alu\nwire w1\n" {
		t.Fatalf("copy-out content %q, %v", data, err)
	}
	if err := fw.CheckOutData("bert", dov, dst); !errors.Is(err, ErrNotPublished) {
		t.Fatalf("unpublished read by bert: %v", err)
	}
	if err := fw.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := fw.CheckOutData("bert", dov, dst); err != nil {
		t.Fatalf("published read by bert: %v", err)
	}
	// Blob traffic accounted.
	in, out := fw.BlobTraffic()
	if in == 0 || out == 0 {
		t.Fatalf("BlobTraffic = %d, %d", in, out)
	}
	if fw.MetadataOps() == 0 {
		t.Fatal("MetadataOps = 0")
	}
}

func TestWorkspaceSemantics(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	// carl is not a team member.
	if err := fw.Reserve("carl", w.cv); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-member reserve: %v", err)
	}
	if err := fw.Reserve("nobody", w.cv); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown user reserve: %v", err)
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if holder, held := fw.ReservedBy(w.cv); !held || holder != "anna" {
		t.Fatalf("ReservedBy = %q,%t", holder, held)
	}
	// Second reservation rejected — including by the holder.
	if err := fw.Reserve("bert", w.cv); !errors.Is(err, ErrReserved) {
		t.Fatalf("double reserve: %v", err)
	}
	if err := fw.Reserve("anna", w.cv); !errors.Is(err, ErrReserved) {
		t.Fatalf("self re-reserve: %v", err)
	}
	if fw.ReserveConflicts() != 2 {
		t.Fatalf("ReserveConflicts = %d", fw.ReserveConflicts())
	}
	if !fw.CanWrite("anna", w.cv) || fw.CanWrite("bert", w.cv) {
		t.Fatal("CanWrite wrong")
	}
	if !fw.CanRead("anna", w.cv) || fw.CanRead("bert", w.cv) {
		t.Fatal("CanRead wrong before publish")
	}
	// Publish by non-holder rejected.
	if err := fw.Publish("bert", w.cv); !errors.Is(err, ErrNotReserved) {
		t.Fatal("foreign publish")
	}
	if err := fw.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if !fw.Published(w.cv) {
		t.Fatal("not published")
	}
	if _, held := fw.ReservedBy(w.cv); held {
		t.Fatal("still reserved after publish")
	}
	if !fw.CanRead("bert", w.cv) {
		t.Fatal("bert cannot read published")
	}
	// After publication bert can reserve and work.
	if err := fw.Reserve("bert", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := fw.ReleaseReservation("anna", w.cv); !errors.Is(err, ErrNotReserved) {
		t.Fatal("foreign release")
	}
	if err := fw.ReleaseReservation("bert", w.cv); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWorkOnDisjointCells(t *testing.T) {
	// The section 3.1 claim: "If IC designs are composed of several JCF
	// cells, the standard multi user capabilities of JCF can also be
	// used": two users on different cells never conflict.
	w := newWorld(t, Release30)
	fw := w.fw
	cell2, err := fw.CreateCell(w.project, "mul")
	if err != nil {
		t.Fatal(err)
	}
	cv2, err := fw.CreateCellVersion(cell2, "asic", w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := fw.Reserve("bert", cv2); err != nil {
		t.Fatalf("disjoint reserve conflicted: %v", err)
	}
	if fw.ReserveConflicts() != 0 {
		t.Fatalf("conflicts = %d", fw.ReserveConflicts())
	}
}

func TestFlowEnforcementThroughFramework(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if err := fw.StartActivity("anna", w.cv, "schematic-entry"); !errors.Is(err, ErrNotReserved) {
		t.Fatal("activity without reservation")
	}
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	// Out of order.
	if err := fw.StartActivity("anna", w.cv, "layout-entry"); !errors.Is(err, flow.ErrOrder) {
		t.Fatalf("out-of-order start: %v", err)
	}
	startable, err := fw.StartableActivities(w.cv)
	if err != nil || len(startable) != 1 || startable[0] != "schematic-entry" {
		t.Fatalf("Startable = %v, %v", startable, err)
	}
	if err := fw.StartActivity("anna", w.cv, "schematic-entry"); err != nil {
		t.Fatal(err)
	}
	if s, _ := fw.ActivityState(w.cv, "schematic-entry"); s != flow.Running {
		t.Fatalf("state = %s", s)
	}
	if err := fw.FinishActivity("anna", w.cv, "schematic-entry", true); err != nil {
		t.Fatal(err)
	}
	if err := fw.StartActivity("anna", w.cv, "simulate"); err != nil {
		t.Fatal(err)
	}
	if err := fw.FinishActivity("anna", w.cv, "simulate", true); err != nil {
		t.Fatal(err)
	}
	if err := fw.StartActivity("anna", w.cv, "layout-entry"); err != nil {
		t.Fatal(err)
	}
	if err := fw.FinishActivity("anna", w.cv, "layout-entry", true); err != nil {
		t.Fatal(err)
	}
	done, err := fw.FlowComplete(w.cv)
	if err != nil || !done {
		t.Fatalf("FlowComplete = %t, %v", done, err)
	}
	rej, err := fw.FlowRejections(w.cv)
	if err != nil || rej != 1 {
		t.Fatalf("FlowRejections = %d, %v", rej, err)
	}
	// The execution history was materialized in the database: one
	// running + one outcome entry per executed activity.
	hist := fw.ExecutionHistory(w.cv)
	if len(hist) != 6 {
		t.Fatalf("ExecutionHistory = %v", hist)
	}
	if hist[0] != "schematic-entry/running:anna" || hist[1] != "schematic-entry/done" {
		t.Fatalf("history head = %v", hist[:2])
	}
	if hist[5] != "layout-entry/done" {
		t.Fatalf("history tail = %v", hist)
	}
}

func TestExecutionHistoryRecordsFailures(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if err := fw.StartActivity("anna", w.cv, "schematic-entry"); err != nil {
		t.Fatal(err)
	}
	if err := fw.FinishActivity("anna", w.cv, "schematic-entry", false); err != nil {
		t.Fatal(err)
	}
	hist := fw.ExecutionHistory(w.cv)
	if len(hist) != 2 || hist[1] != "schematic-entry/failed" {
		t.Fatalf("history = %v", hist)
	}
	// Rejected starts leave no execution entry.
	if err := fw.StartActivity("anna", w.cv, "layout-entry"); err == nil {
		t.Fatal("out-of-order start accepted")
	}
	if got := fw.ExecutionHistory(w.cv); len(got) != 2 {
		t.Fatalf("rejected start recorded: %v", got)
	}
	// Empty history for a fresh version.
	cell2, _ := fw.CreateCell(w.project, "fresh")
	cv2, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	if got := fw.ExecutionHistory(cv2); len(got) != 0 {
		t.Fatalf("fresh history = %v", got)
	}
}

func TestHierarchyDesktopSubmission(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	cell2, _ := fw.CreateCell(w.project, "reg")
	cv2, err := fw.CreateCellVersion(cell2, "asic", w.team)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SubmitHierarchy(w.cv, cv2); err != nil {
		t.Fatal(err)
	}
	if got := fw.Children(w.cv); len(got) != 1 || got[0] != cv2 {
		t.Fatalf("Children = %v", got)
	}
	if got := fw.Parents(cv2); len(got) != 1 || got[0] != w.cv {
		t.Fatalf("Parents = %v", got)
	}
	if got := fw.HierarchyClosure(w.cv); len(got) != 1 {
		t.Fatalf("closure = %v", got)
	}
	// Cycles rejected.
	if err := fw.SubmitHierarchy(cv2, w.cv); err == nil {
		t.Fatal("cycle accepted")
	}
	if err := fw.SubmitHierarchy(w.cv, w.cv); err == nil {
		t.Fatal("self-containment accepted")
	}
}

func TestRelease30Restrictions(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	cell2, _ := fw.CreateCell(w.project, "reg")
	cv2, _ := fw.CreateCellVersion(cell2, "asic", w.team)

	if fw.ProceduralHierarchyInterface() {
		t.Fatal("3.0 has procedural interface")
	}
	if err := fw.SubmitHierarchyProcedural(w.cv, cv2); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("procedural on 3.0: %v", err)
	}
	if err := fw.SubmitHierarchyTyped(w.cv, cv2, "layout"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("typed hierarchy on 3.0: %v", err)
	}
	if _, err := fw.TypedChildren(w.cv, "layout"); !errors.Is(err, ErrUnsupported) {
		t.Fatal("typed children on 3.0")
	}
	if err := fw.ShareCell(cell2, w.project); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("sharing on 3.0: %v", err)
	}
	if _, err := fw.SharedCells(w.project); !errors.Is(err, ErrUnsupported) {
		t.Fatal("shared cells on 3.0")
	}
}

func TestRelease40Features(t *testing.T) {
	w := newWorld(t, Release40)
	fw := w.fw
	cell2, _ := fw.CreateCell(w.project, "reg")
	cv2, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	cell3, _ := fw.CreateCell(w.project, "pad")
	cv3, _ := fw.CreateCellVersion(cell3, "asic", w.team)

	if !fw.ProceduralHierarchyInterface() {
		t.Fatal("4.0 lacks procedural interface")
	}
	if err := fw.SubmitHierarchyProcedural(w.cv, cv2); err != nil {
		t.Fatal(err)
	}
	// Non-isomorphic: schematic contains reg only; layout contains reg+pad.
	if err := fw.SubmitHierarchyTyped(w.cv, cv2, "schematic"); err != nil {
		t.Fatal(err)
	}
	if err := fw.SubmitHierarchyTyped(w.cv, cv2, "layout"); err != nil {
		t.Fatal(err)
	}
	if err := fw.SubmitHierarchyTyped(w.cv, cv3, "layout"); err != nil {
		t.Fatal(err)
	}
	sch, err := fw.TypedChildren(w.cv, "schematic")
	if err != nil || len(sch) != 1 {
		t.Fatalf("schematic children = %v, %v", sch, err)
	}
	lay, err := fw.TypedChildren(w.cv, "layout")
	if err != nil || len(lay) != 2 {
		t.Fatalf("layout children = %v, %v", lay, err)
	}
	// Idempotent typed submit.
	if err := fw.SubmitHierarchyTyped(w.cv, cv2, "layout"); err != nil {
		t.Fatal(err)
	}
	lay, _ = fw.TypedChildren(w.cv, "layout")
	if len(lay) != 2 {
		t.Fatal("idempotence broken")
	}
	// Typed cycle rejected.
	if err := fw.SubmitHierarchyTyped(cv2, w.cv, "layout"); err == nil {
		t.Fatal("typed cycle accepted")
	}
	if err := fw.SubmitHierarchyTyped(w.cv, w.cv, "layout"); err == nil {
		t.Fatal("typed self accepted")
	}

	// Inter-project sharing.
	team2, _ := fw.CreateTeam("io-team")
	project2, err := fw.CreateProject("chip2", team2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.ShareCell(w.cell, project2); err != nil {
		t.Fatal(err)
	}
	if err := fw.ShareCell(w.cell, project2); err != nil {
		t.Fatal(err) // idempotent
	}
	shared, err := fw.SharedCells(project2)
	if err != nil || len(shared) != 1 || shared[0] != w.cell {
		t.Fatalf("SharedCells = %v, %v", shared, err)
	}
	if err := fw.ShareCell(w.cell, w.project); err == nil {
		t.Fatal("sharing into own project accepted")
	}
	if err := fw.ShareCell(oms.OID(99999), project2); !errors.Is(err, ErrNotFound) {
		t.Fatal("sharing missing cell")
	}
}

func TestConfigurations(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	do, _ := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "f.sch")
	if err := os.WriteFile(src, []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dov1, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	dov2, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}

	cfg, cfgV1, err := fw.CreateConfiguration(w.cv, "golden")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw.CreateConfiguration(w.cv, ""); err == nil {
		t.Fatal("empty config name accepted")
	}
	if err := fw.AddConfigEntry(cfgV1, dov1); err != nil {
		t.Fatal(err)
	}
	if got := fw.ConfigEntries(cfgV1); len(got) != 1 || got[0] != dov1 {
		t.Fatalf("entries = %v", got)
	}
	// Rebinding the same design object replaces the entry — max one
	// version per design object.
	if err := fw.AddConfigEntry(cfgV1, dov2); err != nil {
		t.Fatal(err)
	}
	if got := fw.ConfigEntries(cfgV1); len(got) != 1 || got[0] != dov2 {
		t.Fatalf("entries after rebind = %v", got)
	}
	// Deriving a config version copies entries and records precedes.
	cfgV2, err := fw.DeriveConfigVersion(cfgV1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.ConfigEntries(cfgV2); len(got) != 1 || got[0] != dov2 {
		t.Fatalf("derived entries = %v", got)
	}
	if got := fw.ConfigVersions(cfg); len(got) != 2 {
		t.Fatalf("config versions = %v", got)
	}
	if got := fw.ConfigurationsOf(w.cv); len(got) != 1 || got[0] != cfg {
		t.Fatalf("ConfigurationsOf = %v", got)
	}
	if _, err := fw.DeriveConfigVersion(oms.OID(99999)); !errors.Is(err, ErrNotFound) {
		t.Fatal("derive of missing config version")
	}
}

func TestDerivationAndEquivalence(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	v1 := fw.Variants(w.cv)[0]
	sch, _ := fw.CreateDesignObject(v1, "alu-sch", w.schVT)
	lay, _ := fw.CreateDesignObject(v1, "alu-lay", w.layVT)
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(src, []byte("d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	schV, _ := fw.CheckInData("anna", sch, src)
	layV, _ := fw.CheckInData("anna", lay, src)

	// The cross-tool derivation the encapsulation records (section 2.4).
	if err := fw.RecordDerivation(schV, layV); err != nil {
		t.Fatal(err)
	}
	if err := fw.RecordEquivalence(schV, layV); err != nil {
		t.Fatal(err)
	}
	if got := fw.DerivationClosure(schV); len(got) != 1 || got[0] != layV {
		t.Fatalf("closure = %v", got)
	}
	if got := fw.EquivalentTo(schV); len(got) != 1 || got[0] != layV {
		t.Fatalf("equivalent = %v", got)
	}
	if got := fw.EquivalentTo(layV); len(got) != 1 || got[0] != schV {
		t.Fatalf("equivalent reverse = %v", got)
	}
	// Transitive closure.
	layV2, _ := fw.CheckInData("anna", lay, src)
	if got := fw.DerivationClosure(schV); len(got) != 2 {
		t.Fatalf("transitive closure = %v (want layV, layV2=%d)", got, layV2)
	}
}

func TestCheckConsistency(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if probs := fw.CheckConsistency(); len(probs) != 0 {
		t.Fatalf("fresh world inconsistent: %v", probs)
	}
	// Build hierarchy alu(v1) -> reg(v1), then publish a newer reg v2:
	// the hierarchy entry goes stale and the check reports it.
	cell2, _ := fw.CreateCell(w.project, "reg")
	regV1, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	if err := fw.SubmitHierarchy(w.cv, regV1); err != nil {
		t.Fatal(err)
	}
	regV2, _ := fw.CreateCellVersion(cell2, "asic", w.team)
	if err := fw.Reserve("anna", regV2); err != nil {
		t.Fatal(err)
	}
	if err := fw.Publish("anna", regV2); err != nil {
		t.Fatal(err)
	}
	probs := fw.CheckConsistency()
	if len(probs) != 1 || probs[0].Kind != "stale-hierarchy" {
		t.Fatalf("consistency = %+v", probs)
	}
}

func TestDesktopSummary(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	s, err := fw.DesktopSummary(w.project)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Project chip1", "cell alu", "v1", "reserved by anna", "variant 1"} {
		if !contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if _, err := fw.DesktopSummary(oms.OID(99999)); err == nil {
		t.Fatal("summary of missing project")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
