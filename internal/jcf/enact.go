package jcf

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/oms"
	"repro/internal/otod"
)

// otodRel builds the relationship key used to resolve schema names.
func otodRel(name, from, to string) otod.Relationship {
	return otod.Relationship{Name: name, From: from, To: to}
}

// Activity execution: each cell version enacts its attached flow. The
// designer must hold the workspace reservation, and the flow order is
// enforced — "the speciﬁed order in which tools can be executed is
// prescribed and ﬁxed for the designer" (section 3.5).

// enactment returns (creating lazily) the flow enactment of a cell
// version.
func (fw *Framework) enactment(cv oms.OID) (*flow.Enactment, error) {
	fw.mu.RLock()
	if e, ok := fw.enactments[cv]; ok {
		fw.mu.RUnlock()
		return e, nil
	}
	fw.mu.RUnlock()

	name, err := fw.AttachedFlowName(cv)
	if err != nil {
		return nil, err
	}
	f, err := fw.Flow(name)
	if err != nil {
		return nil, err
	}
	e, err := flow.NewEnactment(f)
	if err != nil {
		return nil, err
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if existing, ok := fw.enactments[cv]; ok {
		return existing, nil // lost a benign race
	}
	fw.enactments[cv] = e
	return e, nil
}

// StartActivity begins the named flow activity on a cell version. The user
// must hold the workspace reservation and the flow order must allow it.
// Each successful start materializes an ActiveExecVersion object in the
// database (Figure 1, Variants region), so the execution history is
// queryable metadata.
func (fw *Framework) StartActivity(user string, cv oms.OID, activity string) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	if err := fw.requireReservation(user, cv); err != nil {
		return err
	}
	e, err := fw.enactment(cv)
	if err != nil {
		return err
	}
	if err := e.Start(activity); err != nil {
		return err
	}
	if err := fw.recordExec(cv, activity, "running:"+user); err != nil {
		// Surface the bookkeeping failure WITHOUT leaving the enactment
		// claiming an activity the caller was told did not start: mark
		// the start failed, which the flow engine treats as retryable.
		// If even that abort fails, the enactment still claims a running
		// activity — join both errors so the designer sees the whole
		// state instead of only the bookkeeping half.
		if ferr := e.Finish(activity, false); ferr != nil {
			return errors.Join(err, fmt.Errorf("jcf: aborting activity %q after bookkeeping failure: %w", activity, ferr))
		}
		return err
	}
	return nil
}

// recordExec creates the ActiveExecVersion object for an activity
// start/finish. Object and activeExec link commit as one batch, so a
// failed link can no longer strand a detached ActiveExecVersion — and
// the error is surfaced to the designer instead of being discarded (the
// old path silently dropped the link error, leaving execution history
// that CheckConsistency could never reach). A cell version without
// variants records nothing (the enactment stays authoritative).
func (fw *Framework) recordExec(cv oms.OID, activity, state string) error {
	variants := fw.Variants(cv)
	if len(variants) == 0 {
		return nil
	}
	return fw.recordExecOn(variants[len(variants)-1], activity, state)
}

// recordExecOn is recordExec's batched body, keyed by the variant the
// execution entry attaches to.
func (fw *Framework) recordExecOn(variant oms.OID, activity, state string) error {
	b := fw.getBatch()
	defer fw.putBatch(b)
	exec := b.CreateOwned("ActiveExecVersion", map[string]oms.Value{
		"state": oms.S(activity + "/" + state),
	})
	rel := fw.model.SchemaRelName(otodRel("activeExec", "Variant", "ActiveExecVersion"))
	b.Link(rel, variant, exec)
	if _, err := fw.store.Apply(b); err != nil {
		return fmt.Errorf("jcf: recording activity execution: %w", err)
	}
	return nil
}

// FinishActivity completes a running activity (ok=false marks it failed,
// allowing a retry). The outcome is recorded as another execution entry.
// A returned error from the recording step means the activity DID
// finish in the flow engine but its history entry is missing — the
// enactment stays authoritative; only the queryable metadata is short
// one entry.
func (fw *Framework) FinishActivity(user string, cv oms.OID, activity string, ok bool) error {
	if err := fw.guardWrite(); err != nil {
		return err
	}
	if err := fw.requireReservation(user, cv); err != nil {
		return err
	}
	e, err := fw.enactment(cv)
	if err != nil {
		return err
	}
	if err := e.Finish(activity, ok); err != nil {
		return err
	}
	outcome := "done"
	if !ok {
		outcome = "failed"
	}
	return fw.recordExec(cv, activity, outcome)
}

// ExecutionHistory returns the recorded activity-execution entries of a
// cell version (across all its variants), in creation order. Entries look
// like "simulate/running:anna" or "simulate/done".
func (fw *Framework) ExecutionHistory(cv oms.OID) []string {
	rel := fw.model.SchemaRelName(otodRel("activeExec", "Variant", "ActiveExecVersion"))
	var execs []oms.OID
	for _, v := range fw.Variants(cv) {
		execs = append(execs, fw.store.Targets(rel, v)...)
	}
	sort.Slice(execs, func(i, j int) bool { return execs[i] < execs[j] })
	out := make([]string, 0, len(execs))
	for _, e := range execs {
		out = append(out, fw.store.GetString(e, "state"))
	}
	return out
}

// ActivityState returns the state of a flow activity on a cell version.
//
// The four flow-state queries below are read entry points that touch the
// lazily built enactment cache. On a replica view they can never reach
// the cache write: flows are session metadata of the primary, so
// enactment() fails with ErrNotFound at the Flow lookup first — the
// documented replica behaviour for the activity APIs.
//
//lint:allow guardwrite read path; enactment() returns ErrNotFound on replicas before its cache write (flows are not replicated)
func (fw *Framework) ActivityState(cv oms.OID, activity string) (flow.State, error) {
	e, err := fw.enactment(cv)
	if err != nil {
		return flow.NotRun, err
	}
	return e.State(activity)
}

// StartableActivities returns which activities the flow permits next.
//
//lint:allow guardwrite read path; enactment() returns ErrNotFound on replicas before its cache write (flows are not replicated)
func (fw *Framework) StartableActivities(cv oms.OID) ([]string, error) {
	e, err := fw.enactment(cv)
	if err != nil {
		return nil, err
	}
	return e.Startable(), nil
}

// FlowComplete reports whether every activity of the cell version's flow
// is done.
//
//lint:allow guardwrite read path; enactment() returns ErrNotFound on replicas before its cache write (flows are not replicated)
func (fw *Framework) FlowComplete(cv oms.OID) (bool, error) {
	e, err := fw.enactment(cv)
	if err != nil {
		return false, err
	}
	return e.Complete(), nil
}

// FlowRejections returns how many out-of-order Start attempts the flow
// enforcement refused on this cell version.
//
//lint:allow guardwrite read path; enactment() returns ErrNotFound on replicas before its cache write (flows are not replicated)
func (fw *Framework) FlowRejections(cv oms.OID) (int, error) {
	e, err := fw.enactment(cv)
	if err != nil {
		return 0, err
	}
	return e.Rejected(), nil
}

// DesktopSummary renders a human-readable desktop listing of a project:
// cells, versions, reservations, flow states. It is what the jcfdesk CLI
// shows.
func (fw *Framework) DesktopSummary(project oms.OID) (string, error) {
	name := fw.store.GetString(project, "name")
	if name == "" {
		return "", fmt.Errorf("%w: project %d", ErrNotFound, project)
	}
	out := fmt.Sprintf("Project %s (JCF %s)\n", name, fw.release)
	cells := fw.store.Targets(fw.rel.has, project)
	sort.Slice(cells, func(i, j int) bool {
		return fw.store.GetString(cells[i], "name") < fw.store.GetString(cells[j], "name")
	})
	for _, cell := range cells {
		out += fmt.Sprintf("  cell %s\n", fw.store.GetString(cell, "name"))
		for _, cv := range fw.CellVersions(cell) {
			status := "free"
			if holder, held := fw.ReservedBy(cv); held {
				status = "reserved by " + holder
			}
			pub := ""
			if fw.Published(cv) {
				pub = ", published"
			}
			flowName, _ := fw.AttachedFlowName(cv)
			out += fmt.Sprintf("    v%d (flow %s, %s%s)\n", fw.CellVersionNum(cv), flowName, status, pub)
			for _, v := range fw.Variants(cv) {
				out += fmt.Sprintf("      variant %d: %d design objects\n",
					fw.VariantNum(v), len(fw.DesignObjects(v)))
			}
		}
	}
	return out, nil
}
