package jcf

import (
	"repro/internal/obs"
)

// fwMetrics holds the framework's checkin-pipeline instruments. The
// cells live by value inside Framework; recording needs no registry and
// RegisterMetrics exposes pointers to the very same cells.
type fwMetrics struct {
	// checkinTotal times CheckInData end to end (the Span total).
	checkinTotal obs.Histogram
	// checkinRead times the design-file read stage.
	checkinRead obs.Histogram
	// checkinDigest times the spill stage: sha256, pin, ledger
	// registration and PutAsync enqueue (not the upload itself — that is
	// blob_upload_ns).
	checkinDigest obs.Histogram
	// checkinApply times the metadata batch's Store.Apply.
	checkinApply obs.Histogram
	// publishGate times Publish's upload-durability wait — how long a
	// publish stalls on the async pipeline draining.
	publishGate obs.Histogram
	// ledgerDepth counts uploads pending across all cell-version
	// ledgers (Publish's durability gate size).
	ledgerDepth obs.Gauge
}

// RegisterMetrics exposes the framework's instrument cells in reg,
// along with those of its store and (when enabled) its blob store —
// one call wires the whole primary side.
func (fw *Framework) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterHistogram("jcf_checkin_ns", &fw.metrics.checkinTotal)
	reg.RegisterHistogram("jcf_checkin_read_ns", &fw.metrics.checkinRead)
	reg.RegisterHistogram("jcf_checkin_digest_ns", &fw.metrics.checkinDigest)
	reg.RegisterHistogram("jcf_checkin_apply_ns", &fw.metrics.checkinApply)
	reg.RegisterHistogram("jcf_publish_gate_ns", &fw.metrics.publishGate)
	reg.RegisterGauge("jcf_upload_ledger_depth", &fw.metrics.ledgerDepth)
	reg.RegisterCounter("jcf_reserve_conflicts_total", &fw.statReserveConflicts)
	fw.store.RegisterMetrics(reg)
}
