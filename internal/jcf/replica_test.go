package jcf

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/itc"
	"repro/internal/otod"
	"repro/internal/repl"
)

// startReplicaOf wires a repl pipe replica to a live framework and
// returns the replica plus its read-only view.
func startReplicaOf(t *testing.T, fw *Framework) (*repl.Replica, *Framework) {
	t.Helper()
	ln, d := repl.Pipe()
	pub := repl.NewPublisher(fw.ReplicationSource())
	go func() { _ = pub.Serve(ln) }()
	t.Cleanup(pub.Close)
	schema, err := otod.JCFModel().Schema()
	if err != nil {
		t.Fatal(err)
	}
	rep := repl.NewReplica(schema, d, repl.WithReconnectBackoff(time.Millisecond))
	rep.Start()
	t.Cleanup(rep.Close)
	view, err := NewReplicaView(rep.Store(), fw.Release())
	if err != nil {
		t.Fatal(err)
	}
	return rep, view
}

// catchUp waits until the replica has applied the framework's whole feed.
func catchUp(t *testing.T, rep *repl.Replica, fw *Framework) {
	t.Helper()
	if err := rep.WaitFor(fw.FeedLSN(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaReadOnlyView: a replica view answers the read-side desktop
// API from replicated state and rejects every mutation with
// ErrReadOnlyReplica.
func TestReplicaReadOnlyView(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	// Design data + workspace state on the primary.
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	variants := fw.Variants(w.cv)
	do, err := fw.CreateDesignObject(variants[0], "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "alu.sch")
	if err := os.WriteFile(src, []byte("netlist v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	dov, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}

	rep, view := startReplicaOf(t, fw)
	catchUp(t, rep, fw)

	// Read side: project structure, version history, reservations, data.
	project, err := view.Project("chip1")
	if err != nil {
		t.Fatal(err)
	}
	if got := view.Cells(project); len(got) != 1 || got[0] != "alu" {
		t.Fatalf("replica Cells = %v", got)
	}
	if holder, held := view.ReservedBy(w.cv); !held || holder != "anna" {
		t.Fatalf("replica ReservedBy = %q, %v", holder, held)
	}
	if !view.CanWrite("anna", w.cv) || view.CanWrite("bert", w.cv) {
		t.Fatal("replica workspace access rules broken")
	}
	out := filepath.Join(t.TempDir(), "out.sch")
	if err := view.CheckOutData("anna", dov, out); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(out); string(data) != "netlist v1" {
		t.Fatalf("replica served %q", data)
	}
	if got, want := view.CheckConsistency(), fw.CheckConsistency(); len(got) != len(want) {
		t.Fatalf("replica consistency %v, primary %v", got, want)
	}

	// Write side: every mutating entry point must refuse.
	if _, err := view.CreateUser("mallory"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CreateUser on replica: %v", err)
	}
	if err := view.Reserve("bert", w.cv); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Reserve on replica: %v", err)
	}
	if err := view.Publish("anna", w.cv); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Publish on replica: %v", err)
	}
	if _, err := view.CheckInData("anna", do, src); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CheckInData on replica: %v", err)
	}
	if _, err := view.CreateVariant(w.cv); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CreateVariant on replica: %v", err)
	}
	if err := view.SubmitHierarchy(w.cv, w.cv+1); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("SubmitHierarchy on replica: %v", err)
	}
	if _, _, err := view.CreateConfiguration(w.cv, "cfg"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CreateConfiguration on replica: %v", err)
	}
	if err := view.SaveTo(nil); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("SaveTo on replica: %v", err)
	}
	if err := view.StartActivity("anna", w.cv, "schematic-entry"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("StartActivity on replica: %v", err)
	}

	// Replicated reads stay current: a release on the primary becomes
	// visible after the barrier.
	if err := fw.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	catchUp(t, rep, fw)
	if _, held := view.ReservedBy(w.cv); held {
		t.Fatal("replica still sees released reservation")
	}
	if !view.Published(w.cv) {
		t.Fatal("replica missed publication")
	}
}

// TestReplicaViewPromote: after failover the promoted view is writable
// and keeps the workspace reservations mirrored through the feed.
func TestReplicaViewPromote(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	rep, view := startReplicaOf(t, fw)
	catchUp(t, rep, fw)

	// Failover: detach the follower store, then flip the view writable.
	_ = rep.Promote()
	if err := view.PromoteToPrimary(); err != nil {
		t.Fatal(err)
	}
	if view.IsReplicaView() {
		t.Fatal("still a replica view after promotion")
	}
	// The reservation survived the failover via the mirrored attribute.
	if holder, held := view.ReservedBy(w.cv); !held || holder != "anna" {
		t.Fatalf("promoted ReservedBy = %q, %v", holder, held)
	}
	// Writable: anna can publish her reserved version, bert can reserve.
	if err := view.Publish("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	if _, err := view.CreateUser("dora"); err != nil {
		t.Fatal(err)
	}
	if err := view.Reserve("bert", w.cv); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaNotifier: the feed→ITC notifier runs against a replica view
// — replicated commit groups reach local tools in commit order, because
// the follower store republishes the primary's records into its own
// feed.
func TestReplicaNotifier(t *testing.T) {
	w := newWorld(t, Release30)
	fw := w.fw
	rep, view := startReplicaOf(t, fw)
	catchUp(t, rep, fw)

	bus := itc.NewBus()
	got := make(chan itc.Message, 16)
	bus.Subscribe(TopicCheckin, "viewer", func(m itc.Message) error {
		got <- m
		return nil
	})
	n, err := view.StartNotifier(bus)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	if err := fw.Reserve("anna", w.cv); err != nil {
		t.Fatal(err)
	}
	variants := fw.Variants(w.cv)
	do, err := fw.CreateDesignObject(variants[0], "alu-sch", w.schVT)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "alu.sch")
	if err := os.WriteFile(src, []byte("netlist"), 0o644); err != nil {
		t.Fatal(err)
	}
	dov, err := fw.CheckInData("anna", do, src)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Fields["dov"] == "" {
			t.Fatalf("checkin message without dov: %v", m)
		}
		_ = dov
	case <-time.After(10 * time.Second):
		t.Fatal("replica notifier never delivered the checkin")
	}
	if s := n.Stats(); s.Published == 0 {
		t.Fatalf("notifier stats: %+v", s)
	}
}
