package jcf

import (
	"errors"
	"fmt"

	"repro/internal/oms"
)

// Read-only replica views.
//
// A replication follower (internal/repl) keeps a second OMS store
// converged with a primary framework's database. NewReplicaView wraps
// that follower store in a Framework so every read-side desktop API —
// project browsing, version history, consistency checking, CheckOutData,
// the feed→ITC notifier — works against the replica, while every
// mutating entry point is rejected with ErrReadOnlyReplica: scaling the
// read-mostly tool population across machines without ever forking the
// design history.
//
// What a replica view can and cannot answer:
//
//   - Everything stored in the database — cells, versions, variants,
//     design data, configurations, hierarchies, derivations — is served
//     from the replicated store, as of the replica's applied LSN. Pair
//     queries with repl.Replica.WaitFor for read-your-writes.
//   - Workspace reservations are answered from the database's mirrored
//     reservedBy attribute (the feed carries reservation traffic since
//     PR 4), not from the in-memory map a primary maintains.
//   - Registered flow *structures* (and therefore enactment state) are
//     session metadata of the primary and are not replicated; Flow()
//     and the activity APIs report ErrNotFound on a replica view. Flow
//     objects themselves are queryable like any other metadata.
//
// Failover: after repl.Replica.Promote detaches the follower store,
// PromoteToPrimary flips the view writable and rebuilds the reservation
// map from the mirrored attributes, so held workspaces survive the
// switch.

// ErrReadOnlyReplica is returned by every mutating Framework method
// invoked on a replica view.
var ErrReadOnlyReplica = errors.New("jcf: mutation rejected: framework is a read-only replica view")

// NewReplicaView wraps a replicated follower store in a read-only
// Framework of the given release. The store stays live — queries observe
// replicated history as the follower applies it.
func NewReplicaView(st *oms.Store, release Release) (*Framework, error) {
	fw, err := New(release)
	if err != nil {
		return nil, err
	}
	fw.store = st
	fw.replica.Store(true)
	return fw, nil
}

// IsReplicaView reports whether this framework is a read-only replica
// view (and has not been promoted).
func (fw *Framework) IsReplicaView() bool { return fw.replica.Load() }

// guardWrite is the gate every mutating entry point passes: replicas
// reject the mutation before any state — framework maps or store — is
// touched.
func (fw *Framework) guardWrite() error {
	if fw.replica.Load() {
		return ErrReadOnlyReplica
	}
	return nil
}

// PromoteToPrimary flips a replica view writable — the failover step
// after repl.Replica.Promote has detached the underlying store. The
// workspace reservation map is rebuilt from the database's mirrored
// reservedBy attributes, so reservations held at the old primary remain
// held. Flow structures are not replicated; re-register flows before
// relying on flow enforcement on the new primary.
//
//lint:allow guardwrite the failover entry point must mutate while the view is still a replica; it flips the flag itself
func (fw *Framework) PromoteToPrimary() error {
	if !fw.replica.Load() {
		return fmt.Errorf("jcf: promote: framework is not a replica view")
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	for _, cv := range fw.store.All("CellVersion") {
		if user := fw.store.GetString(cv, "reservedBy"); user != "" {
			fw.reservations[cv] = user
		}
	}
	fw.replica.Store(false)
	return nil
}

// ReplicationSource exposes the underlying OMS store for a replication
// publisher (repl.NewPublisher) — the one sanctioned way past the
// framework's otherwise closed interfaces, read-only by convention.
// Tools and coupling layers keep going through the desktop API.
func (fw *Framework) ReplicationSource() *oms.Store { return fw.store }
